package viewcube

import (
	"encoding/json"
	"strings"

	"viewcube/internal/obs"
)

// QueryTrace is the recorded execution of one traced query: a tree of timed
// spans (plan lookup, per-element assembly steps, store reads with cache
// outcomes, range aggregation) annotated with cell and operation counts. It
// renders as an EXPLAIN ANALYZE-style tree via String, and marshals to JSON
// as the span tree ({name, duration_us, attrs, children}).
type QueryTrace struct {
	t *obs.Trace
}

// String renders the trace as an indented span tree.
func (qt *QueryTrace) String() string {
	if qt == nil {
		return ""
	}
	return qt.t.String()
}

// TraceID renders the trace's process-unique identifier the way the query
// log exposes it.
func (qt *QueryTrace) TraceID() string {
	if qt == nil {
		return ""
	}
	return obs.FormatTraceID(qt.t.ID())
}

// SetLabel stamps a string annotation (cube or view identity, typically)
// onto the trace's root span. Labels render in String, marshal under
// "labels" in the JSON tree and ride into the query log with sampled
// traces. Safe on nil.
func (qt *QueryTrace) SetLabel(key, val string) {
	if qt == nil {
		return
	}
	qt.t.Root().SetLabel(key, val)
}

// Tree returns the span tree in its JSON-able shape.
func (qt *QueryTrace) Tree() *obs.SpanNode {
	if qt == nil {
		return nil
	}
	return qt.t.Tree()
}

// MarshalJSON encodes the span tree.
func (qt *QueryTrace) MarshalJSON() ([]byte, error) { return json.Marshal(qt.Tree()) }

// Ops totals the modelled add/subtract operations recorded across the span
// tree. For a traced view-element query it equals the plan cost reported by
// Explain for the same materialised set.
func (qt *QueryTrace) Ops() int64 { return qt.Tree().SumAttr("ops") }

// CellsRead totals the stored-element cells fetched during execution.
func (qt *QueryTrace) CellsRead() int64 { return qt.Tree().SumAttr("cells") }

// CacheHitTrace builds the minimal trace of a query answered from the
// serving tier's result cache: one already-finished root span labelled
// result_cache=hit, with no ops, cells or plan spans — the logged cost of a
// hit is genuinely zero work. Serving layers return it when an explicitly
// traced (or sampled) query is satisfied without executing.
func CacheHitTrace(name string) *QueryTrace {
	t := obs.NewTrace(name)
	t.Root().SetLabel("result_cache", "hit")
	t.Finish()
	return &QueryTrace{t: t}
}

// withTrace runs fn with a fresh per-query execution context and returns
// the finished trace. Nothing is attached to the engine: the context is
// threaded explicitly through the read path, so concurrent queries (traced
// or not) never observe each other's spans.
func (e *Engine) withTrace(name string, fn func(x *obs.ExecCtx) error) (*QueryTrace, error) {
	t := obs.NewTrace(name)
	err := fn(obs.Traced(t))
	t.Finish()
	return &QueryTrace{t: t}, err
}

// TraceQuery is Query with per-span tracing: it answers the SQL-like
// statement and returns the span tree of its execution alongside the
// result.
func (e *Engine) TraceQuery(sql string) (*QueryResult, *QueryTrace, error) {
	res, tr, err := e.traceQuery(sql)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// traceQuery is the reselect-free traced read path (SafeEngine calls it
// under a read lock).
func (e *Engine) traceQuery(sql string) (*QueryResult, *QueryTrace, error) {
	var res *QueryResult
	tr, err := e.withTrace("query", func(x *obs.ExecCtx) (err error) {
		res, err = e.queryObserved(x, sql)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// TraceGroupBy is GroupBy with per-span tracing.
func (e *Engine) TraceGroupBy(keep ...string) (*View, *QueryTrace, error) {
	v, tr, err := e.traceGroupBy(keep...)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return nil, nil, err
	}
	return v, tr, nil
}

func (e *Engine) traceGroupBy(keep ...string) (*View, *QueryTrace, error) {
	var v *View
	tr, err := e.withTrace("groupby "+strings.Join(keep, ","), func(x *obs.ExecCtx) (err error) {
		v, err = e.groupByObserved(x, keep...)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return v, tr, nil
}

// TraceTotal is Total with per-span tracing.
func (e *Engine) TraceTotal() (float64, *QueryTrace, error) {
	total, tr, err := e.traceTotal()
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return 0, nil, err
	}
	return total, tr, nil
}

func (e *Engine) traceTotal() (float64, *QueryTrace, error) {
	var total float64
	tr, err := e.withTrace("total", func(x *obs.ExecCtx) (err error) {
		total, err = e.totalObserved(x)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	return total, tr, nil
}

// TraceRangeSum is RangeSum with per-span tracing.
func (e *Engine) TraceRangeSum(ranges map[string]ValueRange) (float64, *QueryTrace, error) {
	sum, tr, err := e.traceRangeSum(ranges)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return 0, nil, err
	}
	return sum, tr, nil
}

func (e *Engine) traceRangeSum(ranges map[string]ValueRange) (float64, *QueryTrace, error) {
	var sum float64
	tr, err := e.withTrace("range", func(x *obs.ExecCtx) (err error) {
		sum, err = e.rangeSumObserved(x, ranges)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	return sum, tr, nil
}

// TraceRangeSumWithin is RangeSumWithin with per-span tracing (the shard
// servers' traced range path: out-of-domain ranges report ok=false rather
// than erroring).
func (e *Engine) TraceRangeSumWithin(ranges map[string]ValueRange) (float64, bool, *QueryTrace, error) {
	sum, ok, tr, err := e.traceRangeSumWithin(ranges)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return 0, false, nil, err
	}
	return sum, ok, tr, nil
}

func (e *Engine) traceRangeSumWithin(ranges map[string]ValueRange) (float64, bool, *QueryTrace, error) {
	var (
		sum float64
		ok  bool
	)
	tr, err := e.withTrace("range", func(x *obs.ExecCtx) (err error) {
		sum, ok, err = e.rangeSumWithinObserved(x, ranges)
		return err
	})
	if err != nil {
		return 0, false, nil, err
	}
	return sum, ok, tr, nil
}
