package viewcube

import (
	"encoding/json"
	"strings"

	"viewcube/internal/obs"
	"viewcube/internal/store"
)

// QueryTrace is the recorded execution of one traced query: a tree of timed
// spans (plan lookup, per-element assembly steps, store reads with cache
// outcomes, range aggregation) annotated with cell and operation counts. It
// renders as an EXPLAIN ANALYZE-style tree via String, and marshals to JSON
// as the span tree ({name, duration_us, attrs, children}).
type QueryTrace struct {
	t *obs.Trace
}

// String renders the trace as an indented span tree.
func (qt *QueryTrace) String() string {
	if qt == nil {
		return ""
	}
	return qt.t.String()
}

// Tree returns the span tree in its JSON-able shape.
func (qt *QueryTrace) Tree() *obs.SpanNode {
	if qt == nil {
		return nil
	}
	return qt.t.Tree()
}

// MarshalJSON encodes the span tree.
func (qt *QueryTrace) MarshalJSON() ([]byte, error) { return json.Marshal(qt.Tree()) }

// Ops totals the modelled add/subtract operations recorded across the span
// tree. For a traced view-element query it equals the plan cost reported by
// Explain for the same materialised set.
func (qt *QueryTrace) Ops() int64 { return qt.Tree().SumAttr("ops") }

// CellsRead totals the stored-element cells fetched during execution.
func (qt *QueryTrace) CellsRead() int64 { return qt.Tree().SumAttr("cells") }

// setTrace attaches (or with nil detaches) a trace to every traced
// component of the engine.
func (e *Engine) setTrace(t *obs.Trace) {
	e.inner.SetTrace(t)
	e.rq.SetTrace(t)
	if fs, ok := e.st.(*store.FileStore); ok {
		fs.SetTrace(t)
	}
}

// withTrace runs fn with a fresh trace attached and returns the finished
// trace. The engine is single-threaded per query (serialise with
// SafeEngine), so the trace attachment cannot leak across queries.
func (e *Engine) withTrace(name string, fn func() error) (*QueryTrace, error) {
	t := obs.NewTrace(name)
	e.setTrace(t)
	err := fn()
	e.setTrace(nil)
	t.Finish()
	return &QueryTrace{t: t}, err
}

// TraceQuery is Query with per-span tracing: it answers the SQL-like
// statement and returns the span tree of its execution alongside the
// result.
func (e *Engine) TraceQuery(sql string) (*QueryResult, *QueryTrace, error) {
	var res *QueryResult
	tr, err := e.withTrace("query", func() (err error) {
		res, err = e.Query(sql)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return res, tr, nil
}

// TraceGroupBy is GroupBy with per-span tracing.
func (e *Engine) TraceGroupBy(keep ...string) (*View, *QueryTrace, error) {
	var v *View
	tr, err := e.withTrace("groupby "+strings.Join(keep, ","), func() (err error) {
		v, err = e.GroupBy(keep...)
		return err
	})
	if err != nil {
		return nil, nil, err
	}
	return v, tr, nil
}

// TraceRangeSum is RangeSum with per-span tracing.
func (e *Engine) TraceRangeSum(ranges map[string]ValueRange) (float64, *QueryTrace, error) {
	var sum float64
	tr, err := e.withTrace("range", func() (err error) {
		sum, err = e.RangeSum(ranges)
		return err
	})
	if err != nil {
		return 0, nil, err
	}
	return sum, tr, nil
}
