package viewcube_test

import (
	"math/rand"
	"testing"

	"viewcube"
)

func TestCubeCompressLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 64*64)
	// Clustered: one constant 16×16 block plus a few scattered values.
	for i := 8; i < 24; i++ {
		for j := 32; j < 48; j++ {
			data[i*64+j] = 9
		}
	}
	for k := 0; k < 10; k++ {
		data[rng.Intn(len(data))] = float64(1 + rng.Intn(5))
	}
	cube, err := viewcube.NewCubeFromData([]string{"x", "y"}, []int{64, 64}, data)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := cube.Compress(viewcube.CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	raw := 0
	for _, v := range data {
		if v != 0 {
			raw++
		}
	}
	if comp.StoredValues() >= raw {
		t.Fatalf("compressed %d values, raw nonzeros %d — expected compression", comp.StoredValues(), raw)
	}
	if comp.Elements() == 0 {
		t.Fatal("no basis elements reported")
	}
	back, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if back.Total() != cube.Total() {
		t.Fatalf("decompressed total %g, want %g", back.Total(), cube.Total())
	}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if got, want := back.At(i, j), cube.At(i, j); got < want-1e-9 || got > want+1e-9 {
				t.Fatalf("cell (%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
	if dims := back.Dimensions(); dims[0] != "x" || dims[1] != "y" {
		t.Fatalf("dimension names lost: %v", dims)
	}
}

func TestCubeCompressEntropy(t *testing.T) {
	cube, err := viewcube.NewCube([]string{"x"}, []int{16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		cube.Set(4, i) // constant: entropy basis should collapse it
	}
	comp, err := cube.Compress(viewcube.CompressOptions{Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if comp.StoredValues() != 1 {
		t.Fatalf("constant cube stored %d coefficients, want 1", comp.StoredValues())
	}
	back, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if back.At(7) != 4 {
		t.Fatalf("reconstruction wrong: %g", back.At(7))
	}
}
