package viewcube_test

import (
	"math"
	"testing"

	"viewcube"
)

func TestEngineQuerySum(t *testing.T) {
	c := loadSales(t)
	eng, _ := c.NewEngine(viewcube.EngineOptions{})
	res, err := eng.Query("SELECT SUM(sales) GROUP BY product")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[0] != "product" || res.Columns[1] != "SUM(sales)" {
		t.Fatalf("columns %v", res.Columns)
	}
	want := map[string]float64{"ale": 17, "bock": 11, "cider": 4, "stout": 6}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Key) != 1 {
			t.Fatalf("row key %v", row.Key)
		}
		if math.Abs(row.Values[0]-want[row.Key[0]]) > 1e-9 {
			t.Fatalf("row %v = %g, want %g", row.Key, row.Values[0], want[row.Key[0]])
		}
	}
	// Rows are sorted by key.
	if res.Rows[0].Key[0] != "ale" || res.Rows[3].Key[0] != "stout" {
		t.Fatalf("row order wrong: %v, %v", res.Rows[0].Key, res.Rows[3].Key)
	}
}

func TestEngineQueryWithWhere(t *testing.T) {
	c := loadSales(t)
	eng, _ := c.NewEngine(viewcube.EngineOptions{})
	res, err := eng.Query("SELECT SUM(sales) GROUP BY product WHERE day BETWEEN 'd1' AND 'd2'")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, row := range res.Rows {
		got[row.Key[0]] = row.Values[0]
	}
	if got["ale"] != 17 || got["bock"] != 11 || got["cider"] != 0 {
		t.Fatalf("filtered groups %v", got)
	}
	// Equality predicate.
	res, err = eng.Query("SELECT SUM(sales) WHERE region = 'west'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != 12 { // 5+4+3
		t.Fatalf("west total %v", res.Rows)
	}
	if len(res.Rows[0].Key) != 0 {
		t.Fatalf("ungrouped row must have empty key, got %v", res.Rows[0].Key)
	}
}

func TestEngineQueryGrandTotal(t *testing.T) {
	c := loadSales(t)
	eng, _ := c.NewEngine(viewcube.EngineOptions{})
	res, err := eng.Query("SELECT SUM(sales)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Values[0] != 38 {
		t.Fatalf("grand total %v", res.Rows)
	}
}

func TestEngineQueryErrors(t *testing.T) {
	c := loadSales(t)
	eng, _ := c.NewEngine(viewcube.EngineOptions{})
	cases := []string{
		"SELECT AVG(sales) GROUP BY product",                       // needs AvgEngine
		"SELECT COUNT(*)",                                          // needs AvgEngine
		"SELECT SUM(profit)",                                       // unknown measure
		"SELECT SUM(sales) GROUP BY nope",                          // unknown dimension
		"SELECT SUM(sales) WHERE nope = 'x'",                       // unknown filter dimension
		"SELECT SUM(sales) WHERE day = 'd99'",                      // unknown value
		"nonsense",                                                 // parse error
		"SELECT SUM(sales) GROUP BY product WHERE product = 'ale'", // grouped+filtered
	}
	for _, sql := range cases {
		if _, err := eng.Query(sql); err == nil {
			t.Errorf("Query(%q): want error", sql)
		}
	}
}

func TestAvgEngineQuery(t *testing.T) {
	eng, err := viewcube.NewAvgEngine(loadSalesTable(t), viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT SUM(sales), COUNT(*), AVG(sales) GROUP BY product WHERE region = 'east'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 4 {
		t.Fatalf("columns %v", res.Columns)
	}
	got := map[string][]float64{}
	for _, row := range res.Rows {
		got[row.Key[0]] = row.Values
	}
	// east: ale 10+2 over 2 tuples; bock 7 over 1; cider 1 over 1; stout 6 over 1.
	checks := map[string][3]float64{
		"ale":   {12, 2, 6},
		"bock":  {7, 1, 7},
		"cider": {1, 1, 1},
		"stout": {6, 1, 6},
	}
	if len(got) != len(checks) {
		t.Fatalf("groups %v", got)
	}
	for k, want := range checks {
		vals := got[k]
		for i := 0; i < 3; i++ {
			if math.Abs(vals[i]-want[i]) > 1e-9 {
				t.Fatalf("group %q column %d = %g, want %g", k, i, vals[i], want[i])
			}
		}
	}
}

func TestAvgEngineQueryOmitsEmptyGroups(t *testing.T) {
	eng, err := viewcube.NewAvgEngine(loadSalesTable(t), viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Days d3..d3: only cider sells; other products have zero count and
	// must not appear (AVG would divide by zero).
	res, err := eng.Query("SELECT AVG(sales) GROUP BY product WHERE day = 'd3'")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Key[0] != "cider" {
		t.Fatalf("rows %v", res.Rows)
	}
	if res.Rows[0].Values[0] != 2 { // (3+1)/2
		t.Fatalf("cider avg %g", res.Rows[0].Values[0])
	}
}

func TestQueryOnRawCube(t *testing.T) {
	raw, _ := viewcube.NewCubeFromData([]string{"x"}, []int{4}, []float64{1, 2, 3, 4})
	eng, _ := raw.NewEngine(viewcube.EngineOptions{})
	res, err := eng.Query("SELECT SUM(anything)")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0].Values[0] != 10 {
		t.Fatalf("raw total %v", res.Rows)
	}
	if _, err := eng.Query("SELECT SUM(m) GROUP BY x"); err == nil {
		t.Fatal("raw cubes cannot GROUP BY")
	}
	if _, err := eng.Query("SELECT SUM(m) WHERE x = 'v'"); err == nil {
		t.Fatal("raw cubes cannot filter by value")
	}
}
