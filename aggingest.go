package viewcube

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"viewcube/internal/assembly"
	"viewcube/internal/ingest"
)

// AggIngest is the batched streaming write path for a measure-vector
// AggEngine: observations append to a WAL-backed coalescing buffer (vector
// deltas [v, v², 1] sum component-wise per cell — linearity again) and a
// background merger folds whole batches under the owner's lock with ONE
// cache invalidation per batch.
//
// Unlike the scalar SafeEngine's full MVCC path, AggIngest does not give
// readers pinned snapshots — the vector engine's readers still take the
// injected lock — but it removes the per-update lock and invalidation storm:
// a saturating observation stream costs readers one short lock hold and one
// invalidation per merge interval instead of one per tuple. The Snapshot
// counter in PlanCacheStats is the batches-applied count, so result caches
// invalidate from ingest merges exactly like the scalar path.
type AggIngest struct {
	agg  *AggEngine
	lk   sync.Locker
	opts IngestOptions

	buf *ingest.Buffer
	wal *ingest.WAL

	appendMu sync.Mutex
	seqNoWAL uint64
	appended atomic.Uint64
	closed   atomic.Bool

	pubMu     sync.Mutex
	pubCond   *sync.Cond
	published uint64
	stopped   bool

	flushCh chan struct{}
	stop    chan struct{}
	done    chan struct{}

	batches     atomic.Uint64 // merge batches applied: the snapshot epoch analogue
	mergedCells atomic.Uint64
	replayed    uint64
}

// NewAggIngest starts the batched write path over agg. lk is the lock the
// owner's readers hold (e.g. the catalog handle's mutex); the merger takes
// it only while applying a drained batch. When opts.WALPath is set the
// segment is replayed into the engine first (one batch, one invalidation).
func NewAggIngest(agg *AggEngine, lk sync.Locker, opts IngestOptions) (*AggIngest, error) {
	if opts.MaxPending == 0 {
		opts.MaxPending = 1 << 16
	}
	if opts.Interval <= 0 {
		opts.Interval = 25 * time.Millisecond
	}
	ai := &AggIngest{
		agg:     agg,
		lk:      lk,
		opts:    opts,
		buf:     ingest.NewBuffer(opts.MaxPending),
		flushCh: make(chan struct{}, 1),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	ai.pubCond = sync.NewCond(&ai.pubMu)

	if opts.WALPath != "" {
		var batch []AggDelta
		wal, err := ingest.OpenWAL(opts.WALPath, ingest.WALOptions{Fsync: opts.Fsync}, func(d ingest.Delta) error {
			if len(d.Vals) != agg.spec.Width {
				return fmt.Errorf("delta width %d on a width-%d vector cube", len(d.Vals), agg.spec.Width)
			}
			batch = append(batch, AggDelta{Idx: d.Idx, Vals: d.Vals})
			return nil
		})
		if err != nil {
			return nil, err
		}
		if len(batch) > 0 {
			lk.Lock()
			err = agg.ApplyDeltaBatch(batch)
			lk.Unlock()
			if err != nil {
				wal.Close()
				return nil, fmt.Errorf("viewcube: replaying agg WAL: %w", err)
			}
			ai.replayed = uint64(len(batch))
			ai.batches.Add(1)
		}
		ai.wal = wal
		ai.appended.Store(wal.LastSeq())
		ai.published = wal.LastSeq()
		agg.sum.met.ingest.WALReplayed.Add(ai.replayed)
	}

	go ai.loop()
	return ai, nil
}

// Ingest acknowledges one new observation with the given measure at the
// cell; visibility comes at the next merge (Flush waits for it).
func (ai *AggIngest) Ingest(measure float64, idx ...int) error {
	// Zero-delta validation against the space: touches no store, needs no
	// lock (an observation always has Count 1, so there is no zero fast
	// path beyond validation).
	if err := assembly.UpdateCell(ai.agg.cube.space, ai.agg.sum.st, 0, idx); err != nil {
		return err
	}
	d := ingest.Delta{Idx: idx, Vals: ai.agg.ObservationDelta(measure)}
	ai.appendMu.Lock()
	if ai.closed.Load() {
		ai.appendMu.Unlock()
		return ingest.ErrClosed
	}
	if ai.wal != nil {
		seq, err := ai.wal.Append(d)
		if err != nil {
			ai.appendMu.Unlock()
			return err
		}
		d.Seq = seq
	} else {
		ai.seqNoWAL++
		d.Seq = ai.seqNoWAL
	}
	ai.appended.Store(d.Seq)
	err := ai.buf.Add(d)
	ai.appendMu.Unlock()
	if err != nil {
		return err
	}
	ai.agg.sum.met.ingest.Appended.Inc()
	return nil
}

// IngestValue is Ingest addressed by dimension values.
func (ai *AggIngest) IngestValue(measure float64, values map[string]string) error {
	idx, err := ai.agg.sum.resolveUpdateIndex(values)
	if err != nil {
		return err
	}
	return ai.Ingest(measure, idx...)
}

// Flush blocks until every observation acknowledged before the call has
// been folded into the engine.
func (ai *AggIngest) Flush() error {
	target := ai.appended.Load()
	ai.pubMu.Lock()
	for ai.published < target && !ai.stopped {
		select {
		case ai.flushCh <- struct{}{}:
		default:
		}
		ai.pubCond.Wait()
	}
	ai.pubMu.Unlock()
	return nil
}

// Batches returns the number of merge batches applied — the monotone
// data-version counter the result-cache layer sums into its sync value.
func (ai *AggIngest) Batches() uint64 { return ai.batches.Load() }

// Stats snapshots the batched write path's counters.
func (ai *AggIngest) Stats() IngestStats {
	bs := ai.buf.Stats()
	st := IngestStats{
		Appended:      ai.appended.Load(),
		Coalesced:     bs.Coalesced,
		Blocked:       bs.Blocked,
		PendingCells:  bs.Pending,
		WALReplayed:   ai.replayed,
		Merges:        ai.batches.Load(),
		MergedCells:   ai.mergedCells.Load(),
		SnapshotEpoch: ai.batches.Load(),
	}
	if ai.wal != nil {
		st.WALBytes = ai.wal.Bytes()
	}
	ai.pubMu.Lock()
	pub := ai.published
	ai.pubMu.Unlock()
	if app := st.Appended; app > pub {
		st.LagSeqs = app - pub
	}
	return st
}

// Close flushes pending observations into a final batch, stops the merger
// and closes the WAL. In-flight Ingest calls racing the shutdown fail with
// a closed error.
func (ai *AggIngest) Close() error {
	ai.closed.Store(true)
	ai.buf.Close()
	close(ai.stop)
	<-ai.done
	if ai.wal != nil {
		return ai.wal.Close()
	}
	return nil
}

func (ai *AggIngest) loop() {
	defer close(ai.done)
	defer func() {
		ai.pubMu.Lock()
		ai.stopped = true
		ai.pubCond.Broadcast()
		ai.pubMu.Unlock()
	}()
	for {
		select {
		case <-ai.stop:
			ai.mergeOnce()
			return
		case <-ai.flushCh:
			ai.mergeOnce()
		case <-ai.buf.Dirty():
			t := time.NewTimer(ai.opts.Interval)
			select {
			case <-t.C:
				ai.mergeOnce()
			case <-ai.flushCh:
				t.Stop()
				ai.mergeOnce()
			case <-ai.stop:
				t.Stop()
				ai.mergeOnce()
				return
			}
		}
	}
}

func (ai *AggIngest) mergeOnce() {
	met := ai.agg.sum.met.ingest
	start := time.Now()
	batch := ai.buf.Drain()
	if len(batch.Deltas) > 0 {
		deltas := make([]AggDelta, len(batch.Deltas))
		for i, d := range batch.Deltas {
			deltas[i] = AggDelta{Idx: d.Idx, Vals: d.Vals}
		}
		ai.lk.Lock()
		err := ai.agg.ApplyDeltaBatch(deltas)
		ai.lk.Unlock()
		if err != nil {
			panic(fmt.Sprintf("viewcube: agg ingest merge applying validated delta: %v", err))
		}
		ai.batches.Add(1)
		ai.mergedCells.Add(uint64(len(deltas)))
		met.Merges.Inc()
		met.MergedCells.Add(uint64(len(deltas)))
		met.MergeSeconds.Observe(time.Since(start).Seconds())
	}
	ai.pubMu.Lock()
	if batch.Watermark > ai.published {
		ai.published = batch.Watermark
	}
	ai.pubCond.Broadcast()
	ai.pubMu.Unlock()
	met.PendingCells.Set(int64(ai.buf.Pending()))
}
