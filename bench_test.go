// Benchmarks for every table and figure of the paper plus ablations for
// the design choices called out in DESIGN.md. Run:
//
//	go test -bench=. -benchmem
//
// The per-experiment mapping is recorded in DESIGN.md §4 and the measured
// numbers in EXPERIMENTS.md.
package viewcube_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/assembly"
	"viewcube/internal/core"
	"viewcube/internal/experiments"
	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/obs"
	"viewcube/internal/plan"
	"viewcube/internal/rangeagg"
	"viewcube/internal/store"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// BenchmarkTable1Counts regenerates Table 1 (E1): closed-form view element
// counts for all five paper configurations.
func BenchmarkTable1Counts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1()
		if rows[4].Nve != 5764801 {
			b.Fatal("Table 1 mismatch")
		}
	}
}

// BenchmarkTable2Pedagogical regenerates Table 2 (E2): Procedure 3 costs of
// the ten pedagogical element sets.
func BenchmarkTable2Pedagogical(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2()
		if rows[0].Processing != 3 {
			b.Fatal("Table 2 mismatch")
		}
	}
}

// BenchmarkFig8Experiment1 runs one trial of Experiment 1 (E3) at the
// paper's scale: Algorithm 1 over the 923,521-element graph of the 16^4
// cube plus both baselines.
func BenchmarkFig8Experiment1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8([]int{16, 16, 16, 16}, 1, int64(i+1), experiments.ModelEq29)
		if err != nil {
			b.Fatal(err)
		}
		if res.V[0] > res.D[0] {
			b.Fatal("[V] exceeded [D]")
		}
	}
}

// BenchmarkFig9Experiment2 runs one trial of Experiment 2 (E4) at the
// paper's scale: both greedy frontiers on the 4^4 cube.
func BenchmarkFig9Experiment2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9([]int{4, 4, 4, 4}, 1, 10, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.PointA > res.PointB {
			b.Fatal("point a exceeded point b")
		}
	}
}

// BenchmarkBasesStructural regenerates the §4.3 structural report (E5).
func BenchmarkBasesStructural(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Bases([]int{16, 16, 16}, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRangeAggregation regenerates the §6 comparison (E6) on a
// moderate cube.
func BenchmarkRangeAggregation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Ranges([]int{64, 64, 16}, 100, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxError > 1e-6 {
			b.Fatal("methods disagreed")
		}
	}
}

// --- Component benchmarks -------------------------------------------------

// BenchmarkAlgorithm1PaperGraph measures Algorithm 1 alone on the paper's
// Experiment 1 graph (923,521 elements, 16 queries).
func BenchmarkAlgorithm1PaperGraph(b *testing.B) {
	s := velement.MustSpace(16, 16, 16, 16)
	rng := rand.New(rand.NewSource(1))
	queries := workload.UniformViewPopulation(s, rng, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SelectBasis(s, queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyRedundant measures one full Algorithm 2 run on the
// Experiment 2 cube.
func BenchmarkGreedyRedundant(b *testing.B) {
	s := velement.MustSpace(4, 4, 4, 4)
	rng := rand.New(rand.NewSource(1))
	queries := workload.UniformViewPopulation(s, rng, false)
	init, err := core.SelectBasis(s, queries)
	if err != nil {
		b.Fatal(err)
	}
	all := core.AllElements(s)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyRedundant(s, init.Basis, all, queries, 2*s.CubeVolume()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHaarPartial measures the first partial aggregation over a 1M
// cell cube (the innermost operator of every cascade).
func BenchmarkHaarPartial(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cube := workload.RandomCube(rng, 100, 256, 64, 64)
	b.SetBytes(int64(8 * cube.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := haar.Partial(cube, i%3); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWaveletTransform measures the full multi-dimensional transform.
func BenchmarkWaveletTransform(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cube := workload.RandomCube(rng, 100, 256, 256)
	b.SetBytes(int64(8 * cube.Size()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		haar.Transform(cube)
	}
}

// BenchmarkMaterializeWaveletBasis measures materialising a complete
// non-expansive basis from a 64^3 cube with prefix sharing.
func BenchmarkMaterializeWaveletBasis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(64, 64, 64)
	cube := workload.RandomCube(rng, 100, 64, 64, 64)
	basis := velement.WaveletBasis(s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := assembly.MaterializeSet(s, cube, basis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAssembleViewFromBasis measures the steady-state serving path of
// one aggregated view from a materialised wavelet basis: cached plan
// lookup (the PR 3 planner) + pooled fused execution. This is the per-query
// cost a warmed engine pays — planning runs once per epoch, execution every
// time — so allocs/op here tracks the executor's pooling, not the DP.
func BenchmarkAssembleViewFromBasis(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(32, 32, 32)
	cube := workload.RandomCube(rng, 100, 32, 32, 32)
	st, err := assembly.MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		b.Fatal(err)
	}
	eng := assembly.NewEngine(s, st)
	pl := plan.NewPlanner(eng)
	views := s.AggregatedViews()
	// Warm the plan cache: every queried view compiles once.
	for _, v := range views[1:] {
		if _, err := pl.Element(nil, v); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph, err := pl.Element(nil, views[1+i%(len(views)-1)])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Execute(nil, ph.Assembly); err != nil {
			b.Fatal(err)
		}
	}
}

// planBenchFixture builds a materialised engine plus its cached planner and
// picks a non-trivial aggregated view as the plan target.
func planBenchFixture(b *testing.B) (*plan.Planner, freq.Rect) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(32, 32, 32)
	cube := workload.RandomCube(rng, 100, 32, 32, 32)
	st, err := assembly.MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		b.Fatal(err)
	}
	eng := assembly.NewEngine(s, st)
	views := s.AggregatedViews()
	return plan.NewPlanner(eng), views[len(views)/2]
}

// BenchmarkPlanCacheMiss measures a full Procedure 3 compile per iteration:
// each lookup lands at a fresh epoch, so nothing is ever served from cache.
func BenchmarkPlanCacheMiss(b *testing.B) {
	p, target := planBenchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Invalidate()
		if _, err := p.Element(nil, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures the steady-state cached lookup; it must
// beat BenchmarkPlanCacheMiss by skipping the DP entirely.
func BenchmarkPlanCacheHit(b *testing.B) {
	p, target := planBenchFixture(b)
	if _, err := p.Element(nil, target); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph, err := p.Element(nil, target)
		if err != nil {
			b.Fatal(err)
		}
		if !ph.CacheHit {
			b.Fatal("warm lookup missed")
		}
	}
}

// BenchmarkPlanCacheHitParallel measures cached lookups racing from
// GOMAXPROCS goroutines: the read path is an RLock plus a map probe, so this
// should scale rather than serialise (use -cpu 1,2,4 to see the curve).
func BenchmarkPlanCacheHitParallel(b *testing.B) {
	p, target := planBenchFixture(b)
	if _, err := p.Element(nil, target); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			ph, err := p.Element(nil, target)
			if err != nil {
				b.Fatal(err)
			}
			if !ph.CacheHit {
				b.Fatal("warm lookup missed")
			}
		}
	})
}

// BenchmarkRangeSumViaElements vs BenchmarkRangeSumScan vs
// BenchmarkRangeSumPrefix isolate the three §6 range strategies.
func rangeFixture(b *testing.B) (*velement.Space, *rangeagg.Querier, []rangeagg.Box, interface {
	RangeSum(rangeagg.Box) (float64, error)
}, func(rangeagg.Box) (float64, error)) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	shape := []int{256, 256}
	cube := workload.RandomCube(rng, 100, shape...)
	s := velement.MustSpace(shape...)
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		b.Fatal(err)
	}
	q := rangeagg.NewQuerier(s, mat)
	boxes := workload.RandomBoxes(shape, rng, 256)
	// Warm the pyramid so the benchmark measures steady-state queries.
	if _, err := q.RangeSum(boxes[0]); err != nil {
		b.Fatal(err)
	}
	pc := rangeagg.NewPrefixCube(cube)
	scan := func(box rangeagg.Box) (float64, error) { return rangeagg.DirectScan(cube, box) }
	return s, q, boxes, pc, scan
}

func BenchmarkRangeSumViaElements(b *testing.B) {
	_, q, boxes, _, _ := rangeFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := q.RangeSum(boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSumScan(b *testing.B) {
	_, _, boxes, _, scan := rangeFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scan(boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeSumPrefix(b *testing.B) {
	_, _, boxes, pc, _ := rangeFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pc.RangeSum(boxes[i%len(boxes)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineGroupBy measures the public API end to end on a relational
// cube.
func BenchmarkEngineGroupBy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 100, 8, 60, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.GroupBy("product"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelGroupBy measures multi-core read throughput: the same
// workload as BenchmarkEngineGroupBy, but issued from GOMAXPROCS
// goroutines against one SafeEngine. With the read path reentrant, this
// should scale beyond the serial baseline (compare ns/op against
// BenchmarkEngineGroupBy; use -cpu 1,2,4 to see the curve).
func BenchmarkParallelGroupBy(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 100, 8, 60, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	safe := eng.Safe()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := safe.GroupBy("product"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// tracedOverheadFixture builds the cached-plan serving fixture the traced
// overhead benchmarks share: a warmed engine where GroupBy("product") is a
// plan-cache hit, so each iteration measures the execute path plus whatever
// observability tier the variant adds.
func tracedOverheadFixture(b *testing.B) *viewcube.Engine {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 100, 8, 60, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.GroupBy("product"); err != nil {
		b.Fatal(err)
	}
	return eng
}

// benchTracedOff is the sampling-disabled tier: the per-query observability
// cost is a single nil-sampler check in front of the plain cached GroupBy,
// so this must stay within noise of BenchmarkEngineGroupBy (the CI gate in
// TestTracedQueryOverheadGate holds it under 5%).
func benchTracedOff(b *testing.B) {
	eng := tracedOverheadFixture(b)
	sampler := obs.NewSampler(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sampler.Sample() {
			b.Fatal("rate-0 sampler fired")
		}
		if _, err := eng.GroupBy("product"); err != nil {
			b.Fatal(err)
		}
	}
}

// benchTracedSampled is the always-sampled tier: every query runs under an
// internal trace and lands in the in-memory query log, the way a server
// started with -tracesample 1 serves.
func benchTracedSampled(b *testing.B) {
	eng := tracedOverheadFixture(b)
	sampler := obs.NewSampler(1)
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sampler.Sample() {
			b.Fatal("rate-1 sampler skipped")
		}
		start := time.Now()
		_, tr, err := eng.TraceGroupBy("product")
		if err != nil {
			b.Fatal(err)
		}
		tree := tr.Tree()
		qlog.Record(obs.QueryEntry{
			Kind:       "groupby",
			Shape:      "product",
			DurationUS: time.Since(start).Microseconds(),
			TraceID:    tr.TraceID(),
			Ops:        tree.SumAttr("ops"),
			Sampled:    true,
			Trace:      tree,
		})
	}
}

// benchTracedFull is the explicit full-trace tier: the TraceGroupBy API,
// which builds the span tree and hands it back to the caller.
func benchTracedFull(b *testing.B) {
	eng := tracedOverheadFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, tr, err := eng.TraceGroupBy("product")
		if err != nil {
			b.Fatal(err)
		}
		if tr.Ops() <= 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTracedQueryOverhead compares the three observability tiers on the
// cached-plan serving path: sampling off, every query sampled into the query
// log, and the explicit full-trace API.
func BenchmarkTracedQueryOverhead(b *testing.B) {
	b.Run("off", benchTracedOff)
	b.Run("sampled", benchTracedSampled)
	b.Run("traced", benchTracedFull)
}

// BenchmarkFileStoreRoundTrip measures disk persistence of a 64k-cell
// element (write-through Put plus cold Get).
func BenchmarkFileStoreRoundTrip(b *testing.B) {
	dir := b.TempDir()
	fs, err := store.Open(dir, 0) // no cache: measure disk
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(256, 256)
	el := s.Root()
	arr := workload.RandomCube(rng, 100, 256, 256)
	b.SetBytes(int64(8 * arr.Size()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fs.Put(el, arr); err != nil {
			b.Fatal(err)
		}
		if _, ok := fs.Get(el); !ok {
			b.Fatal("get failed")
		}
	}
}

// --- Ablations (E7) -------------------------------------------------------

// BenchmarkAblationDPvsExhaustive compares Algorithm 1's DP against
// brute-force tiling enumeration on a cube small enough for the latter.
func BenchmarkAblationDPvsExhaustive(b *testing.B) {
	s := velement.MustSpace(4, 4)
	rng := rand.New(rand.NewSource(1))
	queries := workload.UniformViewPopulation(s, rng, true)
	b.Run("dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.SelectBasis(s, queries); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.ExhaustiveBestBasis(s, queries); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationGreedyPruning compares Algorithm 2 with and without the
// §7.2.2 obsolete-element pruning.
func BenchmarkAblationGreedyPruning(b *testing.B) {
	s := velement.MustSpace(4, 4, 4)
	rng := rand.New(rand.NewSource(1))
	queries := workload.UniformViewPopulation(s, rng, false)
	init, err := core.SelectBasis(s, queries)
	if err != nil {
		b.Fatal(err)
	}
	all := core.AllElements(s)
	target := 2 * s.CubeVolume()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GreedyRedundant(s, init.Basis, all, queries, target); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.GreedyRedundantPruned(s, init.Basis, all, queries, target); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationMaterializerSharing compares prefix-sharing
// materialisation against independent per-element cascades.
func BenchmarkAblationMaterializerSharing(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(64, 64)
	cube := workload.RandomCube(rng, 100, 64, 64)
	basis := velement.WaveletBasis(s)
	b.Run("shared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assembly.MaterializeSet(s, cube, basis); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			st := assembly.NewMemStore()
			for _, r := range basis {
				a, err := haar.ApplyRect(cube, r)
				if err != nil {
					b.Fatal(err)
				}
				if err := st.Put(r, a); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAdaptiveReconfigure measures one full observe→reselect→migrate
// cycle on a relational cube.
func BenchmarkAdaptiveReconfigure(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 30, 4, 30, 5000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := cube.NewEngine(viewcube.EngineOptions{})
		if err != nil {
			b.Fatal(err)
		}
		w := cube.NewWorkload()
		if err := w.AddViewKeeping(1, "product"); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := eng.Optimize(w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationParallelMaterialize compares serial materialisation
// against worker pools (each worker re-derives shared cascade prefixes).
func BenchmarkAblationParallelMaterialize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(64, 64, 16)
	cube := workload.RandomCube(rng, 100, 64, 64, 16)
	set := append(velement.WaveletBasis(s), s.AggregatedViews()...)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := assembly.NewMemStore()
				if err := assembly.MaterializeParallel(s, cube, set, st, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryLanguage measures parse + plan + execute of a filtered
// GROUP BY through the SQL-like layer.
func BenchmarkQueryLanguage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 50, 8, 60, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(
			"SELECT SUM(sales) GROUP BY region WHERE day BETWEEN 'day-010' AND 'day-039'"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRollUp measures a hierarchy roll-up answered as per-group range
// aggregations.
func BenchmarkRollUp(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 50, 8, 56, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	if err := cube.DefineHierarchy("day", "week", func(day string) string {
		var n int
		fmt.Sscanf(day, "day-%d", &n)
		return fmt.Sprintf("week-%d", n/7)
	}); err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RollUp("day", "week", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAvgTable builds a deterministic random relation sized for the AVG
// benchmarks: 64 products × 8 regions × 32 days, rows tuples.
func benchAvgTable(b *testing.B, rows int) *viewcube.Table {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	tbl, err := viewcube.NewTable([]string{"product", "region", "day"}, "sales")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		vals := []string{
			fmt.Sprintf("product-%03d", rng.Intn(64)),
			fmt.Sprintf("region-%d", rng.Intn(8)),
			fmt.Sprintf("day-%02d", rng.Intn(32)),
		}
		if err := tbl.Append(vals, rng.Float64()*100); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

// BenchmarkGroupByAvgTwoEngine measures the historical AVG design this PR
// replaced: two full engines — a SUM cube and a COUNT cube, each with its
// own store, planner and executor — answering GROUP BY twice and dividing.
func BenchmarkGroupByAvgTwoEngine(b *testing.B) {
	tbl := benchAvgTable(b, 20000)
	sumCube, err := viewcube.FromRelation(tbl)
	if err != nil {
		b.Fatal(err)
	}
	ct, err := tbl.CountTable()
	if err != nil {
		b.Fatal(err)
	}
	cntCube, err := viewcube.FromRelation(ct)
	if err != nil {
		b.Fatal(err)
	}
	sumEng, err := sumCube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	cntEng, err := cntCube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv, err := sumEng.GroupBy("product")
		if err != nil {
			b.Fatal(err)
		}
		sums, err := sv.Groups()
		if err != nil {
			b.Fatal(err)
		}
		cv, err := cntEng.GroupBy("product")
		if err != nil {
			b.Fatal(err)
		}
		counts, err := cv.Groups()
		if err != nil {
			b.Fatal(err)
		}
		avgs := make(map[string]float64, len(counts))
		for k, c := range counts {
			if c == 0 {
				continue
			}
			avgs[k] = sums[k] / c
		}
		if len(avgs) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkGroupByAvgVector measures the measure-vector AVG path: one
// vector cube [Σv, Σv², Σ1], one plan, one pooled execution, finalised per
// group. Compare allocs/op and B/op against BenchmarkGroupByAvgTwoEngine.
func BenchmarkGroupByAvgVector(b *testing.B) {
	eng, err := viewcube.NewAvgEngine(benchAvgTable(b, 20000), viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		avgs, err := eng.GroupByAvg("product")
		if err != nil {
			b.Fatal(err)
		}
		if len(avgs) == 0 {
			b.Fatal("no groups")
		}
	}
}
