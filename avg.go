package viewcube

import (
	"fmt"

	"viewcube/internal/relation"
)

// AvgEngine answers AVG (and COUNT) aggregation queries. It is a thin
// compatibility wrapper over the measure-vector AggEngine: one vector cube
// whose cells carry [Σv, Σv², Σ1] serves SUM, COUNT and AVG from one stored
// element set, one plan and one execution — the historical design of two
// full engines (a SUM cube and a COUNT cube, each with its own store,
// planner and executor) survives only as the Sum and Count component views
// below. The paper designs its operators for the SUM function — COUNT is
// SUM of the constant measure 1, and AVG is the algebraic combination of
// the two, so both inherit every view-element property (perfect
// reconstruction, non-expansiveness, dynamic assembly). Results are
// bit-identical to the two-engine design: the Haar operators are linear, so
// they distribute over the vector components, and each component plane is
// processed by the same kernels in the same order a private scalar engine
// would use.
//
// Zero-count semantics (uniform across entry points):
//
//   - GroupByAvg drops groups with no tuples — AVG is undefined there — so
//     AvgOf reports ok=false for them.
//   - GroupByCount keeps every group of the group space (zero included).
//   - RangeAvg returns an error for a box with no tuples ("no tuples in
//     range"): unlike a dropped group there is no natural absent-key
//     signal for a scalar result.
type AvgEngine struct {
	// Sum and Count expose scalar engine views over the sum and count
	// component planes of the shared vector store, for direct SUM/COUNT
	// queries, workload optimisation and statistics. They are real *Engine
	// values backed by the same storage the vector executor reads.
	Sum   *Engine
	Count *Engine

	agg *AggEngine
}

// NewAvgEngine builds the measure-vector cube from the relation and wires
// the compatibility views. The dimension encodings are shared by
// construction (one cube), so a workload expressed on one view applies to
// the other.
func NewAvgEngine(t *Table, opts EngineOptions) (*AvgEngine, error) {
	if opts.DiskDir != "" {
		return nil, fmt.Errorf("viewcube: AvgEngine does not support a shared DiskDir; give each engine its own store")
	}
	agg, err := NewAggEngine(t, opts)
	if err != nil {
		return nil, err
	}
	return &AvgEngine{Sum: agg.sum, Count: agg.cnt, agg: agg}, nil
}

// Agg returns the underlying measure-vector engine, for the full
// GroupByAgg/RangeAgg surface (VAR, STDDEV, explain, traces).
func (a *AvgEngine) Agg() *AggEngine { return a.agg }

// Cube returns the SUM cube (for dimension metadata, workloads, etc.).
func (a *AvgEngine) Cube() *Cube { return a.agg.cube }

// Optimize applies the workload (expressed against the SUM cube) to the
// shared vector store, so the same views are cheap for every aggregate.
func (a *AvgEngine) Optimize(w *Workload) error { return a.agg.Optimize(w) }

// GroupByAvg returns the average measure per group of the kept dimensions.
// Groups with zero count are omitted (see the zero-count semantics above).
func (a *AvgEngine) GroupByAvg(keep ...string) (map[string]float64, error) {
	return a.agg.GroupByAgg(AggAvg, keep...)
}

// GroupByCount returns tuple counts per group of the kept dimensions.
func (a *AvgEngine) GroupByCount(keep ...string) (map[string]float64, error) {
	return a.agg.GroupByAgg(AggCount, keep...)
}

// RangeAvg returns the average measure over the value-range box, or an
// error if the box contains no tuples.
func (a *AvgEngine) RangeAvg(ranges map[string]ValueRange) (float64, error) {
	return a.agg.RangeAgg(AggAvg, ranges)
}

// UpdateValue records one new tuple: the component delta [v, v², 1] is
// applied to the vector cube and incrementally to every stored element.
func (a *AvgEngine) UpdateValue(measure float64, values map[string]string) error {
	return a.agg.UpdateValue(measure, values)
}

// AvgOf is a convenience for reading one group's average from GroupByAvg
// output using dimension values in cube order. ok is false when the group
// does not exist or holds no tuples (GroupByAvg omitted it).
func AvgOf(groups map[string]float64, values ...string) (float64, bool) {
	v, ok := groups[relation.GroupKey(values...)]
	return v, ok
}
