package viewcube

import (
	"fmt"

	"viewcube/internal/relation"
)

// AvgEngine answers AVG (and COUNT) aggregation queries by maintaining a
// SUM cube and a COUNT cube over the same relation, each with its own view
// element engine; AVG = SUM / COUNT cell-wise. The paper designs its
// operators for the SUM function — COUNT is SUM of the constant measure 1,
// and AVG is the algebraic combination of the two, so both inherit every
// view-element property (perfect reconstruction, non-expansiveness,
// dynamic assembly).
type AvgEngine struct {
	// Sum and Count expose the underlying engines for direct SUM/COUNT
	// queries, workload optimisation and statistics.
	Sum   *Engine
	Count *Engine

	sumCube   *Cube
	countCube *Cube
}

// NewAvgEngine builds SUM and COUNT cubes from the relation and attaches an
// engine to each. Both cubes share dimension encodings (identical
// dictionaries, identical shapes), so a workload expressed on one applies
// to the other.
func NewAvgEngine(t *Table, opts EngineOptions) (*AvgEngine, error) {
	if opts.DiskDir != "" {
		return nil, fmt.Errorf("viewcube: AvgEngine does not support a shared DiskDir; give each engine its own store")
	}
	sumCube, err := FromRelation(t)
	if err != nil {
		return nil, err
	}
	ct, err := t.CountTable()
	if err != nil {
		return nil, err
	}
	countCube, err := FromRelation(ct)
	if err != nil {
		return nil, err
	}
	sumEng, err := sumCube.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	countEng, err := countCube.NewEngine(opts)
	if err != nil {
		return nil, err
	}
	return &AvgEngine{Sum: sumEng, Count: countEng, sumCube: sumCube, countCube: countCube}, nil
}

// Cube returns the SUM cube (for dimension metadata, workloads, etc.).
func (a *AvgEngine) Cube() *Cube { return a.sumCube }

// Optimize applies the workload (expressed against the SUM cube) to both
// engines, so the same views are cheap on both sides of the division.
func (a *AvgEngine) Optimize(w *Workload) error {
	if err := a.Sum.Optimize(w); err != nil {
		return err
	}
	// Mirror the workload onto the count cube: element identities are
	// shape-level, and both cubes share a shape.
	cw := a.countCube.NewWorkload()
	if w != nil {
		for _, ent := range w.entries {
			cw.entries = append(cw.entries, workloadEntry{rect: ent.rect.Clone(), freq: ent.freq})
		}
	}
	return a.Count.Optimize(cw)
}

// GroupByAvg returns the average measure per group of the kept dimensions.
// Groups with zero count are omitted.
func (a *AvgEngine) GroupByAvg(keep ...string) (map[string]float64, error) {
	sumView, err := a.Sum.GroupBy(keep...)
	if err != nil {
		return nil, err
	}
	countView, err := a.Count.GroupBy(keep...)
	if err != nil {
		return nil, err
	}
	sums, err := sumView.Groups()
	if err != nil {
		return nil, err
	}
	counts, err := countView.Groups()
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(sums))
	for k, c := range counts {
		if c > 0 {
			out[k] = sums[k] / c
		}
	}
	return out, nil
}

// GroupByCount returns tuple counts per group of the kept dimensions.
func (a *AvgEngine) GroupByCount(keep ...string) (map[string]float64, error) {
	v, err := a.Count.GroupBy(keep...)
	if err != nil {
		return nil, err
	}
	return v.Groups()
}

// RangeAvg returns the average measure over the value-range box, or an
// error if the box contains no tuples.
func (a *AvgEngine) RangeAvg(ranges map[string]ValueRange) (float64, error) {
	sum, err := a.Sum.RangeSum(ranges)
	if err != nil {
		return 0, err
	}
	count, err := a.Count.RangeSum(ranges)
	if err != nil {
		return 0, err
	}
	if count == 0 {
		return 0, fmt.Errorf("viewcube: no tuples in range")
	}
	return sum / count, nil
}

// UpdateValue records one new tuple: measure added to the SUM cube, 1 to
// the COUNT cube, both maintained incrementally.
func (a *AvgEngine) UpdateValue(measure float64, values map[string]string) error {
	if err := a.Sum.UpdateValue(measure, values); err != nil {
		return err
	}
	return a.Count.UpdateValue(1, values)
}

// AvgOf is a convenience for reading one group's average from GroupByAvg
// output using dimension values in cube order.
func AvgOf(groups map[string]float64, values ...string) (float64, bool) {
	v, ok := groups[relation.GroupKey(values...)]
	return v, ok
}
