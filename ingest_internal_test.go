// Internal proofs of the non-blocking guarantees: these tests hold the
// SafeEngine's write lock directly — something no public API can do — and
// assert the paths that claim to be lock-free really are. With ingest
// enabled, readers pin snapshots and appends go through the buffer, so
// both must complete while the lock is held; zero-delta updates skip the
// lock on either write path.
package viewcube

import (
	"strings"
	"testing"
	"time"
)

const ingestInternalCSV = `product,region,day,sales
ale,east,d1,10
ale,west,d1,5
ale,east,d2,2
bock,east,d1,7
bock,west,d2,4
cider,west,d3,3
cider,east,d3,1
stout,east,d4,6
`

func internalSafeEngine(t *testing.T) *SafeEngine {
	t.Helper()
	c, err := Load(strings.NewReader(ingestInternalCSV), "sales")
	if err != nil {
		t.Fatal(err)
	}
	// ReselectEvery 0: reselectIfDue's unlocked fast path never needs s.mu,
	// so a read's only possible lock contact is the reader() pin itself.
	eng, err := c.NewEngine(EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Safe()
}

// mustFinish fails the test if fn does not return within the deadline while
// the caller deliberately holds the engine write lock. unlock releases it
// before Fatal so cleanup can proceed.
func mustFinish(t *testing.T, what string, unlock func(), fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		fn()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		unlock()
		t.Fatalf("%s blocked on the held write lock", what)
	}
}

// TestIngestReadersIgnoreWriteLock is the barrier test for the MVCC
// contract: with the write lock held (as the merger or a reconfiguration
// would), snapshot-pinned reads and streamed appends both complete.
func TestIngestReadersIgnoreWriteLock(t *testing.T) {
	s := internalSafeEngine(t)
	if err := s.EnableIngest(IngestOptions{Interval: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	defer s.DisableIngest()
	if err := s.UpdateValue(5, map[string]string{
		"product": "ale", "region": "east", "day": "d2",
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	s.mu.Lock()
	unlock := s.mu.Unlock

	var total float64
	var totalErr error
	mustFinish(t, "snapshot-pinned Total", unlock, func() {
		total, totalErr = s.Total()
	})
	if totalErr != nil {
		unlock()
		t.Fatal(totalErr)
	}
	if total != 43 {
		unlock()
		t.Fatalf("total under held write lock = %g, want 43", total)
	}

	var gbErr error
	mustFinish(t, "snapshot-pinned GroupBy", unlock, func() {
		_, gbErr = s.GroupBy("product")
	})
	if gbErr != nil {
		unlock()
		t.Fatal(gbErr)
	}

	// Appends acknowledge without the lock too; visibility waits for the
	// merger, which needs the lock we hold — so no Flush here.
	var upErr error
	mustFinish(t, "streamed append", unlock, func() {
		upErr = s.Update(2, 0, 0, 0)
	})
	if upErr != nil {
		unlock()
		t.Fatal(upErr)
	}
	var zeroErr error
	mustFinish(t, "zero-delta streamed update", unlock, func() {
		zeroErr = s.Update(0, 0, 0, 0)
	})
	if zeroErr != nil {
		unlock()
		t.Fatal(zeroErr)
	}

	s.mu.Unlock()
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	total, err := s.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 45 { // 38 + 5 + 2
		t.Fatalf("total after unlock+flush = %g, want 45", total)
	}
}

// TestZeroDeltaUpdateIgnoresWriteLock pins the satellite bugfix on the
// locked write path: without ingest, a zero-delta Update/UpdateValue
// validates and returns without ever taking the write lock.
func TestZeroDeltaUpdateIgnoresWriteLock(t *testing.T) {
	s := internalSafeEngine(t)
	s.mu.Lock()
	unlock := s.mu.Unlock

	var idxErr error
	mustFinish(t, "zero-delta Update", unlock, func() {
		idxErr = s.Update(0, 0, 0, 0)
	})
	if idxErr != nil {
		unlock()
		t.Fatal(idxErr)
	}
	var valErr error
	mustFinish(t, "zero-delta UpdateValue", unlock, func() {
		valErr = s.UpdateValue(0, map[string]string{
			"product": "ale", "region": "east", "day": "d2",
		})
	})
	if valErr != nil {
		unlock()
		t.Fatal(valErr)
	}
	// Validation still runs lock-free.
	var badErr error
	mustFinish(t, "zero-delta Update with bad index", unlock, func() {
		badErr = s.Update(0, 99, 0, 0)
	})
	if badErr == nil {
		unlock()
		t.Fatal("zero-delta update with out-of-range index must fail")
	}
	s.mu.Unlock()
}
