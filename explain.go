package viewcube

import (
	"fmt"
	"strings"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
)

// Explain returns the engine's current execution plan for a view element as
// a human-readable tree, without executing it: which stored elements it
// reads, what it aggregates down, what it synthesises, and the modelled
// add/subtract cost of every step. The plan reflects the materialised set
// at call time; after Optimize or adaptation it may change.
func (e *Engine) Explain(el Element) (string, error) {
	if !e.cube.Valid(el) {
		return "", fmt.Errorf("viewcube: invalid element %v", el)
	}
	// Plan through the assembly engine directly so explaining a query does
	// not count as an access for adaptation.
	plan, err := assembly.NewEngine(e.cube.space, e.st).Plan(nil, el.rect)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s (total cost %d ops)\n", el, assembly.PlanCost(plan))
	renderPlan(&b, e.cube, plan, 0)
	return b.String(), nil
}

// ExplainGroupBy is Explain for the view that keeps the named dimensions.
func (e *Engine) ExplainGroupBy(keep ...string) (string, error) {
	el, err := e.cube.ViewKeeping(keep...)
	if err != nil {
		return "", err
	}
	return e.Explain(el)
}

func renderPlan(b *strings.Builder, c *Cube, p *assembly.Plan, depth int) {
	indent := strings.Repeat("  ", depth)
	switch p.Kind {
	case assembly.PlanStored:
		fmt.Fprintf(b, "%sread stored %s\n", indent, describeRect(c, p.Rect))
	case assembly.PlanAggregate:
		fmt.Fprintf(b, "%saggregate %s from stored %s (%d ops)\n",
			indent, describeRect(c, p.Rect), describeRect(c, p.Source), p.Ops)
	case assembly.PlanSynthesize:
		fmt.Fprintf(b, "%ssynthesize %s on dimension %q (%d ops total)\n",
			indent, describeRect(c, p.Rect), c.dims[p.Dim], p.Ops)
		renderPlan(b, c, p.Partial, depth+1)
		renderPlan(b, c, p.Residual, depth+1)
	default:
		fmt.Fprintf(b, "%sunknown step\n", indent)
	}
}

// describeRect renders an element compactly, using aggregated-view
// shorthand with dimension names where possible.
func describeRect(c *Cube, r freq.Rect) string {
	el := Element{rect: r}
	if c.IsAggregatedView(el) {
		kept, err := c.KeptDims(el)
		if err == nil {
			if len(kept) == len(c.dims) {
				return "cube"
			}
			if len(kept) == 0 {
				return "grand-total"
			}
			return "view{" + strings.Join(kept, ",") + "}"
		}
	}
	return r.String()
}
