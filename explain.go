package viewcube

import (
	"fmt"
	"strings"

	"viewcube/internal/freq"
	"viewcube/internal/plan"
)

// Explain returns the engine's current execution plan for a view element as
// a human-readable tree, without executing it: which stored elements it
// reads, what it aggregates down, what it synthesises, and the modelled
// add/subtract cost of every step, plus the plan-cache epoch and whether
// the plan came from the cache. The plan reflects the materialised set at
// call time; after Optimize or adaptation it may change.
//
// Explain goes through the engine's own planner — the very plan it renders
// is the one a query for the same element executes (and explaining warms
// the shared plan cache). Planning through the planner never records an
// access for adaptation; only executed queries do.
func (e *Engine) Explain(el Element) (string, error) {
	if !e.cube.Valid(el) {
		return "", fmt.Errorf("viewcube: invalid element %v", el)
	}
	ph, err := e.inner.Planner().Element(nil, el.rect)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	plan.Render(&b, el.String(), ph, e.describer())
	return b.String(), nil
}

// ExplainGroupBy is Explain for the view that keeps the named dimensions.
func (e *Engine) ExplainGroupBy(keep ...string) (string, error) {
	el, err := e.cube.ViewKeeping(keep...)
	if err != nil {
		return "", err
	}
	return e.Explain(el)
}

// describer maps frequency-plane geometry back to the cube's dimension
// names for plan rendering.
func (e *Engine) describer() plan.Describer {
	return plan.Describer{
		Rect: func(r freq.Rect) string { return describeRect(e.cube, r) },
		Dim:  func(m int) string { return e.cube.dims[m] },
	}
}

// describeRect renders an element compactly, using aggregated-view
// shorthand with dimension names where possible.
func describeRect(c *Cube, r freq.Rect) string {
	el := Element{rect: r}
	if c.IsAggregatedView(el) {
		kept, err := c.KeptDims(el)
		if err == nil {
			if len(kept) == len(c.dims) {
				return "cube"
			}
			if len(kept) == 0 {
				return "grand-total"
			}
			return "view{" + strings.Join(kept, ",") + "}"
		}
	}
	return r.String()
}
