package viewcube_test

import (
	"fmt"
	"log"
	"strings"

	"viewcube"
)

const exampleCSV = `product,region,sales
ale,east,10
ale,west,5
bock,east,7
cider,west,3
`

// ExampleLoad shows the shortest path from a CSV relation to exact GROUP BY
// answers assembled from view elements.
func ExampleLoad() {
	cube, err := viewcube.Load(strings.NewReader(exampleCSV), "sales")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	v, err := eng.GroupBy("product")
	if err != nil {
		log.Fatal(err)
	}
	groups, err := v.Groups()
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range viewcube.SortedGroupKeys(groups) {
		fmt.Printf("%s %g\n", k, groups[k])
	}
	// Output:
	// ale 15
	// bock 7
	// cider 3
}

// ExampleEngine_Optimize shows Algorithm 1 selecting and materialising the
// optimal element basis for a declared workload: the hot view becomes a
// zero-cost read.
func ExampleEngine_Optimize() {
	cube, _ := viewcube.Load(strings.NewReader(exampleCSV), "sales")
	eng, _ := cube.NewEngine(viewcube.EngineOptions{})
	w := cube.NewWorkload()
	if err := w.AddViewKeeping(1, "product"); err != nil {
		log.Fatal(err)
	}
	if err := eng.Optimize(w); err != nil {
		log.Fatal(err)
	}
	if _, err := eng.GroupBy("product"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan cost:", eng.Stats().LastPlanCost)
	// Output:
	// plan cost: 0
}

// ExampleEngine_RangeSum shows §6 range aggregation by dimension value.
func ExampleEngine_RangeSum() {
	cube, _ := viewcube.Load(strings.NewReader(exampleCSV), "sales")
	eng, _ := cube.NewEngine(viewcube.EngineOptions{})
	sum, err := eng.RangeSum(map[string]viewcube.ValueRange{
		"region": {Lo: "east", Hi: "east"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(sum)
	// Output:
	// 17
}

// ExampleEngine_Query shows the SQL-like query layer.
func ExampleEngine_Query() {
	cube, _ := viewcube.Load(strings.NewReader(exampleCSV), "sales")
	eng, _ := cube.NewEngine(viewcube.EngineOptions{})
	res, err := eng.Query("SELECT SUM(sales) GROUP BY region WHERE product = 'ale'")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row.Key[0], row.Values[0])
	}
	// Output:
	// east 10
	// west 5
}
