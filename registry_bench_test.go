// Registry fast-path benchmarks: what the multi-cube catalog layer adds to
// a served query. Every request through the catalog surface pays one
// Acquire (registry mutex + refcount), one view resolution (alias map
// lookups) and one Release; the gate in TestTracedQueryOverheadGate holds
// that routing tax under 1% of the query itself.
package viewcube_test

import (
	"math/rand"
	"testing"

	"viewcube"
	"viewcube/internal/catalog"
	"viewcube/internal/workload"
)

// registryOverheadFixture builds the tracedOverheadFixture cube behind a
// one-cube registry with an aliasing view, plan cache warmed.
func registryOverheadFixture(b *testing.B) *catalog.Registry {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	tbl, err := workload.SalesTable(rng, 100, 8, 60, 20000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	reg := catalog.NewRegistry()
	if err := reg.RegisterHandle("bench", catalog.NewSafeHandle(cube, eng.Safe())); err != nil {
		b.Fatal(err)
	}
	err = reg.RegisterView(catalog.ViewSpec{
		Name: "aliased",
		Cube: "bench",
		Includes: catalog.IncludeList{Members: []catalog.MemberSpec{
			{Name: "product", Alias: "item"},
			{Name: "region"},
			{Name: "day"},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	lease, err := reg.Acquire("bench", "")
	if err != nil {
		b.Fatal(err)
	}
	defer lease.Release()
	if _, err := lease.Handle.GroupBy("product"); err != nil {
		b.Fatal(err)
	}
	return reg
}

// BenchmarkLeasedGroupBy is the no-routing baseline: the same handle query
// through a lease acquired once, so the loop body is exactly the work the
// routed path wraps.
func BenchmarkLeasedGroupBy(b *testing.B) {
	reg := registryOverheadFixture(b)
	lease, err := reg.Acquire("bench", "")
	if err != nil {
		b.Fatal(err)
	}
	defer lease.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lease.Handle.GroupBy("product"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegistryResolve is the full per-request catalog path: acquire a
// lease on the cube, resolve the view alias, answer the cached GroupBy
// through the handle and release.
func BenchmarkRegistryResolve(b *testing.B) {
	reg := registryOverheadFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lease, err := reg.Acquire("bench", "aliased")
		if err != nil {
			b.Fatal(err)
		}
		keep, err := lease.View.ResolveKeep([]string{"item"})
		if err != nil {
			lease.Release()
			b.Fatal(err)
		}
		if _, err := lease.Handle.GroupBy(keep...); err != nil {
			lease.Release()
			b.Fatal(err)
		}
		lease.Release()
	}
}
