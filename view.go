package viewcube

import (
	"fmt"
	"sort"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/relation"
)

// View is a materialised query answer: the array of an assembled view
// element, with helpers for relational interpretation when the cube was
// built from encoded data.
type View struct {
	cube *Cube
	el   Element
	arr  *ndarray.Array
	kept []int // cube dimension indices the element keeps unaggregated
}

func newView(c *Cube, el Element, arr *ndarray.Array) (*View, error) {
	v := &View{cube: c, el: el, arr: arr}
	for m, node := range el.rect {
		if node == freq.Root {
			v.kept = append(v.kept, m)
		}
	}
	return v, nil
}

// Element returns the view element identity this view materialises.
func (v *View) Element() Element { return v.el }

// Shape returns the array shape of the view.
func (v *View) Shape() []int { return v.arr.Shape() }

// At returns a cell of the view. It accepts either a full-rank multi-index
// (aggregated dimensions have extent 1) or one index per kept dimension, in
// cube order.
func (v *View) At(idx ...int) float64 {
	if len(idx) == v.arr.Rank() {
		return v.arr.At(idx...)
	}
	if len(idx) == len(v.kept) {
		full := make([]int, v.arr.Rank())
		for i, m := range v.kept {
			full[m] = idx[i]
		}
		return v.arr.At(full...)
	}
	panic(fmt.Sprintf("viewcube: At got %d indices; view has rank %d with %d kept dimensions",
		len(idx), v.arr.Rank(), len(v.kept)))
}

// Data returns a copy of the view's cells in row-major order.
func (v *View) Data() []float64 {
	out := make([]float64, v.arr.Size())
	copy(out, v.arr.Data())
	return out
}

// Value returns the single cell of a fully aggregated view, erroring if the
// view has more than one cell.
func (v *View) Value() (float64, error) {
	if v.arr.Size() != 1 {
		return 0, fmt.Errorf("viewcube: view has %d cells, not 1", v.arr.Size())
	}
	return v.arr.Data()[0], nil
}

// KeptDimensions returns the names of the dimensions this view keeps, in
// cube order (only meaningful for aggregated views).
func (v *View) KeptDimensions() []string {
	out := make([]string, len(v.kept))
	for i, m := range v.kept {
		out[i] = v.cube.dims[m]
	}
	return out
}

// Groups interprets an aggregated view of an encoded cube relationally:
// a map from the kept dimensions' values (joined by GroupKeySeparator when
// several are kept) to the summed measure. Padding coordinates are skipped.
func (v *View) Groups() (map[string]float64, error) {
	if v.cube.enc == nil {
		return nil, fmt.Errorf("viewcube: cube has no dictionary encoding")
	}
	if !v.cube.IsAggregatedView(v.el) {
		return nil, fmt.Errorf("viewcube: %v is not an aggregated view", v.el)
	}
	aggregated := make([]bool, len(v.cube.dims))
	for m := range aggregated {
		aggregated[m] = true
	}
	for _, m := range v.kept {
		aggregated[m] = false
	}
	return v.cube.enc.ViewGroups(v.arr, aggregated)
}

// Group returns the measure for one combination of kept-dimension values
// (in cube dimension order).
func (v *View) Group(values ...string) (float64, error) {
	if len(values) != len(v.kept) {
		return 0, fmt.Errorf("viewcube: %d values for %d kept dimensions", len(values), len(v.kept))
	}
	groups, err := v.Groups()
	if err != nil {
		return 0, err
	}
	key := relation.GroupKey(values...)
	got, ok := groups[key]
	if !ok {
		return 0, fmt.Errorf("viewcube: no group for %v", values)
	}
	return got, nil
}

// GroupValue pairs a group key with its aggregated measure.
type GroupValue struct {
	Key   string
	Value float64
}

// TopK returns the k largest groups of an encoded aggregated view, in
// descending value order (ties broken by key for determinism). k larger
// than the number of groups returns all of them.
func (v *View) TopK(k int) ([]GroupValue, error) {
	groups, err := v.Groups()
	if err != nil {
		return nil, err
	}
	out := make([]GroupValue, 0, len(groups))
	for key, val := range groups {
		out = append(out, GroupValue{Key: key, Value: val})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	if k < len(out) {
		out = out[:k]
	}
	return out, nil
}

// Iceberg returns the groups whose value is at least threshold, in
// descending value order — the iceberg-query companion to TopK.
func (v *View) Iceberg(threshold float64) ([]GroupValue, error) {
	groups, err := v.Groups()
	if err != nil {
		return nil, err
	}
	out := make([]GroupValue, 0, len(groups))
	for key, val := range groups {
		if val >= threshold {
			out = append(out, GroupValue{Key: key, Value: val})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Value != out[j].Value {
			return out[i].Value > out[j].Value
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// SortedGroupKeys returns the group keys in sorted order; use with Groups
// for deterministic iteration.
func SortedGroupKeys(groups map[string]float64) []string {
	return relation.SortedKeys(groups)
}

// SplitGroupKey splits a composite group key back into dimension values.
func SplitGroupKey(key string) []string { return relation.SplitGroupKey(key) }
