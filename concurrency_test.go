// Concurrent stress tests for the SafeEngine read path. Run under the race
// detector (CI runs `go test -race -run Concurrent ./...`): the point is
// not just that answers stay correct, but that overlapping reads, traced
// queries, and background reconfigurations share no unsynchronised state.
package viewcube_test

import (
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/workload"
)

// almostEqual compares aggregates up to float reordering: reconfiguration
// changes the assembly plan, which reorders the summation.
func almostEqual(a, b float64) bool {
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-7*scale
}

func sameGroups(t *testing.T, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("group count %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		if g, ok := got[k]; !ok || !almostEqual(g, w) {
			t.Fatalf("group %q = %g, want %g", k, got[k], w)
		}
	}
}

// TestConcurrentStressAgainstSerialOracle hammers one SafeEngine with
// goroutines mixing GroupBy, RangeSum, SQL and traced queries while a
// background goroutine keeps reconfiguring the materialised set. Assembly
// is exact, so every concurrent answer must match the serial oracle
// computed up front, whatever set the planner is working from.
func TestConcurrentStressAgainstSerialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tbl, err := workload.SalesTable(rng, 12, 6, 30, 8000)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{ReselectEvery: 25})
	if err != nil {
		t.Fatal(err)
	}
	safe := eng.Safe()

	// Serial oracle, computed before any concurrency starts.
	dayRange := map[string]viewcube.ValueRange{"day": {Lo: "day-005", Hi: "day-019"}}
	const sql = "SELECT SUM(sales) GROUP BY region"
	oracleProductView, err := safe.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	oracleProduct, err := oracleProductView.Groups()
	if err != nil {
		t.Fatal(err)
	}
	oracleTotal, err := safe.Total()
	if err != nil {
		t.Fatal(err)
	}
	oracleRange, err := safe.RangeSum(dayRange)
	if err != nil {
		t.Fatal(err)
	}
	oracleSQL, err := safe.Query(sql)
	if err != nil {
		t.Fatal(err)
	}

	// Background writer: keep migrating the materialised set while the
	// readers run.
	var stop atomic.Bool
	var reconfigs int
	writerDone := make(chan error, 1)
	go func() {
		defer close(writerDone)
		for !stop.Load() {
			if _, err := safe.Reconfigure(); err != nil {
				writerDone <- err
				return
			}
			reconfigs++
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const goroutines = 8
	const iters = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch (g + i) % 4 {
				case 0:
					v, err := safe.GroupBy("product")
					if err != nil {
						fail(err)
						return
					}
					groups, err := v.Groups()
					if err != nil {
						fail(err)
						return
					}
					for k, w := range oracleProduct {
						if !almostEqual(groups[k], w) {
							fail(errForGroup(k, groups[k], w))
							return
						}
					}
				case 1:
					total, err := safe.Total()
					if err != nil {
						fail(err)
						return
					}
					if !almostEqual(total, oracleTotal) {
						fail(errForGroup("total", total, oracleTotal))
						return
					}
				case 2:
					sum, err := safe.RangeSum(dayRange)
					if err != nil {
						fail(err)
						return
					}
					if !almostEqual(sum, oracleRange) {
						fail(errForGroup("range", sum, oracleRange))
						return
					}
				case 3:
					res, tr, err := safe.TraceQuery(sql)
					if err != nil {
						fail(err)
						return
					}
					if tr == nil || tr.Tree() == nil {
						fail(errForGroup("trace", 0, 1))
						return
					}
					if len(res.Rows) != len(oracleSQL.Rows) {
						fail(errForGroup("sql rows", float64(len(res.Rows)), float64(len(oracleSQL.Rows))))
						return
					}
					for j, row := range res.Rows {
						if !almostEqual(row.Values[0], oracleSQL.Rows[j].Values[0]) {
							fail(errForGroup(row.Key[0], row.Values[0], oracleSQL.Rows[j].Values[0]))
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	if err := <-writerDone; err != nil {
		t.Fatalf("background reconfigure: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if reconfigs == 0 {
		t.Fatal("background writer never reconfigured")
	}
	if got := safe.Stats().Queries; got < goroutines*iters/2 {
		t.Fatalf("only %d queries recorded", got)
	}
	// Re-check serially after the storm: the store must still be a
	// consistent basis.
	v, err := safe.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := v.Groups()
	if err != nil {
		t.Fatal(err)
	}
	sameGroups(t, groups, oracleProduct)
}

type groupMismatch struct {
	key       string
	got, want float64
}

func (e groupMismatch) Error() string {
	return "concurrent answer for " + e.key + " diverged from serial oracle"
}

func errForGroup(key string, got, want float64) error {
	return groupMismatch{key: key, got: got, want: want}
}

// TestConcurrentTraceIsolation runs many traced queries in parallel and
// checks each trace observed only its own query's spans: per-query
// execution contexts mean a trace can never pick up another goroutine's
// plan or store reads.
func TestConcurrentTraceIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tbl, err := workload.SalesTable(rng, 8, 4, 16, 2000)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	safe := eng.Safe()
	// Reference trace, serially.
	_, want, err := safe.TraceGroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	wantOps := want.Ops()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_, tr, err := safe.TraceGroupBy("product")
				if err != nil {
					errs <- err
					return
				}
				// Same materialised set (no writer in this test) → same plan
				// → identical modelled ops in every isolated trace.
				if tr.Ops() != wantOps {
					errs <- errForGroup("trace ops", float64(tr.Ops()), float64(wantOps))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
