// Streaming-ingest benchmarks and the read-latency gate. CI runs
//
//	go test -run TestIngestReadLatencyGate -ingestgate
//
// and fails the build if queries under a sustained ingest stream run more
// than 10% slower than the same snapshot-pinned queries on an idle engine —
// the measurable form of the non-blocking-readers guarantee. Opt-in
// (skipped without the flag) because each side runs several times under
// testing.Benchmark.
package viewcube_test

import (
	"flag"
	"math/rand"
	"sync"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/workload"
)

var ingestGate = flag.Bool("ingestgate", false, "measure read latency under sustained ingest and fail above 10% over idle")

// ingestBenchShape is the fixture cube's dimension sizes, shared by the
// writers so generated cell addresses stay in bounds.
var ingestBenchShape = [3]int{12, 6, 30}

// ingestBenchFixture builds a SafeEngine over the synthetic sales cube,
// enables streaming ingest, and warms the plan the benchmarks query.
func ingestBenchFixture(b *testing.B) *viewcube.SafeEngine {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	tbl, err := workload.SalesTable(rng, ingestBenchShape[0], ingestBenchShape[1], ingestBenchShape[2], 8000)
	if err != nil {
		b.Fatal(err)
	}
	cube, err := viewcube.FromTable(tbl)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		b.Fatal(err)
	}
	safe := eng.Safe()
	if err := safe.EnableIngest(viewcube.IngestOptions{Interval: 5 * time.Millisecond}); err != nil {
		b.Fatal(err)
	}
	if _, err := safe.GroupBy("product"); err != nil {
		b.Fatal(err)
	}
	return safe
}

// BenchmarkIngestThroughput measures the acknowledged-append rate of the
// streaming write path: WAL-less appends into the coalescing buffer while
// the background merger keeps folding batches.
func BenchmarkIngestThroughput(b *testing.B) {
	safe := ingestBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := i % ingestBenchShape[0]
		r := (i / ingestBenchShape[0]) % ingestBenchShape[1]
		d := (i / (ingestBenchShape[0] * ingestBenchShape[1])) % ingestBenchShape[2]
		if err := safe.Update(1, p, r, d); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := safe.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := safe.DisableIngest(); err != nil {
		b.Fatal(err)
	}
}

// benchQueryIngestIdle is the gate's baseline: snapshot-pinned GroupBy on
// an ingest-enabled engine with no write traffic.
func benchQueryIngestIdle(b *testing.B) {
	safe := ingestBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.GroupBy("product"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := safe.DisableIngest(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQueryUnderIngest runs the same query while a background writer
// streams a sustained ~128k appends/s (bursts of 256 every 2ms): reads pin
// snapshots, so a blocking regression shows up as merge-interval-sized
// stalls, far past the gate. The stream is rate-limited rather than a
// saturating tight loop so the gate measures waiting, not how the
// scheduler splits a small core count between two busy loops.
func BenchmarkQueryUnderIngest(b *testing.B) {
	safe := ingestBenchFixture(b)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			for n := 0; n < 256; n, i = n+1, i+1 {
				p := i % ingestBenchShape[0]
				r := (i / ingestBenchShape[0]) % ingestBenchShape[1]
				d := (i / (ingestBenchShape[0] * ingestBenchShape[1])) % ingestBenchShape[2]
				if err := safe.Update(1, p, r, d); err != nil {
					b.Error(err)
					return
				}
			}
		}
	}()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := safe.GroupBy("product"); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	if err := safe.DisableIngest(); err != nil {
		b.Fatal(err)
	}
}

func TestIngestReadLatencyGate(t *testing.T) {
	if !*ingestGate {
		t.Skip("enable with -ingestgate")
	}
	// Best-of-N filters scheduler noise on each side: the claim under test
	// is architectural (readers never wait on the write path), so only a
	// measurement artefact or a real regression can trip the gate.
	measure := func(fn func(*testing.B)) time.Duration {
		var best time.Duration
		for i := 0; i < 5; i++ {
			r := testing.Benchmark(fn)
			if d := time.Duration(r.NsPerOp()); best == 0 || d < best {
				best = d
			}
		}
		return best
	}
	idle := measure(benchQueryIngestIdle)
	busy := measure(BenchmarkQueryUnderIngest)
	overhead := 100 * (float64(busy)/float64(idle) - 1)
	t.Logf("idle snapshot-pinned read %v/op, under sustained ingest %v/op (%+.2f%%)", idle, busy, overhead)
	if limit := idle + idle/10; busy > limit {
		t.Errorf("reads under ingest %v/op exceed 110%% of idle baseline %v/op (%+.2f%%)", busy, idle, overhead)
	}
}
