module viewcube

go 1.22
