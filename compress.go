package viewcube

import (
	"fmt"

	"viewcube/internal/bestbasis"
)

// CompressedCube is a cube stored as the sparse coefficients of its best
// wavelet-packet basis (§4.3's compression application). With threshold 0
// the representation is exactly lossless.
type CompressedCube struct {
	c    *bestbasis.Compressed
	dims []string
}

// CompressOptions tunes Cube.Compress.
type CompressOptions struct {
	// Threshold drops coefficients with magnitude ≤ Threshold; 0 (the
	// default) drops exact zeros only and is lossless.
	Threshold float64
	// Entropy selects the Coifman–Wickerhauser entropy functional instead
	// of the default nonzero count.
	Entropy bool
}

// Compress selects the best wavelet-packet basis for this cube's contents
// and stores it sparsely. Intended for cubes up to a few million cells (the
// selection materialises the element graph).
func (c *Cube) Compress(opts CompressOptions) (*CompressedCube, error) {
	cost := bestbasis.NonzeroCost(opts.Threshold)
	if opts.Entropy {
		cost = bestbasis.EntropyCost()
	}
	comp, err := bestbasis.Compress(c.space, c.data, cost, opts.Threshold)
	if err != nil {
		return nil, err
	}
	return &CompressedCube{c: comp, dims: append([]string(nil), c.dims...)}, nil
}

// StoredValues returns the number of retained coefficients.
func (cc *CompressedCube) StoredValues() int { return cc.c.StoredValues() }

// Elements returns the number of basis elements in the representation.
func (cc *CompressedCube) Elements() int { return len(cc.c.Elements) }

// Decompress reconstructs the cube (named dimensions preserved). Note that
// a cube reconstructed this way has no dictionary encoding; compression
// operates on the array level.
func (cc *CompressedCube) Decompress() (*Cube, error) {
	arr, err := cc.c.Decompress()
	if err != nil {
		return nil, err
	}
	out, err := NewCubeFromData(cc.dims, arr.Shape(), arr.Data())
	if err != nil {
		return nil, fmt.Errorf("viewcube: rebuilding cube: %w", err)
	}
	return out, nil
}
