package viewcube_test

import (
	"math"
	"testing"

	"viewcube"
)

func TestEngineUpdateMaintainsViews(t *testing.T) {
	c := loadSales(t)
	eng, err := c.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Materialise a basis so updates exercise maintenance of real elements.
	w := c.NewWorkload()
	if err := w.AddViewKeeping(1, "product"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Optimize(w); err != nil {
		t.Fatal(err)
	}

	// A new ale sale in the east on day d2: +5.
	if err := eng.UpdateValue(5, map[string]string{
		"product": "ale", "region": "east", "day": "d2",
	}); err != nil {
		t.Fatal(err)
	}
	v, err := eng.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := v.Groups()
	if err != nil {
		t.Fatal(err)
	}
	if groups["ale"] != 22 { // 17 + 5
		t.Fatalf("ale after update = %g, want 22", groups["ale"])
	}
	total, err := eng.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != 43 {
		t.Fatalf("total after update = %g, want 43", total)
	}
	// Range queries see the update too (the querier cache is invalidated).
	early, err := eng.RangeSum(map[string]viewcube.ValueRange{"day": {Lo: "d1", Hi: "d2"}})
	if err != nil {
		t.Fatal(err)
	}
	if early != 33 { // 28 + 5
		t.Fatalf("range after update = %g, want 33", early)
	}
	// The cube itself reflects the change.
	if math.Abs(c.Total()-43) > 1e-12 {
		t.Fatalf("cube total %g, want 43", c.Total())
	}
}

func TestEngineUpdateValidation(t *testing.T) {
	c := loadSales(t)
	eng, _ := c.NewEngine(viewcube.EngineOptions{})
	if err := eng.Update(1, 0); err == nil {
		t.Fatal("want error for rank mismatch")
	}
	if err := eng.UpdateValue(1, map[string]string{"product": "ale"}); err == nil {
		t.Fatal("want error for missing dimensions")
	}
	if err := eng.UpdateValue(1, map[string]string{
		"product": "nope", "region": "east", "day": "d1",
	}); err == nil {
		t.Fatal("want error for unknown value")
	}
	if err := eng.UpdateValue(1, map[string]string{
		"product": "ale", "regionX": "east", "day": "d1",
	}); err == nil {
		t.Fatal("want error for unknown dimension")
	}
	raw, _ := viewcube.NewCube([]string{"x"}, []int{4})
	rawEng, _ := raw.NewEngine(viewcube.EngineOptions{})
	if err := rawEng.UpdateValue(1, map[string]string{"x": "a"}); err == nil {
		t.Fatal("raw cubes cannot update by value")
	}
	if err := rawEng.Update(3, 2); err != nil {
		t.Fatal(err)
	}
	v, err := rawEng.GroupBy("x")
	if err != nil {
		t.Fatal(err)
	}
	if v.At(2) != 3 {
		t.Fatalf("raw update lost: %g", v.At(2))
	}
}
