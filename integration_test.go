package viewcube_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"viewcube"
	"viewcube/internal/workload"
)

// TestEndToEndLifecycle drives the full system the way a deployment would:
// generate a fact table, build the cube, optimise for a workload with a
// disk-backed store, query, update, restart on the same directory, and
// verify every answer against relational ground truth throughout.
func TestEndToEndLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	raw, err := workload.SalesTable(rng, 24, 4, 16, 4000)
	if err != nil {
		t.Fatal(err)
	}
	cube, err := viewcube.FromTable(raw)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "store")

	groundTruth := func(dim int) map[string]float64 {
		g, err := raw.GroupBy([]int{dim})
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	checkGroups := func(eng *viewcube.Engine, keep string, dim int) {
		t.Helper()
		v, err := eng.GroupBy(keep)
		if err != nil {
			t.Fatal(err)
		}
		groups, err := v.Groups()
		if err != nil {
			t.Fatal(err)
		}
		for k, want := range groundTruth(dim) {
			if math.Abs(groups[k]-want) > 1e-6 {
				t.Fatalf("group %q = %g, want %g", k, groups[k], want)
			}
		}
	}

	// Phase 1: fresh engine, optimise, query.
	eng, err := cube.NewEngine(viewcube.EngineOptions{
		DiskDir:       dir,
		StorageBudget: 2 * cube.Volume(),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := cube.NewWorkload()
	if err := w.AddViewKeeping(0.6, "product"); err != nil {
		t.Fatal(err)
	}
	if err := w.AddViewKeeping(0.4, "region"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Optimize(w); err != nil {
		t.Fatal(err)
	}
	checkGroups(eng, "product", 0)
	checkGroups(eng, "region", 1)
	elementsAfterOptimize := eng.MaterializedElements()
	if elementsAfterOptimize < 2 {
		t.Fatalf("expected several materialised elements, got %d", elementsAfterOptimize)
	}

	// Phase 2: an incremental insert.
	if err := eng.UpdateValue(11, map[string]string{
		"product": "product-000", "region": "region-00", "day": "day-000",
	}); err != nil {
		t.Fatal(err)
	}
	if err := raw.Append([]string{"product-000", "region-00", "day-000"}, 11); err != nil {
		t.Fatal(err)
	}
	checkGroups(eng, "product", 0)
	checkGroups(eng, "day", 2)

	// Phase 3: restart on the same directory — the materialised set (with
	// the update durably applied) must be picked up as-is.
	eng2, err := cube.NewEngine(viewcube.EngineOptions{DiskDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if eng2.MaterializedElements() != elementsAfterOptimize {
		t.Fatalf("restart found %d elements, want %d", eng2.MaterializedElements(), elementsAfterOptimize)
	}
	checkGroups(eng2, "product", 0)
	checkGroups(eng2, "region", 1)
	total, err := eng2.Total()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := raw.GroupBy(nil)
	if math.Abs(total-want[""]) > 1e-6 {
		t.Fatalf("restarted total %g, want %g", total, want[""])
	}

	// Phase 4: range queries against the restarted engine agree with a
	// brute-force relational filter.
	sum, err := eng2.RangeSum(map[string]viewcube.ValueRange{
		"day": {Lo: "day-004", Hi: "day-011"},
	})
	if err != nil {
		t.Fatal(err)
	}
	brute := 0.0
	for i := 0; i < raw.Len(); i++ {
		row := raw.Row(i)
		if row.Values[2] >= "day-004" && row.Values[2] <= "day-011" {
			brute += row.Measure
		}
	}
	if math.Abs(sum-brute) > 1e-6 {
		t.Fatalf("range sum %g, want %g", sum, brute)
	}
}
