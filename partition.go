package viewcube

import (
	"fmt"
	"hash/fnv"
	"sync"
)

// PartitionTable splits a relation into shard tables by hashing the values
// of one dimension, so all tuples sharing that dimension value land in the
// same shard. Because SUM is distributive, any aggregate over the whole
// relation is the sum of the per-shard aggregates — the basis for the
// scale-out engine below.
func PartitionTable(t *Table, dim string, shards int) ([]*Table, error) {
	if shards < 1 {
		return nil, fmt.Errorf("viewcube: need at least one shard, got %d", shards)
	}
	dims := t.Dimensions()
	dimIdx := -1
	for i, d := range dims {
		if d == dim {
			dimIdx = i
			break
		}
	}
	if dimIdx < 0 {
		return nil, fmt.Errorf("viewcube: unknown partition dimension %q (have %v)", dim, dims)
	}
	out := make([]*Table, shards)
	for i := range out {
		tbl, err := NewTable(dims, t.Measure())
		if err != nil {
			return nil, err
		}
		out[i] = tbl
	}
	for i := 0; i < t.t.Len(); i++ {
		row := t.t.Row(i)
		h := fnv.New32a()
		h.Write([]byte(row.Values[dimIdx]))
		shard := int(h.Sum32()) % shards
		if shard < 0 {
			shard += shards
		}
		if err := out[shard].Append(row.Values, row.Measure); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Querier is the distributive fan-out query surface: SUM-based aggregates
// that can be answered by combining per-shard partial results exactly (§3
// of the paper). PartitionedEngine implements it over in-process shards;
// cluster.Coordinator implements the same interface over networked shard
// servers, so callers can swap one machine for many without changing query
// code.
type Querier interface {
	// GroupBy returns per-group SUMs keyed by joined group key.
	GroupBy(keep ...string) (map[string]float64, error)
	// Total returns the grand total.
	Total() (float64, error)
	// RangeSum sums the measure over lexicographic per-dimension value
	// ranges (see Engine.RangeSumWithin for the bounds semantics).
	RangeSum(ranges map[string]ValueRange) (float64, error)
}

var _ Querier = (*PartitionedEngine)(nil)

// PartitionedEngine answers aggregation queries over a sharded relation by
// fanning out to one engine per shard (in parallel) and merging the
// distributive results. Shards whose table is empty are skipped.
//
// Each shard engine is wrapped in a SafeEngine, so any number of
// PartitionedEngine queries may run concurrently: a shard serves the
// overlapping fan-out legs through its concurrent read path, and per-shard
// adaptation serialises against them on the shard's own lock.
type PartitionedEngine struct {
	dims    []string
	engines []*SafeEngine
	cubes   []*Cube
}

// NewPartitionedEngine builds one cube and engine per non-empty shard
// table. All tables must share a schema.
func NewPartitionedEngine(tables []*Table, opts EngineOptions) (*PartitionedEngine, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("viewcube: no shard tables")
	}
	if opts.DiskDir != "" {
		return nil, fmt.Errorf("viewcube: shards cannot share one DiskDir; use per-shard engines directly")
	}
	p := &PartitionedEngine{dims: tables[0].Dimensions()}
	for i, t := range tables {
		if t.Len() == 0 {
			continue
		}
		got := t.Dimensions()
		if len(got) != len(p.dims) {
			return nil, fmt.Errorf("viewcube: shard %d schema mismatch", i)
		}
		for j := range got {
			if got[j] != p.dims[j] {
				return nil, fmt.Errorf("viewcube: shard %d schema mismatch", i)
			}
		}
		cube, err := FromRelation(t)
		if err != nil {
			return nil, err
		}
		eng, err := cube.NewEngine(opts)
		if err != nil {
			return nil, err
		}
		p.cubes = append(p.cubes, cube)
		p.engines = append(p.engines, eng.Safe())
	}
	if len(p.engines) == 0 {
		return nil, fmt.Errorf("viewcube: all shards are empty")
	}
	return p, nil
}

// Dimensions returns the shared shard schema's dimension names.
func (p *PartitionedEngine) Dimensions() []string { return append([]string(nil), p.dims...) }

// Measure returns the shared measure name.
func (p *PartitionedEngine) Measure() string { return p.cubes[0].Measure() }

// Shards returns the number of live (non-empty) shards.
func (p *PartitionedEngine) Shards() int { return len(p.engines) }

// Shard returns shard i's engine, e.g. for per-shard statistics or timing.
func (p *PartitionedEngine) Shard(i int) *SafeEngine { return p.engines[i] }

// fanOut runs fn on every shard concurrently and returns the first error.
// Shard engines are SafeEngines, so fan-out legs from overlapping
// PartitionedEngine calls may hit the same shard simultaneously.
func (p *PartitionedEngine) fanOut(fn func(i int, eng *SafeEngine) error) error {
	var wg sync.WaitGroup
	errs := make([]error, len(p.engines))
	for i := range p.engines {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = fn(i, p.engines[i])
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// GroupBy merges the per-shard GROUP BY results (SUM is distributive, so
// addition per group key is exact).
func (p *PartitionedEngine) GroupBy(keep ...string) (map[string]float64, error) {
	partial := make([]map[string]float64, len(p.engines))
	err := p.fanOut(func(i int, eng *SafeEngine) error {
		v, err := eng.GroupBy(keep...)
		if err != nil {
			return err
		}
		g, err := v.Groups()
		if err != nil {
			return err
		}
		partial[i] = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, g := range partial {
		for k, v := range g {
			out[k] += v
		}
	}
	return out, nil
}

// Total sums the shard totals.
func (p *PartitionedEngine) Total() (float64, error) {
	totals := make([]float64, len(p.engines))
	err := p.fanOut(func(i int, eng *SafeEngine) error {
		t, err := eng.Total()
		if err != nil {
			return err
		}
		totals[i] = t
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, t := range totals {
		sum += t
	}
	return sum, nil
}

// RangeSum answers a value-range SUM across shards. Unlike Engine.RangeSum,
// bounds are interpreted lexicographically (first value ≥ Lo through last
// value ≤ Hi), because each shard holds a different subset of values and an
// exact bound may be absent from some shards.
func (p *PartitionedEngine) RangeSum(ranges map[string]ValueRange) (float64, error) {
	for name := range ranges {
		found := false
		for _, d := range p.dims {
			if d == name {
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("viewcube: unknown dimension %q", name)
		}
	}
	sums := make([]float64, len(p.engines))
	err := p.fanOut(func(i int, eng *SafeEngine) error {
		s, ok, err := eng.RangeSumWithin(ranges)
		if err != nil || !ok {
			return err // !ok: no values in range here, shard contributes 0
		}
		sums[i] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	sum := 0.0
	for _, s := range sums {
		sum += s
	}
	return sum, nil
}

// PlanCacheStats aggregates the per-shard plan-cache counters (each shard
// engine owns an epoch-keyed cache of the same type as the root engine's).
// Hits, misses, invalidations and entries are summed; Epoch reports the
// highest shard epoch.
func (p *PartitionedEngine) PlanCacheStats() PlanCacheStats {
	var out PlanCacheStats
	for _, eng := range p.engines {
		s := eng.PlanCacheStats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Invalidations += s.Invalidations
		out.Entries += s.Entries
		if s.Epoch > out.Epoch {
			out.Epoch = s.Epoch
		}
	}
	return out
}

// Optimize fans a keep-lists workload out to every shard (each shard runs
// Algorithm 1/2 on its own cube).
func (p *PartitionedEngine) Optimize(hotViews [][]string, freqs []float64) error {
	if len(hotViews) != len(freqs) {
		return fmt.Errorf("viewcube: %d hot views but %d frequencies", len(hotViews), len(freqs))
	}
	return p.fanOut(func(i int, eng *SafeEngine) error {
		w := p.cubes[i].NewWorkload()
		for j, keep := range hotViews {
			if err := w.AddViewKeeping(freqs[j], keep...); err != nil {
				return err
			}
		}
		return eng.Optimize(w)
	})
}
