package viewcube

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"viewcube/internal/adaptive"
	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/rangeagg"
	"viewcube/internal/store"
)

// Workload is an anticipated query population: aggregated views (or any
// view elements) with relative access frequencies. Frequencies are
// normalised when the workload is applied.
type Workload struct {
	cube    *Cube
	entries []workloadEntry
}

type workloadEntry struct {
	rect freq.Rect
	freq float64
}

// NewWorkload returns an empty workload for this cube.
func (c *Cube) NewWorkload() *Workload { return &Workload{cube: c} }

// Add records an element with a relative access frequency.
func (w *Workload) Add(e Element, frequency float64) error {
	if !w.cube.Valid(e) {
		return fmt.Errorf("viewcube: invalid element %v", e)
	}
	if frequency <= 0 {
		return fmt.Errorf("viewcube: frequency must be positive, got %g", frequency)
	}
	w.entries = append(w.entries, workloadEntry{rect: e.rect.Clone(), freq: frequency})
	return nil
}

// AddViewKeeping is a convenience: Add(ViewKeeping(keep...), frequency).
func (w *Workload) AddViewKeeping(frequency float64, keep ...string) error {
	e, err := w.cube.ViewKeeping(keep...)
	if err != nil {
		return err
	}
	return w.Add(e, frequency)
}

// Len returns the number of workload entries.
func (w *Workload) Len() int { return len(w.entries) }

// EngineOptions configures an Engine.
type EngineOptions struct {
	// StorageBudget is the Algorithm 2 target storage in cells. 0 (or any
	// value not exceeding the cube volume) keeps only the non-redundant
	// Algorithm 1 basis.
	StorageBudget int
	// ReselectEvery triggers automatic re-selection after this many
	// queries; 0 means adaptation happens only via Optimize/Reconfigure.
	ReselectEvery int
	// Decay in (0,1] ages observed frequencies at each reconfiguration so
	// the engine tracks drifting workloads; 0 defaults to 1 (no decay).
	Decay float64
	// DiskDir, when non-empty, stores materialised elements in that
	// directory instead of in memory.
	DiskDir string
	// CacheCells bounds the disk store's in-memory LRU cache (cells);
	// ignored for in-memory stores. 0 defaults to one cube volume.
	CacheCells int
	// Metrics receives the engine's instruments (latency histograms,
	// cache and reselection counters, ...). nil gives the engine a
	// private registry, reachable via Engine.Metrics. Sharing one Metrics
	// across engines aggregates their series.
	Metrics *Metrics
	// ExecWorkers bounds intra-query execution parallelism: independent
	// synthesize subtrees of one plan run on up to this many goroutines.
	// 0 defaults to GOMAXPROCS; 1 forces serial execution. Traced and
	// untraced queries parallelise identically (spans attach atomically).
	ExecWorkers int
	// ParallelExecCells is the minimum cell count at which a synthesize
	// node fans out; smaller nodes stay serial (goroutine handoff would
	// cost more than it hides). 0 defaults to
	// assembly.DefaultParallelCells.
	ParallelExecCells int
}

// Engine answers queries against a cube by dynamically assembling views
// from its materialised view element set, and adapts that set to the
// workload.
//
// A plain Engine is not safe for concurrent use: its public query methods
// perform any due automatic reselection inline, which rewrites the
// materialised set. Wrap it with Safe to share it across goroutines — the
// SafeEngine routes queries through the side-effect-free read path under a
// read lock and serialises mutations (Optimize, Update, reselection) under
// the write lock.
type Engine struct {
	cube  *Cube
	st    assembly.Store
	inner *adaptive.Engine
	rq    *rangeagg.Querier
	met   *Metrics
	opts  EngineOptions // retained so snapshot generations copy the executor config
}

// Stats re-exports the adaptive engine's counters.
type Stats = adaptive.Stats

// NewEngine attaches an engine to the cube. Initially the cube itself is
// the only materialised element; call Optimize (or let automatic
// re-selection run) to specialise the materialised set.
func (c *Cube) NewEngine(opts EngineOptions) (*Engine, error) {
	var st assembly.Store
	if opts.DiskDir != "" {
		budget := opts.CacheCells
		if budget == 0 {
			budget = c.Volume()
		}
		fs, err := store.Open(opts.DiskDir, budget)
		if err != nil {
			return nil, err
		}
		st = fs
	} else {
		st = assembly.NewMemStore()
	}
	if len(st.Elements()) == 0 {
		if err := st.Put(c.space.Root(), c.data.Clone()); err != nil {
			return nil, fmt.Errorf("viewcube: storing the cube: %w", err)
		}
	}
	return newEngineWith(c, st, opts)
}

// newEngineWith wires an Engine over an existing, already-seeded store: the
// adaptive core, the range querier and all metric instruments. NewEngine
// calls it after creating and seeding a private store; the measure-vector
// AggEngine calls it directly with component-plane views of its shared
// vector store.
func newEngineWith(c *Cube, st assembly.Store, opts EngineOptions) (*Engine, error) {
	inner, err := adaptive.New(c.space, st, adaptive.Options{
		ReselectEvery: opts.ReselectEvery,
		StorageBudget: opts.StorageBudget,
		Decay:         opts.Decay,
	})
	if err != nil {
		return nil, err
	}
	met := opts.Metrics
	if met == nil {
		met = NewMetrics()
	}
	e := &Engine{cube: c, st: st, inner: inner, met: met, opts: opts}
	e.rq = rangeagg.NewQuerier(c.space, engineElementSource{e})
	if fs, ok := st.(*store.FileStore); ok {
		fs.SetMetrics(met.store)
	}
	inner.SetMetrics(met.adaptive)
	inner.Assembler().SetMetrics(met.assembly)
	inner.Assembler().SetExecutor(opts.ExecWorkers, opts.ParallelExecCells)
	inner.Planner().SetMetrics(met.plans)
	e.rq.SetMetrics(met.ranges)
	return e, nil
}

// Metrics returns the engine's metrics registry (the one passed in
// EngineOptions, or the engine's private registry).
func (e *Engine) Metrics() *Metrics { return e.met }

// forStore derives a read-only sibling engine over st, an immutable
// snapshot clone of this engine's store. The sibling shares the cube, the
// metrics, the adaptive workload profile and the (epoch-pinned) plan cache;
// the store, the assembly executor and the range-element cache are
// generation-local. It is the payload of one MVCC snapshot: queries against
// it never touch the base engine's mutable store.
func (e *Engine) forStore(st assembly.Store) *Engine {
	g := &Engine{cube: e.cube, st: st, inner: e.inner.ForStore(st), met: e.met, opts: e.opts}
	g.rq = rangeagg.NewQuerier(e.cube.space, engineElementSource{g})
	g.inner.Assembler().SetMetrics(e.met.assembly)
	g.inner.Assembler().SetExecutor(e.opts.ExecWorkers, e.opts.ParallelExecCells)
	g.rq.SetMetrics(e.met.ranges)
	return g
}

// cloneStore deep-copies every materialised element of st into a fresh
// MemStore — the immutable snapshot the merger publishes. Only MemStore
// contents are cloneable cheaply; the ingest path enforces MemStore backing
// at EnableIngest time.
func cloneStore(st assembly.Store) (*assembly.MemStore, error) {
	out := assembly.NewMemStore()
	for _, r := range st.Elements() {
		a, ok := st.Get(r)
		if !ok {
			return nil, fmt.Errorf("viewcube: snapshot element %v vanished mid-clone", r)
		}
		if err := out.Put(r, a.Clone()); err != nil {
			return nil, fmt.Errorf("viewcube: storing snapshot element %v: %w", r, err)
		}
	}
	return out, nil
}

// engineElementSource feeds the range querier with assembled elements,
// recording their accesses so adaptation sees range workloads too.
type engineElementSource struct{ e *Engine }

func (s engineElementSource) Element(r freq.Rect) (*ndarray.Array, error) {
	return s.ElementCtx(nil, r)
}

// ElementCtx implements rangeagg.CtxElementSource, forwarding the per-query
// execution context into assembly.
func (s engineElementSource) ElementCtx(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error) {
	return s.e.inner.Query(x, r)
}

// maybeReselect performs a due automatic reselection. Only the plain
// Engine's public entry points call it (queries on a plain engine are
// single-threaded by contract); SafeEngine instead drains the due flag
// under its write lock after the read completes.
func (e *Engine) maybeReselect() error {
	if !e.inner.ReselectDue() {
		return nil
	}
	_, err := e.inner.AutoReconfigure(nil)
	return err
}

// Optimize selects and materialises the best element set for an
// anticipated workload: Algorithm 1 for the non-redundant basis, then
// Algorithm 2 up to the storage budget. Observed query history is also
// taken into account.
func (e *Engine) Optimize(w *Workload) error {
	if w != nil {
		for _, ent := range w.entries {
			e.inner.Observe(ent.rect, ent.freq)
		}
	}
	_, err := e.inner.Reconfigure(nil)
	return err
}

// Reconfigure re-selects the materialised set from the observed query
// frequencies, reporting whether anything changed.
func (e *Engine) Reconfigure() (bool, error) { return e.inner.Reconfigure(nil) }

// View answers a view-element query, assembling it from the materialised
// set.
func (e *Engine) View(el Element) (*View, error) {
	v, err := e.viewObserved(nil, el)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

// viewObserved is the timed-and-counted read path: it never reselects, so
// SafeEngine may call it under a read lock.
func (e *Engine) viewObserved(x *obs.ExecCtx, el Element) (*View, error) {
	start := time.Now()
	v, err := e.viewInner(x, el)
	e.met.observe("view", start, err)
	return v, err
}

func (e *Engine) viewInner(x *obs.ExecCtx, el Element) (*View, error) {
	if !e.cube.Valid(el) {
		return nil, fmt.Errorf("viewcube: invalid element %v", el)
	}
	arr, err := e.inner.Query(x, el.rect)
	if err != nil {
		return nil, err
	}
	return newView(e.cube, el, arr)
}

// GroupBy answers the aggregated view that keeps the named dimensions and
// SUM-aggregates all others.
func (e *Engine) GroupBy(keep ...string) (*View, error) {
	v, err := e.groupByObserved(nil, keep...)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (e *Engine) groupByObserved(x *obs.ExecCtx, keep ...string) (*View, error) {
	start := time.Now()
	v, err := e.groupByInner(x, keep...)
	e.met.observe("groupby", start, err)
	return v, err
}

func (e *Engine) groupByInner(x *obs.ExecCtx, keep ...string) (*View, error) {
	el, err := e.cube.ViewKeeping(keep...)
	if err != nil {
		return nil, err
	}
	return e.viewInner(x, el)
}

// Total returns the grand total via the engine (exercising assembly rather
// than scanning the cube).
func (e *Engine) Total() (float64, error) {
	total, err := e.totalObserved(nil)
	if err == nil {
		err = e.maybeReselect()
	}
	return total, err
}

func (e *Engine) totalObserved(x *obs.ExecCtx) (float64, error) {
	start := time.Now()
	total, err := e.totalInner(x)
	e.met.observe("total", start, err)
	return total, err
}

func (e *Engine) totalInner(x *obs.ExecCtx) (float64, error) {
	v, err := e.viewInner(x, e.cube.GrandTotal())
	if err != nil {
		return 0, err
	}
	return v.Value()
}

// ValueRange selects an inclusive range of a dictionary-encoded dimension
// by value. Empty Lo means "from the first value"; empty Hi means "to the
// last value". Dictionary codes are assigned in sorted value order, so a
// value range is always a contiguous coordinate range.
type ValueRange struct {
	Lo, Hi string
}

// RangeSum computes the SUM of the measure over the box selected by the
// per-dimension value ranges (unnamed dimensions are unrestricted),
// answered through intermediate view elements (§6 of the paper).
func (e *Engine) RangeSum(ranges map[string]ValueRange) (float64, error) {
	sum, err := e.rangeSumObserved(nil, ranges)
	if err == nil {
		err = e.maybeReselect()
	}
	return sum, err
}

func (e *Engine) rangeSumObserved(x *obs.ExecCtx, ranges map[string]ValueRange) (float64, error) {
	start := time.Now()
	sum, err := e.rangeSumInner(x, ranges)
	e.met.observe("range", start, err)
	return sum, err
}

func (e *Engine) rangeSumInner(x *obs.ExecCtx, ranges map[string]ValueRange) (float64, error) {
	if e.cube.enc == nil {
		return 0, fmt.Errorf("viewcube: RangeSum by value needs a dictionary-encoded cube; use RangeSumIndex")
	}
	box, err := e.resolveBox(ranges)
	if err != nil {
		return 0, err
	}
	return e.rq.RangeSumCtx(x, box)
}

// resolveBox maps per-dimension value ranges onto the coordinate box the
// range queriers consume: named dimensions resolve through resolveRange,
// unnamed dimensions default to their real (non-padding) domain. The cube
// must be dictionary-encoded.
func (e *Engine) resolveBox(ranges map[string]ValueRange) (rangeagg.Box, error) {
	shape := e.cube.Shape()
	lo := make([]int, len(shape))
	ext := make([]int, len(shape))
	for m := range shape {
		// Default: the real (non-padding) domain of the dimension.
		ext[m] = e.cube.enc.Dicts[m].Len()
		if ext[m] == 0 {
			ext[m] = 1
		}
	}
	for name, vr := range ranges {
		m, err := e.cube.DimIndex(name)
		if err != nil {
			return rangeagg.Box{}, err
		}
		loCode, extCode, err := e.resolveRange(m, vr)
		if err != nil {
			return rangeagg.Box{}, err
		}
		lo[m], ext[m] = loCode, extCode
	}
	return rangeagg.Box{Lo: lo, Ext: ext}, nil
}

// RangeSumWithin is RangeSum with lexicographic bounds: each restricted
// dimension covers the dictionary values lying within [Lo, Hi] (first value
// ≥ Lo through last value ≤ Hi), so the exact bound strings need not be
// present. ok reports whether the box was non-empty; when a restricted
// dimension has no values in range (or a dictionary is empty) the sum is 0
// and ok is false, with no error. This is the per-shard query of the
// distributive fan-out (PartitionedEngine, cluster shards): a shard holds
// an arbitrary subset of each dimension's values, so exact-bound lookup
// would spuriously fail on shards that lack the endpoint values.
func (e *Engine) RangeSumWithin(ranges map[string]ValueRange) (float64, bool, error) {
	sum, ok, err := e.rangeSumWithinObserved(nil, ranges)
	if err == nil {
		err = e.maybeReselect()
	}
	return sum, ok, err
}

func (e *Engine) rangeSumWithinObserved(x *obs.ExecCtx, ranges map[string]ValueRange) (float64, bool, error) {
	if e.cube.enc == nil {
		return 0, false, fmt.Errorf("viewcube: RangeSumWithin needs a dictionary-encoded cube; use RangeSumIndex")
	}
	shape := e.cube.Shape()
	lo := make([]int, len(shape))
	ext := make([]int, len(shape))
	for m := range shape {
		ext[m] = e.cube.enc.Dicts[m].Len()
		if ext[m] == 0 {
			return 0, false, nil // empty dictionary: this sub-cube holds nothing
		}
	}
	for name, vr := range ranges {
		m, err := e.cube.DimIndex(name)
		if err != nil {
			return 0, false, err
		}
		loCode, hiCode, ok, err := e.cube.enc.Dicts[m].BoundsWithin(vr.Lo, vr.Hi)
		if err != nil {
			return 0, false, err
		}
		if !ok {
			return 0, false, nil // no values in range here
		}
		lo[m], ext[m] = loCode, hiCode-loCode+1
	}
	sum, err := e.rangeSumIndexObserved(x, lo, ext)
	return sum, err == nil, err
}

// RangeSumIndex computes the SUM over the half-open coordinate box
// [lo, lo+ext).
func (e *Engine) RangeSumIndex(lo, ext []int) (float64, error) {
	sum, err := e.rangeSumIndexObserved(nil, lo, ext)
	if err == nil {
		err = e.maybeReselect()
	}
	return sum, err
}

func (e *Engine) rangeSumIndexObserved(x *obs.ExecCtx, lo, ext []int) (float64, error) {
	start := time.Now()
	sum, err := e.rq.RangeSumCtx(x, rangeagg.Box{Lo: lo, Ext: ext})
	e.met.observe("range", start, err)
	return sum, err
}

// GroupByWhere answers the OLAP "dice" query: SUM grouped by the kept
// dimensions, restricted to contiguous value ranges on the remaining
// dimensions (unnamed filtered dimensions are unrestricted). It is answered
// through intermediate view elements, reading O(groups · Π log n) cells
// instead of scanning the filtered region. Kept dimensions cannot also be
// filtered.
func (e *Engine) GroupByWhere(keep []string, ranges map[string]ValueRange) (*View, error) {
	v, err := e.groupByWhereObserved(nil, keep, ranges)
	if err == nil {
		err = e.maybeReselect()
	}
	if err != nil {
		return nil, err
	}
	return v, nil
}

func (e *Engine) groupByWhereObserved(x *obs.ExecCtx, keep []string, ranges map[string]ValueRange) (*View, error) {
	start := time.Now()
	v, err := e.groupByWhereInner(x, keep, ranges)
	e.met.observe("groupby_where", start, err)
	return v, err
}

func (e *Engine) groupByWhereInner(x *obs.ExecCtx, keep []string, ranges map[string]ValueRange) (*View, error) {
	if e.cube.enc == nil {
		return nil, fmt.Errorf("viewcube: GroupByWhere needs a dictionary-encoded cube")
	}
	keepMask, box, err := e.resolveGroupedBox(keep, ranges)
	if err != nil {
		return nil, err
	}
	arr, err := e.rq.GroupedRangeSumCtx(x, box, keepMask)
	if err != nil {
		return nil, err
	}
	el, err := e.cube.ViewKeeping(keep...)
	if err != nil {
		return nil, err
	}
	return newView(e.cube, el, arr)
}

// resolveGroupedBox builds the keep mask and coordinate box of a grouped
// "dice" query: kept dimensions are full-extent and unfiltered, filtered
// dimensions resolve through resolveRange, remaining dimensions default to
// their real (non-padding) domains.
func (e *Engine) resolveGroupedBox(keep []string, ranges map[string]ValueRange) ([]bool, rangeagg.Box, error) {
	shape := e.cube.Shape()
	keepMask := make([]bool, len(shape))
	for _, name := range keep {
		m, err := e.cube.DimIndex(name)
		if err != nil {
			return nil, rangeagg.Box{}, err
		}
		if _, filtered := ranges[name]; filtered {
			return nil, rangeagg.Box{}, fmt.Errorf("viewcube: dimension %q cannot be both kept and filtered", name)
		}
		keepMask[m] = true
	}
	lo := make([]int, len(shape))
	ext := make([]int, len(shape))
	for m := range shape {
		if keepMask[m] {
			ext[m] = shape[m] // kept dimensions must be unfiltered and full
			continue
		}
		// Default: the real (non-padding) domain.
		ext[m] = e.cube.enc.Dicts[m].Len()
		if ext[m] == 0 {
			ext[m] = 1
		}
	}
	for name, vr := range ranges {
		m, err := e.cube.DimIndex(name)
		if err != nil {
			return nil, rangeagg.Box{}, err
		}
		loCode, extCode, err := e.resolveRange(m, vr)
		if err != nil {
			return nil, rangeagg.Box{}, err
		}
		lo[m], ext[m] = loCode, extCode
	}
	return keepMask, rangeagg.Box{Lo: lo, Ext: ext}, nil
}

// resolveRange maps a ValueRange on dimension m to a coordinate interval.
func (e *Engine) resolveRange(m int, vr ValueRange) (lo, ext int, err error) {
	dict := e.cube.enc.Dicts[m]
	loCode := 0
	hiCode := dict.Len() - 1
	if vr.Lo != "" {
		c, ok := dict.Code(vr.Lo)
		if !ok {
			return 0, 0, fmt.Errorf("viewcube: value %q not in dimension %q", vr.Lo, e.cube.dims[m])
		}
		loCode = c
	}
	if vr.Hi != "" {
		c, ok := dict.Code(vr.Hi)
		if !ok {
			return 0, 0, fmt.Errorf("viewcube: value %q not in dimension %q", vr.Hi, e.cube.dims[m])
		}
		hiCode = c
	}
	if hiCode < loCode {
		return 0, 0, fmt.Errorf("viewcube: empty range on dimension %q", e.cube.dims[m])
	}
	return loCode, hiCode - loCode + 1, nil
}

// Update applies a delta to one cube cell and incrementally maintains every
// materialised element (each stored element changes in exactly one cell, by
// ±delta — O(elements · rank), independent of element volumes). Cached
// range-query elements are invalidated, and the plan-cache epoch is bumped
// so no query serves a plan derived from pre-update state.
func (e *Engine) Update(delta float64, idx ...int) error {
	if err := assembly.UpdateCell(e.cube.space, e.st, delta, idx); err != nil {
		return err
	}
	if delta == 0 {
		// UpdateCell validated the index and touched nothing: a no-op delta
		// must not invalidate plans, cached range elements or result caches.
		return nil
	}
	e.cube.data.Add(delta, idx...)
	e.rq.Reset()
	e.inner.InvalidatePlans()
	e.met.updates.Inc()
	return nil
}

// UpdateValue is Update addressed by dimension values on an encoded cube:
// the tuple's cell is located through the dictionaries, then maintained
// incrementally.
func (e *Engine) UpdateValue(delta float64, values map[string]string) error {
	idx, err := e.resolveUpdateIndex(values)
	if err != nil {
		return err
	}
	return e.Update(delta, idx...)
}

// resolveUpdateIndex maps a full tuple of dimension values to its cell
// index through the dictionaries. It only reads immutable encoding state,
// so it is safe without any lock.
func (e *Engine) resolveUpdateIndex(values map[string]string) ([]int, error) {
	if e.cube.enc == nil {
		return nil, fmt.Errorf("viewcube: UpdateValue needs a dictionary-encoded cube; use Update")
	}
	if len(values) != len(e.cube.dims) {
		return nil, fmt.Errorf("viewcube: need a value for each of the %d dimensions", len(e.cube.dims))
	}
	idx := make([]int, len(e.cube.dims))
	for name, val := range values {
		m, err := e.cube.DimIndex(name)
		if err != nil {
			return nil, err
		}
		code, ok := e.cube.enc.Dicts[m].Code(val)
		if !ok {
			return nil, fmt.Errorf("viewcube: value %q not in dimension %q", val, name)
		}
		idx[m] = code
	}
	return idx, nil
}

// SaveState writes the engine's observed workload profile (access counts
// per element) as JSON, so a restarted engine can resume adaptation warm.
// Materialised elements themselves persist via a DiskDir store; SaveState
// covers only the frequency statistics.
func (e *Engine) SaveState(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e.inner.State())
}

// LoadState merges a previously saved workload profile into the engine.
func (e *Engine) LoadState(r io.Reader) error {
	var state map[string]float64
	if err := json.NewDecoder(r).Decode(&state); err != nil {
		return fmt.Errorf("viewcube: decoding engine state: %w", err)
	}
	return e.inner.RestoreState(state)
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats { return e.inner.Stats() }

// StoreStats reports the element store's cache behaviour; for an in-memory
// store every field is zero and Disk is false.
func (e *Engine) StoreStats() StoreStats {
	if fs, ok := e.st.(*store.FileStore); ok {
		return StoreStats{
			Disk:           true,
			CacheHits:      fs.Hits(),
			CacheMisses:    fs.Misses(),
			CacheEvictions: fs.Evictions(),
			CachedCells:    fs.CachedCells(),
		}
	}
	return StoreStats{}
}

// PlanCacheStats reports the plan cache's behaviour: hit/miss counters, the
// epoch-bump count, and the current epoch. Snapshot is the streaming-ingest
// snapshot epoch (0 when ingest is not enabled); Epoch+Snapshot together
// form the monotone data-version counter result caches sync against.
type PlanCacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	Epoch         uint64 `json:"epoch"`
	Snapshot      uint64 `json:"snapshot_epoch,omitempty"`
	Entries       int    `json:"entries"`
}

// PlanCacheStats snapshots the engine's plan-cache counters.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	s := e.inner.Planner().Stats()
	return PlanCacheStats{
		Hits:          s.Hits,
		Misses:        s.Misses,
		Invalidations: s.Invalidations,
		Epoch:         s.Epoch,
		Entries:       s.Entries,
	}
}

// MaterializedElements returns how many view elements are currently
// materialised.
func (e *Engine) MaterializedElements() int { return len(e.st.Elements()) }

// StorageCells returns the current materialised volume in cells.
func (e *Engine) StorageCells() int { return e.cube.space.SetVolume(e.st.Elements()) }
