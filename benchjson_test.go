// Machine-readable benchmark results. The canonical `go test -bench=.`
// output is for humans; CI and tracking scripts want JSON lines:
//
//	go test -run TestBenchJSON -benchjson [-benchjson.out results.json]
//
// Each line is one benchmark: {"name", "iterations", "ns_per_op",
// "bytes_per_op", "allocs_per_op"}.
package viewcube_test

import (
	"encoding/json"
	"flag"
	"os"
	"testing"
)

var (
	benchJSON    = flag.Bool("benchjson", false, "run the canonical benchmarks and emit JSON lines")
	benchJSONOut = flag.String("benchjson.out", "", "write -benchjson results to this file instead of stdout")
)

// benchResult is one emitted line.
type benchResult struct {
	Name        string `json:"name"`
	Iterations  int    `json:"iterations"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// TestBenchJSON runs a representative slice of the benchmark suite under
// testing.Benchmark and prints one JSON object per line. It is opt-in
// (skipped without -benchjson) so the ordinary test run stays fast.
func TestBenchJSON(t *testing.T) {
	if !*benchJSON {
		t.Skip("enable with -benchjson")
	}
	out := os.Stdout
	if *benchJSONOut != "" {
		f, err := os.Create(*benchJSONOut)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	for _, bench := range []struct {
		name string
		fn   func(*testing.B)
	}{
		{"EngineGroupBy", BenchmarkEngineGroupBy},
		{"ParallelGroupBy", BenchmarkParallelGroupBy},
		{"AssembleViewFromBasis", BenchmarkAssembleViewFromBasis},
		{"PlanCacheMiss", BenchmarkPlanCacheMiss},
		{"PlanCacheHit", BenchmarkPlanCacheHit},
		{"PlanCacheHitParallel", BenchmarkPlanCacheHitParallel},
		{"RangeSumViaElements", BenchmarkRangeSumViaElements},
		{"GroupByAvgTwoEngine", BenchmarkGroupByAvgTwoEngine},
		{"GroupByAvgVector", BenchmarkGroupByAvgVector},
		{"RangeAggregation", BenchmarkRangeAggregation},
		{"FileStoreRoundTrip", BenchmarkFileStoreRoundTrip},
		{"QueryLanguage", BenchmarkQueryLanguage},
		{"AdaptiveReconfigure", BenchmarkAdaptiveReconfigure},
		{"WaveletTransform", BenchmarkWaveletTransform},
		{"HaarPartial", BenchmarkHaarPartial},
		{"MaterializeWaveletBasis", BenchmarkMaterializeWaveletBasis},
		{"ClusterScatterGather", BenchmarkClusterScatterGather},
		{"ClusterReplicaFanOut", BenchmarkClusterReplicaFanOut},
		{"LeasedGroupBy", BenchmarkLeasedGroupBy},
		{"RegistryResolve", BenchmarkRegistryResolve},
		{"ResultCacheHit", BenchmarkResultCacheHit},
		{"ResultCacheHitParallel", BenchmarkResultCacheHitParallel},
		{"ResultCacheMiss", BenchmarkResultCacheMiss},
		{"IngestThroughput", BenchmarkIngestThroughput},
		{"QueryUnderIngest", BenchmarkQueryUnderIngest},
		{"TracedQueryOverheadOff", benchTracedOff},
		{"TracedQueryOverheadSampled", benchTracedSampled},
		{"TracedQueryOverheadTraced", benchTracedFull},
	} {
		r := testing.Benchmark(bench.fn)
		if err := enc.Encode(benchResult{
			Name:        bench.name,
			Iterations:  r.N,
			NsPerOp:     r.NsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}); err != nil {
			t.Fatal(err)
		}
	}
}
