package viewcube_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"viewcube"
	"viewcube/internal/workload"
)

func bigSalesTable(t *testing.T, rows int) (*viewcube.Table, *viewcube.Cube) {
	t.Helper()
	raw, err := workload.SalesTable(rand.New(rand.NewSource(17)), 40, 6, 30, rows)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through CSV to get a public Table.
	var sb bytes.Buffer
	if err := raw.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	tbl, err := viewcube.ReadTable(&sb, "sales")
	if err != nil {
		t.Fatal(err)
	}
	cube, err := viewcube.FromRelation(tbl)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, cube
}

func TestPartitionTable(t *testing.T) {
	tbl, _ := bigSalesTable(t, 2000)
	shards, err := viewcube.PartitionTable(tbl, "product", 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range shards {
		total += s.Len()
	}
	if total != tbl.Len() {
		t.Fatalf("shards hold %d rows, want %d", total, tbl.Len())
	}
	// Same product never appears in two shards (checked via each shard
	// cube's dictionary, since the public Table does not expose rows).
	seen := map[string]int{}
	for si, s := range shards {
		cube, err := viewcube.FromRelation(s)
		if err != nil {
			t.Fatal(err)
		}
		for code := 0; ; code++ {
			v, ok := cube.ValueOf("product", code)
			if !ok {
				break
			}
			if prev, dup := seen[v]; dup && prev != si {
				t.Fatalf("product %q in shards %d and %d", v, prev, si)
			}
			seen[v] = si
		}
	}
	if _, err := viewcube.PartitionTable(tbl, "nope", 2); err == nil {
		t.Fatal("want error for unknown dimension")
	}
	if _, err := viewcube.PartitionTable(tbl, "product", 0); err == nil {
		t.Fatal("want error for zero shards")
	}
}

func TestPartitionedEngineMatchesSingleEngine(t *testing.T) {
	tbl, cube := bigSalesTable(t, 3000)
	shards, err := viewcube.PartitionTable(tbl, "product", 5)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := viewcube.NewPartitionedEngine(shards, viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if pe.Shards() < 2 {
		t.Fatalf("expected several live shards, got %d", pe.Shards())
	}
	single, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Totals agree.
	pt, err := pe.Total()
	if err != nil {
		t.Fatal(err)
	}
	st, err := single.Total()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pt-st) > 1e-6 {
		t.Fatalf("partitioned total %g, single %g", pt, st)
	}

	// GROUP BY region agrees group-by-group.
	pg, err := pe.GroupBy("region")
	if err != nil {
		t.Fatal(err)
	}
	sv, err := single.GroupBy("region")
	if err != nil {
		t.Fatal(err)
	}
	sg, err := sv.Groups()
	if err != nil {
		t.Fatal(err)
	}
	for k, want := range sg {
		if math.Abs(pg[k]-want) > 1e-6 {
			t.Fatalf("group %q: partitioned %g, single %g", k, pg[k], want)
		}
	}

	// GROUP BY the partition dimension itself also agrees.
	pg, err = pe.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	sv, err = single.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	sg, _ = sv.Groups()
	for k, want := range sg {
		if want == 0 {
			continue // padding groups exist only on the single cube
		}
		if math.Abs(pg[k]-want) > 1e-6 {
			t.Fatalf("product %q: partitioned %g, single %g", k, pg[k], want)
		}
	}
}

func TestPartitionedRangeSum(t *testing.T) {
	tbl, cube := bigSalesTable(t, 3000)
	shards, err := viewcube.PartitionTable(tbl, "product", 4)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := viewcube.NewPartitionedEngine(shards, viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	single, _ := cube.NewEngine(viewcube.EngineOptions{})
	// Day range: both engines use exact day values (days exist everywhere).
	want, err := single.RangeSum(map[string]viewcube.ValueRange{
		"day": {Lo: "day-005", Hi: "day-019"},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := pe.RangeSum(map[string]viewcube.ValueRange{
		"day": {Lo: "day-005", Hi: "day-019"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("partitioned range %g, single %g", got, want)
	}
	// Product range: lexicographic bounds work even though each shard holds
	// a different product subset.
	got, err = pe.RangeSum(map[string]viewcube.ValueRange{
		"product": {Lo: "product-010", Hi: "product-019"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err = single.RangeSum(map[string]viewcube.ValueRange{
		"product": {Lo: "product-010", Hi: "product-019"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("partitioned product range %g, single %g", got, want)
	}
	if _, err := pe.RangeSum(map[string]viewcube.ValueRange{"nope": {}}); err == nil {
		t.Fatal("want error for unknown dimension")
	}
}

func TestPartitionedOptimize(t *testing.T) {
	tbl, _ := bigSalesTable(t, 2000)
	shards, err := viewcube.PartitionTable(tbl, "product", 3)
	if err != nil {
		t.Fatal(err)
	}
	pe, err := viewcube.NewPartitionedEngine(shards, viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pe.Optimize([][]string{{"region"}}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	// Still correct after optimisation.
	g, err := pe.GroupBy("region")
	if err != nil {
		t.Fatal(err)
	}
	if len(g) == 0 {
		t.Fatal("no groups after optimize")
	}
	if err := pe.Optimize([][]string{{"region"}}, nil); err == nil {
		t.Fatal("want error for mismatched freqs")
	}
}

func TestPartitionedEngineValidation(t *testing.T) {
	if _, err := viewcube.NewPartitionedEngine(nil, viewcube.EngineOptions{}); err == nil {
		t.Fatal("want error for no shards")
	}
	empty, _ := viewcube.NewTable([]string{"a"}, "m")
	if _, err := viewcube.NewPartitionedEngine([]*viewcube.Table{empty}, viewcube.EngineOptions{}); err == nil {
		t.Fatal("want error for all-empty shards")
	}
	t1, _ := viewcube.NewTable([]string{"a"}, "m")
	_ = t1.Append([]string{"x"}, 1)
	t2, _ := viewcube.NewTable([]string{"b"}, "m")
	_ = t2.Append([]string{"y"}, 1)
	if _, err := viewcube.NewPartitionedEngine([]*viewcube.Table{t1, t2}, viewcube.EngineOptions{}); err == nil {
		t.Fatal("want error for schema mismatch")
	}
	full, _ := viewcube.NewTable([]string{"a"}, "m")
	_ = full.Append([]string{"x"}, 1)
	if _, err := viewcube.NewPartitionedEngine([]*viewcube.Table{full}, viewcube.EngineOptions{DiskDir: "/tmp/x"}); err == nil {
		t.Fatal("want error for shared disk dir")
	}
}
