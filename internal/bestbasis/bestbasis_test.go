package bestbasis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

func TestNonzeroCost(t *testing.T) {
	a, _ := ndarray.NewFrom([]float64{0, 1, -2, 0.001}, 4)
	if got := NonzeroCost(0)(a); got != 3 {
		t.Fatalf("nonzero(0) = %g, want 3", got)
	}
	if got := NonzeroCost(0.01)(a); got != 2 {
		t.Fatalf("nonzero(0.01) = %g, want 2", got)
	}
}

func TestEntropyCost(t *testing.T) {
	// A single spike has zero entropy; a flat array has log(n).
	spike, _ := ndarray.NewFrom([]float64{0, 5, 0, 0}, 4)
	if got := EntropyCost()(spike); got != 0 {
		t.Fatalf("spike entropy %g, want 0", got)
	}
	flat, _ := ndarray.NewFrom([]float64{1, 1, 1, 1}, 4)
	if got := EntropyCost()(flat); math.Abs(got-math.Log(4)) > 1e-12 {
		t.Fatalf("flat entropy %g, want log 4", got)
	}
	zero := ndarray.New(4)
	if got := EntropyCost()(zero); got != 0 {
		t.Fatalf("zero entropy %g, want 0", got)
	}
	if EntropyCost()(spike) >= EntropyCost()(flat) {
		t.Fatal("concentrated energy must cost less")
	}
}

func TestLpCost(t *testing.T) {
	a, _ := ndarray.NewFrom([]float64{0, 3, -4}, 3)
	if got := LpCost(1)(a); got != 7 {
		t.Fatalf("L1 = %g, want 7", got)
	}
	if got := LpCost(2)(a); got != 25 {
		t.Fatalf("L2² = %g, want 25", got)
	}
}

func TestSelectReturnsBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(8, 8)
	cube := workload.SparseCube(rng, 0.1, 50, 8, 8)
	res, err := Select(s, cube, NonzeroCost(0))
	if err != nil {
		t.Fatal(err)
	}
	if !freq.IsNonRedundantBasis(res.Basis, s.Root(), s.MaxDepths()) {
		t.Fatal("best basis must be a non-redundant basis")
	}
	// The cost must match a recomputation over the selected elements.
	total := 0.0
	for _, r := range res.Basis {
		a, err := materializeElement(s, cube, r)
		if err != nil {
			t.Fatal(err)
		}
		total += NonzeroCost(0)(a)
	}
	if math.Abs(total-res.Cost) > 1e-9 {
		t.Fatalf("reported cost %g, recomputed %g", res.Cost, total)
	}
}

// The best basis never stores more nonzeros than either trivial
// alternative: the raw cube ({A} is in the search space) or the wavelet
// basis.
func TestSelectDominatesFixedBases(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(8, 8)
		cube := workload.SparseCube(rng, 0.15, 50, 8, 8)
		cost := NonzeroCost(0)
		res, err := Select(s, cube, cost)
		if err != nil {
			return false
		}
		if res.Cost > cost(cube)+1e-9 {
			return false
		}
		waveletTotal := 0.0
		for _, r := range velement.WaveletBasis(s) {
			a, err := materializeElement(s, cube, r)
			if err != nil {
				return false
			}
			waveletTotal += cost(a)
		}
		return res.Cost <= waveletTotal+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// materializeElement computes one element by its direct operator cascade,
// independent of the package's own Materializer-based path.
func materializeElement(s *velement.Space, cube *ndarray.Array, r freq.Rect) (*ndarray.Array, error) {
	a := cube
	var err error
	for m, node := range r {
		for i := node.Depth() - 1; i >= 0; i-- {
			if node>>uint(i)&1 == 0 {
				a, err = a.PairSum(m)
			} else {
				a, err = a.PairDiff(m)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return a, nil
}

func TestSparsifyRoundTrip(t *testing.T) {
	a, _ := ndarray.NewFrom([]float64{0, 2, 0, -3, 0, 0, 1, 0}, 8)
	se := Sparsify(freq.Rect{1}, a, 0)
	if se.Nonzeros() != 3 {
		t.Fatalf("nonzeros %d, want 3", se.Nonzeros())
	}
	back, err := se.Dense()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(a, 0) {
		t.Fatal("sparse round trip lost data")
	}
	// Corrupt offset detection.
	se.Offsets[0] = 99
	if _, err := se.Dense(); err == nil {
		t.Fatal("want error for out-of-range offset")
	}
}

func TestCompressDecompressLossless(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, density := range []float64{0.02, 0.1, 0.5} {
		s := velement.MustSpace(16, 16)
		cube := workload.SparseCube(rng, density, 20, 16, 16)
		comp, err := Compress(s, cube, NonzeroCost(0), 0)
		if err != nil {
			t.Fatal(err)
		}
		back, err := comp.Decompress()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(cube, 1e-9) {
			t.Fatalf("density %g: lossless decompression failed", density)
		}
		if comp.StoredValues() > int(NonzeroCost(0)(cube)) {
			t.Fatalf("density %g: compressed (%d) larger than raw nonzeros (%g)",
				density, comp.StoredValues(), NonzeroCost(0)(cube))
		}
	}
}

func TestCompressConstantCube(t *testing.T) {
	// A constant cube compresses to a single coefficient: the grand total.
	s := velement.MustSpace(8, 8)
	cube := ndarray.New(8, 8)
	cube.Fill(3)
	comp, err := Compress(s, cube, NonzeroCost(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if comp.StoredValues() != 1 {
		t.Fatalf("constant cube stored %d values, want 1", comp.StoredValues())
	}
	back, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cube, 1e-9) {
		t.Fatal("constant cube reconstruction failed")
	}
}

func TestCompressBlockStructuredCube(t *testing.T) {
	// Data confined to one quadrant: the best basis should isolate it and
	// beat the wavelet basis.
	s := velement.MustSpace(16, 16)
	rng := rand.New(rand.NewSource(3))
	cube := ndarray.New(16, 16)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			cube.Set(math.Floor(rng.Float64()*9)+1, i, j)
		}
	}
	comp, err := Compress(s, cube, NonzeroCost(0), 0)
	if err != nil {
		t.Fatal(err)
	}
	raw := int(NonzeroCost(0)(cube)) // 64
	if comp.StoredValues() > raw {
		t.Fatalf("compressed %d values, raw has %d", comp.StoredValues(), raw)
	}
	back, err := comp.Decompress()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(cube, 1e-9) {
		t.Fatal("reconstruction failed")
	}
}

func TestSelectRejectsShapeMismatch(t *testing.T) {
	s := velement.MustSpace(4, 4)
	if _, err := Select(s, ndarray.New(8, 8), NonzeroCost(0)); err == nil {
		t.Fatal("want error for cube/space mismatch")
	}
}
