// Package bestbasis implements the compression application the paper
// points at but leaves unexplored (§4.3): "by selecting the bases that best
// isolate the non-zero data from the zero areas of the data cube, the view
// element wavelet packet basis can represent the data cube in a compact
// form."
//
// Following Coifman–Wickerhauser, the package selects the complete
// non-redundant view element basis minimising an additive information cost
// of the materialised element arrays (nonzero count, entropy, or an Lᵖ
// norm), using the same dynamic program shape as Algorithm 1 — on at each
// element the choice is "keep this element's coefficients" versus "split it
// on the cheapest dimension". The selected basis is stored sparsely; with a
// zero threshold the representation is exactly lossless.
package bestbasis

import (
	"fmt"
	"math"
	"sort"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

// CostFn prices the storage of one materialised view element; the best
// basis minimises the sum over its elements. Costs must be non-negative.
type CostFn func(a *ndarray.Array) float64

// NonzeroCost counts coefficients with magnitude above tol — the direct
// "how many values must I store sparsely" objective.
func NonzeroCost(tol float64) CostFn {
	return func(a *ndarray.Array) float64 {
		n := 0
		for _, v := range a.Data() {
			if math.Abs(v) > tol {
				n++
			}
		}
		return float64(n)
	}
}

// EntropyCost is the Coifman–Wickerhauser entropy functional: with
// p_i = v_i² / ‖v‖², the cost is −Σ p_i·log(p_i) (0·log 0 = 0). Lower
// entropy means energy concentrated in fewer coefficients.
func EntropyCost() CostFn {
	return func(a *ndarray.Array) float64 {
		total := 0.0
		for _, v := range a.Data() {
			total += v * v
		}
		if total == 0 {
			return 0
		}
		h := 0.0
		for _, v := range a.Data() {
			if v == 0 {
				continue
			}
			p := v * v / total
			h -= p * math.Log(p)
		}
		return h
	}
}

// LpCost is Σ |v|^p; p < 2 rewards sparsity.
func LpCost(p float64) CostFn {
	return func(a *ndarray.Array) float64 {
		c := 0.0
		for _, v := range a.Data() {
			if v != 0 {
				c += math.Pow(math.Abs(v), p)
			}
		}
		return c
	}
}

// Result is the selected basis and its total information cost.
type Result struct {
	Basis []freq.Rect
	Cost  float64
}

// Select finds the complete non-redundant view element basis of the cube
// minimising the summed information cost of the materialised elements.
//
// The dynamic program materialises every element it visits (the whole
// element graph in the worst case): total materialised cells are
// Π_m n_m·(log2 n_m + 1), so Select is intended for cubes up to roughly a
// few million cells, matching the paper's experimental scales.
func Select(s *velement.Space, cube *ndarray.Array, cost CostFn) (Result, error) {
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		return Result{}, err
	}
	type memoEntry struct {
		cost   float64
		choice int // -1 = keep, else split dimension
	}
	memo := make(map[freq.Key]memoEntry)
	var solve func(r freq.Rect) (float64, error)
	solve = func(r freq.Rect) (float64, error) {
		k := r.Key()
		if got, ok := memo[k]; ok {
			return got.cost, nil
		}
		a, err := mat.Element(r)
		if err != nil {
			return 0, err
		}
		best := cost(a)
		if best < 0 {
			return 0, fmt.Errorf("bestbasis: negative cost %g for %v", best, r)
		}
		choice := -1
		for m := 0; m < s.Rank(); m++ {
			p, res, ok := s.Children(r, m)
			if !ok {
				continue
			}
			pc, err := solve(p)
			if err != nil {
				return 0, err
			}
			rc, err := solve(res)
			if err != nil {
				return 0, err
			}
			if pc+rc < best {
				best = pc + rc
				choice = m
			}
		}
		memo[k] = memoEntry{cost: best, choice: choice}
		return best, nil
	}
	total, err := solve(s.Root())
	if err != nil {
		return Result{}, err
	}
	basis := s.ExtractBasis(func(r freq.Rect) int { return memo[r.Key()].choice })
	return Result{Basis: basis, Cost: total}, nil
}

// SparseElement stores only the above-threshold coefficients of one
// materialised element.
type SparseElement struct {
	Rect    freq.Rect
	Shape   []int
	Offsets []int32
	Values  []float64
}

// Sparsify extracts the sparse form of a dense element, dropping
// coefficients with magnitude ≤ tol (tol 0 drops exact zeros only, which is
// lossless).
func Sparsify(r freq.Rect, a *ndarray.Array, tol float64) *SparseElement {
	se := &SparseElement{Rect: r.Clone(), Shape: a.Shape()}
	for i, v := range a.Data() {
		if math.Abs(v) > tol {
			se.Offsets = append(se.Offsets, int32(i))
			se.Values = append(se.Values, v)
		}
	}
	return se
}

// Dense reconstitutes the dense element array.
func (se *SparseElement) Dense() (*ndarray.Array, error) {
	a := ndarray.New(se.Shape...)
	data := a.Data()
	for i, off := range se.Offsets {
		if off < 0 || int(off) >= len(data) {
			return nil, fmt.Errorf("bestbasis: offset %d out of range for shape %v", off, se.Shape)
		}
		data[off] = se.Values[i]
	}
	return a, nil
}

// Nonzeros returns the number of stored coefficients.
func (se *SparseElement) Nonzeros() int { return len(se.Values) }

// Compressed is a cube stored as the sparse coefficients of a best basis.
type Compressed struct {
	Space    *velement.Space
	Elements []*SparseElement
	// Tol is the threshold used when sparsifying; 0 means lossless.
	Tol float64
}

// Compress selects the best basis under cost and stores it sparsely with
// threshold tol.
func Compress(s *velement.Space, cube *ndarray.Array, cost CostFn, tol float64) (*Compressed, error) {
	res, err := Select(s, cube, cost)
	if err != nil {
		return nil, err
	}
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		return nil, err
	}
	out := &Compressed{Space: s, Tol: tol}
	// Deterministic element order for stable serialisation and tests.
	sort.Slice(res.Basis, func(i, j int) bool {
		a, b := res.Basis[i], res.Basis[j]
		for m := range a {
			if a[m] != b[m] {
				return a[m] < b[m]
			}
		}
		return false
	})
	for _, r := range res.Basis {
		a, err := mat.Element(r)
		if err != nil {
			return nil, err
		}
		out.Elements = append(out.Elements, Sparsify(r, a, tol))
	}
	return out, nil
}

// StoredValues is the total number of retained coefficients — the
// compression currency of the E8 experiment.
func (c *Compressed) StoredValues() int {
	n := 0
	for _, se := range c.Elements {
		n += se.Nonzeros()
	}
	return n
}

// Decompress reconstructs the full data cube by perfect reconstruction from
// the basis elements. With Tol = 0 the result is exact.
func (c *Compressed) Decompress() (*ndarray.Array, error) {
	st := assembly.NewMemStore()
	for _, se := range c.Elements {
		a, err := se.Dense()
		if err != nil {
			return nil, err
		}
		if err := st.Put(se.Rect, a); err != nil {
			return nil, err
		}
	}
	eng := assembly.NewEngine(c.Space, st)
	return eng.Answer(nil, c.Space.Root())
}
