// Package ndarray provides a dense, strided, row-major n-dimensional array
// of float64 values. It is the storage substrate for MOLAP data cubes and
// all view elements derived from them.
//
// The package is deliberately minimal: shapes are immutable after creation,
// all data is held in a single contiguous []float64, and every operation
// needed by the Haar partial-aggregation cascade (pairwise folds along one
// dimension, interleaving two halves back into a parent, box extraction,
// axis reductions and prefix sums) is implemented with stride arithmetic so
// that no per-element multi-index materialisation is required on hot paths.
package ndarray

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Array is a dense row-major n-dimensional array of float64.
// The zero value is not usable; construct arrays with New or NewFrom.
type Array struct {
	shape   []int
	strides []int
	data    []float64
}

// ErrShape reports an invalid or mismatched shape.
var ErrShape = errors.New("ndarray: invalid shape")

// New returns a zero-filled array with the given shape.
// Every extent must be positive. New panics on an invalid shape because a
// bad shape is always a programming error, never a data error.
func New(shape ...int) *Array {
	n := checkShape(shape)
	a := &Array{
		shape: append([]int(nil), shape...),
		data:  make([]float64, n),
	}
	a.strides = computeStrides(a.shape)
	return a
}

// NewFrom wraps data in an array of the given shape. The data slice is used
// directly (not copied); its length must equal the product of the extents.
func NewFrom(data []float64, shape ...int) (*Array, error) {
	n := checkShape(shape)
	if len(data) != n {
		return nil, fmt.Errorf("%w: data length %d does not match shape %v (want %d)", ErrShape, len(data), shape, n)
	}
	a := &Array{
		shape: append([]int(nil), shape...),
		data:  data,
	}
	a.strides = computeStrides(a.shape)
	return a, nil
}

func checkShape(shape []int) int {
	if len(shape) == 0 {
		panic("ndarray: empty shape")
	}
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("ndarray: non-positive extent in shape %v", shape))
		}
		if n > math.MaxInt/s {
			panic(fmt.Sprintf("ndarray: shape %v overflows int", shape))
		}
		n *= s
	}
	return n
}

func computeStrides(shape []int) []int {
	strides := make([]int, len(shape))
	acc := 1
	for m := len(shape) - 1; m >= 0; m-- {
		strides[m] = acc
		acc *= shape[m]
	}
	return strides
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.shape) }

// Shape returns a copy of the extents.
func (a *Array) Shape() []int { return append([]int(nil), a.shape...) }

// ShapeInto writes a copy of the shape into dst (resliced to length zero)
// and returns it — the allocation-free form of Shape for hot paths that
// reuse a small caller-owned buffer.
func (a *Array) ShapeInto(dst []int) []int { return append(dst[:0], a.shape...) }

// Dim returns the extent of dimension m.
func (a *Array) Dim(m int) int { return a.shape[m] }

// Size returns the total number of cells.
func (a *Array) Size() int { return len(a.data) }

// Data returns the backing slice. Mutating it mutates the array.
func (a *Array) Data() []float64 { return a.data }

// Stride returns the row-major stride of dimension m.
func (a *Array) Stride(m int) int { return a.strides[m] }

// Offset converts a multi-index to a flat offset. It panics if the index has
// the wrong rank or is out of bounds.
func (a *Array) Offset(idx []int) int {
	if len(idx) != len(a.shape) {
		panic(fmt.Sprintf("ndarray: index rank %d does not match array rank %d", len(idx), len(a.shape)))
	}
	off := 0
	for m, i := range idx {
		if i < 0 || i >= a.shape[m] {
			panic(fmt.Sprintf("ndarray: index %v out of bounds for shape %v", idx, a.shape))
		}
		off += i * a.strides[m]
	}
	return off
}

// Index converts a flat offset to a fresh multi-index.
func (a *Array) Index(off int) []int {
	if off < 0 || off >= len(a.data) {
		panic(fmt.Sprintf("ndarray: offset %d out of range [0,%d)", off, len(a.data)))
	}
	idx := make([]int, len(a.shape))
	for m := range a.shape {
		idx[m] = off / a.strides[m]
		off %= a.strides[m]
	}
	return idx
}

// At returns the value at the multi-index.
func (a *Array) At(idx ...int) float64 { return a.data[a.Offset(idx)] }

// Set stores v at the multi-index.
func (a *Array) Set(v float64, idx ...int) { a.data[a.Offset(idx)] = v }

// Add accumulates v into the cell at the multi-index.
func (a *Array) Add(v float64, idx ...int) { a.data[a.Offset(idx)] += v }

// Fill sets every cell to v.
func (a *Array) Fill(v float64) {
	for i := range a.data {
		a.data[i] = v
	}
}

// Clone returns a deep copy.
func (a *Array) Clone() *Array {
	b := New(a.shape...)
	copy(b.data, a.data)
	return b
}

// Total returns the sum of all cells.
func (a *Array) Total() float64 {
	s := 0.0
	for _, v := range a.data {
		s += v
	}
	return s
}

// Scale multiplies every cell by v in place and returns the receiver.
func (a *Array) Scale(v float64) *Array {
	for i := range a.data {
		a.data[i] *= v
	}
	return a
}

// SameShape reports whether b has exactly the same shape as a.
func (a *Array) SameShape(b *Array) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for m := range a.shape {
		if a.shape[m] != b.shape[m] {
			return false
		}
	}
	return true
}

// Equal reports whether the arrays have the same shape and every pair of
// cells differs by at most tol in absolute value.
func (a *Array) Equal(b *Array, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbsDiff returns the largest absolute cell-wise difference between two
// same-shaped arrays. It panics on a shape mismatch.
func (a *Array) MaxAbsDiff(b *Array) float64 {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("ndarray: shape mismatch %v vs %v", a.shape, b.shape))
	}
	max := 0.0
	for i := range a.data {
		if d := math.Abs(a.data[i] - b.data[i]); d > max {
			max = d
		}
	}
	return max
}

// axisSpan decomposes the array around dimension m into
// outer × shape[m] × inner, where inner is the contiguous run length and
// outer the number of such slabs. Every strided per-dimension operation in
// this package is phrased over this decomposition.
func (a *Array) axisSpan(m int) (outer, n, inner int) {
	if m < 0 || m >= len(a.shape) {
		panic(fmt.Sprintf("ndarray: dimension %d out of range for rank %d", m, len(a.shape)))
	}
	n = a.shape[m]
	inner = a.strides[m]
	outer = len(a.data) / (n * inner)
	return outer, n, inner
}

// halvedDst allocates the output array for a pairwise fold along dimension
// m, erroring when the extent is odd.
func (a *Array) halvedDst(m int) (*Array, error) {
	_, n, _ := a.axisSpan(m)
	if n%2 != 0 {
		return nil, fmt.Errorf("%w: dimension %d has odd extent %d", ErrShape, m, n)
	}
	outShape := a.Shape()
	outShape[m] = n / 2
	return New(outShape...), nil
}

// PairFold applies op to each pair of neighbouring slices (2i, 2i+1) along
// dimension m and returns a new array whose extent in dimension m is halved.
// The extent of dimension m must be even. PairFold is the engine behind the
// Haar partial (op = a+b) and residual (op = a−b) aggregation operators;
// the loop nest itself lives in the Into kernels (kernels.go).
func (a *Array) PairFold(m int, op func(x, y float64) float64) (*Array, error) {
	out, err := a.halvedDst(m)
	if err != nil {
		return nil, err
	}
	if err := a.pairFoldInto(m, out, op); err != nil {
		return nil, err
	}
	return out, nil
}

// PairSum returns the Haar partial aggregation along dimension m:
// out[..., i, ...] = a[..., 2i, ...] + a[..., 2i+1, ...] (Eq. 1 of the paper).
// It allocates the result and delegates to PairSumInto.
func (a *Array) PairSum(m int) (*Array, error) {
	out, err := a.halvedDst(m)
	if err != nil {
		return nil, err
	}
	if err := a.PairSumInto(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PairDiff returns the Haar residual aggregation along dimension m:
// out[..., i, ...] = a[..., 2i, ...] − a[..., 2i+1, ...] (Eq. 2 of the paper).
// It allocates the result and delegates to PairDiffInto.
func (a *Array) PairDiff(m int) (*Array, error) {
	out, err := a.halvedDst(m)
	if err != nil {
		return nil, err
	}
	if err := a.PairDiffInto(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Interleave reconstructs a parent array from its partial (p) and residual
// (r) children along dimension m, inverting PairSum/PairDiff via the perfect
// reconstruction identities (Eq. 3–4 of the paper):
//
//	parent[..., 2i,   ...] = (p + r) / 2
//	parent[..., 2i+1, ...] = (p − r) / 2
//
// p and r must have identical shapes.
func Interleave(m int, p, r *Array) (*Array, error) {
	if !p.SameShape(r) {
		return nil, fmt.Errorf("%w: partial shape %v does not match residual shape %v", ErrShape, p.shape, r.shape)
	}
	outer, n, inner := p.axisSpan(m)
	outShape := p.Shape()
	outShape[m] = 2 * n
	out := New(outShape...)
	ps, rs, dst := p.data, r.data, out.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * 2 * n * inner
		for i := 0; i < n; i++ {
			s := sBase + i*inner
			x := dBase + 2*i*inner
			y := x + inner
			for j := 0; j < inner; j++ {
				pv, rv := ps[s+j], rs[s+j]
				dst[x+j] = (pv + rv) / 2
				dst[y+j] = (pv - rv) / 2
			}
		}
	}
	return out, nil
}

// SumAxis totally aggregates dimension m in one pass, returning an array
// whose extent in dimension m is 1. It is the reference ("direct")
// aggregation used to verify the Haar cascade.
func (a *Array) SumAxis(m int) *Array {
	outer, n, inner := a.axisSpan(m)
	outShape := a.Shape()
	outShape[m] = 1
	out := New(outShape...)
	src, dst := a.data, out.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * inner
		for i := 0; i < n; i++ {
			s := sBase + i*inner
			for j := 0; j < inner; j++ {
				dst[dBase+j] += src[s+j]
			}
		}
	}
	return out
}

// PrefixSumAxis replaces the array contents, in place, with running sums
// along dimension m. Cascading it over every dimension yields the prefix-sum
// cube of Ho et al. used as a range-query baseline.
func (a *Array) PrefixSumAxis(m int) {
	outer, n, inner := a.axisSpan(m)
	d := a.data
	for o := 0; o < outer; o++ {
		base := o * n * inner
		for i := 1; i < n; i++ {
			prev := base + (i-1)*inner
			cur := base + i*inner
			for j := 0; j < inner; j++ {
				d[cur+j] += d[prev+j]
			}
		}
	}
}

// SubArray copies the axis-aligned box [lo, lo+ext) into a new array of
// shape ext. It implements the range-extraction operator G of §6.
func (a *Array) SubArray(lo, ext []int) (*Array, error) {
	if len(lo) != len(a.shape) || len(ext) != len(a.shape) {
		return nil, fmt.Errorf("%w: box rank does not match array rank %d", ErrShape, len(a.shape))
	}
	for m := range lo {
		if lo[m] < 0 || ext[m] <= 0 || lo[m]+ext[m] > a.shape[m] {
			return nil, fmt.Errorf("%w: box lo=%v ext=%v outside shape %v", ErrShape, lo, ext, a.shape)
		}
	}
	out := New(ext...)
	idx := make([]int, len(ext))
	for off := 0; off < out.Size(); off++ {
		// idx is the multi-index within the box.
		src := 0
		for m := range idx {
			src += (lo[m] + idx[m]) * a.strides[m]
		}
		out.data[off] = a.data[src]
		incIndex(idx, ext)
	}
	return out, nil
}

// BoxSum returns the sum of the cells in the axis-aligned box [lo, lo+ext).
// It is the direct-scan reference for range-aggregation queries.
func (a *Array) BoxSum(lo, ext []int) (float64, error) {
	for m := range lo {
		if lo[m] < 0 || ext[m] <= 0 || lo[m]+ext[m] > a.shape[m] {
			return 0, fmt.Errorf("%w: box lo=%v ext=%v outside shape %v", ErrShape, lo, ext, a.shape)
		}
	}
	sum := 0.0
	idx := make([]int, len(ext))
	total := 1
	for _, e := range ext {
		total *= e
	}
	for c := 0; c < total; c++ {
		src := 0
		for m := range idx {
			src += (lo[m] + idx[m]) * a.strides[m]
		}
		sum += a.data[src]
		incIndex(idx, ext)
	}
	return sum, nil
}

// incIndex advances idx through the row-major order of shape, wrapping to
// all zeros after the last index.
func incIndex(idx, shape []int) {
	for m := len(idx) - 1; m >= 0; m-- {
		idx[m]++
		if idx[m] < shape[m] {
			return
		}
		idx[m] = 0
	}
}

// Each calls fn for every cell with its multi-index and value, in row-major
// order. The index slice is reused between calls; fn must not retain it.
func (a *Array) Each(fn func(idx []int, v float64)) {
	idx := make([]int, len(a.shape))
	for off := range a.data {
		fn(idx, a.data[off])
		incIndex(idx, a.shape)
	}
}

// Map replaces every cell with fn(cell) in place and returns the receiver.
func (a *Array) Map(fn func(v float64) float64) *Array {
	for i, v := range a.data {
		a.data[i] = fn(v)
	}
	return a
}

// String renders small arrays for debugging; large arrays are summarised.
func (a *Array) String() string {
	const limit = 64
	var b strings.Builder
	fmt.Fprintf(&b, "ndarray%v", a.shape)
	if len(a.data) > limit {
		fmt.Fprintf(&b, "{%d cells, total=%g}", len(a.data), a.Total())
		return b.String()
	}
	b.WriteString("{")
	for i, v := range a.data {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteString("}")
	return b.String()
}
