package ndarray

import (
	"math/rand"
	"testing"
)

// naiveFoldK is the stage-at-a-time reference for the fused FoldK kernel:
// stage t (1-based, application order) is a pair difference when bit t−1 of
// signs is set, a pair sum otherwise.
func naiveFoldK(t *testing.T, a *Array, m, k int, signs uint) *Array {
	t.Helper()
	cur := a
	for s := 1; s <= k; s++ {
		var next *Array
		var err error
		if signs>>uint(s-1)&1 == 1 {
			next, err = cur.PairDiff(m)
		} else {
			next, err = cur.PairSum(m)
		}
		if err != nil {
			t.Fatalf("reference stage %d: %v", s, err)
		}
		cur = next
	}
	return cur
}

func TestFoldKMatchesStageAtATime(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	// Random shapes and depths, including the rank-1 and extent-2 edges.
	shapes := [][]int{
		{2}, {8}, {64},
		{2, 2}, {4, 8}, {16, 2, 4},
		{8, 4, 8}, {2, 2, 2, 2},
	}
	for _, shape := range shapes {
		a := randomArray(r, shape...)
		for m := range shape {
			maxK := 0
			for n := shape[m]; n%2 == 0; n /= 2 {
				maxK++
			}
			for k := 0; k <= maxK; k++ {
				for trial := 0; trial < 4; trial++ {
					signs := uint(r.Intn(1 << uint(k)))
					want := naiveFoldK(t, a, m, k, signs)
					got, err := a.FoldK(m, k, signs)
					if err != nil {
						t.Fatalf("FoldK(%v, m=%d, k=%d, signs=%#x): %v", shape, m, k, signs, err)
					}
					if !got.SameShape(want) || got.MaxAbsDiff(want) != 0 {
						t.Fatalf("FoldK(%v, m=%d, k=%d, signs=%#x) diverges from stage-at-a-time (max diff %g)",
							shape, m, k, signs, got.MaxAbsDiff(want))
					}
				}
			}
		}
	}
}

func TestFoldKIntoOverwritesDirtyDestination(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomArray(r, 8, 4)
	want := naiveFoldK(t, a, 0, 2, 0b10)
	dst := New(2, 4)
	dst.Fill(1e9) // must be fully overwritten, no zeroing assumed
	if err := a.FoldKInto(0, 2, 0b10, dst); err != nil {
		t.Fatal(err)
	}
	if dst.MaxAbsDiff(want) != 0 {
		t.Fatalf("FoldKInto left stale destination contents (max diff %g)", dst.MaxAbsDiff(want))
	}
}

func TestIntoKernelsMatchAllocatingVariants(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomArray(r, 4, 6, 2)
	for m := 0; m < 3; m++ {
		sumWant, err := a.PairSum(m)
		if err != nil {
			t.Fatal(err)
		}
		diffWant, err := a.PairDiff(m)
		if err != nil {
			t.Fatal(err)
		}
		sumGot := New(sumWant.Shape()...)
		diffGot := New(diffWant.Shape()...)
		sumGot.Fill(-7)
		diffGot.Fill(-7)
		if err := a.PairSumInto(m, sumGot); err != nil {
			t.Fatal(err)
		}
		if err := a.PairDiffInto(m, diffGot); err != nil {
			t.Fatal(err)
		}
		if sumGot.MaxAbsDiff(sumWant) != 0 || diffGot.MaxAbsDiff(diffWant) != 0 {
			t.Fatalf("Into kernels diverge from allocating variants on dim %d", m)
		}
		par, err := Interleave(m, sumWant, diffWant)
		if err != nil {
			t.Fatal(err)
		}
		back := New(par.Shape()...)
		back.Fill(3)
		if err := InterleaveInto(m, sumWant, diffWant, back); err != nil {
			t.Fatal(err)
		}
		if back.MaxAbsDiff(par) != 0 {
			t.Fatalf("InterleaveInto diverges from Interleave on dim %d", m)
		}
		if back.MaxAbsDiff(a) != 0 {
			t.Fatalf("perfect reconstruction through Into kernels failed on dim %d", m)
		}
	}
}

func TestFoldErrorCases(t *testing.T) {
	a := New(8, 3)
	if _, err := a.FoldK(1, 1, 0); err == nil {
		t.Fatal("want error: odd extent is not divisible")
	}
	if _, err := a.FoldK(0, 2, 4); err == nil {
		t.Fatal("want error: signs outside k bits")
	}
	if err := a.FoldKInto(0, 1, 0, a); err == nil {
		t.Fatal("want error: aliased destination")
	}
	if err := a.FoldKInto(0, 1, 0, New(3, 3)); err == nil {
		t.Fatal("want error: wrong destination shape")
	}
	if err := a.FoldKInto(0, 1, 0, New(4)); err == nil {
		t.Fatal("want error: wrong destination rank")
	}
	p := New(4, 3)
	if err := InterleaveInto(0, p, New(2, 3), New(8, 3)); err == nil {
		t.Fatal("want error: partial/residual shape mismatch")
	}
	if err := InterleaveInto(0, p, New(4, 3), p); err == nil {
		t.Fatal("want error: interleave destination aliases a child")
	}
	if err := InterleaveInto(0, p, New(4, 3), New(8, 4)); err == nil {
		t.Fatal("want error: wrong interleave destination shape")
	}
}

func TestSubArrayInto(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randomArray(r, 6, 5, 4)
	lo := []int{1, 0, 2}
	ext := []int{3, 5, 2}
	want, err := a.SubArray(lo, ext)
	if err != nil {
		t.Fatal(err)
	}
	dst := New(ext...)
	dst.Fill(99)
	if err := a.SubArrayInto(lo, ext, dst); err != nil {
		t.Fatal(err)
	}
	if dst.MaxAbsDiff(want) != 0 {
		t.Fatal("SubArrayInto diverges from SubArray")
	}
	if err := a.SubArrayInto([]int{0, 0, 0}, []int{7, 5, 4}, New(7, 5, 4)); err == nil {
		t.Fatal("want error: box outside shape")
	}
	if err := a.SubArrayInto(lo, ext, New(3, 5, 1)); err == nil {
		t.Fatal("want error: destination shape mismatch")
	}
}

func TestScratchRecycleRoundTrip(t *testing.T) {
	// A recycled buffer must come back for an equal-class request, fully
	// usable and correctly shaped.
	a, _ := Scratch(4, 8)
	a.Fill(5)
	ndata := a.Data()
	Recycle(a)
	b, hit := Scratch(2, 16) // same cell count, same class
	if !hit {
		// sync.Pool may drop entries across a GC; retry once immediately.
		Recycle(b)
		c, _ := Scratch(4, 8)
		ndata = c.Data()
		Recycle(c)
		b, hit = Scratch(2, 16)
		if !hit {
			t.Skip("scratch pool emptied by GC; cannot observe reuse")
		}
	}
	if b.Rank() != 2 || b.Dim(0) != 2 || b.Dim(1) != 16 || b.Size() != 32 {
		t.Fatalf("leased shape %v size %d, want [2 16] 32", b.Shape(), b.Size())
	}
	if &ndata[0] != &b.Data()[0] {
		t.Fatal("lease did not reuse the recycled backing storage")
	}
	// Stride/indexing behaviour must match a fresh array of that shape.
	b.Set(42, 1, 15)
	if b.Data()[31] != 42 {
		t.Fatal("leased array strides are wrong")
	}
	Recycle(b)
}

func TestScratchStatsCount(t *testing.T) {
	h0, m0 := ScratchStats()
	a, _ := Scratch(16)
	Recycle(a)
	_, hit := Scratch(16)
	h1, m1 := ScratchStats()
	if h1+m1 <= h0+m0 {
		t.Fatal("ScratchStats did not advance")
	}
	_ = hit
}

func TestRecycleIgnoresOddCapacity(t *testing.T) {
	// Arrays whose backing capacity is not an exact power of two must be
	// left to the GC, never pooled (a later lease would over-index).
	odd := New(3)
	Recycle(odd) // must not panic and must not pool
	got, _ := Scratch(4)
	if cap(got.Data()) != 4 {
		t.Fatalf("pool served a buffer with capacity %d for class 4", cap(got.Data()))
	}
	Recycle(got)
}
