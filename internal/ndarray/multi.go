package ndarray

import (
	"fmt"
	"math"
	"sync"
)

// MultiArray is a width-w vector of same-shaped arrays stored components-
// major (structure of arrays): one contiguous []float64 holds component 0's
// cells, then component 1's, and so on. It is the cell type of the
// measure-vector engine — each logical cube cell carries w measure
// components (e.g. [sum, sum-of-squares, count]) and every Haar operator
// acts on each component independently, because the partial/residual
// cascade is linear and therefore distributes component-wise.
//
// The components-major layout means each component plane is itself a valid,
// fully contiguous Array: Component(c) returns a fixed header over plane c,
// so the entire scalar kernel suite (and any consumer expecting an *Array,
// such as the scalar assembly engine) runs on one component with zero
// copying. Component headers alias the MultiArray's backing store — never
// Recycle one (recycle the whole vector with RecycleMulti instead).
type MultiArray struct {
	width int
	cells int
	data  []float64 // len = width*cells, plane-major
	comps []*Array  // comps[c] wraps data[c*cells : (c+1)*cells]
}

// NewMulti returns a zero-filled multi-array of the given component width
// and per-component shape. Width must be positive; shape rules follow New.
func NewMulti(width int, shape ...int) *MultiArray {
	cells := checkShape(shape)
	if width <= 0 {
		panic(fmt.Sprintf("ndarray: non-positive measure width %d", width))
	}
	if cells > math.MaxInt/width {
		panic(fmt.Sprintf("ndarray: width %d × shape %v overflows int", width, shape))
	}
	ma := &MultiArray{
		width: width,
		cells: cells,
		data:  make([]float64, width*cells),
		comps: make([]*Array, width),
	}
	for c := range ma.comps {
		ma.comps[c] = &Array{
			shape:   append([]int(nil), shape...),
			strides: computeStrides(shape),
			data:    ma.data[c*cells : (c+1)*cells : (c+1)*cells],
		}
	}
	return ma
}

// Width returns the number of measure components per cell.
func (a *MultiArray) Width() int { return a.width }

// Rank returns the number of dimensions of each component.
func (a *MultiArray) Rank() int { return len(a.comps[0].shape) }

// Shape returns a copy of the per-component extents.
func (a *MultiArray) Shape() []int { return a.comps[0].Shape() }

// Dim returns the extent of dimension m.
func (a *MultiArray) Dim(m int) int { return a.comps[0].shape[m] }

// Cells returns the cell count of one component plane.
func (a *MultiArray) Cells() int { return a.cells }

// Size returns the total scalar count, width × cells.
func (a *MultiArray) Size() int { return a.width * a.cells }

// Data returns the plane-major backing slice. Mutating it mutates the array.
func (a *MultiArray) Data() []float64 { return a.data }

// Component returns the fixed Array header over component plane c. The
// header aliases the vector's storage: writes through it are visible to the
// vector and vice versa. Callers must not Recycle it.
func (a *MultiArray) Component(c int) *Array { return a.comps[c] }

// At returns component c of the cell at the multi-index.
func (a *MultiArray) At(c int, idx ...int) float64 { return a.comps[c].At(idx...) }

// AddVec accumulates vals (one value per component) into the cell at the
// multi-index.
func (a *MultiArray) AddVec(vals []float64, idx ...int) {
	if len(vals) != a.width {
		panic(fmt.Sprintf("ndarray: %d values for measure width %d", len(vals), a.width))
	}
	off := a.comps[0].Offset(idx)
	for c, v := range vals {
		a.data[c*a.cells+off] += v
	}
}

// Clone returns a deep copy.
func (a *MultiArray) Clone() *MultiArray {
	b := NewMulti(a.width, a.comps[0].shape...)
	copy(b.data, a.data)
	return b
}

// SameShape reports whether b has the same width and per-component shape.
func (a *MultiArray) SameShape(b *MultiArray) bool {
	return a.width == b.width && a.comps[0].SameShape(b.comps[0])
}

// checkWidth verifies the destination's component width.
func (a *MultiArray) checkWidth(dst *MultiArray) error {
	if dst.width != a.width {
		return fmt.Errorf("%w: destination width %d does not match source width %d", ErrShape, dst.width, a.width)
	}
	return nil
}

// PairSumInto applies the scalar PairSumInto kernel to every component
// plane: one fused pass per component over its contiguous slab.
func (a *MultiArray) PairSumInto(m int, dst *MultiArray) error {
	if err := a.checkWidth(dst); err != nil {
		return err
	}
	for c := range a.comps {
		if err := a.comps[c].PairSumInto(m, dst.comps[c]); err != nil {
			return err
		}
	}
	return nil
}

// PairDiffInto applies the scalar PairDiffInto kernel per component.
func (a *MultiArray) PairDiffInto(m int, dst *MultiArray) error {
	if err := a.checkWidth(dst); err != nil {
		return err
	}
	for c := range a.comps {
		if err := a.comps[c].PairDiffInto(m, dst.comps[c]); err != nil {
			return err
		}
	}
	return nil
}

// FoldKInto applies the fused signed block-reduction kernel per component.
// Each component runs the identical strided loop the scalar engine runs, so
// component 0 of a vector fold is bit-identical to the scalar fold of
// component 0.
func (a *MultiArray) FoldKInto(m, k int, signs uint, dst *MultiArray) error {
	if err := a.checkWidth(dst); err != nil {
		return err
	}
	for c := range a.comps {
		if err := a.comps[c].FoldKInto(m, k, signs, dst.comps[c]); err != nil {
			return err
		}
	}
	return nil
}

// SubArrayInto copies the box [lo, lo+ext) of every component plane into
// dst, which must have shape ext and matching width.
func (a *MultiArray) SubArrayInto(lo, ext []int, dst *MultiArray) error {
	if err := a.checkWidth(dst); err != nil {
		return err
	}
	for c := range a.comps {
		if err := a.comps[c].SubArrayInto(lo, ext, dst.comps[c]); err != nil {
			return err
		}
	}
	return nil
}

// InterleaveMultiInto reconstructs a parent vector from partial (p) and
// residual (r) children along dimension m, component by component (the
// perfect-reconstruction identities hold per component).
func InterleaveMultiInto(m int, p, r, dst *MultiArray) error {
	if p.width != r.width || p.width != dst.width {
		return fmt.Errorf("%w: interleave widths %d/%d/%d differ", ErrShape, p.width, r.width, dst.width)
	}
	for c := range p.comps {
		if err := InterleaveInto(m, p.comps[c], r.comps[c], dst.comps[c]); err != nil {
			return err
		}
	}
	return nil
}

// Multi-array scratch pool. The vector execution path wants the same
// zero-allocation steady state as the scalar path (DESIGN §10), so leased
// MultiArrays are size-classed by the next power of two of width × cells
// and recycled whole — headers, component headers and the backing slab.
// Component widths and cube extents are both fixed per engine, so pooled
// vectors almost always come back with the exact width and shape requested
// and the release is pure header reslicing.
var multiPools [maxScratchClass + 1]sync.Pool

// ScratchMulti leases a multi-array of the given width and shape, reporting
// whether a recycled buffer served it. Contents are undefined; the caller
// must fully overwrite every component (the Into kernels do). Ownership
// rules mirror Scratch/Recycle: keep it forever or hand it back with
// RecycleMulti, and never recycle individual component headers.
func ScratchMulti(width int, shape ...int) (*MultiArray, bool) {
	cells := checkShape(shape)
	if width <= 0 {
		panic(fmt.Sprintf("ndarray: non-positive measure width %d", width))
	}
	if cells > math.MaxInt/width {
		panic(fmt.Sprintf("ndarray: width %d × shape %v overflows int", width, shape))
	}
	n := width * cells
	c, poolable := scratchClass(n)
	if poolable {
		if v := multiPools[c].Get(); v != nil {
			ma := v.(*MultiArray)
			ma.reshape(width, cells, shape)
			scratchHits.Add(1)
			return ma, true
		}
	}
	scratchMisses.Add(1)
	ma := &MultiArray{width: width, cells: cells, comps: make([]*Array, width)}
	if poolable {
		ma.data = make([]float64, n, 1<<uint(c))
	} else {
		ma.data = make([]float64, n)
	}
	for i := range ma.comps {
		ma.comps[i] = &Array{
			shape:   append([]int(nil), shape...),
			strides: computeStrides(shape),
			data:    ma.data[i*cells : (i+1)*cells : (i+1)*cells],
		}
	}
	return ma, false
}

// reshape repurposes a pooled multi-array for a new width/shape in place,
// reusing headers and index slices wherever capacity allows.
func (a *MultiArray) reshape(width, cells int, shape []int) {
	a.data = a.data[:width*cells]
	for len(a.comps) < width {
		a.comps = append(a.comps, &Array{})
	}
	a.comps = a.comps[:width]
	a.width, a.cells = width, cells
	for c, comp := range a.comps {
		comp.data = a.data[c*cells : (c+1)*cells : (c+1)*cells]
		comp.shape = append(comp.shape[:0], shape...)
		comp.strides = stridesInto(comp.strides[:0], comp.shape)
	}
}

// RecycleMulti returns a multi-array to the pool. Like Recycle it accepts
// any vector whose backing capacity is exactly a pool class and silently
// drops the rest. The caller must own a exclusively — including every
// header Component ever returned — and must not use it after the call.
func RecycleMulti(a *MultiArray) {
	if a == nil {
		return
	}
	cap_ := cap(a.data)
	c, poolable := scratchClass(cap_)
	if !poolable || cap_ != 1<<uint(c) {
		return
	}
	a.data = a.data[:cap_]
	multiPools[c].Put(a)
}
