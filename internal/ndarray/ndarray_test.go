package ndarray

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func seq(n int) []float64 {
	d := make([]float64, n)
	for i := range d {
		d[i] = float64(i)
	}
	return d
}

func randomArray(r *rand.Rand, shape ...int) *Array {
	a := New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64()*200 - 100)
	}
	return a
}

func TestNewZeroFilled(t *testing.T) {
	a := New(3, 4, 5)
	if a.Rank() != 3 || a.Size() != 60 {
		t.Fatalf("rank=%d size=%d, want 3, 60", a.Rank(), a.Size())
	}
	for _, v := range a.Data() {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	for _, shape := range [][]int{{}, {0}, {2, -1}, {3, 0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", shape)
				}
			}()
			New(shape...)
		}()
	}
}

func TestNewFromLengthMismatch(t *testing.T) {
	if _, err := NewFrom(seq(5), 2, 3); err == nil {
		t.Fatal("want error for mismatched data length")
	}
	a, err := NewFrom(seq(6), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.At(1, 2) != 5 {
		t.Fatalf("At(1,2)=%g, want 5", a.At(1, 2))
	}
}

func TestOffsetIndexRoundTrip(t *testing.T) {
	a := New(2, 3, 4)
	for off := 0; off < a.Size(); off++ {
		idx := a.Index(off)
		if got := a.Offset(idx); got != off {
			t.Fatalf("Offset(Index(%d)) = %d", off, got)
		}
	}
}

func TestOffsetPanicsOutOfBounds(t *testing.T) {
	a := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, -1}, {0}, {0, 0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Offset(%v) did not panic", idx)
				}
			}()
			a.Offset(idx)
		}()
	}
}

func TestStridesRowMajor(t *testing.T) {
	a := New(2, 3, 4)
	want := []int{12, 4, 1}
	for m, w := range want {
		if a.Stride(m) != w {
			t.Fatalf("Stride(%d)=%d, want %d", m, a.Stride(m), w)
		}
	}
}

func TestSetAtAdd(t *testing.T) {
	a := New(2, 2)
	a.Set(3, 1, 0)
	a.Add(4, 1, 0)
	if a.At(1, 0) != 7 {
		t.Fatalf("At(1,0)=%g, want 7", a.At(1, 0))
	}
}

func TestCloneIsDeep(t *testing.T) {
	a, _ := NewFrom(seq(4), 2, 2)
	b := a.Clone()
	b.Set(99, 0, 0)
	if a.At(0, 0) == 99 {
		t.Fatal("Clone must not share data")
	}
	if !a.Equal(a.Clone(), 0) {
		t.Fatal("clone should be equal to source")
	}
}

func TestPairSumDiff1D(t *testing.T) {
	a, _ := NewFrom([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 8)
	p, err := a.PairSum(0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := a.PairDiff(0)
	if err != nil {
		t.Fatal(err)
	}
	wantP := []float64{3, 7, 11, 15}
	wantR := []float64{-1, -1, -1, -1}
	for i := range wantP {
		if p.Data()[i] != wantP[i] || r.Data()[i] != wantR[i] {
			t.Fatalf("p=%v r=%v, want %v %v", p.Data(), r.Data(), wantP, wantR)
		}
	}
}

func TestPairSumOddExtent(t *testing.T) {
	a := New(3, 2)
	if _, err := a.PairSum(0); err == nil {
		t.Fatal("want error for odd extent")
	}
	if _, err := a.PairDiff(0); err == nil {
		t.Fatal("want error for odd extent")
	}
	if _, err := a.PairFold(0, func(x, y float64) float64 { return x }); err == nil {
		t.Fatal("want error for odd extent")
	}
}

func TestPairSumMatchesPairFold(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomArray(r, 4, 6, 2)
	for m := 0; m < 3; m++ {
		p1, err := a.PairSum(m)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := a.PairFold(m, func(x, y float64) float64 { return x + y })
		if err != nil {
			t.Fatal(err)
		}
		if !p1.Equal(p2, 0) {
			t.Fatalf("dim %d: PairSum != PairFold(+)", m)
		}
		d1, _ := a.PairDiff(m)
		d2, _ := a.PairFold(m, func(x, y float64) float64 { return x - y })
		if !d1.Equal(d2, 0) {
			t.Fatalf("dim %d: PairDiff != PairFold(-)", m)
		}
	}
}

func TestPairSumMiddleDim(t *testing.T) {
	// Shape (2,4,2): fold dim 1, verify against hand computation.
	a, _ := NewFrom(seq(16), 2, 4, 2)
	p, err := a.PairSum(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Shape(); got[0] != 2 || got[1] != 2 || got[2] != 2 {
		t.Fatalf("shape %v, want [2 2 2]", got)
	}
	// out[i,j,k] = a[i,2j,k] + a[i,2j+1,k]
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			for k := 0; k < 2; k++ {
				want := a.At(i, 2*j, k) + a.At(i, 2*j+1, k)
				if p.At(i, j, k) != want {
					t.Fatalf("p[%d,%d,%d]=%g, want %g", i, j, k, p.At(i, j, k), want)
				}
			}
		}
	}
}

func TestInterleavePerfectReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, shape := range [][]int{{8}, {4, 4}, {2, 4, 8}, {2, 2, 2, 2}} {
		a := randomArray(r, shape...)
		for m := range shape {
			p, err := a.PairSum(m)
			if err != nil {
				t.Fatal(err)
			}
			res, err := a.PairDiff(m)
			if err != nil {
				t.Fatal(err)
			}
			back, err := Interleave(m, p, res)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(a, 1e-12) {
				t.Fatalf("shape %v dim %d: reconstruction failed (maxdiff %g)", shape, m, back.MaxAbsDiff(a))
			}
		}
	}
}

func TestInterleaveShapeMismatch(t *testing.T) {
	p := New(2, 2)
	r := New(2, 3)
	if _, err := Interleave(0, p, r); err == nil {
		t.Fatal("want error for shape mismatch")
	}
}

// Property: for any array with even extents, Interleave(PairSum, PairDiff)
// is the identity on every dimension.
func TestPerfectReconstructionProperty(t *testing.T) {
	f := func(seed int64, rank uint8) bool {
		r := rand.New(rand.NewSource(seed))
		d := int(rank%3) + 1
		shape := make([]int, d)
		for i := range shape {
			shape[i] = 2 << (r.Intn(3)) // 2, 4 or 8
		}
		a := randomArray(r, shape...)
		m := r.Intn(d)
		p, err := a.PairSum(m)
		if err != nil {
			return false
		}
		res, err := a.PairDiff(m)
		if err != nil {
			return false
		}
		back, err := Interleave(m, p, res)
		if err != nil {
			return false
		}
		return back.Equal(a, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSumAxisMatchesCascade(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomArray(r, 8, 4)
	direct := a.SumAxis(0)
	cascade := a
	var err error
	for cascade.Dim(0) > 1 {
		cascade, err = cascade.PairSum(0)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !direct.Equal(cascade, 1e-9) {
		t.Fatal("SumAxis disagrees with PairSum cascade")
	}
}

func TestSumAxisPreservesTotal(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randomArray(r, 4, 4, 4)
	for m := 0; m < 3; m++ {
		if got := a.SumAxis(m).Total(); math.Abs(got-a.Total()) > 1e-9 {
			t.Fatalf("dim %d: total %g != %g", m, got, a.Total())
		}
	}
}

func TestPrefixSumAxis(t *testing.T) {
	a, _ := NewFrom([]float64{1, 2, 3, 4}, 4)
	a.PrefixSumAxis(0)
	want := []float64{1, 3, 6, 10}
	for i := range want {
		if a.Data()[i] != want[i] {
			t.Fatalf("prefix sums %v, want %v", a.Data(), want)
		}
	}
}

func TestPrefixSumAllAxesGivesBoxSums(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	a := randomArray(r, 4, 8)
	ps := a.Clone()
	ps.PrefixSumAxis(0)
	ps.PrefixSumAxis(1)
	// ps[i,j] must equal sum of a[0..i, 0..j].
	for i := 0; i < 4; i++ {
		for j := 0; j < 8; j++ {
			want, err := a.BoxSum([]int{0, 0}, []int{i + 1, j + 1})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ps.At(i, j)-want) > 1e-9 {
				t.Fatalf("ps[%d,%d]=%g, want %g", i, j, ps.At(i, j), want)
			}
		}
	}
}

func TestSubArray(t *testing.T) {
	a, _ := NewFrom(seq(24), 4, 6)
	sub, err := a.SubArray([]int{1, 2}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if sub.At(i, j) != a.At(1+i, 2+j) {
				t.Fatalf("sub[%d,%d]=%g, want %g", i, j, sub.At(i, j), a.At(1+i, 2+j))
			}
		}
	}
}

func TestSubArrayBounds(t *testing.T) {
	a := New(4, 4)
	cases := []struct{ lo, ext []int }{
		{[]int{0, 0}, []int{5, 1}},
		{[]int{-1, 0}, []int{1, 1}},
		{[]int{3, 3}, []int{2, 1}},
		{[]int{0, 0}, []int{0, 1}},
		{[]int{0}, []int{1}},
	}
	for _, c := range cases {
		if _, err := a.SubArray(c.lo, c.ext); err == nil {
			t.Errorf("SubArray(%v,%v): want error", c.lo, c.ext)
		}
	}
}

func TestBoxSumMatchesSubArrayTotal(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	a := randomArray(r, 8, 8, 4)
	for trial := 0; trial < 30; trial++ {
		lo := []int{r.Intn(8), r.Intn(8), r.Intn(4)}
		ext := []int{1 + r.Intn(8-lo[0]), 1 + r.Intn(8-lo[1]), 1 + r.Intn(4-lo[2])}
		sub, err := a.SubArray(lo, ext)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.BoxSum(lo, ext)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-sub.Total()) > 1e-9 {
			t.Fatalf("BoxSum=%g, SubArray total=%g", got, sub.Total())
		}
	}
}

func TestBoxSumBounds(t *testing.T) {
	a := New(2, 2)
	if _, err := a.BoxSum([]int{0, 0}, []int{3, 1}); err == nil {
		t.Fatal("want error for out-of-bounds box")
	}
}

func TestEachVisitsRowMajor(t *testing.T) {
	a, _ := NewFrom(seq(6), 2, 3)
	var visited []float64
	var lastIdx []int
	a.Each(func(idx []int, v float64) {
		visited = append(visited, v)
		lastIdx = append([]int(nil), idx...)
	})
	if len(visited) != 6 || visited[0] != 0 || visited[5] != 5 {
		t.Fatalf("visited %v", visited)
	}
	if lastIdx[0] != 1 || lastIdx[1] != 2 {
		t.Fatalf("last index %v, want [1 2]", lastIdx)
	}
}

func TestMapScaleTotal(t *testing.T) {
	a, _ := NewFrom(seq(4), 4)
	a.Map(func(v float64) float64 { return v + 1 })
	if a.Total() != 10 {
		t.Fatalf("total=%g, want 10", a.Total())
	}
	a.Scale(2)
	if a.Total() != 20 {
		t.Fatalf("total=%g, want 20", a.Total())
	}
}

func TestEqualTolerance(t *testing.T) {
	a, _ := NewFrom([]float64{1, 2}, 2)
	b, _ := NewFrom([]float64{1, 2.0001}, 2)
	if a.Equal(b, 0) {
		t.Fatal("exact equal should fail")
	}
	if !a.Equal(b, 1e-3) {
		t.Fatal("tolerant equal should pass")
	}
	c := New(2, 1)
	if a.Equal(c, 1) {
		t.Fatal("different shapes are never equal")
	}
}

func TestStringForms(t *testing.T) {
	small, _ := NewFrom([]float64{1, 2}, 2)
	if got := small.String(); got != "ndarray[2]{1 2}" {
		t.Fatalf("String()=%q", got)
	}
	big := New(128)
	if got := big.String(); got == "" {
		t.Fatal("large String() should summarise, not be empty")
	}
}

// Property: PairSum preserves the grand total; PairDiff of a constant array
// is identically zero.
func TestPairSumTotalProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomArray(r, 4, 8)
		m := r.Intn(2)
		p, err := a.PairSum(m)
		if err != nil {
			return false
		}
		return math.Abs(p.Total()-a.Total()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	c := New(4, 4)
	c.Fill(3)
	d, _ := c.PairDiff(1)
	for _, v := range d.Data() {
		if v != 0 {
			t.Fatal("PairDiff of constant array must be zero")
		}
	}
}
