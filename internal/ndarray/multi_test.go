package ndarray

import (
	"math/rand"
	"testing"
)

func randomMulti(rng *rand.Rand, width int, shape ...int) *MultiArray {
	a := NewMulti(width, shape...)
	for i := range a.data {
		a.data[i] = rng.NormFloat64()
	}
	return a
}

// planeOf copies component c into a standalone scalar array.
func planeOf(a *MultiArray, c int) *Array {
	out := New(a.Shape()...)
	copy(out.Data(), a.Component(c).Data())
	return out
}

// TestMultiKernelsMatchScalarPerPlane pins the core linearity claim the
// vector engine rests on: every fused multi-kernel is bit-identical to the
// scalar kernel applied plane by plane.
func TestMultiKernelsMatchScalarPerPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const width = 3
	a := randomMulti(rng, width, 4, 8)

	// PairSum / PairDiff along each dimension.
	for m := 0; m < 2; m++ {
		half := append([]int(nil), a.Shape()...)
		half[m] /= 2
		gotS := NewMulti(width, half...)
		gotD := NewMulti(width, half...)
		if err := a.PairSumInto(m, gotS); err != nil {
			t.Fatal(err)
		}
		if err := a.PairDiffInto(m, gotD); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < width; c++ {
			wantS := New(half...)
			wantD := New(half...)
			if err := planeOf(a, c).PairSumInto(m, wantS); err != nil {
				t.Fatal(err)
			}
			if err := planeOf(a, c).PairDiffInto(m, wantD); err != nil {
				t.Fatal(err)
			}
			for i, v := range wantS.Data() {
				if gotS.Component(c).Data()[i] != v {
					t.Fatalf("PairSum plane %d cell %d: %g != %g", c, i, gotS.Component(c).Data()[i], v)
				}
			}
			for i, v := range wantD.Data() {
				if gotD.Component(c).Data()[i] != v {
					t.Fatalf("PairDiff plane %d cell %d differs", c, i)
				}
			}
		}
	}

	// FoldK with every sign pattern at depth 2 along dimension 1.
	for signs := uint(0); signs < 4; signs++ {
		shape := []int{4, 2}
		got := NewMulti(width, shape...)
		if err := a.FoldKInto(1, 2, signs, got); err != nil {
			t.Fatal(err)
		}
		for c := 0; c < width; c++ {
			want := New(shape...)
			if err := planeOf(a, c).FoldKInto(1, 2, signs, want); err != nil {
				t.Fatal(err)
			}
			for i, v := range want.Data() {
				if got.Component(c).Data()[i] != v {
					t.Fatalf("FoldK signs=%b plane %d cell %d differs", signs, c, i)
				}
			}
		}
	}

	// Interleave and SubArray.
	p := randomMulti(rng, width, 4, 4)
	r := randomMulti(rng, width, 4, 4)
	got := NewMulti(width, 4, 8)
	if err := InterleaveMultiInto(1, p, r, got); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < width; c++ {
		want := New(4, 8)
		if err := InterleaveInto(1, planeOf(p, c), planeOf(r, c), want); err != nil {
			t.Fatal(err)
		}
		for i, v := range want.Data() {
			if got.Component(c).Data()[i] != v {
				t.Fatalf("Interleave plane %d cell %d differs", c, i)
			}
		}
	}
	lo, ext := []int{1, 2}, []int{2, 4}
	gotSub := NewMulti(width, ext...)
	if err := a.SubArrayInto(lo, ext, gotSub); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < width; c++ {
		want := New(ext...)
		if err := planeOf(a, c).SubArrayInto(lo, ext, want); err != nil {
			t.Fatal(err)
		}
		for i, v := range want.Data() {
			if gotSub.Component(c).Data()[i] != v {
				t.Fatalf("SubArray plane %d cell %d differs", c, i)
			}
		}
	}
}

func TestMultiArrayBasics(t *testing.T) {
	a := NewMulti(3, 2, 4)
	if a.Width() != 3 || a.Cells() != 8 || a.Size() != 24 {
		t.Fatalf("width/cells/size = %d/%d/%d", a.Width(), a.Cells(), a.Size())
	}
	a.AddVec([]float64{1, 2, 3}, 1, 2)
	a.AddVec([]float64{10, 20, 30}, 1, 2)
	for c, want := range []float64{11, 22, 33} {
		if got := a.At(c, 1, 2); got != want {
			t.Fatalf("component %d = %g, want %g", c, got, want)
		}
	}
	// Component headers alias the flat buffer.
	a.Component(1).Set(-7, 0, 0)
	if a.Data()[8] != -7 {
		t.Fatal("Component(1) must alias plane 1 of the flat buffer")
	}
	b := a.Clone()
	b.AddVec([]float64{1, 1, 1}, 0, 0)
	if a.At(0, 0, 0) == b.At(0, 0, 0) {
		t.Fatal("Clone must not share storage")
	}
}

// TestScratchMultiRecycle checks the pool round-trip: recycled vector
// arrays are reissued from the pool and reshaped — including to a
// different width/shape of the same size class — with component headers
// correctly re-strided. Like scalar Scratch, contents are NOT zeroed
// (destination-passing kernels overwrite every cell).
func TestScratchMultiRecycle(t *testing.T) {
	// Note: pool hits cannot be asserted here — sync.Pool deliberately
	// drops items under the race detector — so this exercises the
	// recycle→reshape path and checks geometry, not hit rates.
	a, _ := ScratchMulti(3, 4, 4)
	RecycleMulti(a)
	b, _ := ScratchMulti(3, 4, 4)
	if b.Width() != 3 || b.Cells() != 16 {
		t.Fatalf("reissued shape %d×%d", b.Width(), b.Cells())
	}
	RecycleMulti(b)
	// Same size class, different width and rank.
	c, _ := ScratchMulti(6, 8)
	if c.Width() != 6 || c.Cells() != 8 || c.Rank() != 1 {
		t.Fatalf("reshaped to %d×%d rank %d", c.Width(), c.Cells(), c.Rank())
	}
	for comp := 0; comp < 6; comp++ {
		c.Component(comp).Set(float64(comp+1), 7)
	}
	for comp := 0; comp < 6; comp++ {
		if got := c.At(comp, 7); got != float64(comp+1) {
			t.Fatalf("component %d header misaligned after reshape: %g", comp, got)
		}
	}
	RecycleMulti(c)
}
