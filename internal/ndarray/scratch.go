package ndarray

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Scratch-buffer pool. Cascade execution is allocation-bound: every stage
// of every query wants a transient array that dies as soon as the next
// stage has consumed it. The pool recycles those arrays (header, shape and
// strides slices, and the float64 backing store) across queries, so
// steady-state execution allocates only the buffers a caller keeps.
//
// Buffers are size-classed by the next power of two of their cell count:
// a leased array's backing slice has capacity exactly 1<<class, sliced to
// the requested length. Cube extents are powers of two throughout this
// system, so in practice almost every lease lands exactly on its class and
// wastes nothing.
//
// Ownership rules (see DESIGN §10): Scratch transfers ownership to the
// caller; the array behaves exactly like a fresh New until the owner calls
// Recycle, which transfers ownership to the pool. After Recycle the caller
// must not touch the array again — not even to read — because a concurrent
// lease may already be overwriting it. Never Recycle an array that anything
// else can still reach (a store, a cache, a returned query result).
// Leased contents are undefined; pair Scratch only with kernels that fully
// overwrite their destination (the Into kernels, copy).

// maxScratchClass bounds pooled buffers at 2^27 cells (1 GiB of float64);
// larger requests are served by plain allocation and dropped on Recycle.
const maxScratchClass = 27

var (
	scratchPools  [maxScratchClass + 1]sync.Pool
	scratchHits   atomic.Uint64
	scratchMisses atomic.Uint64
)

// scratchClass returns the size-class exponent for n cells and whether n is
// poolable.
func scratchClass(n int) (int, bool) {
	if n <= 0 {
		return 0, false
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n); 0 for n=1
	return c, c <= maxScratchClass
}

// Scratch leases an array of the given shape from the pool, reporting
// whether the lease was served by a recycled buffer (hit) or by a fresh
// allocation (miss). The contents are undefined — the caller must fully
// overwrite them. The caller owns the result: keep it forever, or hand it
// back with Recycle.
func Scratch(shape ...int) (*Array, bool) {
	n := checkShape(shape)
	c, poolable := scratchClass(n)
	if poolable {
		if v := scratchPools[c].Get(); v != nil {
			a := v.(*Array)
			a.data = a.data[:n]
			a.shape = append(a.shape[:0], shape...)
			a.strides = stridesInto(a.strides[:0], a.shape)
			scratchHits.Add(1)
			return a, true
		}
	}
	scratchMisses.Add(1)
	a := &Array{shape: append([]int(nil), shape...)}
	if poolable {
		a.data = make([]float64, n, 1<<uint(c))
	} else {
		a.data = make([]float64, n)
	}
	a.strides = computeStrides(a.shape)
	return a, false
}

// stridesInto computes row-major strides into dst (resliced, reusing its
// capacity).
func stridesInto(dst []int, shape []int) []int {
	for range shape {
		dst = append(dst, 0)
	}
	acc := 1
	for m := len(shape) - 1; m >= 0; m-- {
		dst[m] = acc
		acc *= shape[m]
	}
	return dst
}

// Recycle returns an array's storage to the scratch pool. It accepts any
// array — leased or fresh — whose backing capacity is exactly a pool class
// (always true for power-of-two cell counts, the common case here); others
// are silently left to the garbage collector. The caller must own a
// exclusively and must not use it after the call.
func Recycle(a *Array) {
	if a == nil {
		return
	}
	cap_ := cap(a.data)
	c, poolable := scratchClass(cap_)
	if !poolable || cap_ != 1<<uint(c) {
		return
	}
	a.data = a.data[:cap_]
	scratchPools[c].Put(a)
}

// ScratchStats returns the cumulative process-wide lease counts: hits were
// served from recycled buffers, misses allocated. Their ratio is the
// steady-state allocation saving of the execution path.
func ScratchStats() (hits, misses uint64) {
	return scratchHits.Load(), scratchMisses.Load()
}
