package ndarray

import (
	"fmt"
	"math/bits"
)

// This file holds the destination-passing ("Into") variants of the pairwise
// Haar kernels plus the fused multi-stage kernel FoldK. The allocating
// entry points in ndarray.go (PairSum, PairDiff, PairFold, Interleave) are
// thin wrappers over these: allocate the output, then run the Into kernel.
// Destination passing is what lets the execution layer (package assembly)
// run entire plan trees out of a recycled scratch-buffer pool, allocating
// only the final result.
//
// Every Into kernel fully overwrites dst, so destinations leased from the
// scratch pool (Scratch) need no zeroing.

// checkFoldDst verifies that dst can hold the result of folding dimension m
// of a by 2^k, and returns the axis decomposition of a.
func (a *Array) checkFoldDst(m, k int, dst *Array) (outer, n, inner int, err error) {
	outer, n, inner = a.axisSpan(m)
	block := 1 << uint(k)
	if k < 0 || n%block != 0 {
		return 0, 0, 0, fmt.Errorf("%w: dimension %d extent %d is not divisible by 2^%d", ErrShape, m, n, k)
	}
	if dst == a {
		return 0, 0, 0, fmt.Errorf("%w: fold destination must not alias the source", ErrShape)
	}
	if len(dst.shape) != len(a.shape) {
		return 0, 0, 0, fmt.Errorf("%w: destination rank %d does not match source rank %d", ErrShape, len(dst.shape), len(a.shape))
	}
	for q := range a.shape {
		want := a.shape[q]
		if q == m {
			want = n / block
		}
		if dst.shape[q] != want {
			return 0, 0, 0, fmt.Errorf("%w: destination shape %v cannot hold dim-%d fold by 2^%d of %v", ErrShape, dst.shape, m, k, a.shape)
		}
	}
	return outer, n, inner, nil
}

// PairSumInto writes the Haar partial aggregation along dimension m into
// dst: dst[..., i, ...] = a[..., 2i, ...] + a[..., 2i+1, ...] (Eq. 1).
// dst must have a's shape with dimension m halved and must not alias a.
// dst is fully overwritten. The loop is kept branch-free: it is the
// innermost operator of every cascade.
func (a *Array) PairSumInto(m int, dst *Array) error {
	outer, n, inner, err := a.checkFoldDst(m, 1, dst)
	if err != nil {
		return err
	}
	src, out := a.data, dst.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * (n / 2) * inner
		for i := 0; i < n/2; i++ {
			x := sBase + 2*i*inner
			y := x + inner
			d := dBase + i*inner
			for j := 0; j < inner; j++ {
				out[d+j] = src[x+j] + src[y+j]
			}
		}
	}
	return nil
}

// PairDiffInto writes the Haar residual aggregation along dimension m into
// dst: dst[..., i, ...] = a[..., 2i, ...] − a[..., 2i+1, ...] (Eq. 2).
// Same shape contract as PairSumInto; dst is fully overwritten.
func (a *Array) PairDiffInto(m int, dst *Array) error {
	outer, n, inner, err := a.checkFoldDst(m, 1, dst)
	if err != nil {
		return err
	}
	src, out := a.data, dst.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * (n / 2) * inner
		for i := 0; i < n/2; i++ {
			x := sBase + 2*i*inner
			y := x + inner
			d := dBase + i*inner
			for j := 0; j < inner; j++ {
				out[d+j] = src[x+j] - src[y+j]
			}
		}
	}
	return nil
}

// pairFoldInto is the generic pairwise fold behind PairFold: one loop nest
// shared by every op. The specialised sum/diff kernels above keep their own
// branch-free bodies because the closure call dominates on the hot path.
func (a *Array) pairFoldInto(m int, dst *Array, op func(x, y float64) float64) error {
	outer, n, inner, err := a.checkFoldDst(m, 1, dst)
	if err != nil {
		return err
	}
	src, out := a.data, dst.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * (n / 2) * inner
		for i := 0; i < n/2; i++ {
			x := sBase + 2*i*inner
			y := x + inner
			d := dBase + i*inner
			for j := 0; j < inner; j++ {
				out[d+j] = op(src[x+j], src[y+j])
			}
		}
	}
	return nil
}

// InterleaveInto reconstructs a parent from its partial (p) and residual
// (r) children along dimension m, writing into dst (the perfect
// reconstruction identities, Eq. 3–4). p and r must have identical shapes;
// dst must have their shape with dimension m doubled and must alias neither
// child. dst is fully overwritten.
func InterleaveInto(m int, p, r, dst *Array) error {
	if !p.SameShape(r) {
		return fmt.Errorf("%w: partial shape %v does not match residual shape %v", ErrShape, p.shape, r.shape)
	}
	if dst == p || dst == r {
		return fmt.Errorf("%w: interleave destination must not alias a child", ErrShape)
	}
	outer, n, inner := p.axisSpan(m)
	if len(dst.shape) != len(p.shape) {
		return fmt.Errorf("%w: destination rank %d does not match child rank %d", ErrShape, len(dst.shape), len(p.shape))
	}
	for q := range p.shape {
		want := p.shape[q]
		if q == m {
			want = 2 * n
		}
		if dst.shape[q] != want {
			return fmt.Errorf("%w: destination shape %v cannot hold dim-%d interleave of %v", ErrShape, dst.shape, m, p.shape)
		}
	}
	ps, rs, out := p.data, r.data, dst.data
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * 2 * n * inner
		for i := 0; i < n; i++ {
			s := sBase + i*inner
			x := dBase + 2*i*inner
			y := x + inner
			for j := 0; j < inner; j++ {
				pv, rv := ps[s+j], rs[s+j]
				out[x+j] = (pv + rv) / 2
				out[y+j] = (pv - rv) / 2
			}
		}
	}
	return nil
}

// FoldK collapses a k-deep same-dimension partial/residual cascade into a
// single strided pass over dimension m. Bit t−1 of signs marks the t-th
// cascade stage (in application order) as a residual (difference); a clear
// bit is a partial (sum). Because every stage is linear with ±1 taps, the
// whole cascade is one signed block reduction: each output cell combines
// its 2^k consecutive source neighbours
//
//	out[..., i, ...] = Σ_{b<2^k} sign(b) · a[..., i·2^k + b, ...],
//	sign(b) = (−1)^popcount(b & signs),
//
// reading the input once instead of once per stage — ~N+N/2^k cells of
// memory traffic for the whole cascade versus ~2N·k stage at a time.
// The extent of dimension m must be divisible by 2^k and signs must fit in
// k bits. k = 0 (with signs 0) degenerates to a copy.
func (a *Array) FoldK(m, k int, signs uint) (*Array, error) {
	outShape := a.Shape()
	outShape[m] >>= uint(k)
	if outShape[m] == 0 || a.shape[m]%(1<<uint(k)) != 0 {
		return nil, fmt.Errorf("%w: dimension %d extent %d is not divisible by 2^%d", ErrShape, m, a.shape[m], k)
	}
	out := New(outShape...)
	if err := a.FoldKInto(m, k, signs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// FoldKInto is FoldK with a caller-provided destination: dst must have a's
// shape with dimension m divided by 2^k and must not alias a. dst is fully
// overwritten.
func (a *Array) FoldKInto(m, k int, signs uint, dst *Array) error {
	outer, n, inner, err := a.checkFoldDst(m, k, dst)
	if err != nil {
		return err
	}
	block := 1 << uint(k)
	if signs >= uint(block) {
		return fmt.Errorf("%w: signs %#x does not fit in %d cascade stages", ErrShape, signs, k)
	}
	// neg[b] is whether source slot b enters with a minus sign: the parity
	// of the residual stages that see it as the second element of a pair.
	// Cascades deeper than 6 stages are rare; the fixed buffer keeps the
	// common case off the heap.
	var negBuf [64]bool
	var neg []bool
	if block <= len(negBuf) {
		neg = negBuf[:block]
	} else {
		neg = make([]bool, block)
	}
	for b := 1; b < block; b++ {
		neg[b] = bits.OnesCount(uint(b)&signs)%2 == 1
	}
	src, out := a.data, dst.data
	nOut := n / block
	for o := 0; o < outer; o++ {
		sBase := o * n * inner
		dBase := o * nOut * inner
		for i := 0; i < nOut; i++ {
			d := dBase + i*inner
			s0 := sBase + i*block*inner
			// Slot 0 always enters positively (bit parity of 0 is even);
			// it initialises the accumulator so dst needs no zeroing.
			for j := 0; j < inner; j++ {
				out[d+j] = src[s0+j]
			}
			for b := 1; b < block; b++ {
				s := s0 + b*inner
				if neg[b] {
					for j := 0; j < inner; j++ {
						out[d+j] -= src[s+j]
					}
				} else {
					for j := 0; j < inner; j++ {
						out[d+j] += src[s+j]
					}
				}
			}
		}
	}
	return nil
}

// SubArrayInto copies the axis-aligned box [lo, lo+ext) into dst, which
// must have shape ext. dst is fully overwritten. It is the reusable-buffer
// form of SubArray for callers that extract many same-shaped slabs.
func (a *Array) SubArrayInto(lo, ext []int, dst *Array) error {
	if len(lo) != len(a.shape) || len(ext) != len(a.shape) {
		return fmt.Errorf("%w: box rank does not match array rank %d", ErrShape, len(a.shape))
	}
	for m := range lo {
		if lo[m] < 0 || ext[m] <= 0 || lo[m]+ext[m] > a.shape[m] {
			return fmt.Errorf("%w: box lo=%v ext=%v outside shape %v", ErrShape, lo, ext, a.shape)
		}
		if dst.shape[m] != ext[m] {
			return fmt.Errorf("%w: destination shape %v does not match box extents %v", ErrShape, dst.shape, ext)
		}
	}
	idx := make([]int, len(ext))
	for off := 0; off < len(dst.data); off++ {
		src := 0
		for m := range idx {
			src += (lo[m] + idx[m]) * a.strides[m]
		}
		dst.data[off] = a.data[src]
		incIndex(idx, ext)
	}
	return nil
}
