package server

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
)

// downClient refuses every call, simulating a dead shard.
type downClient struct{}

func (downClient) Do(context.Context, *cluster.Request) (*cluster.Response, error) {
	return nil, errors.New("connection refused")
}
func (downClient) Close() error { return nil }

func shardEngineFromCSV(t *testing.T, csv string) *cluster.ShardEngine {
	t.Helper()
	cube, err := viewcube.Load(strings.NewReader(csv), "sales")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{ExecWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cluster.NewShardEngine(cube, eng.Safe())
}

func newCoordinatorServer(t *testing.T, shards []cluster.Shard) (*httptest.Server, *cluster.Coordinator) {
	t.Helper()
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: time.Second,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	quietLog := WithCoordinatorLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	return newTestServer(t, NewCoordinator(coord, quietLog)), coord
}

func coordShards(t *testing.T) []cluster.Shard {
	t.Helper()
	shardA := shardEngineFromCSV(t, `product,region,day,sales
ale,east,d1,10
ale,west,d1,5
bock,east,d1,7
`)
	shardB := shardEngineFromCSV(t, `product,region,day,sales
ale,east,d2,2
bock,west,d2,4
cider,west,d3,3
`)
	return []cluster.Shard{
		{Name: "a", Client: cluster.NewLoopback(shardA)},
		{Name: "b", Client: cluster.NewLoopback(shardB)},
	}
}

func getJSONBody(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestCoordinatorServerGroupBy(t *testing.T) {
	ts, _ := newCoordinatorServer(t, coordShards(t))
	var groups map[string]float64
	if code := getJSONBody(t, ts.URL+"/groupby?keep=product", &groups); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	want := map[string]float64{"ale": 17, "bock": 11, "cider": 3}
	if len(groups) != len(want) {
		t.Fatalf("groups = %v, want %v", groups, want)
	}
	for k, v := range want {
		if groups[k] != v {
			t.Fatalf("group %q = %v, want %v", k, groups[k], v)
		}
	}
}

func TestCoordinatorServerTotalAndRange(t *testing.T) {
	ts, _ := newCoordinatorServer(t, coordShards(t))
	var total map[string]float64
	if code := getJSONBody(t, ts.URL+"/total", &total); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if total["sum"] != 31 {
		t.Fatalf("total = %v, want 31", total["sum"])
	}
	var rng map[string]float64
	if code := getJSONBody(t, ts.URL+"/range?day=d1:d2", &rng); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if rng["sum"] != 28 {
		t.Fatalf("range = %v, want 28", rng["sum"])
	}
}

func TestCoordinatorServerPartial(t *testing.T) {
	shards := coordShards(t)
	shards[1].Client = downClient{}
	ts, _ := newCoordinatorServer(t, shards)

	// Exact query must refuse to answer with a shard down.
	var errResp map[string]any
	if code := getJSONBody(t, ts.URL+"/total", &errResp); code != http.StatusBadGateway {
		t.Fatalf("exact query with dead shard: status %d, body %v", code, errResp)
	}

	// partial=1 answers with the live shard and names the dead one.
	var out struct {
		Sum     float64                `json:"sum"`
		Partial *cluster.PartialResult `json:"partial"`
	}
	if code := getJSONBody(t, ts.URL+"/total?partial=1", &out); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out.Sum != 22 {
		t.Fatalf("partial total = %v, want 22 (shard a only)", out.Sum)
	}
	if out.Partial == nil || len(out.Partial.Missing) != 1 || out.Partial.Missing[0] != "b" {
		t.Fatalf("partial = %+v, want missing [b]", out.Partial)
	}
}

func TestCoordinatorServerBadQuery(t *testing.T) {
	ts, _ := newCoordinatorServer(t, coordShards(t))
	var errResp map[string]any
	if code := getJSONBody(t, ts.URL+"/groupby?keep=nope", &errResp); code != http.StatusBadRequest {
		t.Fatalf("unknown dimension: status %d, body %v", code, errResp)
	}
}

func TestCoordinatorServerMetricsAndShards(t *testing.T) {
	ts, _ := newCoordinatorServer(t, coordShards(t))
	var shards map[string][]string
	if code := getJSONBody(t, ts.URL+"/shards", &shards); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(shards["shards"]) != 2 {
		t.Fatalf("shards = %v", shards)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "viewcube_cluster_queries_total") {
		t.Fatal("metrics exposition is missing cluster counters")
	}
	var health map[string]any
	if code := getJSONBody(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
}
