package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestHealthz(t *testing.T) {
	ts := newServer(t)
	var out map[string]string
	if resp := getJSON(t, ts.URL+"/healthz", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if out["status"] != "ok" {
		t.Fatalf("healthz body %v", out)
	}
}

func TestMetricsExposition(t *testing.T) {
	ts := newServer(t)
	// Drive some work so the counters move.
	postJSON(t, ts.URL+"/query", map[string]string{"sql": "SELECT SUM(sales) GROUP BY product"})
	var rangeOut map[string]float64
	getJSON(t, ts.URL+"/range?day=d1:d2", &rangeOut)

	resp, body := getBody(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	// Prometheus text exposition: every series line must be "name value" or
	// "name{labels} value", and every family needs HELP and TYPE headers.
	families := map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			families[strings.Fields(line)[2]] = true
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
	for _, want := range []string{
		"viewcube_query_seconds",          // latency histogram
		"viewcube_store_cache_hits_total", // store cache
		"viewcube_store_cache_misses_total",
		"viewcube_reselections_total", // adaptive reselection
		"viewcube_http_requests_total",
	} {
		if !families[want] {
			t.Fatalf("metric family %q missing from exposition:\n%s", want, body)
		}
	}
	// The histogram must expose cumulative buckets, sum and count, and the
	// traffic driven above must be visible in the query counters.
	for _, want := range []string{
		`viewcube_query_seconds_bucket{le="+Inf"}`,
		"viewcube_query_seconds_sum",
		"viewcube_query_seconds_count",
		`viewcube_queries_total{kind="sql"} 1`,
		`viewcube_queries_total{kind="range"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

func TestQueryTraceParam(t *testing.T) {
	ts := newServer(t)
	resp, out := postJSON(t, ts.URL+"/query?trace=1", map[string]string{
		"sql": "SELECT SUM(sales) GROUP BY product",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	tr, ok := out["trace"].(map[string]any)
	if !ok {
		t.Fatalf("trace missing from response: %v", out)
	}
	// Span tree shape: {name, duration_us, children}.
	if tr["name"] != "query" {
		t.Fatalf("root span %v", tr)
	}
	if _, ok := tr["duration_us"].(float64); !ok {
		t.Fatalf("root span has no duration: %v", tr)
	}
	children, ok := tr["children"].([]any)
	if !ok || len(children) == 0 {
		t.Fatalf("root span has no children: %v", tr)
	}
	// Untraced requests must not carry the field.
	_, out = postJSON(t, ts.URL+"/query", map[string]string{
		"sql": "SELECT SUM(sales) GROUP BY product",
	})
	if _, present := out["trace"]; present {
		t.Fatalf("untraced response carries a trace: %v", out)
	}
}

func TestGroupByAndRangeTraceParam(t *testing.T) {
	ts := newServer(t)
	var out map[string]any
	getJSON(t, ts.URL+"/groupby?keep=product&trace=1", &out)
	if _, ok := out["groups"].(map[string]any); !ok {
		t.Fatalf("traced groupby missing groups: %v", out)
	}
	if _, ok := out["trace"].(map[string]any); !ok {
		t.Fatalf("traced groupby missing trace: %v", out)
	}
	out = nil
	getJSON(t, ts.URL+"/range?day=d1:d2&trace=1", &out)
	if out["sum"].(float64) != 28 {
		t.Fatalf("traced range sum %v", out)
	}
	if _, ok := out["trace"].(map[string]any); !ok {
		t.Fatalf("traced range missing trace: %v", out)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newServer(t)
	var out map[string]any
	if resp := getJSON(t, ts.URL+"/explain?keep=product", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("explain status %d", resp.StatusCode)
	}
	text, ok := out["text"].(string)
	if !ok || !strings.Contains(text, "total cost") || !strings.Contains(text, "plan cache") {
		t.Fatalf("explain text %q", text)
	}
	pc, ok := out["plan_cache"].(map[string]any)
	if !ok {
		t.Fatalf("explain missing plan_cache: %v", out)
	}
	if pc["hits"].(float64)+pc["misses"].(float64) < 1 {
		t.Fatalf("explain did not touch the plan cache: %v", pc)
	}
	// Explaining twice must hit the shared plan cache the second time.
	out = nil
	getJSON(t, ts.URL+"/explain?keep=product", &out)
	if text := out["text"].(string); !strings.Contains(text, "plan cache hit") {
		t.Fatalf("second explain not a cache hit: %q", text)
	}
}

func TestEnrichedStats(t *testing.T) {
	ts := newServer(t)
	var groups map[string]float64
	getJSON(t, ts.URL+"/groupby?keep=product", &groups)
	var stats map[string]any
	getJSON(t, ts.URL+"/stats", &stats)
	// Historical flat keys survive the enrichment.
	if stats["Queries"].(float64) < 1 {
		t.Fatalf("stats lost the adaptive counters: %v", stats)
	}
	st, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing store block: %v", stats)
	}
	for _, key := range []string{"cache_hits", "cache_misses", "cached_cells"} {
		if _, ok := st[key]; !ok {
			t.Fatalf("store stats missing %q: %v", key, st)
		}
	}
	if stats["materialized_elements"].(float64) <= 0 {
		t.Fatalf("stats materialized_elements: %v", stats)
	}
}

func TestPprofOptIn(t *testing.T) {
	// Default server: pprof absent.
	ts := newServer(t)
	resp, _ := getBody(t, ts.URL+"/debug/pprof/cmdline")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without opt-in")
	}
	// Opted in: index responds.
	cube, eng := newCubeEngine(t)
	ts2 := newTestServer(t, New(cube, eng, quiet, WithPprof()))
	resp, body := getBody(t, ts2.URL+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}
