package server

// The coordinator's new error taxonomy and cache surface through HTTP:
// admission shed is 429, a fully dead tier is 503 (both as structured
// {error, code} bodies), and POST /invalidate drops cached answers.

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"viewcube/internal/cluster"
	"viewcube/internal/rescache"
)

func quietCoordLog() CoordinatorOption {
	return WithCoordinatorLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
}

// stallClient parks every call until release closes (or the context dies).
type stallClient struct {
	inner   cluster.ShardClient
	release chan struct{}
	arrived atomic.Int32
}

func (s *stallClient) Do(ctx context.Context, req *cluster.Request) (*cluster.Response, error) {
	s.arrived.Add(1)
	select {
	case <-s.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.inner.Do(ctx, req)
}

func (s *stallClient) Close() error { return s.inner.Close() }

func TestCoordinatorServerOverloadAndUnavailable(t *testing.T) {
	// All shards down in exact mode → 503 with a structured body.
	downShards := []cluster.Shard{
		{Name: "a", Client: downClient{}},
		{Name: "b", Client: downClient{}},
	}
	ts, _ := newCoordinatorServer(t, downShards)
	var body struct {
		Error string `json:"error"`
		Code  int    `json:"code"`
	}
	if code := getJSONBody(t, ts.URL+"/total", &body); code != http.StatusServiceUnavailable {
		t.Fatalf("all shards down: status %d, body %+v", code, body)
	}
	if body.Code != http.StatusServiceUnavailable || body.Error == "" {
		t.Fatalf("503 body %+v, want structured {error, code}", body)
	}

	// A saturated admission valve → 429 with a structured body.
	stalled := &stallClient{inner: coordShards(t)[0].Client, release: make(chan struct{})}
	coord, err := cluster.NewCoordinator(
		[]cluster.Shard{{Name: "a", Client: stalled}},
		cluster.Options{
			Timeout:      5 * time.Second,
			Retries:      -1,
			MaxInFlight:  1,
			QueueTimeout: 10 * time.Millisecond,
		})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts2 := newTestServer(t, NewCoordinator(coord, quietCoordLog()))

	hold := make(chan error, 1)
	go func() {
		_, err := coord.Total()
		hold <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for stalled.arrived.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled query never reached the shard")
		}
		time.Sleep(time.Millisecond)
	}
	if code := getJSONBody(t, ts2.URL+"/total", &body); code != http.StatusTooManyRequests {
		t.Fatalf("saturated tier: status %d, body %+v", code, body)
	}
	if body.Code != http.StatusTooManyRequests || body.Error == "" {
		t.Fatalf("429 body %+v, want structured {error, code}", body)
	}
	close(stalled.release)
	if err := <-hold; err != nil {
		t.Fatalf("held query failed after release: %v", err)
	}
}

func TestCoordinatorServerInvalidateEndpoint(t *testing.T) {
	coord, err := cluster.NewCoordinator(coordShards(t), cluster.Options{
		Timeout: time.Second,
		Cache:   &rescache.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	ts := newTestServer(t, NewCoordinator(coord, quietCoordLog()))

	var groups map[string]float64
	for i := 0; i < 2; i++ {
		if code := getJSONBody(t, ts.URL+"/groupby?keep=product", &groups); code != 200 {
			t.Fatalf("status %d", code)
		}
	}
	var shardsOut struct {
		ResultCache *rescache.Stats `json:"result_cache"`
	}
	if code := getJSONBody(t, ts.URL+"/shards", &shardsOut); code != 200 {
		t.Fatalf("shards status %d", code)
	}
	if shardsOut.ResultCache == nil || shardsOut.ResultCache.Hits < 1 || shardsOut.ResultCache.Entries != 1 {
		t.Fatalf("/shards result_cache %+v", shardsOut.ResultCache)
	}

	resp, body := postJSON(t, ts.URL+"/invalidate", map[string]any{})
	if resp.StatusCode != 200 || body["epoch"] == nil {
		t.Fatalf("invalidate: status %d body %v", resp.StatusCode, body)
	}
	if code := getJSONBody(t, ts.URL+"/shards", &shardsOut); code != 200 {
		t.Fatalf("shards status %d", code)
	}
	if shardsOut.ResultCache.Entries != 0 || shardsOut.ResultCache.Invalidations != 1 {
		t.Fatalf("post-invalidate result_cache %+v", shardsOut.ResultCache)
	}
	// The next read recomputes the same answer.
	var fresh map[string]float64
	if code := getJSONBody(t, ts.URL+"/groupby?keep=product", &fresh); code != 200 {
		t.Fatalf("status %d", code)
	}
	if fresh["ale"] != groups["ale"] {
		t.Fatalf("post-invalidate %v vs %v", fresh, groups)
	}
}
