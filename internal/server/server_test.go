package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"viewcube"
)

// quiet discards request logs so test output stays readable.
var quiet = WithLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))

const salesCSV = `product,region,day,sales
ale,east,d1,10
ale,west,d1,5
ale,east,d2,2
bock,east,d1,7
bock,west,d2,4
cider,west,d3,3
`

func newCubeEngine(t *testing.T) (*viewcube.Cube, *viewcube.Engine) {
	t.Helper()
	cube, err := viewcube.Load(strings.NewReader(salesCSV), "sales")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cube, eng
}

func newTestServer(t *testing.T, h http.Handler) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	cube, eng := newCubeEngine(t)
	return newTestServer(t, New(cube, eng, quiet))
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestQueryEndpoint(t *testing.T) {
	ts := newServer(t)
	resp, out := postJSON(t, ts.URL+"/query", map[string]string{
		"sql": "SELECT SUM(sales) GROUP BY product",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, out)
	}
	rows := out["rows"].([]any)
	if len(rows) != 3 {
		t.Fatalf("rows %v", rows)
	}
	first := rows[0].(map[string]any)
	if first["key"].([]any)[0] != "ale" || first["values"].([]any)[0].(float64) != 17 {
		t.Fatalf("first row %v", first)
	}
	// Bad SQL → 400 with an error body.
	resp, out = postJSON(t, ts.URL+"/query", map[string]string{"sql": "garbage"})
	if resp.StatusCode != http.StatusBadRequest || out["error"] == "" {
		t.Fatalf("bad sql: status %d body %v", resp.StatusCode, out)
	}
}

func TestGroupByAndRangeEndpoints(t *testing.T) {
	ts := newServer(t)
	var groups map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=region", &groups); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if groups["east"] != 19 || groups["west"] != 12 {
		t.Fatalf("groups %v", groups)
	}
	var rangeOut map[string]float64
	if resp := getJSON(t, ts.URL+"/range?day=d1:d2", &rangeOut); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if rangeOut["sum"] != 28 {
		t.Fatalf("range %v", rangeOut)
	}
	var errOut map[string]any
	if resp := getJSON(t, ts.URL+"/range?day=oops", &errOut); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed range: status %d", resp.StatusCode)
	}
	if errOut["code"].(float64) != http.StatusBadRequest {
		t.Fatalf("error body should echo the status code: %v", errOut)
	}
}

func TestUpdateAndStatsEndpoints(t *testing.T) {
	ts := newServer(t)
	resp, _ := postJSON(t, ts.URL+"/update", map[string]any{
		"delta":  5,
		"values": map[string]string{"product": "ale", "region": "east", "day": "d1"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	var groups map[string]float64
	getJSON(t, ts.URL+"/groupby?keep=product", &groups)
	if groups["ale"] != 22 {
		t.Fatalf("post-update groups %v", groups)
	}
	var stats map[string]any
	if resp := getJSON(t, ts.URL+"/stats", &stats); resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if stats["Queries"].(float64) < 1 {
		t.Fatalf("stats %v", stats)
	}
	var info map[string]any
	getJSON(t, ts.URL+"/info", &info)
	if info["measure"] != "sales" {
		t.Fatalf("info %v", info)
	}
}

func TestOptimizeEndpoint(t *testing.T) {
	ts := newServer(t)
	resp, _ := postJSON(t, ts.URL+"/optimize", map[string]any{
		"views": []map[string]any{{"keep": []string{"product"}, "freq": 1.0}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("optimize status %d", resp.StatusCode)
	}
	var groups map[string]float64
	getJSON(t, ts.URL+"/groupby?keep=product", &groups)
	if groups["ale"] != 17 {
		t.Fatalf("post-optimize groups %v", groups)
	}
	resp, _ = postJSON(t, ts.URL+"/optimize", map[string]any{
		"views": []map[string]any{{"keep": []string{"nope"}, "freq": 1.0}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad optimize status %d", resp.StatusCode)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts := newServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				var groups map[string]float64
				resp, err := http.Get(ts.URL + "/groupby?keep=product")
				if err != nil {
					errs <- err
					return
				}
				if err := json.NewDecoder(resp.Body).Decode(&groups); err != nil {
					errs <- err
				}
				resp.Body.Close()
				if groups["ale"] != 17 {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
