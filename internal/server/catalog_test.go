package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"viewcube"
	"viewcube/internal/catalog"
	"viewcube/internal/obs"
)

const inventoryCSV = `item,warehouse,day,stock
ale,north,d1,4
ale,south,d1,6
bock,north,d2,9
cider,south,d3,1
`

// newCatalogRegistry builds a two-cube registry: "sales" (the default, with
// a star-minus-day view and an aliasing view) and "inventory".
func newCatalogRegistry(t *testing.T) *catalog.Registry {
	t.Helper()
	reg := catalog.NewRegistry()
	register := func(name, csv, measure string) {
		t.Helper()
		err := reg.Register(name, func() (catalog.CubeHandle, error) {
			cube, err := viewcube.Load(strings.NewReader(csv), measure)
			if err != nil {
				return nil, err
			}
			eng, err := cube.NewEngine(viewcube.EngineOptions{
				Metrics: reg.CubeMetrics(name),
			})
			if err != nil {
				return nil, err
			}
			return catalog.NewSafeHandle(cube, eng.Safe()), nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	register("sales", salesCSV, "sales")
	register("inventory", inventoryCSV, "stock")
	if err := reg.RegisterView(catalog.ViewSpec{
		Name: "public", Cube: "sales",
		Includes: catalog.All(), Excludes: []string{"day"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterView(catalog.ViewSpec{
		Name: "aliased", Cube: "sales",
		Includes: catalog.IncludeList{Members: []catalog.MemberSpec{
			{Name: "product", Alias: "item"},
			{Name: "region"},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func newCatalogTS(t *testing.T, opts ...Option) (*httptest.Server, *catalog.Registry) {
	t.Helper()
	reg := newCatalogRegistry(t)
	return newTestServer(t, NewCatalog(reg, append([]Option{quiet}, opts...)...)), reg
}

func TestCatalogCubeRouting(t *testing.T) {
	ts, _ := newCatalogTS(t)

	var listing struct {
		Default string               `json:"default"`
		Cubes   []catalog.CubeStatus `json:"cubes"`
	}
	if resp := getJSON(t, ts.URL+"/cubes", &listing); resp.StatusCode != 200 {
		t.Fatalf("/cubes status %d", resp.StatusCode)
	}
	if listing.Default != "sales" || len(listing.Cubes) != 2 {
		t.Fatalf("listing = %+v", listing)
	}
	if listing.Cubes[0].State != "serving" || listing.Cubes[0].Epoch != 1 {
		t.Fatalf("sales status = %+v", listing.Cubes[0])
	}

	// One process, two cubes: each answers with its own schema.
	var sales, inv map[string]float64
	getJSON(t, ts.URL+"/cubes/sales/groupby?keep=product", &sales)
	getJSON(t, ts.URL+"/cubes/inventory/groupby?keep=item", &inv)
	if sales["ale"] != 17 || inv["ale"] != 10 {
		t.Fatalf("sales[ale]=%v inv[ale]=%v", sales["ale"], inv["ale"])
	}

	// Unknown cube → 404 with the unified error body.
	var errOut map[string]any
	if resp := getJSON(t, ts.URL+"/cubes/ghost/groupby?keep=x", &errOut); resp.StatusCode != 404 {
		t.Fatalf("unknown cube status %d", resp.StatusCode)
	}
	if errOut["code"].(float64) != 404 || errOut["error"] == "" {
		t.Fatalf("error body = %v", errOut)
	}
}

// TestLegacyRoutesGolden pins the byte-exact success bodies of the legacy
// single-cube routes: the catalog refactor must not change what existing
// clients parse.
func TestLegacyRoutesGolden(t *testing.T) {
	ts, _ := newCatalogTS(t)
	golden := []struct {
		path string
		want string
	}{
		{"/groupby?keep=region", `{"east":19,"west":12}` + "\n"},
		{"/range?day=d1:d2", `{"sum":28}` + "\n"},
		{"/info", `{"dimensions":["product","region","day"],"measure":"sales","shape":[4,2,4],"volume":32}` + "\n"},
	}
	for _, g := range golden {
		resp, body := getBody(t, ts.URL+g.path)
		if resp.StatusCode != 200 || body != g.want {
			t.Errorf("%s: status %d body %q, want %q", g.path, resp.StatusCode, body, g.want)
		}
		// The explicit default-cube route answers byte-identically.
		scoped := "/cubes/sales" + g.path
		resp, body = getBody(t, ts.URL+scoped)
		if resp.StatusCode != 200 || body != g.want {
			t.Errorf("%s: status %d body %q, want %q", scoped, resp.StatusCode, body, g.want)
		}
	}
}

func TestViewRoutingAliasesAndExcludes(t *testing.T) {
	ts, _ := newCatalogTS(t)

	// View listing.
	var vl struct {
		Views []catalog.ViewStatus `json:"views"`
	}
	if resp := getJSON(t, ts.URL+"/cubes/sales/views", &vl); resp.StatusCode != 200 {
		t.Fatalf("views status %d", resp.StatusCode)
	}
	if len(vl.Views) != 2 || vl.Views[0].Name != "public" || vl.Views[1].Name != "aliased" {
		t.Fatalf("views = %+v", vl.Views)
	}

	// An aliased SQL query answers identically to the raw one.
	_, aliased := postJSON(t, ts.URL+"/cubes/sales/views/aliased/query",
		map[string]string{"sql": "SELECT SUM(sales) GROUP BY item"})
	_, raw := postJSON(t, ts.URL+"/query",
		map[string]string{"sql": "SELECT SUM(sales) GROUP BY product"})
	if fmt.Sprint(aliased["rows"]) != fmt.Sprint(raw["rows"]) {
		t.Fatalf("aliased rows %v != raw rows %v", aliased["rows"], raw["rows"])
	}
	// ...but reports the view's column names.
	if cols := fmt.Sprint(aliased["columns"]); cols != "[item SUM(sales)]" {
		t.Fatalf("aliased columns = %v", cols)
	}

	// The aliased GROUP BY works through /groupby too.
	var groups map[string]float64
	getJSON(t, ts.URL+"/cubes/sales/views/aliased/groupby?keep=item", &groups)
	if groups["ale"] != 17 {
		t.Fatalf("groups = %v", groups)
	}

	// Members a view does not expose → 404, before any planning.
	for _, path := range []string{
		"/cubes/sales/views/public/groupby?keep=day",       // excluded
		"/cubes/sales/views/aliased/groupby?keep=product",  // hidden by alias
		"/cubes/sales/views/aliased/range?product=ale:ale", // hidden in ranges
		"/cubes/sales/views/public/explain?keep=day",       // excluded in explain
	} {
		var errOut map[string]any
		if resp := getJSON(t, ts.URL+path, &errOut); resp.StatusCode != 404 {
			t.Errorf("%s: status %d, want 404 (%v)", path, resp.StatusCode, errOut)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/cubes/sales/views/public/query",
		map[string]string{"sql": "SELECT SUM(sales) GROUP BY day"})
	if resp.StatusCode != 404 {
		t.Errorf("excluded member in SQL: status %d, want 404", resp.StatusCode)
	}

	// Unknown view → 404.
	var errOut map[string]any
	if resp := getJSON(t, ts.URL+"/cubes/sales/views/ghost/groupby?keep=product", &errOut); resp.StatusCode != 404 {
		t.Fatalf("unknown view status %d", resp.StatusCode)
	}

	// /info through a view lists exposed member names.
	var info map[string]any
	getJSON(t, ts.URL+"/cubes/sales/views/aliased/info", &info)
	if dims := fmt.Sprint(info["dimensions"]); dims != "[item region]" {
		t.Fatalf("view info dimensions = %v", dims)
	}
}

func TestLifecycleEndpoints(t *testing.T) {
	ts, _ := newCatalogTS(t)

	resp, out := postJSON(t, ts.URL+"/cubes/sales/unload", nil)
	if resp.StatusCode != 200 || out["status"] != "ok" {
		t.Fatalf("unload: %d %v", resp.StatusCode, out)
	}
	// Queries against the unloaded cube 404; the other cube is untouched.
	var errOut map[string]any
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &errOut); resp.StatusCode != 404 {
		t.Fatalf("unloaded query status %d", resp.StatusCode)
	}
	var inv map[string]float64
	if resp := getJSON(t, ts.URL+"/cubes/inventory/groupby?keep=item", &inv); resp.StatusCode != 200 {
		t.Fatalf("inventory during sales unload: %d", resp.StatusCode)
	}
	// Double unload → 404; lifecycle ops on unknown cubes → 404.
	if resp, _ := postJSON(t, ts.URL+"/cubes/sales/unload", nil); resp.StatusCode != 404 {
		t.Fatalf("double unload status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/cubes/ghost/rebuild", nil); resp.StatusCode != 404 {
		t.Fatalf("ghost rebuild status %d", resp.StatusCode)
	}

	if resp, _ := postJSON(t, ts.URL+"/cubes/sales/load", nil); resp.StatusCode != 200 {
		t.Fatalf("load status %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/cubes/sales/rebuild", nil); resp.StatusCode != 200 {
		t.Fatalf("rebuild status %d", resp.StatusCode)
	}
	var groups map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &groups); resp.StatusCode != 200 || groups["ale"] != 17 {
		t.Fatalf("after reload: %d %v", resp.StatusCode, groups)
	}
	// Epoch advanced once per load and once per rebuild.
	var listing struct {
		Cubes []catalog.CubeStatus `json:"cubes"`
	}
	getJSON(t, ts.URL+"/cubes", &listing)
	if listing.Cubes[0].Epoch != 3 {
		t.Fatalf("epoch = %d, want 3", listing.Cubes[0].Epoch)
	}
}

// TestUnloadDuringQueryStorm drives concurrent queries while the cube is
// unloaded and reloaded. Every response must be a clean 200, 404 or 409 —
// an in-flight query holds its lease until it finishes, so unload drains
// rather than racing (run under -race to check the engine side too).
func TestUnloadDuringQueryStorm(t *testing.T) {
	ts, _ := newCatalogTS(t)
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := http.Get(ts.URL + "/cubes/sales/groupby?keep=product")
				if err != nil {
					t.Errorf("get: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					var groups map[string]float64
					if err := json.Unmarshal(body, &groups); err != nil || groups["ale"] != 17 {
						t.Errorf("bad 200 body: %s (%v)", body, err)
					}
				case http.StatusNotFound, http.StatusConflict:
					var e map[string]any
					if err := json.Unmarshal(body, &e); err != nil || e["code"] == nil {
						t.Errorf("bad error body: %s", body)
					}
				default:
					t.Errorf("unexpected status %d: %s", resp.StatusCode, body)
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if resp, out := postJSON(t, ts.URL+"/cubes/sales/unload", nil); resp.StatusCode != 200 {
				t.Errorf("unload: %d %v", resp.StatusCode, out)
				return
			}
			if resp, out := postJSON(t, ts.URL+"/cubes/sales/load", nil); resp.StatusCode != 200 {
				t.Errorf("load: %d %v", resp.StatusCode, out)
				return
			}
		}
	}()
	wg.Wait()
	var groups map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &groups); resp.StatusCode != 200 || groups["ale"] != 17 {
		t.Fatalf("after storm: %d %v", resp.StatusCode, groups)
	}
}

func TestQueryLogRecordsCubeAndView(t *testing.T) {
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newCatalogTS(t, WithQueryLog(qlog))

	postJSON(t, ts.URL+"/cubes/sales/views/aliased/query",
		map[string]string{"sql": "SELECT SUM(sales) GROUP BY item"})
	getJSON(t, ts.URL+"/cubes/inventory/groupby?keep=item", new(map[string]float64))

	var out struct {
		Entries []map[string]any `json:"entries"`
	}
	getJSON(t, ts.URL+"/querylog?n=2", &out)
	if len(out.Entries) != 2 {
		t.Fatalf("entries = %d", len(out.Entries))
	}
	// Newest first: the inventory groupby, then the view query.
	if out.Entries[0]["cube"] != "inventory" || out.Entries[0]["view"] != nil {
		t.Fatalf("entry 0 = %v", out.Entries[0])
	}
	if out.Entries[1]["cube"] != "sales" || out.Entries[1]["view"] != "aliased" {
		t.Fatalf("entry 1 = %v", out.Entries[1])
	}
	// The logged shape is the client-facing (aliased) form.
	if out.Entries[1]["shape"] != "SELECT SUM(sales) GROUP BY item" {
		t.Fatalf("shape = %v", out.Entries[1]["shape"])
	}
}

func TestTraceCarriesCubeLabel(t *testing.T) {
	ts, _ := newCatalogTS(t)
	var out struct {
		Trace struct {
			Labels map[string]string `json:"labels"`
		} `json:"trace"`
	}
	getJSON(t, ts.URL+"/cubes/sales/views/public/groupby?keep=product&trace=1", &out)
	if out.Trace.Labels["cube"] != "sales" || out.Trace.Labels["view"] != "public" {
		t.Fatalf("trace labels = %v", out.Trace.Labels)
	}
}

func TestPerCubeMetricsLabels(t *testing.T) {
	ts, _ := newCatalogTS(t)
	getJSON(t, ts.URL+"/cubes/sales/groupby?keep=product", new(map[string]float64))
	getJSON(t, ts.URL+"/cubes/inventory/groupby?keep=item", new(map[string]float64))

	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		`viewcube_http_cube_requests_total{cube="sales"}`,
		`viewcube_http_cube_requests_total{cube="inventory"}`,
		// Engine instruments ride the per-cube sub-registries.
		`cube="sales"`,
		`cube="inventory"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestUnsupportedOnPartitioned pins the 400 mapping for handle kinds that
// cannot serve an operation.
func TestUnsupportedOnPartitioned(t *testing.T) {
	tbl, err := viewcube.ReadTable(strings.NewReader(salesCSV), "sales")
	if err != nil {
		t.Fatal(err)
	}
	shards, err := viewcube.PartitionTable(tbl, "product", 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := viewcube.NewPartitionedEngine(shards, viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := catalog.NewRegistry()
	if err := reg.RegisterHandle("sharded", catalog.NewPartitionedHandle(p)); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, NewCatalog(reg, quiet))

	var groups map[string]float64
	if resp := getJSON(t, ts.URL+"/cubes/sharded/groupby?keep=product", &groups); resp.StatusCode != 200 || groups["ale"] != 17 {
		t.Fatalf("sharded groupby: %d %v", resp.StatusCode, groups)
	}
	resp, out := postJSON(t, ts.URL+"/cubes/sharded/query", map[string]string{"sql": "SELECT SUM(sales)"})
	if resp.StatusCode != http.StatusBadRequest || out["code"].(float64) != 400 {
		t.Fatalf("sharded sql: %d %v", resp.StatusCode, out)
	}
}
