package server

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
	"viewcube/internal/obs"
)

// CoordinatorServer is the HTTP face of a cluster coordinator — the same
// read API the single-node server exposes, answered by scatter-gather over
// the shard tier:
//
//	GET /groupby?keep=product,region        (?partial=1 tolerates dead shards, ?trace=1 adds the stitched trace)
//	GET /range?dim=lo:hi&dim2=lo:hi         (?partial=1, ?trace=1)
//	GET /total                              (?partial=1, ?trace=1)
//	GET /shards
//	GET /metrics
//	GET /querylog?n=50
//	GET /healthz
//
// Exact queries fail with 502 when any shard is unreachable; with
// partial=1 the response carries a "partial" object naming the shards the
// answer is missing, and the sums remain exact over the shards that did
// answer. With trace=1 the query runs under a distributed trace and the
// response carries the stitched span tree — one leg per shard with the
// shard's own internal spans grafted underneath (traced queries always
// tolerate dead shards, so a trace of a degraded answer shows which legs
// failed).
type CoordinatorServer struct {
	coord *cluster.Coordinator
	log   *slog.Logger
	mux   *http.ServeMux
	qlog  *obs.QueryLog
}

// CoordinatorOption configures the coordinator server.
type CoordinatorOption func(*CoordinatorServer)

// WithCoordinatorLogger sets the request logger; the default is
// slog.Default.
func WithCoordinatorLogger(l *slog.Logger) CoordinatorOption {
	return func(s *CoordinatorServer) { s.log = l }
}

// WithCoordinatorQueryLog serves the given query log through GET /querylog.
// Pass the same log the coordinator was built with (cluster.Options
// .QueryLog) — the coordinator records entries, this server exposes them.
func WithCoordinatorQueryLog(l *obs.QueryLog) CoordinatorOption {
	return func(s *CoordinatorServer) { s.qlog = l }
}

// NewCoordinator wraps a cluster coordinator into an HTTP handler.
func NewCoordinator(coord *cluster.Coordinator, opts ...CoordinatorOption) *CoordinatorServer {
	s := &CoordinatorServer{
		coord: coord,
		log:   slog.Default(),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /groupby", s.handleGroupBy)
	s.mux.HandleFunc("GET /range", s.handleRange)
	s.mux.HandleFunc("GET /total", s.handleTotal)
	s.mux.HandleFunc("GET /shards", s.handleShards)
	s.mux.HandleFunc("POST /invalidate", s.handleInvalidate)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /querylog", s.handleQueryLog)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for _, o := range opts {
		o(s)
	}
	return s
}

// ServeHTTP implements http.Handler with the same structured request
// logging as the single-node server.
func (s *CoordinatorServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"bytes", rec.bytes,
		"duration_ms", float64(time.Since(start).Microseconds())/1000,
	)
}

func (s *CoordinatorServer) writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONWith(s.log, w, status, v)
}

func (s *CoordinatorServer) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error(), Code: status})
}

func wantPartial(r *http.Request) bool { return r.URL.Query().Get("partial") == "1" }

// queryStatus maps a coordinator error to an HTTP status: admission shed
// is 429 (retry later, the tier is saturated), a fully unreachable tier is
// 503, some shards unreachable in exact mode is 502, and shard-side query
// errors (bad dimension, malformed range) are the client's fault.
func queryStatus(err error) int {
	switch {
	case errors.Is(err, cluster.ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, cluster.ErrUnavailable):
		return http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "unreachable"):
		return http.StatusBadGateway
	}
	return http.StatusBadRequest
}

func (s *CoordinatorServer) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	keep := parseKeep(r)
	if wantTrace(r) {
		groups, pr, tr, err := s.coord.TraceGroupBy(r.Context(), keep...)
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{
			"groups": splitGroups(groups), "partial": pr, "trace": tr.Tree(),
		})
		return
	}
	if wantPartial(r) {
		groups, pr, err := s.coord.GroupByPartial(r.Context(), keep...)
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"groups": splitGroups(groups), "partial": pr})
		return
	}
	groups, err := s.coord.GroupBy(keep...)
	if err != nil {
		s.writeErr(w, queryStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, splitGroups(groups))
}

// splitGroups renders composite group keys with the same "/" separator the
// single-node /groupby endpoint uses.
func splitGroups(groups map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(groups))
	for k, v := range groups {
		out[strings.Join(viewcube.SplitGroupKey(k), "/")] = v
	}
	return out
}

func (s *CoordinatorServer) handleRange(w http.ResponseWriter, r *http.Request) {
	ranges := make(map[string]viewcube.ValueRange)
	for dim, vals := range r.URL.Query() {
		if dim == "partial" || dim == "trace" || len(vals) == 0 {
			continue
		}
		lo, hi, ok := strings.Cut(vals[0], ":")
		if !ok {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("range %q must be lo:hi", vals[0]))
			return
		}
		ranges[dim] = viewcube.ValueRange{Lo: lo, Hi: hi}
	}
	if wantTrace(r) {
		sum, pr, tr, err := s.coord.TraceRangeSum(r.Context(), ranges)
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "partial": pr, "trace": tr.Tree()})
		return
	}
	if wantPartial(r) {
		sum, pr, err := s.coord.RangeSumPartial(r.Context(), ranges)
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "partial": pr})
		return
	}
	sum, err := s.coord.RangeSum(ranges)
	if err != nil {
		s.writeErr(w, queryStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"sum": sum})
}

func (s *CoordinatorServer) handleTotal(w http.ResponseWriter, r *http.Request) {
	if wantTrace(r) {
		sum, pr, tr, err := s.coord.TraceTotal(r.Context())
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "partial": pr, "trace": tr.Tree()})
		return
	}
	if wantPartial(r) {
		sum, pr, err := s.coord.TotalPartial(r.Context())
		if err != nil {
			s.writeErr(w, queryStatus(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "partial": pr})
		return
	}
	sum, err := s.coord.Total()
	if err != nil {
		s.writeErr(w, queryStatus(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"sum": sum})
}

func (s *CoordinatorServer) handleShards(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"shards": s.coord.ShardNames()}
	if s.coord.Cached() {
		body["result_cache"] = s.coord.ResultCacheStats()
	}
	s.writeJSON(w, http.StatusOK, body)
}

// handleInvalidate drops every cached merged answer. The coordinator
// cannot observe shard-side updates, so whoever mutates the shard tier
// (a loader, a resharder, an operator) POSTs here afterwards.
func (s *CoordinatorServer) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	epoch := s.coord.InvalidateResults()
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": epoch})
}

func (s *CoordinatorServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.coord.Registry().WriteText(w); err != nil {
		s.log.Error("writing metrics", "error", err)
	}
}

func (s *CoordinatorServer) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	entries := s.qlog.Recent(n)
	if entries == nil {
		entries = []obs.QueryEntry{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.qlog.Total(),
		"entries": entries,
	})
}

func (s *CoordinatorServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": len(s.coord.ShardNames())})
}
