package server

// Result-cache behaviour through the HTTP face: hits answer identically,
// the query log records ResultCacheHit, and a hit's logged cost is zero-op.

import (
	"testing"

	"viewcube/internal/obs"
	"viewcube/internal/rescache"
)

func TestServerResultCacheHitsAndQueryLog(t *testing.T) {
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newCatalogTS(t, WithQueryLog(qlog), WithTraceSampling(1), WithResultCache(rescache.Options{}))

	var cold, warm map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &cold); resp.StatusCode != 200 {
		t.Fatalf("cold status %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &warm); resp.StatusCode != 200 {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	if len(warm) != len(cold) {
		t.Fatalf("cold %v vs warm %v", cold, warm)
	}
	for k, v := range cold {
		if warm[k] != v {
			t.Fatalf("group %q: cold %v warm %v", k, v, warm[k])
		}
	}
	// The view-routed read resolves to the same underlying shape, so it
	// shares the raw cube's cache entry — and re-renders per view.
	var viewed map[string]float64
	if resp := getJSON(t, ts.URL+"/cubes/sales/views/aliased/groupby?keep=item", &viewed); resp.StatusCode != 200 {
		t.Fatalf("view status %d", resp.StatusCode)
	}
	if viewed["ale"] != cold["ale"] {
		t.Fatalf("view read %v vs raw %v", viewed, cold)
	}

	entries := qlog.Recent(0)
	if len(entries) != 3 {
		t.Fatalf("%d querylog entries, want 3", len(entries))
	}
	// Newest first: viewed (hit), warm (hit), cold (miss).
	viewedE, warmE, coldE := entries[0], entries[1], entries[2]
	if coldE.ResultCacheHit == nil || *coldE.ResultCacheHit {
		t.Fatalf("cold entry %+v", coldE)
	}
	if coldE.Ops <= 0 {
		t.Fatalf("cold entry should carry real execution cost: %+v", coldE)
	}
	for _, e := range []obs.QueryEntry{warmE, viewedE} {
		if e.ResultCacheHit == nil || !*e.ResultCacheHit {
			t.Fatalf("hit entry %+v", e)
		}
		// The satellite guarantee: a hit's logged cost is zero-op.
		if e.Ops != 0 || e.Cells != 0 {
			t.Fatalf("hit entry cost ops=%d cells=%d, want zero: %+v", e.Ops, e.Cells, e)
		}
		if e.Trace == nil || e.Trace.Labels["result_cache"] != "hit" {
			t.Fatalf("hit entry trace %+v", e.Trace)
		}
	}
	if coldE.Trace == nil || coldE.Trace.Labels["result_cache"] != "miss" {
		t.Fatalf("cold entry trace %+v", coldE.Trace)
	}

	// Cube label still stamped on cached-hit traces.
	if warmE.Trace.Labels["cube"] != "sales" {
		t.Fatalf("hit trace labels %+v", warmE.Trace.Labels)
	}

	// /stats exposes the per-cube result-cache counters.
	var st struct {
		ResultCache *rescache.Stats `json:"result_cache"`
	}
	if resp := getJSON(t, ts.URL+"/stats", &st); resp.StatusCode != 200 {
		t.Fatalf("stats status %d", resp.StatusCode)
	}
	if st.ResultCache == nil || st.ResultCache.Hits < 2 || st.ResultCache.Entries == 0 {
		t.Fatalf("stats result_cache %+v", st.ResultCache)
	}

	// An update through the API invalidates: the next read is a miss with
	// the new value.
	if resp, _ := postJSON(t, ts.URL+"/update", map[string]any{
		"delta":  3,
		"values": map[string]string{"product": "ale", "region": "east", "day": "d1"},
	}); resp.StatusCode != 200 {
		t.Fatalf("update status %d", resp.StatusCode)
	}
	var fresh map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &fresh); resp.StatusCode != 200 {
		t.Fatalf("fresh status %d", resp.StatusCode)
	}
	if fresh["ale"] != cold["ale"]+3 {
		t.Fatalf("post-update ale %v, want %v", fresh["ale"], cold["ale"]+3)
	}
	e := qlog.Recent(1)[0]
	if e.ResultCacheHit == nil || *e.ResultCacheHit {
		t.Fatalf("post-update entry should be a miss: %+v", e)
	}
}
