// Package server exposes a catalog of viewcube engines over HTTP with a
// small JSON API — the daemon face of the library. Legacy single-cube
// routes address the catalog's default cube; /cubes/{cube}/... addresses
// any cube, and /cubes/{cube}/views/{view}/... queries through a
// declarative view (member aliases rewritten, excluded members rejected
// with 404 before any planning):
//
//	POST /query    {"sql": "SELECT SUM(sales) GROUP BY product"}   (?trace=1 adds a span tree)
//	POST /update   {"delta": 5, "values": {"product": "ale", ...}}
//	POST /ingest   {"rows": [{"delta": 5, "values": {...}}, ...], "flush": true}
//	GET  /groupby?keep=product,region                              (?trace=1 adds a span tree)
//	GET  /range?dim=lo:hi&dim2=lo:hi                               (?trace=1 adds a span tree)
//	GET  /explain?keep=product
//	GET  /stats
//	GET  /info
//	POST /optimize {"views": [{"keep": ["product"], "freq": 0.7}, ...]}
//	GET  /cubes                      (catalog listing: states, epochs, views)
//	GET  /cubes/{cube}/views         (view listing: members, measures)
//	POST /cubes/{cube}/query         (and groupby/range/explain/stats/info/update/optimize)
//	POST /cubes/{cube}/views/{view}/query   (read routes only, through the view)
//	POST /cubes/{cube}/load|unload|rebuild  (lifecycle: drain-gated, zero-downtime rebuild)
//	GET  /metrics          (one Prometheus exposition for all cubes, cube-labelled)
//	GET  /querylog?n=50    (recent query analytics entries, newest first)
//	GET  /healthz
//	GET  /debug/pprof/*    (only with WithPprof)
//
// Every query holds a catalog lease for its whole execution, so an unload
// drains in-flight queries instead of racing them; errors share one JSON
// shape, {"error": ..., "code": ...}, with unknown cubes, views and view
// members mapped to 404 and lifecycle conflicts to 409.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"viewcube"
	"viewcube/internal/catalog"
	"viewcube/internal/obs"
	"viewcube/internal/query"
	"viewcube/internal/rescache"
)

// aggLabel derives the aggregate label recorded in the query log. SQL
// statements are parsed for their strongest aggregate (the same annotation
// the vector planner uses); the other serving paths are native SUM reads.
// Pure-SUM queries report "" — the QueryEntry convention for the scalar
// default.
func aggLabel(kind, shape string) string {
	if kind != "query" {
		return ""
	}
	q, err := query.Parse(shape)
	if err != nil {
		return ""
	}
	best := query.AggSum
	for _, agg := range q.Aggregates {
		if agg.Kind > best {
			best = agg.Kind
		}
	}
	if best == query.AggSum {
		return ""
	}
	return strings.ToLower(best.String())
}

// Server is an http.Handler over a catalog of cubes.
type Server struct {
	reg     *catalog.Registry
	met     *viewcube.Metrics
	log     *slog.Logger
	mux     *http.ServeMux
	qlog    *obs.QueryLog
	sampler *obs.Sampler

	reqLatency  *obs.Histogram
	reqInFlight *obs.Gauge
}

// Option configures the server.
type Option func(*Server)

// WithPprof mounts net/http/pprof under /debug/pprof/. Profiling endpoints
// expose internals (goroutine dumps, heap contents), so they are opt-in.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// WithLogger sets the request logger; the default is slog.Default.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithQueryLog records every /query, /groupby and /range into the given
// query log (cube, view, shape, duration, plan-cache outcome, per-query
// costs), served back through GET /querylog.
func WithQueryLog(l *obs.QueryLog) Option {
	return func(s *Server) { s.qlog = l }
}

// WithResultCache enables per-cube answer caching in the catalog: repeated
// identical reads (group-bys, ranges, SQL) are served from an
// epoch-invalidated, size-bounded cache with singleflight dedup, and
// invalidate exactly when the plan cache does (updates, optimizes,
// reconfigures) or when the cube's generation changes (load, rebuild,
// catalog reload). Zero Options take the rescache defaults.
func WithResultCache(opt rescache.Options) Option {
	return func(s *Server) { s.reg.EnableResultCache(opt) }
}

// WithTraceSampling traces approximately the given fraction of queries
// (deterministically, every Nth) even when the client did not ask for a
// trace; sampled trees land in the query log. Responses are unchanged.
func WithTraceSampling(rate float64) Option {
	return func(s *Server) { s.sampler = obs.NewSampler(rate) }
}

// New wraps a cube and its engine into an HTTP handler serving it as the
// catalog's default cube.
func New(cube *viewcube.Cube, eng *viewcube.Engine, opts ...Option) *Server {
	return NewSafe(cube, eng.Safe(), opts...)
}

// NewSafe builds the handler over an existing SafeEngine, registered as the
// default cube of a one-entry catalog. Use this when another subsystem (the
// cluster shard server) serves the same engine: both must share one
// SafeEngine so reads and writes serialise on one lock. HTTP instruments
// land in the engine's own metrics registry, exactly as before the catalog
// existed.
func NewSafe(cube *viewcube.Cube, eng *viewcube.SafeEngine, opts ...Option) *Server {
	reg := catalog.NewRegistry()
	if err := reg.RegisterHandle("default", catalog.NewSafeHandle(cube, eng)); err != nil {
		panic(err) // unreachable: fresh registry, fixed name
	}
	return newCatalogServer(reg, eng.Metrics(), opts...)
}

// NewCatalog builds the handler over a prepared catalog registry. The
// registry's root metrics (which the per-cube engine registries feed,
// labelled by cube) back /metrics.
func NewCatalog(reg *catalog.Registry, opts ...Option) *Server {
	return newCatalogServer(reg, reg.Metrics(), opts...)
}

func newCatalogServer(reg *catalog.Registry, met *viewcube.Metrics, opts ...Option) *Server {
	s := &Server{
		reg: reg,
		met: met,
		log: slog.Default(),
		mux: http.NewServeMux(),
	}
	mreg := met.Registry()
	s.reqLatency = mreg.Histogram("viewcube_http_request_seconds",
		"HTTP request latency in seconds.", nil)
	s.reqInFlight = mreg.Gauge("viewcube_http_in_flight_requests",
		"HTTP requests currently being served.")

	// Legacy single-cube routes resolve the catalog's default cube; their
	// success responses are byte-identical to the pre-catalog server.
	s.mux.HandleFunc("POST /query", s.routed(s.handleQuery))
	s.mux.HandleFunc("POST /update", s.routed(s.handleUpdate))
	s.mux.HandleFunc("POST /ingest", s.routed(s.handleIngest))
	s.mux.HandleFunc("POST /optimize", s.routed(s.handleOptimize))
	s.mux.HandleFunc("GET /groupby", s.routed(s.handleGroupBy))
	s.mux.HandleFunc("GET /range", s.routed(s.handleRange))
	s.mux.HandleFunc("GET /explain", s.routed(s.handleExplain))
	s.mux.HandleFunc("GET /stats", s.routed(s.handleStats))
	s.mux.HandleFunc("GET /info", s.routed(s.handleInfo))

	// Catalog surface: explicit cube routing plus view-scoped reads.
	s.mux.HandleFunc("GET /cubes", s.handleCubes)
	s.mux.HandleFunc("GET /cubes/{cube}/views", s.handleViewList)
	s.mux.HandleFunc("POST /cubes/{cube}/query", s.routed(s.handleQuery))
	s.mux.HandleFunc("POST /cubes/{cube}/update", s.routed(s.handleUpdate))
	s.mux.HandleFunc("POST /cubes/{cube}/ingest", s.routed(s.handleIngest))
	s.mux.HandleFunc("POST /cubes/{cube}/optimize", s.routed(s.handleOptimize))
	s.mux.HandleFunc("GET /cubes/{cube}/groupby", s.routed(s.handleGroupBy))
	s.mux.HandleFunc("GET /cubes/{cube}/range", s.routed(s.handleRange))
	s.mux.HandleFunc("GET /cubes/{cube}/explain", s.routed(s.handleExplain))
	s.mux.HandleFunc("GET /cubes/{cube}/stats", s.routed(s.handleStats))
	s.mux.HandleFunc("GET /cubes/{cube}/info", s.routed(s.handleInfo))
	s.mux.HandleFunc("POST /cubes/{cube}/views/{view}/query", s.routed(s.handleQuery))
	s.mux.HandleFunc("GET /cubes/{cube}/views/{view}/groupby", s.routed(s.handleGroupBy))
	s.mux.HandleFunc("GET /cubes/{cube}/views/{view}/range", s.routed(s.handleRange))
	s.mux.HandleFunc("GET /cubes/{cube}/views/{view}/explain", s.routed(s.handleExplain))
	s.mux.HandleFunc("GET /cubes/{cube}/views/{view}/info", s.routed(s.handleInfo))

	// Lifecycle: drain-gated unload, reload, zero-downtime rebuild.
	s.mux.HandleFunc("POST /cubes/{cube}/load", s.lifecycle(reg.Load))
	s.mux.HandleFunc("POST /cubes/{cube}/unload", s.lifecycle(reg.Unload))
	s.mux.HandleFunc("POST /cubes/{cube}/rebuild", s.lifecycle(reg.Rebuild))

	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /querylog", s.handleQueryLog)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for _, o := range opts {
		o(s)
	}
	return s
}

// statusRecorder captures the response status and size for logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler: it dispatches through the mux with
// structured request logging and HTTP metrics around every call.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reqInFlight.Add(1)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	dur := time.Since(start)
	s.reqInFlight.Add(-1)
	s.reqLatency.Observe(dur.Seconds())
	s.met.Registry().Counter("viewcube_http_requests_total",
		"HTTP requests served, by status code.", "code", fmt.Sprintf("%d", rec.status)).Inc()
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"bytes", rec.bytes,
		"duration_ms", float64(dur.Microseconds())/1000,
	)
}

// routed acquires the catalog lease a cube-scoped handler runs under: the
// {cube} and {view} path values (both empty on legacy routes, resolving the
// default cube raw) pin a serving handle for the whole request, so a
// concurrent unload drains instead of racing. Routed requests are counted
// per cube, giving /metrics its cube label dimension.
func (s *Server) routed(h func(http.ResponseWriter, *http.Request, *catalog.Lease)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		lease, err := s.reg.Acquire(r.PathValue("cube"), r.PathValue("view"))
		if err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
		defer lease.Release()
		s.met.Registry().Counter("viewcube_http_cube_requests_total",
			"HTTP requests routed, by cube.", "cube", lease.Cube).Inc()
		h(w, r, lease)
	}
}

// lifecycle wraps a registry lifecycle operation as a handler.
func (s *Server) lifecycle(op func(string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("cube")
		if err := op(name); err != nil {
			s.writeErr(w, statusFor(err), err)
			return
		}
		s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "cube": name})
	}
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONWith(s.log, w, status, v)
}

func writeJSONWith(log *slog.Logger, w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; all we can do is log.
		log.Error("encoding response", "error", err)
	}
}

// errorBody is the one JSON shape of every error response, server and
// coordinator alike; Code echoes the HTTP status code so clients reading
// buffered bodies can disambiguate.
type errorBody struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error(), Code: status})
}

// statusFor maps catalog errors onto the HTTP taxonomy: names that do not
// resolve (cubes, views, view members) and unloaded cubes are 404, a
// lifecycle transition in progress is 409, and everything else — malformed
// requests included — is 400.
func statusFor(err error) int {
	switch {
	case errors.Is(err, catalog.ErrUnknownCube),
		errors.Is(err, catalog.ErrUnknownView),
		errors.Is(err, catalog.ErrUnknownMember),
		errors.Is(err, catalog.ErrCubeUnloaded):
		return http.StatusNotFound
	case errors.Is(err, catalog.ErrCubeBusy):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// labelTrace stamps the serving cube (and view, if any) onto a trace's root
// span, so sampled trees in the query log and explicit ?trace=1 responses
// identify their catalog entry.
func labelTrace(tr *viewcube.QueryTrace, lease *catalog.Lease) {
	if tr == nil {
		return
	}
	tr.SetLabel("cube", lease.Cube)
	if lease.View != nil {
		tr.SetLabel("view", lease.View.Name())
	}
	if snap := lease.Handle.PlanCacheStats().Snapshot; snap != 0 {
		tr.SetLabel("snapshot_epoch", strconv.FormatUint(snap, 10))
	}
}

// logQuery records one finished query into the query log (no-op without
// one): its cube and view, shape, duration, plan-cache epoch and — when the
// query ran traced — the costs mined from the span tree, plus the full tree
// for sampled queries. Shape is the client-facing form: view aliases are
// logged as the client wrote them.
func (s *Server) logQuery(lease *catalog.Lease, kind, shape string, start time.Time, qt *viewcube.QueryTrace, sampled bool, rcHit *bool, qerr error) {
	if s.qlog == nil {
		return
	}
	pcs := lease.Handle.PlanCacheStats()
	e := obs.QueryEntry{
		Kind:           kind,
		Cube:           lease.Cube,
		View:           lease.View.Name(),
		Shape:          shape,
		DurationUS:     time.Since(start).Microseconds(),
		Epoch:          pcs.Epoch,
		SnapshotEpoch:  pcs.Snapshot,
		Sampled:        sampled,
		Agg:            aggLabel(kind, shape),
		ResultCacheHit: rcHit,
	}
	if qt != nil {
		tree := qt.Tree()
		e.TraceID = qt.TraceID()
		e.Ops = tree.SumAttr("ops")
		e.Cells = tree.SumAttr("cells")
		if w := tree.MaxAttr("measure_width"); w > 1 {
			e.MeasureWidth = int(w)
		}
		if plan := tree.Find("plan "); plan != nil {
			hit := plan.Attrs["cache_hit"] == 1
			e.PlanCacheHit = &hit
		}
		if sampled {
			e.Trace = tree
		}
	}
	if qerr != nil {
		e.Error = qerr.Error()
	}
	s.qlog.Record(e)
}

// sample reports whether this query should run under a sampled trace.
func (s *Server) sample(explicit bool) bool {
	return !explicit && s.sampler.Sample()
}

func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	entries := s.qlog.Recent(n)
	if entries == nil {
		entries = []obs.QueryEntry{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.qlog.Total(),
		"entries": entries,
	})
}

func (s *Server) handleCubes(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"default": s.reg.Default(),
		"cubes":   s.reg.Cubes(),
	})
}

func (s *Server) handleViewList(w http.ResponseWriter, r *http.Request) {
	views, err := s.reg.Views(r.PathValue("cube"))
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	if views == nil {
		views = []catalog.ViewStatus{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"views": views})
}

type queryRequest struct {
	SQL string `json:"sql"`
}

type queryResponse struct {
	Columns []string             `json:"columns"`
	Rows    []queryRow           `json:"rows"`
	Trace   *viewcube.QueryTrace `json:"trace,omitempty"`
}

type queryRow struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	// Resolve view aliases and reject excluded members before planning; the
	// engine only ever sees underlying dimension names.
	sql, err := lease.View.RewriteSQL(req.SQL)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	res, tr, rcHit, err := lease.ServeQuery(explicit || sampled, sql)
	labelTrace(tr, lease)
	s.logQuery(lease, "query", req.SQL, start, tr, sampled, rcHit, err)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	resp := queryResponse{Columns: lease.View.RewriteColumns(res.Columns)}
	if explicit {
		// A sampled trace feeds the query log only; the response shape must
		// not depend on the sampling decision.
		resp.Trace = tr
	}
	for _, row := range res.Rows {
		key := row.Key
		if key == nil {
			key = []string{}
		}
		resp.Rows = append(resp.Rows, queryRow{Key: key, Values: row.Values})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type updateRequest struct {
	Delta  float64           `json:"delta"`
	Values map[string]string `json:"values"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := lease.Handle.UpdateValue(req.Delta, req.Values); err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ingestRequest carries a batch of deltas for the streaming write path.
// With flush set, the response is delayed until every row in the batch is
// queryable; without it, rows are only acknowledged (durable when the
// engine runs a WAL) and become visible at the next background merge.
type ingestRequest struct {
	Rows  []updateRequest `json:"rows"`
	Flush bool            `json:"flush,omitempty"`
}

type ingestResponse struct {
	Status string `json:"status"`
	Rows   int    `json:"rows"`
	// Streamed reports whether the batch went through the ingest buffer
	// (false: the handle has no streaming path and rows applied through the
	// synchronous locked write, which implies flushed semantics).
	Streamed bool                  `json:"streamed"`
	Ingest   *viewcube.IngestStats `json:"ingest,omitempty"`
}

// handleIngest is the batch write endpoint. A handle with the streaming
// path enabled acknowledges rows through its WAL-backed buffer; any other
// handle falls back to per-row synchronous updates, so the endpoint is
// usable against every cube with only the durability/latency contract
// changing. Rows apply in order until the first failure; the error reports
// how many were accepted.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	var req ingestRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Rows) == 0 {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("ingest batch has no rows"))
		return
	}
	ing, streamed := lease.Handle.(catalog.Ingester)
	streamed = streamed && ing.IngestEnabled()
	for i, row := range req.Rows {
		var err error
		if streamed {
			err = ing.IngestValue(row.Delta, row.Values)
		} else {
			err = lease.Handle.UpdateValue(row.Delta, row.Values)
		}
		if err != nil {
			s.writeErr(w, statusFor(err), fmt.Errorf("row %d (after %d accepted): %w", i, i, err))
			return
		}
	}
	if streamed && req.Flush {
		if err := ing.FlushIngest(); err != nil {
			s.writeErr(w, http.StatusInternalServerError, fmt.Errorf("flushing ingest: %w", err))
			return
		}
	}
	resp := ingestResponse{Status: "ok", Rows: len(req.Rows), Streamed: streamed}
	if streamed {
		st := ing.IngestStats()
		resp.Ingest = &st
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type optimizeRequest struct {
	Views []catalog.HotView `json:"views"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := lease.Handle.Optimize(req.Views); err != nil {
		// A hot-view list the schema rejects is the client's fault; an
		// engine failure during re-selection is ours.
		status := http.StatusInternalServerError
		if errors.Is(err, catalog.ErrInvalidWorkload) || errors.Is(err, catalog.ErrUnsupported) {
			status = http.StatusBadRequest
		}
		s.writeErr(w, status, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func parseKeep(r *http.Request) []string {
	keepParam := r.URL.Query().Get("keep")
	if keepParam == "" {
		return nil
	}
	return strings.Split(keepParam, ",")
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	keep := parseKeep(r)
	resolved, err := lease.View.ResolveKeep(keep)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	groups, tr, rcHit, err := lease.ServeGroupBy(explicit || sampled, resolved...)
	labelTrace(tr, lease)
	s.logQuery(lease, "groupby", strings.Join(keep, ","), start, tr, sampled, rcHit, err)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	out := make(map[string]float64, len(groups))
	for k, val := range groups {
		out[strings.Join(viewcube.SplitGroupKey(k), "/")] = val
	}
	if explicit {
		s.writeJSON(w, http.StatusOK, map[string]any{"groups": out, "trace": tr})
		return
	}
	s.writeJSON(w, http.StatusOK, out)
}

// rangeShape renders a range query's shape canonically (dimensions sorted)
// for the query log.
func rangeShape(ranges map[string]viewcube.ValueRange) string {
	dims := make([]string, 0, len(ranges))
	for dim := range ranges {
		dims = append(dims, dim)
	}
	sort.Strings(dims)
	parts := make([]string, len(dims))
	for i, dim := range dims {
		parts[i] = fmt.Sprintf("%s=[%s,%s]", dim, ranges[dim].Lo, ranges[dim].Hi)
	}
	return strings.Join(parts, " ")
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	ranges := make(map[string]viewcube.ValueRange)
	for dim, vals := range r.URL.Query() {
		if dim == "trace" || len(vals) == 0 {
			continue
		}
		lo, hi, ok := strings.Cut(vals[0], ":")
		if !ok {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("range %q must be lo:hi", vals[0]))
			return
		}
		ranges[dim] = viewcube.ValueRange{Lo: lo, Hi: hi}
	}
	resolved, err := lease.View.ResolveRanges(ranges)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	sum, tr, rcHit, err := lease.ServeRangeSum(explicit || sampled, resolved)
	labelTrace(tr, lease)
	s.logQuery(lease, "range", rangeShape(ranges), start, tr, sampled, rcHit, err)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	if explicit {
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "trace": tr})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"sum": sum})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	keep, err := lease.View.ResolveKeep(parseKeep(r))
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	// The handle proxies Explain through the engine's shared planner, so
	// the rendered text is exactly the plan IR a query for the same view
	// executes — no query is run, and the shared plan cache is warmed.
	text, err := lease.Handle.ExplainGroupBy(keep...)
	if err != nil {
		s.writeErr(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"text":       text,
		"plan_cache": lease.Handle.PlanCacheStats(),
	})
}

// fullStats embeds the adaptive engine counters (flattened into the
// top-level JSON object, preserving the historical /stats shape) and adds
// the store cache and materialised-set figures.
type fullStats struct {
	viewcube.Stats
	Store                viewcube.StoreStats `json:"store"`
	MaterializedElements int                 `json:"materialized_elements"`
	StorageCellsNow      int                 `json:"storage_cells"`
	ResultCache          *rescache.Stats     `json:"result_cache,omitempty"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	st := lease.Handle.Stats()
	out := fullStats{
		Stats:                st.Engine,
		Store:                st.Store,
		MaterializedElements: st.MaterializedElements,
		StorageCellsNow:      st.StorageCells,
	}
	if lease.Cached() {
		rc := lease.ResultCacheStats()
		out.ResultCache = &rc
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request, lease *catalog.Lease) {
	info := lease.Handle.Info()
	dims := info.Dimensions
	if lease.View != nil {
		// Through a view, /info reports the members the view exposes under
		// their exposed names; shape and volume remain the cube's.
		members := lease.View.Members()
		dims = make([]string, len(members))
		for i, m := range members {
			dims[i] = m.Name
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"dimensions": dims,
		"shape":      info.Shape,
		"volume":     info.Volume,
		"measure":    info.Measure,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.WritePrometheus(w); err != nil {
		s.log.Error("writing metrics", "error", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
