// Package server exposes a viewcube engine over HTTP with a small JSON API
// — the daemon face of the library:
//
//	POST /query    {"sql": "SELECT SUM(sales) GROUP BY product"}
//	POST /update   {"delta": 5, "values": {"product": "ale", ...}}
//	GET  /groupby?keep=product,region
//	GET  /range?dim=lo:hi&dim2=lo:hi
//	GET  /explain?keep=product
//	GET  /stats
//	POST /optimize {"views": [{"keep": ["product"], "freq": 0.7}, ...]}
//
// The handler serialises access through a SafeEngine, so one server can
// serve concurrent clients.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"viewcube"
)

// Server is an http.Handler over one cube engine.
type Server struct {
	cube *viewcube.Cube
	eng  *viewcube.SafeEngine
	// raw keeps the unwrapped engine for operations SafeEngine does not
	// proxy; every use goes through safe wrappers added here.
	mux *http.ServeMux
}

// New wraps a cube and its engine into an HTTP handler.
func New(cube *viewcube.Cube, eng *viewcube.Engine) *Server {
	s := &Server{cube: cube, eng: eng.Safe()}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("POST /optimize", s.handleOptimize)
	mux.HandleFunc("GET /groupby", s.handleGroupBy)
	mux.HandleFunc("GET /range", s.handleRange)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /info", s.handleInfo)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

type queryRequest struct {
	SQL string `json:"sql"`
}

type queryResponse struct {
	Columns []string   `json:"columns"`
	Rows    []queryRow `json:"rows"`
}

type queryRow struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	res, err := s.eng.Query(req.SQL)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{Columns: res.Columns}
	for _, row := range res.Rows {
		key := row.Key
		if key == nil {
			key = []string{}
		}
		resp.Rows = append(resp.Rows, queryRow{Key: key, Values: row.Values})
	}
	writeJSON(w, http.StatusOK, resp)
}

type updateRequest struct {
	Delta  float64           `json:"delta"`
	Values map[string]string `json:"values"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := s.eng.UpdateValue(req.Delta, req.Values); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type optimizeRequest struct {
	Views []struct {
		Keep []string `json:"keep"`
		Freq float64  `json:"freq"`
	} `json:"views"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	wl := s.cube.NewWorkload()
	for _, v := range req.Views {
		if err := wl.AddViewKeeping(v.Freq, v.Keep...); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.eng.Optimize(wl); err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	keepParam := r.URL.Query().Get("keep")
	var keep []string
	if keepParam != "" {
		keep = strings.Split(keepParam, ",")
	}
	v, err := s.eng.GroupBy(keep...)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	groups, err := v.Groups()
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make(map[string]float64, len(groups))
	for k, val := range groups {
		out[strings.Join(viewcube.SplitGroupKey(k), "/")] = val
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	ranges := make(map[string]viewcube.ValueRange)
	for dim, vals := range r.URL.Query() {
		if len(vals) == 0 {
			continue
		}
		lo, hi, ok := strings.Cut(vals[0], ":")
		if !ok {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("range %q must be lo:hi", vals[0]))
			return
		}
		ranges[dim] = viewcube.ValueRange{Lo: lo, Hi: hi}
	}
	sum, err := s.eng.RangeSum(ranges)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]float64{"sum": sum})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.eng.Stats())
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"dimensions": s.cube.Dimensions(),
		"shape":      s.cube.Shape(),
		"volume":     s.cube.Volume(),
		"measure":    s.cube.Measure(),
	})
}
