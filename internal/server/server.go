// Package server exposes a viewcube engine over HTTP with a small JSON API
// — the daemon face of the library:
//
//	POST /query    {"sql": "SELECT SUM(sales) GROUP BY product"}   (?trace=1 adds a span tree)
//	POST /update   {"delta": 5, "values": {"product": "ale", ...}}
//	GET  /groupby?keep=product,region                              (?trace=1 adds a span tree)
//	GET  /range?dim=lo:hi&dim2=lo:hi                               (?trace=1 adds a span tree)
//	GET  /explain?keep=product
//	GET  /stats
//	GET  /metrics          (Prometheus text exposition)
//	GET  /querylog?n=50    (recent query analytics entries, newest first)
//	GET  /healthz
//	GET  /debug/pprof/*    (only with WithPprof)
//	POST /optimize {"views": [{"keep": ["product"], "freq": 0.7}, ...]}
//
// The handler shares the engine through a SafeEngine, so one server serves
// concurrent clients with overlapping reads: queries run under the read
// lock, while updates, optimisation and automatic reselection serialise on
// the write lock. Every request is logged through slog with its method,
// path, status and latency, and counted in the engine's metrics registry.
package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"viewcube"
	"viewcube/internal/obs"
	"viewcube/internal/query"
)

// aggLabel derives the aggregate label recorded in the query log. SQL
// statements are parsed for their strongest aggregate (the same annotation
// the vector planner uses); the other serving paths are native SUM reads.
// Pure-SUM queries report "" — the QueryEntry convention for the scalar
// default.
func aggLabel(kind, shape string) string {
	if kind != "query" {
		return ""
	}
	q, err := query.Parse(shape)
	if err != nil {
		return ""
	}
	best := query.AggSum
	for _, agg := range q.Aggregates {
		if agg.Kind > best {
			best = agg.Kind
		}
	}
	if best == query.AggSum {
		return ""
	}
	return strings.ToLower(best.String())
}

// Server is an http.Handler over one cube engine.
type Server struct {
	cube    *viewcube.Cube
	eng     *viewcube.SafeEngine
	met     *viewcube.Metrics
	log     *slog.Logger
	mux     *http.ServeMux
	qlog    *obs.QueryLog
	sampler *obs.Sampler

	reqLatency  *obs.Histogram
	reqInFlight *obs.Gauge
}

// Option configures the server.
type Option func(*Server)

// WithPprof mounts net/http/pprof under /debug/pprof/. Profiling endpoints
// expose internals (goroutine dumps, heap contents), so they are opt-in.
func WithPprof() Option {
	return func(s *Server) {
		s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
}

// WithLogger sets the request logger; the default is slog.Default.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) { s.log = l }
}

// WithQueryLog records every /query, /groupby and /range into the given
// query log (shape, duration, plan-cache outcome, per-query costs), served
// back through GET /querylog.
func WithQueryLog(l *obs.QueryLog) Option {
	return func(s *Server) { s.qlog = l }
}

// WithTraceSampling traces approximately the given fraction of queries
// (deterministically, every Nth) even when the client did not ask for a
// trace; sampled trees land in the query log. Responses are unchanged.
func WithTraceSampling(rate float64) Option {
	return func(s *Server) { s.sampler = obs.NewSampler(rate) }
}

// New wraps a cube and its engine into an HTTP handler.
func New(cube *viewcube.Cube, eng *viewcube.Engine, opts ...Option) *Server {
	return NewSafe(cube, eng.Safe(), opts...)
}

// NewSafe builds the handler over an existing SafeEngine. Use this when
// another subsystem (the cluster shard server) serves the same engine: both
// must share one SafeEngine so reads and writes serialise on one lock.
func NewSafe(cube *viewcube.Cube, eng *viewcube.SafeEngine, opts ...Option) *Server {
	met := eng.Metrics()
	s := &Server{
		cube: cube,
		eng:  eng,
		met:  met,
		log:  slog.Default(),
		mux:  http.NewServeMux(),
	}
	reg := met.Registry()
	s.reqLatency = reg.Histogram("viewcube_http_request_seconds",
		"HTTP request latency in seconds.", nil)
	s.reqInFlight = reg.Gauge("viewcube_http_in_flight_requests",
		"HTTP requests currently being served.")
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /groupby", s.handleGroupBy)
	s.mux.HandleFunc("GET /range", s.handleRange)
	s.mux.HandleFunc("GET /explain", s.handleExplain)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /info", s.handleInfo)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /querylog", s.handleQueryLog)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	for _, o := range opts {
		o(s)
	}
	return s
}

// statusRecorder captures the response status and size for logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler: it dispatches through the mux with
// structured request logging and HTTP metrics around every call.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.reqInFlight.Add(1)
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	dur := time.Since(start)
	s.reqInFlight.Add(-1)
	s.reqLatency.Observe(dur.Seconds())
	s.met.Registry().Counter("viewcube_http_requests_total",
		"HTTP requests served, by status code.", "code", fmt.Sprintf("%d", rec.status)).Inc()
	s.log.Info("request",
		"method", r.Method,
		"path", r.URL.Path,
		"status", rec.status,
		"bytes", rec.bytes,
		"duration_ms", float64(dur.Microseconds())/1000,
	)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	writeJSONWith(s.log, w, status, v)
}

func writeJSONWith(log *slog.Logger, w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// The status line is already on the wire; all we can do is log.
		log.Error("encoding response", "error", err)
	}
}

// errorBody is the JSON shape of every error response; Status echoes the
// HTTP status code so clients reading buffered bodies can disambiguate.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

func (s *Server) writeErr(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, errorBody{Error: err.Error(), Status: status})
}

func wantTrace(r *http.Request) bool { return r.URL.Query().Get("trace") == "1" }

// logQuery records one finished query into the query log (no-op without
// one): its shape, duration, plan-cache epoch and — when the query ran
// traced — the costs mined from the span tree, plus the full tree for
// sampled queries.
func (s *Server) logQuery(kind, shape string, start time.Time, qt *viewcube.QueryTrace, sampled bool, qerr error) {
	if s.qlog == nil {
		return
	}
	e := obs.QueryEntry{
		Kind:       kind,
		Shape:      shape,
		DurationUS: time.Since(start).Microseconds(),
		Epoch:      s.eng.PlanCacheStats().Epoch,
		Sampled:    sampled,
		Agg:        aggLabel(kind, shape),
	}
	if qt != nil {
		tree := qt.Tree()
		e.TraceID = qt.TraceID()
		e.Ops = tree.SumAttr("ops")
		e.Cells = tree.SumAttr("cells")
		if w := tree.MaxAttr("measure_width"); w > 1 {
			e.MeasureWidth = int(w)
		}
		if plan := tree.Find("plan "); plan != nil {
			hit := plan.Attrs["cache_hit"] == 1
			e.PlanCacheHit = &hit
		}
		if sampled {
			e.Trace = tree
		}
	}
	if qerr != nil {
		e.Error = qerr.Error()
	}
	s.qlog.Record(e)
}

// sample reports whether this query should run under a sampled trace.
func (s *Server) sample(explicit bool) bool {
	return !explicit && s.sampler.Sample()
}

func (s *Server) handleQueryLog(w http.ResponseWriter, r *http.Request) {
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	entries := s.qlog.Recent(n)
	if entries == nil {
		entries = []obs.QueryEntry{}
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"total":   s.qlog.Total(),
		"entries": entries,
	})
}

type queryRequest struct {
	SQL string `json:"sql"`
}

type queryResponse struct {
	Columns []string             `json:"columns"`
	Rows    []queryRow           `json:"rows"`
	Trace   *viewcube.QueryTrace `json:"trace,omitempty"`
}

type queryRow struct {
	Key    []string  `json:"key"`
	Values []float64 `json:"values"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	var (
		res *viewcube.QueryResult
		tr  *viewcube.QueryTrace
		err error
	)
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	if explicit || sampled {
		res, tr, err = s.eng.TraceQuery(req.SQL)
	} else {
		res, err = s.eng.Query(req.SQL)
	}
	s.logQuery("query", req.SQL, start, tr, sampled, err)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp := queryResponse{Columns: res.Columns}
	if explicit {
		// A sampled trace feeds the query log only; the response shape must
		// not depend on the sampling decision.
		resp.Trace = tr
	}
	for _, row := range res.Rows {
		key := row.Key
		if key == nil {
			key = []string{}
		}
		resp.Rows = append(resp.Rows, queryRow{Key: key, Values: row.Values})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

type updateRequest struct {
	Delta  float64           `json:"delta"`
	Values map[string]string `json:"values"`
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if err := s.eng.UpdateValue(req.Delta, req.Values); err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type optimizeRequest struct {
	Views []struct {
		Keep []string `json:"keep"`
		Freq float64  `json:"freq"`
	} `json:"views"`
}

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req optimizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	wl := s.cube.NewWorkload()
	for _, v := range req.Views {
		if err := wl.AddViewKeeping(v.Freq, v.Keep...); err != nil {
			s.writeErr(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := s.eng.Optimize(wl); err != nil {
		s.writeErr(w, http.StatusInternalServerError, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func parseKeep(r *http.Request) []string {
	keepParam := r.URL.Query().Get("keep")
	if keepParam == "" {
		return nil
	}
	return strings.Split(keepParam, ",")
}

func (s *Server) handleGroupBy(w http.ResponseWriter, r *http.Request) {
	keep := parseKeep(r)
	var (
		v   *viewcube.View
		tr  *viewcube.QueryTrace
		err error
	)
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	if explicit || sampled {
		v, tr, err = s.eng.TraceGroupBy(keep...)
	} else {
		v, err = s.eng.GroupBy(keep...)
	}
	s.logQuery("groupby", strings.Join(keep, ","), start, tr, sampled, err)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	groups, err := v.Groups()
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	out := make(map[string]float64, len(groups))
	for k, val := range groups {
		out[strings.Join(viewcube.SplitGroupKey(k), "/")] = val
	}
	if explicit {
		s.writeJSON(w, http.StatusOK, map[string]any{"groups": out, "trace": tr})
		return
	}
	s.writeJSON(w, http.StatusOK, out)
}

// rangeShape renders a range query's shape canonically (dimensions sorted)
// for the query log.
func rangeShape(ranges map[string]viewcube.ValueRange) string {
	dims := make([]string, 0, len(ranges))
	for dim := range ranges {
		dims = append(dims, dim)
	}
	sort.Strings(dims)
	parts := make([]string, len(dims))
	for i, dim := range dims {
		parts[i] = fmt.Sprintf("%s=[%s,%s]", dim, ranges[dim].Lo, ranges[dim].Hi)
	}
	return strings.Join(parts, " ")
}

func (s *Server) handleRange(w http.ResponseWriter, r *http.Request) {
	ranges := make(map[string]viewcube.ValueRange)
	for dim, vals := range r.URL.Query() {
		if dim == "trace" || len(vals) == 0 {
			continue
		}
		lo, hi, ok := strings.Cut(vals[0], ":")
		if !ok {
			s.writeErr(w, http.StatusBadRequest, fmt.Errorf("range %q must be lo:hi", vals[0]))
			return
		}
		ranges[dim] = viewcube.ValueRange{Lo: lo, Hi: hi}
	}
	var (
		sum float64
		tr  *viewcube.QueryTrace
		err error
	)
	explicit := wantTrace(r)
	sampled := s.sample(explicit)
	start := time.Now()
	if explicit || sampled {
		sum, tr, err = s.eng.TraceRangeSum(ranges)
	} else {
		sum, err = s.eng.RangeSum(ranges)
	}
	s.logQuery("range", rangeShape(ranges), start, tr, sampled, err)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	if explicit {
		s.writeJSON(w, http.StatusOK, map[string]any{"sum": sum, "trace": tr})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]float64{"sum": sum})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	// SafeEngine proxies Explain through the engine's shared planner, so
	// the rendered text is exactly the plan IR a query for the same view
	// executes — no query is run, and the shared plan cache is warmed.
	text, err := s.eng.ExplainGroupBy(parseKeep(r)...)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"text":       text,
		"plan_cache": s.eng.PlanCacheStats(),
	})
}

// fullStats embeds the adaptive engine counters (flattened into the
// top-level JSON object, preserving the historical /stats shape) and adds
// the store cache and materialised-set figures.
type fullStats struct {
	viewcube.Stats
	Store                viewcube.StoreStats `json:"store"`
	MaterializedElements int                 `json:"materialized_elements"`
	StorageCellsNow      int                 `json:"storage_cells"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, fullStats{
		Stats:                s.eng.Stats(),
		Store:                s.eng.StoreStats(),
		MaterializedElements: s.eng.MaterializedElements(),
		StorageCellsNow:      s.eng.StorageCells(),
	})
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{
		"dimensions": s.cube.Dimensions(),
		"shape":      s.cube.Shape(),
		"volume":     s.cube.Volume(),
		"measure":    s.cube.Measure(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.met.WritePrometheus(w); err != nil {
		s.log.Error("writing metrics", "error", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
