package server

// Query-log and sampled-tracing tests for both HTTP faces: the single-node
// server's /querylog analytics feed and the coordinator's stitched-trace
// endpoint backed by the cluster query log.

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"viewcube/internal/cluster"
	"viewcube/internal/obs"
)

func TestServerQueryLogAndSampling(t *testing.T) {
	cube, eng := newCubeEngine(t)
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, New(cube, eng, quiet, WithQueryLog(qlog), WithTraceSampling(1)))

	// Two identical group-bys: the second must be a plan-cache hit.
	var groups map[string]float64
	for i := 0; i < 2; i++ {
		if resp := getJSON(t, ts.URL+"/groupby?keep=product", &groups); resp.StatusCode != 200 {
			t.Fatalf("groupby status %d", resp.StatusCode)
		}
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	var rangeResp map[string]float64
	if resp := getJSON(t, ts.URL+"/range?day=d1:d2", &rangeResp); resp.StatusCode != 200 {
		t.Fatalf("range status %d", resp.StatusCode)
	}
	// A failing query must be logged too.
	var errOut map[string]any
	if resp := getJSON(t, ts.URL+"/groupby?keep=nope", &errOut); resp.StatusCode != 400 {
		t.Fatalf("bad groupby status %d", resp.StatusCode)
	}

	var log struct {
		Total   uint64           `json:"total"`
		Entries []obs.QueryEntry `json:"entries"`
	}
	if resp := getJSON(t, ts.URL+"/querylog", &log); resp.StatusCode != 200 {
		t.Fatalf("querylog status %d", resp.StatusCode)
	}
	if log.Total != 4 || len(log.Entries) != 4 {
		t.Fatalf("querylog total=%d entries=%d, want 4/4", log.Total, len(log.Entries))
	}
	// Newest first: bad groupby, range, warm groupby, cold groupby.
	bad, rng, warm, cold := log.Entries[0], log.Entries[1], log.Entries[2], log.Entries[3]
	if bad.Error == "" || bad.Shape != "nope" {
		t.Fatalf("error entry %+v", bad)
	}
	if rng.Kind != "range" || rng.Shape != "day=[d1,d2]" {
		t.Fatalf("range entry %+v", rng)
	}
	for _, e := range []obs.QueryEntry{cold, warm} {
		if e.Kind != "groupby" || e.Shape != "product" {
			t.Fatalf("groupby entry %+v", e)
		}
		if !e.Sampled || e.Trace == nil || e.TraceID == "" {
			t.Fatalf("entry not sampled with rate 1: %+v", e)
		}
		if e.Ops <= 0 || e.PlanCacheHit == nil {
			t.Fatalf("entry missing cost profile: %+v", e)
		}
	}
	if *cold.PlanCacheHit {
		t.Fatalf("first groupby was a plan-cache hit: %+v", cold)
	}
	if !*warm.PlanCacheHit {
		t.Fatalf("repeated groupby missed the plan cache: %+v", warm)
	}

	// ?n= bounds the response.
	if resp := getJSON(t, ts.URL+"/querylog?n=2", &log); resp.StatusCode != 200 {
		t.Fatalf("querylog?n=2 status %d", resp.StatusCode)
	}
	if log.Total != 4 || len(log.Entries) != 2 {
		t.Fatalf("querylog?n=2 total=%d entries=%d, want 4/2", log.Total, len(log.Entries))
	}
}

// TestServerSamplingDoesNotChangeResponses: a sampled query answers with
// the plain (traceless) response shape.
func TestServerSamplingDoesNotChangeResponses(t *testing.T) {
	cube, eng := newCubeEngine(t)
	ts := newTestServer(t, New(cube, eng, quiet, WithTraceSampling(1)))
	var out map[string]float64
	if resp := getJSON(t, ts.URL+"/groupby?keep=product", &out); resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	// A trace-bearing response would nest the groups under "groups" and
	// fail to decode as map[string]float64.
	if out["ale"] != 17 {
		t.Fatalf("groups %v", out)
	}
}

func TestCoordinatorServerTraceAndQueryLog(t *testing.T) {
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(coordShards(t), cluster.Options{
		Timeout:  time.Second,
		QueryLog: qlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	quietLog := WithCoordinatorLogger(slog.New(slog.NewTextHandler(io.Discard, nil)))
	ts := newTestServer(t, NewCoordinator(coord, quietLog, WithCoordinatorQueryLog(qlog)))

	var out struct {
		Groups  map[string]float64 `json:"groups"`
		Partial *struct{}          `json:"partial"`
		Trace   *obs.SpanNode      `json:"trace"`
	}
	if code := getJSONBody(t, ts.URL+"/groupby?keep=product&trace=1", &out); code != 200 {
		t.Fatalf("traced groupby status %d", code)
	}
	if out.Groups["ale"] != 17 || out.Groups["bock"] != 11 || out.Groups["cider"] != 3 {
		t.Fatalf("groups %v", out.Groups)
	}
	if out.Trace == nil || len(out.Trace.Children) != 2 {
		t.Fatalf("stitched trace missing shard legs: %+v", out.Trace)
	}
	for i, name := range []string{"shard a", "shard b"} {
		leg := out.Trace.Children[i]
		if leg.Name != name {
			t.Fatalf("leg %d named %q, want %q", i, leg.Name, name)
		}
		if len(leg.Children) != 1 || leg.Children[0].SumAttr("ops") <= 0 {
			t.Fatalf("leg %q has no shard subtree with ops: %+v", name, leg)
		}
	}

	var log struct {
		Total   uint64           `json:"total"`
		Entries []obs.QueryEntry `json:"entries"`
	}
	if code := getJSONBody(t, ts.URL+"/querylog", &log); code != 200 {
		t.Fatalf("querylog status %d", code)
	}
	if log.Total != 1 || len(log.Entries) != 1 {
		t.Fatalf("querylog total=%d entries=%d, want 1/1", log.Total, len(log.Entries))
	}
	e := log.Entries[0]
	if e.Kind != "groupby" || e.Shape != "product" || e.TraceID == "" || len(e.Shards) != 2 {
		t.Fatalf("entry %+v", e)
	}
}
