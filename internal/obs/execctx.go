package obs

// ExecCtx is the per-query execution context threaded explicitly through
// the read path (assembly planning/execution, range aggregation, store
// reads). It carries everything a single query execution is allowed to
// write to — today the query's trace and the span new work should nest
// under — so the engines themselves hold only immutable planning state and
// any number of queries can execute concurrently without sharing mutable
// per-query fields.
//
// A nil *ExecCtx is valid and means "untraced": Start returns a nil span
// and every span method no-ops, so instrumented code calls unconditionally.
// Shared instruments (metrics counters, histograms) are deliberately NOT
// part of the context: they are lock-free atomics attached to each engine
// once at wiring time and are safe to hit from any goroutine.
type ExecCtx struct {
	// Trace collects this query's span tree; nil when the query is
	// untraced.
	Trace *Trace

	// span is the parent new spans attach under; nil means the trace
	// root. Derived contexts (Under) set it so nested work — possibly on
	// other goroutines — lands under the span that spawned it.
	span *Span
}

// Traced returns an execution context recording into t. A nil t yields a
// context whose spans are all no-ops.
func Traced(t *Trace) *ExecCtx { return &ExecCtx{Trace: t} }

// Start opens a span on the context's trace, nested under the context's
// current span (or the trace root). Safe on a nil receiver (and on a
// context with a nil trace): it returns a nil span.
func (x *ExecCtx) Start(name string) *Span {
	if x == nil {
		return nil
	}
	if x.span != nil {
		return x.span.Start(name)
	}
	return x.Trace.Start(name)
}

// Under derives a context whose spans nest beneath sp. Pass the derived
// context into sub-work — including work forked onto other goroutines; span
// attachment is concurrency-safe — so the trace tree mirrors the call tree.
// Deriving from a nil context, a context without a trace, or under a nil
// span (e.g. one dropped over the span cap) returns x unchanged.
func (x *ExecCtx) Under(sp *Span) *ExecCtx {
	if x == nil || x.Trace == nil || sp == nil {
		return x
	}
	return &ExecCtx{Trace: x.Trace, span: sp}
}

// Tracing reports whether the context carries a live trace. Safe on a nil
// receiver. Spans attach atomically under the trace mutex, so traced
// executions parallelise exactly like untraced ones.
func (x *ExecCtx) Tracing() bool { return x != nil && x.Trace != nil }
