package obs

// ExecCtx is the per-query execution context threaded explicitly through
// the read path (assembly planning/execution, range aggregation, store
// reads). It carries everything a single query execution is allowed to
// write to — today the query's trace — so the engines themselves hold only
// immutable planning state and any number of queries can execute
// concurrently without sharing mutable per-query fields.
//
// A nil *ExecCtx is valid and means "untraced": Start returns a nil span
// and every span method no-ops, so instrumented code calls unconditionally.
// Shared instruments (metrics counters, histograms) are deliberately NOT
// part of the context: they are lock-free atomics attached to each engine
// once at wiring time and are safe to hit from any goroutine.
type ExecCtx struct {
	// Trace collects this query's span tree; nil when the query is
	// untraced.
	Trace *Trace
}

// Traced returns an execution context recording into t. A nil t yields a
// context whose spans are all no-ops.
func Traced(t *Trace) *ExecCtx { return &ExecCtx{Trace: t} }

// Start opens a span on the context's trace. Safe on a nil receiver (and
// on a context with a nil trace): it returns a nil span.
func (x *ExecCtx) Start(name string) *Span {
	if x == nil {
		return nil
	}
	return x.Trace.Start(name)
}

// Tracing reports whether the context carries a live trace. Safe on a nil
// receiver. Components use it to pick trace-compatible code paths: a
// trace's span stack assumes strictly nested Start/End pairs, so traced
// executions must stay on a single goroutine.
func (x *ExecCtx) Tracing() bool { return x != nil && x.Trace != nil }
