package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// QueryEntry is one line of the query analytics log: the query's shape and
// cost profile, in exactly the form future workload-adaptive view selection
// wants to mine. Trace is only set for sampled queries (and is the stitched
// cluster tree for coordinator queries).
type QueryEntry struct {
	Time time.Time `json:"time"`
	Kind string    `json:"kind"`
	// Cube and View name the catalog entry (and, when the query came in
	// through a declarative view, the view) that served the query. Both are
	// empty for engines served outside a catalog.
	Cube       string `json:"cube,omitempty"`
	View       string `json:"view,omitempty"`
	Shape      string `json:"shape"`
	DurationUS int64  `json:"duration_us"`
	Epoch      uint64 `json:"epoch,omitempty"`
	// SnapshotEpoch is the ingest snapshot generation the query read from
	// (zero when the cube has no streaming ingest path): queries racing a
	// merge can be told apart by this field moving.
	SnapshotEpoch uint64 `json:"snapshot_epoch,omitempty"`
	PlanCacheHit  *bool  `json:"plan_cache_hit,omitempty"`
	// ResultCacheHit is set (either way) only when the serving path had a
	// result cache wired; a hit's Ops/Cells are zero by construction.
	ResultCacheHit *bool `json:"result_cache_hit,omitempty"`
	Ops            int64 `json:"ops,omitempty"`
	Cells          int64 `json:"cells,omitempty"`
	// Agg and MeasureWidth identify the aggregate function and the
	// measure-vector component width of the serving engine, so log mining
	// can distinguish SUM queries from AVG/VAR queries over a vector cube.
	// Scalar SUM queries leave both empty (width 1 is implied).
	Agg           string          `json:"agg,omitempty"`
	MeasureWidth  int             `json:"measure_width,omitempty"`
	TraceID       string          `json:"trace_id,omitempty"`
	Sampled       bool            `json:"sampled,omitempty"`
	Error         string          `json:"error,omitempty"`
	MissingShards []string        `json:"missing_shards,omitempty"`
	Shards        []ShardLegEntry `json:"shards,omitempty"`
	Trace         *SpanNode       `json:"trace,omitempty"`
}

// ShardLegEntry is the per-shard cost breakdown of one cluster query.
type ShardLegEntry struct {
	Shard      string `json:"shard"`
	DurationUS int64  `json:"duration_us"`
	Retries    int    `json:"retries,omitempty"`
	Hedged     bool   `json:"hedged,omitempty"`
	OK         bool   `json:"ok"`
	Ops        int64  `json:"ops,omitempty"`
	Groups     int    `json:"groups,omitempty"`
}

// QueryLogOptions configures a QueryLog.
type QueryLogOptions struct {
	// RingSize bounds the in-memory ring served by /querylog. Defaults to
	// 256.
	RingSize int
	// Path, when non-empty, appends each entry as one JSON line to this
	// file, rotating by size.
	Path string
	// MaxBytes triggers rotation of the log file once it exceeds this
	// size. Defaults to 8 MiB.
	MaxBytes int64
}

// QueryLog records completed queries into a bounded in-memory ring and,
// optionally, a rotating JSONL file. All methods are safe for concurrent
// use and safe on a nil receiver, so serving paths log unconditionally.
type QueryLog struct {
	opt QueryLogOptions

	mu      sync.Mutex
	ring    []QueryEntry
	next    int
	total   uint64
	f       *os.File
	written int64
}

// NewQueryLog opens a query log. With an empty Path the log is purely
// in-memory.
func NewQueryLog(opt QueryLogOptions) (*QueryLog, error) {
	if opt.RingSize <= 0 {
		opt.RingSize = 256
	}
	if opt.MaxBytes <= 0 {
		opt.MaxBytes = 8 << 20
	}
	l := &QueryLog{opt: opt, ring: make([]QueryEntry, 0, opt.RingSize)}
	if opt.Path != "" {
		if err := l.openFile(); err != nil {
			return nil, err
		}
	}
	return l, nil
}

func (l *QueryLog) openFile() error {
	f, err := os.OpenFile(l.opt.Path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("querylog: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("querylog: %w", err)
	}
	l.f = f
	l.written = st.Size()
	return nil
}

// Record appends one entry. File write errors are swallowed (the ring still
// records): the query log must never fail a query. Safe on nil.
func (l *QueryLog) Record(e QueryEntry) {
	if l == nil {
		return
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ring) < l.opt.RingSize {
		l.ring = append(l.ring, e)
	} else {
		l.ring[l.next] = e
		l.next = (l.next + 1) % l.opt.RingSize
	}
	l.total++
	if l.f == nil {
		return
	}
	line, err := json.Marshal(e)
	if err != nil {
		return
	}
	line = append(line, '\n')
	if l.written+int64(len(line)) > l.opt.MaxBytes {
		l.rotateLocked()
	}
	if l.f != nil {
		if n, err := l.f.Write(line); err == nil {
			l.written += int64(n)
		}
	}
}

// rotateLocked renames the live file to <path>.1 (replacing any previous
// rotation) and starts a fresh file. Caller holds l.mu.
func (l *QueryLog) rotateLocked() {
	l.f.Close()
	l.f = nil
	l.written = 0
	os.Rename(l.opt.Path, l.opt.Path+".1")
	f, err := os.OpenFile(l.opt.Path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	l.f = f
}

// Recent returns up to n of the most recent entries, newest first. n <= 0
// means all retained entries. Safe on nil (returns nil).
func (l *QueryLog) Recent(n int) []QueryEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := len(l.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]QueryEntry, 0, n)
	// Newest entry is just before l.next once the ring has wrapped, or at
	// len-1 while it is still filling.
	newest := l.next - 1
	if len(l.ring) < l.opt.RingSize {
		newest = len(l.ring) - 1
	}
	for i := 0; i < n; i++ {
		idx := (newest - i + size) % size
		out = append(out, l.ring[idx])
	}
	return out
}

// Total reports how many entries have ever been recorded (including ones
// the ring has evicted). Safe on nil.
func (l *QueryLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Close flushes and closes the backing file, if any. Safe on nil.
func (l *QueryLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
