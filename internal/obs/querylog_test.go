package obs

import (
	"bufio"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestQueryLogRing(t *testing.T) {
	l, err := NewQueryLog(QueryLogOptions{RingSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Record(QueryEntry{Kind: "groupby", Shape: string(rune('a' + i))})
	}
	got := l.Recent(0)
	if len(got) != 3 {
		t.Fatalf("recent = %d entries", len(got))
	}
	// Newest first: e, d, c.
	if got[0].Shape != "e" || got[1].Shape != "d" || got[2].Shape != "c" {
		t.Fatalf("order = %s %s %s", got[0].Shape, got[1].Shape, got[2].Shape)
	}
	if l.Total() != 5 {
		t.Fatalf("total = %d", l.Total())
	}
	if two := l.Recent(2); len(two) != 2 || two[0].Shape != "e" {
		t.Fatalf("recent(2) = %+v", two)
	}
}

func TestQueryLogFileAndRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "query.log")
	l, err := NewQueryLog(QueryLogOptions{RingSize: 8, Path: path, MaxBytes: 300})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 10; i++ {
		l.Record(QueryEntry{Kind: "range", Shape: "product=widget", DurationUS: int64(i)})
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("expected rotation: %v", err)
	}
	// Every line in the live file must be valid JSON with the schema keys.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	lines := 0
	for sc.Scan() {
		var e QueryEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if e.Kind != "range" || !strings.Contains(sc.Text(), `"duration_us"`) {
			t.Fatalf("line = %s", sc.Text())
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("live file empty after rotation")
	}
}

func TestQueryLogNil(t *testing.T) {
	var l *QueryLog
	l.Record(QueryEntry{Kind: "total"})
	if l.Recent(5) != nil || l.Total() != 0 || l.Close() != nil {
		t.Fatal("nil query log must no-op")
	}
}

func TestQueryLogStampsTime(t *testing.T) {
	l, err := NewQueryLog(QueryLogOptions{RingSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	l.Record(QueryEntry{Kind: "sql"})
	if e := l.Recent(1)[0]; e.Time.IsZero() || time.Since(e.Time) > time.Minute {
		t.Fatalf("time not stamped: %v", e.Time)
	}
}

func TestSampler(t *testing.T) {
	if NewSampler(0) != nil || NewSampler(-1) != nil {
		t.Fatal("rate <= 0 must disable sampling")
	}
	var nilS *Sampler
	if nilS.Sample() || nilS.Every() != 0 {
		t.Fatal("nil sampler never samples")
	}
	all := NewSampler(1)
	for i := 0; i < 5; i++ {
		if !all.Sample() {
			t.Fatal("rate 1 samples everything")
		}
	}
	tenth := NewSampler(0.1)
	if tenth.Every() != 10 {
		t.Fatalf("every = %d", tenth.Every())
	}
	hits := 0
	for i := 0; i < 100; i++ {
		if tenth.Sample() {
			hits++
		}
	}
	if hits != 10 {
		t.Fatalf("hits = %d, want deterministic 10", hits)
	}
}
