package obs

import (
	"math"
	"sync/atomic"
)

// Sampler decides which queries get a full trace when always-on sampled
// tracing is enabled. It is deterministic — every Nth query samples, with N
// derived from the configured rate — so overhead is a pure atomic increment
// on the unsampled path and behaviour is reproducible in tests. A nil
// *Sampler never samples.
type Sampler struct {
	every uint64
	n     atomic.Uint64
}

// NewSampler returns a sampler tracing approximately the given fraction of
// queries: rate >= 1 samples everything, rate <= 0 disables sampling
// (returns nil), and 0 < rate < 1 samples every round(1/rate)-th query.
func NewSampler(rate float64) *Sampler {
	if rate <= 0 || math.IsNaN(rate) {
		return nil
	}
	if rate >= 1 {
		return &Sampler{every: 1}
	}
	every := uint64(math.Round(1 / rate))
	if every < 1 {
		every = 1
	}
	return &Sampler{every: every}
}

// Sample reports whether this query should carry a trace. Safe on nil
// (never samples).
func (s *Sampler) Sample() bool {
	if s == nil {
		return false
	}
	return s.n.Add(1)%s.every == 0
}

// Every exposes the sampling period (0 for a nil sampler), for /info-style
// introspection.
func (s *Sampler) Every() uint64 {
	if s == nil {
		return 0
	}
	return s.every
}
