package obs

// This file defines the instrument groups the engine's components hold.
// Each constructor registers its instruments in a Registry; called with a
// nil registry it returns a struct of nil instruments, which no-op — so a
// component can always keep a non-nil group and call through it
// unconditionally.

// StoreMetrics instruments a disk-backed element store.
type StoreMetrics struct {
	CacheHits   *Counter
	CacheMisses *Counter
	Evictions   *Counter
	DiskReads   *Counter
	DiskWrites  *Counter
	CachedCells *Gauge
}

// NewStoreMetrics registers the store instrument set.
func NewStoreMetrics(r *Registry) *StoreMetrics {
	return &StoreMetrics{
		CacheHits:   r.Counter("viewcube_store_cache_hits_total", "Element reads served from the store's in-memory LRU cache."),
		CacheMisses: r.Counter("viewcube_store_cache_misses_total", "Element reads that went to disk."),
		Evictions:   r.Counter("viewcube_store_cache_evictions_total", "Elements evicted from the LRU cache to stay within the cell budget."),
		DiskReads:   r.Counter("viewcube_store_disk_reads_total", "Element files read from disk."),
		DiskWrites:  r.Counter("viewcube_store_disk_writes_total", "Element files written to disk."),
		CachedCells: r.Gauge("viewcube_store_cached_cells", "Cells currently held in the store's in-memory cache."),
	}
}

// AssemblyMetrics instruments the plan/execute hot path.
type AssemblyMetrics struct {
	Plans           *Counter
	Executions      *Counter
	CellsRead       *Counter // cells fetched from stored elements
	OpsModeled      *Counter // modelled add/subtract operations executed
	StoredNodes     *Counter
	AggregateNodes  *Counter
	SynthesizeNodes *Counter
	PoolHits        *Counter // scratch-buffer leases served from the pool
	PoolMisses      *Counter // scratch-buffer leases that allocated
}

// NewAssemblyMetrics registers the assembly instrument set.
func NewAssemblyMetrics(r *Registry) *AssemblyMetrics {
	return &AssemblyMetrics{
		Plans:           r.Counter("viewcube_assembly_plans_total", "Procedure 3 plans computed."),
		Executions:      r.Counter("viewcube_assembly_executions_total", "Plans executed (elements assembled)."),
		CellsRead:       r.Counter("viewcube_assembly_cells_read_total", "Cells read from stored elements during plan execution."),
		OpsModeled:      r.Counter("viewcube_assembly_ops_total", "Modelled add/subtract operations executed (the paper's processing cost)."),
		StoredNodes:     r.Counter("viewcube_assembly_plan_nodes_total", "Executed plan nodes by kind.", "kind", "stored"),
		AggregateNodes:  r.Counter("viewcube_assembly_plan_nodes_total", "Executed plan nodes by kind.", "kind", "aggregate"),
		SynthesizeNodes: r.Counter("viewcube_assembly_plan_nodes_total", "Executed plan nodes by kind.", "kind", "synthesize"),
		PoolHits:        r.Counter("viewcube_exec_pool_hits_total", "Executor scratch-buffer leases served from the recycled pool."),
		PoolMisses:      r.Counter("viewcube_exec_pool_misses_total", "Executor scratch-buffer leases that fell through to allocation."),
	}
}

// NodeCounter returns the per-kind plan node counter.
func (m *AssemblyMetrics) NodeCounter(kind string) *Counter {
	if m == nil {
		return nil
	}
	switch kind {
	case "stored":
		return m.StoredNodes
	case "aggregate":
		return m.AggregateNodes
	case "synthesize":
		return m.SynthesizeNodes
	}
	return nil
}

// AdaptiveMetrics instruments Algorithm 1/2 reselection behaviour.
type AdaptiveMetrics struct {
	Reselections     *Counter // Reconfigure invocations (manual or automatic)
	AutoReselects    *Counter // triggered by ReselectEvery
	ChangedReconfigs *Counter
	Migrated         *Counter
	Dropped          *Counter
	DecayApplied     *Counter
	BasisElements    *Gauge
	StorageCells     *Gauge
}

// NewAdaptiveMetrics registers the adaptive instrument set.
func NewAdaptiveMetrics(r *Registry) *AdaptiveMetrics {
	return &AdaptiveMetrics{
		Reselections:     r.Counter("viewcube_reselections_total", "Materialised-set reselections run (Algorithm 1/2 invocations)."),
		AutoReselects:    r.Counter("viewcube_reselections_auto_total", "Reselections triggered automatically by ReselectEvery."),
		ChangedReconfigs: r.Counter("viewcube_reselections_changed_total", "Reselections that changed the materialised set."),
		Migrated:         r.Counter("viewcube_elements_migrated_total", "Elements newly materialised across reselections."),
		Dropped:          r.Counter("viewcube_elements_dropped_total", "Elements dropped across reselections."),
		DecayApplied:     r.Counter("viewcube_decay_applied_total", "Times frequency decay was applied to the observed workload."),
		BasisElements:    r.Gauge("viewcube_materialized_elements", "View elements currently materialised."),
		StorageCells:     r.Gauge("viewcube_storage_cells", "Materialised volume in cells."),
	}
}

// PlanMetrics instruments the epoch-keyed plan cache: steady-state query
// populations should converge to hits; invalidations count materialised-set
// epochs (Optimize/Reconfigure/Update).
type PlanMetrics struct {
	Hits          *Counter
	Misses        *Counter
	Invalidations *Counter
}

// NewPlanMetrics registers the plan-cache instrument set.
func NewPlanMetrics(r *Registry) *PlanMetrics {
	return &PlanMetrics{
		Hits:          r.Counter("viewcube_plan_cache_hits_total", "Plan-cache lookups that skipped the Procedure 3 DP (cached or coalesced)."),
		Misses:        r.Counter("viewcube_plan_cache_misses_total", "Plan-cache lookups that found no current-epoch plan."),
		Invalidations: r.Counter("viewcube_plan_cache_invalidations_total", "Plan-cache epoch bumps (materialised set or cell values changed)."),
	}
}

// ResultCacheMetrics instruments an epoch-invalidated answer cache
// (internal/rescache): hits skip planning, execution and scatter-gather
// entirely; invalidations count epochs (updates, reconfigures, rebuilds,
// catalog reloads).
type ResultCacheMetrics struct {
	Hits          *Counter
	Misses        *Counter
	Evictions     *Counter
	Invalidations *Counter
	Bytes         *Gauge
	Entries       *Gauge
}

// NewResultCacheMetrics registers the result-cache instrument set.
func NewResultCacheMetrics(r *Registry) *ResultCacheMetrics {
	return &ResultCacheMetrics{
		Hits:          r.Counter("viewcube_result_cache_hits_total", "Result-cache lookups served without executing the query (cached or coalesced)."),
		Misses:        r.Counter("viewcube_result_cache_misses_total", "Result-cache lookups that executed the underlying query."),
		Evictions:     r.Counter("viewcube_result_cache_evictions_total", "Result-cache entries evicted to stay within the size bounds."),
		Invalidations: r.Counter("viewcube_result_cache_invalidations_total", "Result-cache epoch bumps (cube state changed)."),
		Bytes:         r.Gauge("viewcube_result_cache_bytes", "Estimated bytes of answers currently cached."),
		Entries:       r.Gauge("viewcube_result_cache_entries", "Answers currently cached."),
	}
}

// AdmissionMetrics instruments the coordinator's bounded-concurrency
// admission gate: queued counts slow-path waits for a slot, rejected counts
// queries shed with an overloaded error.
type AdmissionMetrics struct {
	Queued   *Counter
	Rejected *Counter
	InFlight *Gauge
}

// NewAdmissionMetrics registers the admission-control instrument set.
func NewAdmissionMetrics(r *Registry) *AdmissionMetrics {
	return &AdmissionMetrics{
		Queued:   r.Counter("viewcube_admission_queued_total", "Queries that waited for an admission slot instead of starting immediately."),
		Rejected: r.Counter("viewcube_admission_rejected_total", "Queries shed with an overloaded error after the queue timeout."),
		InFlight: r.Gauge("viewcube_admission_in_flight", "Queries currently holding an admission slot."),
	}
}

// ClusterMetrics instruments the networked serving tier: the coordinator's
// scatter-gather behaviour (retries, hedges, degraded answers) and the
// shard server's request handling. Coordinator and shard processes each
// use their half of the group; the other half stays zero.
type ClusterMetrics struct {
	// Coordinator side.
	Queries     *Counter // scatter-gather queries started
	ShardCalls  *Counter // shard attempts sent (including retries and hedges)
	ShardErrors *Counter // shard attempts that failed (transport or deadline)
	Retries     *Counter // attempts re-sent after backoff
	Hedges      *Counter // speculative duplicate requests launched
	HedgeWins   *Counter // hedged requests that beat the primary
	Partials    *Counter // degraded answers returned with shards missing
	ShardsLive  *Gauge   // shards that answered the most recent query
	ShardsKnown *Gauge   // shards configured
	// RPCDuration observes each shard attempt's round-trip latency at the
	// coordinator (including retries and hedges).
	RPCDuration *Histogram
	// QueryDuration observes whole scatter-gather query latency at the
	// coordinator, by query kind.
	QueryDuration map[string]*Histogram
	// Shard-server side.
	Served       *Counter // requests executed by this shard server
	ServedErrors *Counter // requests that returned a shard-side error
	Conns        *Gauge   // open shard-protocol connections
	InFlight     *Gauge   // requests currently executing
	// StageDecode/StageExecute/StageWrite observe per-request time the
	// shard server spends in each handling stage.
	StageDecode  *Histogram
	StageExecute *Histogram
	StageWrite   *Histogram
}

// NewClusterMetrics registers the cluster instrument set.
func NewClusterMetrics(r *Registry) *ClusterMetrics {
	queryDur := make(map[string]*Histogram, 3)
	for _, kind := range []string{"groupby", "total", "range"} {
		queryDur[kind] = r.Histogram("viewcube_cluster_query_seconds",
			"Whole scatter-gather query latency at the coordinator, by query kind.", nil, "kind", kind)
	}
	return &ClusterMetrics{
		Queries:     r.Counter("viewcube_cluster_queries_total", "Scatter-gather queries started by the coordinator."),
		ShardCalls:  r.Counter("viewcube_cluster_shard_requests_total", "Shard requests sent by the coordinator, including retries and hedges."),
		ShardErrors: r.Counter("viewcube_cluster_shard_errors_total", "Shard requests that failed in transport or timed out."),
		Retries:     r.Counter("viewcube_cluster_retries_total", "Shard requests re-sent after backoff."),
		Hedges:      r.Counter("viewcube_cluster_hedges_total", "Speculative duplicate shard requests launched after the hedge delay."),
		HedgeWins:   r.Counter("viewcube_cluster_hedge_wins_total", "Hedged shard requests that answered before the primary."),
		Partials:    r.Counter("viewcube_cluster_partial_results_total", "Degraded answers returned with one or more shards missing."),
		ShardsLive:  r.Gauge("viewcube_cluster_shards_live", "Shards that contributed to the most recent scatter-gather query."),
		ShardsKnown: r.Gauge("viewcube_cluster_shards_known", "Shards configured at the coordinator."),
		RPCDuration: r.Histogram("viewcube_cluster_rpc_duration_seconds",
			"Round-trip latency of individual shard attempts at the coordinator, including retries and hedges.", nil),
		QueryDuration: queryDur,
		Served:        r.Counter("viewcube_cluster_shard_served_total", "Requests executed by this shard server."),
		ServedErrors:  r.Counter("viewcube_cluster_shard_served_errors_total", "Shard-server requests that returned an execution error."),
		Conns:         r.Gauge("viewcube_cluster_shard_connections", "Open shard-protocol connections at this shard server."),
		InFlight:      r.Gauge("viewcube_cluster_shard_in_flight_requests", "Requests currently executing at this shard server."),
		StageDecode: r.Histogram("viewcube_cluster_shard_stage_seconds",
			"Per-request time the shard server spends in each handling stage.", nil, "stage", "decode"),
		StageExecute: r.Histogram("viewcube_cluster_shard_stage_seconds",
			"Per-request time the shard server spends in each handling stage.", nil, "stage", "execute"),
		StageWrite: r.Histogram("viewcube_cluster_shard_stage_seconds",
			"Per-request time the shard server spends in each handling stage.", nil, "stage", "write"),
	}
}

// ObserveQuery records one coordinator query's latency under its kind. Safe
// on nil and on unknown kinds.
func (m *ClusterMetrics) ObserveQuery(kind string, seconds float64) {
	if m == nil {
		return
	}
	m.QueryDuration[kind].Observe(seconds)
}

// IngestMetrics instruments the streaming-ingest write path: WAL appends,
// delta coalescing, background merges and the snapshot lifecycle. LagSeqs
// (appended minus published watermark) is the end-to-end freshness signal:
// a reader pinning the current snapshot sees every write except the lagging
// tail.
type IngestMetrics struct {
	Appended      *Counter // deltas acknowledged into the WAL/buffer
	Coalesced     *Counter // deltas folded into an already-dirty cell
	Backpressure  *Counter // appends that blocked on the dirty-cell bound
	WALBytes      *Counter // bytes appended to the write-ahead log
	WALReplayed   *Counter // deltas re-applied from the WAL at startup
	Merges        *Counter // background merge cycles run
	MergedCells   *Counter // distinct dirty cells folded across merges
	Published     *Counter // snapshots published
	Retired       *Counter // snapshots fully retired (memory reclaimed)
	PendingCells  *Gauge   // dirty cells awaiting the next merge
	SnapshotEpoch *Gauge   // epoch of the current published snapshot
	LagSeqs       *Gauge   // acknowledged deltas not yet visible to readers
	MergeSeconds  *Histogram
}

// NewIngestMetrics registers the ingest instrument set.
func NewIngestMetrics(r *Registry) *IngestMetrics {
	return &IngestMetrics{
		Appended:      r.Counter("viewcube_ingest_appended_total", "Deltas acknowledged into the ingest WAL and buffer."),
		Coalesced:     r.Counter("viewcube_ingest_coalesced_total", "Deltas coalesced into an already-dirty cell before merging."),
		Backpressure:  r.Counter("viewcube_ingest_backpressure_total", "Ingest appends that blocked on the dirty-cell bound."),
		WALBytes:      r.Counter("viewcube_ingest_wal_bytes_total", "Bytes appended to the ingest write-ahead log."),
		WALReplayed:   r.Counter("viewcube_ingest_wal_replayed_total", "Deltas re-applied from the WAL during crash recovery."),
		Merges:        r.Counter("viewcube_ingest_merges_total", "Background merge cycles that folded deltas into a snapshot."),
		MergedCells:   r.Counter("viewcube_ingest_merged_cells_total", "Distinct dirty cells folded into snapshots across merges."),
		Published:     r.Counter("viewcube_ingest_snapshots_published_total", "Immutable snapshots published by the merger."),
		Retired:       r.Counter("viewcube_ingest_snapshots_retired_total", "Snapshots retired after their last reader released them."),
		PendingCells:  r.Gauge("viewcube_ingest_pending_cells", "Dirty cells in the ingest buffer awaiting the next merge."),
		SnapshotEpoch: r.Gauge("viewcube_ingest_snapshot_epoch", "Epoch of the currently published snapshot."),
		LagSeqs:       r.Gauge("viewcube_ingest_lag_seqs", "Acknowledged deltas not yet visible to readers (appended minus published watermark)."),
		MergeSeconds:  r.Histogram("viewcube_ingest_merge_seconds", "Wall-clock duration of background merge cycles, in seconds.", nil),
	}
}

// RangeMetrics instruments §6 range aggregation.
type RangeMetrics struct {
	RangeQueries *Counter
	CellsRead    *Counter
	ElementMiss  *Counter // intermediate elements fetched (pyramid cache misses)
}

// NewRangeMetrics registers the range-aggregation instrument set.
func NewRangeMetrics(r *Registry) *RangeMetrics {
	return &RangeMetrics{
		RangeQueries: r.Counter("viewcube_range_queries_total", "Range-SUM queries answered through intermediate elements."),
		CellsRead:    r.Counter("viewcube_range_cells_read_total", "Intermediate-element cells read by range queries (the §6 cost)."),
		ElementMiss:  r.Counter("viewcube_range_element_fetches_total", "Intermediate elements fetched into the range querier's pyramid cache."),
	}
}
