package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// MaxSpans bounds a single trace so a pathological plan tree cannot balloon
// the response; spans beyond the cap are counted, not recorded. The same
// bound caps span subtrees accepted from the wire.
const MaxSpans = 2048

// maxSpans is the historical internal name.
const maxSpans = MaxSpans

// traceIDs hands out process-unique trace IDs. The high bits are seeded from
// the process start time so IDs from restarted processes don't collide in a
// shared query log.
var traceIDs atomic.Uint64

func init() {
	traceIDs.Store(uint64(time.Now().UnixNano()) << 20)
}

// NewTraceID returns a fresh process-unique trace identifier.
func NewTraceID() uint64 { return traceIDs.Add(1) }

// FormatTraceID renders a trace ID the way the query log and API expose it.
func FormatTraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// Attr is one integer annotation on a span (cells read, modelled ops, cache
// hit flags, ...). Integer-only attrs keep spans allocation-light on the hot
// path.
type Attr struct {
	Key string
	Val int64
}

// Label is one string annotation on a span — identity rather than cost
// (cube name, view name). Labels are kept apart from the integer Attrs so
// the hot-path attr slice stays allocation-light and the wire codec (which
// carries Attrs only) is unchanged; labels are a serving-tier annotation
// stamped onto locally owned traces.
type Label struct {
	Key, Val string
}

// Span is one timed region of a trace. Spans form an explicit tree: each
// span carries its parent and a trace-scoped ID, and children attach under
// the trace mutex — so any number of goroutines may open children of the
// same parent concurrently (there is no implicit "current span" stack).
// All methods are safe on a nil receiver so untraced executions cost only
// nil checks.
type Span struct {
	t      *Trace
	id     uint64
	parent *Span
	name   string
	start  time.Time

	// Guarded by t.mu.
	dur      time.Duration
	ended    bool
	attrs    []Attr
	labels   []Label
	children []*Span
}

// ID returns the span's trace-scoped identifier (the root span is 1).
// Safe on nil (returns 0).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// ParentID returns the parent span's ID, or 0 for the root. Safe on nil.
func (s *Span) ParentID() uint64 {
	if s == nil || s.parent == nil {
		return 0
	}
	return s.parent.id
}

// Name returns the span name. Safe on nil.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start opens a child span under s. Concurrency-safe: sibling children may
// be opened from different goroutines (child order then reflects attach
// order). Safe on a nil receiver (returns nil).
func (s *Span) Start(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.startChild(s, name)
}

// SetAttr sets (or replaces) an integer annotation. Safe on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val = v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// SetLabel sets (or replaces) a string annotation. Safe on nil.
func (s *Span) SetLabel(key, val string) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.labels {
		if s.labels[i].Key == key {
			s.labels[i].Val = val
			return
		}
	}
	s.labels = append(s.labels, Label{Key: key, Val: val})
}

// AddAttr accumulates into an integer annotation. Safe on nil.
func (s *Span) AddAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Val += v
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
}

// End closes the span, recording its duration. Ending twice keeps the first
// duration. Unlike the old stack model there is no ordering requirement:
// sibling spans may end in any order, from any goroutine. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = d
	}
	s.t.mu.Unlock()
}

// Graft attaches an already-finished span subtree (e.g. one decoded from a
// shard response) under s. Durations and attributes are taken verbatim; the
// grafted spans count toward the trace's span cap, and anything over the cap
// is dropped (and counted). Safe on nil receivers and a nil node.
func (s *Span) Graft(n *SpanNode) {
	if s == nil || n == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.graftLocked(s, n)
}

// Trace records the timed span tree of one query execution. A nil *Trace is
// a valid no-op tracer: Start returns nil and every span method no-ops, so
// instrumented code calls unconditionally.
//
// Traces are safe for concurrent use: spans carry explicit parents, child
// attachment is atomic under the trace mutex, and sibling spans may be
// recorded from any number of goroutines — a traced query keeps its full
// intra-query and scatter parallelism.
type Trace struct {
	id uint64

	mu      sync.Mutex
	root    *Span
	nextID  uint64
	spans   int
	dropped int
}

// NewTrace starts a trace whose root span has the given name and assigns it
// a fresh process-unique trace ID.
func NewTrace(name string) *Trace {
	t := &Trace{id: NewTraceID(), nextID: 1, spans: 1}
	t.root = &Span{t: t, id: 1, name: name, start: time.Now()}
	return t
}

// ID returns the trace's process-unique identifier. Safe on nil (returns 0).
func (t *Trace) ID() uint64 {
	if t == nil {
		return 0
	}
	return t.id
}

// startChild attaches a new child span under parent.
func (t *Trace) startChild(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	start := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpans {
		t.dropped++
		return nil
	}
	t.nextID++
	s := &Span{t: t, id: t.nextID, parent: parent, name: name, start: start}
	parent.children = append(parent.children, s)
	t.spans++
	return s
}

// Start opens a child span directly under the root. Code that nests deeper
// derives children from the returned span (Span.Start) or threads an
// ExecCtx. Safe on a nil receiver (returns a nil span).
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return t.startChild(t.root, name)
}

// graftLocked converts a SpanNode subtree into spans under parent. Caller
// holds t.mu.
func (t *Trace) graftLocked(parent *Span, n *SpanNode) {
	if t.spans >= maxSpans {
		t.dropped += n.count()
		return
	}
	t.nextID++
	s := &Span{
		t:      t,
		id:     t.nextID,
		parent: parent,
		name:   n.Name,
		dur:    time.Duration(n.DurationUS) * time.Microsecond,
		ended:  true,
	}
	if len(n.Attrs) > 0 {
		s.attrs = make([]Attr, 0, len(n.Attrs))
		for _, k := range sortedAttrKeys(n.Attrs) {
			s.attrs = append(s.attrs, Attr{Key: k, Val: n.Attrs[k]})
		}
	}
	if len(n.Labels) > 0 {
		s.labels = make([]Label, 0, len(n.Labels))
		for _, k := range sortedLabelKeys(n.Labels) {
			s.labels = append(s.labels, Label{Key: k, Val: n.Labels[k]})
		}
	}
	parent.children = append(parent.children, s)
	t.spans++
	for _, c := range n.Children {
		t.graftLocked(s, c)
	}
}

// Finish closes the root span and any still-open descendants. Safe on nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	var close func(s *Span)
	close = func(s *Span) {
		if !s.ended {
			s.ended = true
			s.dur = now.Sub(s.start)
		}
		for _, c := range s.children {
			close(c)
		}
	}
	close(t.root)
}

// Dropped returns how many spans were discarded to honour the trace size
// cap. Safe on nil.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Spans returns how many spans the trace holds (including the root). Safe
// on nil.
func (t *Trace) Spans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.spans
}

// Root returns the root span, or nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SpanNode is the JSON-able shape of one span; Tree converts a trace into
// it for API responses, and the cluster wire protocol carries shard-side
// subtrees in exactly this shape.
type SpanNode struct {
	Name       string           `json:"name"`
	DurationUS int64            `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	// Labels are string annotations (cube, view). They ride in API
	// responses and the query log but not the binary wire protocol, whose
	// span payload is pinned by codec goldens; shard-side subtrees carry
	// cost attrs only and identity labels are stamped by the serving tier.
	Labels   map[string]string `json:"labels,omitempty"`
	Children []*SpanNode       `json:"children,omitempty"`
}

// Label returns the named string annotation on the node or, failing that,
// the first occurrence in its subtree (pre-order); "" when absent. Safe on
// nil.
func (n *SpanNode) Label(key string) string {
	if n == nil {
		return ""
	}
	if v, ok := n.Labels[key]; ok {
		return v
	}
	for _, c := range n.Children {
		if v := c.Label(key); v != "" {
			return v
		}
	}
	return ""
}

// count returns the number of nodes in the subtree.
func (n *SpanNode) count() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.count()
	}
	return total
}

// Tree renders the trace as a SpanNode tree. Safe on nil (returns nil).
func (t *Trace) Tree() *SpanNode {
	if t == nil || t.root == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return toNode(t.root)
}

func toNode(s *Span) *SpanNode {
	n := &SpanNode{Name: s.name, DurationUS: s.dur.Microseconds()}
	if len(s.attrs) > 0 {
		n.Attrs = make(map[string]int64, len(s.attrs))
		for _, a := range s.attrs {
			n.Attrs[a.Key] = a.Val
		}
	}
	if len(s.labels) > 0 {
		n.Labels = make(map[string]string, len(s.labels))
		for _, l := range s.labels {
			n.Labels[l.Key] = l.Val
		}
	}
	for _, c := range s.children {
		n.Children = append(n.Children, toNode(c))
	}
	return n
}

// SumAttr totals the named attribute over the node and its subtree. Safe on
// nil.
func (n *SpanNode) SumAttr(key string) int64 {
	if n == nil {
		return 0
	}
	total := n.Attrs[key]
	for _, c := range n.Children {
		total += c.SumAttr(key)
	}
	return total
}

// MaxAttr returns the largest value of the named attribute over the node
// and its subtree, 0 when the attribute never appears. Safe on nil. Use it
// for attributes that annotate rather than accumulate (e.g. measure_width).
func (n *SpanNode) MaxAttr(key string) int64 {
	if n == nil {
		return 0
	}
	best := n.Attrs[key]
	for _, c := range n.Children {
		if v := c.MaxAttr(key); v > best {
			best = v
		}
	}
	return best
}

// Find returns the first node (pre-order) whose name starts with the given
// prefix, or nil. Safe on nil.
func (n *SpanNode) Find(prefix string) *SpanNode {
	if n == nil {
		return nil
	}
	if strings.HasPrefix(n.Name, prefix) {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(prefix); got != nil {
			return got
		}
	}
	return nil
}

// String renders the trace as an EXPLAIN ANALYZE-style indented tree. Safe
// on nil.
func (t *Trace) String() string {
	if t == nil || t.root == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	renderSpan(&b, t.root, 0)
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped over the %d-span cap)\n", t.dropped, maxSpans)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (%s)", s.name, s.dur.Round(time.Microsecond))
	for _, l := range s.labels {
		fmt.Fprintf(b, " %s=%s", l.Key, l.Val)
	}
	for _, a := range s.attrs {
		fmt.Fprintf(b, " %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.children {
		renderSpan(b, c, depth+1)
	}
}

// sortedAttrKeys returns a node's attr keys in sorted order, for stable
// rendering and canonical wire encoding.
func sortedAttrKeys(attrs map[string]int64) []string {
	if len(attrs) == 0 {
		return nil
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedLabelKeys returns a node's label keys in sorted order for stable
// rendering.
func sortedLabelKeys(labels map[string]string) []string {
	if len(labels) == 0 {
		return nil
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// RenderNode renders a SpanNode tree in the same indented style String
// uses, for clients that receive trees rather than live traces (cubectl
// trace). Safe on nil (returns "").
func RenderNode(n *SpanNode) string {
	var b strings.Builder
	renderNode(&b, n, 0)
	return b.String()
}

func renderNode(b *strings.Builder, n *SpanNode, depth int) {
	if n == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (%s)", n.Name, (time.Duration(n.DurationUS) * time.Microsecond).String())
	for _, k := range sortedLabelKeys(n.Labels) {
		fmt.Fprintf(b, " %s=%s", k, n.Labels[k])
	}
	for _, k := range sortedAttrKeys(n.Attrs) {
		fmt.Fprintf(b, " %s=%d", k, n.Attrs[k])
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		renderNode(b, c, depth+1)
	}
}
