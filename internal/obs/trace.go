package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// maxSpans bounds a single trace so a pathological plan tree cannot balloon
// the response; spans beyond the cap are counted, not recorded.
const maxSpans = 2048

// Attr is one integer annotation on a span (cells read, modelled ops, cache
// hit flags, ...). Integer-only attrs keep spans allocation-light on the hot
// path.
type Attr struct {
	Key string
	Val int64
}

// Span is one timed region of a trace. Spans nest: Start pushes onto the
// trace's span stack, End pops. All methods are safe on a nil receiver so
// untraced executions cost only nil checks.
type Span struct {
	t        *Trace
	Name     string
	start    time.Time
	Dur      time.Duration
	Attrs    []Attr
	Children []*Span
}

// SetAttr sets (or replaces) an integer annotation. Safe on nil.
func (s *Span) SetAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Val = v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
}

// AddAttr accumulates into an integer annotation. Safe on nil.
func (s *Span) AddAttr(key string, v int64) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	defer s.t.mu.Unlock()
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Val += v
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Val: v})
}

// End closes the span, recording its duration and popping it off the
// trace's stack. Ends must match Starts in LIFO order. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.Dur = time.Since(s.start)
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			return
		}
	}
}

// Trace records the timed span tree of one query execution. A nil *Trace is
// a valid no-op tracer: Start returns nil and every span method no-ops, so
// instrumented code calls unconditionally.
type Trace struct {
	mu      sync.Mutex
	root    *Span
	stack   []*Span
	spans   int
	dropped int
}

// NewTrace starts a trace whose root span has the given name.
func NewTrace(name string) *Trace {
	t := &Trace{}
	t.root = &Span{t: t, Name: name, start: time.Now()}
	t.spans = 1
	t.stack = []*Span{t.root}
	return t
}

// Start opens a child span under the innermost open span. Safe on a nil
// receiver (returns a nil span).
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpans {
		t.dropped++
		return nil
	}
	parent := t.root
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	s := &Span{t: t, Name: name, start: time.Now()}
	parent.Children = append(parent.Children, s)
	t.stack = append(t.stack, s)
	t.spans++
	return s
}

// Finish closes the root span (and any still-open descendants). Safe on nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	stack := t.stack
	t.stack = nil
	t.mu.Unlock()
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].Dur == 0 {
			stack[i].Dur = time.Since(stack[i].start)
		}
	}
}

// Dropped returns how many spans were discarded to honour the trace size
// cap. Safe on nil.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Root returns the root span, or nil for a nil trace.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// SpanNode is the JSON-able shape of one span; Tree converts a trace into
// it for API responses.
type SpanNode struct {
	Name       string           `json:"name"`
	DurationUS int64            `json:"duration_us"`
	Attrs      map[string]int64 `json:"attrs,omitempty"`
	Children   []*SpanNode      `json:"children,omitempty"`
}

// Tree renders the trace as a SpanNode tree. Safe on nil (returns nil).
func (t *Trace) Tree() *SpanNode {
	if t == nil || t.root == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return toNode(t.root)
}

func toNode(s *Span) *SpanNode {
	n := &SpanNode{Name: s.Name, DurationUS: s.Dur.Microseconds()}
	if len(s.Attrs) > 0 {
		n.Attrs = make(map[string]int64, len(s.Attrs))
		for _, a := range s.Attrs {
			n.Attrs[a.Key] = a.Val
		}
	}
	for _, c := range s.Children {
		n.Children = append(n.Children, toNode(c))
	}
	return n
}

// SumAttr totals the named attribute over the node and its subtree. Safe on
// nil.
func (n *SpanNode) SumAttr(key string) int64 {
	if n == nil {
		return 0
	}
	total := n.Attrs[key]
	for _, c := range n.Children {
		total += c.SumAttr(key)
	}
	return total
}

// String renders the trace as an EXPLAIN ANALYZE-style indented tree. Safe
// on nil.
func (t *Trace) String() string {
	if t == nil || t.root == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	renderSpan(&b, t.root, 0)
	if t.dropped > 0 {
		fmt.Fprintf(&b, "(%d spans dropped over the %d-span cap)\n", t.dropped, maxSpans)
	}
	return b.String()
}

func renderSpan(b *strings.Builder, s *Span, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(b, "%s (%s)", s.Name, s.Dur.Round(time.Microsecond))
	for _, a := range s.Attrs {
		fmt.Fprintf(b, " %s=%d", a.Key, a.Val)
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}
