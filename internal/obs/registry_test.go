package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A test counter.")
	c.Inc()
	c.Add(4)
	g := r.Gauge("test_cells", "A test gauge.")
	g.Set(10)
	g.Add(-3)
	kc := r.Counter("test_kinds_total", "By kind.", "kind", "groupby")
	kc.Add(2)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_total A test counter.",
		"# TYPE test_total counter",
		"test_total 5",
		"# TYPE test_cells gauge",
		"test_cells 7",
		`test_kinds_total{kind="groupby"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("dup_total", "h")
	b := r.Counter("dup_total", "h")
	if a != b {
		t.Fatal("same name+labels should return the same counter")
	}
	x := r.Counter("dup_total", "h", "k", "v1")
	y := r.Counter("dup_total", "h", "k", "v2")
	if x == y {
		t.Fatal("different label values must be distinct series")
	}
	x.Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	// One HELP/TYPE block for the whole family.
	if n := strings.Count(sb.String(), "# TYPE dup_total counter"); n != 1 {
		t.Fatalf("want one TYPE line for the family, got %d:\n%s", n, sb.String())
	}
}

func TestHistogramBucketsAndExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 5.605; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %g", got)
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 5.605",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilInstrumentsNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(2)
	h.Observe(4)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x", "h") != nil || r.Gauge("x", "h") != nil || r.Histogram("x", "h", nil) != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	var b strings.Builder
	if err := r.WriteText(&b); err != nil || b.Len() != 0 {
		t.Fatal("nil registry exposition must be empty")
	}
	m := NewStoreMetrics(nil)
	m.CacheHits.Inc() // must not panic
	am := NewAdaptiveMetrics(nil)
	am.BasisElements.Set(3)
}

func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	h := r.Histogram("conc_seconds", "h", nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
				r.Counter("conc_kinds_total", "h", "kind", "a").Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d", c.Value())
	}
	if h.Count() != 8000 {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", "path", `a"b\c`).Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("bad escaping:\n%s", b.String())
	}
}
