// Package obs is the observability substrate of the reproduction: a
// dependency-free metrics registry (atomic counters, gauges and fixed-bucket
// histograms with Prometheus text exposition) and a per-query Trace that
// records timed spans and renders as an EXPLAIN ANALYZE-style tree.
//
// The registry is safe for concurrent use: instruments are lock-free atomics
// on the hot path, and registration is idempotent (asking for an existing
// series returns it). Every instrument method is safe on a nil receiver, so
// uninstrumented components pay only a nil check.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Safe on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Safe on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the gauge by delta. Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value. Safe on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram. Buckets are upper
// bounds (the Prometheus "le" convention); an implicit +Inf bucket catches
// everything else.
type Histogram struct {
	upper  []float64
	counts []atomic.Uint64 // one per upper bound, plus +Inf at the end
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// DefLatencyBuckets spans 100µs to 10s, the useful range for in-process
// query latencies measured in seconds.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{upper: up, counts: make([]atomic.Uint64, len(up)+1)}
}

// Observe records one value. Safe on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. Safe on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Safe on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// series is one exposition line: an instrument plus its label pairs.
type series struct {
	labels []string // key, value, key, value, ...
	ctr    *Counter
	gge    *Gauge
	hst    *Histogram
}

// family groups series sharing a metric name (one HELP/TYPE block).
type family struct {
	name, help, typ string
	series          []*series
	byLabel         map[string]*series
}

// Registry holds named instruments and renders them in the Prometheus text
// exposition format. The zero value is not usable; construct with
// NewRegistry. All methods are safe for concurrent use.
//
// A Registry is a view over a shared instrument store: Sub derives a
// registry that stamps fixed base labels onto every instrument registered
// through it while writing into the same exposition, which is how one
// process serving many cubes gets a per-cube label dimension on shared
// metric families.
type Registry struct {
	core *registryCore
	base []string // label pairs prepended to every registration
}

// registryCore is the instrument store shared by a registry and all its
// Sub views.
type registryCore struct {
	mu      sync.Mutex
	ordered []*family
	byName  map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{byName: make(map[string]*family)}}
}

// Sub returns a registry view that adds the given label key/value pairs to
// every instrument registered through it. The returned registry shares the
// parent's instrument store, so WriteText on either renders both. Safe on a
// nil receiver (returns nil).
func (r *Registry) Sub(labels ...string) *Registry {
	if r == nil {
		return nil
	}
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	base := append(append([]string(nil), r.base...), labels...)
	return &Registry{core: r.core, base: base}
}

func labelKey(labels []string) string { return strings.Join(labels, "\x00") }

func (c *registryCore) family(name, help, typ string) *family {
	f, ok := c.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabel: make(map[string]*series)}
		c.byName[name] = f
		c.ordered = append(c.ordered, f)
	}
	return f
}

func (r *Registry) lookup(name, help, typ string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic("obs: labels must be key/value pairs")
	}
	if len(r.base) > 0 {
		labels = append(append([]string(nil), r.base...), labels...)
	}
	c := r.core
	c.mu.Lock()
	defer c.mu.Unlock()
	f := c.family(name, help, typ)
	lk := labelKey(labels)
	s, ok := f.byLabel[lk]
	if !ok {
		s = &series{labels: append([]string(nil), labels...)}
		f.byLabel[lk] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter registers (or returns the existing) counter with the given name
// and label key/value pairs. Safe on a nil receiver, which yields a nil
// (no-op) counter.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "counter", labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge registers (or returns the existing) gauge. Safe on a nil receiver.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "gauge", labels)
	if s.gge == nil {
		s.gge = &Gauge{}
	}
	return s.gge
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (nil means DefLatencyBuckets). Safe on a nil receiver.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, "histogram", labels)
	if s.hst == nil {
		s.hst = newHistogram(buckets)
	}
	return s.hst
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// renderLabels formats {k="v",...}; extra appends one more pair (for "le").
func renderLabels(labels []string, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, labels[i], labelEscaper.Replace(labels[i+1]))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, labelEscaper.Replace(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteText renders every registered instrument in the Prometheus text
// exposition format (version 0.0.4). Safe on a nil receiver (writes
// nothing).
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	c := r.core
	c.mu.Lock()
	fams := append([]*family(nil), c.ordered...)
	snap := make([][]*series, len(fams))
	for i, f := range fams {
		snap[i] = append([]*series(nil), f.series...)
	}
	c.mu.Unlock()
	for i, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, s := range snap[i] {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.ctr != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.ctr.Value())
		return err
	case s.gge != nil:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels, "", ""), s.gge.Value())
		return err
	case s.hst != nil:
		h := s.hst
		cum := uint64(0)
		for i, up := range h.upper {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, renderLabels(s.labels, "le", formatFloat(up)), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.upper)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, renderLabels(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			f.name, renderLabels(s.labels, "", ""), formatFloat(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n",
			f.name, renderLabels(s.labels, "", ""), h.Count())
		return err
	}
	return nil
}
