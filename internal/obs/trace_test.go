package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTraceNestingAndTree(t *testing.T) {
	tr := NewTrace("query")
	plan := tr.Start("plan")
	plan.SetAttr("ops", 24)
	plan.End()
	exec := tr.Start("execute")
	child := tr.Start("stored view{product}")
	child.SetAttr("cells", 8)
	child.End()
	exec.SetAttr("ops", 24)
	exec.End()
	tr.Finish()

	tree := tr.Tree()
	if tree == nil || tree.Name != "query" {
		t.Fatalf("tree root = %+v", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d", len(tree.Children))
	}
	if tree.Children[0].Name != "plan" || tree.Children[0].Attrs["ops"] != 24 {
		t.Fatalf("plan child = %+v", tree.Children[0])
	}
	if tree.Children[1].Children[0].Name != "stored view{product}" {
		t.Fatalf("execute child = %+v", tree.Children[1])
	}
	if got := tree.SumAttr("ops"); got != 48 {
		t.Fatalf("SumAttr(ops) = %d", got)
	}
	if got := tree.SumAttr("cells"); got != 8 {
		t.Fatalf("SumAttr(cells) = %d", got)
	}

	// The tree must round-trip through JSON with the documented keys.
	buf, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"query"`, `"duration_us"`, `"attrs"`, `"children"`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("JSON missing %s: %s", want, buf)
		}
	}

	out := tr.String()
	if !strings.Contains(out, "query (") || !strings.Contains(out, "  plan (") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTraceAddAttr(t *testing.T) {
	tr := NewTrace("q")
	s := tr.Start("range_sum")
	s.AddAttr("cells_read", 3)
	s.AddAttr("cells_read", 4)
	s.End()
	tr.Finish()
	if got := tr.Tree().SumAttr("cells_read"); got != 7 {
		t.Fatalf("cells_read = %d", got)
	}
}

func TestNilTraceNoops(t *testing.T) {
	var tr *Trace
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	s.SetAttr("a", 1)
	s.AddAttr("a", 1)
	s.End()
	tr.Finish()
	if tr.Tree() != nil || tr.String() != "" || tr.Dropped() != 0 {
		t.Fatal("nil trace must render empty")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("root")
	for i := 0; i < maxSpans+10; i++ {
		sp := tr.Start("s")
		sp.End()
	}
	tr.Finish()
	if tr.Dropped() != 11 { // root counts toward the cap
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	if !strings.Contains(tr.String(), "spans dropped") {
		t.Fatal("render should mention dropped spans")
	}
}
