package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestTraceNestingAndTree(t *testing.T) {
	tr := NewTrace("query")
	plan := tr.Start("plan")
	plan.SetAttr("ops", 24)
	plan.End()
	exec := tr.Start("execute")
	child := exec.Start("stored view{product}")
	child.SetAttr("cells", 8)
	child.End()
	exec.SetAttr("ops", 24)
	exec.End()
	tr.Finish()

	tree := tr.Tree()
	if tree == nil || tree.Name != "query" {
		t.Fatalf("tree root = %+v", tree)
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root children = %d", len(tree.Children))
	}
	if tree.Children[0].Name != "plan" || tree.Children[0].Attrs["ops"] != 24 {
		t.Fatalf("plan child = %+v", tree.Children[0])
	}
	if tree.Children[1].Children[0].Name != "stored view{product}" {
		t.Fatalf("execute child = %+v", tree.Children[1])
	}
	if got := tree.SumAttr("ops"); got != 48 {
		t.Fatalf("SumAttr(ops) = %d", got)
	}
	if got := tree.SumAttr("cells"); got != 8 {
		t.Fatalf("SumAttr(cells) = %d", got)
	}

	// The tree must round-trip through JSON with the documented keys.
	buf, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name":"query"`, `"duration_us"`, `"attrs"`, `"children"`} {
		if !strings.Contains(string(buf), want) {
			t.Errorf("JSON missing %s: %s", want, buf)
		}
	}

	out := tr.String()
	if !strings.Contains(out, "query (") || !strings.Contains(out, "  plan (") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTraceAddAttr(t *testing.T) {
	tr := NewTrace("q")
	s := tr.Start("range_sum")
	s.AddAttr("cells_read", 3)
	s.AddAttr("cells_read", 4)
	s.End()
	tr.Finish()
	if got := tr.Tree().SumAttr("cells_read"); got != 7 {
		t.Fatalf("cells_read = %d", got)
	}
}

func TestNilTraceNoops(t *testing.T) {
	var tr *Trace
	s := tr.Start("x")
	if s != nil {
		t.Fatal("nil trace must hand out nil spans")
	}
	s.SetAttr("a", 1)
	s.AddAttr("a", 1)
	s.End()
	if s.Start("child") != nil {
		t.Fatal("nil span must hand out nil children")
	}
	s.Graft(&SpanNode{Name: "n"})
	tr.Finish()
	if tr.Tree() != nil || tr.String() != "" || tr.Dropped() != 0 || tr.ID() != 0 {
		t.Fatal("nil trace must render empty")
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("root")
	for i := 0; i < maxSpans+10; i++ {
		sp := tr.Start("s")
		sp.End()
	}
	tr.Finish()
	if tr.Dropped() != 11 { // root counts toward the cap
		t.Fatalf("dropped = %d", tr.Dropped())
	}
	if !strings.Contains(tr.String(), "spans dropped") {
		t.Fatal("render should mention dropped spans")
	}
}

// TestTraceConcurrentAttach exercises the concurrency-safe span tree: many
// goroutines open, annotate, and close children of the same parent at once.
// Run under -race this pins that traced queries need no serial fallback.
func TestTraceConcurrentAttach(t *testing.T) {
	tr := NewTrace("query")
	exec := tr.Start("execute")
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := grandchild(exec)
				sp.AddAttr("ops", 2)
				sp.End()
			}
		}()
	}
	wg.Wait()
	exec.End()
	tr.Finish()

	tree := tr.Tree()
	execNode := tree.Children[0]
	if len(execNode.Children) != workers*perWorker {
		t.Fatalf("children = %d, want %d", len(execNode.Children), workers*perWorker)
	}
	if got := tree.SumAttr("ops"); got != workers*perWorker*2 {
		t.Fatalf("SumAttr(ops) = %d", got)
	}
}

func grandchild(parent *Span) *Span {
	sp := parent.Start("synthesize")
	inner := sp.Start("stored")
	inner.End()
	return sp
}

func TestSpanIDsAndParents(t *testing.T) {
	tr := NewTrace("q")
	if tr.Root().ID() != 1 || tr.Root().ParentID() != 0 {
		t.Fatalf("root id/parent = %d/%d", tr.Root().ID(), tr.Root().ParentID())
	}
	a := tr.Start("a")
	b := a.Start("b")
	if a.ParentID() != 1 || b.ParentID() != a.ID() {
		t.Fatalf("parent chain: a.parent=%d b.parent=%d a.id=%d", a.ParentID(), b.ParentID(), a.ID())
	}
	if tr.ID() == 0 || tr.ID() == NewTrace("q2").ID() {
		t.Fatal("trace IDs must be unique and nonzero")
	}
}

func TestGraft(t *testing.T) {
	tr := NewTrace("coordinator")
	leg := tr.Start("shard a")
	sub := &SpanNode{
		Name:       "groupby product",
		DurationUS: 120,
		Attrs:      map[string]int64{"ops": 24},
		Children: []*SpanNode{
			{Name: "stored", DurationUS: 40, Attrs: map[string]int64{"cells": 8}},
		},
	}
	leg.Graft(sub)
	leg.End()
	tr.Finish()

	tree := tr.Tree()
	got := tree.Children[0].Children[0]
	if got.Name != "groupby product" || got.DurationUS != 120 || got.Attrs["ops"] != 24 {
		t.Fatalf("grafted node = %+v", got)
	}
	if len(got.Children) != 1 || got.Children[0].Attrs["cells"] != 8 {
		t.Fatalf("grafted child = %+v", got.Children[0])
	}
	if tree.SumAttr("ops") != 24 || tree.SumAttr("cells") != 8 {
		t.Fatalf("grafted attrs lost: %s", tr.String())
	}
}

func TestGraftHonorsCap(t *testing.T) {
	tr := NewTrace("root")
	for tr.Spans() < maxSpans {
		tr.Start("fill")
	}
	leg := tr.Root()
	leg.Graft(&SpanNode{Name: "over", Children: []*SpanNode{{Name: "child"}}})
	if tr.Dropped() != 2 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestExecCtxUnder(t *testing.T) {
	tr := NewTrace("q")
	x := Traced(tr)
	sp := x.Start("execute")
	child := x.Under(sp).Start("synthesize")
	if child.ParentID() != sp.ID() {
		t.Fatalf("Under must nest: parent=%d want %d", child.ParentID(), sp.ID())
	}
	// Deriving under a nil span (e.g. dropped over the cap) is a no-op.
	if got := x.Under(nil); got != x {
		t.Fatal("Under(nil) must return the context unchanged")
	}
	var nilCtx *ExecCtx
	if nilCtx.Under(sp) != nil {
		t.Fatal("nil ctx stays nil")
	}
}

func TestRenderNode(t *testing.T) {
	n := &SpanNode{Name: "query", DurationUS: 1500, Attrs: map[string]int64{"ops": 3},
		Children: []*SpanNode{{Name: "plan", DurationUS: 200}}}
	out := RenderNode(n)
	if !strings.Contains(out, "query (1.5ms) ops=3") || !strings.Contains(out, "  plan (") {
		t.Fatalf("render:\n%s", out)
	}
}
