// Package freq implements the frequency-plane geometry of the view element
// framework (§4.2 of Smith et al., PODS 1998).
//
// Every view element of a data cube corresponds to a dyadic rectangle in the
// d-dimensional frequency plane: the product of one dyadic interval per
// dimension. Each dyadic interval is a node of a binary tree over the
// frequency axis of that dimension — the root covers [0,1); a node's
// partial-aggregation child covers its lower half and its
// residual-aggregation child covers its upper half (Eq. 21–23).
//
// Nodes are identified by their heap index: root = 1, the partial child of
// node v is 2v and the residual child is 2v+1. This numbering makes depth,
// containment and intersection pure integer bit operations, so the geometry
// is exact — no floating-point frequency coordinates are ever needed.
package freq

import (
	"fmt"
	"math/bits"
)

// Node is the heap index of a dyadic interval in one dimension's frequency
// tree. The zero value is invalid; Root (1) covers the whole axis [0,1).
// A node at depth k covers [offset/2^k, (offset+1)/2^k) where
// offset = node − 2^k.
type Node uint32

// Root is the whole-axis interval [0,1): the undecomposed dimension.
const Root Node = 1

// Depth returns the depth of the node in its frequency tree (root = 0).
// Each unit of depth corresponds to one application of the first partial or
// residual aggregation operator along that dimension.
func (v Node) Depth() int {
	if v == 0 {
		panic("freq: zero Node is invalid")
	}
	return bits.Len32(uint32(v)) - 1
}

// Partial returns the partial-aggregation child P₁ (lower frequency half).
func (v Node) Partial() Node { return 2 * v }

// Residual returns the residual-aggregation child R₁ (upper frequency half).
func (v Node) Residual() Node { return 2*v + 1 }

// Parent returns the parent interval; the root is its own parent.
func (v Node) Parent() Node {
	if v <= 1 {
		return Root
	}
	return v / 2
}

// IsResidualChild reports whether v is the residual (upper-half) child of
// its parent.
func (v Node) IsResidualChild() bool { return v > 1 && v&1 == 1 }

// OnPartialPath reports whether v lies on the all-partial path from the
// root, i.e. it was produced exclusively by partial aggregations. Elements
// whose every per-dimension node is on the partial path are the paper's
// intermediate view elements (Definition 4).
func (v Node) OnPartialPath() bool {
	return v != 0 && v&(v-1) == 0 // exactly the powers of two: 1, 2, 4, ...
}

// Interval returns the dyadic interval covered by v as the exact rational
// [num/den, (num+1)/den) with den = 2^Depth.
func (v Node) Interval() (num, den uint32) {
	k := v.Depth()
	den = 1 << k
	num = uint32(v) - den
	return num, den
}

// Contains reports whether interval v contains (or equals) interval w.
// In the heap numbering, v is an ancestor-or-equal of w exactly when
// truncating w to v's depth yields v.
func (v Node) Contains(w Node) bool {
	dv, dw := v.Depth(), w.Depth()
	if dv > dw {
		return false
	}
	return w>>(dw-dv) == v
}

// Nested reports whether one of the intervals contains the other, and if so
// returns the deeper (smaller) of the two. Dyadic intervals are either
// nested or disjoint — there is no partial overlap — which is why the
// intersection of two view elements is always itself a view element (their
// largest common descendant, Eq. 26).
func Nested(v, w Node) (deeper Node, ok bool) {
	switch {
	case v.Contains(w):
		return w, true
	case w.Contains(v):
		return v, true
	default:
		return 0, false
	}
}

// Disjoint reports whether the two intervals do not overlap.
func Disjoint(v, w Node) bool {
	_, ok := Nested(v, w)
	return !ok
}

// Width returns the frequency-axis width 2^-Depth of the interval.
func (v Node) Width() float64 { return 1 / float64(uint32(1)<<v.Depth()) }

// String renders the node as its interval, e.g. "5=[1/4,2/4)".
func (v Node) String() string {
	if v == 0 {
		return "invalid"
	}
	num, den := v.Interval()
	return fmt.Sprintf("%d=[%d/%d,%d/%d)", uint32(v), num, den, num+1, den)
}

// Rect is a dyadic rectangle in the d-dimensional frequency plane: one
// dyadic interval per dimension. A Rect is the frequency-plane shadow of a
// view element; its per-dimension depths record how many partial/residual
// aggregation stages produced the element.
type Rect []Node

// NewRect returns the root rectangle (the whole frequency plane — the data
// cube itself) for a d-dimensional cube.
func NewRect(d int) Rect {
	r := make(Rect, d)
	for m := range r {
		r[m] = Root
	}
	return r
}

// Clone returns a copy of the rectangle.
func (r Rect) Clone() Rect { return append(Rect(nil), r...) }

// Equal reports whether the rectangles are identical.
func (r Rect) Equal(s Rect) bool {
	if len(r) != len(s) {
		return false
	}
	for m := range r {
		if r[m] != s[m] {
			return false
		}
	}
	return true
}

// Child returns a copy of r with dimension m replaced by its partial
// (residual=false) or residual (residual=true) child.
func (r Rect) Child(m int, residual bool) Rect {
	c := r.Clone()
	if residual {
		c[m] = r[m].Residual()
	} else {
		c[m] = r[m].Partial()
	}
	return c
}

// Contains reports whether r contains (or equals) s in every dimension.
// A view element can be produced from another by a pure aggregation cascade
// exactly when its rectangle is contained this way (the paper's one-way
// "descendant" relation generalised to all dimensions at once).
func (r Rect) Contains(s Rect) bool {
	if len(r) != len(s) {
		return false
	}
	for m := range r {
		if !r[m].Contains(s[m]) {
			return false
		}
	}
	return true
}

// Intersect returns the intersection rectangle of r and s and whether it is
// non-empty (Eq. 24). Because dyadic intervals are nested-or-disjoint, the
// intersection is exact: per dimension it is the deeper of the two
// intervals.
func (r Rect) Intersect(s Rect) (Rect, bool) {
	if len(r) != len(s) {
		panic(fmt.Sprintf("freq: rank mismatch %d vs %d", len(r), len(s)))
	}
	out := make(Rect, len(r))
	for m := range r {
		deeper, ok := Nested(r[m], s[m])
		if !ok {
			return nil, false
		}
		out[m] = deeper
	}
	return out, true
}

// Overlaps reports whether the rectangles intersect.
func (r Rect) Overlaps(s Rect) bool {
	_, ok := r.Intersect(s)
	return ok
}

// FreqVolume returns the exact frequency-plane volume Π 2^-depth_m of the
// rectangle. It is a (negative) power of two, hence exact in float64.
func (r Rect) FreqVolume() float64 {
	v := 1.0
	for _, n := range r {
		v *= n.Width()
	}
	return v
}

// TotalDepth returns the sum of per-dimension depths: the number of
// aggregation stages separating the element from the data cube.
func (r Rect) TotalDepth() int {
	d := 0
	for _, n := range r {
		d += n.Depth()
	}
	return d
}

// String renders the rectangle as a product of intervals.
func (r Rect) String() string {
	s := ""
	for m, n := range r {
		if m > 0 {
			s += "×"
		}
		s += n.String()
	}
	return s
}

// Key returns a compact comparable key for use in maps. It supports
// rectangles of rank ≤ 8 with per-dimension node indices < 2^16, which
// covers every cube in this reproduction (Table 1 tops out at d=8, n=256,
// i.e. nodes < 512). Key panics outside that envelope.
func (r Rect) Key() Key {
	if len(r) > 8 {
		panic("freq: Key supports rank ≤ 8")
	}
	var k Key
	k.rank = uint8(len(r))
	for m, n := range r {
		if n >= 1<<16 {
			panic("freq: Key supports node indices < 2^16")
		}
		k.nodes[m] = uint16(n)
	}
	return k
}

// Key is a comparable, allocation-free identifier for a Rect.
type Key struct {
	nodes [8]uint16
	rank  uint8
}

// Rect reconstructs the rectangle identified by the key.
func (k Key) Rect() Rect {
	r := make(Rect, k.rank)
	for m := range r {
		r[m] = Node(k.nodes[m])
	}
	return r
}
