package freq

// This file implements the frequency-plane tests of §4.2: non-redundancy
// (no two selected view elements overlap) and completeness (the selected
// elements tile the whole plane), including the recursive Procedure 1.

// NonRedundant reports whether no two rectangles in the set overlap
// (Definition 7 via the frequency-plane criterion: ∀ A≠B, V_A ∩ V_B = 0).
func NonRedundant(set []Rect) bool {
	for i := range set {
		for j := i + 1; j < len(set); j++ {
			if set[i].Overlaps(set[j]) {
				return false
			}
		}
	}
	return true
}

// CoversByVolume reports whether the set tiles the root rectangle exactly:
// every element lies inside root, no two elements overlap, and the summed
// frequency volumes equal the root's volume. For dyadic rectangles these
// three conditions are equivalent to a complete non-redundant tiling, and
// the test is O(k²·d) with exact arithmetic (all volumes are powers of two).
func CoversByVolume(set []Rect, root Rect) bool {
	if !NonRedundant(set) {
		return false
	}
	total := 0.0
	for _, r := range set {
		if !root.Contains(r) {
			return false
		}
		total += r.FreqVolume()
	}
	return total == root.FreqVolume()
}

// Complete implements Procedure 1 of the paper: the set is complete with
// respect to the element root if and only if root is in the set, or the set
// is complete with respect to both the partial and residual children of
// root on at least one dimension. maxDepth[m] bounds the recursion at the
// depth log2(n_m) where dimension m's intervals reach single cells.
//
// Unlike CoversByVolume, Complete does not require non-redundancy: a
// redundant superset of a tiling is still complete.
func Complete(set []Rect, root Rect, maxDepth []int) bool {
	if len(maxDepth) != len(root) {
		panic("freq: maxDepth rank mismatch")
	}
	members := make(map[Key]bool, len(set))
	for _, r := range set {
		members[r.Key()] = true
	}
	memo := make(map[Key]bool)
	return completeRec(members, memo, set, root, maxDepth)
}

func completeRec(members map[Key]bool, memo map[Key]bool, set []Rect, v Rect, maxDepth []int) bool {
	k := v.Key()
	if members[k] {
		return true
	}
	if got, ok := memo[k]; ok {
		return got
	}
	// Prune: if no set element lies inside v, v cannot be assembled from
	// strictly finer pieces, so the recursion is doomed below this point.
	anyInside := false
	for _, s := range set {
		if v.Contains(s) {
			anyInside = true
			break
		}
	}
	result := false
	if anyInside {
		for m := range v {
			if v[m].Depth() >= maxDepth[m] {
				continue
			}
			if completeRec(members, memo, set, v.Child(m, false), maxDepth) &&
				completeRec(members, memo, set, v.Child(m, true), maxDepth) {
				result = true
				break
			}
		}
	}
	memo[k] = result
	return result
}

// IsBasis reports whether the set is a (possibly redundant) basis of the
// root element: complete per Procedure 1 (Definition 8).
func IsBasis(set []Rect, root Rect, maxDepth []int) bool {
	return Complete(set, root, maxDepth)
}

// IsNonRedundantBasis reports whether the set is a non-redundant basis of
// the root element (Definition 9).
func IsNonRedundantBasis(set []Rect, root Rect, maxDepth []int) bool {
	return NonRedundant(set) && Complete(set, root, maxDepth)
}
