package freq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNodeDepth(t *testing.T) {
	cases := map[Node]int{1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 15: 3}
	for n, want := range cases {
		if got := n.Depth(); got != want {
			t.Errorf("Depth(%d)=%d, want %d", n, got, want)
		}
	}
}

func TestNodeDepthPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Depth(0) must panic")
		}
	}()
	Node(0).Depth()
}

func TestChildrenAndParent(t *testing.T) {
	v := Node(5)
	if v.Partial() != 10 || v.Residual() != 11 {
		t.Fatalf("children of 5: %d, %d", v.Partial(), v.Residual())
	}
	if v.Partial().Parent() != v || v.Residual().Parent() != v {
		t.Fatal("Parent must invert child")
	}
	if Root.Parent() != Root {
		t.Fatal("root's parent is itself")
	}
	if !v.Residual().IsResidualChild() || v.Partial().IsResidualChild() {
		t.Fatal("IsResidualChild misclassifies")
	}
	if Root.IsResidualChild() {
		t.Fatal("root is not a residual child")
	}
}

func TestOnPartialPath(t *testing.T) {
	for _, n := range []Node{1, 2, 4, 8, 16} {
		if !n.OnPartialPath() {
			t.Errorf("node %d should be on partial path", n)
		}
	}
	for _, n := range []Node{3, 5, 6, 7, 9} {
		if n.OnPartialPath() {
			t.Errorf("node %d should not be on partial path", n)
		}
	}
}

func TestInterval(t *testing.T) {
	// Node 5 is at depth 2, offset 1: [1/4, 2/4).
	num, den := Node(5).Interval()
	if num != 1 || den != 4 {
		t.Fatalf("Interval(5)=(%d,%d), want (1,4)", num, den)
	}
	num, den = Root.Interval()
	if num != 0 || den != 1 {
		t.Fatalf("Interval(1)=(%d,%d), want (0,1)", num, den)
	}
}

func TestContains(t *testing.T) {
	if !Root.Contains(Node(13)) {
		t.Fatal("root contains everything")
	}
	if !Node(3).Contains(Node(6)) || !Node(3).Contains(Node(7)) {
		t.Fatal("3 contains its children 6 and 7")
	}
	if Node(3).Contains(Node(4)) || Node(3).Contains(Node(5)) {
		t.Fatal("3 must not contain 2's children")
	}
	if Node(6).Contains(Node(3)) {
		t.Fatal("child does not contain parent")
	}
	if !Node(6).Contains(Node(6)) {
		t.Fatal("Contains is reflexive")
	}
}

func TestNestedDisjoint(t *testing.T) {
	if d, ok := Nested(Node(2), Node(5)); !ok || d != 5 {
		t.Fatalf("Nested(2,5)=(%d,%v), want (5,true)", d, ok)
	}
	if d, ok := Nested(Node(5), Node(2)); !ok || d != 5 {
		t.Fatalf("Nested(5,2)=(%d,%v), want (5,true)", d, ok)
	}
	if _, ok := Nested(Node(2), Node(3)); ok {
		t.Fatal("siblings are disjoint")
	}
	if !Disjoint(Node(4), Node(5)) || Disjoint(Node(4), Node(2)) {
		t.Fatal("Disjoint misclassifies")
	}
}

// Property: two dyadic intervals are either disjoint or nested — never
// partially overlapping. Verified against the rational interval arithmetic.
func TestNestedOrDisjointProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		v := Node(a%1023 + 1)
		w := Node(b%1023 + 1)
		vn, vd := v.Interval()
		wn, wd := w.Interval()
		// Compare on the common denominator lcm = max(vd, wd).
		lo1, hi1 := uint64(vn)*uint64(wd), uint64(vn+1)*uint64(wd)
		lo2, hi2 := uint64(wn)*uint64(vd), uint64(wn+1)*uint64(vd)
		overlap := lo1 < hi2 && lo2 < hi1
		_, nested := Nested(v, w)
		return overlap == nested
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWidth(t *testing.T) {
	if Root.Width() != 1 || Node(2).Width() != 0.5 || Node(7).Width() != 0.25 {
		t.Fatal("Width wrong")
	}
}

func TestRectChildAndContains(t *testing.T) {
	r := NewRect(2)
	p := r.Child(0, false)
	q := r.Child(0, true)
	if p[0] != 2 || q[0] != 3 || p[1] != 1 {
		t.Fatalf("children wrong: %v %v", p, q)
	}
	if !r.Contains(p) || !r.Contains(q) || p.Contains(r) {
		t.Fatal("containment wrong")
	}
	if !p.Equal(Rect{2, 1}) || p.Equal(q) {
		t.Fatal("Equal wrong")
	}
	if p.Equal(Rect{2}) {
		t.Fatal("different ranks are not equal")
	}
}

func TestRectIntersect(t *testing.T) {
	// 2-D: r covers x-low half, s covers y-low half; intersection is the
	// low-low quadrant {2,2}.
	r := Rect{2, 1}
	s := Rect{1, 2}
	got, ok := r.Intersect(s)
	if !ok || !got.Equal(Rect{2, 2}) {
		t.Fatalf("Intersect=%v,%v, want {2,2},true", got, ok)
	}
	// Disjoint in dimension 0.
	u := Rect{2, 1}
	v := Rect{3, 2}
	if _, ok := u.Intersect(v); ok {
		t.Fatal("disjoint rects must not intersect")
	}
	if !r.Overlaps(s) || u.Overlaps(v) {
		t.Fatal("Overlaps wrong")
	}
}

func TestRectIntersectRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rank mismatch must panic")
		}
	}()
	Rect{1}.Intersect(Rect{1, 1})
}

func TestFreqVolume(t *testing.T) {
	if NewRect(3).FreqVolume() != 1 {
		t.Fatal("root volume is 1")
	}
	if (Rect{2, 3}).FreqVolume() != 0.25 {
		t.Fatal("two depth-1 intervals give volume 1/4")
	}
	if (Rect{4, 1}).FreqVolume() != 0.25 {
		t.Fatal("depth-2 × root gives volume 1/4")
	}
}

func TestTotalDepthAndString(t *testing.T) {
	r := Rect{4, 3}
	if r.TotalDepth() != 3 {
		t.Fatalf("TotalDepth=%d, want 3", r.TotalDepth())
	}
	if r.String() == "" || Node(0).String() != "invalid" {
		t.Fatal("String broken")
	}
}

func TestKeyRoundTrip(t *testing.T) {
	r := Rect{1, 5, 13, 2}
	if !r.Key().Rect().Equal(r) {
		t.Fatal("Key round trip failed")
	}
	if r.Key() != r.Clone().Key() {
		t.Fatal("equal rects must produce equal keys")
	}
	if r.Key() == (Rect{1, 5, 13, 3}).Key() {
		t.Fatal("distinct rects must produce distinct keys")
	}
}

func TestNonRedundant(t *testing.T) {
	// The pedagogical basis {V1,V5,V6} = {P⁰, R⁰P¹, R⁰R¹} on a 2×2 cube.
	basis := []Rect{{2, 1}, {3, 2}, {3, 3}}
	if !NonRedundant(basis) {
		t.Fatal("{V1,V5,V6} is non-redundant")
	}
	// Adding the root overlaps everything.
	if NonRedundant(append(basis, NewRect(2))) {
		t.Fatal("set containing the root plus anything is redundant")
	}
}

func TestCoversByVolume(t *testing.T) {
	root := NewRect(2)
	complete := []Rect{{2, 1}, {3, 2}, {3, 3}}
	if !CoversByVolume(complete, root) {
		t.Fatal("{V1,V5,V6} tiles the plane")
	}
	incomplete := []Rect{{2, 1}, {3, 2}}
	if CoversByVolume(incomplete, root) {
		t.Fatal("missing the high-high quadrant")
	}
	redundant := []Rect{{2, 1}, {3, 1}, {3, 2}}
	if CoversByVolume(redundant, root) {
		t.Fatal("overlapping set must fail")
	}
	outside := []Rect{{2, 1}, {3, 2}, {3, 3}}
	if CoversByVolume(outside, Rect{2, 1}) {
		t.Fatal("elements outside the root must fail")
	}
}

func TestCompleteProcedure1(t *testing.T) {
	root := NewRect(2)
	maxDepth := []int{1, 1} // a 2×2 cube
	cases := []struct {
		name string
		set  []Rect
		want bool
	}{
		{"root itself", []Rect{{1, 1}}, true},
		{"V1,V5,V6", []Rect{{2, 1}, {3, 2}, {3, 3}}, true},
		{"V1,V4 split on dim0", []Rect{{2, 1}, {3, 1}}, true},
		{"four quadrants", []Rect{{2, 2}, {2, 3}, {3, 2}, {3, 3}}, true},
		{"redundant superset", []Rect{{1, 1}, {2, 1}}, true},
		{"incomplete V1,V5", []Rect{{2, 1}, {3, 2}}, false},
		{"incomplete V3,V7 (Table 2 row)", []Rect{{2, 3}, {1, 2}}, false},
		{"empty", nil, false},
	}
	for _, c := range cases {
		if got := Complete(c.set, root, maxDepth); got != c.want {
			t.Errorf("%s: Complete=%v, want %v", c.name, got, c.want)
		}
		if got := IsBasis(c.set, root, maxDepth); got != c.want {
			t.Errorf("%s: IsBasis=%v, want %v", c.name, got, c.want)
		}
	}
}

func TestIsNonRedundantBasis(t *testing.T) {
	root := NewRect(2)
	maxDepth := []int{1, 1}
	if !IsNonRedundantBasis([]Rect{{2, 1}, {3, 2}, {3, 3}}, root, maxDepth) {
		t.Fatal("{V1,V5,V6} is a non-redundant basis")
	}
	if IsNonRedundantBasis([]Rect{{1, 1}, {2, 1}}, root, maxDepth) {
		t.Fatal("redundant superset is not a non-redundant basis")
	}
}

// Property: volume-based completeness and Procedure 1 agree on random
// non-redundant antichains generated by random tiling splits.
func TestCompletenessAgreementProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		maxDepth := []int{2, 2}
		root := NewRect(2)
		// Generate a random tiling by recursive splitting.
		tiling := randomTiling(r, root, maxDepth)
		if !CoversByVolume(tiling, root) || !Complete(tiling, root, maxDepth) {
			return false
		}
		// Removing any element must break completeness in both tests.
		if len(tiling) > 1 {
			i := r.Intn(len(tiling))
			broken := append(append([]Rect(nil), tiling[:i]...), tiling[i+1:]...)
			if CoversByVolume(broken, root) || Complete(broken, root, maxDepth) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomTiling splits the root into a random complete non-redundant tiling
// (a random wavelet-packet basis, Procedure 2 with random choices).
func randomTiling(r *rand.Rand, v Rect, maxDepth []int) []Rect {
	var splittable []int
	for m := range v {
		if v[m].Depth() < maxDepth[m] {
			splittable = append(splittable, m)
		}
	}
	if len(splittable) == 0 || r.Intn(3) == 0 {
		return []Rect{v}
	}
	m := splittable[r.Intn(len(splittable))]
	out := randomTiling(r, v.Child(m, false), maxDepth)
	return append(out, randomTiling(r, v.Child(m, true), maxDepth)...)
}
