package assembly

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"viewcube/internal/haar"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// canonTree renders a span tree ignoring durations and child order: names
// and attrs (minus parallel_nodes, which legitimately differs between
// serial and parallel runs), with children sorted recursively. Two traced
// executions of the same plan must canonicalise identically however the
// work was scheduled.
func canonTree(n *obs.SpanNode) string {
	if n == nil {
		return ""
	}
	var attrs []string
	for k, v := range n.Attrs {
		if k == "parallel_nodes" {
			continue
		}
		attrs = append(attrs, fmt.Sprintf("%s=%d", k, v))
	}
	sort.Strings(attrs)
	kids := make([]string, 0, len(n.Children))
	for _, c := range n.Children {
		kids = append(kids, canonTree(c))
	}
	sort.Strings(kids)
	return fmt.Sprintf("%s[%s]{%s}", n.Name, strings.Join(attrs, ","), strings.Join(kids, ";"))
}

// TestTracedParallelSpanTreeMatchesSerial is the -race acceptance test for
// concurrency-safe tracing: a traced query executed fully parallel (fork at
// every synthesize node) must produce the same span tree — up to child
// order — as the same query executed serially, with identical results, and
// must actually have forked.
func TestTracedParallelSpanTreeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s := velement.MustSpace(16, 8, 4)
	cube := randomCube(rng, 16, 8, 4)
	store, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}

	serial := NewEngine(s, store)
	serial.SetExecutor(1, 1)
	par := NewEngine(s, store)
	par.SetExecutor(8, 1) // fork at every synthesize node

	forkedOnce := false
	for _, v := range s.AggregatedViews() {
		str := obs.NewTrace("q")
		a, err := serial.Answer(obs.Traced(str), v.Clone())
		if err != nil {
			t.Fatal(err)
		}
		str.Finish()

		ptr := obs.NewTrace("q")
		b, err := par.Answer(obs.Traced(ptr), v.Clone())
		if err != nil {
			t.Fatal(err)
		}
		ptr.Finish()

		if !a.Equal(b, 1e-9) {
			t.Fatalf("view %v: parallel traced result differs from serial", v)
		}
		sc, pc := canonTree(str.Tree()), canonTree(ptr.Tree())
		if sc != pc {
			t.Fatalf("view %v: span trees differ\nserial:\n%s\nparallel:\n%s", v, str, ptr)
		}
		if exec := ptr.Tree().Find("execute"); exec != nil && exec.Attrs["parallel_nodes"] > 0 {
			forkedOnce = true
		}
		want, _ := haar.ApplyRect(cube, v)
		if !a.Equal(want, 1e-9) {
			t.Fatalf("view %v: traced execution wrong vs oracle", v)
		}
	}
	if !forkedOnce {
		t.Fatal("no traced query ever forked; the parallel path was not exercised")
	}
}

// TestTracedConcurrentQueriesIsolated runs traced queries from many
// goroutines through one shared parallel engine: every trace must hold only
// its own spans (ops reconcile per query), which under -race also pins the
// span tree's thread safety.
func TestTracedConcurrentQueriesIsolated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := velement.MustSpace(16, 8)
	cube := randomCube(rng, 16, 8)
	store, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	eng.SetExecutor(8, 1)

	views := s.AggregatedViews()
	wantOps := make([]int64, len(views))
	for i, v := range views {
		tr := obs.NewTrace("q")
		if _, err := eng.Answer(obs.Traced(tr), v.Clone()); err != nil {
			t.Fatal(err)
		}
		tr.Finish()
		wantOps[i] = tr.Tree().SumAttr("ops")
	}

	const goroutines, rounds = 6, 20
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for round := 0; round < rounds; round++ {
				i := (g + round) % len(views)
				tr := obs.NewTrace("q")
				if _, err := eng.Answer(obs.Traced(tr), views[i].Clone()); err != nil {
					errs <- err
					return
				}
				tr.Finish()
				if got := tr.Tree().SumAttr("ops"); got != wantOps[i] {
					errs <- fmt.Errorf("goroutine %d round %d: view %v ops %d, want %d",
						g, round, views[i], got, wantOps[i])
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
