package assembly

import (
	"fmt"
	"sort"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// MultiStore holds materialised measure-vector view elements keyed by their
// frequency rectangle — the vector analogue of Store. Implementations must
// return arrays that callers may read but not mutate.
type MultiStore interface {
	Get(r freq.Rect) (a *ndarray.MultiArray, ok bool)
	Put(r freq.Rect, a *ndarray.MultiArray) error
	Delete(r freq.Rect) error
	Elements() []freq.Rect
}

// MemMultiStore is an in-memory MultiStore. Like MemStore it is safe for
// concurrent reads while no mutation is in flight.
type MemMultiStore struct {
	items map[freq.Key]*ndarray.MultiArray
	cells int
}

// NewMemMultiStore returns an empty in-memory vector element store.
func NewMemMultiStore() *MemMultiStore {
	return &MemMultiStore{items: make(map[freq.Key]*ndarray.MultiArray)}
}

// Get implements MultiStore.
func (m *MemMultiStore) Get(r freq.Rect) (*ndarray.MultiArray, bool) {
	a, ok := m.items[r.Key()]
	return a, ok
}

// Put implements MultiStore.
func (m *MemMultiStore) Put(r freq.Rect, a *ndarray.MultiArray) error {
	k := r.Key()
	if old, ok := m.items[k]; ok {
		m.cells -= old.Size()
	}
	m.items[k] = a
	m.cells += a.Size()
	return nil
}

// Delete implements MultiStore.
func (m *MemMultiStore) Delete(r freq.Rect) error {
	k := r.Key()
	if old, ok := m.items[k]; ok {
		m.cells -= old.Size()
		delete(m.items, k)
	}
	return nil
}

// Elements implements MultiStore (sorted, like MemStore).
func (m *MemMultiStore) Elements() []freq.Rect {
	out := make([]freq.Rect, 0, len(m.items))
	for k := range m.items {
		out = append(out, k.Rect())
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

// Cells returns the total number of stored scalars (width × cells summed
// over elements) — the storage cost of the vector set.
func (m *MemMultiStore) Cells() int { return m.cells }

// ComponentStore adapts one component plane of a MultiStore to the scalar
// Store interface. It is how the measure-vector engine keeps the classic
// scalar machinery (adaptive reselection, the public Engine API, incremental
// maintenance) alive without duplicating data: a scalar Engine over a
// ComponentStore sees exactly the component-c plane of every stored vector
// element, backed by the same memory.
//
// Semantics of the mutating methods are chosen for the adaptive
// reconfiguration protocol:
//
//   - Get returns the fixed component header of the stored vector (zero
//     copy). Callers may read it only.
//   - Put of the very header Get returned (the incremental-maintenance
//     write-back pattern of UpdateCell) is a no-op beyond notifying
//     OnMutate: the mutation already happened in shared storage.
//   - Any other Put (adaptive phase 1 materialising a missing element)
//     triggers Assemble, which materialises the FULL vector element from
//     the vector store and stores it — the scalar argument is discarded,
//     because component c alone cannot represent the vector cell. Plan
//     geometry is width-independent, so the element sets the scalar
//     adaptive machinery selects remain exactly the sets it would select
//     over a private scalar store.
//   - Delete removes the whole vector element.
//
// OnMutate (if set) runs after every mutation so the owner can invalidate
// plan/element caches across all component views at once.
type ComponentStore struct {
	MS   MultiStore
	Comp int
	// Assemble materialises the full vector element for r (typically
	// VectorEngine.Answer over the current vector store) when a Put cannot
	// be satisfied by write-back.
	Assemble func(r freq.Rect) (*ndarray.MultiArray, error)
	// OnMutate, if non-nil, runs after every successful Put/Delete.
	OnMutate func()
}

// Get implements Store: the stored vector's component plane, shared.
func (c *ComponentStore) Get(r freq.Rect) (*ndarray.Array, bool) {
	ma, ok := c.MS.Get(r)
	if !ok {
		return nil, false
	}
	return ma.Component(c.Comp), true
}

// Put implements Store (see the type comment for the two cases).
func (c *ComponentStore) Put(r freq.Rect, a *ndarray.Array) error {
	if ma, ok := c.MS.Get(r); ok && ma.Component(c.Comp) == a {
		// Write-back of our own shared header: storage already updated.
		c.mutated()
		return nil
	}
	if c.Assemble == nil {
		return fmt.Errorf("assembly: component store cannot materialise %v (no assembler)", r)
	}
	ma, err := c.Assemble(r)
	if err != nil {
		return fmt.Errorf("assembly: materialising vector element %v: %w", r, err)
	}
	if err := c.MS.Put(r, ma); err != nil {
		return err
	}
	c.mutated()
	return nil
}

// Delete implements Store: the whole vector element goes.
func (c *ComponentStore) Delete(r freq.Rect) error {
	if err := c.MS.Delete(r); err != nil {
		return err
	}
	c.mutated()
	return nil
}

// Elements implements Store.
func (c *ComponentStore) Elements() []freq.Rect { return c.MS.Elements() }

func (c *ComponentStore) mutated() {
	if c.OnMutate != nil {
		c.OnMutate()
	}
}
