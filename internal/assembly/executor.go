package assembly

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
)

// DefaultParallelCells is the default fan-out threshold: a synthesize node
// forks its partial subtree onto another worker only when the node's own
// interleave work (its cell count) is at least this large. Below it the
// goroutine handoff costs more than the arithmetic it hides.
const DefaultParallelCells = 4096

// Executor runs plan trees against an engine's store using pooled scratch
// buffers and bounded intra-query parallelism. It owns every buffer it
// leases: intermediates are recycled the moment the next kernel has
// consumed them — on error paths too — so steady-state execution allocates
// only the final result (and not even that, when the pool can serve it).
//
// Independent synthesize subtrees run on a bounded worker pool: a
// synthesize node whose own cell count reaches the threshold tries to
// acquire a slot and, if one is free, computes its partial child on a new
// goroutine while the current goroutine computes the residual child. The
// try-acquire never blocks, so the recursion cannot deadlock however deep
// the fan-out. Traced executions parallelise identically: spans carry
// explicit parents and attach atomically (see obs.Span), so the forked
// subtree records under its own span from its own goroutine.
//
// An Executor is immutable after construction and safe for any number of
// concurrent Run calls; the worker slots are shared across them.
type Executor struct {
	eng *Engine
	// sem holds the extra worker slots: capacity workers−1, because the
	// calling goroutine is itself the first worker.
	sem       chan struct{}
	threshold int
}

// newExecutor builds an executor for eng. workers ≤ 0 defaults to
// GOMAXPROCS; parallelCells ≤ 0 defaults to DefaultParallelCells.
// workers = 1 yields a fully serial executor.
func newExecutor(eng *Engine, workers, parallelCells int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if parallelCells <= 0 {
		parallelCells = DefaultParallelCells
	}
	return &Executor{
		eng:       eng,
		sem:       make(chan struct{}, workers-1),
		threshold: parallelCells,
	}
}

// execState is the per-query mutable state shared by the goroutines of one
// Run call.
type execState struct {
	// traced records whether the query carries a live trace. Only traced
	// executions pay for span bookkeeping — building the span-name
	// strings dominates steady-state allocations otherwise.
	traced bool
	// parallelNodes counts synthesize nodes that actually forked.
	parallelNodes atomic.Int64
}

// Run executes a plan and returns the produced element. The result is
// owned by the caller. While x carries a trace, one span is recorded per
// plan node plus a "parallel_nodes" attribute on the root span counting
// synthesize nodes that forked onto another worker.
func (ex *Executor) Run(x *obs.ExecCtx, p *Plan) (*ndarray.Array, error) {
	st := &execState{traced: x.Tracing()}
	if !st.traced {
		return ex.node(x, st, p)
	}
	sp := x.Start("execute " + p.Rect.String())
	sp.SetAttr("total_ops", int64(p.Ops))
	defer sp.End()
	out, err := ex.node(x.Under(sp), st, p)
	sp.SetAttr("parallel_nodes", st.parallelNodes.Load())
	return out, err
}

// lease takes a scratch buffer from the pool, accounting the hit/miss on
// the engine's metrics.
func (ex *Executor) lease(shape ...int) *ndarray.Array {
	a, hit := ndarray.Scratch(shape...)
	if hit {
		ex.eng.met.PoolHits.Inc()
	} else {
		ex.eng.met.PoolMisses.Inc()
	}
	return a
}

// leaseCopy leases a buffer shaped like a and copies a into it.
func (ex *Executor) leaseCopy(a *ndarray.Array) *ndarray.Array {
	var shapeBuf [8]int
	dst := ex.lease(a.ShapeInto(shapeBuf[:0])...)
	copy(dst.Data(), a.Data())
	return dst
}

// node executes one plan node. Every array it returns is private to the
// caller (never shared with the store or another query), so callers may
// Recycle it freely; every array it consumes it either recycles or returns.
// The per-node span/counter bookkeeping mirrors the modelled cost exactly:
// each span's "ops" attr is that node's own work, so summing "ops" over the
// span tree reproduces PlanCost.
func (ex *Executor) node(x *obs.ExecCtx, st *execState, p *Plan) (*ndarray.Array, error) {
	e := ex.eng
	switch p.Kind {
	case PlanStored:
		var sp *obs.Span
		if st.traced {
			sp = x.Start("stored " + p.Rect.String())
			defer sp.End()
			x = x.Under(sp)
		}
		a, ok := e.get(x, p.Rect)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references %v but it is not stored", p.Rect)
		}
		e.met.StoredNodes.Inc()
		e.met.CellsRead.Add(uint64(a.Size()))
		sp.SetAttr("cells", int64(a.Size()))
		if e.cloning {
			// The store already handed us a private copy; copying again
			// would be the second of two copies where one suffices.
			return a, nil
		}
		return ex.leaseCopy(a), nil

	case PlanAggregate:
		var sp *obs.Span
		if st.traced {
			sp = x.Start("aggregate " + p.Rect.String() + " from " + p.Source.String())
			sp.SetAttr("ops", int64(p.Ops))
			defer sp.End()
			x = x.Under(sp)
		}
		src, ok := e.get(x, p.Source)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references stored ancestor %v but it is absent", p.Source)
		}
		e.met.AggregateNodes.Inc()
		e.met.CellsRead.Add(uint64(src.Size()))
		e.met.OpsModeled.Add(uint64(p.Ops))
		sp.SetAttr("cells", int64(src.Size()))
		folds := p.Folds
		if folds == nil {
			// Planner-built aggregates carry their folds; hand-built plans
			// derive them here.
			var err error
			folds, err = haar.PathFolds(p.Source, p.Rect)
			if err != nil {
				return nil, err
			}
		}
		cur := src
		var shapeBuf [8]int
		for _, f := range folds {
			block := 1 << uint(f.K)
			if cur.Dim(f.Dim)%block != 0 {
				if cur != src {
					ndarray.Recycle(cur)
				}
				return nil, fmt.Errorf("assembly: stored %v extent on dim %d is not divisible by 2^%d", p.Source, f.Dim, f.K)
			}
			outShape := cur.ShapeInto(shapeBuf[:0])
			outShape[f.Dim] /= block
			dst := ex.lease(outShape...)
			err := cur.FoldKInto(f.Dim, f.K, f.Signs, dst)
			if cur != src {
				ndarray.Recycle(cur)
			}
			if err != nil {
				ndarray.Recycle(dst)
				return nil, err
			}
			cur = dst
		}
		if cur == src {
			// Source == Rect never plans as an aggregate, but stay correct
			// if a hand-built plan does it.
			if e.cloning {
				return src, nil
			}
			return ex.leaseCopy(src), nil
		}
		if e.cloning {
			// src was a private copy from the store; its storage is ours
			// to recycle now that the first fold has consumed it.
			ndarray.Recycle(src)
		}
		return cur, nil

	case PlanSynthesize:
		ownOps := p.Ops - p.Partial.Ops - p.Residual.Ops
		if st.traced {
			sp := x.Start(fmt.Sprintf("synthesize %s dim=%d", p.Rect.String(), p.Dim))
			sp.SetAttr("ops", int64(ownOps))
			defer sp.End()
			x = x.Under(sp)
		}
		e.met.SynthesizeNodes.Inc()
		e.met.OpsModeled.Add(uint64(ownOps))

		var part, res *ndarray.Array
		var perr, rerr error
		forked := false
		if ownOps >= ex.threshold {
			// Try-acquire: fork the partial subtree only if a worker slot
			// is free right now. Blocking here could deadlock (ancestors
			// hold no slots, but sibling queries might hold them all).
			select {
			case ex.sem <- struct{}{}:
				forked = true
				st.parallelNodes.Add(1)
				done := make(chan struct{})
				go func(x *obs.ExecCtx) {
					defer close(done)
					defer func() { <-ex.sem }()
					part, perr = ex.node(x, st, p.Partial)
				}(x)
				res, rerr = ex.node(x, st, p.Residual)
				<-done
			default:
			}
		}
		if !forked {
			part, perr = ex.node(x, st, p.Partial)
			if perr == nil {
				res, rerr = ex.node(x, st, p.Residual)
			}
		}
		if perr != nil || rerr != nil {
			// Whichever child did materialise is ours; hand it back.
			if part != nil {
				ndarray.Recycle(part)
			}
			if res != nil {
				ndarray.Recycle(res)
			}
			if perr != nil {
				return nil, perr
			}
			return nil, rerr
		}
		var shapeBuf [8]int
		outShape := part.ShapeInto(shapeBuf[:0])
		outShape[p.Dim] *= 2
		dst := ex.lease(outShape...)
		err := ndarray.InterleaveInto(p.Dim, part, res, dst)
		ndarray.Recycle(part)
		ndarray.Recycle(res)
		if err != nil {
			ndarray.Recycle(dst)
			return nil, err
		}
		return dst, nil

	default:
		return nil, fmt.Errorf("assembly: unknown plan kind %v", p.Kind)
	}
}
