package assembly

import (
	"fmt"
	"math"
	"runtime"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// VectorEngine answers measure-vector view-element queries from a
// MultiStore: the same Procedure 3 planning (plan geometry is
// width-independent, so the scalar planner is reused verbatim) and the same
// pooled, bounded-parallel execution discipline as Engine, with every
// kernel applied per component plane. One VectorEngine replaces the w
// scalar engines a component-per-engine design would need, reading each
// stored element once per query instead of once per component.
type VectorEngine struct {
	space *velement.Space
	store MultiStore
	width int
	met   *obs.AssemblyMetrics
	ex    *vectorExecutor
}

// NewVectorEngine returns a vector engine over the given space and store
// for the given component width.
func NewVectorEngine(space *velement.Space, store MultiStore, width int) *VectorEngine {
	e := &VectorEngine{space: space, store: store, width: width, met: obs.NewAssemblyMetrics(nil)}
	e.ex = newVectorExecutor(e, 0, 0)
	return e
}

// SetExecutor replaces the executor configuration (same contract as
// Engine.SetExecutor). Call during wiring.
func (e *VectorEngine) SetExecutor(workers, parallelCells int) {
	e.ex = newVectorExecutor(e, workers, parallelCells)
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (e *VectorEngine) SetMetrics(m *obs.AssemblyMetrics) {
	if m == nil {
		m = obs.NewAssemblyMetrics(nil)
	}
	e.met = m
}

// Space returns the engine's view element space.
func (e *VectorEngine) Space() *velement.Space { return e.space }

// Store returns the engine's vector element store.
func (e *VectorEngine) Store() MultiStore { return e.store }

// Width returns the measure-vector component width.
func (e *VectorEngine) Width() int { return e.width }

// ComputePlan implements plan.PlanSource: the Procedure 3 cost recursion
// over the vector store's rectangle set. Costs are modelled in logical
// cells (as everywhere else); the executor does width× the scalar work per
// modelled op.
func (e *VectorEngine) ComputePlan(r freq.Rect) (*Plan, error) {
	if !e.space.Valid(r) {
		return nil, fmt.Errorf("assembly: %v is not a view element of the space", r)
	}
	e.met.Plans.Inc()
	pl := newPlanner(e.space, e.store.Elements())
	plan, cost := pl.plan(r)
	if math.IsInf(cost, 1) {
		return nil, fmt.Errorf("assembly: stored set cannot generate %v (incomplete)", r)
	}
	return plan, nil
}

// Answer plans and executes the query for element r. The result is a
// caller-owned (pool-leased) vector; hand it back with
// ndarray.RecycleMulti when done, or keep it forever.
func (e *VectorEngine) Answer(x *obs.ExecCtx, r freq.Rect) (*ndarray.MultiArray, error) {
	plan, err := e.ComputePlan(r)
	if err != nil {
		return nil, err
	}
	return e.Execute(x, plan)
}

// Execute runs a plan and returns the produced vector element (caller
// owned, pool-leased). While x carries a trace, one span is recorded per
// plan node, with a measure_width attribute on the root execute span so
// traces distinguish vector from scalar execution.
func (e *VectorEngine) Execute(x *obs.ExecCtx, p *Plan) (*ndarray.MultiArray, error) {
	e.met.Executions.Inc()
	return e.ex.Run(x, p)
}

// vectorExecutor mirrors Executor over MultiArray kernels: pooled vector
// scratch buffers, fused per-component cascades, try-acquire fork
// parallelism. Thresholds are in logical cells, matching the scalar
// executor's plan-cost units.
type vectorExecutor struct {
	eng       *VectorEngine
	sem       chan struct{}
	threshold int
}

func newVectorExecutor(eng *VectorEngine, workers, parallelCells int) *vectorExecutor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if parallelCells <= 0 {
		parallelCells = DefaultParallelCells
	}
	return &vectorExecutor{
		eng:       eng,
		sem:       make(chan struct{}, workers-1),
		threshold: parallelCells,
	}
}

// Run executes a plan tree. The result is owned by the caller.
func (ex *vectorExecutor) Run(x *obs.ExecCtx, p *Plan) (*ndarray.MultiArray, error) {
	st := &execState{traced: x.Tracing()}
	if !st.traced {
		return ex.node(x, st, p)
	}
	sp := x.Start("execute " + p.Rect.String())
	sp.SetAttr("total_ops", int64(p.Ops))
	sp.SetAttr("measure_width", int64(ex.eng.width))
	defer sp.End()
	out, err := ex.node(x.Under(sp), st, p)
	sp.SetAttr("parallel_nodes", st.parallelNodes.Load())
	return out, err
}

func (ex *vectorExecutor) lease(shape ...int) *ndarray.MultiArray {
	a, hit := ndarray.ScratchMulti(ex.eng.width, shape...)
	if hit {
		ex.eng.met.PoolHits.Inc()
	} else {
		ex.eng.met.PoolMisses.Inc()
	}
	return a
}

func (ex *vectorExecutor) leaseCopy(a *ndarray.MultiArray) *ndarray.MultiArray {
	var shapeBuf [8]int
	dst := ex.lease(a.Component(0).ShapeInto(shapeBuf[:0])...)
	copy(dst.Data(), a.Data())
	return dst
}

// node executes one plan node; ownership and span/counter bookkeeping
// mirror Executor.node exactly, with cell accounting in stored scalars
// (width × cells) since that is the memory actually moved.
func (ex *vectorExecutor) node(x *obs.ExecCtx, st *execState, p *Plan) (*ndarray.MultiArray, error) {
	e := ex.eng
	switch p.Kind {
	case PlanStored:
		var sp *obs.Span
		if st.traced {
			sp = x.Start("stored " + p.Rect.String())
			defer sp.End()
			x = x.Under(sp)
		}
		a, ok := e.store.Get(p.Rect)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references %v but it is not stored", p.Rect)
		}
		e.met.StoredNodes.Inc()
		e.met.CellsRead.Add(uint64(a.Size()))
		sp.SetAttr("cells", int64(a.Size()))
		return ex.leaseCopy(a), nil

	case PlanAggregate:
		var sp *obs.Span
		if st.traced {
			sp = x.Start("aggregate " + p.Rect.String() + " from " + p.Source.String())
			sp.SetAttr("ops", int64(p.Ops))
			defer sp.End()
			x = x.Under(sp)
		}
		src, ok := e.store.Get(p.Source)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references stored ancestor %v but it is absent", p.Source)
		}
		e.met.AggregateNodes.Inc()
		e.met.CellsRead.Add(uint64(src.Size()))
		e.met.OpsModeled.Add(uint64(p.Ops))
		sp.SetAttr("cells", int64(src.Size()))
		folds := p.Folds
		if folds == nil {
			var err error
			folds, err = haar.PathFolds(p.Source, p.Rect)
			if err != nil {
				return nil, err
			}
		}
		cur := src
		var shapeBuf [8]int
		for _, f := range folds {
			block := 1 << uint(f.K)
			if cur.Dim(f.Dim)%block != 0 {
				if cur != src {
					ndarray.RecycleMulti(cur)
				}
				return nil, fmt.Errorf("assembly: stored %v extent on dim %d is not divisible by 2^%d", p.Source, f.Dim, f.K)
			}
			outShape := cur.Component(0).ShapeInto(shapeBuf[:0])
			outShape[f.Dim] /= block
			dst := ex.lease(outShape...)
			err := cur.FoldKInto(f.Dim, f.K, f.Signs, dst)
			if cur != src {
				ndarray.RecycleMulti(cur)
			}
			if err != nil {
				ndarray.RecycleMulti(dst)
				return nil, err
			}
			cur = dst
		}
		if cur == src {
			return ex.leaseCopy(src), nil
		}
		return cur, nil

	case PlanSynthesize:
		ownOps := p.Ops - p.Partial.Ops - p.Residual.Ops
		if st.traced {
			sp := x.Start(fmt.Sprintf("synthesize %s dim=%d", p.Rect.String(), p.Dim))
			sp.SetAttr("ops", int64(ownOps))
			defer sp.End()
			x = x.Under(sp)
		}
		e.met.SynthesizeNodes.Inc()
		e.met.OpsModeled.Add(uint64(ownOps))

		var part, res *ndarray.MultiArray
		var perr, rerr error
		forked := false
		if ownOps >= ex.threshold {
			select {
			case ex.sem <- struct{}{}:
				forked = true
				st.parallelNodes.Add(1)
				done := make(chan struct{})
				go func(x *obs.ExecCtx) {
					defer close(done)
					defer func() { <-ex.sem }()
					part, perr = ex.node(x, st, p.Partial)
				}(x)
				res, rerr = ex.node(x, st, p.Residual)
				<-done
			default:
			}
		}
		if !forked {
			part, perr = ex.node(x, st, p.Partial)
			if perr == nil {
				res, rerr = ex.node(x, st, p.Residual)
			}
		}
		if perr != nil || rerr != nil {
			if part != nil {
				ndarray.RecycleMulti(part)
			}
			if res != nil {
				ndarray.RecycleMulti(res)
			}
			if perr != nil {
				return nil, perr
			}
			return nil, rerr
		}
		var shapeBuf [8]int
		outShape := part.Component(0).ShapeInto(shapeBuf[:0])
		outShape[p.Dim] *= 2
		dst := ex.lease(outShape...)
		err := ndarray.InterleaveMultiInto(p.Dim, part, res, dst)
		ndarray.RecycleMulti(part)
		ndarray.RecycleMulti(res)
		if err != nil {
			ndarray.RecycleMulti(dst)
			return nil, err
		}
		return dst, nil

	default:
		return nil, fmt.Errorf("assembly: unknown plan kind %v", p.Kind)
	}
}

// UpdateCellMulti applies a per-component delta vector to the cube cell at
// idx across every element of the vector store — the measure-vector form of
// UpdateCell. Each stored vector element changes in exactly one cell per
// component, by ±delta[c] (linearity holds per component).
func UpdateCellMulti(space *velement.Space, st MultiStore, delta []float64, idx []int) error {
	if len(idx) != space.Rank() {
		return fmt.Errorf("assembly: index rank %d does not match space rank %d", len(idx), space.Rank())
	}
	shape := space.Shape()
	for m, i := range idx {
		if i < 0 || i >= shape[m] {
			return fmt.Errorf("assembly: index %v out of bounds for shape %v", idx, shape)
		}
	}
	zero := true
	for _, d := range delta {
		if d != 0 {
			zero = false
			break
		}
	}
	if zero {
		return nil
	}
	for _, r := range st.Elements() {
		a, ok := st.Get(r)
		if !ok {
			return fmt.Errorf("assembly: element %v listed but not retrievable", r)
		}
		if len(delta) != a.Width() {
			return fmt.Errorf("assembly: delta width %d does not match stored width %d", len(delta), a.Width())
		}
		elemIdx, sign, err := haar.CellContribution(r, idx)
		if err != nil {
			return err
		}
		for c := 0; c < a.Width(); c++ {
			a.Component(c).Add(float64(sign)*delta[c], elemIdx...)
		}
		if err := st.Put(r, a); err != nil {
			return fmt.Errorf("assembly: persisting update to %v: %w", r, err)
		}
	}
	return nil
}
