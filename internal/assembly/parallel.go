package assembly

import (
	"fmt"
	"runtime"
	"sync"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

// MaterializeParallel materialises a set of view elements from the cube
// using a pool of workers. Each worker runs its own Materializer over the
// shared read-only cube (so cascade prefixes are shared within a worker but
// not across workers — the classic parallelism/work trade-off, measured by
// BenchmarkAblationParallelMaterialize); the single writer goroutine is the
// only one touching the store, so any Store implementation works.
// workers ≤ 1 falls back to the serial path.
func MaterializeParallel(space *velement.Space, cube *ndarray.Array, set []freq.Rect, store Store, workers int) error {
	if workers <= 1 || len(set) <= 1 {
		mat, err := NewMaterializer(space, cube)
		if err != nil {
			return err
		}
		return mat.Materialize(set, store)
	}
	if workers > len(set) {
		workers = len(set)
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}
	for _, r := range set {
		if !space.Valid(r) {
			return fmt.Errorf("assembly: %v is not a view element of the space", r)
		}
	}

	type produced struct {
		rect freq.Rect
		arr  *ndarray.Array
		err  error
	}
	jobs := make(chan freq.Rect)
	results := make(chan produced, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mat, err := NewMaterializer(space, cube)
			if err != nil {
				results <- produced{err: err}
				for range jobs {
					// Drain so the feeder never blocks.
				}
				return
			}
			for r := range jobs {
				// ElementOwned hands over the worker-local cache's own
				// array (cloning only the root, which aliases the shared
				// cube), so each element is allocated once, not twice. The
				// cache is gone before anyone can mutate the store.
				a, err := mat.ElementOwned(r)
				if err != nil {
					results <- produced{err: err}
					continue
				}
				results <- produced{rect: r, arr: a}
			}
		}()
	}
	go func() {
		for _, r := range set {
			jobs <- r.Clone()
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var firstErr error
	for p := range results {
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue
		}
		if firstErr != nil {
			continue // drain remaining results
		}
		if err := store.Put(p.rect, p.arr); err != nil {
			firstErr = err
		}
	}
	return firstErr
}
