// Package assembly turns the cost-model machinery of package core into an
// operational engine: it materialises selected view elements from a data
// cube and answers view-element queries by dynamically assembling them —
// aggregating stored elements down the element graph and synthesising
// parents from partial/residual children via perfect reconstruction. This
// is the "dynamic assembly of views" of the paper's title, executed on real
// arrays rather than on the cost model.
package assembly

import (
	"fmt"
	"sort"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// Store holds materialised view elements keyed by their frequency
// rectangle. Implementations must return arrays that callers may read but
// not mutate.
type Store interface {
	// Get returns the materialised element, or ok=false if absent.
	Get(r freq.Rect) (a *ndarray.Array, ok bool)
	// Put stores (or replaces) a materialised element.
	Put(r freq.Rect, a *ndarray.Array) error
	// Delete removes an element if present.
	Delete(r freq.Rect) error
	// Elements lists the rectangles currently stored, in no defined order.
	Elements() []freq.Rect
}

// CtxStore is optionally implemented by stores that can record per-query
// spans on element reads. The assembly engine forwards its execution
// context through GetCtx when the store supports it, so store access shows
// up in query traces without the store holding any per-query state.
type CtxStore interface {
	GetCtx(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, bool)
}

// CloningStore is optionally implemented by stores whose Get already
// returns a private copy of the element (e.g. a disk-backed store that
// decodes or clones out of its cache). When ClonesOnGet reports true the
// executor takes ownership of Get results directly instead of copying them
// a second time — one copy per element, not two. Stores that return
// shared arrays (MemStore) must not implement this or must report false.
type CloningStore interface {
	ClonesOnGet() bool
}

// MemStore is an in-memory Store. The zero value is not usable; construct
// with NewMemStore. MemStore is not safe for concurrent mutation, but any
// number of concurrent readers may call Get/Elements while no mutation is
// in flight (reads do not touch shared mutable state).
type MemStore struct {
	items map[freq.Key]*ndarray.Array
	cells int
}

// NewMemStore returns an empty in-memory element store.
func NewMemStore() *MemStore {
	return &MemStore{items: make(map[freq.Key]*ndarray.Array)}
}

// Get implements Store.
func (m *MemStore) Get(r freq.Rect) (*ndarray.Array, bool) {
	a, ok := m.items[r.Key()]
	return a, ok
}

// Put implements Store.
func (m *MemStore) Put(r freq.Rect, a *ndarray.Array) error {
	k := r.Key()
	if old, ok := m.items[k]; ok {
		m.cells -= old.Size()
	}
	m.items[k] = a
	m.cells += a.Size()
	return nil
}

// Delete implements Store.
func (m *MemStore) Delete(r freq.Rect) error {
	k := r.Key()
	if old, ok := m.items[k]; ok {
		m.cells -= old.Size()
		delete(m.items, k)
	}
	return nil
}

// Elements implements Store.
func (m *MemStore) Elements() []freq.Rect {
	out := make([]freq.Rect, 0, len(m.items))
	for k := range m.items {
		out = append(out, k.Rect())
	}
	sort.Slice(out, func(i, j int) bool { return less(out[i], out[j]) })
	return out
}

func less(a, b freq.Rect) bool {
	for m := range a {
		if a[m] != b[m] {
			return a[m] < b[m]
		}
	}
	return false
}

// Cells returns the total number of stored cells (the storage cost).
func (m *MemStore) Cells() int { return m.cells }

// Materializer generates view elements from a data cube, caching every
// intermediate element it produces so that elements sharing cascade
// prefixes are computed once. The cube itself is held as the root element.
type Materializer struct {
	space *velement.Space
	cache map[freq.Key]*ndarray.Array
}

// NewMaterializer returns a materialiser over the given cube. The cube's
// shape must match the space.
func NewMaterializer(space *velement.Space, cube *ndarray.Array) (*Materializer, error) {
	shape := cube.Shape()
	want := space.Shape()
	if len(shape) != len(want) {
		return nil, fmt.Errorf("assembly: cube rank %d does not match space rank %d", len(shape), len(want))
	}
	for m := range shape {
		if shape[m] != want[m] {
			return nil, fmt.Errorf("assembly: cube shape %v does not match space shape %v", shape, want)
		}
	}
	mat := &Materializer{space: space, cache: make(map[freq.Key]*ndarray.Array)}
	mat.cache[space.Root().Key()] = cube
	return mat, nil
}

// GeneratedCells returns the total number of cells the materialiser has
// produced so far (excluding the root cube itself). Every generated cell
// costs exactly one addition or subtraction, so this is the exact operation
// count of all cascades run, with prefix sharing accounted for.
func (mat *Materializer) GeneratedCells() int {
	total := 0
	rootKey := mat.space.Root().Key()
	for k, a := range mat.cache {
		if k == rootKey {
			continue
		}
		total += a.Size()
	}
	return total
}

// Element returns the materialised array for the view element r, computing
// it (and caching every intermediate stage) if necessary. The returned
// array is shared with the materialiser's cache: read-only for the caller.
func (mat *Materializer) Element(r freq.Rect) (*ndarray.Array, error) {
	if !mat.space.Valid(r) {
		return nil, fmt.Errorf("assembly: %v is not a view element of the space", r)
	}
	return mat.element(r)
}

// ElementOwned returns the materialised array for r without the defensive
// copy Element callers otherwise need: the root element (whose cache entry
// IS the caller's cube) comes back as a clone, while every other element is
// the cache's own array, handed over for keeps. The array remains readable
// by the materialiser for prefix sharing, so the caller must not mutate it
// until the materialiser is discarded — the contract Materialize and
// MaterializeParallel satisfy by construction (stores are only mutated
// after materialisation ends).
func (mat *Materializer) ElementOwned(r freq.Rect) (*ndarray.Array, error) {
	a, err := mat.Element(r)
	if err != nil {
		return nil, err
	}
	if r.Key() == mat.space.Root().Key() {
		return a.Clone(), nil
	}
	return a, nil
}

func (mat *Materializer) element(r freq.Rect) (*ndarray.Array, error) {
	if a, ok := mat.cache[r.Key()]; ok {
		return a, nil
	}
	// Undo the last cascade step on the deepest dimension: the parent is r
	// with that node's final P/R stage removed. Recursing on parents walks
	// back to the root, sharing every prefix.
	dim := -1
	for m := range r {
		if r[m].Depth() > 0 && (dim < 0 || r[m].Depth() > r[dim].Depth()) {
			dim = m
		}
	}
	if dim < 0 {
		return nil, fmt.Errorf("assembly: root element missing from cache")
	}
	parentRect := r.Clone()
	parentRect[dim] = r[dim].Parent()
	parent, err := mat.element(parentRect)
	if err != nil {
		return nil, err
	}
	var a *ndarray.Array
	if r[dim].IsResidualChild() {
		a, err = haar.Residual(parent, dim)
	} else {
		a, err = haar.Partial(parent, dim)
	}
	if err != nil {
		return nil, err
	}
	mat.cache[r.Key()] = a
	return a, nil
}

// Materialize computes every element of the set and stores it. Elements
// sharing cascade prefixes are generated incrementally.
func (mat *Materializer) Materialize(set []freq.Rect, store Store) error {
	for _, r := range set {
		a, err := mat.Element(r)
		if err != nil {
			return err
		}
		if err := store.Put(r, a.Clone()); err != nil {
			return err
		}
	}
	return nil
}

// MaterializeSet is a convenience wrapper: materialise a set from a cube
// into a fresh in-memory store.
func MaterializeSet(space *velement.Space, cube *ndarray.Array, set []freq.Rect) (*MemStore, error) {
	mat, err := NewMaterializer(space, cube)
	if err != nil {
		return nil, err
	}
	store := NewMemStore()
	if err := mat.Materialize(set, store); err != nil {
		return nil, err
	}
	return store, nil
}
