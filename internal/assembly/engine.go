package assembly

import (
	"fmt"
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// PlanKind names the three ways a view element can be produced.
type PlanKind int

const (
	// PlanStored reads the element directly from the store.
	PlanStored PlanKind = iota
	// PlanAggregate cascades partial/residual aggregations down from a
	// stored ancestor (the F legs of Eq. 28).
	PlanAggregate
	// PlanSynthesize perfectly reconstructs the element from its partial
	// and residual children on one dimension (Eq. 3–4 / Eq. 32).
	PlanSynthesize
)

func (k PlanKind) String() string {
	switch k {
	case PlanStored:
		return "stored"
	case PlanAggregate:
		return "aggregate"
	case PlanSynthesize:
		return "synthesize"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is the operator tree that produces one view element. Its structure
// is exactly the argmin structure of Procedure 3.
type Plan struct {
	Rect freq.Rect
	Kind PlanKind

	// Source is the stored ancestor for PlanAggregate.
	Source freq.Rect
	// Dim is the synthesis dimension for PlanSynthesize.
	Dim int
	// Partial and Residual are the child plans for PlanSynthesize.
	Partial, Residual *Plan

	// Ops is the modelled number of add/subtract operations of this node
	// and its subtree (0 for stored elements).
	Ops int
}

// Engine answers view-element queries from a store of materialised
// elements, planning each answer with the Procedure 3 cost recursion and
// executing it with the Haar operators. The engine never touches the
// original cube: everything is assembled from the store.
type Engine struct {
	space *velement.Space
	store Store
	met   *obs.AssemblyMetrics
	trace *obs.Trace
}

// NewEngine returns an engine over the given space and store.
func NewEngine(space *velement.Space, store Store) *Engine {
	return &Engine{space: space, store: store, met: obs.NewAssemblyMetrics(nil)}
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (e *Engine) SetMetrics(m *obs.AssemblyMetrics) {
	if m == nil {
		m = obs.NewAssemblyMetrics(nil)
	}
	e.met = m
}

// SetTrace attaches (or with nil detaches) a per-query trace. While one is
// attached, Plan records a "plan" span and Execute records one span per
// plan node, carrying the cells read and modelled ops of each step.
func (e *Engine) SetTrace(t *obs.Trace) { e.trace = t }

// Space returns the engine's view element space.
func (e *Engine) Space() *velement.Space { return e.space }

// Store returns the engine's element store.
func (e *Engine) Store() Store { return e.store }

// Plan returns the minimum-cost operator tree producing element r from the
// stored set, or an error if the stored set cannot generate r.
func (e *Engine) Plan(r freq.Rect) (*Plan, error) {
	if !e.space.Valid(r) {
		return nil, fmt.Errorf("assembly: %v is not a view element of the space", r)
	}
	var sp *obs.Span
	if e.trace != nil {
		sp = e.trace.Start("plan " + r.String())
		defer sp.End()
	}
	e.met.Plans.Inc()
	pl := e.planner()
	plan, cost := pl.plan(r)
	if math.IsInf(cost, 1) {
		return nil, fmt.Errorf("assembly: stored set cannot generate %v (incomplete)", r)
	}
	// "plan_ops", not "ops": the execute spans below account the same work
	// node by node, and summing "ops" over the tree must count it once.
	sp.SetAttr("plan_ops", int64(plan.Ops))
	sp.SetAttr("stored_elements", int64(len(pl.stored)))
	return plan, nil
}

// Answer plans and executes the query for element r, returning the
// materialised result. The result is freshly allocated and owned by the
// caller.
func (e *Engine) Answer(r freq.Rect) (*ndarray.Array, error) {
	plan, err := e.Plan(r)
	if err != nil {
		return nil, err
	}
	return e.Execute(plan)
}

// Execute runs a plan and returns the produced element.
func (e *Engine) Execute(p *Plan) (*ndarray.Array, error) {
	e.met.Executions.Inc()
	var sp *obs.Span
	if e.trace != nil {
		sp = e.trace.Start("execute " + p.Rect.String())
		sp.SetAttr("total_ops", int64(p.Ops))
		defer sp.End()
	}
	return e.exec(p)
}

// exec recursively runs plan nodes, recording one span and one counter
// bump per node. The "ops" attr of each span is that node's own modelled
// add/subtract work (not the subtree's), so summing "ops" over the span
// tree reproduces PlanCost exactly.
func (e *Engine) exec(p *Plan) (*ndarray.Array, error) {
	switch p.Kind {
	case PlanStored:
		var sp *obs.Span
		if e.trace != nil {
			sp = e.trace.Start("stored " + p.Rect.String())
			defer sp.End()
		}
		a, ok := e.store.Get(p.Rect)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references %v but it is not stored", p.Rect)
		}
		e.met.StoredNodes.Inc()
		e.met.CellsRead.Add(uint64(a.Size()))
		sp.SetAttr("cells", int64(a.Size()))
		return a.Clone(), nil
	case PlanAggregate:
		var sp *obs.Span
		if e.trace != nil {
			sp = e.trace.Start("aggregate " + p.Rect.String() + " from " + p.Source.String())
			sp.SetAttr("ops", int64(p.Ops))
			defer sp.End()
		}
		src, ok := e.store.Get(p.Source)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references stored ancestor %v but it is absent", p.Source)
		}
		e.met.AggregateNodes.Inc()
		e.met.CellsRead.Add(uint64(src.Size()))
		e.met.OpsModeled.Add(uint64(p.Ops))
		sp.SetAttr("cells", int64(src.Size()))
		return haar.ApplyPath(src, p.Source, p.Rect)
	case PlanSynthesize:
		ownOps := p.Ops - p.Partial.Ops - p.Residual.Ops
		var sp *obs.Span
		if e.trace != nil {
			sp = e.trace.Start(fmt.Sprintf("synthesize %s dim=%d", p.Rect.String(), p.Dim))
			sp.SetAttr("ops", int64(ownOps))
			defer sp.End()
		}
		e.met.SynthesizeNodes.Inc()
		e.met.OpsModeled.Add(uint64(ownOps))
		part, err := e.exec(p.Partial)
		if err != nil {
			return nil, err
		}
		res, err := e.exec(p.Residual)
		if err != nil {
			return nil, err
		}
		return haar.Reconstruct(p.Dim, part, res)
	default:
		return nil, fmt.Errorf("assembly: unknown plan kind %v", p.Kind)
	}
}

// planner mirrors the Procedure 3 recursion of core.SetEvaluator but
// records the argmin decisions so they can be executed. It is rebuilt per
// Plan call; the memo makes repeated sub-elements cheap within one call.
type planner struct {
	e      *Engine
	stored []freq.Rect
	vols   []int
	memo   map[freq.Key]plannedEntry
}

type plannedEntry struct {
	plan *Plan
	cost float64
}

func (e *Engine) planner() *planner {
	stored := e.store.Elements()
	pl := &planner{
		e:      e,
		stored: stored,
		vols:   make([]int, len(stored)),
		memo:   make(map[freq.Key]plannedEntry),
	}
	for i, r := range stored {
		pl.vols[i] = e.space.Volume(r)
	}
	return pl
}

func (pl *planner) plan(r freq.Rect) (*Plan, float64) {
	k := r.Key()
	if got, ok := pl.memo[k]; ok {
		return got.plan, got.cost
	}
	s := pl.e.space
	volR := s.Volume(r)
	var best *Plan
	bestCost := math.Inf(1)
	for i, vs := range pl.stored {
		if !vs.Contains(r) {
			continue
		}
		cost := float64(pl.vols[i] - volR)
		if cost < bestCost {
			bestCost = cost
			if vs.Equal(r) {
				best = &Plan{Rect: r.Clone(), Kind: PlanStored}
			} else {
				best = &Plan{Rect: r.Clone(), Kind: PlanAggregate, Source: vs.Clone(), Ops: pl.vols[i] - volR}
			}
		}
	}
	// Seed the memo with the aggregation-only answer before recursing:
	// synthesis recursion below may revisit r through a different path, and
	// the seeded bound keeps that recursion finite (children are always
	// strictly deeper, so true cycles are impossible, but the bound prunes).
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	for m := 0; m < s.Rank(); m++ {
		p, res, ok := s.Children(r, m)
		if !ok {
			continue
		}
		pPlan, pCost := pl.plan(p)
		rPlan, rCost := pl.plan(res)
		cost := float64(volR) + pCost + rCost
		if cost < bestCost {
			bestCost = cost
			best = &Plan{
				Rect:     r.Clone(),
				Kind:     PlanSynthesize,
				Dim:      m,
				Partial:  pPlan,
				Residual: rPlan,
				Ops:      volR + pPlan.Ops + rPlan.Ops,
			}
		}
	}
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	return best, bestCost
}

// PlanCost returns the modelled operation count of the plan tree. It
// matches core.SetEvaluator.ElementCost for the same stored set.
func PlanCost(p *Plan) int {
	if p == nil {
		return 0
	}
	return p.Ops
}
