package assembly

import (
	"fmt"
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// PlanKind names the three ways a view element can be produced.
type PlanKind int

const (
	// PlanStored reads the element directly from the store.
	PlanStored PlanKind = iota
	// PlanAggregate cascades partial/residual aggregations down from a
	// stored ancestor (the F legs of Eq. 28).
	PlanAggregate
	// PlanSynthesize perfectly reconstructs the element from its partial
	// and residual children on one dimension (Eq. 3–4 / Eq. 32).
	PlanSynthesize
)

func (k PlanKind) String() string {
	switch k {
	case PlanStored:
		return "stored"
	case PlanAggregate:
		return "aggregate"
	case PlanSynthesize:
		return "synthesize"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is the operator tree that produces one view element. Its structure
// is exactly the argmin structure of Procedure 3.
type Plan struct {
	Rect freq.Rect
	Kind PlanKind

	// Source is the stored ancestor for PlanAggregate.
	Source freq.Rect
	// Dim is the synthesis dimension for PlanSynthesize.
	Dim int
	// Partial and Residual are the child plans for PlanSynthesize.
	Partial, Residual *Plan

	// Ops is the modelled number of add/subtract operations of this node
	// and its subtree (0 for stored elements).
	Ops int

	// Folds caches the fused per-dimension cascades for PlanAggregate
	// (Source → Rect), precomputed at plan time so execution does not
	// re-derive them per query. May be nil on hand-built plans; the
	// executor then falls back to haar.PathFolds.
	Folds []haar.Fold
}

// Engine answers view-element queries from a store of materialised
// elements, planning each answer with the Procedure 3 cost recursion and
// executing it with the Haar operators. The engine never touches the
// original cube: everything is assembled from the store.
//
// The engine holds only immutable planning state (space, store handle,
// metrics wiring): answering a query writes nothing through the receiver,
// so any number of Plan/Execute calls may run concurrently as long as the
// store itself is safe for concurrent reads. Per-query state (the trace)
// arrives via an explicit *obs.ExecCtx.
type Engine struct {
	space *velement.Space
	store Store
	met   *obs.AssemblyMetrics
	ex    *Executor
	// cloning records whether the store's Get already returns private
	// copies (CloningStore), letting the executor skip its defensive copy
	// on stored plan nodes.
	cloning bool
}

// NewEngine returns an engine over the given space and store, executing
// plans with a default Executor (GOMAXPROCS workers, DefaultParallelCells
// fan-out threshold); tune it with SetExecutor.
func NewEngine(space *velement.Space, store Store) *Engine {
	e := &Engine{space: space, store: store, met: obs.NewAssemblyMetrics(nil)}
	if cs, ok := store.(CloningStore); ok && cs.ClonesOnGet() {
		e.cloning = true
	}
	e.ex = newExecutor(e, 0, 0)
	return e
}

// SetExecutor replaces the engine's executor configuration: workers bounds
// intra-query parallelism (≤ 0 means GOMAXPROCS, 1 means serial) and
// parallelCells is the minimum own-cell count at which a synthesize node
// forks (≤ 0 means DefaultParallelCells). Call it during wiring, before
// the engine is shared across goroutines.
func (e *Engine) SetExecutor(workers, parallelCells int) {
	e.ex = newExecutor(e, workers, parallelCells)
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
// Call it during wiring, before the engine is shared across goroutines:
// the instruments themselves are concurrency-safe atomics, but the handle
// swap is not synchronised.
func (e *Engine) SetMetrics(m *obs.AssemblyMetrics) {
	if m == nil {
		m = obs.NewAssemblyMetrics(nil)
	}
	e.met = m
}

// Space returns the engine's view element space.
func (e *Engine) Space() *velement.Space { return e.space }

// Store returns the engine's element store.
func (e *Engine) Store() Store { return e.store }

// Plan returns the minimum-cost operator tree producing element r from the
// stored set, or an error if the stored set cannot generate r. While x
// carries a trace, a "plan" span is recorded; a nil x means untraced.
//
// Plan always runs the Procedure 3 DP. The engine stack's hot path instead
// goes through plan.Planner, which caches ComputePlan results per
// materialised-set epoch.
func (e *Engine) Plan(x *obs.ExecCtx, r freq.Rect) (*Plan, error) {
	sp := x.Start("plan " + r.String())
	defer sp.End()
	plan, err := e.ComputePlan(r)
	if err != nil {
		return nil, err
	}
	// "plan_ops", not "ops": the execute spans below account the same work
	// node by node, and summing "ops" over the tree must count it once.
	sp.SetAttr("plan_ops", int64(plan.Ops))
	return plan, nil
}

// ComputePlan runs the Procedure 3 cost recursion for element r with no
// span bookkeeping — the raw planning primitive the cached planner wraps.
// The returned tree is freshly built, immutable under execution, and safe
// to share between concurrent executors.
func (e *Engine) ComputePlan(r freq.Rect) (*Plan, error) {
	if !e.space.Valid(r) {
		return nil, fmt.Errorf("assembly: %v is not a view element of the space", r)
	}
	e.met.Plans.Inc()
	pl := e.planner()
	plan, cost := pl.plan(r)
	if math.IsInf(cost, 1) {
		return nil, fmt.Errorf("assembly: stored set cannot generate %v (incomplete)", r)
	}
	return plan, nil
}

// Answer plans and executes the query for element r, returning the
// materialised result. The result is freshly allocated and owned by the
// caller.
func (e *Engine) Answer(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error) {
	plan, err := e.Plan(x, r)
	if err != nil {
		return nil, err
	}
	return e.Execute(x, plan)
}

// Execute runs a plan and returns the produced element. The result is
// owned by the caller. Execution goes through the engine's Executor:
// pooled scratch buffers, fused cascade kernels, and (for untraced
// queries) bounded intra-query parallelism. While x carries a trace, one
// span is recorded per plan node.
func (e *Engine) Execute(x *obs.ExecCtx, p *Plan) (*ndarray.Array, error) {
	e.met.Executions.Inc()
	return e.ex.Run(x, p)
}

// get reads one stored element, forwarding the execution context to stores
// that can record per-query spans (CtxStore).
func (e *Engine) get(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, bool) {
	if cs, ok := e.store.(CtxStore); ok {
		return cs.GetCtx(x, r)
	}
	return e.store.Get(r)
}

// planner mirrors the Procedure 3 recursion of core.SetEvaluator but
// records the argmin decisions so they can be executed. It is rebuilt per
// Plan call; the memo makes repeated sub-elements cheap within one call.
// It depends only on the space geometry and the stored rectangle set —
// never on cell contents or measure width — so the scalar Engine and the
// measure-vector VectorEngine share it unchanged.
type planner struct {
	space  *velement.Space
	stored []freq.Rect
	vols   []int
	memo   map[freq.Key]plannedEntry
}

type plannedEntry struct {
	plan *Plan
	cost float64
}

// newPlanner builds the Procedure 3 DP state for one stored set.
func newPlanner(space *velement.Space, stored []freq.Rect) *planner {
	pl := &planner{
		space:  space,
		stored: stored,
		vols:   make([]int, len(stored)),
		memo:   make(map[freq.Key]plannedEntry),
	}
	for i, r := range stored {
		pl.vols[i] = space.Volume(r)
	}
	return pl
}

func (e *Engine) planner() *planner {
	return newPlanner(e.space, e.store.Elements())
}

func (pl *planner) plan(r freq.Rect) (*Plan, float64) {
	k := r.Key()
	if got, ok := pl.memo[k]; ok {
		return got.plan, got.cost
	}
	s := pl.space
	volR := s.Volume(r)
	var best *Plan
	bestCost := math.Inf(1)
	for i, vs := range pl.stored {
		if !vs.Contains(r) {
			continue
		}
		cost := float64(pl.vols[i] - volR)
		if cost < bestCost {
			bestCost = cost
			if vs.Equal(r) {
				best = &Plan{Rect: r.Clone(), Kind: PlanStored}
			} else {
				best = &Plan{Rect: r.Clone(), Kind: PlanAggregate, Source: vs.Clone(), Ops: pl.vols[i] - volR}
			}
		}
	}
	if best != nil && best.Kind == PlanAggregate {
		// vs.Contains(r) held for the winning source, so PathFolds cannot
		// fail; a nil Folds on any unexpected error just defers derivation
		// to the executor (which will surface it).
		best.Folds, _ = haar.PathFolds(best.Source, best.Rect)
	}
	// Seed the memo with the aggregation-only answer before recursing:
	// synthesis recursion below may revisit r through a different path, and
	// the seeded bound keeps that recursion finite (children are always
	// strictly deeper, so true cycles are impossible, but the bound prunes).
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	for m := 0; m < s.Rank(); m++ {
		p, res, ok := s.Children(r, m)
		if !ok {
			continue
		}
		pPlan, pCost := pl.plan(p)
		rPlan, rCost := pl.plan(res)
		cost := float64(volR) + pCost + rCost
		if cost < bestCost {
			bestCost = cost
			best = &Plan{
				Rect:     r.Clone(),
				Kind:     PlanSynthesize,
				Dim:      m,
				Partial:  pPlan,
				Residual: rPlan,
				Ops:      volR + pPlan.Ops + rPlan.Ops,
			}
		}
	}
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	return best, bestCost
}

// PlanCost returns the modelled operation count of the plan tree. It
// matches core.SetEvaluator.ElementCost for the same stored set.
func PlanCost(p *Plan) int {
	if p == nil {
		return 0
	}
	return p.Ops
}
