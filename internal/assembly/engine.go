package assembly

import (
	"fmt"
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

// PlanKind names the three ways a view element can be produced.
type PlanKind int

const (
	// PlanStored reads the element directly from the store.
	PlanStored PlanKind = iota
	// PlanAggregate cascades partial/residual aggregations down from a
	// stored ancestor (the F legs of Eq. 28).
	PlanAggregate
	// PlanSynthesize perfectly reconstructs the element from its partial
	// and residual children on one dimension (Eq. 3–4 / Eq. 32).
	PlanSynthesize
)

func (k PlanKind) String() string {
	switch k {
	case PlanStored:
		return "stored"
	case PlanAggregate:
		return "aggregate"
	case PlanSynthesize:
		return "synthesize"
	default:
		return fmt.Sprintf("PlanKind(%d)", int(k))
	}
}

// Plan is the operator tree that produces one view element. Its structure
// is exactly the argmin structure of Procedure 3.
type Plan struct {
	Rect freq.Rect
	Kind PlanKind

	// Source is the stored ancestor for PlanAggregate.
	Source freq.Rect
	// Dim is the synthesis dimension for PlanSynthesize.
	Dim int
	// Partial and Residual are the child plans for PlanSynthesize.
	Partial, Residual *Plan

	// Ops is the modelled number of add/subtract operations of this node
	// and its subtree (0 for stored elements).
	Ops int
}

// Engine answers view-element queries from a store of materialised
// elements, planning each answer with the Procedure 3 cost recursion and
// executing it with the Haar operators. The engine never touches the
// original cube: everything is assembled from the store.
type Engine struct {
	space *velement.Space
	store Store
}

// NewEngine returns an engine over the given space and store.
func NewEngine(space *velement.Space, store Store) *Engine {
	return &Engine{space: space, store: store}
}

// Space returns the engine's view element space.
func (e *Engine) Space() *velement.Space { return e.space }

// Store returns the engine's element store.
func (e *Engine) Store() Store { return e.store }

// Plan returns the minimum-cost operator tree producing element r from the
// stored set, or an error if the stored set cannot generate r.
func (e *Engine) Plan(r freq.Rect) (*Plan, error) {
	if !e.space.Valid(r) {
		return nil, fmt.Errorf("assembly: %v is not a view element of the space", r)
	}
	pl := e.planner()
	plan, cost := pl.plan(r)
	if math.IsInf(cost, 1) {
		return nil, fmt.Errorf("assembly: stored set cannot generate %v (incomplete)", r)
	}
	return plan, nil
}

// Answer plans and executes the query for element r, returning the
// materialised result. The result is freshly allocated and owned by the
// caller.
func (e *Engine) Answer(r freq.Rect) (*ndarray.Array, error) {
	plan, err := e.Plan(r)
	if err != nil {
		return nil, err
	}
	return e.Execute(plan)
}

// Execute runs a plan and returns the produced element.
func (e *Engine) Execute(p *Plan) (*ndarray.Array, error) {
	switch p.Kind {
	case PlanStored:
		a, ok := e.store.Get(p.Rect)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references %v but it is not stored", p.Rect)
		}
		return a.Clone(), nil
	case PlanAggregate:
		src, ok := e.store.Get(p.Source)
		if !ok {
			return nil, fmt.Errorf("assembly: plan references stored ancestor %v but it is absent", p.Source)
		}
		return haar.ApplyPath(src, p.Source, p.Rect)
	case PlanSynthesize:
		part, err := e.Execute(p.Partial)
		if err != nil {
			return nil, err
		}
		res, err := e.Execute(p.Residual)
		if err != nil {
			return nil, err
		}
		return haar.Reconstruct(p.Dim, part, res)
	default:
		return nil, fmt.Errorf("assembly: unknown plan kind %v", p.Kind)
	}
}

// planner mirrors the Procedure 3 recursion of core.SetEvaluator but
// records the argmin decisions so they can be executed. It is rebuilt per
// Plan call; the memo makes repeated sub-elements cheap within one call.
type planner struct {
	e      *Engine
	stored []freq.Rect
	vols   []int
	memo   map[freq.Key]plannedEntry
}

type plannedEntry struct {
	plan *Plan
	cost float64
}

func (e *Engine) planner() *planner {
	stored := e.store.Elements()
	pl := &planner{
		e:      e,
		stored: stored,
		vols:   make([]int, len(stored)),
		memo:   make(map[freq.Key]plannedEntry),
	}
	for i, r := range stored {
		pl.vols[i] = e.space.Volume(r)
	}
	return pl
}

func (pl *planner) plan(r freq.Rect) (*Plan, float64) {
	k := r.Key()
	if got, ok := pl.memo[k]; ok {
		return got.plan, got.cost
	}
	s := pl.e.space
	volR := s.Volume(r)
	var best *Plan
	bestCost := math.Inf(1)
	for i, vs := range pl.stored {
		if !vs.Contains(r) {
			continue
		}
		cost := float64(pl.vols[i] - volR)
		if cost < bestCost {
			bestCost = cost
			if vs.Equal(r) {
				best = &Plan{Rect: r.Clone(), Kind: PlanStored}
			} else {
				best = &Plan{Rect: r.Clone(), Kind: PlanAggregate, Source: vs.Clone(), Ops: pl.vols[i] - volR}
			}
		}
	}
	// Seed the memo with the aggregation-only answer before recursing:
	// synthesis recursion below may revisit r through a different path, and
	// the seeded bound keeps that recursion finite (children are always
	// strictly deeper, so true cycles are impossible, but the bound prunes).
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	for m := 0; m < s.Rank(); m++ {
		p, res, ok := s.Children(r, m)
		if !ok {
			continue
		}
		pPlan, pCost := pl.plan(p)
		rPlan, rCost := pl.plan(res)
		cost := float64(volR) + pCost + rCost
		if cost < bestCost {
			bestCost = cost
			best = &Plan{
				Rect:     r.Clone(),
				Kind:     PlanSynthesize,
				Dim:      m,
				Partial:  pPlan,
				Residual: rPlan,
				Ops:      volR + pPlan.Ops + rPlan.Ops,
			}
		}
	}
	pl.memo[k] = plannedEntry{plan: best, cost: bestCost}
	return best, bestCost
}

// PlanCost returns the modelled operation count of the plan tree. It
// matches core.SetEvaluator.ElementCost for the same stored set.
func PlanCost(p *Plan) int {
	if p == nil {
		return 0
	}
	return p.Ops
}
