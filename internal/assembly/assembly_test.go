package assembly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/core"
	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

func randomCube(r *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64()*100 - 50)
	}
	return a
}

func TestMemStore(t *testing.T) {
	st := NewMemStore()
	r := freq.Rect{2, 1}
	if _, ok := st.Get(r); ok {
		t.Fatal("empty store must miss")
	}
	a := ndarray.New(2, 4)
	if err := st.Put(r, a); err != nil {
		t.Fatal(err)
	}
	if got, ok := st.Get(r); !ok || got != a {
		t.Fatal("Get must return the stored array")
	}
	if st.Cells() != 8 {
		t.Fatalf("cells %d, want 8", st.Cells())
	}
	// Replacement updates accounting.
	if err := st.Put(r, ndarray.New(2, 2)); err != nil {
		t.Fatal(err)
	}
	if st.Cells() != 4 {
		t.Fatalf("cells after replace %d, want 4", st.Cells())
	}
	if err := st.Delete(r); err != nil {
		t.Fatal(err)
	}
	if st.Cells() != 0 || len(st.Elements()) != 0 {
		t.Fatal("delete must empty the store")
	}
	if err := st.Delete(r); err != nil {
		t.Fatal("deleting an absent element is not an error")
	}
}

func TestMemStoreElementsSorted(t *testing.T) {
	st := NewMemStore()
	rects := []freq.Rect{{3, 1}, {1, 2}, {2, 2}}
	for _, r := range rects {
		if err := st.Put(r, ndarray.New(1)); err != nil {
			t.Fatal(err)
		}
	}
	got := st.Elements()
	if len(got) != 3 {
		t.Fatalf("%d elements, want 3", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !less(got[i-1], got[i]) {
			t.Fatal("Elements must be sorted deterministically")
		}
	}
}

func TestMaterializerShapeMismatch(t *testing.T) {
	s := velement.MustSpace(4, 4)
	if _, err := NewMaterializer(s, ndarray.New(4, 8)); err == nil {
		t.Fatal("want error for shape mismatch")
	}
	if _, err := NewMaterializer(s, ndarray.New(4)); err == nil {
		t.Fatal("want error for rank mismatch")
	}
}

func TestMaterializerMatchesDirectCascade(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(8, 4)
	cube := randomCube(rng, 8, 4)
	mat, err := NewMaterializer(s, cube)
	if err != nil {
		t.Fatal(err)
	}
	s.Elements(func(r freq.Rect) bool {
		got, err := mat.Element(r.Clone())
		if err != nil {
			t.Fatal(err)
		}
		want, err := haar.ApplyRect(cube, r)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%v: materialised element differs from direct cascade", r)
		}
		return true
	})
}

func TestMaterializerRejectsInvalidElement(t *testing.T) {
	s := velement.MustSpace(4, 4)
	mat, _ := NewMaterializer(s, ndarray.New(4, 4))
	if _, err := mat.Element(freq.Rect{16, 1}); err == nil {
		t.Fatal("want error for out-of-space element")
	}
}

func TestMaterializeSetStoresClones(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := velement.MustSpace(4, 4)
	cube := randomCube(rng, 4, 4)
	basis := velement.WaveletBasis(s)
	store, err := MaterializeSet(s, cube, basis)
	if err != nil {
		t.Fatal(err)
	}
	if len(store.Elements()) != len(basis) {
		t.Fatalf("stored %d, want %d", len(store.Elements()), len(basis))
	}
	// Non-expansiveness: a non-redundant basis stores exactly Vol(A) cells.
	if store.Cells() != s.CubeVolume() {
		t.Fatalf("stored cells %d, want %d", store.Cells(), s.CubeVolume())
	}
	// Mutating a stored array must not corrupt the materialiser cache.
	a, _ := store.Get(basis[0])
	a.Fill(12345)
	store2, err := MaterializeSet(s, cube, basis)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := store2.Get(basis[0])
	if b.At(make([]int, s.Rank())...) == 12345 && b.Size() > 1 {
		t.Fatal("stores must not alias each other")
	}
}

func TestEngineAnswersEveryElementFromWaveletBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := velement.MustSpace(4, 4)
	cube := randomCube(rng, 4, 4)
	store, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	s.Elements(func(r freq.Rect) bool {
		got, err := eng.Answer(nil, r.Clone())
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		want, _ := haar.ApplyRect(cube, r)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("%v: assembled element differs from direct computation (maxdiff %g)",
				r, got.MaxAbsDiff(want))
		}
		return true
	})
}

func TestEngineAnswerFromCubeOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := velement.MustSpace(8, 4)
	cube := randomCube(rng, 8, 4)
	store := NewMemStore()
	if err := store.Put(s.Root(), cube.Clone()); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	// Every aggregated view must come out exactly right.
	for _, v := range s.AggregatedViews() {
		got, err := eng.Answer(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v wrong", v)
		}
	}
}

func TestEngineIncompleteStore(t *testing.T) {
	s := velement.MustSpace(4, 4)
	store := NewMemStore()
	// Store only one quadrant-ish element; the cube is not reconstructible.
	if err := store.Put(freq.Rect{2, 1}, ndarray.New(2, 4)); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	if _, err := eng.Answer(nil, s.Root()); err == nil {
		t.Fatal("want error for unreachable element")
	}
	if _, err := eng.Answer(nil, freq.Rect{99, 1}); err == nil {
		t.Fatal("want error for invalid rectangle")
	}
	// The stored element itself and its descendants remain answerable.
	if _, err := eng.Answer(nil, freq.Rect{2, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Answer(nil, freq.Rect{4, 1}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanKindsAndOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := velement.MustSpace(2, 2)
	cube := randomCube(rng, 2, 2)
	// Pedagogical basis {V1,V5,V6}.
	basis := []freq.Rect{{2, 1}, {3, 2}, {3, 3}}
	store, err := MaterializeSet(s, cube, basis)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)

	// V1 is stored: plan must be a direct read with zero ops.
	p, err := eng.Plan(nil, freq.Rect{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanStored || PlanCost(p) != 0 {
		t.Fatalf("stored plan: kind %v ops %d", p.Kind, p.Ops)
	}

	// V2 (total aggregation) aggregates from V1 at cost 1.
	p, err = eng.Plan(nil, freq.Rect{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanAggregate || PlanCost(p) != 1 {
		t.Fatalf("V2 plan: kind %v ops %d, want aggregate/1", p.Kind, p.Ops)
	}

	// V7 must be synthesised from V2 and V5 at total cost 3 (Table 2).
	p, err = eng.Plan(nil, freq.Rect{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanSynthesize || PlanCost(p) != 3 {
		t.Fatalf("V7 plan: kind %v ops %d, want synthesize/3", p.Kind, p.Ops)
	}
	if p.Dim != 0 {
		t.Fatalf("V7 synthesis dim %d, want 0", p.Dim)
	}

	if PlanCost(nil) != 0 {
		t.Fatal("PlanCost(nil) must be 0")
	}
	for _, k := range []PlanKind{PlanStored, PlanAggregate, PlanSynthesize, PlanKind(9)} {
		if k.String() == "" {
			t.Fatal("PlanKind.String must be non-empty")
		}
	}
}

// Plan costs must agree with the Procedure 3 evaluator of package core for
// the same stored set — the engine executes exactly the modelled plans.
func TestPlanCostMatchesProcedure3(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(4, 4)
		basis := velement.RandomPacketBasis(s, rng, 0.3)
		ev := core.NewSetEvaluator(s, basis)
		store := NewMemStore()
		for _, r := range basis {
			if err := store.Put(r, ndarray.New(s.ElementShape(r)...)); err != nil {
				return false
			}
		}
		eng := NewEngine(s, store)
		ok := true
		s.Elements(func(r freq.Rect) bool {
			want := ev.ElementCost(r)
			plan, err := eng.Plan(nil, r.Clone())
			if err != nil {
				ok = !math.IsInf(want, 1) == false // error iff model says unreachable
				return ok
			}
			if float64(PlanCost(plan)) != want {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end property: for a random packet basis and a random cube, every
// aggregated view assembled by the engine equals the directly computed one.
func TestAssemblyCorrectnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(4, 8)
		cube := randomCube(rng, 4, 8)
		basis := velement.RandomPacketBasis(s, rng, 0.25)
		store, err := MaterializeSet(s, cube, basis)
		if err != nil {
			return false
		}
		eng := NewEngine(s, store)
		for _, v := range s.AggregatedViews() {
			got, err := eng.Answer(nil, v)
			if err != nil {
				return false
			}
			want, _ := haar.ApplyRect(cube, v)
			if !got.Equal(want, 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestExecuteMissingStoredElement(t *testing.T) {
	s := velement.MustSpace(2, 2)
	store := NewMemStore()
	eng := NewEngine(s, store)
	// Hand-built plan referencing an element the store does not have.
	p := &Plan{Rect: freq.Rect{1, 1}, Kind: PlanStored}
	if _, err := eng.Execute(nil, p); err == nil {
		t.Fatal("want error for missing stored element")
	}
	p = &Plan{Rect: freq.Rect{2, 1}, Kind: PlanAggregate, Source: freq.Rect{1, 1}}
	if _, err := eng.Execute(nil, p); err == nil {
		t.Fatal("want error for missing aggregation source")
	}
	p = &Plan{Rect: freq.Rect{1, 1}, Kind: PlanKind(42)}
	if _, err := eng.Execute(nil, p); err == nil {
		t.Fatal("want error for unknown plan kind")
	}
}

func TestMaterializeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	s := velement.MustSpace(16, 16)
	cube := randomCube(rng, 16, 16)
	set := append(velement.WaveletBasis(s), s.AggregatedViews()...)
	serial, err := MaterializeSet(s, cube, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 4, 99} {
		par := NewMemStore()
		if err := MaterializeParallel(s, cube, set, par, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(par.Elements()) != len(serial.Elements()) {
			t.Fatalf("workers=%d: element count mismatch", workers)
		}
		for _, r := range serial.Elements() {
			want, _ := serial.Get(r)
			got, ok := par.Get(r)
			if !ok || !got.Equal(want, 1e-9) {
				t.Fatalf("workers=%d: element %v differs", workers, r)
			}
		}
	}
}

func TestMaterializeParallelInvalidElement(t *testing.T) {
	s := velement.MustSpace(4, 4)
	cube := ndarray.New(4, 4)
	bad := []freq.Rect{{2, 1}, {64, 1}, {3, 1}}
	if err := MaterializeParallel(s, cube, bad, NewMemStore(), 4); err == nil {
		t.Fatal("want error for invalid element")
	}
}

func TestMaterializeParallelEmptySet(t *testing.T) {
	s := velement.MustSpace(4, 4)
	if err := MaterializeParallel(s, ndarray.New(4, 4), nil, NewMemStore(), 4); err != nil {
		t.Fatal(err)
	}
}
