package assembly

import (
	"math/rand"
	"sync"
	"testing"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// TestExecutorForcedParallelMatchesOracle forces every synthesize node to
// fan out (threshold 1, plenty of workers) and checks each element against
// the direct cascade oracle — the pooled parallel path must be bit-exact
// with the naive one.
func TestExecutorForcedParallelMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := velement.MustSpace(8, 4, 4)
	cube := randomCube(rng, 8, 4, 4)
	store, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	eng.SetExecutor(8, 1)
	s.Elements(func(r freq.Rect) bool {
		got, err := eng.Answer(nil, r.Clone())
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		want, _ := haar.ApplyRect(cube, r)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("%v: parallel pooled execution differs from oracle (maxdiff %g)",
				r, got.MaxAbsDiff(want))
		}
		return true
	})
}

// TestExecutorSerialExecutorMatchesOracle pins the executor to one worker
// (pure pooled-serial path) as the control for the parallel test above.
func TestExecutorSerialMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	s := velement.MustSpace(8, 8)
	cube := randomCube(rng, 8, 8)
	store := NewMemStore()
	if err := store.Put(s.Root(), cube.Clone()); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	eng.SetExecutor(1, 0)
	for _, v := range s.AggregatedViews() {
		got, err := eng.Answer(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("view %v wrong under serial executor", v)
		}
	}
}

// TestExecutorResultIsPrivate ensures executor results never alias the
// store's arrays (MemStore hands out shared arrays; the executor must copy
// them even when no operator applies).
func TestExecutorResultIsPrivate(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	s := velement.MustSpace(4, 4)
	cube := randomCube(rng, 4, 4)
	store := NewMemStore()
	if err := store.Put(s.Root(), cube); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	got, err := eng.Answer(nil, s.Root())
	if err != nil {
		t.Fatal(err)
	}
	if &got.Data()[0] == &cube.Data()[0] {
		t.Fatal("executor returned the store's own array")
	}
	got.Fill(0)
	if cube.Data()[0] == 0 && cube.Data()[1] == 0 {
		t.Fatal("mutating the result corrupted the store")
	}
}

// TestConcurrentExecutorScratchIsolation is the -race scratch-isolation
// test: many goroutines repeatedly execute (and then poison) every
// aggregated view through one shared engine with aggressive fan-out. If two
// queries ever shared a scratch buffer, the poisoning Fill would corrupt a
// neighbour's result (caught by the Equal check) or trip the race detector.
func TestConcurrentExecutorScratchIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	s := velement.MustSpace(16, 8)
	cube := randomCube(rng, 16, 8)
	store, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	eng.SetExecutor(8, 1) // fork at every synthesize node

	views := s.AggregatedViews()
	want := make([]*ndarray.Array, len(views))
	for i, v := range views {
		want[i], _ = haar.ApplyRect(cube, v)
	}

	const goroutines = 8
	const rounds = 30
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				i := (g + round) % len(views)
				got, err := eng.Answer(nil, views[i].Clone())
				if err != nil {
					errs <- err
					return
				}
				if !got.Equal(want[i], 1e-9) {
					t.Errorf("goroutine %d round %d: view %v corrupted (maxdiff %g)",
						g, round, views[i], got.MaxAbsDiff(want[i]))
					return
				}
				// Poison the buffer, then recycle it: the next query to
				// lease it must fully overwrite the poison.
				got.Fill(-1e308)
				ndarray.Recycle(got)
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestExecutorPoolCounters checks the viewcube_exec_pool_{hits,misses}
// wiring: repeated execution of the same plan must start hitting the pool.
func TestExecutorPoolCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	s := velement.MustSpace(8, 8)
	cube := randomCube(rng, 8, 8)
	store := NewMemStore()
	if err := store.Put(s.Root(), cube.Clone()); err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, store)
	eng.SetMetrics(obs.NewAssemblyMetrics(obs.NewRegistry()))
	eng.SetExecutor(1, 0)
	v := s.AggregatedViews()[1]
	for i := 0; i < 10; i++ {
		got, err := eng.Answer(nil, v.Clone())
		if err != nil {
			t.Fatal(err)
		}
		ndarray.Recycle(got)
	}
	hits := eng.met.PoolHits.Value() + eng.met.PoolMisses.Value()
	if hits == 0 {
		t.Fatal("executor leases were not accounted on the pool counters")
	}
	if eng.met.PoolHits.Value() == 0 {
		t.Fatal("repeated identical executions never hit the scratch pool")
	}
}
