package assembly

import (
	"fmt"

	"viewcube/internal/haar"
	"viewcube/internal/velement"
)

// This file implements incremental maintenance of a materialised element
// store: when one cube cell changes by δ, every stored element changes in
// exactly one cell, by ±δ (linearity of the partial/residual operators).
// Updating k stored elements costs O(k·d) — independent of any element's
// volume — versus full rematerialisation.

// UpdateCell applies delta to the cube cell at idx across every element in
// the store (including the root cube element, if stored). Stores that cache
// arrays by reference (MemStore) are updated in place; write-through stores
// are re-Put so durable copies stay consistent.
func UpdateCell(space *velement.Space, st Store, delta float64, idx []int) error {
	if len(idx) != space.Rank() {
		return fmt.Errorf("assembly: index rank %d does not match space rank %d", len(idx), space.Rank())
	}
	shape := space.Shape()
	for m, i := range idx {
		if i < 0 || i >= shape[m] {
			return fmt.Errorf("assembly: index %v out of bounds for shape %v", idx, shape)
		}
	}
	if delta == 0 {
		return nil
	}
	for _, r := range st.Elements() {
		a, ok := st.Get(r)
		if !ok {
			return fmt.Errorf("assembly: element %v listed but not retrievable", r)
		}
		elemIdx, sign, err := haar.CellContribution(r, idx)
		if err != nil {
			return err
		}
		a.Add(float64(sign)*delta, elemIdx...)
		if err := st.Put(r, a); err != nil {
			return fmt.Errorf("assembly: persisting update to %v: %w", r, err)
		}
	}
	return nil
}
