package assembly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/velement"
)

func TestNodeContributionAgainstOperators(t *testing.T) {
	// For every node of an 8-wide dimension and every coordinate, adding δ
	// at the coordinate must change exactly the predicted element cell by
	// sign·δ.
	rng := rand.New(rand.NewSource(1))
	for node := freq.Node(1); node <= 15; node++ {
		a := randomCube(rng, 8)
		coord := rng.Intn(8)
		before, err := haar.ApplyNode(a, 0, node)
		if err != nil {
			t.Fatal(err)
		}
		// ApplyNode on the root node is the identity and may alias its
		// input; snapshot before mutating.
		before = before.Clone()
		const delta = 5.0
		a.Add(delta, coord)
		after, err := haar.ApplyNode(a, 0, node)
		if err != nil {
			t.Fatal(err)
		}
		local, sign := haar.NodeContribution(node, coord)
		for i := 0; i < after.Dim(0); i++ {
			want := before.At(i)
			if i == local {
				want += float64(sign) * delta
			}
			if after.At(i) != want {
				t.Fatalf("node %v coord %d: cell %d = %g, want %g", node, coord, i, after.At(i), want)
			}
		}
	}
}

func TestCellContributionValidation(t *testing.T) {
	if _, _, err := haar.CellContribution(freq.Rect{1, 1}, []int{0}); err == nil {
		t.Fatal("want error for rank mismatch")
	}
	if _, _, err := haar.CellContribution(freq.Rect{0}, []int{0}); err == nil {
		t.Fatal("want error for zero node")
	}
}

func TestUpdateCellMatchesRematerialization(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(8, 4)
		cube := randomCube(rng, 8, 4)
		basis := velement.RandomPacketBasis(s, rng, 0.3)
		// Also keep a couple of redundant extras in the store.
		set := append(basis, s.Root(), freq.Rect{2, 1})
		st, err := MaterializeSet(s, cube, set)
		if err != nil {
			return false
		}
		// Apply a random update both incrementally and to the cube.
		idx := []int{rng.Intn(8), rng.Intn(4)}
		delta := float64(rng.Intn(19) - 9)
		if err := UpdateCell(s, st, delta, idx); err != nil {
			return false
		}
		cube.Add(delta, idx...)
		fresh, err := MaterializeSet(s, cube, set)
		if err != nil {
			return false
		}
		for _, r := range set {
			got, _ := st.Get(r)
			want, _ := fresh.Get(r)
			if !got.Equal(want, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCellValidation(t *testing.T) {
	s := velement.MustSpace(4, 4)
	st := NewMemStore()
	if err := UpdateCell(s, st, 1, []int{0}); err == nil {
		t.Fatal("want error for rank mismatch")
	}
	if err := UpdateCell(s, st, 1, []int{4, 0}); err == nil {
		t.Fatal("want error for out-of-bounds index")
	}
	if err := UpdateCell(s, st, 0, []int{0, 0}); err != nil {
		t.Fatal("zero delta must be a no-op")
	}
}

func TestUpdateCellKeepsEngineAnswersExact(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := velement.MustSpace(8, 8)
	cube := randomCube(rng, 8, 8)
	st, err := MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(s, st)
	for step := 0; step < 20; step++ {
		idx := []int{rng.Intn(8), rng.Intn(8)}
		delta := float64(rng.Intn(21) - 10)
		if err := UpdateCell(s, st, delta, idx); err != nil {
			t.Fatal(err)
		}
		cube.Add(delta, idx...)
	}
	for _, v := range s.AggregatedViews() {
		got, err := eng.Answer(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v stale after incremental updates", v)
		}
	}
}
