package haar

import (
	"fmt"

	"viewcube/internal/freq"
)

// This file computes how a single data-cube cell contributes to the cells
// of any view element — the algebra behind incremental (delta) maintenance
// of materialised elements: because every operator stage is linear, adding
// δ to cube cell x adds coeff·δ to exactly one cell of every element, where
// coeff ∈ {+1, −1} is a product of per-stage signs.
//
// Stage order matters: ApplyNode applies the node's path bits from the most
// significant downward, and each PairSum/PairDiff stage consumes the least
// significant bit of the current coordinate. So stage t (0-based) uses path
// bit (depth−1−t) of the node and coordinate bit t of the original
// coordinate; a residual stage contributes +1 when its coordinate bit is 0
// (the cell sits in the minuend) and −1 when it is 1 (the subtrahend).

// NodeContribution returns, for a frequency-tree node and an original cube
// coordinate along that dimension, the element-local coordinate (coord
// shifted past the consumed bits) and the contribution sign.
func NodeContribution(node freq.Node, coord int) (local int, sign int) {
	depth := node.Depth()
	sign = 1
	for t := 0; t < depth; t++ {
		pathBit := (node >> uint(depth-1-t)) & 1
		coordBit := (coord >> uint(t)) & 1
		if pathBit == 1 && coordBit == 1 {
			sign = -sign
		}
	}
	return coord >> uint(depth), sign
}

// CellContribution returns the cell of element r that a cube cell at idx
// feeds, and the ±1 coefficient of that contribution. The returned slice is
// freshly allocated.
func CellContribution(r freq.Rect, idx []int) (elemIdx []int, sign int, err error) {
	if len(idx) != len(r) {
		return nil, 0, fmt.Errorf("haar: index rank %d does not match element rank %d", len(idx), len(r))
	}
	elemIdx = make([]int, len(idx))
	sign = 1
	for m, node := range r {
		if node == 0 {
			return nil, 0, fmt.Errorf("haar: invalid zero node in %v", r)
		}
		local, s := NodeContribution(node, idx[m])
		elemIdx[m] = local
		sign *= s
	}
	return elemIdx, sign, nil
}
