package haar

import (
	"math/rand"
	"testing"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// naiveCascade is the pre-fusion reference: one PairSum/PairDiff pass per
// stage, MSB-first over the node's relative path bits.
func naiveCascade(t *testing.T, a *ndarray.Array, m, rel int, path freq.Node) *ndarray.Array {
	t.Helper()
	cur := a
	for i := rel - 1; i >= 0; i-- {
		var next *ndarray.Array
		var err error
		if path>>uint(i)&1 == 0 {
			next, err = cur.PairSum(m)
		} else {
			next, err = cur.PairDiff(m)
		}
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	return cur
}

func TestFusedApplyNodeMatchesStageAtATime(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, shape := range [][]int{{16}, {2}, {8, 4}, {4, 4, 4}} {
		a := randomCube(r, shape...)
		for m := range shape {
			maxDepth := 0
			for n := shape[m]; n > 1; n /= 2 {
				maxDepth++
			}
			for depth := 0; depth <= maxDepth; depth++ {
				// Every node at this depth: 1<<depth .. (1<<(depth+1))-1.
				for node := freq.Node(1) << uint(depth); node < freq.Node(1)<<uint(depth+1); node++ {
					want := naiveCascade(t, a, m, depth, node)
					got, err := ApplyNode(a, m, node)
					if err != nil {
						t.Fatalf("ApplyNode(%v, m=%d, node=%b): %v", shape, m, node, err)
					}
					if !got.SameShape(want) || got.MaxAbsDiff(want) != 0 {
						t.Fatalf("fused ApplyNode(%v, m=%d, node=%b) diverges (max diff %g)",
							shape, m, node, got.MaxAbsDiff(want))
					}
				}
			}
		}
	}
}

func TestFusedApplyPathMatchesStageAtATime(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	shape := []int{8, 4, 2}
	cube := randomCube(r, shape...)
	// Random (from, to) pairs with from ⊇ to: choose to, then derive from
	// by truncating each node's path at a random prefix depth.
	for trial := 0; trial < 200; trial++ {
		to := make(freq.Rect, len(shape))
		from := make(freq.Rect, len(shape))
		for m, n := range shape {
			maxDepth := 0
			for e := n; e > 1; e /= 2 {
				maxDepth++
			}
			d := r.Intn(maxDepth + 1)
			to[m] = freq.Node(1)<<uint(d) | freq.Node(r.Intn(1<<uint(d)))
			keep := r.Intn(d + 1)
			from[m] = to[m] >> uint(d-keep)
		}
		// The source array holds the element `from`: build it naively.
		src := cube
		for m := range from {
			src = naiveCascade(t, src, m, from[m].Depth(), from[m])
		}
		want := src
		for m := range from {
			rel := to[m].Depth() - from[m].Depth()
			relPath := to[m] & (freq.Node(1)<<uint(rel) - 1)
			want = naiveCascade(t, want, m, rel, relPath)
		}
		got, err := ApplyPath(src, from, to)
		if err != nil {
			t.Fatalf("ApplyPath(%v→%v): %v", from, to, err)
		}
		if !got.SameShape(want) || got.MaxAbsDiff(want) != 0 {
			t.Fatalf("fused ApplyPath(%v→%v) diverges (max diff %g)", from, to, got.MaxAbsDiff(want))
		}
	}
}

func TestFusedPartialResidualK(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	a := randomCube(r, 16, 4)
	for k := 0; k <= 4; k++ {
		want := a
		for s := 0; s < k; s++ {
			var err error
			want, err = want.PairSum(0)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := PartialK(a, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxAbsDiff(want) != 0 {
			t.Fatalf("fused PartialK(k=%d) diverges", k)
		}
	}
	for k := 1; k <= 4; k++ {
		p, err := PartialK(a, 0, k-1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := p.PairDiff(0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ResidualK(a, 0, k)
		if err != nil {
			t.Fatal(err)
		}
		if got.MaxAbsDiff(want) != 0 {
			t.Fatalf("fused ResidualK(k=%d) diverges", k)
		}
	}
}

func TestPathFoldsSignConvention(t *testing.T) {
	// from root to node 0b110 (depth 2 relative path "10": residual then
	// partial): stage 1 residual → signs bit 0 set; stage 2 partial → bit 1
	// clear.
	folds, err := PathFolds(freq.Rect{1}, freq.Rect{0b110})
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 1 {
		t.Fatalf("folds = %v, want one", folds)
	}
	if folds[0] != (Fold{Dim: 0, K: 2, Signs: 0b01}) {
		t.Fatalf("fold = %+v, want {Dim:0 K:2 Signs:0b01}", folds[0])
	}
	if _, err := PathFolds(freq.Rect{0b10}, freq.Rect{0b11}); err == nil {
		t.Fatal("want error: from does not contain to")
	}
}

func TestApplyFoldsRecyclesOnError(t *testing.T) {
	a := randomCube(rand.New(rand.NewSource(24)), 8)
	// Second fold is invalid (extent 4 not divisible by 8): the
	// intermediate from the first fold must be recycled, the input left
	// untouched, and an error returned.
	before := a.Clone()
	if _, err := ApplyFolds(a, []Fold{{Dim: 0, K: 1}, {Dim: 0, K: 3}}); err == nil {
		t.Fatal("want error from invalid second fold")
	}
	if a.MaxAbsDiff(before) != 0 {
		t.Fatal("ApplyFolds mutated its input on the error path")
	}
}
