// Package haar implements the partial and residual aggregation operators of
// §3 of Smith et al. (PODS 1998): the multi-dimensional extension of the
// two-tap Haar filter bank.
//
// The first partial aggregation P₁ᵐ sums neighbouring pairs along dimension
// m and subsamples by two (Eq. 1); the residual R₁ᵐ takes differences
// (Eq. 2). The pair satisfies perfect reconstruction (Eq. 3–4),
// non-expansiveness (Eq. 13), distributivity (Eq. 7–8) and separability
// (Eq. 14). Cascading P₁ᵐ log2(n_m) times yields the total aggregation Sᵐ
// (Eq. 15); cascading over every dimension yields the grand total (Eq. 16).
//
// The package also maps frequency-tree nodes (package freq) to operator
// cascades: a node's root-to-node path spells exactly the P/R sequence that
// materialises the corresponding view element from the cube.
package haar

import (
	"fmt"
	"math/bits"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// Partial applies the first partial aggregation P₁ᵐ along dimension m.
func Partial(a *ndarray.Array, m int) (*ndarray.Array, error) {
	return a.PairSum(m)
}

// Residual applies the first residual aggregation R₁ᵐ along dimension m.
func Residual(a *ndarray.Array, m int) (*ndarray.Array, error) {
	return a.PairDiff(m)
}

// Reconstruct synthesises the parent of the partial child p and residual
// child r along dimension m via the perfect reconstruction identities.
func Reconstruct(m int, p, r *ndarray.Array) (*ndarray.Array, error) {
	return ndarray.Interleave(m, p, r)
}

// A Fold is one fused same-dimension cascade: K consecutive P/R stages on
// dimension Dim collapsed into a single ndarray.FoldK pass. Bit t−1 of
// Signs marks the t-th stage (in application order) as a residual; clear
// bits are partials.
type Fold struct {
	Dim   int
	K     int
	Signs uint
}

// NodeFold returns the fused cascade that applies the root-to-node path of
// the frequency-tree node along dimension m: stage t of the cascade is the
// t-th path step, a residual exactly when the corresponding path bit is 1.
func NodeFold(m int, node freq.Node) Fold {
	depth := node.Depth()
	var signs uint
	for t := 1; t <= depth; t++ {
		if node>>uint(depth-t)&1 == 1 {
			signs |= 1 << uint(t-1)
		}
	}
	return Fold{Dim: m, K: depth, Signs: signs}
}

// PathFolds returns the fused per-dimension cascades that carry the view
// element `from` down to its descendant `to` (the aggregation legs of
// Eq. 28), one Fold per dimension whose node deepens. `from` must contain
// `to`.
func PathFolds(from, to freq.Rect) ([]Fold, error) {
	if !from.Contains(to) {
		return nil, fmt.Errorf("haar: %v does not contain %v", from, to)
	}
	folds := make([]Fold, 0, len(from))
	for m := range from {
		rel := to[m].Depth() - from[m].Depth()
		if rel == 0 {
			continue
		}
		// The relative path is the low rel bits of to[m], read MSB first;
		// stage t therefore reads bit rel−t.
		var signs uint
		for t := 1; t <= rel; t++ {
			if to[m]>>uint(rel-t)&1 == 1 {
				signs |= 1 << uint(t-1)
			}
		}
		folds = append(folds, Fold{Dim: m, K: rel, Signs: signs})
	}
	return folds, nil
}

// ApplyFolds runs a sequence of fused cascades over a, ping-ponging through
// pooled scratch buffers: every intermediate is leased from ndarray.Scratch
// and recycled as soon as the next fold has consumed it. The result is a
// caller-owned array (itself pool-leased; the caller may Recycle it when
// done) — except when folds is empty, in which case a itself is returned.
// a is never recycled.
func ApplyFolds(a *ndarray.Array, folds []Fold) (*ndarray.Array, error) {
	cur := a
	for _, f := range folds {
		block := 1 << uint(f.K)
		if f.K < 0 || cur.Dim(f.Dim)%block != 0 {
			if cur != a {
				ndarray.Recycle(cur)
			}
			return nil, fmt.Errorf("haar: dimension %d extent %d is not divisible by 2^%d", f.Dim, cur.Dim(f.Dim), f.K)
		}
		outShape := cur.Shape()
		outShape[f.Dim] /= block
		dst, _ := ndarray.Scratch(outShape...)
		err := cur.FoldKInto(f.Dim, f.K, f.Signs, dst)
		if cur != a {
			ndarray.Recycle(cur)
		}
		if err != nil {
			ndarray.Recycle(dst)
			return nil, err
		}
		cur = dst
	}
	return cur, nil
}

// PartialK applies P₁ᵐ in cascade k times (the k-th partial aggregation
// Pₖᵐ, Eq. 8), fused into a single strided pass. The extent of dimension m
// must be divisible by 2^k. For k ≥ 1 the result is a caller-owned
// (pool-leased) array; k = 0 returns a itself.
func PartialK(a *ndarray.Array, m, k int) (*ndarray.Array, error) {
	if k == 0 {
		return a, nil
	}
	if k < 0 {
		return nil, fmt.Errorf("haar: PartialK requires k ≥ 0, got %d", k)
	}
	return ApplyFolds(a, []Fold{{Dim: m, K: k}})
}

// ResidualK applies Rₖᵐ = R₁ᵐ ∘ P₁ᵐ^(k−1): k−1 partial stages followed by
// one residual stage (Eq. 7), fused into a single strided pass. k must be
// at least 1. The result is a caller-owned (pool-leased) array.
func ResidualK(a *ndarray.Array, m, k int) (*ndarray.Array, error) {
	if k < 1 {
		return nil, fmt.Errorf("haar: ResidualK requires k ≥ 1, got %d", k)
	}
	return ApplyFolds(a, []Fold{{Dim: m, K: k, Signs: 1 << uint(k-1)}})
}

// TotalAxis totally aggregates dimension m by cascading P₁ᵐ log2(n_m)
// times (Eq. 15). The extent of dimension m must be a power of two.
func TotalAxis(a *ndarray.Array, m int) (*ndarray.Array, error) {
	n := a.Dim(m)
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("haar: dimension %d extent %d is not a power of two", m, n)
	}
	return PartialK(a, m, bits.Len(uint(n))-1)
}

// Total totally aggregates every dimension in dims, in order (Eq. 16). The
// separability property guarantees the result is order-independent.
// Intermediates are recycled; the result is caller-owned unless no
// dimension needed aggregating, in which case it is a itself.
func Total(a *ndarray.Array, dims ...int) (*ndarray.Array, error) {
	cur := a
	for _, m := range dims {
		next, err := TotalAxis(cur, m)
		if err != nil {
			if cur != a {
				ndarray.Recycle(cur)
			}
			return nil, err
		}
		if next != cur && cur != a {
			ndarray.Recycle(cur)
		}
		cur = next
	}
	return cur, nil
}

// ApplyNode applies, along dimension m, the cascade of partial and residual
// aggregations spelled by the root-to-node path of the frequency-tree node:
// each 0 bit is a partial stage, each 1 bit a residual stage — fused into a
// single strided pass. The extent of dimension m must be divisible by
// 2^depth(node). The result is caller-owned (pool-leased) unless the path
// is empty, in which case it is a itself.
func ApplyNode(a *ndarray.Array, m int, node freq.Node) (*ndarray.Array, error) {
	if node == 0 {
		return nil, fmt.Errorf("haar: invalid zero node")
	}
	f := NodeFold(m, node)
	if f.K == 0 {
		return a, nil
	}
	out, err := ApplyFolds(a, []Fold{f})
	if err != nil {
		return nil, fmt.Errorf("haar: node %v cascade on dim %d: %w", node, m, err)
	}
	return out, nil
}

// ApplyRect materialises the view element identified by the frequency
// rectangle from the array, applying each dimension's fused cascade in turn
// (separability, Property 4, makes the order immaterial). Intermediates are
// recycled; the result is caller-owned unless every node is the root, in
// which case it is a itself.
func ApplyRect(a *ndarray.Array, r freq.Rect) (*ndarray.Array, error) {
	if len(r) != a.Rank() {
		return nil, fmt.Errorf("haar: rect rank %d does not match array rank %d", len(r), a.Rank())
	}
	folds := make([]Fold, 0, len(r))
	for m, node := range r {
		if node == 0 {
			return nil, fmt.Errorf("haar: invalid zero node on dim %d", m)
		}
		if f := NodeFold(m, node); f.K > 0 {
			folds = append(folds, f)
		}
	}
	return ApplyFolds(a, folds)
}

// ApplyPath applies the cascade that carries the view element `from` down
// to its descendant `to` (both frequency rectangles; `from` must contain
// `to`). It is the aggregation step Fₐ,ₗ of Eq. 28: the input array holds
// the element `from`, the output holds the element `to`. Each dimension's
// leg runs as one fused pass; intermediates are recycled. The result is
// caller-owned unless from equals to, in which case it is a itself.
func ApplyPath(a *ndarray.Array, from, to freq.Rect) (*ndarray.Array, error) {
	folds, err := PathFolds(from, to)
	if err != nil {
		return nil, err
	}
	out, err := ApplyFolds(a, folds)
	if err != nil {
		return nil, fmt.Errorf("haar: path %v→%v: %w", from, to, err)
	}
	return out, nil
}

// levels returns the block extents at each decomposition level: the full
// shape first, then each dimension with extent ≥ 2 halved per level, until
// every extent is 1. Every extent must be a power of two.
func levels(shape []int) [][]int {
	for m, n := range shape {
		if n <= 0 || n&(n-1) != 0 {
			panic(fmt.Sprintf("haar: dimension %d extent %d is not a power of two", m, n))
		}
	}
	var out [][]int
	ext := append([]int(nil), shape...)
	for {
		any := false
		for _, n := range ext {
			if n >= 2 {
				any = true
			}
		}
		if !any {
			return out
		}
		out = append(out, append([]int(nil), ext...))
		for m := range ext {
			if ext[m] >= 2 {
				ext[m] /= 2
			}
		}
	}
}

// Transform performs the full multi-dimensional Haar wavelet decomposition
// of a copy of the array: on every level it splits the current low-pass
// block jointly on all dimensions whose extent at that level is ≥ 2,
// storing partial sums in the lower half and residuals in the upper half of
// each dimension. The result is the standard packed subband layout whose
// coefficients are the wavelet-basis view elements of §4.3 (unnormalised:
// pure sums and differences, matching the paper's operators). Every extent
// must be a power of two; Transform panics otherwise. Use Inverse to undo.
func Transform(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	buf, idx := axisScratch(a)
	for _, ext := range levels(a.Shape()) {
		// Axis passes on distinct dimensions commute (tensor-product
		// structure), so a fixed increasing order is fine.
		for m := range ext {
			if ext[m] >= 2 {
				haarAxisInPlace(out, m, ext, false, buf, idx)
			}
		}
	}
	recycleAxisScratch(buf)
	return out
}

// Inverse undoes Transform, returning a reconstructed copy.
func Inverse(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	buf, idx := axisScratch(a)
	lv := levels(a.Shape())
	for li := len(lv) - 1; li >= 0; li-- {
		ext := lv[li]
		for m := range ext {
			if ext[m] >= 2 {
				haarAxisInPlace(out, m, ext, true, buf, idx)
			}
		}
	}
	recycleAxisScratch(buf)
	return out
}

// axisScratch leases the per-transform working state: one pooled line
// buffer sized to the largest extent (shared by every axis pass) and the
// line-start index vector. A nil buffer means no axis will ever need one.
func axisScratch(a *ndarray.Array) (buf *ndarray.Array, idx []int) {
	maxN := 0
	for _, n := range a.Shape() {
		if n > maxN {
			maxN = n
		}
	}
	if maxN >= 2 {
		buf, _ = ndarray.Scratch(maxN)
	}
	return buf, make([]int, a.Rank())
}

func recycleAxisScratch(buf *ndarray.Array) {
	if buf != nil {
		ndarray.Recycle(buf)
	}
}

// haarAxisInPlace performs one forward (inverse=false) or inverse
// (inverse=true) Haar split along dimension m of the leading ext-shaped
// block of a. Forward: low half ← pairwise sums, high half ← pairwise
// differences. Inverse: the perfect-reconstruction identities. lineBuf and
// lineIdx are caller-provided working state (see axisScratch), reused
// across axis passes; lineBuf must hold at least ext[m] cells.
func haarAxisInPlace(a *ndarray.Array, m int, ext []int, inverse bool, lineBuf *ndarray.Array, lineIdx []int) {
	n := ext[m]
	half := n / 2
	buf := lineBuf.Data()[:n]
	data := a.Data()
	stride := a.Stride(m)
	// Iterate over all line starts within the ext block.
	idx := lineIdx
	for q := range idx {
		idx[q] = 0
	}
	for {
		// Compute base offset of this line (idx[m] is forced to 0).
		base := 0
		for q := range idx {
			if q == m {
				continue
			}
			base += idx[q] * a.Stride(q)
		}
		if !inverse {
			for i := 0; i < half; i++ {
				x := data[base+2*i*stride]
				y := data[base+(2*i+1)*stride]
				buf[i] = x + y
				buf[half+i] = x - y
			}
		} else {
			for i := 0; i < half; i++ {
				p := data[base+i*stride]
				r := data[base+(half+i)*stride]
				buf[2*i] = (p + r) / 2
				buf[2*i+1] = (p - r) / 2
			}
		}
		for i := 0; i < n; i++ {
			data[base+i*stride] = buf[i]
		}
		// Advance idx through all dims except m, bounded by ext.
		q := a.Rank() - 1
		for ; q >= 0; q-- {
			if q == m {
				continue
			}
			idx[q]++
			if idx[q] < ext[q] {
				break
			}
			idx[q] = 0
		}
		if q < 0 {
			return
		}
	}
}
