// Package haar implements the partial and residual aggregation operators of
// §3 of Smith et al. (PODS 1998): the multi-dimensional extension of the
// two-tap Haar filter bank.
//
// The first partial aggregation P₁ᵐ sums neighbouring pairs along dimension
// m and subsamples by two (Eq. 1); the residual R₁ᵐ takes differences
// (Eq. 2). The pair satisfies perfect reconstruction (Eq. 3–4),
// non-expansiveness (Eq. 13), distributivity (Eq. 7–8) and separability
// (Eq. 14). Cascading P₁ᵐ log2(n_m) times yields the total aggregation Sᵐ
// (Eq. 15); cascading over every dimension yields the grand total (Eq. 16).
//
// The package also maps frequency-tree nodes (package freq) to operator
// cascades: a node's root-to-node path spells exactly the P/R sequence that
// materialises the corresponding view element from the cube.
package haar

import (
	"fmt"
	"math/bits"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// Partial applies the first partial aggregation P₁ᵐ along dimension m.
func Partial(a *ndarray.Array, m int) (*ndarray.Array, error) {
	return a.PairSum(m)
}

// Residual applies the first residual aggregation R₁ᵐ along dimension m.
func Residual(a *ndarray.Array, m int) (*ndarray.Array, error) {
	return a.PairDiff(m)
}

// Reconstruct synthesises the parent of the partial child p and residual
// child r along dimension m via the perfect reconstruction identities.
func Reconstruct(m int, p, r *ndarray.Array) (*ndarray.Array, error) {
	return ndarray.Interleave(m, p, r)
}

// PartialK applies P₁ᵐ in cascade k times (the k-th partial aggregation
// Pₖᵐ, Eq. 8). The extent of dimension m must be divisible by 2^k.
func PartialK(a *ndarray.Array, m, k int) (*ndarray.Array, error) {
	out := a
	var err error
	for i := 0; i < k; i++ {
		out, err = out.PairSum(m)
		if err != nil {
			return nil, fmt.Errorf("haar: partial cascade stage %d of %d: %w", i+1, k, err)
		}
	}
	return out, nil
}

// ResidualK applies Rₖᵐ = R₁ᵐ ∘ P₁ᵐ^(k−1): k−1 partial stages followed by
// one residual stage (Eq. 7). k must be at least 1.
func ResidualK(a *ndarray.Array, m, k int) (*ndarray.Array, error) {
	if k < 1 {
		return nil, fmt.Errorf("haar: ResidualK requires k ≥ 1, got %d", k)
	}
	p, err := PartialK(a, m, k-1)
	if err != nil {
		return nil, err
	}
	return p.PairDiff(m)
}

// TotalAxis totally aggregates dimension m by cascading P₁ᵐ log2(n_m)
// times (Eq. 15). The extent of dimension m must be a power of two.
func TotalAxis(a *ndarray.Array, m int) (*ndarray.Array, error) {
	n := a.Dim(m)
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("haar: dimension %d extent %d is not a power of two", m, n)
	}
	return PartialK(a, m, bits.Len(uint(n))-1)
}

// Total totally aggregates every dimension in dims, in order (Eq. 16). The
// separability property guarantees the result is order-independent.
func Total(a *ndarray.Array, dims ...int) (*ndarray.Array, error) {
	out := a
	var err error
	for _, m := range dims {
		out, err = TotalAxis(out, m)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ApplyNode applies, along dimension m, the cascade of partial and residual
// aggregations spelled by the root-to-node path of the frequency-tree node:
// each 0 bit is a partial stage, each 1 bit a residual stage. The extent of
// dimension m must be divisible by 2^depth(node).
func ApplyNode(a *ndarray.Array, m int, node freq.Node) (*ndarray.Array, error) {
	if node == 0 {
		return nil, fmt.Errorf("haar: invalid zero node")
	}
	depth := node.Depth()
	out := a
	var err error
	for i := depth - 1; i >= 0; i-- {
		if node>>uint(i)&1 == 0 {
			out, err = out.PairSum(m)
		} else {
			out, err = out.PairDiff(m)
		}
		if err != nil {
			return nil, fmt.Errorf("haar: node %v cascade on dim %d: %w", node, m, err)
		}
	}
	return out, nil
}

// ApplyRect materialises the view element identified by the frequency
// rectangle from the array, applying each dimension's cascade in turn
// (separability, Property 4, makes the order immaterial).
func ApplyRect(a *ndarray.Array, r freq.Rect) (*ndarray.Array, error) {
	if len(r) != a.Rank() {
		return nil, fmt.Errorf("haar: rect rank %d does not match array rank %d", len(r), a.Rank())
	}
	out := a
	var err error
	for m, node := range r {
		out, err = ApplyNode(out, m, node)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ApplyPath applies the cascade that carries the view element `from` down
// to its descendant `to` (both frequency rectangles; `from` must contain
// `to`). It is the aggregation step Fₐ,ₗ of Eq. 28: the input array holds
// the element `from`, the output holds the element `to`.
func ApplyPath(a *ndarray.Array, from, to freq.Rect) (*ndarray.Array, error) {
	if !from.Contains(to) {
		return nil, fmt.Errorf("haar: %v does not contain %v", from, to)
	}
	out := a
	var err error
	for m := range from {
		// The relative path from from[m] to to[m] is the low
		// (depth(to)−depth(from)) bits of to[m], read MSB first.
		rel := to[m].Depth() - from[m].Depth()
		for i := rel - 1; i >= 0; i-- {
			if to[m]>>uint(i)&1 == 0 {
				out, err = out.PairSum(m)
			} else {
				out, err = out.PairDiff(m)
			}
			if err != nil {
				return nil, fmt.Errorf("haar: path %v→%v on dim %d: %w", from, to, m, err)
			}
		}
	}
	return out, nil
}

// levels returns the block extents at each decomposition level: the full
// shape first, then each dimension with extent ≥ 2 halved per level, until
// every extent is 1. Every extent must be a power of two.
func levels(shape []int) [][]int {
	for m, n := range shape {
		if n <= 0 || n&(n-1) != 0 {
			panic(fmt.Sprintf("haar: dimension %d extent %d is not a power of two", m, n))
		}
	}
	var out [][]int
	ext := append([]int(nil), shape...)
	for {
		any := false
		for _, n := range ext {
			if n >= 2 {
				any = true
			}
		}
		if !any {
			return out
		}
		out = append(out, append([]int(nil), ext...))
		for m := range ext {
			if ext[m] >= 2 {
				ext[m] /= 2
			}
		}
	}
}

// Transform performs the full multi-dimensional Haar wavelet decomposition
// of a copy of the array: on every level it splits the current low-pass
// block jointly on all dimensions whose extent at that level is ≥ 2,
// storing partial sums in the lower half and residuals in the upper half of
// each dimension. The result is the standard packed subband layout whose
// coefficients are the wavelet-basis view elements of §4.3 (unnormalised:
// pure sums and differences, matching the paper's operators). Every extent
// must be a power of two; Transform panics otherwise. Use Inverse to undo.
func Transform(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	for _, ext := range levels(a.Shape()) {
		// Axis passes on distinct dimensions commute (tensor-product
		// structure), so a fixed increasing order is fine.
		for m := range ext {
			if ext[m] >= 2 {
				haarAxisInPlace(out, m, ext, false)
			}
		}
	}
	return out
}

// Inverse undoes Transform, returning a reconstructed copy.
func Inverse(a *ndarray.Array) *ndarray.Array {
	out := a.Clone()
	lv := levels(a.Shape())
	for li := len(lv) - 1; li >= 0; li-- {
		ext := lv[li]
		for m := range ext {
			if ext[m] >= 2 {
				haarAxisInPlace(out, m, ext, true)
			}
		}
	}
	return out
}

// haarAxisInPlace performs one forward (inverse=false) or inverse
// (inverse=true) Haar split along dimension m of the leading ext-shaped
// block of a. Forward: low half ← pairwise sums, high half ← pairwise
// differences. Inverse: the perfect-reconstruction identities.
func haarAxisInPlace(a *ndarray.Array, m int, ext []int, inverse bool) {
	n := ext[m]
	half := n / 2
	buf := make([]float64, n)
	data := a.Data()
	stride := a.Stride(m)
	// Iterate over all line starts within the ext block.
	idx := make([]int, a.Rank())
	for {
		// Compute base offset of this line (idx[m] is forced to 0).
		base := 0
		for q := range idx {
			if q == m {
				continue
			}
			base += idx[q] * a.Stride(q)
		}
		if !inverse {
			for i := 0; i < half; i++ {
				x := data[base+2*i*stride]
				y := data[base+(2*i+1)*stride]
				buf[i] = x + y
				buf[half+i] = x - y
			}
		} else {
			for i := 0; i < half; i++ {
				p := data[base+i*stride]
				r := data[base+(half+i)*stride]
				buf[2*i] = (p + r) / 2
				buf[2*i+1] = (p - r) / 2
			}
		}
		for i := 0; i < n; i++ {
			data[base+i*stride] = buf[i]
		}
		// Advance idx through all dims except m, bounded by ext.
		q := a.Rank() - 1
		for ; q >= 0; q-- {
			if q == m {
				continue
			}
			idx[q]++
			if idx[q] < ext[q] {
				break
			}
			idx[q] = 0
		}
		if q < 0 {
			return
		}
	}
}
