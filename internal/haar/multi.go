package haar

import (
	"fmt"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// Measure-vector forms of the cascade operators. The partial and residual
// aggregations are linear with ±1 taps, so they distribute over the
// components of a measure vector: applying a fold program to a MultiArray
// is exactly applying it to each component plane independently, and every
// algebraic property the paper proves for SUM (perfect reconstruction,
// non-expansiveness, separability) holds component-wise. Each component of
// a vector cascade therefore stays bit-identical to the scalar cascade of
// that component alone — the invariant the AvgEngine compatibility wrapper
// relies on.

// PartialMulti applies P₁ᵐ along dimension m to every component.
func PartialMulti(a *ndarray.MultiArray, m int) (*ndarray.MultiArray, error) {
	out := ndarray.NewMulti(a.Width(), halvedShape(a, m)...)
	if err := a.PairSumInto(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ResidualMulti applies R₁ᵐ along dimension m to every component.
func ResidualMulti(a *ndarray.MultiArray, m int) (*ndarray.MultiArray, error) {
	out := ndarray.NewMulti(a.Width(), halvedShape(a, m)...)
	if err := a.PairDiffInto(m, out); err != nil {
		return nil, err
	}
	return out, nil
}

func halvedShape(a *ndarray.MultiArray, m int) []int {
	shape := a.Shape()
	shape[m] /= 2
	if shape[m] == 0 {
		shape[m] = 1
	}
	return shape
}

// ApplyFoldsMulti runs a sequence of fused cascades over every component of
// a, ping-ponging through the multi-array scratch pool exactly as
// ApplyFolds does for scalars. The result is caller-owned (pool-leased;
// hand back with RecycleMulti) — except when folds is empty, in which case
// a itself is returned. a is never recycled.
func ApplyFoldsMulti(a *ndarray.MultiArray, folds []Fold) (*ndarray.MultiArray, error) {
	cur := a
	for _, f := range folds {
		block := 1 << uint(f.K)
		if f.K < 0 || cur.Dim(f.Dim)%block != 0 {
			if cur != a {
				ndarray.RecycleMulti(cur)
			}
			return nil, fmt.Errorf("haar: dimension %d extent %d is not divisible by 2^%d", f.Dim, cur.Dim(f.Dim), f.K)
		}
		outShape := cur.Shape()
		outShape[f.Dim] /= block
		dst, _ := ndarray.ScratchMulti(cur.Width(), outShape...)
		err := cur.FoldKInto(f.Dim, f.K, f.Signs, dst)
		if cur != a {
			ndarray.RecycleMulti(cur)
		}
		if err != nil {
			ndarray.RecycleMulti(dst)
			return nil, err
		}
		cur = dst
	}
	return cur, nil
}

// ApplyRectMulti materialises the view element identified by the frequency
// rectangle from the vector cube — the measure-vector form of ApplyRect.
func ApplyRectMulti(a *ndarray.MultiArray, r freq.Rect) (*ndarray.MultiArray, error) {
	if len(r) != a.Rank() {
		return nil, fmt.Errorf("haar: rect rank %d does not match array rank %d", len(r), a.Rank())
	}
	folds := make([]Fold, 0, len(r))
	for m, node := range r {
		if node == 0 {
			return nil, fmt.Errorf("haar: invalid zero node on dim %d", m)
		}
		if f := NodeFold(m, node); f.K > 0 {
			folds = append(folds, f)
		}
	}
	return ApplyFoldsMulti(a, folds)
}

// TransformMulti performs the full Haar wavelet decomposition of a copy of
// the vector array, component by component through the same in-place axis
// kernel the scalar Transform uses.
func TransformMulti(a *ndarray.MultiArray) *ndarray.MultiArray {
	out := a.Clone()
	lv := levels(a.Shape())
	for c := 0; c < out.Width(); c++ {
		comp := out.Component(c)
		buf, idx := axisScratch(comp)
		for _, ext := range lv {
			for m := range ext {
				if ext[m] >= 2 {
					haarAxisInPlace(comp, m, ext, false, buf, idx)
				}
			}
		}
		recycleAxisScratch(buf)
	}
	return out
}

// InverseMulti undoes TransformMulti, returning a reconstructed copy.
func InverseMulti(a *ndarray.MultiArray) *ndarray.MultiArray {
	out := a.Clone()
	lv := levels(a.Shape())
	for c := 0; c < out.Width(); c++ {
		comp := out.Component(c)
		buf, idx := axisScratch(comp)
		for li := len(lv) - 1; li >= 0; li-- {
			ext := lv[li]
			for m := range ext {
				if ext[m] >= 2 {
					haarAxisInPlace(comp, m, ext, true, buf, idx)
				}
			}
		}
		recycleAxisScratch(buf)
	}
	return out
}
