package haar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

func randomCube(r *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64()*100 - 50)
	}
	return a
}

func TestPartialResidualMatchPaperExample(t *testing.T) {
	a, _ := ndarray.NewFrom([]float64{1, 2, 3, 4}, 4)
	p, err := Partial(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Residual(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.At(0) != 3 || p.At(1) != 7 {
		t.Fatalf("P = %v, want [3 7]", p.Data())
	}
	if r.At(0) != -1 || r.At(1) != -1 {
		t.Fatalf("R = %v, want [-1 -1]", r.Data())
	}
}

func TestPerfectReconstruction(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := randomCube(r, 8, 4)
	for m := 0; m < 2; m++ {
		p, _ := Partial(a, m)
		res, _ := Residual(a, m)
		back, err := Reconstruct(m, p, res)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(a, 1e-12) {
			t.Fatalf("dim %d: perfect reconstruction failed", m)
		}
	}
}

func TestNonExpansiveness(t *testing.T) {
	// Property 3: Vol(P) + Vol(R) = Vol(A).
	a := ndarray.New(8, 4, 2)
	p, _ := Partial(a, 0)
	r, _ := Residual(a, 0)
	if p.Size()+r.Size() != a.Size() {
		t.Fatalf("Vol(P)+Vol(R) = %d, want %d", p.Size()+r.Size(), a.Size())
	}
}

func TestDistributivityTelescoping(t *testing.T) {
	// Property 2: P_k = P_1 applied k times; ResidualK = R_1 ∘ P_{k-1}.
	r := rand.New(rand.NewSource(2))
	a := randomCube(r, 16)
	p2, err := PartialK(a, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := Partial(a, 0)
	p1p1, _ := Partial(p1, 0)
	if !p2.Equal(p1p1, 0) {
		t.Fatal("PartialK(2) != P1(P1)")
	}
	r3, err := ResidualK(a, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	p2a, _ := PartialK(a, 0, 2)
	want, _ := Residual(p2a, 0)
	if !r3.Equal(want, 0) {
		t.Fatal("ResidualK(3) != R1(P2)")
	}
}

func TestResidualKRequiresPositiveK(t *testing.T) {
	a := ndarray.New(4)
	if _, err := ResidualK(a, 0, 0); err == nil {
		t.Fatal("want error for k=0")
	}
}

func TestPartialKTooDeep(t *testing.T) {
	a := ndarray.New(4)
	if _, err := PartialK(a, 0, 3); err == nil {
		t.Fatal("want error when cascading past extent 1")
	}
}

func TestSeparability(t *testing.T) {
	// Property 4 / Eq 14: P1^0(P1^1(A)) == P1^1(P1^0(A)).
	r := rand.New(rand.NewSource(3))
	a := randomCube(r, 4, 8)
	x1, _ := Partial(a, 0)
	x2, _ := Partial(x1, 1)
	y1, _ := Partial(a, 1)
	y2, _ := Partial(y1, 0)
	if !x2.Equal(y2, 0) {
		t.Fatal("partial aggregations on distinct dimensions must commute")
	}
}

func TestTotalAxisMatchesDirectSum(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	a := randomCube(r, 8, 4)
	for m := 0; m < 2; m++ {
		got, err := TotalAxis(a, m)
		if err != nil {
			t.Fatal(err)
		}
		want := a.SumAxis(m)
		if !got.Equal(want, 1e-9) {
			t.Fatalf("dim %d: cascade disagrees with direct sum", m)
		}
	}
}

func TestTotalAxisRejectsNonPowerOfTwo(t *testing.T) {
	a := ndarray.New(6)
	if _, err := TotalAxis(a, 0); err == nil {
		t.Fatal("want error for non-power-of-two extent")
	}
}

func TestTotalGrandSum(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	a := randomCube(r, 4, 8, 2)
	got, err := Total(a, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 1 {
		t.Fatalf("grand total should be a single cell, got shape %v", got.Shape())
	}
	if math.Abs(got.Data()[0]-a.Total()) > 1e-9 {
		t.Fatalf("grand total %g, want %g", got.Data()[0], a.Total())
	}
}

func TestApplyNodePathOrder(t *testing.T) {
	// Node 5 (binary 101) encodes partial-then-residual.
	r := rand.New(rand.NewSource(6))
	a := randomCube(r, 8)
	got, err := ApplyNode(a, 0, freq.Node(5))
	if err != nil {
		t.Fatal(err)
	}
	p, _ := Partial(a, 0)
	want, _ := Residual(p, 0)
	if !got.Equal(want, 0) {
		t.Fatal("ApplyNode(5) must equal R1(P1(A))")
	}
	// Root node is the identity.
	id, err := ApplyNode(a, 0, freq.Root)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Equal(a, 0) {
		t.Fatal("ApplyNode(root) must be the identity")
	}
	if _, err := ApplyNode(a, 0, freq.Node(0)); err == nil {
		t.Fatal("want error for zero node")
	}
}

func TestApplyRectShapes(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := randomCube(r, 8, 4)
	// Rect {4, 3}: dim0 totally... depth2 partial path (node 4 = PP), dim1
	// residual at depth 1 (node 3 = R).
	got, err := ApplyRect(a, freq.Rect{4, 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim(0) != 2 || got.Dim(1) != 2 {
		t.Fatalf("shape %v, want [2 2]", got.Shape())
	}
	p1, _ := PartialK(a, 0, 2)
	want, _ := Residual(p1, 1)
	if !got.Equal(want, 0) {
		t.Fatal("ApplyRect disagrees with manual cascade")
	}
	if _, err := ApplyRect(a, freq.Rect{1}); err == nil {
		t.Fatal("want error for rank mismatch")
	}
}

func TestApplyPathAggregatesDescendants(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randomCube(r, 8, 8)
	from := freq.Rect{2, 1} // P on dim 0
	to := freq.Rect{4, 3}   // PP on dim 0, R on dim 1
	el, err := ApplyRect(a, from)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ApplyPath(el, from, to)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ApplyRect(a, to)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Fatal("ApplyPath(from→to) disagrees with ApplyRect(to)")
	}
	if _, err := ApplyPath(el, from, freq.Rect{3, 1}); err == nil {
		t.Fatal("want error when from does not contain to")
	}
}

// Property: for any view element rectangle, materialising it and perfectly
// reconstructing the parent from partial+residual children is the identity
// (two-way dependency of Figure 3).
func TestSynthesisProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := randomCube(r, 8, 4)
		// Random element with room to decompose on dim 0.
		rect := freq.Rect{freq.Node(1 + r.Intn(3)), freq.Node(1 + r.Intn(3))}
		el, err := ApplyRect(a, rect)
		if err != nil {
			return false
		}
		if el.Dim(0) < 2 {
			return true // nothing to split
		}
		p, _ := Partial(el, 0)
		res, _ := Residual(el, 0)
		back, err := Reconstruct(0, p, res)
		if err != nil {
			return false
		}
		return back.Equal(el, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, shape := range [][]int{{8}, {4, 4}, {2, 8, 4}, {2, 2, 2, 2}, {1, 4}} {
		a := randomCube(r, shape...)
		w := Transform(a)
		back := Inverse(w)
		if !back.Equal(a, 1e-9) {
			t.Fatalf("shape %v: Transform/Inverse round trip failed (maxdiff %g)", shape, back.MaxAbsDiff(a))
		}
	}
}

func TestTransformOriginIsGrandTotal(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	a := randomCube(r, 4, 8)
	w := Transform(a)
	if math.Abs(w.At(0, 0)-a.Total()) > 1e-9 {
		t.Fatalf("w[0,0]=%g, want grand total %g", w.At(0, 0), a.Total())
	}
}

func TestTransformPanicsOnNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Transform must panic on non-power-of-two extents")
		}
	}()
	Transform(ndarray.New(6))
}

func TestTransformIsNonExpansive(t *testing.T) {
	a := ndarray.New(4, 4)
	if Transform(a).Size() != a.Size() {
		t.Fatal("wavelet transform must preserve volume (non-expansive)")
	}
}

func TestTransformConstantCube(t *testing.T) {
	// All residual coefficients of a constant cube are zero.
	a := ndarray.New(4, 4)
	a.Fill(2)
	w := Transform(a)
	if w.At(0, 0) != 32 {
		t.Fatalf("grand total %g, want 32", w.At(0, 0))
	}
	nonzero := 0
	for _, v := range w.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("constant cube must compress to a single nonzero coefficient, got %d", nonzero)
	}
}

func TestNodeContributionSigns(t *testing.T) {
	// Node 3 = R at depth 1: sign +1 for even coords, −1 for odd.
	for coord := 0; coord < 8; coord++ {
		local, sign := NodeContribution(freq.Node(3), coord)
		wantSign := 1
		if coord%2 == 1 {
			wantSign = -1
		}
		if sign != wantSign || local != coord/2 {
			t.Fatalf("coord %d: (%d,%d), want (%d,%d)", coord, local, sign, coord/2, wantSign)
		}
	}
	// Root node: identity, always +1.
	if local, sign := NodeContribution(freq.Root, 5); local != 5 || sign != 1 {
		t.Fatal("root contribution wrong")
	}
}

func TestCellContribution(t *testing.T) {
	idx, sign, err := CellContribution(freq.Rect{3, 3}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two residual stages each with odd coordinate: signs multiply to +1.
	if sign != 1 || idx[0] != 0 || idx[1] != 0 {
		t.Fatalf("got idx %v sign %d", idx, sign)
	}
	if _, _, err := CellContribution(freq.Rect{3}, []int{1, 2}); err == nil {
		t.Fatal("want error for rank mismatch")
	}
}
