package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"viewcube/internal/adaptive"
	"viewcube/internal/assembly"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// AdaptPhase records one workload phase of the E10 adaptation experiment.
type AdaptPhase struct {
	Phase        int
	StaticOps    float64 // avg modelled ops/query with the cube only
	AdaptiveOps  float64 // avg modelled ops/query with online re-selection
	Reconfigs    int     // total reconfigurations so far
	StorageCells int     // adaptive engine storage after the phase
}

// AdaptResult is the E10 outcome: per-phase average query costs of a static
// cube-only engine versus the adaptive engine as the hot views shift
// between phases — the operational content of the paper's "dynamically
// reconfigure" claim (§5).
type AdaptResult struct {
	Shape  []int
	Phases []AdaptPhase
}

// Adaptation runs E10: across phases, a fresh pair of hot aggregated views
// is drawn and queried repeatedly; the adaptive engine re-selects its
// element basis from observed frequencies while the static engine keeps
// only the cube.
func Adaptation(shape []int, phases, queriesPerPhase int, seed int64) (*AdaptResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cube := workload.RandomCube(rng, 50, shape...)

	staticStore := assembly.NewMemStore()
	if err := staticStore.Put(s.Root(), cube.Clone()); err != nil {
		return nil, err
	}
	staticEng := assembly.NewEngine(s, staticStore)

	adaptStore := assembly.NewMemStore()
	if err := adaptStore.Put(s.Root(), cube.Clone()); err != nil {
		return nil, err
	}
	adaptEng, err := adaptive.New(s, adaptStore, adaptive.Options{
		ReselectEvery: queriesPerPhase / 4,
		Decay:         0.2,
	})
	if err != nil {
		return nil, err
	}

	res := &AdaptResult{Shape: append([]int(nil), shape...)}
	views := s.AggregatedViews()
	for phase := 0; phase < phases; phase++ {
		// Two fresh hot views per phase (never the raw cube).
		perm := rng.Perm(len(views) - 1)
		hot := []int{perm[0] + 1, perm[1] + 1}
		var staticOps, adaptOps float64
		for q := 0; q < queriesPerPhase; q++ {
			target := views[hot[q%len(hot)]]
			plan, err := staticEng.Plan(nil, target)
			if err != nil {
				return nil, err
			}
			staticOps += float64(assembly.PlanCost(plan))
			before := adaptEng.Stats().ModelOps
			if _, err := adaptEng.Query(nil, target); err != nil {
				return nil, err
			}
			// Queries only raise the due flag; the experiment loop drains it,
			// standing in for the SafeEngine's write-locked drain.
			if adaptEng.ReselectDue() {
				if _, err := adaptEng.AutoReconfigure(nil); err != nil {
					return nil, err
				}
			}
			adaptOps += float64(adaptEng.Stats().ModelOps - before)
		}
		res.Phases = append(res.Phases, AdaptPhase{
			Phase:        phase + 1,
			StaticOps:    staticOps / float64(queriesPerPhase),
			AdaptiveOps:  adaptOps / float64(queriesPerPhase),
			Reconfigs:    adaptEng.Stats().Reconfigs,
			StorageCells: adaptEng.Stats().StorageCells,
		})
	}
	return res, nil
}

// FormatAdaptation renders the E10 report.
func FormatAdaptation(r *AdaptResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Online adaptation (E10) on shape %v: avg modelled ops/query per phase\n", r.Shape)
	fmt.Fprintf(&b, "%-7s %14s %14s %11s %10s\n", "phase", "static (cube)", "adaptive", "reconfigs", "storage")
	for _, p := range r.Phases {
		fmt.Fprintf(&b, "%-7d %14.1f %14.1f %11d %10d\n",
			p.Phase, p.StaticOps, p.AdaptiveOps, p.Reconfigs, p.StorageCells)
	}
	return b.String()
}
