package experiments

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"
	"strings"

	"viewcube/internal/assembly"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// CubeCompResult is the E12 outcome: the cost of computing the *entire*
// data cube (all 2^d aggregated views, the CUBE operator of Gray et al.
// [6]) under three strategies. Costs are add operations, counted exactly.
type CubeCompResult struct {
	Shape []int
	// Naive computes every view independently from the base cube.
	NaiveOps int
	// Lattice computes each view from its smallest already-computed parent
	// (the standard view-lattice optimisation of Agrawal et al. [2]).
	LatticeOps int
	// Shared computes all views through the Haar partial-aggregation
	// cascades with prefix sharing (this repository's materialiser and its
	// deepest-dimension-first routing): the cost is exactly the cells
	// generated, measured on real arrays.
	SharedOps int
	// Routed computes views in increasing-aggregation order, each by a Haar
	// cascade from its smallest already-computed parent view — the lattice
	// schedule executed with the paper's operators, measured on real
	// arrays. A cascade edge costs exactly the same additions as a one-pass
	// lattice edge, so Routed should match LatticeOps.
	RoutedOps int
	// Verified reports that all strategies produced identical views.
	Verified bool
}

// CubeComputation runs E12 on a cube of the given shape.
func CubeComputation(shape []int, seed int64) (*CubeCompResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cube := workload.RandomCube(rng, 50, shape...)
	d := len(shape)
	res := &CubeCompResult{Shape: append([]int(nil), shape...), Verified: true}

	// Strategy 1: naive — summing Vol(A) cells down to Vol(view) costs
	// Vol(A) − Vol(view) additions per view, all from the base cube.
	volOf := func(mask uint) int {
		v := 1
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) == 0 {
				v *= shape[m]
			}
		}
		return v
	}
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		res.NaiveOps += s.CubeVolume() - volOf(mask)
	}

	// Strategy 2: lattice smallest-parent — compute views in increasing
	// aggregation order; each from the cheapest (smallest) parent that
	// aggregates one dimension fewer. Aggregating dimension m of a parent
	// of volume V costs V − V/n_m additions.
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		best := -1
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) == 0 {
				continue
			}
			parent := mask &^ (1 << uint(m))
			cost := volOf(parent) - volOf(mask)
			if best < 0 || cost < best {
				best = cost
			}
		}
		res.LatticeOps += best
	}

	// Strategy 3: shared Haar cascades, measured exactly on real arrays.
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		return nil, err
	}
	views := s.AggregatedViews()
	computed := make(map[uint][]float64, len(views))
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		a, err := mat.Element(views[mask])
		if err != nil {
			return nil, err
		}
		computed[mask] = a.Data()
	}
	res.SharedOps = mat.GeneratedCells()

	// Strategy 4: lattice-routed cascades, measured. Views in increasing
	// popcount order; each computed by cascading from its smallest
	// already-computed parent view with the Haar operators, counting every
	// generated cell (intermediate cascade stages included).
	routed := make(map[uint]*ndarray.Array, len(views))
	routed[0] = cube
	masksByPop := make([]uint, 0, 1<<uint(d))
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		masksByPop = append(masksByPop, mask)
	}
	sort.Slice(masksByPop, func(i, j int) bool {
		pi, pj := bits.OnesCount(uint(masksByPop[i])), bits.OnesCount(uint(masksByPop[j]))
		if pi != pj {
			return pi < pj
		}
		return masksByPop[i] < masksByPop[j]
	})
	for _, mask := range masksByPop {
		// Smallest parent: drop one aggregated dimension.
		bestParent := uint(0)
		bestVol := -1
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) == 0 {
				continue
			}
			parent := mask &^ (1 << uint(m))
			if v := volOf(parent); bestVol < 0 || v < bestVol {
				bestVol = v
				bestParent = parent
			}
		}
		src := routed[bestParent]
		out := src
		// Cascade the one remaining dimension down to a single cell,
		// counting generated cells.
		dim := -1
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) != 0 && bestParent&(1<<uint(m)) == 0 {
				dim = m
			}
		}
		for out.Dim(dim) > 1 {
			next, err := haar.Partial(out, dim)
			if err != nil {
				return nil, err
			}
			res.RoutedOps += next.Size()
			out = next
		}
		routed[mask] = out
	}
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		want := computed[mask]
		got := routed[mask].Data()
		for i := range want {
			if diff := want[i] - got[i]; diff > 1e-6 || diff < -1e-6 {
				res.Verified = false
			}
		}
	}

	// Verify all strategies agree: recompute each view directly and compare.
	for mask := uint(1); mask < 1<<uint(d); mask++ {
		want, err := haar.ApplyRect(cube, views[mask])
		if err != nil {
			return nil, err
		}
		got := computed[mask]
		for i, v := range want.Data() {
			if diff := v - got[i]; diff > 1e-6 || diff < -1e-6 {
				res.Verified = false
			}
		}
	}
	return res, nil
}

// FormatCubeComputation renders the E12 report.
func FormatCubeComputation(r *CubeCompResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Full-cube computation cost (E12) on shape %v: additions to build all 2^d views\n", r.Shape)
	fmt.Fprintf(&b, "%-36s %14s %10s\n", "strategy", "additions", "vs naive")
	rows := []struct {
		name string
		ops  int
	}{
		{"naive (each view from cube)", r.NaiveOps},
		{"lattice smallest-parent [2] (model)", r.LatticeOps},
		{"Haar cascades, heuristic routing", r.SharedOps},
		{"Haar cascades, lattice routing", r.RoutedOps},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-36s %14d %9.1f%%\n", row.name, row.ops, 100*float64(row.ops)/float64(r.NaiveOps))
	}
	fmt.Fprintf(&b, "all strategies verified identical: %v\n", r.Verified)
	return b.String()
}
