// Package experiments regenerates every table and figure of the paper's
// evaluation (§7) plus the supplementary structural checks, as documented
// in DESIGN.md and EXPERIMENTS.md:
//
//	Table 1 — view element graph sizes (E1)
//	Table 2 — pedagogical example costs (E2, with Figure 7's graph)
//	Figure 8 — Experiment 1: non-redundant basis processing costs (E3)
//	Figure 9 — Experiment 2: storage vs processing frontiers (E4)
//	Bases    — §4.3 basis volumes (E5)
//	Ranges   — §6 range-aggregation costs (E6)
//
// Each experiment returns plain data plus a formatted text rendering, so
// cmd/repro can print the same rows/series the paper reports.
package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"viewcube/internal/core"
	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	D, N               int
	Nav, Niv, Nrv, Nve int
}

// Table1 returns the exact rows of the paper's Table 1.
func Table1() []Table1Row {
	configs := []struct{ d, n int }{{2, 256}, {3, 32}, {4, 16}, {5, 8}, {8, 4}}
	rows := make([]Table1Row, len(configs))
	for i, c := range configs {
		shape := make([]int, c.d)
		for m := range shape {
			shape[m] = c.n
		}
		counts := velement.MustSpace(shape...).Count()
		rows[i] = Table1Row{
			D: c.d, N: c.n,
			Nav: counts.Aggregated, Niv: counts.Intermediate,
			Nrv: counts.Residual, Nve: counts.Elements,
		}
	}
	return rows
}

// FormatTable1 renders Table 1 in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: view element counts (d = dimensions, n = domain size)\n")
	fmt.Fprintf(&b, "%-12s", "")
	for _, r := range rows {
		fmt.Fprintf(&b, " d=%d,n=%-6d", r.D, r.N)
	}
	b.WriteString("\n")
	line := func(name string, get func(Table1Row) int) {
		fmt.Fprintf(&b, "%-12s", name)
		for _, r := range rows {
			fmt.Fprintf(&b, " %-11d", get(r))
		}
		b.WriteString("\n")
	}
	line("N_av", func(r Table1Row) int { return r.Nav })
	line("N_iv", func(r Table1Row) int { return r.Niv })
	line("N_rv", func(r Table1Row) int { return r.Nrv })
	line("N_ve", func(r Table1Row) int { return r.Nve })
	return b.String()
}

// PedagogicalElements is the Figure 7 node mapping on the 2×2 cube (see
// internal/core's tests and DESIGN.md for its derivation).
var PedagogicalElements = map[string]freq.Rect{
	"V0": {1, 1}, "V1": {2, 1}, "V2": {2, 2}, "V3": {2, 3}, "V4": {3, 1},
	"V5": {3, 2}, "V6": {3, 3}, "V7": {1, 2}, "V8": {1, 3},
}

// Table2Row is one row of Table 2.
type Table2Row struct {
	Set        []string
	Processing float64
	Storage    int
	Basis      bool
	Redundant  bool
}

// Table2 evaluates the paper's ten element sets on the pedagogical example
// (f1 = f7 = 0.5; processing costs are the unweighted sums the paper
// tabulates).
func Table2() []Table2Row {
	s := velement.MustSpace(2, 2)
	queries := []core.Query{
		{Rect: PedagogicalElements["V1"], Freq: 0.5},
		{Rect: PedagogicalElements["V7"], Freq: 0.5},
	}
	sets := [][]string{
		{"V3", "V6", "V7"},
		{"V1", "V5", "V6"},
		{"V0"},
		{"V1", "V4"},
		{"V7", "V8"},
		{"V2", "V3", "V5", "V6"},
		{"V0", "V1", "V7"},
		{"V1", "V7"},
		{"V3", "V7"},
		{"V2", "V3", "V5"},
	}
	rows := make([]Table2Row, len(sets))
	for i, names := range sets {
		set := make([]freq.Rect, len(names))
		for j, n := range names {
			set[j] = PedagogicalElements[n]
		}
		ev := core.NewSetEvaluator(s, set)
		rows[i] = Table2Row{
			Set:        names,
			Processing: ev.UnweightedTotalCost(queries),
			Storage:    s.SetVolume(set),
			Basis:      freq.Complete(set, s.Root(), s.MaxDepths()),
			Redundant:  !freq.NonRedundant(set),
		}
	}
	return rows
}

// FormatTable2 renders Table 2 in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2: pedagogical example (f1 = f7 = 0.5)\n")
	fmt.Fprintf(&b, "%-22s %-6s %-10s %-8s %-9s\n", "View element set", "Basis", "Redundant", "Proc", "Storage")
	yn := func(v bool) string {
		if v {
			return "Yes"
		}
		return "No"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %-6s %-10s %-8g %-9d\n",
			"{"+strings.Join(r.Set, ",")+"}", yn(r.Basis), yn(r.Redundant), r.Processing, r.Storage)
	}
	return b.String()
}

// CostModel selects how basis processing costs are computed in
// Experiment 1: the additive Eq. 29 model Algorithm 1 optimises, or the
// operational Procedure 3 model the assembly engine executes.
type CostModel int

const (
	// ModelEq29 is the additive support-cost model of Eq. 26–29.
	ModelEq29 CostModel = iota
	// ModelProc3 is the operational min-cost generation model of
	// Procedure 3.
	ModelProc3
)

func (m CostModel) String() string {
	if m == ModelProc3 {
		return "procedure3"
	}
	return "eq29"
}

// Fig8Result holds Experiment 1's per-trial and aggregate outcomes.
type Fig8Result struct {
	Shape   []int
	Model   CostModel
	D, W, V []float64 // per-trial processing costs
	AvgD    float64
	AvgW    float64
	AvgV    float64
	RatioVD float64 // the paper reports 53.8% on average
	RatioWD float64
}

// Fig8 runs Experiment 1 (§7.2.1): trials random view-access populations on
// the cube of the given shape; for each, the processing cost of [D] the
// data cube alone, [W] the wavelet basis, and [V] the Algorithm 1 optimum.
// The paper uses a 4-dimensional cube with domain size 16 (923,521 view
// elements), 100 trials, and uniform random frequencies over the 2^d
// aggregated views.
func Fig8(shape []int, trials int, seed int64, model CostModel) (*Fig8Result, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	wavelet := velement.WaveletBasis(s)
	dcube := []freq.Rect{s.Root()}
	res := &Fig8Result{Shape: append([]int(nil), shape...), Model: model}
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		views := s.AggregatedViews()
		queries := make([]core.Query, len(views))
		for i, v := range views {
			queries[i] = core.Query{Rect: v, Freq: rng.Float64()}
		}
		core.NormalizeFrequencies(queries)
		sel, err := core.SelectBasis(s, queries)
		if err != nil {
			return nil, err
		}
		var d, w, v float64
		switch model {
		case ModelProc3:
			d = core.TotalProcessingCost(s, dcube, queries)
			w = core.TotalProcessingCost(s, wavelet, queries)
			v = core.TotalProcessingCost(s, sel.Basis, queries)
		default:
			d = core.BasisCost(s, dcube, queries)
			w = core.BasisCost(s, wavelet, queries)
			v = sel.Cost
		}
		res.D = append(res.D, d)
		res.W = append(res.W, w)
		res.V = append(res.V, v)
		res.AvgD += d / float64(trials)
		res.AvgW += w / float64(trials)
		res.AvgV += v / float64(trials)
	}
	if res.AvgD > 0 {
		res.RatioVD = res.AvgV / res.AvgD
		res.RatioWD = res.AvgW / res.AvgD
	}
	return res, nil
}

// FormatFig8 renders the Figure 8 series: one row per trial plus the
// averages and the headline ratio.
func FormatFig8(r *Fig8Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8 (Experiment 1): shape %v, %d trials, cost model %s\n",
		r.Shape, len(r.D), r.Model)
	fmt.Fprintf(&b, "%-6s %14s %14s %14s\n", "trial", "[D] data cube", "[W] wavelet", "[V] Algorithm 1")
	for i := range r.D {
		fmt.Fprintf(&b, "%-6d %14.1f %14.1f %14.1f\n", i+1, r.D[i], r.W[i], r.V[i])
	}
	fmt.Fprintf(&b, "%-6s %14.1f %14.1f %14.1f\n", "avg", r.AvgD, r.AvgW, r.AvgV)
	fmt.Fprintf(&b, "[V]/[D] = %.1f%% (paper: 53.8%%)   [W]/[D] = %.2f\n",
		100*r.RatioVD, r.RatioWD)
	return b.String()
}

// Fig9Result holds Experiment 2's averaged storage/processing frontier.
type Fig9Result struct {
	Shape      []int
	Trials     int
	Storage    []float64 // relative storage grid (multiples of Vol(A))
	ElemCost   []float64 // [V] averaged cost at each grid point
	ViewCost   []float64 // [D] averaged cost at each grid point
	PointA     float64   // avg element-method cost at storage 1.0
	PointB     float64   // avg view-method cost at storage 1.0
	MaxStorage float64   // (n+1)^d / n^d, the paper's 2.44 for n=4, d=4
}

// Fig9 runs Experiment 2 (§7.2.2): per trial, the greedy view method [D]
// (data cube + greedy views) against the greedy element method [V]
// (Algorithm 1 basis + Algorithm 2 with obsolete-element pruning), averaged
// on a relative-storage grid. The paper uses a 4-dimensional cube with
// domain size 4, ten trials, and random frequencies over the proper
// aggregated views (see DESIGN.md on the root-view choice).
func Fig9(shape []int, trials, gridSteps int, seed int64) (*Fig9Result, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	vol := s.CubeVolume()
	maxStorage := 1.0
	for _, n := range shape {
		maxStorage *= float64(n+1) / float64(n)
	}
	target := int(math.Ceil(maxStorage*float64(vol))) + 1
	res := &Fig9Result{
		Shape:      append([]int(nil), shape...),
		Trials:     trials,
		MaxStorage: maxStorage,
	}
	for i := 0; i <= gridSteps; i++ {
		rel := 1 + (maxStorage+0.05-1)*float64(i)/float64(gridSteps)
		res.Storage = append(res.Storage, rel)
	}
	res.ElemCost = make([]float64, len(res.Storage))
	res.ViewCost = make([]float64, len(res.Storage))
	rng := rand.New(rand.NewSource(seed))
	all := core.AllElements(s)
	for trial := 0; trial < trials; trial++ {
		views := s.AggregatedViews()
		queries := make([]core.Query, 0, len(views)-1)
		for _, v := range views[1:] {
			queries = append(queries, core.Query{Rect: v, Freq: rng.Float64()})
		}
		core.NormalizeFrequencies(queries)
		sel, err := core.SelectBasis(s, queries)
		if err != nil {
			return nil, err
		}
		elem, err := core.GreedyRedundantPruned(s, sel.Basis, all, queries, target)
		if err != nil {
			return nil, err
		}
		view, err := core.GreedyViews(s, queries, target)
		if err != nil {
			return nil, err
		}
		es, ec := elem.Frontier()
		vs, vc := view.Frontier()
		for i, rel := range res.Storage {
			budget := int(rel * float64(vol))
			res.ElemCost[i] += frontierAt(es, ec, budget) / float64(trials)
			res.ViewCost[i] += frontierAt(vs, vc, budget) / float64(trials)
		}
		res.PointA += elem.InitialCost / float64(trials)
		res.PointB += view.InitialCost / float64(trials)
	}
	return res, nil
}

// frontierAt returns the best (lowest) cost achieved at or under the given
// storage budget along a greedy trajectory.
func frontierAt(storage []int, cost []float64, budget int) float64 {
	best := math.Inf(1)
	for i := range storage {
		if storage[i] <= budget && cost[i] < best {
			best = cost[i]
		}
	}
	return best
}

// FormatFig9 renders the Figure 9 series.
func FormatFig9(r *Fig9Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9 (Experiment 2): shape %v, %d trials, max storage %.2f\n",
		r.Shape, r.Trials, r.MaxStorage)
	fmt.Fprintf(&b, "%-10s %16s %16s\n", "storage", "[V] elements", "[D] views")
	for i := range r.Storage {
		fmt.Fprintf(&b, "%-10.2f %16.2f %16.2f\n", r.Storage[i], r.ElemCost[i], r.ViewCost[i])
	}
	fmt.Fprintf(&b, "point a (elements @1.0) = %.2f   point b (views @1.0) = %.2f\n", r.PointA, r.PointB)
	return b.String()
}
