package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"viewcube/internal/assembly"
	"viewcube/internal/bestbasis"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// CompressRow is one density point of the E8 compression experiment.
type CompressRow struct {
	Density      float64 // requested nonzero fraction of the cube
	CubeNonzeros int     // nonzeros in the raw cube
	Wavelet      int     // coefficients stored by the fixed wavelet basis
	BestBasis    int     // coefficients stored by the entropy-guided best basis
	Lossless     bool    // decompression reproduced the cube exactly
}

// CompressResult is the E8 outcome: wavelet-packet compression of sparse
// cubes (the §4.3 "compact representation" the paper leaves unexplored).
type CompressResult struct {
	Shape []int
	Rows  []CompressRow
}

// Compress runs E8 on the given shape across cube densities: for each
// density, the stored-coefficient counts of the raw cube, the fixed wavelet
// basis, and the best wavelet-packet basis (nonzero-count functional,
// threshold 0 so everything is lossless).
func Compress(shape []int, densities []float64, seed int64) (*CompressResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cost := bestbasis.NonzeroCost(0)
	res := &CompressResult{Shape: append([]int(nil), shape...)}
	for _, density := range densities {
		cube := workload.SparseCube(rng, density, 100, shape...)
		raw := int(cost(cube))

		waveletStored := 0
		mat, err := assembly.NewMaterializer(s, cube)
		if err != nil {
			return nil, err
		}
		for _, r := range velement.WaveletBasis(s) {
			a, err := mat.Element(r)
			if err != nil {
				return nil, err
			}
			waveletStored += int(cost(a))
		}

		comp, err := bestbasis.Compress(s, cube, cost, 0)
		if err != nil {
			return nil, err
		}
		back, err := comp.Decompress()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CompressRow{
			Density:      density,
			CubeNonzeros: raw,
			Wavelet:      waveletStored,
			BestBasis:    comp.StoredValues(),
			Lossless:     back.Equal(cube, 1e-9),
		})
	}
	return res, nil
}

// CompressClustered is E8's second regime: the cube is a constant value on
// one dyadic-aligned block covering the given fraction of the volume. Here
// the best basis isolates the block and stores a handful of coefficients —
// far fewer than the raw nonzeros — which is the paper's compression claim
// in its strongest form.
func CompressClustered(shape []int, fracs []float64, seed int64) (*CompressResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cost := bestbasis.NonzeroCost(0)
	res := &CompressResult{Shape: append([]int(nil), shape...)}
	for _, frac := range fracs {
		cube := workload.DyadicBlockCube(rng, 7, frac, shape...)
		raw := int(cost(cube))

		waveletStored := 0
		mat, err := assembly.NewMaterializer(s, cube)
		if err != nil {
			return nil, err
		}
		for _, r := range velement.WaveletBasis(s) {
			a, err := mat.Element(r)
			if err != nil {
				return nil, err
			}
			waveletStored += int(cost(a))
		}

		comp, err := bestbasis.Compress(s, cube, cost, 0)
		if err != nil {
			return nil, err
		}
		back, err := comp.Decompress()
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CompressRow{
			Density:      frac,
			CubeNonzeros: raw,
			Wavelet:      waveletStored,
			BestBasis:    comp.StoredValues(),
			Lossless:     back.Equal(cube, 1e-9),
		})
	}
	return res, nil
}

// FormatCompress renders the E8 report.
func FormatCompress(r *CompressResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Wavelet-packet compression (E8) on shape %v (stored coefficients, lossless)\n", r.Shape)
	fmt.Fprintf(&b, "%-9s %14s %14s %14s %10s\n", "density", "raw nonzeros", "wavelet", "best basis", "lossless")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9.2f %14d %14d %14d %10v\n",
			row.Density, row.CubeNonzeros, row.Wavelet, row.BestBasis, row.Lossless)
	}
	return b.String()
}

// LossyRow is one threshold point of the E11 lossy-compression tradeoff.
type LossyRow struct {
	Threshold    float64
	StoredValues int
	MaxAbsError  float64
	RMSError     float64
}

// Lossy runs E11: compressing a smooth-plus-noise cube at increasing
// coefficient thresholds, measuring stored values against reconstruction
// error. Threshold 0 must be exact; larger thresholds trade error for
// space.
func Lossy(shape []int, thresholds []float64, seed int64) ([]LossyRow, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	// Smooth signal (low-frequency ramp products) plus small noise: the
	// regime where thresholding pays.
	cube := workload.RandomCube(rng, 2, shape...)
	idx := make([]int, len(shape))
	total := 1
	for _, n := range shape {
		total *= n
	}
	for off := 0; off < total; off++ {
		base := 100.0
		for m, n := range shape {
			base += 40 * float64(idx[m]) / float64(n)
		}
		cube.Data()[off] += base
		for m := len(shape) - 1; m >= 0; m-- {
			idx[m]++
			if idx[m] < shape[m] {
				break
			}
			idx[m] = 0
		}
	}
	var rows []LossyRow
	for _, tol := range thresholds {
		comp, err := bestbasis.Compress(s, cube, bestbasis.NonzeroCost(tol), tol)
		if err != nil {
			return nil, err
		}
		back, err := comp.Decompress()
		if err != nil {
			return nil, err
		}
		maxErr := back.MaxAbsDiff(cube)
		sq := 0.0
		for i, v := range back.Data() {
			d := v - cube.Data()[i]
			sq += d * d
		}
		rows = append(rows, LossyRow{
			Threshold:    tol,
			StoredValues: comp.StoredValues(),
			MaxAbsError:  maxErr,
			RMSError:     math.Sqrt(sq / float64(total)),
		})
	}
	return rows, nil
}

// FormatLossy renders the E11 report.
func FormatLossy(shape []int, rows []LossyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Lossy compression tradeoff (E11) on shape %v\n", shape)
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "threshold", "stored values", "max |err|", "rms err")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12g %14d %14.3f %14.4f\n", r.Threshold, r.StoredValues, r.MaxAbsError, r.RMSError)
	}
	return b.String()
}
