package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/rangeagg"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// BasisReport describes one named basis of §4.3 (E5).
type BasisReport struct {
	Name          string
	Elements      int
	Volume        int
	RelVolume     float64 // volume / n^d
	Complete      bool
	NonRedundant  bool
	FormulaVolume float64 // the closed form the paper states, n^d-relative
}

// Bases evaluates the §4.3 named bases on the given cube shape and checks
// their volumes against the paper's closed forms: wavelet = n^d, view
// hierarchy = (n+1)^d, wavelet packets = n^d, Gaussian pyramid = the
// geometric level sum.
func Bases(shape []int, seed int64) ([]BasisReport, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	vol := float64(s.CubeVolume())
	hierVol := 1.0
	for _, n := range shape {
		hierVol *= float64(n + 1)
	}
	pyramidVol := 0.0
	for _, r := range velement.GaussianPyramid(s) {
		pyramidVol += float64(s.Volume(r))
	}
	rng := rand.New(rand.NewSource(seed))
	named := []struct {
		name    string
		set     []freq.Rect
		formula float64 // relative to n^d
	}{
		{"wavelet basis", velement.WaveletBasis(s), 1},
		{"Gaussian pyramid", velement.GaussianPyramid(s), pyramidVol / vol},
		{"view hierarchy", velement.ViewHierarchy(s), hierVol / vol},
		{"wavelet packets (random)", velement.RandomPacketBasis(s, rng, 0.3), 1},
		{"data cube only", []freq.Rect{s.Root()}, 1},
	}
	out := make([]BasisReport, len(named))
	for i, n := range named {
		v := s.SetVolume(n.set)
		out[i] = BasisReport{
			Name:          n.name,
			Elements:      len(n.set),
			Volume:        v,
			RelVolume:     float64(v) / vol,
			Complete:      freq.Complete(n.set, s.Root(), s.MaxDepths()),
			NonRedundant:  freq.NonRedundant(n.set),
			FormulaVolume: n.formula,
		}
	}
	return out, nil
}

// FormatBases renders the E5 report.
func FormatBases(shape []int, rows []BasisReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Named view element bases (§4.3) on shape %v\n", shape)
	fmt.Fprintf(&b, "%-26s %9s %9s %10s %9s %13s %9s\n",
		"basis", "elements", "volume", "rel vol", "complete", "non-redundant", "formula")
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-26s %9d %9d %10.3f %9s %13s %9.3f\n",
			r.Name, r.Elements, r.Volume, r.RelVolume, yn(r.Complete), yn(r.NonRedundant), r.FormulaVolume)
	}
	return b.String()
}

// RangeResult summarises the E6 range-aggregation comparison (§6).
type RangeResult struct {
	Shape        []int
	Queries      int
	ScanCells    int // cells read by direct scans
	ElementCells int // cells read via intermediate view elements
	PrefixCells  int // cells read via the prefix-sum cube (2^d per query)
	MaxError     float64
}

// Ranges runs E6: random range-SUM queries answered three ways — direct
// scan, intermediate view elements (the §6 method), and the prefix-sum
// cube baseline — verifying agreement and comparing cells read.
func Ranges(shape []int, queries int, seed int64) (*RangeResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	cube := workload.RandomCube(rng, 100, shape...)
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		return nil, err
	}
	q := rangeagg.NewQuerier(s, mat)
	pc := rangeagg.NewPrefixCube(cube)
	res := &RangeResult{Shape: append([]int(nil), shape...), Queries: queries}
	for _, box := range workload.RandomBoxes(shape, rng, queries) {
		direct, err := rangeagg.DirectScan(cube, box)
		if err != nil {
			return nil, err
		}
		viaElems, err := q.RangeSum(box)
		if err != nil {
			return nil, err
		}
		viaPrefix, err := pc.RangeSum(box)
		if err != nil {
			return nil, err
		}
		if e := abs(direct - viaElems); e > res.MaxError {
			res.MaxError = e
		}
		if e := abs(direct - viaPrefix); e > res.MaxError {
			res.MaxError = e
		}
		res.ScanCells += box.Cells()
		res.PrefixCells += 1 << uint(len(shape))
	}
	res.ElementCells = q.CellsRead
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// FormatRanges renders the E6 report.
func FormatRanges(r *RangeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Range aggregation (§6) on shape %v, %d random range-SUM queries\n", r.Shape, r.Queries)
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "method", "cells read", "per query")
	rows := []struct {
		name  string
		cells int
	}{
		{"direct scan", r.ScanCells},
		{"intermediate view elements", r.ElementCells},
		{"prefix-sum cube (Ho et al.)", r.PrefixCells},
	}
	for _, row := range rows {
		fmt.Fprintf(&b, "%-28s %12d %14.1f\n", row.name, row.cells, float64(row.cells)/float64(r.Queries))
	}
	fmt.Fprintf(&b, "max |error| across methods: %g\n", r.MaxError)
	return b.String()
}
