package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"viewcube/internal/core"
	"viewcube/internal/freq"
	"viewcube/internal/velement"
	"viewcube/internal/workload"
)

// SkewRow is one skew point of the E9 sensitivity experiment.
type SkewRow struct {
	Skew    float64
	AvgD    float64
	AvgV    float64
	RatioVD float64
}

// SkewResult reports how Algorithm 1's advantage over the raw data cube
// grows with workload skew — a sensitivity study the paper does not run but
// that its motivation (frequencies "observed on-line") implies: the more
// concentrated the accesses, the more a tuned basis saves.
type SkewResult struct {
	Shape  []int
	Trials int
	Rows   []SkewRow
}

// Skew runs E9: for each Zipf skew value, the average Eq. 29 processing
// cost of the data cube alone versus the Algorithm 1 basis over Zipf view
// populations.
func Skew(shape []int, skews []float64, trials int, seed int64) (*SkewResult, error) {
	s, err := velement.NewSpace(shape)
	if err != nil {
		return nil, err
	}
	res := &SkewResult{Shape: append([]int(nil), shape...), Trials: trials}
	dcube := []freq.Rect{s.Root()}
	for _, skew := range skews {
		rng := rand.New(rand.NewSource(seed))
		var sumD, sumV float64
		for trial := 0; trial < trials; trial++ {
			queries := workload.ZipfViewPopulation(s, rng, skew, true)
			sel, err := core.SelectBasis(s, queries)
			if err != nil {
				return nil, err
			}
			sumD += core.BasisCost(s, dcube, queries)
			sumV += sel.Cost
		}
		row := SkewRow{Skew: skew, AvgD: sumD / float64(trials), AvgV: sumV / float64(trials)}
		if row.AvgD > 0 {
			row.RatioVD = row.AvgV / row.AvgD
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// FormatSkew renders the E9 report.
func FormatSkew(r *SkewResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload-skew sensitivity (E9) on shape %v, %d trials per point\n", r.Shape, r.Trials)
	fmt.Fprintf(&b, "%-8s %14s %14s %10s\n", "skew", "[D] data cube", "[V] Alg. 1", "[V]/[D]")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8.2f %14.1f %14.1f %9.1f%%\n", row.Skew, row.AvgD, row.AvgV, 100*row.RatioVD)
	}
	return b.String()
}
