package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := []Table1Row{
		{2, 256, 4, 81, 261040, 261121},
		{3, 32, 8, 216, 249831, 250047},
		{4, 16, 16, 625, 922896, 923521},
		{5, 8, 32, 1024, 758351, 759375},
		{8, 4, 256, 6561, 5758240, 5764801},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		if r != want[i] {
			t.Errorf("row %d: %+v, want %+v", i, r, want[i])
		}
	}
	text := FormatTable1(rows)
	for _, needle := range []string{"5764801", "N_ve", "d=4,n=16"} {
		if !strings.Contains(text, needle) {
			t.Errorf("formatted table missing %q", needle)
		}
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2()
	type expect struct {
		proc             float64
		storage          int
		basis, redundant bool
	}
	want := []expect{
		{3, 4, true, false},
		{3, 4, true, false},
		{4, 4, true, false},
		{4, 4, true, false},
		{4, 4, true, false},
		{4, 4, true, false},
		{0, 8, true, true},
		{0, 4, false, true},
		{3, 3, false, false},
		{4, 3, false, false},
	}
	if len(rows) != len(want) {
		t.Fatalf("%d rows, want %d", len(rows), len(want))
	}
	for i, r := range rows {
		w := want[i]
		if r.Processing != w.proc || r.Storage != w.storage || r.Basis != w.basis || r.Redundant != w.redundant {
			t.Errorf("row %d (%v): got (%g,%d,%v,%v), want (%g,%d,%v,%v)",
				i, r.Set, r.Processing, r.Storage, r.Basis, r.Redundant,
				w.proc, w.storage, w.basis, w.redundant)
		}
	}
	text := FormatTable2(rows)
	if !strings.Contains(text, "{V1,V5,V6}") {
		t.Error("formatted table missing a set")
	}
}

// A scaled-down Experiment 1 (2-D cube) must show the paper's orderings:
// [V] ≤ [D] and [V] ≤ [W] always (guaranteed), and under Eq. 29 with the
// root queried, [W] worse than [D] on average.
func TestFig8SmallShape(t *testing.T) {
	res, err := Fig8([]int{16, 16}, 20, 1, ModelEq29)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.D) != 20 {
		t.Fatalf("%d trials recorded, want 20", len(res.D))
	}
	for i := range res.D {
		if res.V[i] > res.D[i]+1e-9 || res.V[i] > res.W[i]+1e-9 {
			t.Fatalf("trial %d: [V]=%g must not exceed [D]=%g or [W]=%g",
				i, res.V[i], res.D[i], res.W[i])
		}
	}
	if res.RatioVD <= 0 || res.RatioVD >= 1 {
		t.Fatalf("[V]/[D] = %g, want in (0,1)", res.RatioVD)
	}
	if res.RatioWD <= 1 {
		t.Fatalf("[W]/[D] = %g, want > 1 under Eq.29 with root queried", res.RatioWD)
	}
	text := FormatFig8(res)
	if !strings.Contains(text, "[V]/[D]") {
		t.Error("formatted figure missing ratio line")
	}
}

func TestFig8Proc3Model(t *testing.T) {
	res, err := Fig8([]int{8, 8}, 5, 2, ModelProc3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.D {
		if res.V[i] > res.D[i]+1e-9 {
			t.Fatalf("trial %d: [V] must not exceed [D] under Procedure 3", i)
		}
	}
	if res.Model.String() != "procedure3" || ModelEq29.String() != "eq29" {
		t.Error("CostModel.String wrong")
	}
}

func TestFig8BadShape(t *testing.T) {
	if _, err := Fig8([]int{3}, 1, 1, ModelEq29); err == nil {
		t.Fatal("want error for non-power-of-two shape")
	}
}

// A scaled-down Experiment 2 (2-D cube) must show Figure 9's shape: the
// element frontier at or below the view frontier on the whole grid, point
// a ≤ point b, and both curves reaching zero at full storage.
func TestFig9SmallShape(t *testing.T) {
	res, err := Fig9([]int{4, 4}, 4, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MaxStorage-25.0/16) > 1e-9 {
		t.Fatalf("max storage %g, want 25/16", res.MaxStorage)
	}
	for i := range res.Storage {
		if res.ElemCost[i] > res.ViewCost[i]+1e-9 {
			t.Fatalf("at storage %.2f element method %g above view method %g",
				res.Storage[i], res.ElemCost[i], res.ViewCost[i])
		}
	}
	if res.PointA > res.PointB+1e-9 {
		t.Fatalf("point a (%g) must not exceed point b (%g)", res.PointA, res.PointB)
	}
	last := len(res.Storage) - 1
	if res.ElemCost[last] != 0 || res.ViewCost[last] != 0 {
		t.Fatalf("both methods must reach zero at full storage, got %g and %g",
			res.ElemCost[last], res.ViewCost[last])
	}
	text := FormatFig9(res)
	if !strings.Contains(text, "point a") {
		t.Error("formatted figure missing summary")
	}
}

func TestFig9BadShape(t *testing.T) {
	if _, err := Fig9([]int{5}, 1, 4, 1); err == nil {
		t.Fatal("want error for non-power-of-two shape")
	}
}

func TestBasesReport(t *testing.T) {
	rows, err := Bases([]int{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BasisReport{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	wb := byName["wavelet basis"]
	if !wb.Complete || !wb.NonRedundant || wb.RelVolume != 1 {
		t.Fatalf("wavelet basis report wrong: %+v", wb)
	}
	vh := byName["view hierarchy"]
	if !vh.Complete || vh.NonRedundant {
		t.Fatalf("view hierarchy report wrong: %+v", vh)
	}
	if math.Abs(vh.RelVolume-25.0/16) > 1e-9 || math.Abs(vh.FormulaVolume-vh.RelVolume) > 1e-9 {
		t.Fatalf("view hierarchy volume %g, want (n+1)^d/n^d", vh.RelVolume)
	}
	gp := byName["Gaussian pyramid"]
	if !gp.Complete || gp.NonRedundant || math.Abs(gp.RelVolume-21.0/16) > 1e-9 {
		t.Fatalf("Gaussian pyramid report wrong: %+v", gp)
	}
	wp := byName["wavelet packets (random)"]
	if !wp.Complete || !wp.NonRedundant || wp.RelVolume != 1 {
		t.Fatalf("wavelet packets report wrong: %+v", wp)
	}
	text := FormatBases([]int{4, 4}, rows)
	if !strings.Contains(text, "Gaussian pyramid") {
		t.Error("formatted report missing a basis")
	}
	if _, err := Bases([]int{3}, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestRangesReport(t *testing.T) {
	res, err := Ranges([]int{32, 32}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxError > 1e-6 {
		t.Fatalf("methods disagree: max error %g", res.MaxError)
	}
	if res.ElementCells >= res.ScanCells {
		t.Fatalf("element method read %d cells, scan %d — should be far fewer",
			res.ElementCells, res.ScanCells)
	}
	if res.PrefixCells != 40*4 {
		t.Fatalf("prefix method reads 2^d per query: %d, want 160", res.PrefixCells)
	}
	text := FormatRanges(res)
	if !strings.Contains(text, "direct scan") {
		t.Error("formatted report missing a method")
	}
	if _, err := Ranges([]int{3}, 1, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestCompressReport(t *testing.T) {
	res, err := Compress([]int{16, 16}, []float64{0.05, 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if !row.Lossless {
			t.Fatalf("density %g: not lossless", row.Density)
		}
		if row.BestBasis > row.CubeNonzeros || row.BestBasis > row.Wavelet {
			t.Fatalf("density %g: best basis (%d) must not exceed raw (%d) or wavelet (%d)",
				row.Density, row.BestBasis, row.CubeNonzeros, row.Wavelet)
		}
	}
	if !strings.Contains(FormatCompress(res), "best basis") {
		t.Error("formatted report incomplete")
	}
	if _, err := Compress([]int{3}, []float64{0.1}, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestCompressClusteredIsolatesBlock(t *testing.T) {
	res, err := CompressClustered([]int{32, 32}, []float64{0.25, 0.0625}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if !row.Lossless {
			t.Fatalf("frac %g: not lossless", row.Density)
		}
		// A constant dyadic block collapses to far fewer coefficients than
		// its raw cell count.
		if row.BestBasis*4 > row.CubeNonzeros {
			t.Fatalf("frac %g: best basis %d vs raw %d — expected strong compression",
				row.Density, row.BestBasis, row.CubeNonzeros)
		}
	}
}

func TestSkewReport(t *testing.T) {
	res, err := Skew([]int{8, 8}, []float64{0, 2}, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RatioVD <= 0 || row.RatioVD > 1 {
			t.Fatalf("skew %g: ratio %g out of (0,1]", row.Skew, row.RatioVD)
		}
	}
	// Higher skew concentrates mass, so the tuned basis saves more.
	if res.Rows[1].RatioVD >= res.Rows[0].RatioVD {
		t.Fatalf("ratio should drop with skew: %g → %g", res.Rows[0].RatioVD, res.Rows[1].RatioVD)
	}
	if !strings.Contains(FormatSkew(res), "skew") {
		t.Error("formatted report incomplete")
	}
	if _, err := Skew([]int{3}, []float64{1}, 1, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestAdaptationReport(t *testing.T) {
	res, err := Adaptation([]int{8, 8, 8}, 4, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("%d phases, want 4", len(res.Phases))
	}
	var staticTotal, adaptTotal float64
	for _, p := range res.Phases {
		staticTotal += p.StaticOps
		adaptTotal += p.AdaptiveOps
	}
	if adaptTotal >= staticTotal {
		t.Fatalf("adaptive (%g) should beat static (%g) overall", adaptTotal, staticTotal)
	}
	if res.Phases[len(res.Phases)-1].Reconfigs == 0 {
		t.Fatal("adaptation never fired")
	}
	if !strings.Contains(FormatAdaptation(res), "adaptive") {
		t.Error("formatted report incomplete")
	}
	if _, err := Adaptation([]int{3}, 1, 10, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestLossyReport(t *testing.T) {
	rows, err := Lossy([]int{32, 32}, []float64{0, 1, 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].MaxAbsError > 1e-9 {
		t.Fatalf("threshold 0 must be lossless, max error %g", rows[0].MaxAbsError)
	}
	// More aggressive thresholds must not store more and must not shrink
	// the error below the lossless case.
	for i := 1; i < len(rows); i++ {
		if rows[i].StoredValues > rows[i-1].StoredValues {
			t.Fatalf("stored values must be non-increasing: %v", rows)
		}
	}
	if rows[2].MaxAbsError == 0 {
		t.Fatal("aggressive threshold should introduce error")
	}
	if !strings.Contains(FormatLossy([]int{32, 32}, rows), "threshold") {
		t.Error("format incomplete")
	}
	if _, err := Lossy([]int{3}, []float64{0}, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}

func TestCubeComputationReport(t *testing.T) {
	res, err := CubeComputation([]int{8, 8, 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatal("strategies disagree")
	}
	if res.LatticeOps >= res.NaiveOps {
		t.Fatalf("lattice (%d) should beat naive (%d)", res.LatticeOps, res.NaiveOps)
	}
	if res.SharedOps >= res.NaiveOps {
		t.Fatalf("shared cascades (%d) should beat naive (%d)", res.SharedOps, res.NaiveOps)
	}
	if res.RoutedOps != res.LatticeOps {
		t.Fatalf("lattice-routed cascades (%d) must match the lattice model (%d)",
			res.RoutedOps, res.LatticeOps)
	}
	if !strings.Contains(FormatCubeComputation(res), "lattice") {
		t.Error("format incomplete")
	}
	if _, err := CubeComputation([]int{3}, 1); err == nil {
		t.Fatal("want error for bad shape")
	}
}
