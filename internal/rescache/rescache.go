// Package rescache is the serving tier's answer cache: a generic,
// size-bounded (bytes and entries, LRU) cache of fully computed query
// results keyed by normalized query shape, with the same epoch-invalidation
// discipline as the plan cache (internal/plan.Cache) one layer below it.
//
// The plan cache amortises *compilation* — the Procedure 3 DP that turns a
// query shape into an executable plan — but the answer itself is still
// re-executed and re-scattered on every request. Under repeat-heavy traffic
// the answer is the thing worth keeping: a hit here skips planning,
// execution and scatter-gather entirely and costs one map lookup.
//
// Correctness mirrors the plan cache's epoch monotonicity argument:
//
//   - every entry is tagged with the epoch current when its computation
//     *started*;
//   - Invalidate (or an observed upstream epoch change via SyncUpstream)
//     bumps the epoch and drops every entry under the same lock, so an
//     entry tagged with an older epoch is never served again — even if its
//     computation raced the invalidation and stored afterwards;
//   - in-flight computations are keyed by {epoch, key}, so a caller that
//     observes the post-invalidation epoch can never join a flight started
//     before it (the post-invalidation-never-joins-stale-flights
//     guarantee).
//
// Since the epoch only moves forward and every cached value derives from a
// single epoch observation taken before its computation began, a served
// value is always one that was computed entirely within the epoch the
// caller observed: cache-on answers are bit-identical to cache-off answers.
package rescache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"viewcube/internal/obs"
)

// Options bounds a cache. Zero values pick the defaults.
type Options struct {
	// MaxEntries bounds the number of live entries. 0 defaults to 4096;
	// negative disables the entry bound.
	MaxEntries int
	// MaxBytes bounds the total estimated size of cached values. 0 defaults
	// to 64 MiB; negative disables the byte bound.
	MaxBytes int64
	// Size estimates one value's footprint in bytes. nil counts every value
	// as 1 (the cache degenerates to an entry-bounded LRU). A negative size
	// marks a value uncacheable: it is returned to callers (and coalesced
	// waiters) but never stored — how the coordinator keeps degraded partial
	// answers out of the cache.
	Size func(v any) int
}

const (
	// DefaultMaxEntries bounds entries when Options.MaxEntries is zero.
	DefaultMaxEntries = 4096
	// DefaultMaxBytes bounds bytes when Options.MaxBytes is zero.
	DefaultMaxBytes = 64 << 20
)

// Cache is an epoch-invalidated, size-bounded, singleflight-deduplicated
// result cache. All methods are safe for concurrent use; the nil *Cache is
// a valid always-miss cache that never stores (so serving paths can wire it
// unconditionally and gate on a single nil check).
type Cache[V any] struct {
	epoch    atomic.Uint64
	upstream atomic.Uint64 // last upstream epoch observed by SyncUpstream

	// Own counters back Stats(); met mirrors them into a Registry when one
	// is wired (the default metrics set is no-op and holds nothing).
	hits          atomic.Uint64
	misses        atomic.Uint64
	evictions     atomic.Uint64
	invalidations atomic.Uint64

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     *list.List // front = most recent
	bytes   int64

	fmu      sync.Mutex
	inflight map[flightKey]*flight[V]

	opt Options
	met *obs.ResultCacheMetrics
}

// item is one LRU slot.
type item[V any] struct {
	key   string
	epoch uint64
	val   V
	size  int64
}

// flightKey includes the epoch so a computation started before an
// invalidation is never joined by callers from the new epoch.
type flightKey struct {
	epoch uint64
	key   string
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New returns an empty cache at epoch 0 with no-op metrics.
func New[V any](opt Options) *Cache[V] {
	if opt.MaxEntries == 0 {
		opt.MaxEntries = DefaultMaxEntries
	}
	if opt.MaxBytes == 0 {
		opt.MaxBytes = DefaultMaxBytes
	}
	return &Cache[V]{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		inflight: make(map[flightKey]*flight[V]),
		opt:      opt,
		met:      obs.NewResultCacheMetrics(nil),
	}
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
// Call during wiring, before the cache is shared across goroutines. Safe on
// nil.
func (c *Cache[V]) SetMetrics(m *obs.ResultCacheMetrics) {
	if c == nil {
		return
	}
	if m == nil {
		m = obs.NewResultCacheMetrics(nil)
	}
	c.met = m
}

// Epoch returns the current epoch. Safe on nil.
func (c *Cache[V]) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Len returns the number of live entries. Safe on nil.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the estimated size of all live entries. Safe on nil.
func (c *Cache[V]) Bytes() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Invalidate bumps the epoch and drops every entry. Call it whenever the
// state answers were computed from changes (an update mutated cells, a
// reselection rewrote the materialised set, a rebuild swapped the cube
// generation). Returns the new epoch. Safe on nil (returns 0) and safe to
// call concurrently with readers: computations from the old epoch finish
// but their results are tagged stale and never served.
func (c *Cache[V]) Invalidate() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	n := c.invalidateLocked()
	c.mu.Unlock()
	return n
}

// invalidateLocked bumps the epoch and clears the LRU. Caller holds c.mu.
func (c *Cache[V]) invalidateLocked() uint64 {
	n := c.epoch.Add(1)
	c.entries = make(map[string]*list.Element)
	c.lru.Init()
	c.bytes = 0
	c.met.Bytes.Set(0)
	c.met.Entries.Set(0)
	c.invalidations.Add(1)
	c.met.Invalidations.Inc()
	return n
}

// SyncUpstream observes the authoritative upstream epoch — typically the
// serving engine's plan-cache epoch, which Update/Optimize/Reconfigure
// already bump under the engine's write lock. When the observed value
// differs from the last observation the cache invalidates, so answers
// derived from pre-change state become unreachable without the mutation
// paths needing to know this cache exists. Call it before GetOrCompute on
// every query. Safe on nil.
func (c *Cache[V]) SyncUpstream(upstream uint64) {
	if c == nil || c.upstream.Load() == upstream {
		return
	}
	c.mu.Lock()
	if c.upstream.Load() != upstream {
		c.upstream.Store(upstream)
		c.invalidateLocked()
	}
	c.mu.Unlock()
}

// get returns the entry for key if it exists at the given epoch, marking it
// most recently used.
func (c *Cache[V]) get(epoch uint64, key string) (V, bool) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		it := el.Value.(*item[V])
		if it.epoch == epoch {
			c.lru.MoveToFront(el)
			c.mu.Unlock()
			return it.val, true
		}
	}
	c.mu.Unlock()
	var zero V
	return zero, false
}

// store inserts val under key tagged with its compute-start epoch, then
// evicts from the cold end until the cache is back inside its bounds.
// Values whose size function reports negative are not stored.
func (c *Cache[V]) store(epoch uint64, key string, val V) {
	size := int64(1)
	if c.opt.Size != nil {
		s := c.opt.Size(val)
		if s < 0 {
			return
		}
		size = int64(s)
	}
	if c.opt.MaxBytes > 0 && size > c.opt.MaxBytes {
		// An oversized value would evict the whole cache for one entry that
		// itself cannot stay; keep the working set instead.
		return
	}
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		// A racing flight from an older epoch (or a re-store) already holds
		// the slot; replace it in place.
		it := el.Value.(*item[V])
		c.bytes -= it.size
		c.lru.Remove(el)
		delete(c.entries, key)
	}
	el := c.lru.PushFront(&item[V]{key: key, epoch: epoch, val: val, size: size})
	c.entries[key] = el
	c.bytes += size
	for (c.opt.MaxEntries > 0 && len(c.entries) > c.opt.MaxEntries) ||
		(c.opt.MaxBytes > 0 && c.bytes > c.opt.MaxBytes) {
		cold := c.lru.Back()
		if cold == nil || cold == el && len(c.entries) == 1 {
			break
		}
		it := cold.Value.(*item[V])
		c.lru.Remove(cold)
		delete(c.entries, it.key)
		c.bytes -= it.size
		c.evictions.Add(1)
		c.met.Evictions.Inc()
	}
	c.met.Bytes.Set(c.bytes)
	c.met.Entries.Set(int64(len(c.entries)))
	c.mu.Unlock()
}

// GetOrCompute returns the cached value for key at the current epoch,
// computing, caching and LRU-promoting it on a miss. hit reports whether
// compute was skipped entirely — a cache hit, or a coalesced wait on
// another caller's identical in-flight computation (singleflight: N
// identical concurrent queries execute the underlying work exactly once).
// Errors propagate to every coalesced caller and nothing is cached. Cached
// values are shared across callers and must be treated as read-only.
//
// Safe on a nil receiver: compute runs and nothing is cached (hit false).
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (val V, hit bool, err error) {
	if c == nil {
		val, err = compute()
		return val, false, err
	}
	// The epoch is observed BEFORE the value is computed: if an invalidation
	// lands in between, the entry is tagged with the old epoch and never
	// served — the monotonicity invariant every correctness claim rests on.
	epoch := c.epoch.Load()
	if v, ok := c.get(epoch, key); ok {
		c.hits.Add(1)
		c.met.Hits.Inc()
		return v, true, nil
	}
	c.misses.Add(1)
	c.met.Misses.Inc()
	fk := flightKey{epoch: epoch, key: key}
	c.fmu.Lock()
	if f, ok := c.inflight[fk]; ok {
		c.fmu.Unlock()
		<-f.done
		return f.val, f.err == nil, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[fk] = f
	c.fmu.Unlock()

	f.val, f.err = compute()
	if f.err == nil {
		c.store(epoch, fk.key, f.val)
	}
	close(f.done)
	c.fmu.Lock()
	delete(c.inflight, fk)
	c.fmu.Unlock()
	return f.val, false, f.err
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Epoch         uint64 `json:"epoch"`
	Entries       int    `json:"entries"`
	Bytes         int64  `json:"bytes"`
}

// Stats snapshots the cache counters, size and epoch. Safe on nil.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	entries, bytes := len(c.entries), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Epoch:         c.Epoch(),
		Entries:       entries,
		Bytes:         bytes,
	}
}
