package rescache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"viewcube/internal/obs"
)

func TestHitMissBasics(t *testing.T) {
	c := New[int](Options{})
	calls := 0
	compute := func() (int, error) { calls++; return 42, nil }

	v, hit, err := c.GetOrCompute("k", compute)
	if err != nil || hit || v != 42 {
		t.Fatalf("first lookup: got v=%d hit=%v err=%v, want miss 42", v, hit, err)
	}
	v, hit, err = c.GetOrCompute("k", compute)
	if err != nil || !hit || v != 42 {
		t.Fatalf("second lookup: got v=%d hit=%v err=%v, want hit 42", v, hit, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

func TestErrorsPropagateAndNothingCached(t *testing.T) {
	c := New[int](Options{})
	boom := errors.New("boom")
	if _, hit, err := c.GetOrCompute("k", func() (int, error) { return 0, boom }); !errors.Is(err, boom) || hit {
		t.Fatalf("got hit=%v err=%v, want miss with boom", hit, err)
	}
	if c.Len() != 0 {
		t.Fatalf("error result was cached: %d entries", c.Len())
	}
	// The key is still computable after the failure.
	if v, _, err := c.GetOrCompute("k", func() (int, error) { return 7, nil }); err != nil || v != 7 {
		t.Fatalf("retry after error: v=%d err=%v", v, err)
	}
}

func TestLRUEvictionByEntries(t *testing.T) {
	c := New[int](Options{MaxEntries: 3, MaxBytes: -1})
	for i := 0; i < 3; i++ {
		c.GetOrCompute(fmt.Sprintf("k%d", i), func() (int, error) { return i, nil })
	}
	// Touch k0 so k1 is the coldest, then insert a fourth entry.
	if _, hit, _ := c.GetOrCompute("k0", nil); !hit {
		t.Fatal("k0 should be cached")
	}
	c.GetOrCompute("k3", func() (int, error) { return 3, nil })
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	if _, hit, _ := c.GetOrCompute("k1", func() (int, error) { return -1, nil }); hit {
		t.Fatal("k1 should have been evicted as the LRU entry")
	}
	if _, hit, _ := c.GetOrCompute("k0", nil); !hit {
		t.Fatal("recently used k0 should have survived eviction")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	c := New[string](Options{MaxEntries: -1, MaxBytes: 10, Size: func(v any) int { return len(v.(string)) }})
	c.GetOrCompute("a", func() (string, error) { return "xxxx", nil }) // 4 bytes
	c.GetOrCompute("b", func() (string, error) { return "yyyy", nil }) // 8 bytes total
	c.GetOrCompute("c", func() (string, error) { return "zzzz", nil }) // would be 12: evict "a"
	if c.Bytes() > 10 {
		t.Fatalf("bytes = %d, exceeds bound 10", c.Bytes())
	}
	if _, hit, _ := c.GetOrCompute("a", func() (string, error) { return "", nil }); hit {
		t.Fatal("coldest entry should have been evicted to fit the byte bound")
	}
	if _, hit, _ := c.GetOrCompute("c", nil); !hit {
		t.Fatal("newest entry should be cached")
	}
}

func TestUncacheableAndOversizedValues(t *testing.T) {
	c := New[string](Options{MaxBytes: 10, Size: func(v any) int {
		s := v.(string)
		if s == "partial" {
			return -1 // degraded answer: serve, never store
		}
		return len(s)
	}})
	v, hit, err := c.GetOrCompute("p", func() (string, error) { return "partial", nil })
	if err != nil || hit || v != "partial" {
		t.Fatalf("got v=%q hit=%v err=%v", v, hit, err)
	}
	if _, hit, _ := c.GetOrCompute("p", func() (string, error) { return "partial", nil }); hit {
		t.Fatal("negative-size value must not be stored")
	}
	// A value larger than the whole byte budget is returned but not stored.
	c.GetOrCompute("big", func() (string, error) { return "0123456789ab", nil })
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("oversized value stored: %d entries, %d bytes", c.Len(), c.Bytes())
	}
}

func TestInvalidateDropsEntriesAndBumpsEpoch(t *testing.T) {
	c := New[int](Options{})
	c.GetOrCompute("k", func() (int, error) { return 1, nil })
	if n := c.Invalidate(); n != 1 {
		t.Fatalf("epoch after invalidate = %d, want 1", n)
	}
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("invalidate left %d entries / %d bytes", c.Len(), c.Bytes())
	}
	if _, hit, _ := c.GetOrCompute("k", func() (int, error) { return 2, nil }); hit {
		t.Fatal("post-invalidation lookup must miss")
	}
	if st := c.Stats(); st.Invalidations != 1 || st.Epoch != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSyncUpstreamInvalidatesOnAnyChange(t *testing.T) {
	c := New[int](Options{})
	c.SyncUpstream(5)
	before := c.Stats().Invalidations
	c.GetOrCompute("k", func() (int, error) { return 1, nil })
	c.SyncUpstream(5) // unchanged: no-op
	if _, hit, _ := c.GetOrCompute("k", nil); !hit {
		t.Fatal("unchanged upstream epoch must not invalidate")
	}
	c.SyncUpstream(6) // moved forward
	if _, hit, _ := c.GetOrCompute("k", func() (int, error) { return 2, nil }); hit {
		t.Fatal("upstream change must invalidate")
	}
	// A rebuild can replace the engine and reset its epoch to a LOWER value;
	// "differs" (not "greater") must still invalidate.
	c.SyncUpstream(0)
	if _, hit, _ := c.GetOrCompute("k", func() (int, error) { return 3, nil }); hit {
		t.Fatal("upstream reset to a lower epoch must invalidate")
	}
	if got := c.Stats().Invalidations - before; got != 2 {
		t.Fatalf("invalidations = %d, want 2", got)
	}
}

// TestStaleComputationNeverServed pins the core epoch-monotonicity
// guarantee: a computation that began before an invalidation may finish and
// store, but its entry is tagged with the old epoch and never served.
func TestStaleComputationNeverServed(t *testing.T) {
	c := New[int](Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.GetOrCompute("k", func() (int, error) {
			close(started)
			<-release
			return 111, nil // stale answer computed at epoch 0
		})
	}()
	<-started
	c.Invalidate() // epoch 0 → 1 while the flight is still computing
	close(release)
	<-done
	v, hit, err := c.GetOrCompute("k", func() (int, error) { return 222, nil })
	if err != nil || hit || v != 222 {
		t.Fatalf("got v=%d hit=%v err=%v; stale 111 must not be served", v, hit, err)
	}
}

// TestPostInvalidationNeverJoinsStaleFlight pins the flight-key guarantee:
// a caller that observes the post-invalidation epoch computes fresh instead
// of coalescing onto a flight started before the invalidation.
func TestPostInvalidationNeverJoinsStaleFlight(t *testing.T) {
	c := New[int](Options{})
	started := make(chan struct{})
	release := make(chan struct{})
	staleDone := make(chan struct{})
	go func() {
		defer close(staleDone)
		c.GetOrCompute("k", func() (int, error) {
			close(started)
			<-release
			return 111, nil
		})
	}()
	<-started
	c.Invalidate()
	// The stale flight is still blocked in compute; a new caller at the new
	// epoch must not wait on it. If it (wrongly) joined, this would deadlock
	// until `release` closes and return 111.
	v, hit, err := c.GetOrCompute("k", func() (int, error) { return 222, nil })
	if err != nil || hit || v != 222 {
		t.Fatalf("got v=%d hit=%v err=%v; caller joined a stale flight", v, hit, err)
	}
	close(release)
	<-staleDone
}

// TestSingleflightExactlyOnce proves N identical concurrent queries execute
// the underlying computation exactly once: every racer either coalesces
// onto the one flight or hits the stored entry.
func TestSingleflightExactlyOnce(t *testing.T) {
	c := New[int](Options{})
	var calls atomic.Int64
	entered := make(chan struct{})
	release := make(chan struct{})
	compute := func() (int, error) {
		calls.Add(1)
		close(entered)
		<-release
		return 7, nil
	}
	const racers = 32
	var wg sync.WaitGroup
	results := make([]int, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrCompute("k", compute)
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	<-entered // the one chosen computation is in flight; let racers pile on
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under %d identical concurrent queries, want exactly 1", n, racers)
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("racer %d got %d, want 7", i, v)
		}
	}
}

// TestConcurrentInvalidationStorm races lookups against invalidations under
// -race and asserts the monotonicity invariant end to end: a hit never
// serves a value computed before the epoch the caller observed. Values are
// stamped with the epoch they were computed at; any hit must carry the
// caller's pre-lookup epoch or later.
func TestConcurrentInvalidationStorm(t *testing.T) {
	c := New[uint64](Options{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // invalidator
		defer wg.Done()
		for i := 0; i < 200; i++ {
			c.Invalidate()
		}
		close(stop)
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", g%4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				before := c.Epoch()
				v, hit, err := c.GetOrCompute(key, func() (uint64, error) {
					return c.Epoch(), nil // stamp: epoch observed during compute
				})
				if err != nil {
					t.Error(err)
					return
				}
				if hit && v < before {
					t.Errorf("hit served a value stamped at epoch %d, but caller observed epoch %d before lookup", v, before)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestNilCacheIsAlwaysMiss(t *testing.T) {
	var c *Cache[int]
	v, hit, err := c.GetOrCompute("k", func() (int, error) { return 9, nil })
	if err != nil || hit || v != 9 {
		t.Fatalf("nil cache: v=%d hit=%v err=%v", v, hit, err)
	}
	c.SetMetrics(nil)
	c.SyncUpstream(3)
	if c.Invalidate() != 0 || c.Epoch() != 0 || c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("nil cache accessors must return zero values")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v", st)
	}
}

func TestMetricsWiring(t *testing.T) {
	reg := obs.NewRegistry()
	c := New[int](Options{MaxEntries: 1})
	c.SetMetrics(obs.NewResultCacheMetrics(reg))
	c.GetOrCompute("a", func() (int, error) { return 1, nil })
	c.GetOrCompute("a", nil)
	c.GetOrCompute("b", func() (int, error) { return 2, nil }) // evicts a
	c.Invalidate()
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Evictions != 1 || st.Invalidations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("post-invalidate sizes = %+v", st)
	}
}
