// Package adaptive implements the "dynamic" part of the paper's title: "the
// frequencies of access can be observed on-line, allowing the system to
// dynamically reconfigure" (§5). An adaptive Engine serves view-element
// queries from its materialised set, records the observed access
// frequencies, and periodically re-runs the selection algorithms to migrate
// the materialised set toward the optimum for the observed workload.
//
// Migration never touches the original relation or cube: every newly
// selected element is assembled from the currently materialised set (which
// is always kept a basis of the cube), then obsolete elements are dropped.
package adaptive

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"viewcube/internal/assembly"
	"viewcube/internal/core"
	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/plan"
	"viewcube/internal/velement"
)

// Options tunes the adaptive engine.
type Options struct {
	// ReselectEvery marks a reconfiguration as due after this many queries;
	// 0 disables automatic reconfiguration (call Reconfigure manually).
	// Query itself never reconfigures: it only raises the due flag, and the
	// caller (see ReselectDue/AutoReconfigure) performs the reselection at a
	// point where exclusive access is held.
	ReselectEvery int
	// StorageBudget is the Algorithm 2 target storage in cells. If it is 0
	// or no larger than the cube volume, only the non-redundant Algorithm 1
	// basis is kept.
	StorageBudget int
	// Decay in (0, 1] multiplies all observed counts after each
	// reconfiguration, so the engine tracks drifting workloads; 1 keeps
	// full history.
	Decay float64
}

// Stats reports the engine's behaviour for observability.
type Stats struct {
	Queries         int     // queries served
	ModelOps        int64   // summed modelled add/subtract operations
	Reconfigs       int     // reconfigurations performed
	Migrated        int     // elements newly materialised across reconfigs
	Dropped         int     // elements dropped across reconfigs
	StorageCells    int     // current materialised volume
	LastPlanCost    int     // modelled cost of the most recent query
	CurrentElements int     // current materialised element count
	LastTotalCost   float64 // Procedure 3 population cost after last reconfig
}

// recorder is the only mutable state touched by the query path: the
// observed access counts, the running Stats, and the queries-since-last-
// reconfiguration counter, all guarded by one mutex, plus the lock-free
// "reselection due" flag. Keeping it separate from the planning state means
// answering a query never writes anything a concurrent query could read
// unsynchronised.
type recorder struct {
	mu            sync.Mutex
	counts        map[freq.Key]float64
	stats         Stats
	sinceReconfig int
	due           atomic.Bool
}

// Engine is an adaptive view-element engine. Answering a query is a pure
// read of the materialised set plus a short locked workload observation, so
// any number of Query calls may run concurrently (given a store that is
// safe for concurrent reads). Reconfigure is the only writer: it must not
// overlap queries — callers serialise it externally (see the root package's
// SafeEngine, which runs it under a write lock).
type Engine struct {
	space *velement.Space
	store assembly.Store
	inner *assembly.Engine
	pl    *plan.Planner
	opts  Options

	// rec is a pointer so snapshot generations derived by ForStore share one
	// workload profile with the base engine.
	rec *recorder

	met *obs.AdaptiveMetrics
}

// New returns an adaptive engine over an existing store. The store must
// already hold a set that is complete with respect to the cube (e.g. the
// cube itself, or any materialised basis).
func New(space *velement.Space, st assembly.Store, opts Options) (*Engine, error) {
	if opts.Decay <= 0 || opts.Decay > 1 {
		opts.Decay = 1
	}
	els := st.Elements()
	if !freq.Complete(els, space.Root(), space.MaxDepths()) {
		return nil, fmt.Errorf("adaptive: store content is not a basis of the cube")
	}
	e := &Engine{
		space: space,
		store: st,
		inner: assembly.NewEngine(space, st),
		opts:  opts,
		rec:   &recorder{},
		met:   obs.NewAdaptiveMetrics(nil),
	}
	e.pl = plan.NewPlanner(e.inner)
	e.rec.counts = make(map[freq.Key]float64)
	e.rec.stats.StorageCells = space.SetVolume(els)
	e.rec.stats.CurrentElements = len(els)
	return e, nil
}

// ForStore derives a read-only sibling engine over st — an immutable
// snapshot clone of this engine's store. The derived engine shares the
// workload recorder, metrics and (epoch-pinned) planner cache, so queries
// against a pinned snapshot feed the same adaptive profile and warm the
// same plans as base queries; only the store and the assembly executor are
// generation-local. Callers must not Reconfigure the derived engine.
func (e *Engine) ForStore(st assembly.Store) *Engine {
	inner := assembly.NewEngine(e.space, st)
	return &Engine{
		space: e.space,
		store: st,
		inner: inner,
		pl:    e.pl.ForSource(inner),
		opts:  e.opts,
		rec:   e.rec,
		met:   e.met,
	}
}

// Assembler returns the inner assembly engine, so callers can attach
// observability instruments to the plan/execute hot path.
func (e *Engine) Assembler() *assembly.Engine { return e.inner }

// Planner returns the engine's cached planner — the single planning entry
// point queries, Explain and traces share.
func (e *Engine) Planner() *plan.Planner { return e.pl }

// InvalidatePlans bumps the plan-cache epoch, discarding every cached
// plan. The root engine calls it whenever stored cell values change
// (incremental updates); Reconfigure calls it itself when the materialised
// set changes. Callers serialise it against queries exactly like the
// mutation that motivated it (SafeEngine's write lock).
func (e *Engine) InvalidatePlans() { e.pl.Invalidate() }

// SetMetrics attaches registered instruments; nil restores the no-op set.
// The materialised-set gauges are initialised from the current state. Call
// it during wiring, before the engine is shared across goroutines.
func (e *Engine) SetMetrics(m *obs.AdaptiveMetrics) {
	if m == nil {
		m = obs.NewAdaptiveMetrics(nil)
	}
	e.met = m
	st := e.Stats()
	e.met.BasisElements.Set(int64(st.CurrentElements))
	e.met.StorageCells.Set(int64(st.StorageCells))
}

// Query answers a view-element query and records the access. It never
// reconfigures: when the observation pushes the engine past ReselectEvery
// it raises the due flag, and the caller decides when to run
// AutoReconfigure with exclusive access.
func (e *Engine) Query(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error) {
	ph, err := e.pl.Element(x, r)
	if err != nil {
		return nil, err
	}
	out, err := e.inner.Execute(x, ph.Assembly)
	if err != nil {
		return nil, err
	}
	e.observeQuery(r, ph.Cost)
	return out, nil
}

// observeQuery folds one served query into the recorder.
func (e *Engine) observeQuery(r freq.Rect, cost int) {
	rec := e.rec
	rec.mu.Lock()
	rec.counts[r.Key()]++
	rec.stats.Queries++
	rec.stats.LastPlanCost = cost
	rec.stats.ModelOps += int64(cost)
	rec.sinceReconfig++
	due := e.opts.ReselectEvery > 0 && rec.sinceReconfig >= e.opts.ReselectEvery
	rec.mu.Unlock()
	if due {
		rec.due.Store(true)
	}
}

// ObserveServed records a query that was answered outside the engine's own
// Query path but against the same materialised set — e.g. by the
// measure-vector executor over the shared vector store. It feeds the full
// query-path bookkeeping (counts, stats, the reselection-due flag), unlike
// Observe which only seeds frequencies.
func (e *Engine) ObserveServed(r freq.Rect, cost int) { e.observeQuery(r, cost) }

// ReselectDue reports whether enough queries have accumulated since the
// last reconfiguration that an automatic reselection should run. It is a
// lock-free read, safe from any goroutine.
func (e *Engine) ReselectDue() bool { return e.rec.due.Load() }

// AutoReconfigure performs the reconfiguration that ReselectDue announced,
// counting it as an automatic reselection. Like Reconfigure it must not
// overlap queries.
func (e *Engine) AutoReconfigure(x *obs.ExecCtx) (bool, error) {
	e.met.AutoReselects.Inc()
	changed, err := e.Reconfigure(x)
	if err != nil {
		return changed, fmt.Errorf("adaptive: automatic reconfiguration: %w", err)
	}
	return changed, nil
}

// State exports the observed access counts keyed by a stable textual
// element id (per-dimension node indices joined by '-'), suitable for JSON
// persistence; RestoreState imports them. Together they let an engine
// restart with a warm workload profile.
func (e *Engine) State() map[string]float64 {
	e.rec.mu.Lock()
	defer e.rec.mu.Unlock()
	out := make(map[string]float64, len(e.rec.counts))
	for k, c := range e.rec.counts {
		out[encodeRect(k.Rect())] = c
	}
	return out
}

// RestoreState merges previously exported counts into the engine,
// rejecting ids that do not name elements of this cube.
func (e *Engine) RestoreState(state map[string]float64) error {
	for id, c := range state {
		r, err := decodeRect(id)
		if err != nil {
			return err
		}
		if !e.space.Valid(r) {
			return fmt.Errorf("adaptive: state id %q is not an element of this cube", id)
		}
		if c > 0 {
			e.rec.mu.Lock()
			e.rec.counts[r.Key()] += c
			e.rec.mu.Unlock()
		}
	}
	return nil
}

func encodeRect(r freq.Rect) string {
	parts := make([]string, len(r))
	for m, n := range r {
		parts[m] = strconv.FormatUint(uint64(n), 10)
	}
	return strings.Join(parts, "-")
}

func decodeRect(id string) (freq.Rect, error) {
	parts := strings.Split(id, "-")
	r := make(freq.Rect, len(parts))
	for m, p := range parts {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("adaptive: bad element id %q", id)
		}
		r[m] = freq.Node(n)
	}
	return r, nil
}

// Observe records weight accesses to an element without answering a query.
// Callers with a-priori workload knowledge use it to seed the frequencies
// before an explicit Reconfigure (the paper's "database administrator
// anticipates the relative frequency" mode of §5).
func (e *Engine) Observe(r freq.Rect, weight float64) {
	if weight > 0 {
		e.rec.mu.Lock()
		e.rec.counts[r.Key()] += weight
		e.rec.mu.Unlock()
	}
}

// ObservedQueries converts the recorded access counts into a normalised
// query population.
func (e *Engine) ObservedQueries() []core.Query {
	e.rec.mu.Lock()
	queries := make([]core.Query, 0, len(e.rec.counts))
	for k, c := range e.rec.counts {
		queries = append(queries, core.Query{Rect: k.Rect(), Freq: c})
	}
	e.rec.mu.Unlock()
	core.NormalizeFrequencies(queries)
	return queries
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.rec.mu.Lock()
	defer e.rec.mu.Unlock()
	return e.rec.stats
}

// mutateStats applies f to the running stats under the recorder lock.
func (e *Engine) mutateStats(f func(*Stats)) {
	e.rec.mu.Lock()
	f(&e.rec.stats)
	e.rec.mu.Unlock()
}

// Elements returns the currently materialised set.
func (e *Engine) Elements() []freq.Rect { return e.store.Elements() }

// greedyCandidates returns the Algorithm 2 candidate pool for online
// reconfiguration: the observed query elements plus all 2^d aggregated
// views. Enumerating the whole element graph (N_ve candidates, each probed
// with a full Procedure 3 evaluation) is tractable only for tiny cubes; the
// queried elements and whole views are where redundant storage pays off, so
// the restriction keeps reconfiguration interactive without changing what
// greedy would pick in practice.
func (e *Engine) greedyCandidates(queries []core.Query) []freq.Rect {
	seen := make(map[freq.Key]bool)
	var out []freq.Rect
	add := func(r freq.Rect) {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	for _, q := range queries {
		add(q.Rect)
	}
	for _, v := range e.space.AggregatedViews() {
		add(v)
	}
	return out
}

// Reconfigure re-selects the materialised set for the observed frequencies:
// Algorithm 1 for the basis, then Algorithm 2 up to the storage budget. New
// elements are assembled from the current set before anything is dropped,
// so the store is never left unable to answer. It reports whether the
// materialised set changed.
//
// Reconfigure is the engine's only writer of planning state (the store
// content). It must not overlap Query calls; serialise it externally.
func (e *Engine) Reconfigure(x *obs.ExecCtx) (bool, error) {
	e.rec.mu.Lock()
	e.rec.sinceReconfig = 0
	e.rec.mu.Unlock()
	e.rec.due.Store(false)
	e.met.Reselections.Inc()
	queries := e.ObservedQueries()
	if len(queries) == 0 {
		return false, nil
	}
	sp := x.Start("reconfigure")
	sp.SetAttr("observed_queries", int64(len(queries)))
	defer sp.End()
	res, err := core.SelectBasis(e.space, queries)
	if err != nil {
		return false, err
	}
	target := res.Basis
	if e.opts.StorageBudget > e.space.SetVolume(target) {
		greedy, err := core.GreedyRedundantPruned(e.space, target, e.greedyCandidates(queries), queries, e.opts.StorageBudget)
		if err != nil {
			return false, err
		}
		target = greedy.Final
		cost := greedy.InitialCost
		if n := len(greedy.Steps); n > 0 {
			cost = greedy.Steps[n-1].Cost
		}
		e.mutateStats(func(s *Stats) { s.LastTotalCost = cost })
	} else {
		cost := core.TotalProcessingCost(e.space, target, queries)
		e.mutateStats(func(s *Stats) { s.LastTotalCost = cost })
	}

	current := e.store.Elements()
	have := make(map[freq.Key]bool, len(current))
	for _, r := range current {
		have[r.Key()] = true
	}
	want := make(map[freq.Key]bool, len(target))
	for _, r := range target {
		want[r.Key()] = true
	}

	changed := false
	// Any store mutation invalidates cached plans — deferred so error
	// returns after a partially-applied migration invalidate too. Unchanged
	// reconfigurations leave the epoch (and every cached plan) intact.
	defer func() {
		if changed {
			e.pl.Invalidate()
		}
	}()
	// Phase 1: materialise every missing element from the current set.
	for _, r := range target {
		if have[r.Key()] {
			continue
		}
		a, err := e.inner.Answer(x, r)
		if err != nil {
			return changed, fmt.Errorf("adaptive: assembling %v for migration: %w", r, err)
		}
		if err := e.store.Put(r, a); err != nil {
			return changed, fmt.Errorf("adaptive: storing %v: %w", r, err)
		}
		e.mutateStats(func(s *Stats) { s.Migrated++ })
		e.met.Migrated.Inc()
		sp.AddAttr("migrated", 1)
		changed = true
	}
	// Phase 2: drop elements no longer selected.
	for _, r := range current {
		if want[r.Key()] {
			continue
		}
		if err := e.store.Delete(r); err != nil {
			return changed, fmt.Errorf("adaptive: dropping %v: %w", r, err)
		}
		e.mutateStats(func(s *Stats) { s.Dropped++ })
		e.met.Dropped.Inc()
		sp.AddAttr("dropped", 1)
		changed = true
	}
	els := e.store.Elements()
	cells := e.space.SetVolume(els)
	e.mutateStats(func(s *Stats) {
		if changed {
			s.Reconfigs++
		}
		s.StorageCells = cells
		s.CurrentElements = len(els)
	})
	if changed {
		e.met.ChangedReconfigs.Inc()
	}
	e.met.BasisElements.Set(int64(len(els)))
	e.met.StorageCells.Set(int64(cells))
	if e.opts.Decay < 1 {
		e.met.DecayApplied.Inc()
	}
	e.rec.mu.Lock()
	for k := range e.rec.counts {
		e.rec.counts[k] *= e.opts.Decay
	}
	e.rec.mu.Unlock()
	return changed, nil
}
