// Package adaptive implements the "dynamic" part of the paper's title: "the
// frequencies of access can be observed on-line, allowing the system to
// dynamically reconfigure" (§5). An adaptive Engine serves view-element
// queries from its materialised set, records the observed access
// frequencies, and periodically re-runs the selection algorithms to migrate
// the materialised set toward the optimum for the observed workload.
//
// Migration never touches the original relation or cube: every newly
// selected element is assembled from the currently materialised set (which
// is always kept a basis of the cube), then obsolete elements are dropped.
package adaptive

import (
	"fmt"
	"strconv"
	"strings"

	"viewcube/internal/assembly"
	"viewcube/internal/core"
	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// Options tunes the adaptive engine.
type Options struct {
	// ReselectEvery triggers an automatic Reconfigure after this many
	// queries; 0 disables automatic reconfiguration (call Reconfigure
	// manually).
	ReselectEvery int
	// StorageBudget is the Algorithm 2 target storage in cells. If it is 0
	// or no larger than the cube volume, only the non-redundant Algorithm 1
	// basis is kept.
	StorageBudget int
	// Decay in (0, 1] multiplies all observed counts after each
	// reconfiguration, so the engine tracks drifting workloads; 1 keeps
	// full history.
	Decay float64
}

// Stats reports the engine's behaviour for observability.
type Stats struct {
	Queries         int     // queries served
	ModelOps        int64   // summed modelled add/subtract operations
	Reconfigs       int     // reconfigurations performed
	Migrated        int     // elements newly materialised across reconfigs
	Dropped         int     // elements dropped across reconfigs
	StorageCells    int     // current materialised volume
	LastPlanCost    int     // modelled cost of the most recent query
	CurrentElements int     // current materialised element count
	LastTotalCost   float64 // Procedure 3 population cost after last reconfig
}

// Engine is an adaptive view-element engine. It is not safe for concurrent
// use.
type Engine struct {
	space *velement.Space
	store assembly.Store
	inner *assembly.Engine
	opts  Options

	counts        map[freq.Key]float64
	stats         Stats
	sinceReconfig int

	met   *obs.AdaptiveMetrics
	trace *obs.Trace
}

// New returns an adaptive engine over an existing store. The store must
// already hold a set that is complete with respect to the cube (e.g. the
// cube itself, or any materialised basis).
func New(space *velement.Space, st assembly.Store, opts Options) (*Engine, error) {
	if opts.Decay <= 0 || opts.Decay > 1 {
		opts.Decay = 1
	}
	els := st.Elements()
	if !freq.Complete(els, space.Root(), space.MaxDepths()) {
		return nil, fmt.Errorf("adaptive: store content is not a basis of the cube")
	}
	e := &Engine{
		space:  space,
		store:  st,
		inner:  assembly.NewEngine(space, st),
		opts:   opts,
		counts: make(map[freq.Key]float64),
		met:    obs.NewAdaptiveMetrics(nil),
	}
	e.stats.StorageCells = space.SetVolume(els)
	e.stats.CurrentElements = len(els)
	return e, nil
}

// Assembler returns the inner assembly engine, so callers can attach
// observability instruments to the plan/execute hot path.
func (e *Engine) Assembler() *assembly.Engine { return e.inner }

// SetMetrics attaches registered instruments; nil restores the no-op set.
// The materialised-set gauges are initialised from the current state.
func (e *Engine) SetMetrics(m *obs.AdaptiveMetrics) {
	if m == nil {
		m = obs.NewAdaptiveMetrics(nil)
	}
	e.met = m
	e.met.BasisElements.Set(int64(e.stats.CurrentElements))
	e.met.StorageCells.Set(int64(e.stats.StorageCells))
}

// SetTrace attaches (or with nil detaches) a per-query trace on this engine
// and its inner assembly engine.
func (e *Engine) SetTrace(t *obs.Trace) {
	e.trace = t
	e.inner.SetTrace(t)
}

// Query answers a view-element query, records the access, and triggers an
// automatic reconfiguration when due.
func (e *Engine) Query(r freq.Rect) (*ndarray.Array, error) {
	plan, err := e.inner.Plan(r)
	if err != nil {
		return nil, err
	}
	out, err := e.inner.Execute(plan)
	if err != nil {
		return nil, err
	}
	e.counts[r.Key()]++
	e.stats.Queries++
	e.stats.LastPlanCost = assembly.PlanCost(plan)
	e.stats.ModelOps += int64(assembly.PlanCost(plan))
	e.sinceReconfig++
	if e.opts.ReselectEvery > 0 && e.sinceReconfig >= e.opts.ReselectEvery {
		e.met.AutoReselects.Inc()
		if _, err := e.Reconfigure(); err != nil {
			return nil, fmt.Errorf("adaptive: automatic reconfiguration: %w", err)
		}
	}
	return out, nil
}

// State exports the observed access counts keyed by a stable textual
// element id (per-dimension node indices joined by '-'), suitable for JSON
// persistence; RestoreState imports them. Together they let an engine
// restart with a warm workload profile.
func (e *Engine) State() map[string]float64 {
	out := make(map[string]float64, len(e.counts))
	for k, c := range e.counts {
		out[encodeRect(k.Rect())] = c
	}
	return out
}

// RestoreState merges previously exported counts into the engine,
// rejecting ids that do not name elements of this cube.
func (e *Engine) RestoreState(state map[string]float64) error {
	for id, c := range state {
		r, err := decodeRect(id)
		if err != nil {
			return err
		}
		if !e.space.Valid(r) {
			return fmt.Errorf("adaptive: state id %q is not an element of this cube", id)
		}
		if c > 0 {
			e.counts[r.Key()] += c
		}
	}
	return nil
}

func encodeRect(r freq.Rect) string {
	parts := make([]string, len(r))
	for m, n := range r {
		parts[m] = strconv.FormatUint(uint64(n), 10)
	}
	return strings.Join(parts, "-")
}

func decodeRect(id string) (freq.Rect, error) {
	parts := strings.Split(id, "-")
	r := make(freq.Rect, len(parts))
	for m, p := range parts {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("adaptive: bad element id %q", id)
		}
		r[m] = freq.Node(n)
	}
	return r, nil
}

// Observe records weight accesses to an element without answering a query.
// Callers with a-priori workload knowledge use it to seed the frequencies
// before an explicit Reconfigure (the paper's "database administrator
// anticipates the relative frequency" mode of §5).
func (e *Engine) Observe(r freq.Rect, weight float64) {
	if weight > 0 {
		e.counts[r.Key()] += weight
	}
}

// ObservedQueries converts the recorded access counts into a normalised
// query population.
func (e *Engine) ObservedQueries() []core.Query {
	queries := make([]core.Query, 0, len(e.counts))
	for k, c := range e.counts {
		queries = append(queries, core.Query{Rect: k.Rect(), Freq: c})
	}
	core.NormalizeFrequencies(queries)
	return queries
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats { return e.stats }

// Elements returns the currently materialised set.
func (e *Engine) Elements() []freq.Rect { return e.store.Elements() }

// greedyCandidates returns the Algorithm 2 candidate pool for online
// reconfiguration: the observed query elements plus all 2^d aggregated
// views. Enumerating the whole element graph (N_ve candidates, each probed
// with a full Procedure 3 evaluation) is tractable only for tiny cubes; the
// queried elements and whole views are where redundant storage pays off, so
// the restriction keeps reconfiguration interactive without changing what
// greedy would pick in practice.
func (e *Engine) greedyCandidates(queries []core.Query) []freq.Rect {
	seen := make(map[freq.Key]bool)
	var out []freq.Rect
	add := func(r freq.Rect) {
		k := r.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	for _, q := range queries {
		add(q.Rect)
	}
	for _, v := range e.space.AggregatedViews() {
		add(v)
	}
	return out
}

// Reconfigure re-selects the materialised set for the observed frequencies:
// Algorithm 1 for the basis, then Algorithm 2 up to the storage budget. New
// elements are assembled from the current set before anything is dropped,
// so the store is never left unable to answer. It reports whether the
// materialised set changed.
func (e *Engine) Reconfigure() (bool, error) {
	e.sinceReconfig = 0
	e.met.Reselections.Inc()
	queries := e.ObservedQueries()
	if len(queries) == 0 {
		return false, nil
	}
	var sp *obs.Span
	if e.trace != nil {
		sp = e.trace.Start("reconfigure")
		sp.SetAttr("observed_queries", int64(len(queries)))
		defer sp.End()
	}
	res, err := core.SelectBasis(e.space, queries)
	if err != nil {
		return false, err
	}
	target := res.Basis
	if e.opts.StorageBudget > e.space.SetVolume(target) {
		greedy, err := core.GreedyRedundantPruned(e.space, target, e.greedyCandidates(queries), queries, e.opts.StorageBudget)
		if err != nil {
			return false, err
		}
		target = greedy.Final
		e.stats.LastTotalCost = greedy.InitialCost
		if n := len(greedy.Steps); n > 0 {
			e.stats.LastTotalCost = greedy.Steps[n-1].Cost
		}
	} else {
		e.stats.LastTotalCost = core.TotalProcessingCost(e.space, target, queries)
	}

	current := e.store.Elements()
	have := make(map[freq.Key]bool, len(current))
	for _, r := range current {
		have[r.Key()] = true
	}
	want := make(map[freq.Key]bool, len(target))
	for _, r := range target {
		want[r.Key()] = true
	}

	changed := false
	// Phase 1: materialise every missing element from the current set.
	for _, r := range target {
		if have[r.Key()] {
			continue
		}
		a, err := e.inner.Answer(r)
		if err != nil {
			return changed, fmt.Errorf("adaptive: assembling %v for migration: %w", r, err)
		}
		if err := e.store.Put(r, a); err != nil {
			return changed, fmt.Errorf("adaptive: storing %v: %w", r, err)
		}
		e.stats.Migrated++
		e.met.Migrated.Inc()
		sp.AddAttr("migrated", 1)
		changed = true
	}
	// Phase 2: drop elements no longer selected.
	for _, r := range current {
		if want[r.Key()] {
			continue
		}
		if err := e.store.Delete(r); err != nil {
			return changed, fmt.Errorf("adaptive: dropping %v: %w", r, err)
		}
		e.stats.Dropped++
		e.met.Dropped.Inc()
		sp.AddAttr("dropped", 1)
		changed = true
	}
	if changed {
		e.stats.Reconfigs++
		e.met.ChangedReconfigs.Inc()
	}
	els := e.store.Elements()
	e.stats.StorageCells = e.space.SetVolume(els)
	e.stats.CurrentElements = len(els)
	e.met.BasisElements.Set(int64(len(els)))
	e.met.StorageCells.Set(int64(e.stats.StorageCells))
	if e.opts.Decay < 1 {
		e.met.DecayApplied.Inc()
	}
	for k := range e.counts {
		e.counts[k] *= e.opts.Decay
	}
	return changed, nil
}
