package adaptive

import (
	"math"
	"math/rand"
	"testing"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

func randomCube(r *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64() * 50)
	}
	return a
}

// newEngine builds an adaptive engine whose store initially holds just the
// cube.
func newEngine(t *testing.T, cube *ndarray.Array, opts Options) (*Engine, *velement.Space) {
	t.Helper()
	s := velement.MustSpace(cube.Shape()...)
	st := assembly.NewMemStore()
	if err := st.Put(s.Root(), cube.Clone()); err != nil {
		t.Fatal(err)
	}
	e, err := New(s, st, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e, s
}

func TestNewRequiresCompleteStore(t *testing.T) {
	s := velement.MustSpace(4, 4)
	st := assembly.NewMemStore()
	if _, err := New(s, st, Options{}); err == nil {
		t.Fatal("want error for empty store")
	}
	if err := st.Put(freq.Rect{2, 1}, ndarray.New(2, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := New(s, st, Options{}); err == nil {
		t.Fatal("want error for incomplete store")
	}
}

func TestQueryAnswersCorrectly(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cube := randomCube(rng, 8, 4)
	e, s := newEngine(t, cube, Options{})
	for _, v := range s.AggregatedViews() {
		got, err := e.Query(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v wrong", v)
		}
	}
	if e.Stats().Queries != 4 {
		t.Fatalf("queries %d, want 4", e.Stats().Queries)
	}
}

func TestQueryInvalidElement(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	e, _ := newEngine(t, randomCube(rng, 4, 4), Options{})
	if _, err := e.Query(nil, freq.Rect{64, 1}); err == nil {
		t.Fatal("want error for invalid element")
	}
}

func TestReconfigureMovesTowardWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cube := randomCube(rng, 4, 4)
	e, s := newEngine(t, cube, Options{})
	// Hammer one view.
	hot := s.ViewForMask(1) // aggregate dimension 0
	for i := 0; i < 50; i++ {
		if _, err := e.Query(nil, hot); err != nil {
			t.Fatal(err)
		}
	}
	costBefore := e.Stats().LastPlanCost
	if costBefore == 0 {
		t.Fatal("assembling the hot view from the cube should cost > 0")
	}
	changed, err := e.Reconfigure(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("reconfiguration should change the materialised set")
	}
	// After adaptation the hot view is free.
	if _, err := e.Query(nil, hot); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats().LastPlanCost; got != 0 {
		t.Fatalf("post-adaptation plan cost %d, want 0", got)
	}
	// And it still answers every view correctly.
	for _, v := range s.AggregatedViews() {
		got, err := e.Query(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v wrong after reconfiguration", v)
		}
	}
	// The store must still be a basis of the cube.
	if !freq.Complete(e.Elements(), s.Root(), s.MaxDepths()) {
		t.Fatal("reconfigured store must remain a basis")
	}
	// Non-redundant reselection keeps storage at the cube volume.
	if e.Stats().StorageCells != s.CubeVolume() {
		t.Fatalf("storage %d, want %d", e.Stats().StorageCells, s.CubeVolume())
	}
}

func TestReconfigureNoQueriesIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, _ := newEngine(t, randomCube(rng, 4, 4), Options{})
	changed, err := e.Reconfigure(nil)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("no observations → no change")
	}
}

func TestAutomaticReconfiguration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cube := randomCube(rng, 4, 4)
	e, s := newEngine(t, cube, Options{ReselectEvery: 10})
	hot := s.ViewForMask(3) // grand total
	for i := 0; i < 25; i++ {
		if _, err := e.Query(nil, hot); err != nil {
			t.Fatal(err)
		}
		// Query never reconfigures itself; the caller drains the due flag
		// at a point where it holds exclusive access.
		if e.ReselectDue() {
			if _, err := e.AutoReconfigure(nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if e.Stats().Reconfigs == 0 {
		t.Fatal("automatic reconfiguration should have fired")
	}
	if e.Stats().LastPlanCost != 0 {
		t.Fatal("hot view should be free after automatic adaptation")
	}
}

func TestStorageBudgetGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cube := randomCube(rng, 4, 4)
	s := velement.MustSpace(4, 4)
	st := assembly.NewMemStore()
	if err := st.Put(s.Root(), cube.Clone()); err != nil {
		t.Fatal(err)
	}
	budget := 2 * s.CubeVolume()
	e, err := New(s, st, Options{StorageBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	// Two hot views.
	for i := 0; i < 20; i++ {
		if _, err := e.Query(nil, s.ViewForMask(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Query(nil, s.ViewForMask(2)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats().StorageCells > budget {
		t.Fatalf("storage %d exceeds budget %d", e.Stats().StorageCells, budget)
	}
	// Both hot views should now be stored (free).
	for _, mask := range []uint{1, 2} {
		if _, err := e.Query(nil, s.ViewForMask(mask)); err != nil {
			t.Fatal(err)
		}
		if e.Stats().LastPlanCost != 0 {
			t.Fatalf("hot view %d not free after budgeted adaptation", mask)
		}
	}
}

func TestWorkloadShiftWithDecay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cube := randomCube(rng, 4, 4)
	e, s := newEngine(t, cube, Options{Decay: 0.1})
	first := s.ViewForMask(1)
	second := s.ViewForMask(2)
	for i := 0; i < 30; i++ {
		if _, err := e.Query(nil, first); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	// Shift the workload; decay lets the new view dominate quickly.
	for i := 0; i < 30; i++ {
		if _, err := e.Query(nil, second); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Query(nil, second); err != nil {
		t.Fatal(err)
	}
	if e.Stats().LastPlanCost != 0 {
		t.Fatal("after the shift the new hot view should be free")
	}
	// Every view still answers correctly after two migrations.
	for _, v := range s.AggregatedViews() {
		got, err := e.Query(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v wrong after workload shift", v)
		}
	}
}

func TestObservedQueriesNormalised(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	e, s := newEngine(t, randomCube(rng, 4, 4), Options{})
	for i := 0; i < 3; i++ {
		if _, err := e.Query(nil, s.ViewForMask(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.Query(nil, s.ViewForMask(3)); err != nil {
		t.Fatal(err)
	}
	qs := e.ObservedQueries()
	if len(qs) != 2 {
		t.Fatalf("%d observed queries, want 2", len(qs))
	}
	sum := 0.0
	for _, q := range qs {
		sum += q.Freq
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum to %g", sum)
	}
}

func TestStateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cube := randomCube(rng, 4, 4)
	e, s := newEngine(t, cube, Options{})
	e.Observe(s.ViewForMask(1), 5)
	e.Observe(s.ViewForMask(3), 2)
	e.Observe(s.ViewForMask(2), -1) // ignored
	state := e.State()
	if len(state) != 2 {
		t.Fatalf("state %v", state)
	}
	e2, _ := newEngine(t, cube, Options{})
	if err := e2.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	qs := e2.ObservedQueries()
	if len(qs) != 2 {
		t.Fatalf("restored %d queries", len(qs))
	}
	// Reconfigure from restored state materialises the hot view.
	if _, err := e2.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e2.Query(nil, s.ViewForMask(1)); err != nil {
		t.Fatal(err)
	}
	if e2.Stats().LastPlanCost != 0 {
		t.Fatal("hot view should be free after restore+reconfigure")
	}
	// Bad ids are rejected.
	if err := e2.RestoreState(map[string]float64{"banana": 1}); err == nil {
		t.Fatal("want error for malformed id")
	}
	if err := e2.RestoreState(map[string]float64{"0-1": 1}); err == nil {
		t.Fatal("want error for zero node")
	}
	if err := e2.RestoreState(map[string]float64{"64-1": 1}); err == nil {
		t.Fatal("want error for out-of-space element")
	}
}

func TestLastTotalCostTracked(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cube := randomCube(rng, 4, 4)
	e, s := newEngine(t, cube, Options{})
	e.Observe(s.ViewForMask(1), 10)
	if _, err := e.Reconfigure(nil); err != nil {
		t.Fatal(err)
	}
	if e.Stats().LastTotalCost != 0 {
		t.Fatalf("single hot view should reach zero cost, got %g", e.Stats().LastTotalCost)
	}
}
