package rangeagg

import (
	"fmt"

	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/plan"
)

// GroupedRangeSum answers the classic OLAP "dice" query — SUM grouped by
// the kept dimensions, filtered to a contiguous range on every other
// dimension — through intermediate view elements: each filtered dimension
// is dyadically decomposed, and for every combination of blocks one slab of
// the matching intermediate element (kept dimensions undecomposed) is
// accumulated into the result. The output array has the full cube extent on
// kept dimensions and extent 1 elsewhere, matching the layout of an
// aggregated view.
//
// The box must cover the full extent of every kept dimension (a filter on a
// kept dimension would make the "group" cells outside the filter ambiguous;
// slice the result instead).
func (q *Querier) GroupedRangeSum(box Box, keep []bool) (*ndarray.Array, error) {
	return q.GroupedRangeSumCtx(nil, box, keep)
}

// GroupedRangeSumCtx is GroupedRangeSum with an explicit per-query
// execution context (nil means untraced).
func (q *Querier) GroupedRangeSumCtx(x *obs.ExecCtx, box Box, keep []bool) (*ndarray.Array, error) {
	shape := q.space.Shape()
	if len(keep) != len(shape) {
		return nil, fmt.Errorf("rangeagg: keep mask rank %d, want %d", len(keep), len(shape))
	}
	if err := box.Validate(shape); err != nil {
		return nil, err
	}
	d := len(shape)
	outShape := make([]int, d)
	for m := 0; m < d; m++ {
		if keep[m] {
			if box.Lo[m] != 0 || box.Ext[m] != shape[m] {
				return nil, fmt.Errorf("rangeagg: kept dimension %d must be unfiltered (box %v)", m, box)
			}
			outShape[m] = shape[m]
			continue
		}
		outShape[m] = 1
	}
	// Lower through the shared plan IR: kept dimensions become whole-slab
	// legs, filtered dimensions dyadic block legs.
	legs := plan.DecomposeBox(box.Lo, box.Ext, keep)
	out := ndarray.New(outShape...)
	read := 0

	// Every block combination extracts a slab of the same shape (outShape),
	// so one pooled buffer serves the whole loop.
	slab, _ := ndarray.Scratch(outShape...)
	defer ndarray.Recycle(slab)

	idx := make([]int, d)
	depths := make([]int, d)
	lo := make([]int, d)
	ext := make([]int, d)
	for {
		for m := 0; m < d; m++ {
			if keep[m] {
				depths[m] = 0
				lo[m] = 0
				ext[m] = shape[m]
				continue
			}
			b := legs[m].Blocks[idx[m]]
			depths[m] = b.Level
			lo[m] = b.Start >> uint(b.Level)
			ext[m] = 1
		}
		el, err := q.element(x, depths)
		if err != nil {
			return nil, err
		}
		if err := el.SubArrayInto(lo, ext, slab); err != nil {
			return nil, err
		}
		// Accumulate the slab into the output (same shapes by construction).
		dst := out.Data()
		for i, v := range slab.Data() {
			dst[i] += v
		}
		read += slab.Size()

		// Advance over the filtered dimensions' block products.
		m := d - 1
		for ; m >= 0; m-- {
			if keep[m] {
				continue
			}
			idx[m]++
			if idx[m] < len(legs[m].Blocks) {
				break
			}
			idx[m] = 0
		}
		if m < 0 {
			q.mu.Lock()
			q.CellsRead += read
			q.mu.Unlock()
			return out, nil
		}
	}
}
