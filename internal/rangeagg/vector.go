package rangeagg

import (
	"fmt"
	"sync"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/plan"
	"viewcube/internal/velement"
)

// MultiElementSource supplies materialised measure-vector view elements —
// the vector analogue of ElementSource (context-carrying by construction;
// pass a nil x for untraced calls).
type MultiElementSource interface {
	ElementMulti(x *obs.ExecCtx, r freq.Rect) (*ndarray.MultiArray, error)
}

// VecQuerier answers range aggregations over a measure-vector cube from
// intermediate vector elements: one §6 dyadic decomposition, one pyramid
// walk, w accumulators. Component c of its result is bit-identical to what
// the scalar Querier computes over component c alone (same blocks, same
// cells, same addition order), which is what lets the vector engine replace
// per-component scalar range paths without changing a single answered
// value. Concurrency mirrors Querier: the element cache is epoch-keyed with
// singleflight misses.
type VecQuerier struct {
	space *velement.Space
	src   MultiElementSource
	width int

	cache *plan.Cache[*ndarray.MultiArray]

	mu sync.Mutex // guards CellsRead

	// CellsRead counts logical element cells fetched across all queries
	// (each carrying width components).
	CellsRead int

	met *obs.RangeMetrics
}

// NewVecQuerier returns a vector range querier over the space.
func NewVecQuerier(space *velement.Space, src MultiElementSource, width int) *VecQuerier {
	return &VecQuerier{
		space: space, src: src, width: width,
		cache: plan.NewCache[*ndarray.MultiArray](),
		met:   obs.NewRangeMetrics(nil),
	}
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (q *VecQuerier) SetMetrics(m *obs.RangeMetrics) {
	if m == nil {
		m = obs.NewRangeMetrics(nil)
	}
	q.met = m
}

// Cache exposes the element cache (epoch reads, stats).
func (q *VecQuerier) Cache() *plan.Cache[*ndarray.MultiArray] { return q.cache }

// Reset bumps the cache epoch, dropping every cached element.
func (q *VecQuerier) Reset() { q.cache.Invalidate() }

// element returns the intermediate vector element at the per-dimension
// partial depths, cached per epoch with coalesced misses.
func (q *VecQuerier) element(x *obs.ExecCtx, depths []int) (*ndarray.MultiArray, error) {
	r := make(freq.Rect, len(depths))
	for m, k := range depths {
		r[m] = freq.Node(1 << uint(k))
	}
	a, _, err := q.cache.GetOrCompute(r.Key(), func() (*ndarray.MultiArray, error) {
		sp := x.Start("element " + r.String())
		defer sp.End()
		a, err := q.src.ElementMulti(x.Under(sp), r)
		if err != nil {
			return nil, err
		}
		q.met.ElementMiss.Inc()
		sp.SetAttr("cells", int64(a.Cells()))
		sp.SetAttr("measure_width", int64(a.Width()))
		return a, nil
	})
	return a, err
}

// RangeVecCtx computes the component-wise SUM vector over the box via the
// dyadic decomposition, writing one accumulator per component into out
// (len(out) must equal the width). A non-nil x records a "range_sum" span.
func (q *VecQuerier) RangeVecCtx(x *obs.ExecCtx, box Box, out []float64) error {
	shape := q.space.Shape()
	if len(out) != q.width {
		return fmt.Errorf("rangeagg: out width %d, want %d", len(out), q.width)
	}
	if err := box.Validate(shape); err != nil {
		return err
	}
	q.met.RangeQueries.Inc()
	sp := x.Start("range_sum")
	sp.SetAttr("box_cells", int64(box.Cells()))
	sp.SetAttr("measure_width", int64(q.width))
	defer sp.End()
	x = x.Under(sp)
	d := len(shape)
	legs := plan.DecomposeBox(box.Lo, box.Ext, nil)
	idx := make([]int, d)
	depths := make([]int, d)
	cell := make([]int, d)
	for c := range out {
		out[c] = 0
	}
	read := 0
	for {
		for m := 0; m < d; m++ {
			b := legs[m].Blocks[idx[m]]
			depths[m] = b.Level
			cell[m] = b.Start >> uint(b.Level)
		}
		el, err := q.element(x, depths)
		if err != nil {
			return err
		}
		// One offset computation serves every component plane: the planes
		// share shape and strides by construction.
		off := el.Component(0).Offset(cell)
		data, cells := el.Data(), el.Cells()
		for c := 0; c < q.width; c++ {
			out[c] += data[c*cells+off]
		}
		read++
		m := d - 1
		for ; m >= 0; m-- {
			idx[m]++
			if idx[m] < len(legs[m].Blocks) {
				break
			}
			idx[m] = 0
		}
		if m < 0 {
			break
		}
	}
	q.met.CellsRead.Add(uint64(read))
	q.mu.Lock()
	q.CellsRead += read
	q.mu.Unlock()
	sp.SetAttr("cells_read", int64(read))
	return nil
}

// GroupedRangeVecCtx answers the grouped "dice" query over the vector cube:
// a vector per group cell, kept dimensions at full extent, filtered
// dimensions collapsed. The result is freshly allocated and caller-owned.
// Accumulation order per component matches GroupedRangeSumCtx exactly.
func (q *VecQuerier) GroupedRangeVecCtx(x *obs.ExecCtx, box Box, keep []bool) (*ndarray.MultiArray, error) {
	shape := q.space.Shape()
	if len(keep) != len(shape) {
		return nil, fmt.Errorf("rangeagg: keep mask rank %d, want %d", len(keep), len(shape))
	}
	if err := box.Validate(shape); err != nil {
		return nil, err
	}
	d := len(shape)
	outShape := make([]int, d)
	for m := 0; m < d; m++ {
		if keep[m] {
			if box.Lo[m] != 0 || box.Ext[m] != shape[m] {
				return nil, fmt.Errorf("rangeagg: kept dimension %d must be unfiltered (box %v)", m, box)
			}
			outShape[m] = shape[m]
			continue
		}
		outShape[m] = 1
	}
	legs := plan.DecomposeBox(box.Lo, box.Ext, keep)
	out := ndarray.NewMulti(q.width, outShape...)
	read := 0

	slab, _ := ndarray.ScratchMulti(q.width, outShape...)
	defer ndarray.RecycleMulti(slab)

	idx := make([]int, d)
	depths := make([]int, d)
	lo := make([]int, d)
	ext := make([]int, d)
	for {
		for m := 0; m < d; m++ {
			if keep[m] {
				depths[m] = 0
				lo[m] = 0
				ext[m] = shape[m]
				continue
			}
			b := legs[m].Blocks[idx[m]]
			depths[m] = b.Level
			lo[m] = b.Start >> uint(b.Level)
			ext[m] = 1
		}
		el, err := q.element(x, depths)
		if err != nil {
			return nil, err
		}
		if err := el.SubArrayInto(lo, ext, slab); err != nil {
			return nil, err
		}
		// Plane-major accumulation: within each component plane the order is
		// exactly the scalar grouped path's order.
		dst := out.Data()
		for i, v := range slab.Data() {
			dst[i] += v
		}
		read += slab.Cells()

		m := d - 1
		for ; m >= 0; m-- {
			if keep[m] {
				continue
			}
			idx[m]++
			if idx[m] < len(legs[m].Blocks) {
				break
			}
			idx[m] = 0
		}
		if m < 0 {
			q.mu.Lock()
			q.CellsRead += read
			q.mu.Unlock()
			return out, nil
		}
	}
}
