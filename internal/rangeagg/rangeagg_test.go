package rangeagg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

func randomCube(r *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64()*100 - 50)
	}
	return a
}

func TestDyadicBlocks(t *testing.T) {
	cases := []struct {
		lo, ext int
		want    []Block
	}{
		{0, 8, []Block{{Start: 0, Level: 3}}},
		{0, 5, []Block{{Start: 0, Level: 2}, {Start: 4, Level: 0}}},
		{1, 7, []Block{{Start: 1, Level: 0}, {Start: 2, Level: 1}, {Start: 4, Level: 2}}},
		{3, 3, []Block{{Start: 3, Level: 0}, {Start: 4, Level: 1}}},
		{6, 2, []Block{{Start: 6, Level: 1}}},
		{5, 1, []Block{{Start: 5, Level: 0}}},
		{2, 6, []Block{{Start: 2, Level: 1}, {Start: 4, Level: 2}}},
	}
	for _, c := range cases {
		got := DyadicBlocks(c.lo, c.ext)
		if len(got) != len(c.want) {
			t.Fatalf("DyadicBlocks(%d,%d)=%v, want %v", c.lo, c.ext, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("DyadicBlocks(%d,%d)=%v, want %v", c.lo, c.ext, got, c.want)
			}
		}
	}
	if DyadicBlocks(0, 0) != nil || DyadicBlocks(-1, 3) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

// Property: the dyadic decomposition exactly tiles the interval — blocks
// are aligned, contiguous, disjoint, and cover [lo, lo+ext).
func TestDyadicBlocksProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lo := int(a % 1024)
		ext := int(b%1024) + 1
		blocks := DyadicBlocks(lo, ext)
		cur := lo
		for _, blk := range blocks {
			if blk.Start != cur {
				return false // not contiguous
			}
			if blk.Start%(1<<blk.Level) != 0 {
				return false // not aligned
			}
			cur += blk.Size()
		}
		if cur != lo+ext {
			return false // does not cover
		}
		// Canonical minimality bound: at most 2·log2(hi) + 2 blocks.
		return len(blocks) <= 2*11+2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxValidate(t *testing.T) {
	shape := []int{8, 4}
	good := Box{Lo: []int{1, 0}, Ext: []int{3, 4}}
	if err := good.Validate(shape); err != nil {
		t.Fatal(err)
	}
	bad := []Box{
		{Lo: []int{0}, Ext: []int{1}},
		{Lo: []int{-1, 0}, Ext: []int{1, 1}},
		{Lo: []int{0, 0}, Ext: []int{9, 1}},
		{Lo: []int{0, 0}, Ext: []int{1, 0}},
	}
	for _, b := range bad {
		if err := b.Validate(shape); err == nil {
			t.Errorf("Validate(%v) should fail", b)
		}
	}
	if good.Cells() != 12 {
		t.Fatalf("Cells=%d, want 12", good.Cells())
	}
}

func TestRangeSumMatchesDirectScan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := velement.MustSpace(16, 8)
	cube := randomCube(rng, 16, 8)
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuerier(s, mat)
	for trial := 0; trial < 100; trial++ {
		lo := []int{rng.Intn(16), rng.Intn(8)}
		ext := []int{1 + rng.Intn(16-lo[0]), 1 + rng.Intn(8-lo[1])}
		box := Box{Lo: lo, Ext: ext}
		got, err := q.RangeSum(box)
		if err != nil {
			t.Fatal(err)
		}
		want, err := DirectScan(cube, box)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v: range sum %g, want %g", box, got, want)
		}
	}
}

func TestRangeSumFromAssembledElements(t *testing.T) {
	// The querier must also work when intermediate elements are assembled
	// from a materialised basis rather than computed from the cube.
	rng := rand.New(rand.NewSource(2))
	s := velement.MustSpace(8, 8)
	cube := randomCube(rng, 8, 8)
	store, err := assembly.MaterializeSet(s, cube, velement.WaveletBasis(s))
	if err != nil {
		t.Fatal(err)
	}
	eng := assembly.NewEngine(s, store)
	q := NewQuerier(s, engineSource{eng})
	box := Box{Lo: []int{1, 2}, Ext: []int{5, 3}}
	got, err := q.RangeSum(box)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := DirectScan(cube, box)
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("range sum %g, want %g", got, want)
	}
}

type engineSource struct{ eng *assembly.Engine }

func (e engineSource) Element(r freq.Rect) (*ndarray.Array, error) { return e.eng.Answer(nil, r) }

func TestRangeSumValidation(t *testing.T) {
	s := velement.MustSpace(4, 4)
	mat, _ := assembly.NewMaterializer(s, ndarray.New(4, 4))
	q := NewQuerier(s, mat)
	if _, err := q.RangeSum(Box{Lo: []int{0, 0}, Ext: []int{5, 1}}); err == nil {
		t.Fatal("want error for out-of-bounds box")
	}
}

func TestQuerierCachesElements(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := velement.MustSpace(8, 8)
	cube := randomCube(rng, 8, 8)
	mat, _ := assembly.NewMaterializer(s, cube)
	q := NewQuerier(s, mat)
	box := Box{Lo: []int{1, 1}, Ext: []int{6, 6}}
	if _, err := q.RangeSum(box); err != nil {
		t.Fatal(err)
	}
	first := q.CellsRead
	if _, err := q.RangeSum(box); err != nil {
		t.Fatal(err)
	}
	if q.CellsRead != 2*first {
		t.Fatalf("cells read %d, want %d (same per query)", q.CellsRead, 2*first)
	}
	if q.cache.Len() == 0 {
		t.Fatal("querier should have cached elements")
	}
}

func TestBlocksTouchedIsLogarithmic(t *testing.T) {
	// Worst-case box in a 256-wide dimension touches ≤ 2·8 blocks, far
	// fewer than the 254 cells a scan reads.
	box := Box{Lo: []int{1}, Ext: []int{254}}
	if got := BlocksTouched(box); got > 16 {
		t.Fatalf("blocks touched %d, want ≤ 16", got)
	}
	if got := BlocksTouched(box); got >= box.Cells() {
		t.Fatal("dyadic reads must beat the direct scan")
	}
}

func TestPrefixCube(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cube := randomCube(rng, 8, 4, 4)
	pc := NewPrefixCube(cube)
	for trial := 0; trial < 60; trial++ {
		lo := []int{rng.Intn(8), rng.Intn(4), rng.Intn(4)}
		ext := []int{1 + rng.Intn(8-lo[0]), 1 + rng.Intn(4-lo[1]), 1 + rng.Intn(4-lo[2])}
		box := Box{Lo: lo, Ext: ext}
		got, err := pc.RangeSum(box)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := DirectScan(cube, box)
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("box %v: prefix sum %g, want %g", box, got, want)
		}
	}
	if _, err := pc.RangeSum(Box{Lo: []int{0, 0, 0}, Ext: []int{9, 1, 1}}); err == nil {
		t.Fatal("want error for out-of-bounds box")
	}
}

// Eq. 39–40: partial aggregation commutes with aligned range extraction.
func TestCommutativityOfRangeAndPartial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cube := randomCube(rng, 16, 4)
	// Range aligned to powers of two on dim 0: [4, 12).
	g, err := cube.SubArray([]int{4, 0}, []int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	pg, err := haar.Partial(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := haar.Partial(cube, 0)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := pa.SubArray([]int{2, 0}, []int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !pg.Equal(g2, 1e-9) {
		t.Fatal("P₁(G(A)) must equal G₂(P₁(A)) for aligned ranges")
	}
}

// Property: range sums over random boxes agree across all three methods.
func TestThreeMethodsAgreeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := velement.MustSpace(16, 16)
	cube := randomCube(rng, 16, 16)
	mat, _ := assembly.NewMaterializer(s, cube)
	q := NewQuerier(s, mat)
	pc := NewPrefixCube(cube)
	f := func(a, b, c, d uint8) bool {
		lo := []int{int(a) % 16, int(b) % 16}
		ext := []int{1 + int(c)%(16-lo[0]), 1 + int(d)%(16-lo[1])}
		box := Box{Lo: lo, Ext: ext}
		direct, err := DirectScan(cube, box)
		if err != nil {
			return false
		}
		viaElements, err := q.RangeSum(box)
		if err != nil {
			return false
		}
		viaPrefix, err := pc.RangeSum(box)
		if err != nil {
			return false
		}
		return math.Abs(direct-viaElements) < 1e-6 && math.Abs(direct-viaPrefix) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupedRangeSumMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	s := velement.MustSpace(8, 16, 4)
	cube := randomCube(rng, 8, 16, 4)
	mat, _ := assembly.NewMaterializer(s, cube)
	q := NewQuerier(s, mat)
	for trial := 0; trial < 40; trial++ {
		// Keep dim 0; filter dims 1 and 2.
		lo1, lo2 := rng.Intn(16), rng.Intn(4)
		box := Box{
			Lo:  []int{0, lo1, lo2},
			Ext: []int{8, 1 + rng.Intn(16-lo1), 1 + rng.Intn(4-lo2)},
		}
		got, err := q.GroupedRangeSum(box, []bool{true, false, false})
		if err != nil {
			t.Fatal(err)
		}
		if sh := got.Shape(); sh[0] != 8 || sh[1] != 1 || sh[2] != 1 {
			t.Fatalf("output shape %v", sh)
		}
		for i := 0; i < 8; i++ {
			want, err := cube.BoxSum([]int{i, box.Lo[1], box.Lo[2]}, []int{1, box.Ext[1], box.Ext[2]})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.At(i, 0, 0)-want) > 1e-6 {
				t.Fatalf("trial %d group %d: %g, want %g", trial, i, got.At(i, 0, 0), want)
			}
		}
	}
}

func TestGroupedRangeSumAllKept(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	s := velement.MustSpace(4, 4)
	cube := randomCube(rng, 4, 4)
	mat, _ := assembly.NewMaterializer(s, cube)
	q := NewQuerier(s, mat)
	got, err := q.GroupedRangeSum(Box{Lo: []int{0, 0}, Ext: []int{4, 4}}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(cube, 1e-9) {
		t.Fatal("all-kept grouped sum must return the cube")
	}
}

func TestGroupedRangeSumValidation(t *testing.T) {
	s := velement.MustSpace(4, 4)
	mat, _ := assembly.NewMaterializer(s, ndarray.New(4, 4))
	q := NewQuerier(s, mat)
	// Kept dimension must be unfiltered.
	if _, err := q.GroupedRangeSum(Box{Lo: []int{1, 0}, Ext: []int{2, 4}}, []bool{true, true}); err == nil {
		t.Fatal("want error for filtered kept dimension")
	}
	if _, err := q.GroupedRangeSum(Box{Lo: []int{0, 0}, Ext: []int{4, 4}}, []bool{true}); err == nil {
		t.Fatal("want error for mask rank mismatch")
	}
	if _, err := q.GroupedRangeSum(Box{Lo: []int{0, 0}, Ext: []int{9, 4}}, []bool{true, false}); err == nil {
		t.Fatal("want error for bad box")
	}
}
