// Package rangeagg implements the range-aggregation queries of §6 of Smith
// et al. (PODS 1998).
//
// A range is an embedded sub-cube G(A) = A[x0:w0, …] (Eq. 35) and the
// range-aggregation is the SUM over it (Eq. 36). Because range extraction
// commutes with partial aggregation for 2^k-aligned ranges (Eq. 37–40),
// any range decomposes per dimension into O(log n) maximal aligned dyadic
// blocks, and the sum over each product of blocks is a single cell of an
// intermediate view element (the Gaussian pyramid of §4.3). A range-SUM
// therefore touches Π_m O(log n_m) cells instead of the Π_m w_m cells a
// direct scan reads.
//
// The package provides the dyadic decomposition, a Querier that answers
// range sums from any source of view elements, and two baselines: direct
// scan and the prefix-sum cube of Ho et al. [9].
package rangeagg

import (
	"fmt"
	"math/bits"
	"sync"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/velement"
)

// Box is an axis-aligned range: the half-open box [Lo, Lo+Ext) in data
// coordinates (the position X and size W of Eq. 35).
type Box struct {
	Lo  []int
	Ext []int
}

// Validate checks the box against a cube shape.
func (b Box) Validate(shape []int) error {
	if len(b.Lo) != len(shape) || len(b.Ext) != len(shape) {
		return fmt.Errorf("rangeagg: box rank does not match cube rank %d", len(shape))
	}
	for m := range shape {
		if b.Lo[m] < 0 || b.Ext[m] <= 0 || b.Lo[m]+b.Ext[m] > shape[m] {
			return fmt.Errorf("rangeagg: box lo=%v ext=%v outside shape %v", b.Lo, b.Ext, shape)
		}
	}
	return nil
}

// Cells returns the number of cells the box covers.
func (b Box) Cells() int {
	n := 1
	for _, e := range b.Ext {
		n *= e
	}
	return n
}

// Block is one maximal aligned dyadic block [Start, Start+2^Level) on a
// single dimension: Start is a multiple of 2^Level.
type Block struct {
	Start int
	Level int
}

// Size returns the block length 2^Level.
func (b Block) Size() int { return 1 << b.Level }

// DyadicBlocks decomposes the 1-D interval [lo, lo+ext) into the canonical
// minimal sequence of maximal aligned dyadic blocks. For an interval inside
// a domain of size n it produces at most 2·log2(n) blocks.
func DyadicBlocks(lo, ext int) []Block {
	if ext <= 0 || lo < 0 {
		return nil
	}
	var out []Block
	cur, end := lo, lo+ext
	for cur < end {
		// Largest power of two that both aligns with cur and fits.
		k := bits.TrailingZeros(uint(cur))
		if cur == 0 {
			k = bits.Len(uint(end)) // unconstrained by alignment
		}
		for (1 << k) > end-cur {
			k--
		}
		out = append(out, Block{Start: cur, Level: k})
		cur += 1 << k
	}
	return out
}

// ElementSource supplies materialised view elements. Both
// assembly.Materializer (compute from the cube) and an adapter around
// assembly.Engine (assemble from a store) satisfy it.
type ElementSource interface {
	Element(r freq.Rect) (*ndarray.Array, error)
}

// CtxElementSource is optionally implemented by sources that can record
// per-query spans while producing an element. The querier forwards its
// execution context through ElementCtx when the source supports it, so
// element assembly shows up in query traces without the source holding any
// per-query state.
type CtxElementSource interface {
	ElementCtx(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error)
}

// Querier answers range-SUM queries from intermediate view elements,
// caching each element it touches. Queries may run concurrently: the
// pyramid cache and the CellsRead tally are guarded by an internal mutex,
// and cached arrays are only ever read after insertion. (Concurrent safety
// additionally requires an element source that is safe for concurrent
// calls, such as an assembly engine over a concurrent-read store.)
type Querier struct {
	space *velement.Space
	src   ElementSource

	mu    sync.Mutex // guards cache and CellsRead
	cache map[freq.Key]*ndarray.Array

	// CellsRead counts element cells fetched across all queries — the
	// operational cost that §6 argues is logarithmic per dimension. It is
	// updated once per query under the internal lock; read it only while no
	// query is in flight.
	CellsRead int

	met *obs.RangeMetrics
}

// NewQuerier returns a range querier over the space, fetching intermediate
// elements from src on demand.
func NewQuerier(space *velement.Space, src ElementSource) *Querier {
	return &Querier{
		space: space, src: src,
		cache: make(map[freq.Key]*ndarray.Array),
		met:   obs.NewRangeMetrics(nil),
	}
}

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (q *Querier) SetMetrics(m *obs.RangeMetrics) {
	if m == nil {
		m = obs.NewRangeMetrics(nil)
	}
	q.met = m
}

// Reset drops every cached element. Call it after the underlying data
// changes (e.g. incremental cube updates) so subsequent range queries
// re-fetch fresh elements.
func (q *Querier) Reset() {
	q.mu.Lock()
	q.cache = make(map[freq.Key]*ndarray.Array)
	q.mu.Unlock()
}

// element returns the intermediate view element whose per-dimension
// all-partial depth is levels[m] (the Gaussian-pyramid member P_k). Cached
// elements are shared read-only between concurrent queries; a miss fetches
// outside the lock (two racing fetchers are harmless — both produce the
// same element, and one wins the cache slot).
func (q *Querier) element(x *obs.ExecCtx, depths []int) (*ndarray.Array, error) {
	r := make(freq.Rect, len(depths))
	for m, k := range depths {
		r[m] = freq.Node(1 << uint(k))
	}
	key := r.Key()
	q.mu.Lock()
	a, ok := q.cache[key]
	q.mu.Unlock()
	if ok {
		return a, nil
	}
	sp := x.Start("element " + r.String())
	defer sp.End()
	a, err := q.fetch(x, r)
	if err != nil {
		return nil, err
	}
	q.met.ElementMiss.Inc()
	sp.SetAttr("cells", int64(a.Size()))
	q.mu.Lock()
	if prior, ok := q.cache[key]; ok {
		a = prior // lost the race; keep the already-shared copy
	} else {
		q.cache[key] = a
	}
	q.mu.Unlock()
	return a, nil
}

// fetch produces one element from the source, forwarding the execution
// context to sources that can trace their work (CtxElementSource).
func (q *Querier) fetch(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error) {
	if cs, ok := q.src.(CtxElementSource); ok {
		return cs.ElementCtx(x, r)
	}
	return q.src.Element(r)
}

// RangeSum computes the SUM over the box via the dyadic decomposition: one
// element-cell read per product of per-dimension blocks. It is the untraced
// form of RangeSumCtx.
func (q *Querier) RangeSum(box Box) (float64, error) {
	return q.RangeSumCtx(nil, box)
}

// RangeSumCtx is RangeSum with an explicit per-query execution context: a
// non-nil x records a "range_sum" span plus one "element" span per pyramid
// miss. A nil x means untraced.
func (q *Querier) RangeSumCtx(x *obs.ExecCtx, box Box) (float64, error) {
	shape := q.space.Shape()
	if err := box.Validate(shape); err != nil {
		return 0, err
	}
	q.met.RangeQueries.Inc()
	sp := x.Start("range_sum")
	sp.SetAttr("box_cells", int64(box.Cells()))
	defer sp.End()
	d := len(shape)
	blocks := make([][]Block, d)
	for m := 0; m < d; m++ {
		blocks[m] = DyadicBlocks(box.Lo[m], box.Ext[m])
	}
	// Iterate over the cartesian product of per-dimension blocks. The
	// element is chosen by the block levels; the cell by the block starts.
	idx := make([]int, d)
	depths := make([]int, d)
	cell := make([]int, d)
	sum := 0.0
	read := 0
	for {
		for m := 0; m < d; m++ {
			b := blocks[m][idx[m]]
			// P_k sums aligned runs of 2^k cells, so a block of size
			// 2^Level is one cell — at index Start >> Level — of the
			// intermediate element at partial-path depth Level.
			depths[m] = b.Level
			cell[m] = b.Start >> uint(b.Level)
		}
		el, err := q.element(x, depths)
		if err != nil {
			return 0, err
		}
		sum += el.At(cell...)
		read++
		// Advance the product iterator.
		m := d - 1
		for ; m >= 0; m-- {
			idx[m]++
			if idx[m] < len(blocks[m]) {
				break
			}
			idx[m] = 0
		}
		if m < 0 {
			break
		}
	}
	q.met.CellsRead.Add(uint64(read))
	q.mu.Lock()
	q.CellsRead += read
	q.mu.Unlock()
	sp.SetAttr("cells_read", int64(read))
	return sum, nil
}

// BlocksTouched returns the number of element cells a box's decomposition
// reads: Π_m #blocks(m). It is the §6 cost estimate.
func BlocksTouched(box Box) int {
	n := 1
	for m := range box.Lo {
		n *= len(DyadicBlocks(box.Lo[m], box.Ext[m]))
	}
	return n
}

// DirectScan answers the range sum by scanning the cube — the baseline the
// paper's intermediate-element method is compared against.
func DirectScan(cube *ndarray.Array, box Box) (float64, error) {
	return cube.BoxSum(box.Lo, box.Ext)
}

// PrefixCube is the prefix-sum cube of Ho et al. [9]: after one O(Vol(A))
// preprocessing pass, any range sum is an alternating-sign combination of
// 2^d corner cells.
type PrefixCube struct {
	ps *ndarray.Array
}

// NewPrefixCube builds the prefix-sum cube from the data cube.
func NewPrefixCube(cube *ndarray.Array) *PrefixCube {
	ps := cube.Clone()
	for m := 0; m < ps.Rank(); m++ {
		ps.PrefixSumAxis(m)
	}
	return &PrefixCube{ps: ps}
}

// RangeSum answers the range sum from 2^d corner lookups by
// inclusion–exclusion.
func (p *PrefixCube) RangeSum(box Box) (float64, error) {
	if err := box.Validate(p.ps.Shape()); err != nil {
		return 0, err
	}
	d := p.ps.Rank()
	idx := make([]int, d)
	sum := 0.0
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		skip := false
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) != 0 {
				// Low corner: index lo−1; a −1 index means the term is zero.
				if box.Lo[m] == 0 {
					skip = true
					break
				}
				idx[m] = box.Lo[m] - 1
				sign = -sign
			} else {
				idx[m] = box.Lo[m] + box.Ext[m] - 1
			}
		}
		if skip {
			continue
		}
		sum += sign * p.ps.At(idx...)
	}
	return sum, nil
}
