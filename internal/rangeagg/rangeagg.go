// Package rangeagg implements the range-aggregation queries of §6 of Smith
// et al. (PODS 1998).
//
// A range is an embedded sub-cube G(A) = A[x0:w0, …] (Eq. 35) and the
// range-aggregation is the SUM over it (Eq. 36). Because range extraction
// commutes with partial aggregation for 2^k-aligned ranges (Eq. 37–40),
// any range decomposes per dimension into O(log n) maximal aligned dyadic
// blocks, and the sum over each product of blocks is a single cell of an
// intermediate view element (the Gaussian pyramid of §4.3). A range-SUM
// therefore touches Π_m O(log n_m) cells instead of the Π_m w_m cells a
// direct scan reads.
//
// The package provides the dyadic decomposition, a Querier that answers
// range sums from any source of view elements, and two baselines: direct
// scan and the prefix-sum cube of Ho et al. [9].
package rangeagg

import (
	"fmt"
	"sync"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
	"viewcube/internal/plan"
	"viewcube/internal/velement"
)

// Box is an axis-aligned range: the half-open box [Lo, Lo+Ext) in data
// coordinates (the position X and size W of Eq. 35).
type Box struct {
	Lo  []int
	Ext []int
}

// Validate checks the box against a cube shape.
func (b Box) Validate(shape []int) error {
	if len(b.Lo) != len(shape) || len(b.Ext) != len(shape) {
		return fmt.Errorf("rangeagg: box rank does not match cube rank %d", len(shape))
	}
	for m := range shape {
		if b.Lo[m] < 0 || b.Ext[m] <= 0 || b.Lo[m]+b.Ext[m] > shape[m] {
			return fmt.Errorf("rangeagg: box lo=%v ext=%v outside shape %v", b.Lo, b.Ext, shape)
		}
	}
	return nil
}

// Cells returns the number of cells the box covers.
func (b Box) Cells() int {
	n := 1
	for _, e := range b.Ext {
		n *= e
	}
	return n
}

// Block is one maximal aligned dyadic block [Start, Start+2^Level) on a
// single dimension. It now lives in the shared plan IR; the alias keeps the
// historical rangeagg API intact.
type Block = plan.Block

// DyadicBlocks decomposes the 1-D interval [lo, lo+ext) into the canonical
// minimal sequence of maximal aligned dyadic blocks. It delegates to the
// shared plan IR (plan.DyadicBlocks); kept here for API compatibility.
func DyadicBlocks(lo, ext int) []Block { return plan.DyadicBlocks(lo, ext) }

// ElementSource supplies materialised view elements. Both
// assembly.Materializer (compute from the cube) and an adapter around
// assembly.Engine (assemble from a store) satisfy it.
type ElementSource interface {
	Element(r freq.Rect) (*ndarray.Array, error)
}

// CtxElementSource is optionally implemented by sources that can record
// per-query spans while producing an element. The querier forwards its
// execution context through ElementCtx when the source supports it, so
// element assembly shows up in query traces without the source holding any
// per-query state.
type CtxElementSource interface {
	ElementCtx(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error)
}

// Querier answers range-SUM queries from intermediate view elements,
// caching each element it touches in an epoch-keyed plan.Cache. Queries may
// run concurrently: the pyramid cache is concurrency-safe with singleflight
// miss coalescing (racing queries for the same intermediate element wait on
// one fetch instead of duplicating it), and cached arrays are only ever
// read after insertion. (Concurrent safety additionally requires an element
// source that is safe for concurrent calls, such as an assembly engine over
// a concurrent-read store.)
type Querier struct {
	space *velement.Space
	src   ElementSource

	cache *plan.Cache[*ndarray.Array]

	mu sync.Mutex // guards CellsRead

	// CellsRead counts element cells fetched across all queries — the
	// operational cost that §6 argues is logarithmic per dimension. It is
	// updated once per query under the internal lock; read it only while no
	// query is in flight.
	CellsRead int

	met *obs.RangeMetrics
}

// NewQuerier returns a range querier over the space, fetching intermediate
// elements from src on demand.
func NewQuerier(space *velement.Space, src ElementSource) *Querier {
	return &Querier{
		space: space, src: src,
		cache: NewCache(),
		met:   obs.NewRangeMetrics(nil),
	}
}

// NewCache returns the element-cache type the querier uses — the same
// epoch-keyed cache the planner caches assembly plans in. Exposed so engine
// shards (PartitionedEngine) and the root engine can share the type.
func NewCache() *plan.Cache[*ndarray.Array] {
	return plan.NewCache[*ndarray.Array]()
}

// Cache exposes the querier's element cache so the owner can invalidate it
// together with the plan cache (one epoch protocol for the whole read path).
func (q *Querier) Cache() *plan.Cache[*ndarray.Array] { return q.cache }

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (q *Querier) SetMetrics(m *obs.RangeMetrics) {
	if m == nil {
		m = obs.NewRangeMetrics(nil)
	}
	q.met = m
}

// Reset bumps the cache epoch, dropping every cached element. Call it after
// the underlying data changes (e.g. incremental cube updates) so subsequent
// range queries re-fetch fresh elements.
func (q *Querier) Reset() { q.cache.Invalidate() }

// element returns the intermediate view element whose per-dimension
// all-partial depth is levels[m] (the Gaussian-pyramid member P_k). Cached
// elements are shared read-only between concurrent queries; racing misses
// for the same element are coalesced onto one fetch, and only the fetching
// goroutine records the "element" span (waiters did no work).
func (q *Querier) element(x *obs.ExecCtx, depths []int) (*ndarray.Array, error) {
	r := make(freq.Rect, len(depths))
	for m, k := range depths {
		r[m] = freq.Node(1 << uint(k))
	}
	a, _, err := q.cache.GetOrCompute(r.Key(), func() (*ndarray.Array, error) {
		sp := x.Start("element " + r.String())
		defer sp.End()
		a, err := q.fetch(x.Under(sp), r)
		if err != nil {
			return nil, err
		}
		q.met.ElementMiss.Inc()
		sp.SetAttr("cells", int64(a.Size()))
		return a, nil
	})
	return a, err
}

// fetch produces one element from the source, forwarding the execution
// context to sources that can trace their work (CtxElementSource).
func (q *Querier) fetch(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, error) {
	if cs, ok := q.src.(CtxElementSource); ok {
		return cs.ElementCtx(x, r)
	}
	return q.src.Element(r)
}

// RangeSum computes the SUM over the box via the dyadic decomposition: one
// element-cell read per product of per-dimension blocks. It is the untraced
// form of RangeSumCtx.
func (q *Querier) RangeSum(box Box) (float64, error) {
	return q.RangeSumCtx(nil, box)
}

// RangeSumCtx is RangeSum with an explicit per-query execution context: a
// non-nil x records a "range_sum" span plus one "element" span per pyramid
// miss. A nil x means untraced.
func (q *Querier) RangeSumCtx(x *obs.ExecCtx, box Box) (float64, error) {
	shape := q.space.Shape()
	if err := box.Validate(shape); err != nil {
		return 0, err
	}
	q.met.RangeQueries.Inc()
	sp := x.Start("range_sum")
	sp.SetAttr("box_cells", int64(box.Cells()))
	defer sp.End()
	x = x.Under(sp)
	d := len(shape)
	// Lower through the shared plan IR: one leg of dyadic blocks per
	// dimension (§6 decomposition).
	legs := plan.DecomposeBox(box.Lo, box.Ext, nil)
	// Iterate over the cartesian product of per-dimension blocks. The
	// element is chosen by the block levels; the cell by the block starts.
	idx := make([]int, d)
	depths := make([]int, d)
	cell := make([]int, d)
	sum := 0.0
	read := 0
	for {
		for m := 0; m < d; m++ {
			b := legs[m].Blocks[idx[m]]
			// P_k sums aligned runs of 2^k cells, so a block of size
			// 2^Level is one cell — at index Start >> Level — of the
			// intermediate element at partial-path depth Level.
			depths[m] = b.Level
			cell[m] = b.Start >> uint(b.Level)
		}
		el, err := q.element(x, depths)
		if err != nil {
			return 0, err
		}
		sum += el.At(cell...)
		read++
		// Advance the product iterator.
		m := d - 1
		for ; m >= 0; m-- {
			idx[m]++
			if idx[m] < len(legs[m].Blocks) {
				break
			}
			idx[m] = 0
		}
		if m < 0 {
			break
		}
	}
	q.met.CellsRead.Add(uint64(read))
	q.mu.Lock()
	q.CellsRead += read
	q.mu.Unlock()
	sp.SetAttr("cells_read", int64(read))
	return sum, nil
}

// BlocksTouched returns the number of element cells a box's decomposition
// reads: Π_m #blocks(m). It is the §6 cost estimate.
func BlocksTouched(box Box) int {
	n := 1
	for m := range box.Lo {
		n *= len(DyadicBlocks(box.Lo[m], box.Ext[m]))
	}
	return n
}

// DirectScan answers the range sum by scanning the cube — the baseline the
// paper's intermediate-element method is compared against.
func DirectScan(cube *ndarray.Array, box Box) (float64, error) {
	return cube.BoxSum(box.Lo, box.Ext)
}

// PrefixCube is the prefix-sum cube of Ho et al. [9]: after one O(Vol(A))
// preprocessing pass, any range sum is an alternating-sign combination of
// 2^d corner cells.
type PrefixCube struct {
	ps *ndarray.Array
}

// NewPrefixCube builds the prefix-sum cube from the data cube.
func NewPrefixCube(cube *ndarray.Array) *PrefixCube {
	ps := cube.Clone()
	for m := 0; m < ps.Rank(); m++ {
		ps.PrefixSumAxis(m)
	}
	return &PrefixCube{ps: ps}
}

// RangeSum answers the range sum from 2^d corner lookups by
// inclusion–exclusion.
func (p *PrefixCube) RangeSum(box Box) (float64, error) {
	if err := box.Validate(p.ps.Shape()); err != nil {
		return 0, err
	}
	d := p.ps.Rank()
	idx := make([]int, d)
	sum := 0.0
	for mask := 0; mask < 1<<uint(d); mask++ {
		sign := 1.0
		skip := false
		for m := 0; m < d; m++ {
			if mask&(1<<uint(m)) != 0 {
				// Low corner: index lo−1; a −1 index means the term is zero.
				if box.Lo[m] == 0 {
					skip = true
					break
				}
				idx[m] = box.Lo[m] - 1
				sign = -sign
			} else {
				idx[m] = box.Lo[m] + box.Ext[m] - 1
			}
		}
		if skip {
			continue
		}
		sum += sign * p.ps.At(idx...)
	}
	return sum, nil
}
