// Package relation is the relational substrate of the reproduction: the
// paper assumes "the data set is initially stored in a relational table R
// that has d functional attributes and at least one measure attribute"
// (§2). This package provides that table — schema, rows, CSV input/output —
// plus dictionary encoding of functional attributes onto power-of-two
// dimension domains, loading of the MOLAP data cube A from R, and a plain
// GROUP-BY evaluator used as the ground truth the cube machinery is
// verified against.
package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Schema describes a relation with d functional (dimension) attributes and
// one numeric measure attribute, aggregated with SUM.
type Schema struct {
	Dimensions []string
	Measure    string
}

// Validate checks the schema for emptiness and duplicate names.
func (s Schema) Validate() error {
	if len(s.Dimensions) == 0 {
		return fmt.Errorf("relation: schema needs at least one dimension")
	}
	if s.Measure == "" {
		return fmt.Errorf("relation: schema needs a measure attribute")
	}
	seen := map[string]bool{s.Measure: true}
	for _, d := range s.Dimensions {
		if d == "" {
			return fmt.Errorf("relation: empty dimension name")
		}
		if seen[d] {
			return fmt.Errorf("relation: duplicate attribute %q", d)
		}
		seen[d] = true
	}
	return nil
}

// Row is one tuple: a value per functional attribute plus the measure.
type Row struct {
	Values  []string
	Measure float64
}

// Table is an append-only relation.
type Table struct {
	schema Schema
	rows   []Row
}

// NewTable returns an empty table with the given schema.
func NewTable(schema Schema) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	return &Table{schema: schema}, nil
}

// Schema returns the table's schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns row i.
func (t *Table) Row(i int) Row { return t.rows[i] }

// Append adds a tuple. The value count must match the schema.
func (t *Table) Append(values []string, measure float64) error {
	if len(values) != len(t.schema.Dimensions) {
		return fmt.Errorf("relation: row has %d values, schema has %d dimensions",
			len(values), len(t.schema.Dimensions))
	}
	t.rows = append(t.rows, Row{Values: append([]string(nil), values...), Measure: measure})
	return nil
}

// ReadCSV parses a relation from CSV. The first record is the header; the
// column named measure becomes the measure attribute and every other column
// a dimension, in header order.
func ReadCSV(r io.Reader, measure string) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	measureCol := -1
	var dims []string
	var dimCols []int
	for i, name := range header {
		if name == measure {
			measureCol = i
			continue
		}
		dims = append(dims, name)
		dimCols = append(dimCols, i)
	}
	if measureCol < 0 {
		return nil, fmt.Errorf("relation: measure column %q not in header %v", measure, header)
	}
	t, err := NewTable(Schema{Dimensions: dims, Measure: measure})
	if err != nil {
		return nil, err
	}
	values := make([]string, len(dims))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, fmt.Errorf("relation: reading CSV line %d: %w", line, err)
		}
		m, err := strconv.ParseFloat(strings.TrimSpace(rec[measureCol]), 64)
		if err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: bad measure %q: %w", line, rec[measureCol], err)
		}
		for i, c := range dimCols {
			values[i] = rec[c]
		}
		if err := t.Append(values, m); err != nil {
			return nil, fmt.Errorf("relation: CSV line %d: %w", line, err)
		}
	}
}

// WriteCSV emits the relation as CSV with the dimensions first and the
// measure last.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append(append([]string(nil), t.schema.Dimensions...), t.schema.Measure)
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, len(header))
	for _, row := range t.rows {
		copy(rec, row.Values)
		rec[len(rec)-1] = strconv.FormatFloat(row.Measure, 'g', -1, 64)
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// groupKeySep joins group-by key parts; it is a non-printing separator that
// cannot collide with reasonable attribute values.
const groupKeySep = "\x1f"

// GroupKey joins dimension values into the map key used by GroupBy.
func GroupKey(values ...string) string { return strings.Join(values, groupKeySep) }

// SplitGroupKey splits a GroupBy key back into its dimension values.
func SplitGroupKey(key string) []string {
	if key == "" {
		return nil
	}
	return strings.Split(key, groupKeySep)
}

// GroupBy evaluates SELECT dims, SUM(measure) GROUP BY dims the obvious
// relational way. dims are dimension indices into the schema; an empty dims
// yields the single grand-total group with key "".
func (t *Table) GroupBy(dims []int) (map[string]float64, error) {
	for _, d := range dims {
		if d < 0 || d >= len(t.schema.Dimensions) {
			return nil, fmt.Errorf("relation: group-by dimension %d out of range", d)
		}
	}
	out := make(map[string]float64)
	parts := make([]string, len(dims))
	for _, row := range t.rows {
		for i, d := range dims {
			parts[i] = row.Values[d]
		}
		out[GroupKey(parts...)] += row.Measure
	}
	return out, nil
}

// DistinctValues returns the sorted distinct values of one dimension.
func (t *Table) DistinctValues(dim int) []string {
	seen := make(map[string]bool)
	for _, row := range t.rows {
		seen[row.Values[dim]] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}
