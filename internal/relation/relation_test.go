package relation

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"viewcube/internal/haar"
	"viewcube/internal/velement"
)

func salesTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable(Schema{Dimensions: []string{"product", "region"}, Measure: "sales"})
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		p, r string
		v    float64
	}{
		{"ale", "east", 10}, {"ale", "west", 5}, {"bock", "east", 7},
		{"cider", "west", 3}, {"ale", "east", 2}, // duplicate cell: sums to 12
	}
	for _, r := range rows {
		if err := tbl.Append([]string{r.p, r.r}, r.v); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSchemaValidate(t *testing.T) {
	bad := []Schema{
		{},
		{Dimensions: []string{"a"}},
		{Dimensions: []string{"a", "a"}, Measure: "m"},
		{Dimensions: []string{"a", "m"}, Measure: "m"},
		{Dimensions: []string{""}, Measure: "m"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	good := Schema{Dimensions: []string{"a", "b"}, Measure: "m"}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendValidation(t *testing.T) {
	tbl := salesTable(t)
	if err := tbl.Append([]string{"only-one"}, 1); err == nil {
		t.Fatal("want error for wrong arity")
	}
	if tbl.Len() != 5 {
		t.Fatalf("len %d, want 5", tbl.Len())
	}
	if tbl.Row(0).Measure != 10 {
		t.Fatal("Row accessor broken")
	}
}

func TestGroupBy(t *testing.T) {
	tbl := salesTable(t)
	byProduct, err := tbl.GroupBy([]int{0})
	if err != nil {
		t.Fatal(err)
	}
	if byProduct[GroupKey("ale")] != 17 || byProduct[GroupKey("bock")] != 7 || byProduct[GroupKey("cider")] != 3 {
		t.Fatalf("by product: %v", byProduct)
	}
	grand, err := tbl.GroupBy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if grand[""] != 27 {
		t.Fatalf("grand total %v, want 27", grand[""])
	}
	if _, err := tbl.GroupBy([]int{5}); err == nil {
		t.Fatal("want error for bad dimension")
	}
}

func TestGroupKeyRoundTrip(t *testing.T) {
	k := GroupKey("a", "b c", "d")
	parts := SplitGroupKey(k)
	if len(parts) != 3 || parts[1] != "b c" {
		t.Fatalf("split %v", parts)
	}
	if SplitGroupKey("") != nil {
		t.Fatal("empty key splits to nil")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := salesTable(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "sales")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tbl.Len() {
		t.Fatalf("round trip %d rows, want %d", back.Len(), tbl.Len())
	}
	for i := 0; i < tbl.Len(); i++ {
		a, b := tbl.Row(i), back.Row(i)
		if a.Measure != b.Measure || a.Values[0] != b.Values[0] || a.Values[1] != b.Values[1] {
			t.Fatalf("row %d mismatch: %v vs %v", i, a, b)
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("a,b\n1,2\n"), "sales"); err == nil {
		t.Fatal("want error for missing measure column")
	}
	if _, err := ReadCSV(strings.NewReader("a,sales\nx,notanumber\n"), "sales"); err == nil {
		t.Fatal("want error for non-numeric measure")
	}
	if _, err := ReadCSV(strings.NewReader(""), "sales"); err == nil {
		t.Fatal("want error for empty input")
	}
}

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	if d.Encode("x") != 0 || d.Encode("y") != 1 || d.Encode("x") != 0 {
		t.Fatal("Encode must be stable")
	}
	if c, ok := d.Code("y"); !ok || c != 1 {
		t.Fatal("Code lookup broken")
	}
	if _, ok := d.Code("zzz"); ok {
		t.Fatal("Code must not assign")
	}
	if v, ok := d.Value(1); !ok || v != "y" {
		t.Fatal("Value lookup broken")
	}
	if _, ok := d.Value(9); ok {
		t.Fatal("Value out of range must fail")
	}
	if d.Len() != 2 {
		t.Fatal("Len wrong")
	}
}

func TestPaddedLen(t *testing.T) {
	d := NewDictionary()
	if d.PaddedLen() != 2 {
		t.Fatalf("empty dictionary pads to 2, got %d", d.PaddedLen())
	}
	for _, v := range []string{"a", "b", "c"} {
		d.Encode(v)
	}
	if d.PaddedLen() != 4 {
		t.Fatalf("3 values pad to 4, got %d", d.PaddedLen())
	}
	d.Encode("d")
	if d.PaddedLen() != 4 {
		t.Fatalf("4 values pad to 4, got %d", d.PaddedLen())
	}
	d.Encode("e")
	if d.PaddedLen() != 8 {
		t.Fatalf("5 values pad to 8, got %d", d.PaddedLen())
	}
}

func TestBuildCube(t *testing.T) {
	tbl := salesTable(t)
	cube, enc, err := BuildCube(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// 3 products pad to 4, 2 regions stay 2.
	shape := cube.Shape()
	if shape[0] != 4 || shape[1] != 2 {
		t.Fatalf("shape %v, want [4 2]", shape)
	}
	// Dictionary codes are sorted: ale=0, bock=1, cider=2; east=0, west=1.
	if cube.At(0, 0) != 12 { // ale/east: 10+2
		t.Fatalf("ale/east = %g, want 12", cube.At(0, 0))
	}
	if cube.At(2, 1) != 3 { // cider/west
		t.Fatalf("cider/west = %g, want 3", cube.At(2, 1))
	}
	if math.Abs(cube.Total()-27) > 1e-12 {
		t.Fatalf("cube total %g, want 27", cube.Total())
	}
	// Encoding round trip.
	idx, err := enc.Index([]string{"bock", "west"})
	if err != nil {
		t.Fatal(err)
	}
	if idx[0] != 1 || idx[1] != 1 {
		t.Fatalf("index %v, want [1 1]", idx)
	}
	if _, err := enc.Index([]string{"stout", "west"}); err == nil {
		t.Fatal("want error for unknown value")
	}
	if _, err := enc.Index([]string{"ale"}); err == nil {
		t.Fatal("want error for wrong arity")
	}
}

// The cube's totally aggregated views must agree with relational GROUP BY —
// the bridge between the MOLAP machinery and the relational semantics.
func TestAggregatedViewsMatchGroupBy(t *testing.T) {
	tbl := salesTable(t)
	cube, enc, err := BuildCube(tbl)
	if err != nil {
		t.Fatal(err)
	}
	space := velement.MustSpace(cube.Shape()...)
	for mask := 0; mask < 4; mask++ {
		aggregated := []bool{mask&1 != 0, mask&2 != 0}
		var keepDims []int
		for m, agg := range aggregated {
			if !agg {
				keepDims = append(keepDims, m)
			}
		}
		want, err := tbl.GroupBy(keepDims)
		if err != nil {
			t.Fatal(err)
		}
		view, err := haar.ApplyRect(cube, space.ViewForMask(uint(mask)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.ViewGroups(view, aggregated)
		if err != nil {
			t.Fatal(err)
		}
		for k, wv := range want {
			if math.Abs(got[k]-wv) > 1e-9 {
				t.Fatalf("mask %d: group %q = %g, want %g", mask, k, got[k], wv)
			}
		}
		for k, gv := range got {
			if _, ok := want[k]; !ok && math.Abs(gv) > 1e-9 {
				t.Fatalf("mask %d: unexpected nonzero group %q = %g", mask, k, gv)
			}
		}
	}
}

func TestViewGroupsValidation(t *testing.T) {
	tbl := salesTable(t)
	cube, enc, _ := BuildCube(tbl)
	if _, err := enc.ViewGroups(cube, []bool{true}); err == nil {
		t.Fatal("want error for mask rank mismatch")
	}
	if _, err := enc.ViewGroups(cube, []bool{true, false}); err == nil {
		t.Fatal("want error for extent mismatch")
	}
}

func TestDistinctValuesSorted(t *testing.T) {
	tbl := salesTable(t)
	got := tbl.DistinctValues(0)
	want := []string{"ale", "bock", "cider"}
	if len(got) != 3 {
		t.Fatalf("distinct %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("distinct %v, want %v", got, want)
		}
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]float64{"b": 1, "a": 2})
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("sorted keys %v", keys)
	}
}

// Property: for random tables, the cube grand total equals the relational
// grand total, and a random single-dimension GROUP BY agrees with the
// corresponding totally aggregated view.
func TestRandomTableCubeConsistency(t *testing.T) {
	products := []string{"p0", "p1", "p2", "p3", "p4", "p5"}
	regions := []string{"r0", "r1", "r2"}
	months := []string{"m0", "m1", "m2", "m3"}
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tbl, err := NewTable(Schema{Dimensions: []string{"product", "region", "month"}, Measure: "qty"})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			err := tbl.Append([]string{
				products[rng.Intn(len(products))],
				regions[rng.Intn(len(regions))],
				months[rng.Intn(len(months))],
			}, float64(rng.Intn(100)))
			if err != nil {
				t.Fatal(err)
			}
		}
		cube, enc, err := BuildCube(tbl)
		if err != nil {
			t.Fatal(err)
		}
		grand, _ := tbl.GroupBy(nil)
		if math.Abs(cube.Total()-grand[""]) > 1e-9 {
			t.Fatalf("seed %d: cube total %g, relational %g", seed, cube.Total(), grand[""])
		}
		space := velement.MustSpace(cube.Shape()...)
		// Aggregate away dims 1 and 2, keep product (mask with bits 1,2).
		view, err := haar.ApplyRect(cube, space.ViewForMask(0b110))
		if err != nil {
			t.Fatal(err)
		}
		got, err := enc.ViewGroups(view, []bool{false, true, true})
		if err != nil {
			t.Fatal(err)
		}
		want, _ := tbl.GroupBy([]int{0})
		for k, wv := range want {
			if math.Abs(got[k]-wv) > 1e-9 {
				t.Fatalf("seed %d: group %q = %g, want %g", seed, k, got[k], wv)
			}
		}
	}
}

func TestBoundsWithin(t *testing.T) {
	d := NewDictionary()
	for _, v := range []string{"apple", "banana", "cherry", "date"} {
		d.Encode(v)
	}
	lo, hi, ok, err := d.BoundsWithin("banana", "cherry")
	if err != nil || !ok || lo != 1 || hi != 2 {
		t.Fatalf("bounds (%d,%d,%v,%v)", lo, hi, ok, err)
	}
	// Bounds that are not exact values still select lexicographically.
	lo, hi, ok, err = d.BoundsWithin("b", "cz")
	if err != nil || !ok || lo != 1 || hi != 2 {
		t.Fatalf("inexact bounds (%d,%d,%v,%v)", lo, hi, ok, err)
	}
	// Open bounds.
	lo, hi, ok, err = d.BoundsWithin("", "")
	if err != nil || !ok || lo != 0 || hi != 3 {
		t.Fatalf("open bounds (%d,%d,%v,%v)", lo, hi, ok, err)
	}
	// Empty interval.
	if _, _, ok, err = d.BoundsWithin("x", "y"); err != nil || ok {
		t.Fatalf("empty interval ok=%v err=%v", ok, err)
	}
	// Unsorted dictionary with non-contiguous matches errors out.
	u := NewDictionary()
	for _, v := range []string{"b", "z", "c"} {
		u.Encode(v)
	}
	if _, _, _, err := u.BoundsWithin("b", "c"); err == nil {
		t.Fatal("want contiguity error for unsorted dictionary")
	}
}
