package relation

import (
	"fmt"
	"sort"

	"viewcube/internal/ndarray"
)

// This file maps relations onto MOLAP data cubes: each functional attribute
// is dictionary-encoded onto [0, n_m) with n_m padded to the next power of
// two (the paper's standing assumption n_m = 2^k_m), and the measure is
// SUM-aggregated into the cube cells.

// Dictionary maps the distinct values of one functional attribute to dense
// integer codes in insertion order.
type Dictionary struct {
	values []string
	index  map[string]int
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{index: make(map[string]int)}
}

// Encode returns the code for v, assigning the next code on first sight.
func (d *Dictionary) Encode(v string) int {
	if c, ok := d.index[v]; ok {
		return c
	}
	c := len(d.values)
	d.values = append(d.values, v)
	d.index[v] = c
	return c
}

// Code returns the code for v and whether it is present, without assigning.
func (d *Dictionary) Code(v string) (int, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Value returns the attribute value for a code.
func (d *Dictionary) Value(code int) (string, bool) {
	if code < 0 || code >= len(d.values) {
		return "", false
	}
	return d.values[code], true
}

// Len returns the number of distinct values.
func (d *Dictionary) Len() int { return len(d.values) }

// PaddedLen returns the dictionary size rounded up to the next power of two
// (minimum 2, so every dimension can be decomposed at least once).
func (d *Dictionary) PaddedLen() int {
	n := 2
	for n < len(d.values) {
		n *= 2
	}
	return n
}

// BoundsWithin returns the inclusive code range of dictionary values lying
// lexicographically within [lo, hi]; empty lo means "from the first value"
// and empty hi "to the last". ok is false when no value falls in the
// interval. The matching codes must be contiguous — guaranteed when the
// dictionary was built in sorted order (as BuildCube does) — otherwise an
// error is returned.
func (d *Dictionary) BoundsWithin(lo, hi string) (loCode, hiCode int, ok bool, err error) {
	loCode, hiCode = -1, -1
	for code, v := range d.values {
		if (lo != "" && v < lo) || (hi != "" && v > hi) {
			continue
		}
		if loCode < 0 {
			loCode = code
		} else if code != hiCode+1 {
			return 0, 0, false, fmt.Errorf("relation: values in [%q,%q] are not contiguous in the dictionary", lo, hi)
		}
		hiCode = code
	}
	if loCode < 0 {
		return 0, 0, false, nil
	}
	return loCode, hiCode, true, nil
}

// Encoding binds a relation's dimensions to cube coordinates.
type Encoding struct {
	Dimensions []string      // attribute names, in cube-dimension order
	Dicts      []*Dictionary // one per dimension
	Shape      []int         // power-of-two extents
}

// Index encodes one tuple's dimension values to a cube cell index, or an
// error if any value is unknown to the encoding.
func (e *Encoding) Index(values []string) ([]int, error) {
	if len(values) != len(e.Dicts) {
		return nil, fmt.Errorf("relation: %d values for %d dimensions", len(values), len(e.Dicts))
	}
	idx := make([]int, len(values))
	for m, v := range values {
		c, ok := e.Dicts[m].Code(v)
		if !ok {
			return nil, fmt.Errorf("relation: value %q unknown for dimension %s", v, e.Dimensions[m])
		}
		idx[m] = c
	}
	return idx, nil
}

// buildEncoding dictionary-encodes every dimension of the relation in
// sorted value order and pads each domain to a power of two. BuildCube and
// BuildMultiCube share it, so a scalar cube and a measure-vector cube built
// from the same table always agree on coordinates.
func buildEncoding(t *Table) *Encoding {
	d := len(t.Schema().Dimensions)
	enc := &Encoding{
		Dimensions: append([]string(nil), t.Schema().Dimensions...),
		Dicts:      make([]*Dictionary, d),
		Shape:      make([]int, d),
	}
	for m := 0; m < d; m++ {
		dict := NewDictionary()
		for _, v := range t.DistinctValues(m) {
			dict.Encode(v)
		}
		enc.Dicts[m] = dict
		enc.Shape[m] = dict.PaddedLen()
	}
	return enc
}

// BuildCube loads the relation into a dense data cube. Each dimension's
// values are dictionary-encoded in sorted order (so cube coordinates are
// deterministic for a given table) and padded to a power of two; tuples
// mapping to the same cell are SUM-aggregated. It returns the cube and the
// encoding needed to interpret its coordinates.
func BuildCube(t *Table) (*ndarray.Array, *Encoding, error) {
	enc := buildEncoding(t)
	cube := ndarray.New(enc.Shape...)
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		idx, err := enc.Index(row.Values)
		if err != nil {
			return nil, nil, err
		}
		cube.Add(row.Measure, idx...)
	}
	return cube, enc, nil
}

// BuildMultiCube loads the relation into a width-3 measure-vector cube
// carrying the Gray et al. algebraic components per cell: [sum, sum of
// squares, count]. Every distributive/algebraic aggregate the engine serves
// (SUM, COUNT, AVG, VAR, STDDEV) finalises from these three planes. Tuples
// are accumulated in row order with the same encoding as BuildCube, so the
// sum plane is bit-identical to the scalar cube BuildCube produces and the
// count plane is bit-identical to the scalar cube of the "1 per tuple"
// count table.
func BuildMultiCube(t *Table) (*ndarray.MultiArray, *Encoding, error) {
	enc := buildEncoding(t)
	cube := ndarray.NewMulti(3, enc.Shape...)
	var vec [3]float64
	for i := 0; i < t.Len(); i++ {
		row := t.Row(i)
		idx, err := enc.Index(row.Values)
		if err != nil {
			return nil, nil, err
		}
		vec[0] = row.Measure
		vec[1] = row.Measure * row.Measure
		vec[2] = 1
		cube.AddVec(vec[:], idx...)
	}
	return cube, enc, nil
}

// ViewGroups converts a materialised aggregated view array back into
// relational GROUP-BY form: a map from the group key (the values of the
// non-aggregated dimensions, in dimension order) to the summed measure.
// aggregated[m] reports whether dimension m was totally aggregated.
// Padding cells (codes beyond the dictionary) are skipped; they are always
// zero for views built from relations.
func (e *Encoding) ViewGroups(view *ndarray.Array, aggregated []bool) (map[string]float64, error) {
	if len(aggregated) != len(e.Dicts) {
		return nil, fmt.Errorf("relation: aggregated mask rank %d, want %d", len(aggregated), len(e.Dicts))
	}
	for m := range aggregated {
		want := 1
		if !aggregated[m] {
			want = e.Shape[m]
		}
		if view.Dim(m) != want {
			return nil, fmt.Errorf("relation: view extent %d on dimension %d, want %d", view.Dim(m), m, want)
		}
	}
	out := make(map[string]float64)
	var bad error
	view.Each(func(idx []int, v float64) {
		if bad != nil {
			return
		}
		var parts []string
		for m, i := range idx {
			if aggregated[m] {
				continue
			}
			val, ok := e.Dicts[m].Value(i)
			if !ok {
				// Padding cell: must be empty.
				if v != 0 {
					bad = fmt.Errorf("relation: nonzero padding cell at %v", idx)
				}
				return
			}
			parts = append(parts, val)
		}
		out[GroupKey(parts...)] += v
	})
	if bad != nil {
		return nil, bad
	}
	// Sorting determinism is provided by the caller iterating keys; nothing
	// further to do here.
	return out, nil
}

// ViewGroupsVec is the measure-vector counterpart of ViewGroups: one pass
// over the group space of an aggregated vector view, invoking fn with each
// group's key and its full component vector. vec is reused between calls —
// copy it if it must outlive fn. Building the keys once for all components
// (instead of once per component plane) is what keeps multi-component
// finalisers at the allocation profile of a single scalar GROUP BY.
func (e *Encoding) ViewGroupsVec(view *ndarray.MultiArray, aggregated []bool, fn func(key string, vec []float64)) error {
	if len(aggregated) != len(e.Dicts) {
		return fmt.Errorf("relation: aggregated mask rank %d, want %d", len(aggregated), len(e.Dicts))
	}
	for m := range aggregated {
		want := 1
		if !aggregated[m] {
			want = e.Shape[m]
		}
		if view.Dim(m) != want {
			return fmt.Errorf("relation: view extent %d on dimension %d, want %d", view.Dim(m), m, want)
		}
	}
	var (
		bad   error
		comp0 = view.Component(0)
		width = view.Width()
		cells = view.Cells()
		data  = view.Data()
		vec   = make([]float64, width)
		parts = make([]string, 0, len(e.Dicts))
	)
	comp0.Each(func(idx []int, _ float64) {
		if bad != nil {
			return
		}
		off := comp0.Offset(idx)
		parts = parts[:0]
		for m, i := range idx {
			if aggregated[m] {
				continue
			}
			val, ok := e.Dicts[m].Value(i)
			if !ok {
				// Padding cell: every component must be empty.
				for c := 0; c < width; c++ {
					if data[c*cells+off] != 0 {
						bad = fmt.Errorf("relation: nonzero padding cell at %v", idx)
					}
				}
				return
			}
			parts = append(parts, val)
		}
		for c := 0; c < width; c++ {
			vec[c] = data[c*cells+off]
		}
		fn(GroupKey(parts...), vec)
	})
	return bad
}

// SortedKeys returns a group map's keys in sorted order, for deterministic
// output in examples and tools.
func SortedKeys(groups map[string]float64) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
