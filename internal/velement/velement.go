// Package velement models the view element graph of §4 of Smith et al.
// (PODS 1998) for a concrete data-cube shape.
//
// A Space binds the abstract frequency-plane geometry of package freq to a
// cube whose dimension m has extent n_m = 2^k_m: it knows each dimension's
// maximum decomposition depth, the data-cell volume of every element, the
// classification of elements into aggregated views / intermediate /
// residual (Definitions 1–4), the closed-form element counts of Eq. 17–20
// (Table 1), and a mixed-radix linearisation that lets selection algorithms
// memoise over the whole graph with flat arrays.
package velement

import (
	"fmt"
	"math/bits"

	"viewcube/internal/freq"
)

// Space is the view element graph geometry for one cube shape. It is
// immutable and safe for concurrent use.
type Space struct {
	shape  []int // n_m, each a power of two
	depths []int // k_m = log2 n_m
	nodes  []int // per-dimension frequency-tree node count, 2·n_m − 1
	volume int   // Π n_m, the cube's cell count
	total  int   // N_ve = Π (2·n_m − 1), may be large but fits int here
}

// NewSpace returns the view element space for a cube with the given shape.
// Every extent must be a power of two (the paper's standing assumption
// n_m = 2^k_m).
func NewSpace(shape []int) (*Space, error) {
	if len(shape) == 0 {
		return nil, fmt.Errorf("velement: empty shape")
	}
	s := &Space{
		shape:  append([]int(nil), shape...),
		depths: make([]int, len(shape)),
		nodes:  make([]int, len(shape)),
		volume: 1,
		total:  1,
	}
	for m, n := range shape {
		if n <= 0 || n&(n-1) != 0 {
			return nil, fmt.Errorf("velement: dimension %d extent %d is not a power of two", m, n)
		}
		s.depths[m] = bits.Len(uint(n)) - 1
		s.nodes[m] = 2*n - 1
		s.volume *= n
		s.total *= s.nodes[m]
	}
	return s, nil
}

// MustSpace is NewSpace for shapes known to be valid at compile time.
func MustSpace(shape ...int) *Space {
	s, err := NewSpace(shape)
	if err != nil {
		panic(err)
	}
	return s
}

// Rank returns the cube dimensionality d.
func (s *Space) Rank() int { return len(s.shape) }

// Shape returns a copy of the cube extents.
func (s *Space) Shape() []int { return append([]int(nil), s.shape...) }

// Dim returns the extent n_m of dimension m.
func (s *Space) Dim(m int) int { return s.shape[m] }

// MaxDepth returns k_m = log2 n_m, the depth at which dimension m's
// frequency intervals reach single cells.
func (s *Space) MaxDepth(m int) int { return s.depths[m] }

// MaxDepths returns a copy of all per-dimension maximum depths.
func (s *Space) MaxDepths() []int { return append([]int(nil), s.depths...) }

// CubeVolume returns the cube's cell count Vol(A) = Π n_m.
func (s *Space) CubeVolume() int { return s.volume }

// Root returns the rectangle of the undecomposed data cube A.
func (s *Space) Root() freq.Rect { return freq.NewRect(len(s.shape)) }

// Valid reports whether r identifies a view element of this space: correct
// rank and every per-dimension node within that dimension's depth bound.
func (s *Space) Valid(r freq.Rect) bool {
	if len(r) != len(s.shape) {
		return false
	}
	for m, n := range r {
		if n == 0 || n.Depth() > s.depths[m] {
			return false
		}
	}
	return true
}

// Volume returns the data-cell volume of the view element: Π n_m / 2^depth.
// Each partial or residual stage halves the extent of its dimension
// (non-expansiveness, Eq. 12).
func (s *Space) Volume(r freq.Rect) int {
	v := 1
	for m, n := range r {
		v *= s.shape[m] >> n.Depth()
	}
	return v
}

// ElementShape returns the array shape of the materialised view element.
func (s *Space) ElementShape(r freq.Rect) []int {
	out := make([]int, len(r))
	for m, n := range r {
		out[m] = s.shape[m] >> n.Depth()
	}
	return out
}

// CanSplit reports whether the element can be decomposed further along
// dimension m (its interval has not yet reached single-cell depth).
func (s *Space) CanSplit(r freq.Rect, m int) bool {
	return r[m].Depth() < s.depths[m]
}

// Children returns the partial and residual children of r along dimension
// m, and ok=false if the element cannot be split on m.
func (s *Space) Children(r freq.Rect, m int) (p, res freq.Rect, ok bool) {
	if !s.CanSplit(r, m) {
		return nil, nil, false
	}
	return r.Child(m, false), r.Child(m, true), true
}

// IsAggregatedView reports whether the element is one of the 2^d classical
// aggregated views (Definition 1): per dimension either no aggregation
// (root interval) or total aggregation (the all-partial leaf).
func (s *Space) IsAggregatedView(r freq.Rect) bool {
	for m, n := range r {
		if n != freq.Root && n != freq.Node(s.shape[m]) {
			return false
		}
	}
	return true
}

// IsIntermediate reports whether the element is an intermediate view
// element (Definition 4): produced by partial aggregations only, i.e.
// every per-dimension node lies on the all-partial path.
func (s *Space) IsIntermediate(r freq.Rect) bool {
	for _, n := range r {
		if !n.OnPartialPath() {
			return false
		}
	}
	return true
}

// IsResidual reports whether the element is a residual view element
// (Definition 3): some stage of its generation used a residual aggregation.
func (s *Space) IsResidual(r freq.Rect) bool { return !s.IsIntermediate(r) }

// Counts holds the closed-form view element graph sizes of Eq. 17–20.
type Counts struct {
	Elements     int // N_ve = Π (2·n_m − 1), Eq. 17
	Aggregated   int // N_av = 2^d, Eq. 18
	Intermediate int // N_iv = Π (log2 n_m + 1), Eq. 19
	Residual     int // N_rv = N_ve − N_iv, Eq. 20
	Blocks       int // N_b = Π (log2 n_m + 1), §4.1 (equal to N_iv)
}

// Count returns the element counts for this space (reproduces Table 1).
func (s *Space) Count() Counts {
	c := Counts{Elements: s.total, Aggregated: 1 << len(s.shape), Intermediate: 1, Blocks: 1}
	for _, k := range s.depths {
		c.Intermediate *= k + 1
		c.Blocks *= k + 1
	}
	c.Residual = c.Elements - c.Intermediate
	return c
}

// NumElements returns N_ve for this space.
func (s *Space) NumElements() int { return s.total }

// LinearIndex maps a view element to a unique integer in [0, NumElements())
// via mixed-radix positional encoding of its per-dimension node indices.
// Selection algorithms use it to memoise over the whole graph with flat
// arrays (923,521 entries for the paper's Experiment 1 cube).
func (s *Space) LinearIndex(r freq.Rect) int {
	idx := 0
	for m, n := range r {
		idx = idx*s.nodes[m] + int(n) - 1
	}
	return idx
}

// FromLinear inverts LinearIndex.
func (s *Space) FromLinear(idx int) freq.Rect {
	r := make(freq.Rect, len(s.shape))
	for m := len(s.shape) - 1; m >= 0; m-- {
		r[m] = freq.Node(idx%s.nodes[m] + 1)
		idx /= s.nodes[m]
	}
	return r
}

// Elements calls fn for every view element of the space in linear-index
// order, stopping early if fn returns false. The rectangle passed to fn is
// reused between calls; fn must clone it to retain it.
func (s *Space) Elements(fn func(r freq.Rect) bool) {
	r := make(freq.Rect, len(s.shape))
	for m := range r {
		r[m] = 1
	}
	for {
		if !fn(r) {
			return
		}
		// Mixed-radix increment over node values 1..nodes[m].
		m := len(r) - 1
		for ; m >= 0; m-- {
			if int(r[m]) < s.nodes[m] {
				r[m]++
				break
			}
			r[m] = 1
		}
		if m < 0 {
			return
		}
	}
}

// AggregatedViews returns all 2^d aggregated views, ordered by the bitmask
// of totally aggregated dimensions (bit m set ⇒ dimension m aggregated).
// Index 0 is the data cube itself; index 2^d−1 is the grand total.
func (s *Space) AggregatedViews() []freq.Rect {
	d := len(s.shape)
	out := make([]freq.Rect, 1<<d)
	for mask := 0; mask < 1<<d; mask++ {
		out[mask] = s.ViewForMask(uint(mask))
	}
	return out
}

// ViewForMask returns the aggregated view that totally aggregates exactly
// the dimensions whose bit is set in mask.
func (s *Space) ViewForMask(mask uint) freq.Rect {
	r := make(freq.Rect, len(s.shape))
	for m := range r {
		if mask&(1<<uint(m)) != 0 {
			r[m] = freq.Node(s.shape[m]) // all-partial leaf: total aggregation
		} else {
			r[m] = freq.Root
		}
	}
	return r
}

// SetVolume returns the summed data-cell volume of a set of elements. The
// relative storage cost of §7.2.2 is SetVolume / CubeVolume.
func (s *Space) SetVolume(set []freq.Rect) int {
	v := 0
	for _, r := range set {
		v += s.Volume(r)
	}
	return v
}

// ExtractBasis implements Procedure 2: starting from the root element,
// choose(r) either names a dimension to split (0 ≤ m < d, must be
// splittable) or returns −1 to terminate at r. The marked terminal
// elements form a non-redundant view element basis by construction.
// ExtractBasis panics if choose names an unsplittable dimension, since that
// is a defect in the chooser, not in the data.
func (s *Space) ExtractBasis(choose func(r freq.Rect) int) []freq.Rect {
	var out []freq.Rect
	var walk func(r freq.Rect)
	walk = func(r freq.Rect) {
		m := choose(r)
		if m < 0 {
			out = append(out, r)
			return
		}
		p, res, ok := s.Children(r, m)
		if !ok {
			panic(fmt.Sprintf("velement: chooser split unsplittable dimension %d of %v", m, r))
		}
		walk(p)
		walk(res)
	}
	walk(s.Root())
	return out
}
