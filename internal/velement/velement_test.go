package velement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/freq"
)

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(nil); err == nil {
		t.Fatal("want error for empty shape")
	}
	if _, err := NewSpace([]int{4, 6}); err == nil {
		t.Fatal("want error for non-power-of-two extent")
	}
	if _, err := NewSpace([]int{4, 0}); err == nil {
		t.Fatal("want error for zero extent")
	}
	s, err := NewSpace([]int{8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 2 || s.Dim(0) != 8 || s.MaxDepth(0) != 3 || s.MaxDepth(1) != 2 {
		t.Fatal("space geometry wrong")
	}
	if s.CubeVolume() != 32 {
		t.Fatalf("CubeVolume=%d, want 32", s.CubeVolume())
	}
}

func TestMustSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpace must panic on invalid shape")
		}
	}()
	MustSpace(3)
}

func TestValid(t *testing.T) {
	s := MustSpace(4, 2)
	cases := []struct {
		r    freq.Rect
		want bool
	}{
		{freq.Rect{1, 1}, true},
		{freq.Rect{7, 3}, true},  // depth 2 on dim0 (max 2), depth 1 on dim1 (max 1)
		{freq.Rect{8, 1}, false}, // depth 3 exceeds dim0 max
		{freq.Rect{1, 4}, false}, // depth 2 exceeds dim1 max
		{freq.Rect{0, 1}, false}, // zero node
		{freq.Rect{1}, false},    // rank mismatch
	}
	for _, c := range cases {
		if got := s.Valid(c.r); got != c.want {
			t.Errorf("Valid(%v)=%v, want %v", c.r, got, c.want)
		}
	}
}

func TestVolumeAndShape(t *testing.T) {
	s := MustSpace(8, 4)
	if v := s.Volume(s.Root()); v != 32 {
		t.Fatalf("root volume %d, want 32", v)
	}
	// Depth 2 on dim0, depth 1 on dim1: (8/4)·(4/2) = 4 cells.
	r := freq.Rect{5, 3}
	if v := s.Volume(r); v != 4 {
		t.Fatalf("Volume(%v)=%d, want 4", r, v)
	}
	sh := s.ElementShape(r)
	if sh[0] != 2 || sh[1] != 2 {
		t.Fatalf("ElementShape=%v, want [2 2]", sh)
	}
}

func TestNonExpansivenessOfChildren(t *testing.T) {
	// Property 3 at the graph level: children volumes sum to the parent's.
	s := MustSpace(8, 4)
	r := freq.Rect{2, 1}
	p, res, ok := s.Children(r, 1)
	if !ok {
		t.Fatal("should be splittable")
	}
	if s.Volume(p)+s.Volume(res) != s.Volume(r) {
		t.Fatal("children volumes must sum to parent volume")
	}
}

func TestChildrenAtMaxDepth(t *testing.T) {
	s := MustSpace(2, 2)
	leaf := freq.Rect{2, 3}
	if _, _, ok := s.Children(leaf, 0); ok {
		t.Fatal("single-cell interval must not be splittable")
	}
	if s.CanSplit(leaf, 1) {
		t.Fatal("CanSplit wrong at max depth")
	}
}

func TestClassification(t *testing.T) {
	s := MustSpace(4, 4)
	cases := []struct {
		r                 freq.Rect
		agg, inter, resid bool
	}{
		{freq.Rect{1, 1}, true, true, false},  // the cube A
		{freq.Rect{4, 4}, true, true, false},  // grand total
		{freq.Rect{4, 1}, true, true, false},  // S⁰(A)
		{freq.Rect{2, 1}, false, true, false}, // partial only: intermediate
		{freq.Rect{2, 4}, false, true, false}, // intermediate
		{freq.Rect{3, 1}, false, false, true}, // residual stage used
		{freq.Rect{4, 5}, false, false, true}, // node 5 = PR path: residual
	}
	for _, c := range cases {
		if got := s.IsAggregatedView(c.r); got != c.agg {
			t.Errorf("IsAggregatedView(%v)=%v, want %v", c.r, got, c.agg)
		}
		if got := s.IsIntermediate(c.r); got != c.inter {
			t.Errorf("IsIntermediate(%v)=%v, want %v", c.r, got, c.inter)
		}
		if got := s.IsResidual(c.r); got != c.resid {
			t.Errorf("IsResidual(%v)=%v, want %v", c.r, got, c.resid)
		}
	}
}

// TestCountTable1 reproduces Table 1 of the paper exactly.
func TestCountTable1(t *testing.T) {
	cases := []struct {
		d, n               int
		nav, niv, nrv, nve int
	}{
		{2, 256, 4, 81, 261040, 261121},
		{3, 32, 8, 216, 249831, 250047},
		{4, 16, 16, 625, 922896, 923521},
		{5, 8, 32, 1024, 758351, 759375},
		{8, 4, 256, 6561, 5758240, 5764801},
	}
	for _, c := range cases {
		shape := make([]int, c.d)
		for i := range shape {
			shape[i] = c.n
		}
		got := MustSpace(shape...).Count()
		if got.Aggregated != c.nav || got.Intermediate != c.niv ||
			got.Residual != c.nrv || got.Elements != c.nve {
			t.Errorf("d=%d n=%d: got %+v, want av=%d iv=%d rv=%d ve=%d",
				c.d, c.n, got, c.nav, c.niv, c.nrv, c.nve)
		}
		if got.Blocks != got.Intermediate {
			t.Errorf("d=%d n=%d: blocks %d should equal intermediate count %d",
				c.d, c.n, got.Blocks, got.Intermediate)
		}
	}
}

func TestCountMatchesEnumeration(t *testing.T) {
	s := MustSpace(4, 2, 8)
	want := s.Count()
	var got Counts
	s.Elements(func(r freq.Rect) bool {
		got.Elements++
		if s.IsAggregatedView(r) {
			got.Aggregated++
		}
		if s.IsIntermediate(r) {
			got.Intermediate++
		} else {
			got.Residual++
		}
		return true
	})
	if got.Elements != want.Elements || got.Aggregated != want.Aggregated ||
		got.Intermediate != want.Intermediate || got.Residual != want.Residual {
		t.Fatalf("enumerated %+v, closed form %+v", got, want)
	}
}

func TestLinearIndexRoundTrip(t *testing.T) {
	s := MustSpace(4, 2)
	seen := make(map[int]bool)
	s.Elements(func(r freq.Rect) bool {
		idx := s.LinearIndex(r)
		if idx < 0 || idx >= s.NumElements() {
			t.Fatalf("index %d out of range for %v", idx, r)
		}
		if seen[idx] {
			t.Fatalf("duplicate index %d", idx)
		}
		seen[idx] = true
		if !s.FromLinear(idx).Equal(r) {
			t.Fatalf("FromLinear(LinearIndex(%v)) mismatch", r)
		}
		return true
	})
	if len(seen) != s.NumElements() {
		t.Fatalf("enumerated %d elements, want %d", len(seen), s.NumElements())
	}
}

func TestElementsEarlyStop(t *testing.T) {
	s := MustSpace(4, 4)
	count := 0
	s.Elements(func(r freq.Rect) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d, want 5", count)
	}
}

func TestAggregatedViews(t *testing.T) {
	s := MustSpace(4, 8)
	views := s.AggregatedViews()
	if len(views) != 4 {
		t.Fatalf("%d views, want 4", len(views))
	}
	if !views[0].Equal(s.Root()) {
		t.Fatal("mask 0 must be the cube")
	}
	if !views[3].Equal(freq.Rect{4, 8}) {
		t.Fatalf("mask 3 must be the grand total, got %v", views[3])
	}
	// Volumes: cube 32, S⁰ 8, S¹ 4, grand total 1.
	wantVols := []int{32, 8, 4, 1}
	for i, v := range views {
		if !s.IsAggregatedView(v) {
			t.Errorf("view %d not classified as aggregated", i)
		}
		if s.Volume(v) != wantVols[i] {
			t.Errorf("view %d volume %d, want %d", i, s.Volume(v), wantVols[i])
		}
	}
}

func TestSetVolume(t *testing.T) {
	s := MustSpace(2, 2)
	// Pedagogical Table 2: {V1,V5,V6} has storage 4; {V0,V1,V7} has 8.
	v156 := []freq.Rect{{2, 1}, {3, 2}, {3, 3}}
	if got := s.SetVolume(v156); got != 4 {
		t.Fatalf("SetVolume{V1,V5,V6}=%d, want 4", got)
	}
	v017 := []freq.Rect{{1, 1}, {2, 1}, {1, 2}}
	if got := s.SetVolume(v017); got != 8 {
		t.Fatalf("SetVolume{V0,V1,V7}=%d, want 8", got)
	}
}

func TestExtractBasisAlwaysNonRedundantBasis(t *testing.T) {
	f := func(seed int64) bool {
		s := MustSpace(4, 4)
		rng := rand.New(rand.NewSource(seed))
		basis := RandomPacketBasis(s, rng, 0.3)
		return freq.IsNonRedundantBasis(basis, s.Root(), s.MaxDepths())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestExtractBasisPanicsOnBadChooser(t *testing.T) {
	s := MustSpace(2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for chooser that splits past max depth")
		}
	}()
	s.ExtractBasis(func(r freq.Rect) int { return 0 }) // always split
}

func TestWaveletBasis(t *testing.T) {
	s := MustSpace(4, 4)
	basis := WaveletBasis(s)
	if !freq.IsNonRedundantBasis(basis, s.Root(), s.MaxDepths()) {
		t.Fatal("wavelet basis must be a non-redundant basis")
	}
	if got := s.SetVolume(basis); got != s.CubeVolume() {
		t.Fatalf("wavelet basis volume %d, want n^d = %d", got, s.CubeVolume())
	}
	// 2-D, two levels: 3 subbands per level + final total = 7 elements.
	if len(basis) != 7 {
		t.Fatalf("wavelet basis size %d, want 7", len(basis))
	}
	// Exactly one element (the grand total) is intermediate; the rest are
	// residual (§4.3).
	inter := 0
	for _, r := range basis {
		if s.IsIntermediate(r) {
			inter++
			if !r.Equal(freq.Rect{4, 4}) {
				t.Fatalf("intermediate element %v, want grand total", r)
			}
		}
	}
	if inter != 1 {
		t.Fatalf("%d intermediate elements, want 1", inter)
	}
}

func TestWaveletBasisRectangularCube(t *testing.T) {
	s := MustSpace(8, 2)
	basis := WaveletBasis(s)
	if !freq.IsNonRedundantBasis(basis, s.Root(), s.MaxDepths()) {
		t.Fatal("wavelet basis of a rectangular cube must still tile")
	}
	if got := s.SetVolume(basis); got != s.CubeVolume() {
		t.Fatalf("volume %d, want %d", got, s.CubeVolume())
	}
}

func TestGaussianPyramid(t *testing.T) {
	s := MustSpace(4, 4)
	pyr := GaussianPyramid(s)
	// Levels 0,1,2: volumes 16, 4, 1.
	if len(pyr) != 3 {
		t.Fatalf("pyramid size %d, want 3", len(pyr))
	}
	if s.SetVolume(pyr) != 21 {
		t.Fatalf("pyramid volume %d, want 21", s.SetVolume(pyr))
	}
	for i, r := range pyr {
		if !s.IsIntermediate(r) {
			t.Errorf("pyramid level %d (%v) must be intermediate", i, r)
		}
	}
	if !pyr[0].Equal(s.Root()) || !pyr[2].Equal(freq.Rect{4, 4}) {
		t.Fatal("pyramid must run from cube to grand total")
	}
	// Redundant: the cube alone is already complete, so the set is a basis
	// but not non-redundant.
	if freq.NonRedundant(pyr) {
		t.Fatal("Gaussian pyramid is redundant")
	}
	if !freq.Complete(pyr, s.Root(), s.MaxDepths()) {
		t.Fatal("Gaussian pyramid is complete")
	}
}

func TestViewHierarchy(t *testing.T) {
	s := MustSpace(4, 4)
	vh := ViewHierarchy(s)
	if len(vh) != 4 {
		t.Fatalf("view hierarchy size %d, want 2^d = 4", len(vh))
	}
	// Volume (n+1)^d = 25 for n=4, d=2.
	if s.SetVolume(vh) != 25 {
		t.Fatalf("view hierarchy volume %d, want 25", s.SetVolume(vh))
	}
	if freq.NonRedundant(vh) {
		t.Fatal("view hierarchy is redundant")
	}
}

// Property: any element's volume equals the cube volume times its
// frequency-plane volume (the two geometries agree).
func TestVolumeConsistencyProperty(t *testing.T) {
	s := MustSpace(8, 4, 2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := rng.Intn(s.NumElements())
		r := s.FromLinear(idx)
		return float64(s.Volume(r)) == float64(s.CubeVolume())*r.FreqVolume()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
