package core

import (
	"fmt"
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// This file implements Algorithm 2: greedy selection of redundant view
// elements under a target storage cost. Starting from an initial set
// (normally the Algorithm 1 basis), each stage probes every candidate
// element that still fits in the storage budget, keeps the one yielding the
// largest reduction of the Procedure 3 total processing cost, and repeats
// until the budget is exhausted or no candidate helps. The same routine
// with the 2^d aggregated views as candidates and {A} as the initial set
// reproduces the HRU-style greedy *view* materialisation the paper uses as
// its comparison method [D] in Experiment 2.

// GreedyStep records the state after one greedy addition.
type GreedyStep struct {
	Added   freq.Rect // the element selected at this stage
	Storage int       // total selected volume after the addition
	Cost    float64   // Procedure 3 total processing cost after the addition
}

// GreedyResult is the trajectory of Algorithm 2.
type GreedyResult struct {
	Initial        []freq.Rect // the starting set (e.g. the Algorithm 1 basis)
	InitialStorage int
	InitialCost    float64
	Steps          []GreedyStep
	Final          []freq.Rect // initial set plus all additions
}

// Frontier returns the (storage, cost) curve including the initial point —
// the series plotted in Figure 9.
func (g *GreedyResult) Frontier() (storage []int, cost []float64) {
	storage = append(storage, g.InitialStorage)
	cost = append(cost, g.InitialCost)
	for _, st := range g.Steps {
		storage = append(storage, st.Storage)
		cost = append(cost, st.Cost)
	}
	return storage, cost
}

// GreedyRedundant runs Algorithm 2. initial is the already-selected set
// (must be able to answer every query, i.e. complete with respect to each
// query rectangle); candidates is the pool of elements considered for
// addition; targetStorage is S_T, the maximum total selected volume in
// cells. Candidates already selected, or not fitting the remaining budget,
// are skipped. The loop ends when the budget is reached or no candidate
// strictly reduces the total processing cost.
func GreedyRedundant(s *velement.Space, initial, candidates []freq.Rect, queries []Query, targetStorage int) (*GreedyResult, error) {
	return greedy(s, initial, candidates, queries, targetStorage, false)
}

// GreedyRedundantPruned is the §7.2.2 variant of Algorithm 2 that, after
// each addition, removes selected elements made obsolete by it (removals
// that do not increase the total processing cost). With the 2^d aggregated
// views as candidates this is the configuration for which the paper argues
// the element method's storage/processing frontier dominates greedy view
// materialisation at every target storage cost.
func GreedyRedundantPruned(s *velement.Space, initial, candidates []freq.Rect, queries []Query, targetStorage int) (*GreedyResult, error) {
	return greedy(s, initial, candidates, queries, targetStorage, true)
}

func greedy(s *velement.Space, initial, candidates []freq.Rect, queries []Query, targetStorage int, prune bool) (*GreedyResult, error) {
	if err := ValidateQueries(s, queries); err != nil {
		return nil, err
	}
	for _, r := range initial {
		if !s.Valid(r) {
			return nil, fmt.Errorf("core: initial element %v is not a view element of the space", r)
		}
	}
	for _, r := range candidates {
		if !s.Valid(r) {
			return nil, fmt.Errorf("core: candidate element %v is not a view element of the space", r)
		}
	}
	ev := NewSetEvaluator(s, initial)
	res := &GreedyResult{
		Initial:        ev.Selected(),
		InitialStorage: ev.Storage(),
		InitialCost:    ev.TotalCost(queries),
	}
	if math.IsInf(res.InitialCost, 1) {
		return nil, fmt.Errorf("core: initial set cannot answer the query population (incomplete)")
	}

	// pool holds candidates not yet selected.
	pool := make([]freq.Rect, 0, len(candidates))
	seen := make(map[freq.Key]bool)
	for _, c := range candidates {
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		pool = append(pool, c)
	}

	cur := res.InitialCost
	for {
		storage := ev.Storage()
		if storage >= targetStorage {
			break
		}
		bestIdx := -1
		bestCost := cur
		for i, c := range pool {
			if c == nil {
				continue
			}
			if ev.isSelected[c.Key()] {
				pool[i] = nil
				continue
			}
			if storage+s.Volume(c) > targetStorage {
				continue
			}
			var probed float64
			ev.WithCandidate(c, func() {
				probed = ev.TotalCost(queries)
			})
			if probed < bestCost {
				bestCost = probed
				bestIdx = i
			}
		}
		if bestIdx < 0 {
			break // no candidate fits and strictly helps
		}
		chosen := pool[bestIdx]
		pool[bestIdx] = nil
		ev.Add(chosen)
		if prune {
			kept, _ := PruneObsolete(s, ev.Selected(), queries)
			if len(kept) < len(ev.Selected()) {
				ev = NewSetEvaluator(s, kept)
			}
		}
		cur = ev.TotalCost(queries)
		res.Steps = append(res.Steps, GreedyStep{
			Added:   chosen.Clone(),
			Storage: ev.Storage(),
			Cost:    cur,
		})
	}
	res.Final = ev.Selected()
	return res, nil
}

// AllElements returns every view element of the space — the full candidate
// pool for Algorithm 2 on small spaces. It allocates NumElements rects;
// callers on large spaces should restrict the pool instead.
func AllElements(s *velement.Space) []freq.Rect {
	out := make([]freq.Rect, 0, s.NumElements())
	s.Elements(func(r freq.Rect) bool {
		out = append(out, r.Clone())
		return true
	})
	return out
}

// GreedyViews runs the paper's comparison method [D] of Experiment 2:
// materialise the data cube, then greedily add whole aggregated views
// (never partial or residual elements) under the same cost model.
func GreedyViews(s *velement.Space, queries []Query, targetStorage int) (*GreedyResult, error) {
	views := s.AggregatedViews()
	return GreedyRedundant(s, []freq.Rect{s.Root()}, views[1:], queries, targetStorage)
}

// PruneObsolete removes selected elements whose removal leaves the total
// processing cost unchanged (the paper's §7.2.2 remark: "add the best view,
// and remove the obsolete view elements"). Two constraints are preserved:
// queries' own rectangles are never pruned while they carry positive
// frequency, and the set always remains a basis of the data cube
// (Definition 8) — the selected set is the stored representation of the
// cube, so it must stay able to reconstruct it. The reduced set and its
// cost are returned; the input slice is not modified.
func PruneObsolete(s *velement.Space, selected []freq.Rect, queries []Query) ([]freq.Rect, float64) {
	set := make([]freq.Rect, len(selected))
	for i, r := range selected {
		set[i] = r.Clone()
	}
	needed := make(map[freq.Key]bool)
	for _, q := range queries {
		if q.Freq > 0 {
			needed[q.Rect.Key()] = true
		}
	}
	root := s.Root()
	maxDepths := s.MaxDepths()
	wasComplete := freq.Complete(set, root, maxDepths)
	cost := TotalProcessingCost(s, set, queries)
	for i := 0; i < len(set); {
		if needed[set[i].Key()] {
			i++
			continue
		}
		trial := make([]freq.Rect, 0, len(set)-1)
		trial = append(trial, set[:i]...)
		trial = append(trial, set[i+1:]...)
		if c := TotalProcessingCost(s, trial, queries); c <= cost &&
			(!wasComplete || freq.Complete(trial, root, maxDepths)) {
			set = trial
			cost = c
			continue // re-test index i, which now holds the next element
		}
		i++
	}
	return set, cost
}
