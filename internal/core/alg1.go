package core

import (
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// This file implements Algorithm 1: minimum-cost non-redundant basis
// selection. The algorithm is a dynamic program over the recursive
// frequency-plane split: for every view element V,
//
//	D(V) = min( C(V), min_m [ D(P₁ᵐ(V)) + D(R₁ᵐ(V)) ] )
//
// where C(V) is the element's support cost (Eq. 29) and m ranges over the
// dimensions on which V can still be decomposed. The optimal basis is
// extracted by replaying the argmin choices from the root (Procedure 2).
// Memoisation is over the mixed-radix linearisation of the element graph,
// so each of the N_ve elements is costed exactly once — O((d+1)·N_ve)
// comparisons, as the paper states.

// stopChoice marks an element at which the DP terminates (the element
// itself joins the basis); unvisited marks a memo slot not yet computed.
const (
	stopChoice int8 = -1
	unvisited  int8 = -2
)

// BasisResult is the outcome of Algorithm 1.
type BasisResult struct {
	Basis []freq.Rect // the selected complete, non-redundant basis
	Cost  float64     // its total processing cost Σ_n C_n (the DP optimum)
}

// maxFlatMemo bounds the flat-array memo size; larger graphs fall back to
// map-based memoisation. 64M float64 + int8 entries ≈ 576 MB, comfortably
// beyond every cube in the paper (Table 1 maxes at 5,764,801 elements).
const maxFlatMemo = 64 << 20

// SelectBasis runs Algorithm 1 and returns the optimal non-redundant view
// element basis for the query population together with its cost.
func SelectBasis(s *velement.Space, queries []Query) (BasisResult, error) {
	if err := ValidateQueries(s, queries); err != nil {
		return BasisResult{}, err
	}
	sel := newSelector(s, queries)
	cost := sel.solve(s.Root())
	basis := s.ExtractBasis(func(r freq.Rect) int { return sel.choice(r) })
	return BasisResult{Basis: basis, Cost: cost}, nil
}

// selector carries the DP state. It memoises D(V) and the argmin choice per
// element, in flat arrays when the graph fits and in maps otherwise.
type selector struct {
	s       *velement.Space
	queries []Query

	flat       bool
	flatCost   []float64
	flatChoice []int8
	mapCost    map[freq.Key]float64
	mapChoice  map[freq.Key]int8
}

func newSelector(s *velement.Space, queries []Query) *selector {
	sel := &selector{s: s, queries: queries}
	if n := s.NumElements(); n <= maxFlatMemo {
		sel.flat = true
		sel.flatCost = make([]float64, n)
		sel.flatChoice = make([]int8, n)
		for i := range sel.flatChoice {
			sel.flatChoice[i] = unvisited
		}
	} else {
		sel.mapCost = make(map[freq.Key]float64)
		sel.mapChoice = make(map[freq.Key]int8)
	}
	return sel
}

func (sel *selector) load(r freq.Rect) (float64, int8, bool) {
	if sel.flat {
		i := sel.s.LinearIndex(r)
		if sel.flatChoice[i] == unvisited {
			return 0, 0, false
		}
		return sel.flatCost[i], sel.flatChoice[i], true
	}
	k := r.Key()
	ch, ok := sel.mapChoice[k]
	if !ok {
		return 0, 0, false
	}
	return sel.mapCost[k], ch, true
}

func (sel *selector) store(r freq.Rect, cost float64, ch int8) {
	if sel.flat {
		i := sel.s.LinearIndex(r)
		sel.flatCost[i] = cost
		sel.flatChoice[i] = ch
		return
	}
	k := r.Key()
	sel.mapCost[k] = cost
	sel.mapChoice[k] = ch
}

// solve computes D(r) with memoisation.
func (sel *selector) solve(r freq.Rect) float64 {
	if cost, _, ok := sel.load(r); ok {
		return cost
	}
	best := elementSupportCostFast(sel.s, r, sel.queries)
	choice := stopChoice
	for m := 0; m < sel.s.Rank(); m++ {
		p, res, ok := sel.s.Children(r, m)
		if !ok {
			continue
		}
		// Step 4 of Algorithm 1: stop as soon as the element's own support
		// cost does not exceed the best split — but to find the global
		// optimum we still compare against every dimension's split cost.
		if t := sel.solve(p) + sel.solve(res); t < best {
			best = t
			choice = int8(m)
		}
	}
	sel.store(r, best, choice)
	return best
}

// choice returns the recorded argmin decision for extraction: the dimension
// to split, or −1 to terminate (element joins the basis).
func (sel *selector) choice(r freq.Rect) int {
	_, ch, ok := sel.load(r)
	if !ok {
		// Extraction only walks elements the DP visited; reaching an
		// unvisited element indicates a bug in the DP itself.
		panic("core: basis extraction reached an element the DP never visited")
	}
	return int(ch)
}

// elementSupportCostFast is ElementSupportCost with the intersection test
// inlined and no allocation: the hot inner loop of the DP visits every
// element of the graph once per query.
func elementSupportCostFast(s *velement.Space, r freq.Rect, queries []Query) float64 {
	total := 0.0
	volR := s.Volume(r)
	for qi := range queries {
		q := &queries[qi]
		if q.Freq == 0 {
			continue
		}
		// Intersection volume: per dimension the deeper of the two nodes if
		// nested, else the rectangles are disjoint and the cost is zero.
		vl := 1
		disjoint := false
		for m, a := range r {
			b := q.Rect[m]
			deeper, ok := freq.Nested(a, b)
			if !ok {
				disjoint = true
				break
			}
			vl *= s.Dim(m) >> deeper.Depth()
		}
		if disjoint {
			continue
		}
		total += q.Freq * float64(volR+s.Volume(q.Rect)-2*vl)
	}
	return total
}

// ExhaustiveBestBasis finds the optimal non-redundant basis by brute-force
// enumeration of every complete non-redundant tiling. It is exponential and
// exists only to validate Algorithm 1 on tiny spaces in tests and ablation
// benchmarks.
func ExhaustiveBestBasis(s *velement.Space, queries []Query) (BasisResult, error) {
	if err := ValidateQueries(s, queries); err != nil {
		return BasisResult{}, err
	}
	best := BasisResult{Cost: math.Inf(1)}
	var enumerate func(pending []freq.Rect, chosen []freq.Rect, cost float64)
	enumerate = func(pending, chosen []freq.Rect, cost float64) {
		if cost >= best.Cost {
			return
		}
		if len(pending) == 0 {
			best = BasisResult{Basis: append([]freq.Rect(nil), chosen...), Cost: cost}
			return
		}
		r := pending[len(pending)-1]
		rest := pending[:len(pending)-1]
		// Option 1: keep r in the basis.
		enumerate(rest, append(chosen, r), cost+ElementSupportCost(s, r, queries))
		// Option 2: split r on each splittable dimension.
		for m := 0; m < s.Rank(); m++ {
			p, res, ok := s.Children(r, m)
			if !ok {
				continue
			}
			enumerate(append(append(append([]freq.Rect(nil), rest...), p), res), chosen, cost)
		}
	}
	enumerate([]freq.Rect{s.Root()}, nil, 0)
	return best, nil
}
