package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// The pedagogical example of §7.1 (Figure 7 / Table 2) is a 2-D data cube
// with extent 2 per dimension: nine view elements. Node mapping (validated
// in DESIGN.md against every Table 2 row):
//
//	V0=A={1,1}  V1=P⁰={2,1}  V4=R⁰={3,1}  V7=P¹={1,2}  V8=R¹={1,3}
//	V2=P⁰P¹={2,2} (the total aggregation)  V5=R⁰P¹={3,2}
//	V3=P⁰R¹={2,3}  V6=R⁰R¹={3,3}
var ped = map[string]freq.Rect{
	"V0": {1, 1}, "V1": {2, 1}, "V2": {2, 2}, "V3": {2, 3}, "V4": {3, 1},
	"V5": {3, 2}, "V6": {3, 3}, "V7": {1, 2}, "V8": {1, 3},
}

func pedSpace(t *testing.T) *velement.Space {
	t.Helper()
	return velement.MustSpace(2, 2)
}

func pedQueries() []Query {
	return []Query{
		{Rect: ped["V1"], Freq: 0.5},
		{Rect: ped["V7"], Freq: 0.5},
	}
}

func pedSet(names ...string) []freq.Rect {
	out := make([]freq.Rect, len(names))
	for i, n := range names {
		out[i] = ped[n]
	}
	return out
}

// TestTable2 reproduces every row of Table 2: processing cost (Procedure 3,
// unweighted sum as the paper tabulates), storage cost, basis flag
// (Procedure 1 completeness) and redundancy flag (frequency-plane overlap).
func TestTable2(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	rows := []struct {
		names            []string
		cost             float64
		storage          int
		basis, redundant bool
	}{
		{[]string{"V3", "V6", "V7"}, 3, 4, true, false},
		{[]string{"V1", "V5", "V6"}, 3, 4, true, false},
		{[]string{"V0"}, 4, 4, true, false},
		{[]string{"V1", "V4"}, 4, 4, true, false},
		{[]string{"V7", "V8"}, 4, 4, true, false},
		{[]string{"V2", "V3", "V5", "V6"}, 4, 4, true, false},
		{[]string{"V0", "V1", "V7"}, 0, 8, true, true},
		{[]string{"V1", "V7"}, 0, 4, false, true},
		{[]string{"V3", "V7"}, 3, 3, false, false},
		{[]string{"V2", "V3", "V5"}, 4, 3, false, false},
	}
	for _, row := range rows {
		set := pedSet(row.names...)
		ev := NewSetEvaluator(s, set)
		if got := ev.UnweightedTotalCost(queries); got != row.cost {
			t.Errorf("%v: processing cost %g, want %g", row.names, got, row.cost)
		}
		if got := s.SetVolume(set); got != row.storage {
			t.Errorf("%v: storage %d, want %d", row.names, got, row.storage)
		}
		if got := freq.Complete(set, s.Root(), s.MaxDepths()); got != row.basis {
			t.Errorf("%v: basis=%v, want %v", row.names, got, row.basis)
		}
		if got := !freq.NonRedundant(set); got != row.redundant {
			t.Errorf("%v: redundant=%v, want %v", row.names, got, row.redundant)
		}
	}
}

// For non-redundant bases the additive Eq. 29 model and the operational
// Procedure 3 model agree on all Table 2 rows.
func TestTable2ModelsAgreeOnBases(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	for _, names := range [][]string{
		{"V3", "V6", "V7"}, {"V1", "V5", "V6"}, {"V0"},
		{"V1", "V4"}, {"V7", "V8"}, {"V2", "V3", "V5", "V6"},
	} {
		set := pedSet(names...)
		eq29 := BasisCost(s, set, queries)
		proc3 := NewSetEvaluator(s, set).TotalCost(queries)
		if math.Abs(eq29-proc3) > 1e-12 {
			t.Errorf("%v: Eq29=%g Procedure3=%g", names, eq29, proc3)
		}
	}
}

func TestSupportCost(t *testing.T) {
	s := pedSpace(t)
	// Disjoint elements cost nothing.
	if c := SupportCost(s, ped["V3"], ped["V7"]); c != 0 {
		t.Fatalf("disjoint cost %d, want 0", c)
	}
	// An element supports itself for free.
	if c := SupportCost(s, ped["V1"], ped["V1"]); c != 0 {
		t.Fatalf("self cost %d, want 0", c)
	}
	// V0 → V1: aggregate the cube down to the view: 4−2 = 2.
	if c := SupportCost(s, ped["V0"], ped["V1"]); c != 2 {
		t.Fatalf("V0→V1 cost %d, want 2", c)
	}
	// V1 and V7 intersect in the total aggregation (volume 1): 1+1 = 2.
	if c := SupportCost(s, ped["V1"], ped["V7"]); c != 2 {
		t.Fatalf("V1↔V7 cost %d, want 2", c)
	}
	// Symmetry.
	if SupportCost(s, ped["V1"], ped["V7"]) != SupportCost(s, ped["V7"], ped["V1"]) {
		t.Fatal("SupportCost must be symmetric")
	}
}

func TestElementSupportCostMatchesFastPath(t *testing.T) {
	s := velement.MustSpace(4, 4)
	rng := rand.New(rand.NewSource(3))
	queries := randomViewQueries(s, rng)
	s.Elements(func(r freq.Rect) bool {
		slow := ElementSupportCost(s, r, queries)
		fast := elementSupportCostFast(s, r, queries)
		if math.Abs(slow-fast) > 1e-9 {
			t.Fatalf("%v: slow %g fast %g", r, slow, fast)
		}
		return true
	})
}

func TestNormalizeFrequencies(t *testing.T) {
	qs := []Query{{Freq: 2}, {Freq: 6}}
	NormalizeFrequencies(qs)
	if qs[0].Freq != 0.25 || qs[1].Freq != 0.75 {
		t.Fatalf("normalised to %v", qs)
	}
	zero := []Query{{Freq: 0}}
	NormalizeFrequencies(zero) // must not divide by zero
	if zero[0].Freq != 0 {
		t.Fatal("zero-total population must be untouched")
	}
}

func TestValidateQueries(t *testing.T) {
	s := pedSpace(t)
	if err := ValidateQueries(s, nil); err == nil {
		t.Fatal("want error for empty population")
	}
	if err := ValidateQueries(s, []Query{{Rect: freq.Rect{4, 1}, Freq: 1}}); err == nil {
		t.Fatal("want error for out-of-space rectangle")
	}
	if err := ValidateQueries(s, []Query{{Rect: ped["V1"], Freq: -1}}); err == nil {
		t.Fatal("want error for negative frequency")
	}
	if err := ValidateQueries(s, pedQueries()); err != nil {
		t.Fatal(err)
	}
}

func TestSelectBasisPedagogical(t *testing.T) {
	s := pedSpace(t)
	res, err := SelectBasis(s, pedQueries())
	if err != nil {
		t.Fatal(err)
	}
	// The optimum is 3 unweighted = 1.5 weighted (both optimal bases of
	// Table 2 achieve it).
	if math.Abs(res.Cost-1.5) > 1e-12 {
		t.Fatalf("optimal cost %g, want 1.5", res.Cost)
	}
	if !freq.IsNonRedundantBasis(res.Basis, s.Root(), s.MaxDepths()) {
		t.Fatal("Algorithm 1 must return a non-redundant basis")
	}
	if got := BasisCost(s, res.Basis, pedQueries()); math.Abs(got-res.Cost) > 1e-12 {
		t.Fatalf("reported cost %g does not match recomputed cost %g", res.Cost, got)
	}
}

func TestSelectBasisRejectsBadQueries(t *testing.T) {
	s := pedSpace(t)
	if _, err := SelectBasis(s, nil); err == nil {
		t.Fatal("want error for empty queries")
	}
}

func randomViewQueries(s *velement.Space, rng *rand.Rand) []Query {
	views := s.AggregatedViews()
	queries := make([]Query, len(views))
	for i, v := range views {
		queries[i] = Query{Rect: v, Freq: rng.Float64()}
	}
	NormalizeFrequencies(queries)
	return queries
}

// Algorithm 1 must match brute-force enumeration of all tilings on small
// spaces — the optimality claim of §5.2.
func TestSelectBasisMatchesExhaustive(t *testing.T) {
	shapes := [][]int{{2, 2}, {4, 2}, {2, 2, 2}, {4, 4}}
	for _, shape := range shapes {
		s := velement.MustSpace(shape...)
		for trial := 0; trial < 5; trial++ {
			rng := rand.New(rand.NewSource(int64(trial)*31 + int64(len(shape))))
			queries := randomViewQueries(s, rng)
			dp, err := SelectBasis(s, queries)
			if err != nil {
				t.Fatal(err)
			}
			ex, err := ExhaustiveBestBasis(s, queries)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(dp.Cost-ex.Cost) > 1e-9 {
				t.Fatalf("shape %v trial %d: DP cost %g, exhaustive %g", shape, trial, dp.Cost, ex.Cost)
			}
		}
	}
}

// Guaranteed dominance (§7.2.1): the Algorithm 1 basis never costs more
// than the data cube alone or the wavelet basis, because both lie in its
// search space.
func TestSelectBasisDominatesBaselines(t *testing.T) {
	f := func(seed int64) bool {
		s := velement.MustSpace(4, 4, 4)
		rng := rand.New(rand.NewSource(seed))
		queries := randomViewQueries(s, rng)
		res, err := SelectBasis(s, queries)
		if err != nil {
			return false
		}
		dcube := BasisCost(s, []freq.Rect{s.Root()}, queries)
		wavelet := BasisCost(s, velement.WaveletBasis(s), queries)
		return res.Cost <= dcube+1e-9 && res.Cost <= wavelet+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the basis returned by Algorithm 1 is always complete and
// non-redundant, and its reported cost always equals the recomputed cost.
func TestSelectBasisInvariants(t *testing.T) {
	f := func(seed int64) bool {
		s := velement.MustSpace(4, 2, 4)
		rng := rand.New(rand.NewSource(seed))
		queries := randomViewQueries(s, rng)
		res, err := SelectBasis(s, queries)
		if err != nil {
			return false
		}
		if !freq.IsNonRedundantBasis(res.Basis, s.Root(), s.MaxDepths()) {
			return false
		}
		return math.Abs(BasisCost(s, res.Basis, queries)-res.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSetEvaluatorIncomplete(t *testing.T) {
	s := pedSpace(t)
	// {V3,V7} cannot generate the cube V0.
	ev := NewSetEvaluator(s, pedSet("V3", "V7"))
	if !math.IsInf(ev.ElementCost(ped["V0"]), 1) {
		t.Fatal("incomplete set must report infinite cost for the cube")
	}
	// But it can generate V1 at cost 3 and V6 not at all.
	if got := ev.ElementCost(ped["V1"]); got != 3 {
		t.Fatalf("T(V1)=%g, want 3", got)
	}
	if !math.IsInf(ev.ElementCost(ped["V6"]), 1) {
		t.Fatal("V6 is not generable from {V3,V7}")
	}
}

func TestSetEvaluatorAddAndStorage(t *testing.T) {
	s := pedSpace(t)
	ev := NewSetEvaluator(s, pedSet("V0"))
	if ev.Storage() != 4 {
		t.Fatalf("storage %d, want 4", ev.Storage())
	}
	ev.Add(ped["V1"])
	ev.Add(ped["V1"]) // idempotent
	if ev.Storage() != 6 {
		t.Fatalf("storage %d, want 6", ev.Storage())
	}
	if got := ev.ElementCost(ped["V1"]); got != 0 {
		t.Fatalf("added element should cost 0, got %g", got)
	}
	if len(ev.Selected()) != 2 {
		t.Fatalf("selected %d elements, want 2", len(ev.Selected()))
	}
}

func TestWithCandidateRestores(t *testing.T) {
	s := pedSpace(t)
	ev := NewSetEvaluator(s, pedSet("V0"))
	before := ev.TotalCost(pedQueries())
	var during float64
	ev.WithCandidate(ped["V1"], func() {
		during = ev.TotalCost(pedQueries())
	})
	after := ev.TotalCost(pedQueries())
	if during >= before {
		t.Fatalf("candidate V1 should reduce cost: before %g during %g", before, during)
	}
	if after != before {
		t.Fatalf("WithCandidate must restore state: before %g after %g", before, after)
	}
}

func TestGreedyRedundantPedagogical(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	init, err := SelectBasis(s, queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyRedundant(s, init.Basis, AllElements(s), queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialStorage != 4 {
		t.Fatalf("initial storage %d, want 4 (non-expansive basis)", res.InitialStorage)
	}
	// With budget 8 the greedy must reach zero cost (both queries stored).
	last := res.InitialCost
	for _, st := range res.Steps {
		if st.Cost >= last {
			t.Fatalf("greedy step did not strictly reduce cost: %g → %g", last, st.Cost)
		}
		if st.Storage > 8 {
			t.Fatalf("storage %d exceeds target 8", st.Storage)
		}
		last = st.Cost
	}
	if last != 0 {
		t.Fatalf("final cost %g, want 0", last)
	}
	storage, cost := res.Frontier()
	if len(storage) != len(res.Steps)+1 || len(cost) != len(storage) {
		t.Fatal("Frontier length mismatch")
	}
}

func TestGreedyRedundantRespectsBudget(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	init, _ := SelectBasis(s, queries)
	// Budget equal to the basis volume: no room for anything.
	res, err := GreedyRedundant(s, init.Basis, AllElements(s), queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("no additions should fit, got %d", len(res.Steps))
	}
}

func TestGreedyRedundantIncompleteInitial(t *testing.T) {
	s := pedSpace(t)
	// {V3,V7} cannot answer a query population that includes the cube.
	queries := []Query{{Rect: s.Root(), Freq: 1}}
	if _, err := GreedyRedundant(s, pedSet("V3", "V7"), AllElements(s), queries, 10); err == nil {
		t.Fatal("want error for incomplete initial set")
	}
}

func TestGreedyRedundantValidation(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	bad := []freq.Rect{{8, 1}}
	if _, err := GreedyRedundant(s, bad, nil, queries, 10); err == nil {
		t.Fatal("want error for invalid initial element")
	}
	if _, err := GreedyRedundant(s, pedSet("V0"), bad, queries, 10); err == nil {
		t.Fatal("want error for invalid candidate")
	}
}

func TestGreedyViewsPedagogical(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	res, err := GreedyViews(s, queries, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.InitialStorage != 4 {
		t.Fatalf("view method starts from the cube (storage 4), got %d", res.InitialStorage)
	}
	if res.InitialCost != 2 { // 0.5·2 + 0.5·2
		t.Fatalf("initial cost %g, want 2", res.InitialCost)
	}
	final := res.InitialCost
	if len(res.Steps) > 0 {
		final = res.Steps[len(res.Steps)-1].Cost
	}
	if final != 0 {
		t.Fatalf("with budget 8 the view method reaches 0, got %g", final)
	}
}

// The §7.2.2 endpoint guarantees for plain Algorithm 2: the initial
// non-redundant basis (point a) is never worse than the data cube alone
// (point b), and with a full budget both methods converge to zero
// processing cost (point d).
func TestFrontierEndpoints(t *testing.T) {
	s := velement.MustSpace(4, 4)
	fullBudget := 3 * s.CubeVolume() // comfortably above (n+1)^d
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		queries := randomViewQueries(s, rng)
		init, err := SelectBasis(s, queries)
		if err != nil {
			t.Fatal(err)
		}
		elems, err := GreedyRedundant(s, init.Basis, AllElements(s), queries, fullBudget)
		if err != nil {
			t.Fatal(err)
		}
		views, err := GreedyViews(s, queries, fullBudget)
		if err != nil {
			t.Fatal(err)
		}
		if elems.InitialStorage != s.CubeVolume() {
			t.Fatalf("trial %d: basis storage %d, want %d", trial, elems.InitialStorage, s.CubeVolume())
		}
		if elems.InitialCost > views.InitialCost+1e-9 {
			t.Fatalf("trial %d: point a (%g) worse than point b (%g)", trial, elems.InitialCost, views.InitialCost)
		}
		_, ec := elems.Frontier()
		_, vc := views.Frontier()
		if ec[len(ec)-1] != 0 || vc[len(vc)-1] != 0 {
			t.Fatalf("trial %d: both methods must reach zero cost (got %g, %g)",
				trial, ec[len(ec)-1], vc[len(vc)-1])
		}
	}
}

// properViewQueries draws a random population over the 2^d − 1 proper
// aggregated views (the raw cube itself is not queried — it is the stored
// base relation, and querying it would dominate every tiling-based
// representation; see DESIGN.md §experiment notes).
func properViewQueries(s *velement.Space, rng *rand.Rand) []Query {
	views := s.AggregatedViews()
	queries := make([]Query, 0, len(views)-1)
	for _, v := range views[1:] {
		queries = append(queries, Query{Rect: v, Freq: rng.Float64()})
	}
	NormalizeFrequencies(queries)
	return queries
}

// Experiment 2's headline shape (Figure 9): with proper-view populations
// and completeness-preserving pruning, the element method's frontier
// dominates greedy view materialisation at every storage level the view
// method visits.
func TestPrunedElementFrontierDominatesViewFrontier(t *testing.T) {
	s := velement.MustSpace(4, 4)
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		queries := properViewQueries(s, rng)
		target := 3 * s.CubeVolume()
		init, err := SelectBasis(s, queries)
		if err != nil {
			t.Fatal(err)
		}
		elems, err := GreedyRedundantPruned(s, init.Basis, AllElements(s), queries, target)
		if err != nil {
			t.Fatal(err)
		}
		viewRes, err := GreedyViews(s, queries, target)
		if err != nil {
			t.Fatal(err)
		}
		vs, vc := viewRes.Frontier()
		es, ec := elems.Frontier()
		for i := range vs {
			bestElem := math.Inf(1)
			for j := range es {
				if es[j] <= vs[i] && ec[j] < bestElem {
					bestElem = ec[j]
				}
			}
			if bestElem > vc[i]+1e-9 {
				t.Fatalf("trial %d: at storage %d view method %g beats pruned element method %g",
					trial, vs[i], vc[i], bestElem)
			}
		}
	}
}

// Pruning never breaks the basis property: after every greedy stage the
// selected set must remain complete with respect to the cube.
func TestPrunedGreedyStaysComplete(t *testing.T) {
	s := velement.MustSpace(4, 4)
	rng := rand.New(rand.NewSource(77))
	queries := properViewQueries(s, rng)
	init, err := SelectBasis(s, queries)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyRedundantPruned(s, init.Basis, AllElements(s), queries, 3*s.CubeVolume())
	if err != nil {
		t.Fatal(err)
	}
	if !freq.Complete(res.Final, s.Root(), s.MaxDepths()) {
		t.Fatal("final pruned set must still be a basis of the cube")
	}
}

func TestPruneObsolete(t *testing.T) {
	s := pedSpace(t)
	queries := pedQueries()
	// {V0,V1,V7}: both queries are materialised, but V0 must survive —
	// without it the set would no longer be a basis of the cube.
	pruned, cost := PruneObsolete(s, pedSet("V0", "V1", "V7"), queries)
	if cost != 0 {
		t.Fatalf("pruned cost %g, want 0", cost)
	}
	if s.SetVolume(pruned) != 8 {
		t.Fatalf("pruned storage %d, want 8 (V0 retained for completeness)", s.SetVolume(pruned))
	}
	// An element that serves no query and is not needed for completeness is
	// removed: V2 in {V0,V1,V7,V2}.
	pruned, cost = PruneObsolete(s, pedSet("V0", "V1", "V7", "V2"), queries)
	if cost != 0 {
		t.Fatalf("pruned cost %g, want 0", cost)
	}
	for _, r := range pruned {
		if r.Equal(ped["V2"]) {
			t.Fatal("V2 should have been pruned")
		}
	}
	// Query rectangles themselves are never pruned.
	found := 0
	for _, r := range pruned {
		if r.Equal(ped["V1"]) || r.Equal(ped["V7"]) {
			found++
		}
	}
	if found != 2 {
		t.Fatal("query rectangles must survive pruning")
	}
	// For a set that was never complete, pruning does not impose
	// completeness: it only avoids cost increases.
	pruned, cost = PruneObsolete(s, pedSet("V1", "V7", "V2"), queries)
	if cost != 0 || s.SetVolume(pruned) != 4 {
		t.Fatalf("incomplete-set pruning: cost %g storage %d, want 0 and 4",
			cost, s.SetVolume(pruned))
	}
}

func TestAllElements(t *testing.T) {
	s := pedSpace(t)
	all := AllElements(s)
	if len(all) != 9 {
		t.Fatalf("%d elements, want 9", len(all))
	}
}

func TestTotalProcessingCostWrapper(t *testing.T) {
	s := pedSpace(t)
	got := TotalProcessingCost(s, pedSet("V0"), pedQueries())
	if got != 2 {
		t.Fatalf("cost %g, want 2", got)
	}
}

// Property: every greedy step strictly reduces the Procedure 3 total cost
// (the algorithm's defining invariant) on random spaces and populations.
func TestGreedyStepsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(4, 4)
		queries := properViewQueries(s, rng)
		init, err := SelectBasis(s, queries)
		if err != nil {
			return false
		}
		res, err := GreedyRedundant(s, init.Basis, AllElements(s), queries, 2*s.CubeVolume())
		if err != nil {
			return false
		}
		prev := res.InitialCost
		for _, st := range res.Steps {
			if st.Cost >= prev {
				return false
			}
			prev = st.Cost
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding any single element to a selected set never increases any
// element's Procedure 3 generation cost (monotonicity of the evaluator).
func TestEvaluatorMonotonicityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := velement.MustSpace(4, 4)
		base := velement.RandomPacketBasis(s, rng, 0.3)
		extra := s.FromLinear(rng.Intn(s.NumElements()))
		before := NewSetEvaluator(s, base)
		after := NewSetEvaluator(s, append(append([]freq.Rect{}, base...), extra))
		ok := true
		s.Elements(func(r freq.Rect) bool {
			if after.ElementCost(r) > before.ElementCost(r)+1e-9 {
				ok = false
				return false
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
