// Package core implements the paper's primary contribution: the processing
// cost model over the view element graph (Eq. 26–29, Procedure 3) and the
// two selection algorithms — Algorithm 1, the fast optimal selection of a
// non-redundant view element basis minimising expected processing cost, and
// Algorithm 2, the greedy selection of redundant view elements under a
// storage budget. It also provides the comparison baselines used in §7:
// materialising the data cube only, the wavelet basis, and HRU-style greedy
// view materialisation.
package core

import (
	"fmt"

	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// Query is one member of the query population {Z_k}: a target view element
// (usually an aggregated view) and its relative access frequency f_k.
type Query struct {
	Rect freq.Rect
	Freq float64
}

// NormalizeFrequencies scales the query frequencies to sum to one, as the
// paper assumes (Σ f_k = 1). Queries with non-positive frequency are left
// untouched if the total is not positive.
func NormalizeFrequencies(queries []Query) {
	total := 0.0
	for _, q := range queries {
		total += q.Freq
	}
	if total <= 0 {
		return
	}
	for i := range queries {
		queries[i].Freq /= total
	}
}

// SupportCost returns C_{a,b} of Eq. 26–28: the number of add/subtract
// operations for view element a to contribute to the construction of view
// element b. Because dyadic rectangles are nested-or-disjoint per dimension,
// the intersection of a and b is their largest common descendant V_l, and
// the geometric sum of Eq. 28 closes to F_{a,l} = Vol(a) − Vol(l). The cost
// is symmetric: the aggregation cascade from a down to V_l plus the cascade
// (or synthesis) from b down to V_l.
func SupportCost(s *velement.Space, a, b freq.Rect) int {
	l, ok := a.Intersect(b)
	if !ok {
		return 0
	}
	vl := s.Volume(l)
	return s.Volume(a) + s.Volume(b) - 2*vl
}

// ElementSupportCost returns C_n of Eq. 29: the frequency-weighted support
// cost of one view element over the whole query population.
func ElementSupportCost(s *velement.Space, r freq.Rect, queries []Query) float64 {
	c := 0.0
	for _, q := range queries {
		if q.Freq == 0 {
			continue
		}
		c += q.Freq * float64(SupportCost(s, r, q.Rect))
	}
	return c
}

// BasisCost returns the total processing cost of answering the query
// population from a non-redundant basis: the sum of per-element support
// costs (the quantity Algorithm 1 minimises). For the singleton basis {A}
// this is the paper's plot [D]; for the wavelet basis it is plot [W].
func BasisCost(s *velement.Space, basis []freq.Rect, queries []Query) float64 {
	c := 0.0
	for _, r := range basis {
		c += ElementSupportCost(s, r, queries)
	}
	return c
}

// ValidateQueries checks that every query rectangle identifies a view
// element of the space and that no frequency is negative.
func ValidateQueries(s *velement.Space, queries []Query) error {
	if len(queries) == 0 {
		return fmt.Errorf("core: empty query population")
	}
	for i, q := range queries {
		if !s.Valid(q.Rect) {
			return fmt.Errorf("core: query %d rectangle %v is not a view element of the space", i, q.Rect)
		}
		if q.Freq < 0 {
			return fmt.Errorf("core: query %d has negative frequency %g", i, q.Freq)
		}
	}
	return nil
}
