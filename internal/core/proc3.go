package core

import (
	"math"

	"viewcube/internal/freq"
	"viewcube/internal/velement"
)

// This file implements Procedure 3: the total processing cost of answering
// a query population from a *redundant* view element set. Each element's
// generation cost T(V) is the cheaper of
//
//   - aggregation: cascade down from some selected ancestor V_s, costing
//     F = Vol(V_s) − Vol(V) add/subtracts (Eq. 28), or
//   - synthesis: perfectly reconstruct V from its partial and residual
//     children on some dimension, costing Vol(V) plus the children's own
//     generation costs (Eq. 32–33),
//
// and T(V) = 0 when V itself is selected. The recursion only ever descends
// in the element graph, so it terminates at single-cell leaves.

// SetEvaluator computes Procedure 3 costs for one selected element set. It
// memoises per-element costs and supports cheap "what if we also selected
// candidate c?" probes, which is exactly the inner loop of Algorithm 2.
// A SetEvaluator is not safe for concurrent use.
type SetEvaluator struct {
	s        *velement.Space
	selected []freq.Rect
	volumes  []int // cached Vol of each selected element

	// Flat memo with epoch stamps: bumping the epoch invalidates every slot
	// in O(1), so each candidate probe starts from a clean memo without
	// reallocating. Falls back to a map for graphs past maxFlatMemo.
	flat     bool
	memo     []float64
	epoch    []uint32
	curEpoch uint32
	memoMap  map[freq.Key]float64

	isSelected map[freq.Key]bool

	hasCand bool
	cand    freq.Rect
	candVol int
}

// NewSetEvaluator returns an evaluator for the given selected set.
func NewSetEvaluator(s *velement.Space, selected []freq.Rect) *SetEvaluator {
	e := &SetEvaluator{
		s:          s,
		isSelected: make(map[freq.Key]bool, len(selected)),
	}
	if n := s.NumElements(); n <= maxFlatMemo {
		e.flat = true
		e.memo = make([]float64, n)
		e.epoch = make([]uint32, n)
		e.curEpoch = 1
	} else {
		e.memoMap = make(map[freq.Key]float64)
	}
	for _, r := range selected {
		e.add(r)
	}
	return e
}

// add permanently selects one more element and invalidates the memo.
func (e *SetEvaluator) add(r freq.Rect) {
	k := r.Key()
	if e.isSelected[k] {
		return
	}
	e.isSelected[k] = true
	e.selected = append(e.selected, r.Clone())
	e.volumes = append(e.volumes, e.s.Volume(r))
	e.invalidate()
}

// Add permanently selects one more element (idempotent).
func (e *SetEvaluator) Add(r freq.Rect) { e.add(r) }

// Selected returns a copy of the currently selected set.
func (e *SetEvaluator) Selected() []freq.Rect {
	out := make([]freq.Rect, len(e.selected))
	for i, r := range e.selected {
		out[i] = r.Clone()
	}
	return out
}

// Storage returns the summed data-cell volume of the selected set.
func (e *SetEvaluator) Storage() int {
	v := 0
	for _, vol := range e.volumes {
		v += vol
	}
	return v
}

func (e *SetEvaluator) invalidate() {
	if e.flat {
		e.curEpoch++
		if e.curEpoch == 0 { // wrapped: hard reset
			for i := range e.epoch {
				e.epoch[i] = 0
			}
			e.curEpoch = 1
		}
		return
	}
	e.memoMap = make(map[freq.Key]float64)
}

// WithCandidate evaluates fn as if c were also selected, then restores the
// evaluator. It is the "select, compute, de-select" probe of Algorithm 2
// step 2.
func (e *SetEvaluator) WithCandidate(c freq.Rect, fn func()) {
	e.hasCand = true
	e.cand = c
	e.candVol = e.s.Volume(c)
	e.invalidate()
	fn()
	e.hasCand = false
	e.cand = nil
	e.invalidate()
}

// ElementCost returns T(r): the minimum number of add/subtract operations
// to generate element r from the selected set, or +Inf if the set cannot
// generate it (the set is not complete with respect to r).
func (e *SetEvaluator) ElementCost(r freq.Rect) float64 {
	if e.flat {
		i := e.s.LinearIndex(r)
		if e.epoch[i] == e.curEpoch {
			return e.memo[i]
		}
		cost := e.computeCost(r)
		e.memo[i] = cost
		e.epoch[i] = e.curEpoch
		return cost
	}
	k := r.Key()
	if cost, ok := e.memoMap[k]; ok {
		return cost
	}
	cost := e.computeCost(r)
	e.memoMap[k] = cost
	return cost
}

func (e *SetEvaluator) computeCost(r freq.Rect) float64 {
	if e.isSelected[r.Key()] {
		return 0
	}
	if e.hasCand && e.cand.Equal(r) {
		return 0
	}
	volR := e.s.Volume(r)
	// Aggregation from the cheapest selected ancestor (Eq. 28 with V a
	// descendant of V_s: F = Vol(V_s) − Vol(V)).
	best := math.Inf(1)
	for i, vs := range e.selected {
		if vs.Contains(r) {
			if c := float64(e.volumes[i] - volR); c < best {
				best = c
			}
		}
	}
	if e.hasCand && e.cand.Contains(r) {
		if c := float64(e.candVol - volR); c < best {
			best = c
		}
	}
	// Synthesis from children on the cheapest dimension (Eq. 32): costs
	// Vol(r) operations plus whatever the children cost to generate.
	for m := 0; m < e.s.Rank(); m++ {
		p, res, ok := e.s.Children(r, m)
		if !ok {
			continue
		}
		if c := float64(volR) + e.ElementCost(p) + e.ElementCost(res); c < best {
			best = c
		}
	}
	return best
}

// TotalCost returns T = Σ f_k · T(Z_k) (Eq. 34): the expected processing
// cost of the query population under the selected set.
func (e *SetEvaluator) TotalCost(queries []Query) float64 {
	total := 0.0
	for _, q := range queries {
		if q.Freq == 0 {
			continue
		}
		total += q.Freq * e.ElementCost(q.Rect)
	}
	return total
}

// TotalProcessingCost is a convenience wrapper: the Procedure 3 cost of one
// selected set for one query population.
func TotalProcessingCost(s *velement.Space, selected []freq.Rect, queries []Query) float64 {
	return NewSetEvaluator(s, selected).TotalCost(queries)
}

// UnweightedTotalCost sums T(Z_k) without frequency weighting. Table 2 of
// the paper reports this raw sum for the pedagogical example.
func (e *SetEvaluator) UnweightedTotalCost(queries []Query) float64 {
	total := 0.0
	for _, q := range queries {
		if q.Freq == 0 {
			continue
		}
		total += e.ElementCost(q.Rect)
	}
	return total
}
