// Package hierarchy models dimension hierarchies (day → month → quarter,
// product → category) over dictionary-encoded cube dimensions.
//
// Because the relational layer assigns dictionary codes in sorted value
// order, any grouping that is monotone with respect to that order (prefix
// truncation, bucketing, classification by ordered key) makes every
// hierarchy group a contiguous code range. Roll-up queries then reduce to
// range aggregations, which the view element machinery answers in
// O(log n) element cells per group (§6 of the paper) instead of scanning.
package hierarchy

import (
	"fmt"
	"sort"
)

// Group is one member of a hierarchy level: a named, inclusive range of
// base dictionary codes.
type Group struct {
	Name   string
	Lo, Hi int // inclusive code range over the base dimension
}

// Size returns the number of base values in the group.
func (g Group) Size() int { return g.Hi - g.Lo + 1 }

// Level is one level of a dimension hierarchy: an ordered partition of the
// base dictionary into contiguous groups.
type Level struct {
	name   string
	groups []Group
}

// BuildLevel derives a level by applying parentOf to the base values in
// dictionary (sorted) order. Every group must be a contiguous run: if a
// parent name re-appears after a different parent intervened, the grouping
// is not monotone and BuildLevel returns an error naming the offender.
func BuildLevel(name string, baseValues []string, parentOf func(string) string) (*Level, error) {
	if name == "" {
		return nil, fmt.Errorf("hierarchy: empty level name")
	}
	if len(baseValues) == 0 {
		return nil, fmt.Errorf("hierarchy: level %q has no base values", name)
	}
	lv := &Level{name: name}
	seen := make(map[string]bool)
	for code, v := range baseValues {
		parent := parentOf(v)
		if parent == "" {
			return nil, fmt.Errorf("hierarchy: value %q maps to an empty parent", v)
		}
		if n := len(lv.groups); n > 0 && lv.groups[n-1].Name == parent {
			lv.groups[n-1].Hi = code
			continue
		}
		if seen[parent] {
			return nil, fmt.Errorf("hierarchy: group %q is not contiguous in dictionary order (re-appears at %q)", parent, v)
		}
		seen[parent] = true
		lv.groups = append(lv.groups, Group{Name: parent, Lo: code, Hi: code})
	}
	return lv, nil
}

// Name returns the level's name.
func (l *Level) Name() string { return l.name }

// Groups returns the level's groups in base-code order.
func (l *Level) Groups() []Group { return append([]Group(nil), l.groups...) }

// NumGroups returns the number of groups.
func (l *Level) NumGroups() int { return len(l.groups) }

// GroupOf returns the group containing the base code.
func (l *Level) GroupOf(code int) (Group, error) {
	i := sort.Search(len(l.groups), func(i int) bool { return l.groups[i].Hi >= code })
	if i == len(l.groups) || code < l.groups[i].Lo {
		return Group{}, fmt.Errorf("hierarchy: code %d outside level %q", code, l.name)
	}
	return l.groups[i], nil
}

// GroupNamed returns the group with the given name.
func (l *Level) GroupNamed(name string) (Group, error) {
	for _, g := range l.groups {
		if g.Name == name {
			return g, nil
		}
	}
	return Group{}, fmt.Errorf("hierarchy: level %q has no group %q", l.name, name)
}

// Validate checks internal consistency against a dictionary size: groups
// must partition [0, dictLen) in order.
func (l *Level) Validate(dictLen int) error {
	next := 0
	for _, g := range l.groups {
		if g.Lo != next || g.Hi < g.Lo {
			return fmt.Errorf("hierarchy: level %q group %q has range [%d,%d], expected to start at %d",
				l.name, g.Name, g.Lo, g.Hi, next)
		}
		next = g.Hi + 1
	}
	if next != dictLen {
		return fmt.Errorf("hierarchy: level %q covers %d codes, dictionary has %d", l.name, next, dictLen)
	}
	return nil
}
