package hierarchy

import (
	"strings"
	"testing"
)

func days(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = "day-" + string(rune('0'+i/10)) + string(rune('0'+i%10))
	}
	return out
}

func weekOf(v string) string {
	// day-NN → week-(NN/7)
	n := int(v[4]-'0')*10 + int(v[5]-'0')
	return "week-" + string(rune('0'+n/7))
}

func TestBuildLevel(t *testing.T) {
	lv, err := BuildLevel("week", days(28), weekOf)
	if err != nil {
		t.Fatal(err)
	}
	if lv.Name() != "week" || lv.NumGroups() != 4 {
		t.Fatalf("level %q with %d groups", lv.Name(), lv.NumGroups())
	}
	groups := lv.Groups()
	if groups[0] != (Group{Name: "week-0", Lo: 0, Hi: 6}) {
		t.Fatalf("group 0 = %+v", groups[0])
	}
	if groups[3] != (Group{Name: "week-3", Lo: 21, Hi: 27}) {
		t.Fatalf("group 3 = %+v", groups[3])
	}
	if groups[1].Size() != 7 {
		t.Fatalf("group size %d", groups[1].Size())
	}
	if err := lv.Validate(28); err != nil {
		t.Fatal(err)
	}
	if err := lv.Validate(29); err == nil {
		t.Fatal("validate must catch uncovered codes")
	}
}

func TestBuildLevelErrors(t *testing.T) {
	if _, err := BuildLevel("", days(7), weekOf); err == nil {
		t.Fatal("want error for empty name")
	}
	if _, err := BuildLevel("x", nil, weekOf); err == nil {
		t.Fatal("want error for no values")
	}
	if _, err := BuildLevel("x", days(7), func(string) string { return "" }); err == nil {
		t.Fatal("want error for empty parent")
	}
	// Non-monotone grouping: even/odd alternation.
	_, err := BuildLevel("parity", days(4), func(v string) string {
		if int(v[5]-'0')%2 == 0 {
			return "even"
		}
		return "odd"
	})
	if err == nil || !strings.Contains(err.Error(), "not contiguous") {
		t.Fatalf("want non-contiguity error, got %v", err)
	}
}

func TestGroupOf(t *testing.T) {
	lv, err := BuildLevel("week", days(28), weekOf)
	if err != nil {
		t.Fatal(err)
	}
	for code := 0; code < 28; code++ {
		g, err := lv.GroupOf(code)
		if err != nil {
			t.Fatal(err)
		}
		if want := "week-" + string(rune('0'+code/7)); g.Name != want {
			t.Fatalf("GroupOf(%d) = %q, want %q", code, g.Name, want)
		}
	}
	if _, err := lv.GroupOf(99); err == nil {
		t.Fatal("want error for out-of-range code")
	}
	if _, err := lv.GroupOf(-1); err == nil {
		t.Fatal("want error for negative code")
	}
}

func TestGroupNamed(t *testing.T) {
	lv, _ := BuildLevel("week", days(14), weekOf)
	g, err := lv.GroupNamed("week-1")
	if err != nil {
		t.Fatal(err)
	}
	if g.Lo != 7 || g.Hi != 13 {
		t.Fatalf("group %+v", g)
	}
	if _, err := lv.GroupNamed("week-9"); err == nil {
		t.Fatal("want error for unknown group")
	}
}

func TestSingleGroupLevel(t *testing.T) {
	lv, err := BuildLevel("all", days(5), func(string) string { return "everything" })
	if err != nil {
		t.Fatal(err)
	}
	if lv.NumGroups() != 1 || lv.Groups()[0].Size() != 5 {
		t.Fatalf("groups %+v", lv.Groups())
	}
}
