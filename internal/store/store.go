// Package store provides a durable, file-backed view element store with a
// bounded in-memory LRU cache. MOLAP systems keep the cube and its
// materialised elements on disk; this package is that substrate for the
// reproduction: each element is one self-describing binary file (magic,
// version, element identity, shape, payload, CRC32), and the store
// implements the same interface as the in-memory store of package assembly
// so engines can run off either.
package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
	"viewcube/internal/obs"
)

const (
	magic   = "VCEL"
	version = 1
	fileExt = ".vce"
)

// ErrCorrupt reports a damaged element file.
var ErrCorrupt = errors.New("store: corrupt element file")

// WriteElement serialises one view element. Layout (little endian):
//
//	magic[4] version:u16 rank:u16 nodes[rank]:u32 shape[rank]:u32
//	cells:u64 data[cells]:f64 crc:u32
//
// The CRC covers everything before it.
func WriteElement(w io.Writer, r freq.Rect, a *ndarray.Array) error {
	if len(r) != a.Rank() {
		return fmt.Errorf("store: rect rank %d does not match array rank %d", len(r), a.Rank())
	}
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	if _, err := mw.Write([]byte(magic)); err != nil {
		return err
	}
	hdr := []any{uint16(version), uint16(len(r))}
	for _, v := range hdr {
		if err := binary.Write(mw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, n := range r {
		if err := binary.Write(mw, binary.LittleEndian, uint32(n)); err != nil {
			return err
		}
	}
	for _, n := range a.Shape() {
		if err := binary.Write(mw, binary.LittleEndian, uint32(n)); err != nil {
			return err
		}
	}
	if err := binary.Write(mw, binary.LittleEndian, uint64(a.Size())); err != nil {
		return err
	}
	buf := make([]byte, 8*a.Size())
	for i, v := range a.Data() {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	if _, err := mw.Write(buf); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// ReadElement deserialises one view element, verifying magic, version and
// checksum.
func ReadElement(rd io.Reader) (freq.Rect, *ndarray.Array, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(rd, crc)
	head := make([]byte, 4)
	if _, err := io.ReadFull(tr, head); err != nil {
		return nil, nil, fmt.Errorf("%w: short magic: %v", ErrCorrupt, err)
	}
	if string(head) != magic {
		return nil, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, head)
	}
	var ver, rank uint16
	if err := binary.Read(tr, binary.LittleEndian, &ver); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if ver != version {
		return nil, nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, ver)
	}
	if err := binary.Read(tr, binary.LittleEndian, &rank); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if rank == 0 || rank > 8 {
		return nil, nil, fmt.Errorf("%w: implausible rank %d", ErrCorrupt, rank)
	}
	rect := make(freq.Rect, rank)
	for m := range rect {
		var n uint32
		if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if n == 0 {
			return nil, nil, fmt.Errorf("%w: zero node", ErrCorrupt)
		}
		rect[m] = freq.Node(n)
	}
	shape := make([]int, rank)
	cellsWant := 1
	for m := range shape {
		var n uint32
		if err := binary.Read(tr, binary.LittleEndian, &n); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
		}
		if n == 0 || n > 1<<24 {
			return nil, nil, fmt.Errorf("%w: implausible extent %d", ErrCorrupt, n)
		}
		shape[m] = int(n)
		cellsWant *= int(n)
	}
	var cells uint64
	if err := binary.Read(tr, binary.LittleEndian, &cells); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if cells != uint64(cellsWant) {
		return nil, nil, fmt.Errorf("%w: cell count %d does not match shape %v", ErrCorrupt, cells, shape)
	}
	buf := make([]byte, 8*cells)
	if _, err := io.ReadFull(tr, buf); err != nil {
		return nil, nil, fmt.Errorf("%w: short payload: %v", ErrCorrupt, err)
	}
	data := make([]float64, cells)
	for i := range data {
		data[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	want := crc.Sum32()
	var got uint32
	if err := binary.Read(rd, binary.LittleEndian, &got); err != nil {
		return nil, nil, fmt.Errorf("%w: short checksum: %v", ErrCorrupt, err)
	}
	if got != want {
		return nil, nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	a, err := ndarray.NewFrom(data, shape...)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return rect, a, nil
}

// fileName encodes an element identity as a filename, e.g. "2-5-1.vce".
func fileName(r freq.Rect) string {
	parts := make([]string, len(r))
	for m, n := range r {
		parts[m] = strconv.FormatUint(uint64(n), 10)
	}
	return strings.Join(parts, "-") + fileExt
}

// parseFileName inverts fileName; ok=false for foreign files.
func parseFileName(name string) (freq.Rect, bool) {
	if !strings.HasSuffix(name, fileExt) {
		return nil, false
	}
	parts := strings.Split(strings.TrimSuffix(name, fileExt), "-")
	if len(parts) == 0 || len(parts) > 8 {
		return nil, false
	}
	r := make(freq.Rect, len(parts))
	for m, p := range parts {
		n, err := strconv.ParseUint(p, 10, 32)
		if err != nil || n == 0 {
			return nil, false
		}
		r[m] = freq.Node(n)
	}
	return r, true
}

// FileStore is a directory of element files with an LRU read cache bounded
// by a cell budget. It implements assembly.Store (and assembly.CtxStore for
// traced reads).
//
// Gets are safe for concurrent callers: the index, LRU list and cache maps
// are guarded by an internal mutex and the hit/miss/eviction counters are
// atomics, so the incidental bookkeeping a read performs never races.
// Mutations (Put, Delete) still require external serialisation against
// each other — concurrent readers during a mutation are only safe when the
// caller enforces a read/write discipline (e.g. viewcube.SafeEngine's
// write lock).
type FileStore struct {
	dir string

	mu          sync.Mutex // guards index, lru, cache, cacheCells
	index       map[freq.Key]bool
	cacheBudget int // max cached cells; 0 disables caching
	cacheCells  int
	lru         *list.List // front = most recent; values are *cacheEntry
	cache       map[freq.Key]*list.Element

	hits, misses, evictions atomic.Int64

	met *obs.StoreMetrics
}

type cacheEntry struct {
	key freq.Key
	arr *ndarray.Array
}

// Open opens (or creates) a file store in dir. cacheBudget bounds the
// in-memory cache in cells; 0 disables caching.
func Open(dir string, cacheBudget int) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	fs := &FileStore{
		dir:         dir,
		index:       make(map[freq.Key]bool),
		cacheBudget: cacheBudget,
		lru:         list.New(),
		cache:       make(map[freq.Key]*list.Element),
		met:         obs.NewStoreMetrics(nil),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if r, ok := parseFileName(e.Name()); ok {
			fs.index[r.Key()] = true
		}
	}
	return fs, nil
}

// Dir returns the store's directory.
func (fs *FileStore) Dir() string { return fs.dir }

// SetMetrics attaches registered instruments; nil restores the no-op set.
func (fs *FileStore) SetMetrics(m *obs.StoreMetrics) {
	if m == nil {
		m = obs.NewStoreMetrics(nil)
	}
	fs.met = m
}

// Len returns the number of stored elements.
func (fs *FileStore) Len() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return len(fs.index)
}

// Hits returns the number of cache hits served so far.
func (fs *FileStore) Hits() int { return int(fs.hits.Load()) }

// Misses returns the number of cache misses (reads that fell to disk).
func (fs *FileStore) Misses() int { return int(fs.misses.Load()) }

// Evictions returns the number of cache evictions performed.
func (fs *FileStore) Evictions() int { return int(fs.evictions.Load()) }

// Get implements assembly.Store: cache first, then disk.
func (fs *FileStore) Get(r freq.Rect) (*ndarray.Array, bool) {
	return fs.GetCtx(nil, r)
}

// ClonesOnGet implements assembly.CloningStore: every Get/GetCtx result is
// already a private copy (see GetCtx), so the executor may take ownership
// of it without copying again.
func (fs *FileStore) ClonesOnGet() bool { return true }

// GetCtx is Get with per-query tracing (assembly.CtxStore): while x carries
// a trace, the read records a "store.get" span with its cache outcome.
//
// The returned array is always a private copy: the cached arrays are shared
// across every concurrent reader, so handing out an aliased slice would let
// one caller's mutation corrupt every later read of the same element.
func (fs *FileStore) GetCtx(x *obs.ExecCtx, r freq.Rect) (*ndarray.Array, bool) {
	k := r.Key()
	fs.mu.Lock()
	if !fs.index[k] {
		fs.mu.Unlock()
		return nil, false
	}
	var cached *ndarray.Array
	if el, ok := fs.cache[k]; ok {
		fs.lru.MoveToFront(el)
		cached = el.Value.(*cacheEntry).arr
	}
	fs.mu.Unlock()

	sp := x.Start("store.get " + r.String())
	defer sp.End()
	if cached != nil {
		fs.hits.Add(1)
		fs.met.CacheHits.Inc()
		sp.SetAttr("cache_hit", 1)
		sp.SetAttr("cells", int64(cached.Size()))
		return cached.Clone(), true
	}
	fs.misses.Add(1)
	fs.met.CacheMisses.Inc()
	sp.SetAttr("cache_hit", 0)
	f, err := os.Open(filepath.Join(fs.dir, fileName(r)))
	if err != nil {
		return nil, false
	}
	defer f.Close()
	gotRect, a, err := ReadElement(f)
	if err != nil || !gotRect.Equal(r) {
		return nil, false
	}
	fs.met.DiskReads.Inc()
	sp.SetAttr("cells", int64(a.Size()))
	fs.mu.Lock()
	admitted := fs.admitLocked(k, a)
	fs.mu.Unlock()
	if admitted {
		// The cache now owns a; give the caller its own copy.
		return a.Clone(), true
	}
	return a, true
}

// admitLocked inserts a into the cache, evicting from the LRU tail to stay
// within budget, and reports whether a is now cache-owned. fs.mu must be
// held.
func (fs *FileStore) admitLocked(k freq.Key, a *ndarray.Array) bool {
	if fs.cacheBudget <= 0 || a.Size() > fs.cacheBudget {
		return false
	}
	if el, ok := fs.cache[k]; ok {
		fs.cacheCells -= el.Value.(*cacheEntry).arr.Size()
		fs.lru.Remove(el)
		delete(fs.cache, k)
	}
	for fs.cacheCells+a.Size() > fs.cacheBudget {
		back := fs.lru.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		fs.cacheCells -= ent.arr.Size()
		fs.lru.Remove(back)
		delete(fs.cache, ent.key)
		fs.evictions.Add(1)
		fs.met.Evictions.Inc()
	}
	fs.cache[k] = fs.lru.PushFront(&cacheEntry{key: k, arr: a})
	fs.cacheCells += a.Size()
	fs.met.CachedCells.Set(int64(fs.cacheCells))
	return true
}

// Put implements assembly.Store: write-through to disk. The store takes
// ownership of a (it may be retained in the cache); callers must not
// mutate it afterwards.
func (fs *FileStore) Put(r freq.Rect, a *ndarray.Array) error {
	path := filepath.Join(fs.dir, fileName(r))
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating %s: %w", tmp, err)
	}
	if err := WriteElement(f, r, a); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: writing %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: committing %s: %w", path, err)
	}
	k := r.Key()
	fs.mu.Lock()
	fs.index[k] = true
	fs.admitLocked(k, a)
	fs.mu.Unlock()
	fs.met.DiskWrites.Inc()
	return nil
}

// Delete implements assembly.Store.
func (fs *FileStore) Delete(r freq.Rect) error {
	k := r.Key()
	fs.mu.Lock()
	if !fs.index[k] {
		fs.mu.Unlock()
		return nil
	}
	delete(fs.index, k)
	if el, ok := fs.cache[k]; ok {
		fs.cacheCells -= el.Value.(*cacheEntry).arr.Size()
		fs.lru.Remove(el)
		delete(fs.cache, k)
		fs.met.CachedCells.Set(int64(fs.cacheCells))
	}
	fs.mu.Unlock()
	if err := os.Remove(filepath.Join(fs.dir, fileName(r))); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: deleting %v: %w", r, err)
	}
	return nil
}

// Elements implements assembly.Store, returning stored identities in a
// deterministic order.
func (fs *FileStore) Elements() []freq.Rect {
	fs.mu.Lock()
	out := make([]freq.Rect, 0, len(fs.index))
	for k := range fs.index {
		out = append(out, k.Rect())
	}
	fs.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for m := range a {
			if a[m] != b[m] {
				return a[m] < b[m]
			}
		}
		return false
	})
	return out
}

// CachedCells returns the number of cells currently held in memory.
func (fs *FileStore) CachedCells() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.cacheCells
}
