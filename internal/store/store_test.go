package store

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"viewcube/internal/assembly"
	"viewcube/internal/freq"
	"viewcube/internal/haar"
	"viewcube/internal/ndarray"
	"viewcube/internal/velement"
)

func randomArray(r *rand.Rand, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Round(r.Float64()*1000-500) / 4
	}
	return a
}

func TestElementRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rect := freq.Rect{2, 5, 1}
	a := randomArray(rng, 4, 2, 8)
	var buf bytes.Buffer
	if err := WriteElement(&buf, rect, a); err != nil {
		t.Fatal(err)
	}
	gotRect, gotArr, err := ReadElement(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRect.Equal(rect) {
		t.Fatalf("rect %v, want %v", gotRect, rect)
	}
	if !gotArr.Equal(a, 0) {
		t.Fatal("array does not round trip bit-exactly")
	}
}

func TestWriteElementRankMismatch(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteElement(&buf, freq.Rect{1}, ndarray.New(2, 2)); err == nil {
		t.Fatal("want error for rank mismatch")
	}
}

func TestReadElementCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rect := freq.Rect{3, 1}
	a := randomArray(rng, 2, 4)
	var buf bytes.Buffer
	if err := WriteElement(&buf, rect, a); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: checksum must catch it.
	bad := append([]byte(nil), good...)
	bad[len(bad)-10] ^= 0xFF
	if _, _, err := ReadElement(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupted payload: err=%v, want ErrCorrupt", err)
	}

	// Truncated file.
	if _, _, err := ReadElement(bytes.NewReader(good[:len(good)-6])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated: err=%v, want ErrCorrupt", err)
	}

	// Bad magic.
	bad = append([]byte(nil), good...)
	bad[0] = 'X'
	if _, _, err := ReadElement(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: err=%v, want ErrCorrupt", err)
	}

	// Empty input.
	if _, _, err := ReadElement(bytes.NewReader(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty: err=%v, want ErrCorrupt", err)
	}
}

func TestFileNameRoundTrip(t *testing.T) {
	rects := []freq.Rect{{1}, {2, 5, 13}, {1, 1, 1, 1, 1, 1, 1, 1}}
	for _, r := range rects {
		got, ok := parseFileName(fileName(r))
		if !ok || !got.Equal(r) {
			t.Fatalf("round trip of %v failed: %v %v", r, got, ok)
		}
	}
	for _, name := range []string{"x.txt", "0-1.vce", "a-b.vce", ".vce", "1-2-3-4-5-6-7-8-9.vce"} {
		if _, ok := parseFileName(name); ok {
			t.Errorf("parseFileName(%q) should fail", name)
		}
	}
}

func TestFileStoreBasics(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	rect := freq.Rect{2, 1}
	a := randomArray(rng, 2, 4)
	if _, ok := fs.Get(rect); ok {
		t.Fatal("empty store must miss")
	}
	if err := fs.Put(rect, a); err != nil {
		t.Fatal(err)
	}
	got, ok := fs.Get(rect)
	if !ok || !got.Equal(a, 0) {
		t.Fatal("Get after Put failed")
	}
	if fs.Len() != 1 {
		t.Fatalf("Len=%d, want 1", fs.Len())
	}
	if err := fs.Delete(rect); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Get(rect); ok {
		t.Fatal("Get after Delete must miss")
	}
	if err := fs.Delete(rect); err != nil {
		t.Fatal("double delete is not an error")
	}
}

func TestFileStorePersistsAcrossOpens(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(4))
	rects := []freq.Rect{{2, 1}, {3, 2}, {1, 3}}
	arrays := make([]*ndarray.Array, len(rects))
	{
		fs, err := Open(dir, 0)
		if err != nil {
			t.Fatal(err)
		}
		s := velement.MustSpace(4, 4)
		for i, r := range rects {
			arrays[i] = randomArray(rng, s.ElementShape(r)...)
			if err := fs.Put(r, arrays[i]); err != nil {
				t.Fatal(err)
			}
		}
	}
	fs2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs2.Len() != len(rects) {
		t.Fatalf("reopened store has %d elements, want %d", fs2.Len(), len(rects))
	}
	for i, r := range rects {
		got, ok := fs2.Get(r)
		if !ok || !got.Equal(arrays[i], 0) {
			t.Fatalf("element %v not recovered", r)
		}
	}
	els := fs2.Elements()
	if len(els) != 3 {
		t.Fatalf("Elements returned %d", len(els))
	}
	for i := 1; i < len(els); i++ {
		a, b := els[i-1], els[i]
		leq := false
		for m := range a {
			if a[m] != b[m] {
				leq = a[m] < b[m]
				break
			}
		}
		if !leq {
			t.Fatal("Elements must be sorted")
		}
	}
}

func TestFileStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	fs, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Len() != 0 {
		t.Fatalf("foreign files must be ignored, got %d elements", fs.Len())
	}
}

func TestFileStoreDetectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	fs, _ := Open(dir, 0)
	rect := freq.Rect{2, 1}
	rng := rand.New(rand.NewSource(5))
	if err := fs.Put(rect, randomArray(rng, 2, 4)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the file on disk behind the store's back.
	path := filepath.Join(dir, fileName(rect))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-12] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := fs.Get(rect); ok {
		t.Fatal("corrupt element must not be returned")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	dir := t.TempDir()
	// Budget of 20 cells; each element is 8 cells → at most 2 cached.
	fs, err := Open(dir, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	rects := []freq.Rect{{2, 1}, {3, 1}, {1, 2}}
	for _, r := range rects {
		if err := fs.Put(r, randomArray(rng, 2, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if fs.CachedCells() > 20 {
		t.Fatalf("cache %d cells exceeds budget 20", fs.CachedCells())
	}
	// Rects[0] was evicted (LRU): getting it is a miss; rects[2] is a hit.
	h, m := fs.Hits(), fs.Misses()
	fs.Get(rects[2])
	if fs.Hits() != h+1 {
		t.Fatal("most recent element should hit the cache")
	}
	fs.Get(rects[0])
	if fs.Misses() != m+1 {
		t.Fatal("evicted element should miss the cache")
	}
	// Oversized elements bypass the cache entirely.
	big := freq.Rect{1, 1}
	if err := fs.Put(big, randomArray(rng, 8, 8)); err != nil {
		t.Fatal(err)
	}
	if fs.CachedCells() > 20 {
		t.Fatal("oversized element must not blow the cache budget")
	}
}

// The file store can serve the assembly engine as a drop-in store: answers
// must match direct computation.
func TestFileStoreDrivesEngine(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	s := velement.MustSpace(8, 4)
	cube := randomArray(rng, 8, 4)
	mat, err := assembly.NewMaterializer(s, cube)
	if err != nil {
		t.Fatal(err)
	}
	if err := mat.Materialize(velement.WaveletBasis(s), fs); err != nil {
		t.Fatal(err)
	}
	eng := assembly.NewEngine(s, fs)
	for _, v := range s.AggregatedViews() {
		got, err := eng.Answer(nil, v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := haar.ApplyRect(cube, v)
		if !got.Equal(want, 1e-6) {
			t.Fatalf("view %v differs via file store", v)
		}
	}
}

var _ assembly.Store = (*FileStore)(nil)

func TestFileStoreDirAndPutError(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Dir() != dir {
		t.Fatalf("Dir=%q", fs.Dir())
	}
	// Putting into a store whose directory vanished must error, not panic.
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := fs.Put(freq.Rect{1}, ndarray.New(2)); err == nil {
		t.Fatal("want error for unwritable directory")
	}
}

func TestOpenOnFilePathFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plainfile")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0); err == nil {
		t.Fatal("want error when the store path is a file")
	}
}

// TestGetReturnsUnaliasedCopy is the regression test for the cache-aliasing
// hazard: an array handed out by Get must be the caller's own copy, so
// mutating it cannot corrupt what subsequent readers see. Both the
// cache-hit and the cold disk-read path are exercised.
func TestGetReturnsUnaliasedCopy(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	rect := freq.Rect{2, 1}
	orig := randomArray(rng, 4, 8)
	want := orig.Clone()
	if err := fs.Put(rect, orig); err != nil {
		t.Fatal(err)
	}
	// Warm (write-admitted) cache hit.
	got, ok := fs.Get(rect)
	if !ok {
		t.Fatal("element missing")
	}
	got.Data()[0] += 1e6 // caller scribbles on its copy
	again, ok := fs.Get(rect)
	if !ok {
		t.Fatal("element missing on re-read")
	}
	if !again.Equal(want, 0) {
		t.Fatal("mutating a Get result corrupted the cached element")
	}
	// Cold path: a reopened store reads from disk, then admits; the admitted
	// copy must be private too.
	fs2, err := Open(dir, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	cold, ok := fs2.Get(rect)
	if !ok {
		t.Fatal("element missing from reopened store")
	}
	cold.Data()[0] -= 42
	warm, ok := fs2.Get(rect)
	if !ok {
		t.Fatal("element missing on warm re-read")
	}
	if !warm.Equal(want, 0) {
		t.Fatal("mutating a cold Get result corrupted the admitted element")
	}
}

// TestConcurrentGets hammers one store from many goroutines (run under
// -race): concurrent reads share the LRU bookkeeping and counters, which
// must be internally synchronised.
func TestConcurrentGets(t *testing.T) {
	dir := t.TempDir()
	fs, err := Open(dir, 64) // small budget so evictions happen concurrently
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	rects := []freq.Rect{{2, 1}, {3, 1}, {1, 2}, {1, 3}}
	want := make([]*ndarray.Array, len(rects))
	for i, r := range rects {
		a := randomArray(rng, 4, 8)
		want[i] = a.Clone()
		if err := fs.Put(r, a); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				j := (g + i) % len(rects)
				a, ok := fs.Get(rects[j])
				if !ok {
					errs <- errors.New("element went missing under concurrent reads")
					return
				}
				if !a.Equal(want[j], 0) {
					errs <- errors.New("concurrent read returned corrupted data")
					return
				}
				a.Data()[0] = -1 // private copy: scribbling must be harmless
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if fs.Hits()+fs.Misses() < 8*50 {
		t.Fatalf("counters lost updates: hits=%d misses=%d", fs.Hits(), fs.Misses())
	}
}
