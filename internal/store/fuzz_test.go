package store

import (
	"bytes"
	"testing"

	"viewcube/internal/freq"
	"viewcube/internal/ndarray"
)

// FuzzReadElement feeds arbitrary bytes to the element decoder: it must
// never panic, and anything it accepts must re-encode to an equivalent
// element (decode∘encode is the identity on valid files, and the checksum
// rejects everything else).
func FuzzReadElement(f *testing.F) {
	// Seed with a couple of valid encodings and some mutations.
	mk := func(r freq.Rect, shape ...int) []byte {
		a := ndarray.New(shape...)
		for i := range a.Data() {
			a.Data()[i] = float64(i) * 1.5
		}
		var buf bytes.Buffer
		if err := WriteElement(&buf, r, a); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	good := mk(freq.Rect{2, 1}, 2, 4)
	f.Add(good)
	f.Add(mk(freq.Rect{1}, 8))
	trunc := good[:len(good)-3]
	f.Add(trunc)
	flip := append([]byte(nil), good...)
	flip[10] ^= 0xFF
	f.Add(flip)
	f.Add([]byte("VCEL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		rect, arr, err := ReadElement(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteElement(&buf, rect, arr); err != nil {
			t.Fatalf("accepted element failed to re-encode: %v", err)
		}
		rect2, arr2, err := ReadElement(&buf)
		if err != nil {
			t.Fatalf("re-encoded element failed to decode: %v", err)
		}
		if !rect2.Equal(rect) || !arr2.Equal(arr, 0) {
			t.Fatal("decode∘encode is not the identity")
		}
	})
}

// FuzzParseFileName checks the filename codec never panics and round-trips
// what it accepts.
func FuzzParseFileName(f *testing.F) {
	f.Add("2-5-1.vce")
	f.Add("1.vce")
	f.Add("0-1.vce")
	f.Add("x.vce")
	f.Add(".vce")
	f.Add("9999999999999999999-1.vce")
	f.Fuzz(func(t *testing.T, name string) {
		r, ok := parseFileName(name)
		if !ok {
			return
		}
		if got := fileName(r); got != name {
			t.Fatalf("fileName(parseFileName(%q)) = %q", name, got)
		}
	})
}
