package catalog

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// ReloadReport summarises what one catalog hot-reload changed.
type ReloadReport struct {
	// Added cubes were registered (or re-loaded, if a previous reload had
	// dropped them) and are serving.
	Added []string `json:"added,omitempty"`
	// Dropped cubes were drained and unloaded; their entries stay in the
	// registry so a later reload can bring them back.
	Dropped []string `json:"dropped,omitempty"`
	// Rebuilt cubes had a changed spec: a fresh handle was swapped in with
	// zero downtime and their result caches were invalidated.
	Rebuilt []string `json:"rebuilt,omitempty"`
	// ViewsChanged cubes had their view set recompiled in place.
	ViewsChanged []string `json:"views_changed,omitempty"`
	// Default is the default cube after the reload, when it changed.
	Default string `json:"default,omitempty"`
}

// Empty reports whether the reload was a no-op.
func (rr *ReloadReport) Empty() bool {
	return len(rr.Added) == 0 && len(rr.Dropped) == 0 &&
		len(rr.Rebuilt) == 0 && len(rr.ViewsChanged) == 0 && rr.Default == ""
}

// ApplyUpdate diffs two parsed catalog files and applies the differences to
// a serving registry through the normal lifecycle operations, so every
// transition keeps its guarantees: added cubes Register (or Load, if the
// entry was parked unloaded by an earlier reload), dropped cubes Unload
// after draining in-flight leases, changed cubes Rebuild with the old
// generation serving until the new handle swaps in, and changed view sets
// recompile against the current schema. Each affected cube's result cache
// is invalidated by those operations. Independent failures don't abort the
// rest of the reload; they are joined into the returned error, and a cube
// whose rebuild fails keeps serving its old generation.
func ApplyUpdate(reg *Registry, old, next *File, baseDir string) (*ReloadReport, error) {
	report := &ReloadReport{}
	var errs []error

	oldCubes := make(map[string]CubeSpec, len(old.Cubes))
	for _, c := range old.Cubes {
		oldCubes[c.Name] = c
	}
	nextCubes := make(map[string]CubeSpec, len(next.Cubes))
	for _, c := range next.Cubes {
		nextCubes[c.Name] = c
	}

	// Adds and changes, in the next file's declaration order.
	for _, spec := range next.Cubes {
		prev, existed := oldCubes[spec.Name]
		switch {
		case !existed:
			if err := registerOrReload(reg, spec, next, baseDir); err != nil {
				errs = append(errs, err)
				continue
			}
			report.Added = append(report.Added, spec.Name)
		case prev != spec:
			if err := reg.SetBuilder(spec.Name, next.builder(reg, spec, baseDir)); err != nil {
				errs = append(errs, err)
				continue
			}
			if err := reg.Rebuild(spec.Name); err != nil {
				errs = append(errs, fmt.Errorf("catalog reload: %w", err))
				continue
			}
			report.Rebuilt = append(report.Rebuilt, spec.Name)
		}
	}

	// Drops, in the old file's declaration order.
	for _, spec := range old.Cubes {
		if _, kept := nextCubes[spec.Name]; kept {
			continue
		}
		if err := reg.Unload(spec.Name); err != nil && !errors.Is(err, ErrCubeUnloaded) {
			errs = append(errs, fmt.Errorf("catalog reload: %w", err))
			continue
		}
		report.Dropped = append(report.Dropped, spec.Name)
	}

	// Views: recompile any cube whose declared view set changed. Cached
	// answers stay valid (they are keyed on the post-view resolved shape),
	// but the view definitions themselves swap atomically.
	oldViews := viewsByCube(old)
	nextViews := viewsByCube(next)
	for _, spec := range next.Cubes {
		ov, nv := oldViews[spec.Name], nextViews[spec.Name]
		if _, existed := oldCubes[spec.Name]; !existed {
			continue // a fresh cube's views were registered with it
		}
		if sameViewSpecs(ov, nv) {
			continue
		}
		if err := reg.ReplaceViews(spec.Name, nv); err != nil {
			errs = append(errs, fmt.Errorf("catalog reload: %w", err))
			continue
		}
		report.ViewsChanged = append(report.ViewsChanged, spec.Name)
	}

	// Default designation follows the next file (first cube when none is
	// explicit, matching Build).
	wantDef := ""
	for _, c := range next.Cubes {
		if c.Default {
			wantDef = c.Name
			break
		}
	}
	if wantDef == "" && len(next.Cubes) > 0 {
		wantDef = next.Cubes[0].Name
	}
	if wantDef != "" && wantDef != reg.Default() {
		if err := reg.SetDefault(wantDef); err != nil {
			errs = append(errs, fmt.Errorf("catalog reload: %w", err))
		} else {
			report.Default = wantDef
		}
	}
	return report, errors.Join(errs...)
}

// registerOrReload brings one added cube into service: Register for a name
// the registry has never seen, SetBuilder+Load for an entry a previous
// reload parked unloaded.
func registerOrReload(reg *Registry, spec CubeSpec, f *File, baseDir string) error {
	build := f.builder(reg, spec, baseDir)
	if !reg.Has(spec.Name) {
		if err := reg.Register(spec.Name, build); err != nil {
			return fmt.Errorf("catalog reload: %w", err)
		}
		for _, v := range f.Views {
			if v.Cube != spec.Name {
				continue
			}
			if err := reg.RegisterView(v); err != nil {
				return fmt.Errorf("catalog reload: %w", err)
			}
		}
		return nil
	}
	if err := reg.SetBuilder(spec.Name, build); err != nil {
		return fmt.Errorf("catalog reload: %w", err)
	}
	if err := reg.Load(spec.Name); err != nil {
		return fmt.Errorf("catalog reload: %w", err)
	}
	views := viewsByCube(f)[spec.Name]
	if err := reg.ReplaceViews(spec.Name, views); err != nil {
		return fmt.Errorf("catalog reload: %w", err)
	}
	return nil
}

func viewsByCube(f *File) map[string][]ViewSpec {
	out := make(map[string][]ViewSpec)
	for _, v := range f.Views {
		out[v.Cube] = append(out[v.Cube], v)
	}
	return out
}

// Equal reports whether two view specs declare the same view. Member order
// matters (it is part of the declaration); comparison is over the
// serialized form, the same identity the catalog file expresses.
func (v ViewSpec) Equal(o ViewSpec) bool {
	a, _ := json.Marshal(v)
	b, _ := json.Marshal(o)
	return bytes.Equal(a, b)
}

// sameViewSpecs compares two view lists order-insensitively: reordering
// declarations is not a semantic change.
func sameViewSpecs(a, b []ViewSpec) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(v ViewSpec) string { return v.Cube + "\x00" + v.Name }
	as := append([]ViewSpec(nil), a...)
	bs := append([]ViewSpec(nil), b...)
	sort.Slice(as, func(i, j int) bool { return key(as[i]) < key(as[j]) })
	sort.Slice(bs, func(i, j int) bool { return key(bs[i]) < key(bs[j]) })
	for i := range as {
		if !as[i].Equal(bs[i]) {
			return false
		}
	}
	return true
}

// Reloader watches a catalog file and applies spec changes to a serving
// registry. It polls by modification time and confirms with a byte
// comparison, so touch-without-change is a no-op; a file that fails to
// parse leaves the registry untouched (the previous catalog keeps
// serving). Reloader is not safe for concurrent Check calls — run it from
// one goroutine (Run does).
type Reloader struct {
	reg     *Registry
	path    string
	baseDir string
	last    *File
	raw     []byte
	mtime   time.Time
	size    int64
}

// NewReloader starts watching path. current is the parsed catalog the
// registry was built from; raw is its byte content (pass nil to force the
// first Check to re-read and diff).
func NewReloader(reg *Registry, path string, current *File, raw []byte) *Reloader {
	rl := &Reloader{
		reg:     reg,
		path:    path,
		baseDir: filepath.Dir(path),
		last:    current,
		raw:     raw,
	}
	if st, err := os.Stat(path); err == nil && raw != nil {
		rl.mtime, rl.size = st.ModTime(), st.Size()
	}
	return rl
}

// Check applies the catalog file's current state if it changed since the
// last observation. Returns a nil report when nothing changed.
func (rl *Reloader) Check() (*ReloadReport, error) {
	st, err := os.Stat(rl.path)
	if err != nil {
		return nil, fmt.Errorf("catalog reload: %w", err)
	}
	if st.ModTime().Equal(rl.mtime) && st.Size() == rl.size {
		return nil, nil
	}
	data, err := os.ReadFile(rl.path)
	if err != nil {
		return nil, fmt.Errorf("catalog reload: %w", err)
	}
	rl.mtime, rl.size = st.ModTime(), st.Size()
	if bytes.Equal(data, rl.raw) {
		return nil, nil
	}
	next, err := Parse(data)
	if err != nil {
		// A half-written or invalid file must not take the catalog down;
		// keep serving the previous one and report the parse failure.
		return nil, fmt.Errorf("catalog reload: %s: %w", rl.path, err)
	}
	report, err := ApplyUpdate(rl.reg, rl.last, next, rl.baseDir)
	// Even a partially failed apply advances the baseline: the operations
	// that succeeded are live, and re-running the failed ones every poll
	// tick would hammer a broken source. The next file edit retries.
	rl.last, rl.raw = next, data
	return report, err
}

// Run polls every interval until stop closes, reporting each reload (and
// each failure) through logf. Intended as a goroutine.
func (rl *Reloader) Run(interval time.Duration, stop <-chan struct{}, logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			report, err := rl.Check()
			if err != nil {
				logf("catalog reload: %v", err)
			}
			if report != nil && !report.Empty() {
				logf("catalog reloaded: added=%v dropped=%v rebuilt=%v views=%v default=%q",
					report.Added, report.Dropped, report.Rebuilt, report.ViewsChanged, report.Default)
			}
		}
	}
}
