package catalog

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"viewcube"
	"viewcube/internal/rescache"
)

// countingHandle wraps a CubeHandle counting how many times the underlying
// read paths actually execute, for singleflight/exactly-once assertions.
type countingHandle struct {
	CubeHandle
	groupBys atomic.Int64
	queries  atomic.Int64
	ranges   atomic.Int64
}

func (h *countingHandle) GroupBy(keep ...string) (map[string]float64, error) {
	h.groupBys.Add(1)
	return h.CubeHandle.GroupBy(keep...)
}

func (h *countingHandle) Query(sql string) (*viewcube.QueryResult, error) {
	h.queries.Add(1)
	return h.CubeHandle.Query(sql)
}

func (h *countingHandle) RangeSum(ranges map[string]viewcube.ValueRange) (float64, error) {
	h.ranges.Add(1)
	return h.CubeHandle.RangeSum(ranges)
}

// cachedSalesRegistry registers one sales cube and enables result caching.
func cachedSalesRegistry(t *testing.T) (*Registry, *countingHandle) {
	t.Helper()
	reg := NewRegistry()
	h := &countingHandle{CubeHandle: salesHandle(t)}
	if err := reg.Register("sales", func() (CubeHandle, error) {
		h.CubeHandle = salesHandle(t) // rebuilds get a fresh inner handle
		return h, nil
	}); err != nil {
		t.Fatal(err)
	}
	reg.EnableResultCache(rescache.Options{})
	return reg, h
}

func acquire(t *testing.T, reg *Registry) *Lease {
	t.Helper()
	lease, err := reg.Acquire("", "")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lease.Release)
	return lease
}

func TestServeGroupByCachesAndInvalidatesOnUpdate(t *testing.T) {
	reg, h := cachedSalesRegistry(t)
	lease := acquire(t, reg)
	if !lease.Cached() {
		t.Fatal("lease should carry the result cache")
	}

	g1, _, hit, err := lease.ServeGroupBy(false, "product")
	if err != nil || hit == nil || *hit {
		t.Fatalf("cold read: hit=%v err=%v", hit, err)
	}
	g2, _, hit, err := lease.ServeGroupBy(false, "product")
	if err != nil || hit == nil || !*hit {
		t.Fatalf("warm read: hit=%v err=%v", hit, err)
	}
	if g2["ale"] != g1["ale"] || g2["ale"] != 17 {
		t.Fatalf("groups %v / %v", g1, g2)
	}
	if n := h.groupBys.Load(); n != 1 {
		t.Fatalf("underlying GroupBy ran %d times, want 1", n)
	}

	// An update bumps the engine's plan-cache epoch; the next read must
	// observe it via SyncUpstream, miss, and see the new value.
	if err := lease.Handle.UpdateValue(3, map[string]string{"product": "ale", "region": "east", "day": "d1"}); err != nil {
		t.Fatal(err)
	}
	g3, _, hit, err := lease.ServeGroupBy(false, "product")
	if err != nil || *hit {
		t.Fatalf("post-update read: hit=%v err=%v", *hit, err)
	}
	if g3["ale"] != 20 {
		t.Fatalf("post-update ale = %v, want 20", g3["ale"])
	}
	if st := lease.ResultCacheStats(); st.Invalidations == 0 {
		t.Fatalf("update did not invalidate: %+v", st)
	}
}

func TestServeRangeAndQueryCached(t *testing.T) {
	reg, h := cachedSalesRegistry(t)
	lease := acquire(t, reg)

	ranges := map[string]viewcube.ValueRange{"day": {Lo: "d1", Hi: "d2"}}
	s1, _, _, err := lease.ServeRangeSum(false, ranges)
	if err != nil {
		t.Fatal(err)
	}
	s2, _, hit, err := lease.ServeRangeSum(false, ranges)
	if err != nil || !*hit || s2 != s1 {
		t.Fatalf("range warm: sum=%v/%v hit=%v err=%v", s1, s2, *hit, err)
	}
	if n := h.ranges.Load(); n != 1 {
		t.Fatalf("underlying RangeSum ran %d times, want 1", n)
	}

	const sql = "SELECT SUM(sales) GROUP BY product"
	r1, _, _, err := lease.ServeQuery(false, sql)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, hit, err := lease.ServeQuery(false, sql)
	if err != nil || !*hit {
		t.Fatalf("query warm: hit=%v err=%v", *hit, err)
	}
	if r2 != r1 {
		t.Fatal("warm query should return the cached result pointer")
	}
	if n := h.queries.Load(); n != 1 {
		t.Fatalf("underlying Query ran %d times, want 1", n)
	}
}

// TestServeSingleflightExactlyOnce: an identical-query storm executes the
// underlying query exactly once — racers either coalesce onto the one
// in-flight computation or hit the stored entry.
func TestServeSingleflightExactlyOnce(t *testing.T) {
	reg, h := cachedSalesRegistry(t)
	const racers = 24
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lease, err := reg.Acquire("", "")
			if err != nil {
				t.Error(err)
				return
			}
			defer lease.Release()
			<-start
			g, _, _, err := lease.ServeGroupBy(false, "product")
			if err != nil {
				t.Error(err)
				return
			}
			if g["ale"] != 17 {
				t.Errorf("ale = %v, want 17", g["ale"])
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := h.groupBys.Load(); n != 1 {
		t.Fatalf("underlying GroupBy ran %d times under %d identical queries, want exactly 1", n, racers)
	}
}

// TestServeCacheSerialOracle interleaves updates with reads serially: after
// every write, the cached answer must be bit-identical to a direct
// (uncached) handle read.
func TestServeCacheSerialOracle(t *testing.T) {
	reg, _ := cachedSalesRegistry(t)
	lease := acquire(t, reg)
	for i := 0; i < 10; i++ {
		if err := lease.Handle.UpdateValue(float64(i+1), map[string]string{"product": "bock", "region": "west", "day": "d2"}); err != nil {
			t.Fatal(err)
		}
		cached, _, _, err := lease.ServeGroupBy(false, "product", "region")
		if err != nil {
			t.Fatal(err)
		}
		direct, err := lease.Handle.GroupBy("product", "region")
		if err != nil {
			t.Fatal(err)
		}
		if len(cached) != len(direct) {
			t.Fatalf("iter %d: %d cached groups vs %d direct", i, len(cached), len(direct))
		}
		for k, v := range direct {
			if cached[k] != v {
				t.Fatalf("iter %d: group %q cached %v direct %v", i, k, cached[k], v)
			}
		}
		// The read after the oracle check must be a pure hit.
		if _, _, hit, _ := lease.ServeGroupBy(false, "product", "region"); !*hit {
			t.Fatalf("iter %d: repeat read missed", i)
		}
	}
}

// TestServeCacheConcurrentUpdateStorm races cached readers of every kind
// against an update writer under -race, then quiesces and proves the cached
// answers converged bit-identically onto the direct ones.
func TestServeCacheConcurrentUpdateStorm(t *testing.T) {
	reg, _ := cachedSalesRegistry(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer: paired updates keep the long-run answer stable
		defer wg.Done()
		defer close(stop)
		lease, err := reg.Acquire("", "")
		if err != nil {
			t.Error(err)
			return
		}
		defer lease.Release()
		cell := map[string]string{"product": "ale", "region": "east", "day": "d1"}
		for i := 0; i < 60; i++ {
			if err := lease.Handle.UpdateValue(5, cell); err != nil {
				t.Error(err)
				return
			}
			if err := lease.Handle.UpdateValue(-5, cell); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lease, err := reg.Acquire("", "")
			if err != nil {
				t.Error(err)
				return
			}
			defer lease.Release()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch g % 3 {
				case 0:
					if _, _, _, err := lease.ServeGroupBy(false, "product"); err != nil {
						t.Error(err)
						return
					}
				case 1:
					if _, _, _, err := lease.ServeRangeSum(false, map[string]viewcube.ValueRange{"day": {Lo: "d1", Hi: "d3"}}); err != nil {
						t.Error(err)
						return
					}
				case 2:
					if _, _, _, err := lease.ServeQuery(false, "SELECT SUM(sales) GROUP BY region"); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Quiesced: cached reads must now equal direct reads exactly.
	lease := acquire(t, reg)
	cached, _, _, err := lease.ServeGroupBy(false, "product")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := lease.Handle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range direct {
		if cached[k] != v {
			t.Fatalf("group %q: cached %v direct %v", k, cached[k], v)
		}
	}
	sum, _, _, err := lease.ServeRangeSum(false, map[string]viewcube.ValueRange{"day": {Lo: "d1", Hi: "d3"}})
	if err != nil {
		t.Fatal(err)
	}
	dsum, err := lease.Handle.RangeSum(map[string]viewcube.ValueRange{"day": {Lo: "d1", Hi: "d3"}})
	if err != nil {
		t.Fatal(err)
	}
	if sum != dsum {
		t.Fatalf("range: cached %v direct %v", sum, dsum)
	}
}

// TestServeTraceZeroOpOnHit: a traced hit reports a one-span, zero-op tree
// labelled result_cache=hit; a computing miss keeps its real execution tree
// labelled result_cache=miss.
func TestServeTraceZeroOpOnHit(t *testing.T) {
	reg, _ := cachedSalesRegistry(t)
	lease := acquire(t, reg)

	_, trMiss, hit, err := lease.ServeGroupBy(true, "product")
	if err != nil || *hit {
		t.Fatalf("cold traced read: hit=%v err=%v", *hit, err)
	}
	if trMiss.Ops() <= 0 {
		t.Fatalf("miss trace has no ops: %s", trMiss)
	}
	if got := trMiss.Tree().Labels["result_cache"]; got != "miss" {
		t.Fatalf("miss trace label = %q, want miss", got)
	}

	_, trHit, hit, err := lease.ServeGroupBy(true, "product")
	if err != nil || !*hit {
		t.Fatalf("warm traced read: hit=%v err=%v", *hit, err)
	}
	if trHit.Ops() != 0 || trHit.CellsRead() != 0 {
		t.Fatalf("hit trace cost ops=%d cells=%d, want zero", trHit.Ops(), trHit.CellsRead())
	}
	if got := trHit.Tree().Labels["result_cache"]; got != "hit" {
		t.Fatalf("hit trace label = %q, want hit", got)
	}
	if !strings.HasPrefix(trHit.Tree().Name, "groupby") {
		t.Fatalf("hit trace name %q", trHit.Tree().Name)
	}
}

// TestLifecycleInvalidatesResultCache: rebuild and explicit invalidation
// both drop cached answers.
func TestLifecycleInvalidatesResultCache(t *testing.T) {
	reg, h := cachedSalesRegistry(t)
	lease := acquire(t, reg)
	if _, _, _, err := lease.ServeGroupBy(false, "product"); err != nil {
		t.Fatal(err)
	}
	lease.Release()

	if err := reg.Rebuild("sales"); err != nil {
		t.Fatal(err)
	}
	lease2 := acquire(t, reg)
	if _, _, hit, err := lease2.ServeGroupBy(false, "product"); err != nil || *hit {
		t.Fatalf("post-rebuild read: hit=%v err=%v", *hit, err)
	}
	if n := h.groupBys.Load(); n != 2 {
		t.Fatalf("underlying GroupBy ran %d times, want 2 (rebuild invalidated)", n)
	}

	if err := reg.InvalidateResults(""); err != nil {
		t.Fatal(err)
	}
	if _, _, hit, err := lease2.ServeGroupBy(false, "product"); err != nil || *hit {
		t.Fatalf("post-InvalidateResults read: hit=%v err=%v", *hit, err)
	}
	if err := reg.InvalidateResults("nope"); err == nil {
		t.Fatal("unknown cube must error")
	}
}

// TestUncachedLeaseServesDirect: without EnableResultCache the Serve*
// methods are a transparent pass-through reporting no cache participation.
func TestUncachedLeaseServesDirect(t *testing.T) {
	reg := salesRegistry(t)
	lease := acquire(t, reg)
	if lease.Cached() {
		t.Fatal("no cache was enabled")
	}
	g, tr, hit, err := lease.ServeGroupBy(false, "product")
	if err != nil || hit != nil || tr != nil {
		t.Fatalf("uncached read: hit=%v tr=%v err=%v", hit, tr, err)
	}
	if g["ale"] != 17 {
		t.Fatalf("groups %v", g)
	}
	if st := lease.ResultCacheStats(); st != (rescache.Stats{}) {
		t.Fatalf("uncached stats = %+v", st)
	}
}
