package catalog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"viewcube"
)

// NewSafeHandle wraps a SafeEngine (and the cube it serves) as a
// CubeHandle. The SafeEngine already provides the read/write split, so the
// handle adds no locking of its own.
func NewSafeHandle(cube *viewcube.Cube, eng *viewcube.SafeEngine) CubeHandle {
	return &safeHandle{cube: cube, eng: eng}
}

type safeHandle struct {
	cube *viewcube.Cube
	eng  *viewcube.SafeEngine
}

func (h *safeHandle) Info() Info {
	return Info{
		Dimensions: h.cube.Dimensions(),
		Shape:      h.cube.Shape(),
		Volume:     h.cube.Volume(),
		Measure:    h.cube.Measure(),
	}
}

func (h *safeHandle) Query(sql string) (*viewcube.QueryResult, error) { return h.eng.Query(sql) }

func (h *safeHandle) TraceQuery(sql string) (*viewcube.QueryResult, *viewcube.QueryTrace, error) {
	return h.eng.TraceQuery(sql)
}

func (h *safeHandle) GroupBy(keep ...string) (map[string]float64, error) {
	v, err := h.eng.GroupBy(keep...)
	if err != nil {
		return nil, err
	}
	return v.Groups()
}

func (h *safeHandle) TraceGroupBy(keep ...string) (map[string]float64, *viewcube.QueryTrace, error) {
	v, tr, err := h.eng.TraceGroupBy(keep...)
	if err != nil {
		return nil, nil, err
	}
	groups, err := v.Groups()
	if err != nil {
		return nil, nil, err
	}
	return groups, tr, nil
}

func (h *safeHandle) RangeSum(ranges map[string]viewcube.ValueRange) (float64, error) {
	return h.eng.RangeSum(ranges)
}

func (h *safeHandle) TraceRangeSum(ranges map[string]viewcube.ValueRange) (float64, *viewcube.QueryTrace, error) {
	return h.eng.TraceRangeSum(ranges)
}

func (h *safeHandle) UpdateValue(delta float64, values map[string]string) error {
	return h.eng.UpdateValue(delta, values)
}

func (h *safeHandle) Optimize(views []HotView) error {
	w, err := buildWorkload(h.cube, views)
	if err != nil {
		return err
	}
	return h.eng.Optimize(w)
}

func (h *safeHandle) ExplainGroupBy(keep ...string) (string, error) {
	return h.eng.ExplainGroupBy(keep...)
}

func (h *safeHandle) Stats() Stats {
	return Stats{
		Engine:               h.eng.Stats(),
		Store:                h.eng.StoreStats(),
		PlanCache:            h.eng.PlanCacheStats(),
		MaterializedElements: h.eng.MaterializedElements(),
		StorageCells:         h.eng.StorageCells(),
	}
}

func (h *safeHandle) PlanCacheStats() viewcube.PlanCacheStats { return h.eng.PlanCacheStats() }

func (h *safeHandle) Metrics() *viewcube.Metrics { return h.eng.Metrics() }

// EnableIngest switches the handle's SafeEngine to the streaming write
// path; see SafeEngine.EnableIngest.
func (h *safeHandle) EnableIngest(opts viewcube.IngestOptions) error {
	return h.eng.EnableIngest(opts)
}

func (h *safeHandle) IngestEnabled() bool { return h.eng.IngestEnabled() }

// IngestValue delegates to UpdateValue, which routes through the ingest
// buffer whenever the streaming path is enabled and degrades to the locked
// write otherwise.
func (h *safeHandle) IngestValue(delta float64, values map[string]string) error {
	return h.eng.UpdateValue(delta, values)
}

func (h *safeHandle) FlushIngest() error { return h.eng.Flush() }

func (h *safeHandle) IngestStats() viewcube.IngestStats { return h.eng.IngestStats() }

func (h *safeHandle) CloseIngest() error {
	if !h.eng.IngestEnabled() {
		return nil
	}
	return h.eng.DisableIngest()
}

// NewAggHandle wraps a measure-vector AggEngine as a CubeHandle. AggEngine
// is not internally synchronised, so the handle serialises every call on
// one mutex — correct first; the scalar SafeEngine path stays the
// concurrent fast path.
func NewAggHandle(eng *viewcube.AggEngine) CubeHandle {
	return &aggHandle{eng: eng}
}

type aggHandle struct {
	mu  sync.Mutex
	eng *viewcube.AggEngine
	ing atomic.Pointer[viewcube.AggIngest]
}

func (h *aggHandle) Info() Info {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.eng.Cube()
	return Info{
		Dimensions: c.Dimensions(),
		Shape:      c.Shape(),
		Volume:     c.Volume(),
		Measure:    c.Measure(),
	}
}

func (h *aggHandle) Query(sql string) (*viewcube.QueryResult, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.Query(sql)
}

// TraceQuery answers the query untraced (the vector SQL path has no traced
// variant); callers treat a nil trace as "not traced".
func (h *aggHandle) TraceQuery(sql string) (*viewcube.QueryResult, *viewcube.QueryTrace, error) {
	res, err := h.Query(sql)
	return res, nil, err
}

func (h *aggHandle) GroupBy(keep ...string) (map[string]float64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.GroupByAgg(viewcube.AggSum, keep...)
}

func (h *aggHandle) TraceGroupBy(keep ...string) (map[string]float64, *viewcube.QueryTrace, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.TraceGroupByAgg(viewcube.AggSum, keep...)
}

func (h *aggHandle) RangeSum(ranges map[string]viewcube.ValueRange) (float64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.RangeAgg(viewcube.AggSum, ranges)
}

func (h *aggHandle) TraceRangeSum(ranges map[string]viewcube.ValueRange) (float64, *viewcube.QueryTrace, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.TraceRangeAgg(viewcube.AggSum, ranges)
}

func (h *aggHandle) UpdateValue(delta float64, values map[string]string) error {
	if ai := h.ing.Load(); ai != nil {
		return ai.IngestValue(delta, values)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.UpdateValue(delta, values)
}

func (h *aggHandle) Optimize(views []HotView) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	w, err := buildWorkload(h.eng.Cube(), views)
	if err != nil {
		return err
	}
	return h.eng.Optimize(w)
}

func (h *aggHandle) ExplainGroupBy(keep ...string) (string, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.eng.ExplainAgg(viewcube.AggSum, keep...)
}

func (h *aggHandle) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Stats{
		Engine:               h.eng.Stats(),
		Store:                h.eng.SumEngine().StoreStats(),
		PlanCache:            h.eng.SumEngine().PlanCacheStats(),
		MaterializedElements: h.eng.MaterializedElements(),
		StorageCells:         h.eng.StorageCells(),
	}
}

func (h *aggHandle) PlanCacheStats() viewcube.PlanCacheStats {
	h.mu.Lock()
	st := h.eng.SumEngine().PlanCacheStats()
	h.mu.Unlock()
	if ai := h.ing.Load(); ai != nil {
		st.Snapshot = ai.Batches()
	}
	return st
}

func (h *aggHandle) Metrics() *viewcube.Metrics {
	return h.eng.SumEngine().Metrics()
}

// EnableIngest starts the batched streaming write path over the vector
// engine: observations coalesce in a buffer and a background merger folds
// them in under the handle's own mutex, one invalidation per batch.
func (h *aggHandle) EnableIngest(opts viewcube.IngestOptions) error {
	if h.ing.Load() != nil {
		return fmt.Errorf("catalog: ingest already enabled")
	}
	ai, err := viewcube.NewAggIngest(h.eng, &h.mu, opts)
	if err != nil {
		return err
	}
	if !h.ing.CompareAndSwap(nil, ai) {
		ai.Close()
		return fmt.Errorf("catalog: ingest already enabled")
	}
	return nil
}

func (h *aggHandle) IngestEnabled() bool { return h.ing.Load() != nil }

func (h *aggHandle) IngestValue(delta float64, values map[string]string) error {
	return h.UpdateValue(delta, values)
}

func (h *aggHandle) FlushIngest() error {
	if ai := h.ing.Load(); ai != nil {
		return ai.Flush()
	}
	return nil
}

func (h *aggHandle) IngestStats() viewcube.IngestStats {
	if ai := h.ing.Load(); ai != nil {
		return ai.Stats()
	}
	return viewcube.IngestStats{}
}

func (h *aggHandle) CloseIngest() error {
	if ai := h.ing.Swap(nil); ai != nil {
		return ai.Close()
	}
	return nil
}

// NewPartitionedHandle wraps a sharded PartitionedEngine as a CubeHandle.
// Distributive reads (GroupBy, RangeSum) fan out to the shards; SQL,
// updates and explains are not distributive across shard encodings and
// fail with ErrUnsupported. Shape/Volume are per-shard properties and are
// left zero in Info.
func NewPartitionedHandle(eng *viewcube.PartitionedEngine) CubeHandle {
	return &partitionedHandle{eng: eng}
}

type partitionedHandle struct {
	eng *viewcube.PartitionedEngine
}

func (h *partitionedHandle) Info() Info {
	return Info{
		Dimensions: h.eng.Dimensions(),
		Measure:    h.eng.Measure(),
	}
}

func (h *partitionedHandle) Query(string) (*viewcube.QueryResult, error) {
	return nil, fmt.Errorf("sql over a partitioned cube: %w", ErrUnsupported)
}

func (h *partitionedHandle) TraceQuery(sql string) (*viewcube.QueryResult, *viewcube.QueryTrace, error) {
	res, err := h.Query(sql)
	return res, nil, err
}

func (h *partitionedHandle) GroupBy(keep ...string) (map[string]float64, error) {
	return h.eng.GroupBy(keep...)
}

func (h *partitionedHandle) TraceGroupBy(keep ...string) (map[string]float64, *viewcube.QueryTrace, error) {
	groups, err := h.eng.GroupBy(keep...)
	return groups, nil, err
}

func (h *partitionedHandle) RangeSum(ranges map[string]viewcube.ValueRange) (float64, error) {
	return h.eng.RangeSum(ranges)
}

func (h *partitionedHandle) TraceRangeSum(ranges map[string]viewcube.ValueRange) (float64, *viewcube.QueryTrace, error) {
	sum, err := h.eng.RangeSum(ranges)
	return sum, nil, err
}

func (h *partitionedHandle) UpdateValue(float64, map[string]string) error {
	return fmt.Errorf("update over a partitioned cube: %w", ErrUnsupported)
}

func (h *partitionedHandle) Optimize(views []HotView) error {
	keeps := make([][]string, len(views))
	freqs := make([]float64, len(views))
	for i, v := range views {
		keeps[i] = v.Keep
		freqs[i] = v.Freq
	}
	return h.eng.Optimize(keeps, freqs)
}

func (h *partitionedHandle) ExplainGroupBy(...string) (string, error) {
	return "", fmt.Errorf("explain over a partitioned cube: %w", ErrUnsupported)
}

func (h *partitionedHandle) Stats() Stats {
	s := Stats{PlanCache: h.eng.PlanCacheStats()}
	for i := 0; i < h.eng.Shards(); i++ {
		sh := h.eng.Shard(i)
		s.MaterializedElements += sh.MaterializedElements()
		s.StorageCells += sh.StorageCells()
	}
	return s
}

func (h *partitionedHandle) PlanCacheStats() viewcube.PlanCacheStats {
	return h.eng.PlanCacheStats()
}

func (h *partitionedHandle) Metrics() *viewcube.Metrics {
	return h.eng.Shard(0).Metrics()
}

// buildWorkload converts the serializable hot-view form into an engine
// Workload against a concrete cube.
func buildWorkload(c *viewcube.Cube, views []HotView) (*viewcube.Workload, error) {
	w := c.NewWorkload()
	for _, hv := range views {
		if err := w.AddViewKeeping(hv.Freq, hv.Keep...); err != nil {
			return nil, fmt.Errorf("%w: %w", ErrInvalidWorkload, err)
		}
	}
	return w, nil
}
