package catalog

// Catalog hot-reload: diffing two catalog files and applying adds, drops,
// spec changes and view changes through the normal lifecycle operations,
// plus the file watcher that drives it.

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"viewcube/internal/rescache"
)

const beerCSV = `product,region,day,sales
stout,north,d1,8
stout,south,d1,6
porter,north,d2,4
`

// reloadFixture writes the CSVs and returns (dir, initial file). The
// initial catalog declares cubes "alpha" (default) and "beta" with one
// aliasing view on alpha.
func reloadFixture(t *testing.T) (string, *File) {
	t.Helper()
	dir := t.TempDir()
	for name, csv := range map[string]string{"a.csv": salesCSV, "b.csv": beerCSV} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(csv), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	f := &File{
		Cubes: []CubeSpec{
			{Name: "alpha", CSV: "a.csv", Default: true},
			{Name: "beta", CSV: "b.csv"},
		},
		Views: []ViewSpec{{
			Name: "v", Cube: "alpha",
			Includes: IncludeList{Members: []MemberSpec{{Name: "product", Alias: "item"}, {Name: "region"}}},
		}},
	}
	return dir, f
}

func buildReloadRegistry(t *testing.T, dir string, f *File) *Registry {
	t.Helper()
	reg := NewRegistry()
	reg.EnableResultCache(rescache.Options{})
	if err := f.Build(reg, dir); err != nil {
		t.Fatal(err)
	}
	return reg
}

// cloneFile deep-copies a catalog file through its serialized form.
func cloneFile(t *testing.T, f *File) *File {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func epochOf(t *testing.T, reg *Registry, name string) uint64 {
	t.Helper()
	for _, cs := range reg.Cubes() {
		if cs.Name == name {
			return cs.Epoch
		}
	}
	t.Fatalf("no cube %q in listing", name)
	return 0
}

func TestApplyUpdateAddsDropsRebuilds(t *testing.T) {
	dir, f := reloadFixture(t)
	reg := buildReloadRegistry(t, dir, f)

	// Warm alpha's result cache so the rebuild's invalidation is visible.
	lease, err := reg.Acquire("alpha", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := lease.ServeGroupBy(false, "product"); err != nil {
		t.Fatal(err)
	}
	lease.Release()
	alphaEpoch := epochOf(t, reg, "alpha")

	next := cloneFile(t, f)
	next.Cubes[0].Budget = 1.0                                         // alpha: spec change → rebuild
	next.Cubes = next.Cubes[:1]                                        // beta: dropped
	next.Cubes = append(next.Cubes, CubeSpec{Name: "gamma", Gen: 200}) // gamma: added

	report, err := ApplyUpdate(reg, f, next, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Added) != 1 || report.Added[0] != "gamma" {
		t.Fatalf("added %v, want [gamma]", report.Added)
	}
	if len(report.Dropped) != 1 || report.Dropped[0] != "beta" {
		t.Fatalf("dropped %v, want [beta]", report.Dropped)
	}
	if len(report.Rebuilt) != 1 || report.Rebuilt[0] != "alpha" {
		t.Fatalf("rebuilt %v, want [alpha]", report.Rebuilt)
	}
	if len(report.ViewsChanged) != 0 {
		t.Fatalf("views changed %v, want none", report.ViewsChanged)
	}

	// Alpha swapped generations and its cached answers were dropped.
	if e := epochOf(t, reg, "alpha"); e != alphaEpoch+1 {
		t.Fatalf("alpha epoch %d, want %d", e, alphaEpoch+1)
	}
	lease, err = reg.Acquire("alpha", "v")
	if err != nil {
		t.Fatal(err)
	}
	if st := lease.ResultCacheStats(); st.Invalidations == 0 {
		t.Fatalf("alpha result cache not invalidated by rebuild: %+v", st)
	}
	groups, _, _, err := lease.ServeGroupBy(false, "product")
	if err != nil {
		t.Fatal(err)
	}
	if groups["ale"] != 17 {
		t.Fatalf("post-reload alpha groups %v", groups)
	}
	lease.Release()

	// Beta drained to unloaded; gamma serves.
	if _, err := reg.Acquire("beta", ""); !errors.Is(err, ErrCubeUnloaded) {
		t.Fatalf("beta acquire: %v, want ErrCubeUnloaded", err)
	}
	lease, err = reg.Acquire("gamma", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lease.Handle.GroupBy("product"); err != nil {
		t.Fatal(err)
	}
	lease.Release()

	// A later reload re-adds beta: the parked entry loads again.
	next2 := cloneFile(t, next)
	next2.Cubes = append(next2.Cubes, CubeSpec{Name: "beta", CSV: "b.csv"})
	report, err = ApplyUpdate(reg, next, next2, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Added) != 1 || report.Added[0] != "beta" {
		t.Fatalf("re-add: added %v, want [beta]", report.Added)
	}
	lease, err = reg.Acquire("beta", "")
	if err != nil {
		t.Fatal(err)
	}
	g, err := lease.Handle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	if g["stout"] != 14 {
		t.Fatalf("beta groups %v", g)
	}
	lease.Release()
}

func TestApplyUpdateViewAndDefaultChanges(t *testing.T) {
	dir, f := reloadFixture(t)
	reg := buildReloadRegistry(t, dir, f)

	next := cloneFile(t, f)
	next.Cubes[0].Default = false
	next.Cubes[1].Default = true
	next.Views[0].Includes.Members[0].Alias = "sku" // product now aliased "sku"

	report, err := ApplyUpdate(reg, f, next, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.ViewsChanged) != 1 || report.ViewsChanged[0] != "alpha" {
		t.Fatalf("views changed %v, want [alpha]", report.ViewsChanged)
	}
	if report.Default != "beta" || reg.Default() != "beta" {
		t.Fatalf("default %q / %q, want beta", report.Default, reg.Default())
	}
	lease, err := reg.Acquire("alpha", "v")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	resolved, err := lease.View.ResolveKeep([]string{"sku"})
	if err != nil {
		t.Fatalf("new alias not served: %v", err)
	}
	if resolved[0] != "product" {
		t.Fatalf("sku resolved to %q", resolved[0])
	}
	if _, err := lease.View.ResolveKeep([]string{"item"}); err == nil {
		t.Fatal("old alias still resolves after view reload")
	}
}

func TestApplyUpdateBadRebuildKeepsServing(t *testing.T) {
	dir, f := reloadFixture(t)
	reg := buildReloadRegistry(t, dir, f)

	next := cloneFile(t, f)
	next.Cubes[0].CSV = "missing.csv" // alpha's new source does not exist

	report, err := ApplyUpdate(reg, f, next, dir)
	if err == nil {
		t.Fatal("expected an error for a missing csv")
	}
	if len(report.Rebuilt) != 0 {
		t.Fatalf("rebuilt %v despite failed build", report.Rebuilt)
	}
	// The old generation keeps serving.
	lease, err := reg.Acquire("alpha", "")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	g, err := lease.Handle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	if g["ale"] != 17 {
		t.Fatalf("groups %v", g)
	}
}

func TestReloaderWatchesFile(t *testing.T) {
	dir, f := reloadFixture(t)
	path := filepath.Join(dir, "catalog.json")
	raw, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	reg := buildReloadRegistry(t, dir, f)
	rl := NewReloader(reg, path, f, raw)

	// Unchanged file: no-op.
	report, err := rl.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report != nil {
		t.Fatalf("unchanged file produced a report: %+v", report)
	}

	// Touch without content change: still a no-op (byte comparison).
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	if report, err = rl.Check(); err != nil || report != nil {
		t.Fatalf("touched file: report %+v err %v", report, err)
	}

	// A parse failure leaves the catalog serving and reports the error.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	forceMtime(t, path)
	if _, err := rl.Check(); err == nil {
		t.Fatal("invalid catalog file did not report an error")
	}
	if _, err := reg.Acquire("alpha", ""); err != nil {
		t.Fatalf("catalog stopped serving after a bad reload file: %v", err)
	}

	// A real edit applies: gamma appears.
	next := cloneFile(t, f)
	next.Cubes = append(next.Cubes, CubeSpec{Name: "gamma", Gen: 150})
	nraw, err := json.Marshal(next)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, nraw, 0o644); err != nil {
		t.Fatal(err)
	}
	forceMtime(t, path)
	report, err = rl.Check()
	if err != nil {
		t.Fatal(err)
	}
	if report == nil || len(report.Added) != 1 || report.Added[0] != "gamma" {
		t.Fatalf("reload report %+v, want gamma added", report)
	}
	lease, err := reg.Acquire("gamma", "")
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()

	// And the applied state is the new baseline: re-checking is a no-op.
	if report, err = rl.Check(); err != nil || report != nil {
		t.Fatalf("post-apply check: report %+v err %v", report, err)
	}
}

// forceMtime bumps a file's mtime well past any previous observation, so
// coarse filesystem timestamp granularity cannot hide an edit from the
// poller.
func forceMtime(t *testing.T, path string) {
	t.Helper()
	future := time.Now().Add(10 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
}
