package catalog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"viewcube"
	"viewcube/internal/workload"
)

// CubeSpec declares one cube of a catalog file: where its relation comes
// from (a CSV file or a synthetic generator) and how its engine is tuned.
// The spec is kept as the cube's builder, so POST /cubes/{name}/rebuild
// re-reads the CSV — a catalog cube reloads from its source of truth.
type CubeSpec struct {
	Name string `json:"name"`
	// CSV names the relation file; relative paths resolve against the
	// catalog file's directory.
	CSV string `json:"csv,omitempty"`
	// Measure is the CSV measure column (default "sales").
	Measure string `json:"measure,omitempty"`
	// Gen, when positive, generates this many synthetic sales rows instead
	// of reading CSV.
	Gen  int   `json:"gen,omitempty"`
	Seed int64 `json:"seed,omitempty"`
	// Budget is the storage budget as a multiple of the cube volume
	// (0 keeps only the non-redundant basis).
	Budget float64 `json:"budget,omitempty"`
	// Reselect adapts the materialised set every N queries (0 = off).
	Reselect int `json:"reselect,omitempty"`
	// Default marks the cube legacy single-cube routes resolve to; at most
	// one cube may set it (otherwise the first cube is the default).
	Default bool `json:"default,omitempty"`
}

// File is a parsed catalog file: the declarative form of a multi-cube
// deployment — cubes plus the views curated over them.
type File struct {
	Cubes []CubeSpec `json:"cubes"`
	Views []ViewSpec `json:"views,omitempty"`
}

// Parse decodes and structurally validates a catalog document: every cube
// named and sourced, names unique, at most one default, every view naming
// a declared cube. Schema-level view validation (do the members exist?)
// happens against the built cubes in Build.
func Parse(data []byte) (*File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	if len(f.Cubes) == 0 {
		return nil, fmt.Errorf("catalog: no cubes declared")
	}
	names := make(map[string]bool, len(f.Cubes))
	def := ""
	for i, c := range f.Cubes {
		if c.Name == "" {
			return nil, fmt.Errorf("catalog: cube %d has no name", i)
		}
		if names[c.Name] {
			return nil, fmt.Errorf("catalog: duplicate cube %q", c.Name)
		}
		names[c.Name] = true
		if c.CSV == "" && c.Gen <= 0 {
			return nil, fmt.Errorf("catalog: cube %q needs a csv path or gen > 0", c.Name)
		}
		if c.CSV != "" && c.Gen > 0 {
			return nil, fmt.Errorf("catalog: cube %q declares both csv and gen", c.Name)
		}
		if c.Default {
			if def != "" {
				return nil, fmt.Errorf("catalog: cubes %q and %q both claim default", def, c.Name)
			}
			def = c.Name
		}
	}
	viewNames := make(map[string]bool)
	for i, v := range f.Views {
		if v.Name == "" {
			return nil, fmt.Errorf("catalog: view %d has no name", i)
		}
		if !names[v.Cube] {
			return nil, fmt.Errorf("catalog: view %q names undeclared cube %q", v.Name, v.Cube)
		}
		key := v.Cube + "/" + v.Name
		if viewNames[key] {
			return nil, fmt.Errorf("catalog: duplicate view %q on cube %q", v.Name, v.Cube)
		}
		viewNames[key] = true
	}
	return &f, nil
}

// LoadFile reads and parses a catalog file.
func LoadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: %w", err)
	}
	f, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("catalog: %s: %w", path, err)
	}
	return f, nil
}

// Build registers every declared cube and view into the registry, building
// each cube's engine now. Relative CSV paths resolve against baseDir
// (typically the catalog file's directory). Views compile against the
// freshly built schemas, so a catalog typo fails here, before serving
// starts.
func (f *File) Build(reg *Registry, baseDir string) error {
	for _, spec := range f.Cubes {
		if err := reg.Register(spec.Name, f.builder(reg, spec, baseDir)); err != nil {
			return err
		}
		if spec.Default {
			if err := reg.SetDefault(spec.Name); err != nil {
				return err
			}
		}
	}
	for _, v := range f.Views {
		if err := reg.RegisterView(v); err != nil {
			return err
		}
	}
	return nil
}

// builder closes over one cube spec: each call re-reads the source (CSV or
// generator) and builds a fresh engine over the registry's per-cube
// metrics, so rebuild picks up new data without disturbing other cubes.
func (f *File) builder(reg *Registry, spec CubeSpec, baseDir string) Builder {
	return func() (CubeHandle, error) {
		cube, err := buildCube(spec, baseDir)
		if err != nil {
			return nil, err
		}
		eng, err := cube.NewEngine(viewcube.EngineOptions{
			StorageBudget: int(spec.Budget * float64(cube.Volume())),
			ReselectEvery: spec.Reselect,
			Metrics:       reg.CubeMetrics(spec.Name),
		})
		if err != nil {
			return nil, err
		}
		return NewSafeHandle(cube, eng.Safe()), nil
	}
}

func buildCube(spec CubeSpec, baseDir string) (*viewcube.Cube, error) {
	if spec.Gen > 0 {
		seed := spec.Seed
		if seed == 0 {
			seed = 1
		}
		tbl, err := workload.SalesTable(rand.New(rand.NewSource(seed)), 50, 8, 60, spec.Gen)
		if err != nil {
			return nil, err
		}
		return viewcube.FromTable(tbl)
	}
	path := spec.CSV
	if !filepath.IsAbs(path) && baseDir != "" {
		path = filepath.Join(baseDir, path)
	}
	r, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: cube %q: %w", spec.Name, err)
	}
	defer r.Close()
	measure := spec.Measure
	if measure == "" {
		measure = "sales"
	}
	cube, err := viewcube.Load(r, measure)
	if err != nil {
		return nil, fmt.Errorf("catalog: cube %q: %w", spec.Name, err)
	}
	return cube, nil
}
