package catalog

import (
	"sort"
	"strings"

	"viewcube"
	"viewcube/internal/rescache"
)

// This file is the catalog's cached read path: Lease.ServeGroupBy /
// ServeRangeSum / ServeQuery answer through the entry's result cache when
// the registry has one enabled (EnableResultCache), falling back to the
// handle directly otherwise. Both serving faces — the HTTP server's
// handlers and cubectl's catalog shell — route reads through these methods
// so they share one caching discipline.
//
// Keys are formed from the *resolved* query shape (after view aliases
// rewrite to underlying dimension names), so every view over a cube shares
// one entry per underlying query; responses are re-rendered per view by the
// caller, which never mutates the cached value.
//
// Invalidation is two-tier, mirroring the plan cache's epoch discipline:
// the registry's lifecycle operations (Load/Unload/Rebuild, and catalog
// hot-reload on top of them) invalidate explicitly on generation changes,
// and every read first syncs the cache against the handle's plan-cache
// epoch — which Update/Optimize/Reconfigure already bump under the engine's
// write lock — so in-generation mutations invalidate without the write path
// knowing this cache exists.

// Answer is the cached result of one read: exactly one field is populated,
// per the query kind. Cached answers are shared across callers and must be
// treated as read-only.
type Answer struct {
	Groups map[string]float64
	Sum    float64
	Result *viewcube.QueryResult
}

// AnswerSize estimates an Answer's resident footprint in bytes for the
// cache's byte bound. It intentionally over-counts per-entry map and slice
// overheads rather than under-counting payloads.
func AnswerSize(a Answer) int {
	n := 64
	for k := range a.Groups {
		n += len(k) + 48 // key bytes + map bucket + float64
	}
	if a.Result != nil {
		for _, c := range a.Result.Columns {
			n += len(c) + 16
		}
		for _, r := range a.Result.Rows {
			n += 48
			for _, k := range r.Key {
				n += len(k) + 16
			}
			n += 8 * len(r.Values)
		}
	}
	return n
}

// answerCache instantiates the generic cache at the catalog's answer type.
type answerCache = rescache.Cache[Answer]

// newAnswerCache builds an entry's cache: the caller's bounds plus the
// Answer sizer.
func newAnswerCache(opt rescache.Options) *answerCache {
	opt.Size = func(v any) int { return AnswerSize(v.(Answer)) }
	return rescache.New[Answer](opt)
}

// groupByKey is the canonical cache key of a resolved group-by.
func groupByKey(resolved []string) string {
	return "groupby\x00" + strings.Join(resolved, ",")
}

// rangeKey renders resolved ranges canonically (dimensions sorted).
func rangeKey(resolved map[string]viewcube.ValueRange) string {
	dims := make([]string, 0, len(resolved))
	for dim := range resolved {
		dims = append(dims, dim)
	}
	sort.Strings(dims)
	var b strings.Builder
	b.WriteString("range")
	for _, dim := range dims {
		r := resolved[dim]
		b.WriteByte(0)
		b.WriteString(dim)
		b.WriteByte(0)
		b.WriteString(r.Lo)
		b.WriteByte(0)
		b.WriteString(r.Hi)
	}
	return b.String()
}

// sync aligns the cache's epoch with the handle's combined data version:
// the plan-cache epoch (bumped by update/optimize/reconfigure under the
// engine's write lock) plus the ingest snapshot epoch (bumped by every
// published merge). Both counters are monotone, so their sum is too — any
// in-generation mutation, locked or streamed, invalidates answers without
// the write path knowing this cache exists.
func (l *Lease) sync() {
	st := l.Handle.PlanCacheStats()
	l.cache.SyncUpstream(st.Epoch + st.Snapshot)
}

// Cached reports whether this lease serves through a result cache.
func (l *Lease) Cached() bool { return l.cache != nil }

// ResultCacheStats snapshots the entry's result-cache counters (zero value
// when no cache is enabled).
func (l *Lease) ResultCacheStats() rescache.Stats { return l.cache.Stats() }

// ServeGroupBy answers a group-by over the resolved (underlying-name) keep
// list through the result cache. hit is nil when no cache is enabled,
// otherwise whether the underlying query was skipped. When traced, the
// returned trace is the real execution tree on a computing miss (labelled
// result_cache=miss), or a zero-op CacheHitTrace on a hit or coalesced
// wait. The returned map is shared with the cache: read-only.
func (l *Lease) ServeGroupBy(traced bool, resolved ...string) (map[string]float64, *viewcube.QueryTrace, *bool, error) {
	if l.cache == nil {
		if traced {
			g, tr, err := l.Handle.TraceGroupBy(resolved...)
			return g, tr, nil, err
		}
		g, err := l.Handle.GroupBy(resolved...)
		return g, nil, nil, err
	}
	l.sync()
	var tr *viewcube.QueryTrace
	ans, hit, err := l.cache.GetOrCompute(groupByKey(resolved), func() (Answer, error) {
		if traced {
			g, t, err := l.Handle.TraceGroupBy(resolved...)
			tr = t // captured out-of-band: traces are per-request, never cached
			return Answer{Groups: g}, err
		}
		g, err := l.Handle.GroupBy(resolved...)
		return Answer{Groups: g}, err
	})
	if err != nil {
		return nil, nil, &hit, err
	}
	if traced {
		tr = l.finishTrace(tr, hit, "groupby "+strings.Join(resolved, ","))
	}
	return ans.Groups, tr, &hit, nil
}

// ServeRangeSum answers a range-SUM over resolved ranges through the result
// cache; semantics as ServeGroupBy.
func (l *Lease) ServeRangeSum(traced bool, resolved map[string]viewcube.ValueRange) (float64, *viewcube.QueryTrace, *bool, error) {
	if l.cache == nil {
		if traced {
			sum, tr, err := l.Handle.TraceRangeSum(resolved)
			return sum, tr, nil, err
		}
		sum, err := l.Handle.RangeSum(resolved)
		return sum, nil, nil, err
	}
	l.sync()
	var tr *viewcube.QueryTrace
	ans, hit, err := l.cache.GetOrCompute(rangeKey(resolved), func() (Answer, error) {
		if traced {
			sum, t, err := l.Handle.TraceRangeSum(resolved)
			tr = t
			return Answer{Sum: sum}, err
		}
		sum, err := l.Handle.RangeSum(resolved)
		return Answer{Sum: sum}, err
	})
	if err != nil {
		return 0, nil, &hit, err
	}
	if traced {
		tr = l.finishTrace(tr, hit, "range")
	}
	return ans.Sum, tr, &hit, nil
}

// ServeQuery answers a rewritten (underlying-name) SQL statement through
// the result cache; semantics as ServeGroupBy. The returned result is
// shared with the cache: read-only.
func (l *Lease) ServeQuery(traced bool, sql string) (*viewcube.QueryResult, *viewcube.QueryTrace, *bool, error) {
	if l.cache == nil {
		if traced {
			res, tr, err := l.Handle.TraceQuery(sql)
			return res, tr, nil, err
		}
		res, err := l.Handle.Query(sql)
		return res, nil, nil, err
	}
	l.sync()
	var tr *viewcube.QueryTrace
	ans, hit, err := l.cache.GetOrCompute("query\x00"+sql, func() (Answer, error) {
		if traced {
			res, t, err := l.Handle.TraceQuery(sql)
			tr = t
			return Answer{Result: res}, err
		}
		res, err := l.Handle.Query(sql)
		return Answer{Result: res}, err
	})
	if err != nil {
		return nil, nil, &hit, err
	}
	if traced {
		tr = l.finishTrace(tr, hit, "query")
	}
	return ans.Result, tr, &hit, nil
}

// finishTrace labels a computing miss's real trace, or substitutes the
// zero-op hit trace when the query was served from cache (or coalesced onto
// another caller's flight, whose trace belongs to that caller).
func (l *Lease) finishTrace(tr *viewcube.QueryTrace, hit bool, name string) *viewcube.QueryTrace {
	if hit || tr == nil {
		return viewcube.CacheHitTrace(name)
	}
	tr.SetLabel("result_cache", "miss")
	return tr
}
