package catalog

import (
	"encoding/json"
	"fmt"
	"sort"

	"viewcube"
	"viewcube/internal/query"
)

// MemberSpec selects one cube member (a dimension) for a view, optionally
// renaming it. In catalog files a member is either a bare string ("region")
// or an object ({"name": "region", "alias": "territory"}).
type MemberSpec struct {
	Name  string `json:"name"`
	Alias string `json:"alias,omitempty"`
}

// UnmarshalJSON accepts both the bare-string and the object form.
func (m *MemberSpec) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		return json.Unmarshal(b, &m.Name)
	}
	type raw MemberSpec
	return json.Unmarshal(b, (*raw)(m))
}

// MarshalJSON renders the compact form when no alias is set.
func (m MemberSpec) MarshalJSON() ([]byte, error) {
	if m.Alias == "" {
		return json.Marshal(m.Name)
	}
	type raw MemberSpec
	return json.Marshal(raw(m))
}

// IncludeList is a view's member selection: either every member ("*") or an
// explicit list of MemberSpecs.
type IncludeList struct {
	Star    bool
	Members []MemberSpec
}

// UnmarshalJSON accepts "*" or a member array.
func (il *IncludeList) UnmarshalJSON(b []byte) error {
	var star string
	if err := json.Unmarshal(b, &star); err == nil {
		if star != "*" {
			return fmt.Errorf(`catalog: includes must be "*" or a member list, got %q`, star)
		}
		il.Star, il.Members = true, nil
		return nil
	}
	il.Star = false
	return json.Unmarshal(b, &il.Members)
}

// MarshalJSON renders "*" or the member array.
func (il IncludeList) MarshalJSON() ([]byte, error) {
	if il.Star {
		return json.Marshal("*")
	}
	return json.Marshal(il.Members)
}

// All is the IncludeList that exposes every member.
func All() IncludeList { return IncludeList{Star: true} }

// Include builds an explicit IncludeList from bare member names.
func Include(names ...string) IncludeList {
	il := IncludeList{Members: make([]MemberSpec, len(names))}
	for i, n := range names {
		il.Members[i] = MemberSpec{Name: n}
	}
	return il
}

// ViewSpec declares one named, consumer-facing view over a cube: which
// members it exposes (includes/excludes/"*"), what they are called
// (aliases) and which measures queries through the view may aggregate
// (empty = all of the cube's measures). Specs are declarative and
// serializable; they compile into a View against a concrete cube schema at
// registration or (re)load time.
type ViewSpec struct {
	Name     string      `json:"name"`
	Cube     string      `json:"cube"`
	Includes IncludeList `json:"includes"`
	Excludes []string    `json:"excludes,omitempty"`
	Measures []string    `json:"measures,omitempty"`
}

// Member is one exposed view member and the cube dimension it resolves to.
type Member struct {
	Name      string `json:"name"`
	Dimension string `json:"dimension"`
}

// View is a compiled ViewSpec: the member map validated against a cube's
// dimensions, ready to rewrite incoming queries. A nil *View resolves
// everything to itself (the raw-cube surface), so serving code calls
// resolution methods unconditionally.
type View struct {
	name     string
	cube     string
	members  map[string]string // exposed name -> underlying dimension
	byDim    map[string]string // underlying dimension -> exposed name
	order    []string          // exposed names, declaration order
	measures map[string]bool   // nil = every measure allowed
	spec     ViewSpec
}

// compileView validates a spec against the cube schema and builds the
// member maps. Every include, exclude and measure must name something the
// cube actually has — a catalog typo fails at load time, not at query time.
func compileView(spec ViewSpec, info Info) (*View, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("catalog: view needs a name")
	}
	dims := make(map[string]bool, len(info.Dimensions))
	for _, d := range info.Dimensions {
		dims[d] = true
	}
	excluded := make(map[string]bool, len(spec.Excludes))
	for _, x := range spec.Excludes {
		if !dims[x] {
			return nil, fmt.Errorf("catalog: view %q excludes unknown dimension %q (cube %q has %v)",
				spec.Name, x, spec.Cube, info.Dimensions)
		}
		excluded[x] = true
	}
	v := &View{
		name:    spec.Name,
		cube:    spec.Cube,
		members: make(map[string]string),
		byDim:   make(map[string]string),
		spec:    spec,
	}
	add := func(exposed, dim string) error {
		if _, dup := v.members[exposed]; dup {
			return fmt.Errorf("catalog: view %q exposes member %q twice", spec.Name, exposed)
		}
		v.members[exposed] = dim
		v.byDim[dim] = exposed
		v.order = append(v.order, exposed)
		return nil
	}
	if spec.Includes.Star {
		for _, d := range info.Dimensions {
			if excluded[d] {
				continue
			}
			if err := add(d, d); err != nil {
				return nil, err
			}
		}
	} else {
		if len(spec.Includes.Members) == 0 {
			return nil, fmt.Errorf(`catalog: view %q includes nothing (use "*" or name members)`, spec.Name)
		}
		for _, m := range spec.Includes.Members {
			if !dims[m.Name] {
				return nil, fmt.Errorf("catalog: view %q includes unknown dimension %q (cube %q has %v)",
					spec.Name, m.Name, spec.Cube, info.Dimensions)
			}
			if excluded[m.Name] {
				continue
			}
			exposed := m.Alias
			if exposed == "" {
				exposed = m.Name
			}
			if err := add(exposed, m.Name); err != nil {
				return nil, err
			}
		}
	}
	if len(v.order) == 0 {
		return nil, fmt.Errorf("catalog: view %q exposes no members after excludes", spec.Name)
	}
	if len(spec.Measures) > 0 {
		v.measures = make(map[string]bool, len(spec.Measures))
		for _, m := range spec.Measures {
			if m != info.Measure || m == "" {
				return nil, fmt.Errorf("catalog: view %q allows unknown measure %q (cube %q measures %q)",
					spec.Name, m, spec.Cube, info.Measure)
			}
			v.measures[m] = true
		}
	}
	return v, nil
}

// Name returns the view name ("" for the nil raw-cube view).
func (v *View) Name() string {
	if v == nil {
		return ""
	}
	return v.name
}

// CubeName returns the name of the cube the view curates.
func (v *View) CubeName() string {
	if v == nil {
		return ""
	}
	return v.cube
}

// Spec returns the declarative spec the view was compiled from.
func (v *View) Spec() ViewSpec {
	if v == nil {
		return ViewSpec{Includes: All()}
	}
	return v.spec
}

// Members lists the exposed members in declaration order.
func (v *View) Members() []Member {
	if v == nil {
		return nil
	}
	out := make([]Member, len(v.order))
	for i, name := range v.order {
		out[i] = Member{Name: name, Dimension: v.members[name]}
	}
	return out
}

// Measures lists the allowed measure names, nil when the view allows all.
func (v *View) Measures() []string {
	if v == nil || v.measures == nil {
		return nil
	}
	out := make([]string, 0, len(v.measures))
	for m := range v.measures {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// ResolveMember maps an exposed member name to its underlying dimension.
// Unknown and excluded members fail with a MemberError (HTTP 404 at the
// serving tier): a view rejects members it does not expose before any
// planning happens. Safe on nil (identity).
func (v *View) ResolveMember(name string) (string, error) {
	if v == nil {
		return name, nil
	}
	if dim, ok := v.members[name]; ok {
		return dim, nil
	}
	return "", &MemberError{View: v.name, Member: name}
}

// ResolveKeep resolves a GROUP BY keep-list through the view.
func (v *View) ResolveKeep(keep []string) ([]string, error) {
	if v == nil {
		return keep, nil
	}
	out := make([]string, len(keep))
	for i, k := range keep {
		dim, err := v.ResolveMember(k)
		if err != nil {
			return nil, err
		}
		out[i] = dim
	}
	return out, nil
}

// ResolveRanges resolves the dimension keys of a range query through the
// view.
func (v *View) ResolveRanges(ranges map[string]viewcube.ValueRange) (map[string]viewcube.ValueRange, error) {
	if v == nil {
		return ranges, nil
	}
	out := make(map[string]viewcube.ValueRange, len(ranges))
	for k, r := range ranges {
		dim, err := v.ResolveMember(k)
		if err != nil {
			return nil, err
		}
		out[dim] = r
	}
	return out, nil
}

// ResolveMeasure checks an aggregate's measure argument against the view's
// allowed-measure set. COUNT(*) is always allowed. Safe on nil.
func (v *View) ResolveMeasure(name string) error {
	if v == nil || name == "*" || v.measures == nil {
		return nil
	}
	if !v.measures[name] {
		return &MemberError{View: v.name, Member: name, Measure: true}
	}
	return nil
}

// RewriteSQL parses a SELECT statement, resolves every dimension reference
// (GROUP BY and WHERE) and measure argument through the view, and renders
// the rewritten statement for the engine. Member errors surface before the
// engine ever sees the query.
func (v *View) RewriteSQL(sql string) (string, error) {
	if v == nil {
		return sql, nil
	}
	q, err := query.Parse(sql)
	if err != nil {
		return "", err
	}
	for _, a := range q.Aggregates {
		if err := v.ResolveMeasure(a.Arg); err != nil {
			return "", err
		}
	}
	for i, g := range q.GroupBy {
		dim, err := v.ResolveMember(g)
		if err != nil {
			return "", err
		}
		q.GroupBy[i] = dim
	}
	for i := range q.Where {
		dim, err := v.ResolveMember(q.Where[i].Dim)
		if err != nil {
			return "", err
		}
		q.Where[i].Dim = dim
	}
	return q.String(), nil
}

// ExposedName maps an underlying dimension back to the name the view
// exposes it under (for rewriting result columns); ok=false when the view
// hides the dimension. Safe on nil (identity).
func (v *View) ExposedName(dim string) (string, bool) {
	if v == nil {
		return dim, true
	}
	exposed, ok := v.byDim[dim]
	return exposed, ok
}

// RewriteColumns maps result column names (underlying dimensions plus
// aggregate labels) back to the view's exposed member names. Columns that
// are not dimensions (aggregate labels such as "SUM(sales)") pass through.
// Safe on nil (identity).
func (v *View) RewriteColumns(cols []string) []string {
	if v == nil {
		return cols
	}
	out := make([]string, len(cols))
	for i, c := range cols {
		if exposed, ok := v.byDim[c]; ok {
			out[i] = exposed
		} else {
			out[i] = c
		}
	}
	return out
}
