// Package catalog is the multi-cube semantic layer: a concurrency-safe
// registry of named cubes behind one CubeHandle interface, plus declarative
// consumer-facing views (includes/excludes/aliases/allowed measures) that
// rewrite queries before they reach an engine.
//
// A Registry entry moves through a small lifecycle:
//
//	serving ──unload──▶ unloading ──drain──▶ unloaded ──load──▶ serving
//	serving ──rebuild (old handle keeps serving until the new one swaps in)
//
// Queries hold a Lease (a refcount on the entry) for their whole execution;
// Unload flips the entry to unloading — new acquires fail with ErrCubeBusy
// (HTTP 409) — and blocks until every outstanding lease is released, so an
// in-flight query can never observe its cube disappearing. Rebuild
// constructs the replacement handle first and swaps it in atomically:
// readers drain onto the old handle, new readers get the new one, and the
// entry's epoch advances so clients can tell generations apart.
package catalog

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"viewcube"
	"viewcube/internal/obs"
	"viewcube/internal/rescache"
)

// Sentinel errors the serving tier maps onto HTTP statuses.
var (
	// ErrUnknownCube: no entry with that name was ever registered (404).
	ErrUnknownCube = errors.New("unknown cube")
	// ErrUnknownView: the cube has no view with that name (404).
	ErrUnknownView = errors.New("unknown view")
	// ErrUnknownMember: a view rejected a member or measure (404).
	ErrUnknownMember = errors.New("unknown member")
	// ErrCubeUnloaded: the entry exists but is not serving (404).
	ErrCubeUnloaded = errors.New("cube is unloaded")
	// ErrCubeBusy: a lifecycle transition is in progress (409).
	ErrCubeBusy = errors.New("cube lifecycle operation in progress")
	// ErrUnsupported: this handle kind cannot perform the operation (400).
	ErrUnsupported = errors.New("operation not supported by this cube")
	// ErrInvalidWorkload: an Optimize hot-view list failed validation
	// against the cube schema (400, as opposed to a 500 engine failure).
	ErrInvalidWorkload = errors.New("invalid workload")
)

// MemberError reports a member (or measure) a view does not expose —
// whether it never existed or was excluded is deliberately not revealed to
// the caller, exactly like a row-level-security layer.
type MemberError struct {
	View    string
	Member  string
	Measure bool
}

func (e *MemberError) Error() string {
	kind := "member"
	if e.Measure {
		kind = "measure"
	}
	return fmt.Sprintf("view %q has no %s %q", e.View, kind, e.Member)
}

// Unwrap lets errors.Is(err, ErrUnknownMember) match.
func (e *MemberError) Unwrap() error { return ErrUnknownMember }

// Info describes a cube handle's schema.
type Info struct {
	Dimensions []string `json:"dimensions"`
	Shape      []int    `json:"shape"`
	Volume     int      `json:"volume"`
	Measure    string   `json:"measure"`
}

// HotView is one anticipated-view entry of an Optimize workload.
type HotView struct {
	Keep []string `json:"keep"`
	Freq float64  `json:"freq"`
}

// Stats is the uniform statistics snapshot a handle reports.
type Stats struct {
	Engine               viewcube.Stats
	Store                viewcube.StoreStats
	PlanCache            viewcube.PlanCacheStats
	MaterializedElements int
	StorageCells         int
}

// CubeHandle is the uniform serving surface of one catalog entry,
// implemented over a SafeEngine, an AggEngine or a PartitionedEngine.
// Handles must be safe for concurrent use; operations a backing engine
// cannot perform fail with ErrUnsupported.
type CubeHandle interface {
	Info() Info
	Query(sql string) (*viewcube.QueryResult, error)
	TraceQuery(sql string) (*viewcube.QueryResult, *viewcube.QueryTrace, error)
	GroupBy(keep ...string) (map[string]float64, error)
	TraceGroupBy(keep ...string) (map[string]float64, *viewcube.QueryTrace, error)
	RangeSum(ranges map[string]viewcube.ValueRange) (float64, error)
	TraceRangeSum(ranges map[string]viewcube.ValueRange) (float64, *viewcube.QueryTrace, error)
	UpdateValue(delta float64, values map[string]string) error
	Optimize(views []HotView) error
	ExplainGroupBy(keep ...string) (string, error)
	Stats() Stats
	// PlanCacheStats is the cheap subset of Stats the per-query logging
	// path reads; it must not aggregate store statistics.
	PlanCacheStats() viewcube.PlanCacheStats
	Metrics() *viewcube.Metrics
}

// Ingester is the optional streaming-write face of a CubeHandle: handles
// whose engine has a batched ingest path (WAL-buffered deltas folded in by
// a background merger) implement it. The serving tier type-asserts — a
// handle without it falls back to the synchronous UpdateValue path.
type Ingester interface {
	// IngestEnabled reports whether the streaming path is active; when
	// false IngestValue degrades to the locked write path.
	IngestEnabled() bool
	// IngestValue acknowledges one delta addressed by dimension values;
	// visibility comes at the next merge.
	IngestValue(delta float64, values map[string]string) error
	// FlushIngest blocks until every previously acknowledged delta is
	// queryable.
	FlushIngest() error
	// IngestStats snapshots the streaming path's counters.
	IngestStats() viewcube.IngestStats
}

// IngestCloser is the lifecycle hook the registry uses to stop a handle's
// ingest machinery (merger goroutine, WAL handle) when the handle leaves
// service via Unload or is replaced by Rebuild.
type IngestCloser interface {
	CloseIngest() error
}

// Builder constructs (or reconstructs) a cube handle. The registry keeps
// the builder so POST /cubes/{name}/load and /rebuild can re-run it.
type Builder func() (CubeHandle, error)

// State names a catalog entry's lifecycle position.
type State int

const (
	// StateServing: the handle answers queries.
	StateServing State = iota
	// StateLoading: a Load is building the handle; acquires fail busy.
	StateLoading
	// StateUnloading: an Unload is draining in-flight leases.
	StateUnloading
	// StateUnloaded: no handle; the builder is retained for Load.
	StateUnloaded
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateLoading:
		return "loading"
	case StateUnloading:
		return "unloading"
	case StateUnloaded:
		return "unloaded"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// entry is one named cube in the registry. All fields are guarded by the
// registry mutex; cond signals refs reaching zero during a drain.
type entry struct {
	name       string
	build      Builder
	state      State
	rebuilding bool
	handle     CubeHandle
	epoch      uint64
	refs       int
	cond       *sync.Cond
	views      map[string]*View
	viewOrder  []string
	viewSpecs  map[string]ViewSpec
	// rcache is the entry's answer cache (nil unless EnableResultCache).
	// Lifecycle transitions invalidate it; leases read through it.
	rcache *answerCache
}

// Registry is a concurrency-safe catalog of named cubes and their views.
type Registry struct {
	mu     sync.Mutex
	cubes  map[string]*entry
	order  []string
	def    string
	met    *viewcube.Metrics
	rcOpts *rescache.Options // non-nil once EnableResultCache was called
}

// NewRegistry returns an empty catalog. The registry owns a root metrics
// registry; per-cube engines should be built over CubeMetrics(name) so one
// /metrics exposition carries a cube label dimension.
func NewRegistry() *Registry {
	return &Registry{
		cubes: make(map[string]*entry),
		met:   viewcube.NewMetrics(),
	}
}

// Metrics returns the registry's root metrics — the single exposition the
// serving tier renders.
func (r *Registry) Metrics() *viewcube.Metrics { return r.met }

// CubeMetrics derives the per-cube labelled metrics a builder should hand
// to its engine, so engine instruments land in the shared exposition as
// series labelled {cube="name"}.
func (r *Registry) CubeMetrics(name string) *viewcube.Metrics {
	return r.met.Sub("cube", name)
}

// EnableResultCache turns on per-entry answer caching: every registered
// cube (current and future) gets its own epoch-invalidated, size-bounded
// result cache with the given bounds, instrumented per cube in the shared
// exposition. Leases acquired afterwards serve reads through it via the
// Serve* methods; lifecycle transitions (Load/Unload/Rebuild) invalidate
// the affected entry's cache.
func (r *Registry) EnableResultCache(opt rescache.Options) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rcOpts = &opt
	for _, name := range r.order {
		if e := r.cubes[name]; e.rcache == nil {
			e.rcache = r.newEntryCacheLocked(name)
		}
	}
}

// newEntryCacheLocked builds one entry's answer cache with cube-labelled
// instruments. Caller holds r.mu and has checked r.rcOpts is set.
func (r *Registry) newEntryCacheLocked(name string) *answerCache {
	c := newAnswerCache(*r.rcOpts)
	c.SetMetrics(obs.NewResultCacheMetrics(r.met.Sub("cube", name).Registry()))
	return c
}

// InvalidateResults drops the named cube's cached answers (""= default),
// bumping its result-cache epoch. It exists for callers that mutate cube
// state out of band of the engine's own invalidation hooks — the catalog
// hot-reloader and the coordinator's explicit invalidation endpoint. No-op
// for entries without a cache.
func (r *Registry) InvalidateResults(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if name == "" {
		name = r.def
	}
	e, ok := r.cubes[name]
	if !ok {
		return fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	e.rcache.Invalidate()
	return nil
}

// Register builds the handle now and adds it under the given name. The
// first registered cube becomes the default until SetDefault overrides it.
func (r *Registry) Register(name string, build Builder) error {
	if name == "" {
		return fmt.Errorf("catalog: cube needs a name")
	}
	if build == nil {
		return fmt.Errorf("catalog: cube %q needs a builder", name)
	}
	h, err := build()
	if err != nil {
		return fmt.Errorf("catalog: building cube %q: %w", name, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.cubes[name]; dup {
		return fmt.Errorf("catalog: cube %q already registered", name)
	}
	e := &entry{
		name:      name,
		build:     build,
		state:     StateServing,
		handle:    h,
		epoch:     1,
		views:     make(map[string]*View),
		viewSpecs: make(map[string]ViewSpec),
	}
	e.cond = sync.NewCond(&r.mu)
	if r.rcOpts != nil {
		e.rcache = r.newEntryCacheLocked(name)
	}
	r.cubes[name] = e
	r.order = append(r.order, name)
	if r.def == "" {
		r.def = name
	}
	return nil
}

// RegisterHandle registers an already-built handle. The entry supports
// unload but not load/rebuild (there is nothing to rebuild from).
func (r *Registry) RegisterHandle(name string, h CubeHandle) error {
	if h == nil {
		return fmt.Errorf("catalog: cube %q needs a handle", name)
	}
	return r.Register(name, func() (CubeHandle, error) { return h, nil })
}

// RegisterView compiles and attaches a view to its cube, validating every
// include/exclude/measure against the cube's current schema.
func (r *Registry) RegisterView(spec ViewSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cubes[spec.Cube]
	if !ok {
		return fmt.Errorf("catalog: view %q: cube %q: %w", spec.Name, spec.Cube, ErrUnknownCube)
	}
	if e.handle == nil {
		return fmt.Errorf("catalog: view %q: cube %q: %w", spec.Name, spec.Cube, ErrCubeUnloaded)
	}
	v, err := compileView(spec, e.handle.Info())
	if err != nil {
		return err
	}
	if _, dup := e.views[spec.Name]; dup {
		return fmt.Errorf("catalog: cube %q already has view %q", spec.Cube, spec.Name)
	}
	e.views[spec.Name] = v
	e.viewOrder = append(e.viewOrder, spec.Name)
	e.viewSpecs[spec.Name] = spec
	return nil
}

// Has reports whether an entry with the given name exists, in any state.
func (r *Registry) Has(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.cubes[name]
	return ok
}

// SetBuilder replaces the named cube's builder without touching its serving
// handle: the next Load or Rebuild constructs from the new source. This is
// how a catalog hot-reload re-points a cube at changed spec before
// rebuilding it.
func (r *Registry) SetBuilder(name string, build Builder) error {
	if build == nil {
		return fmt.Errorf("catalog: cube %q needs a builder", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cubes[name]
	if !ok {
		return fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	e.build = build
	return nil
}

// ReplaceViews swaps the named cube's whole view set atomically: every spec
// compiles against the current schema first, so a bad view leaves the
// existing set serving. On an unloaded entry the specs are stored and
// compile at the next Load.
func (r *Registry) ReplaceViews(cube string, specs []ViewSpec) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cubes[cube]
	if !ok {
		return fmt.Errorf("cube %q: %w", cube, ErrUnknownCube)
	}
	order := make([]string, 0, len(specs))
	specMap := make(map[string]ViewSpec, len(specs))
	for _, spec := range specs {
		if spec.Name == "" {
			return fmt.Errorf("catalog: cube %q: view needs a name", cube)
		}
		if _, dup := specMap[spec.Name]; dup {
			return fmt.Errorf("catalog: cube %q already has view %q", cube, spec.Name)
		}
		specMap[spec.Name] = spec
		order = append(order, spec.Name)
	}
	views := make(map[string]*View, len(specs))
	if e.handle != nil {
		info := e.handle.Info()
		for _, name := range order {
			v, err := compileView(specMap[name], info)
			if err != nil {
				return err
			}
			views[name] = v
		}
	}
	e.views = views
	e.viewOrder = order
	e.viewSpecs = specMap
	return nil
}

// SetDefault names the cube legacy single-cube routes resolve to.
func (r *Registry) SetDefault(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.cubes[name]; !ok {
		return fmt.Errorf("catalog: default cube %q: %w", name, ErrUnknownCube)
	}
	r.def = name
	return nil
}

// Default returns the default cube's name ("" for an empty registry).
func (r *Registry) Default() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.def
}

// Lease is one query's hold on a serving cube: the handle pinned for the
// query's lifetime, the resolved view (nil for raw-cube access) and the
// entry's generation. Release it when the query finishes — Unload blocks
// until every lease is gone.
type Lease struct {
	Cube   string
	View   *View
	Handle CubeHandle
	Epoch  uint64

	reg      *Registry
	ent      *entry
	cache    *answerCache // nil unless the registry enabled result caching
	released atomic.Bool
}

// Release returns the lease. Idempotent and safe on nil.
func (l *Lease) Release() {
	if l == nil || l.released.Swap(true) {
		return
	}
	l.reg.mu.Lock()
	l.ent.refs--
	if l.ent.refs == 0 {
		l.ent.cond.Broadcast()
	}
	l.reg.mu.Unlock()
}

// Acquire pins the named cube (""= default) and resolves the named view
// (""= raw cube) for one query. Fails with ErrUnknownCube/ErrUnknownView
// (404), ErrCubeUnloaded (404) or ErrCubeBusy (409, lifecycle transition
// in progress).
func (r *Registry) Acquire(cube, view string) (*Lease, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := cube
	if name == "" {
		name = r.def
	}
	e, ok := r.cubes[name]
	if !ok {
		return nil, fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	var v *View
	if view != "" {
		if v, ok = e.views[view]; !ok {
			return nil, fmt.Errorf("cube %q view %q: %w", name, view, ErrUnknownView)
		}
	}
	switch e.state {
	case StateServing:
	case StateLoading, StateUnloading:
		return nil, fmt.Errorf("cube %q is %s: %w", name, e.state, ErrCubeBusy)
	case StateUnloaded:
		return nil, fmt.Errorf("cube %q: %w", name, ErrCubeUnloaded)
	}
	e.refs++
	return &Lease{Cube: name, View: v, Handle: e.handle, Epoch: e.epoch, reg: r, ent: e, cache: e.rcache}, nil
}

// Unload drains the named cube and drops its handle: the entry flips to
// unloading (new acquires fail busy), blocks until every outstanding lease
// releases, then parks as unloaded with the builder retained for Load.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.cubes[name]
	if !ok {
		return fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	switch {
	case e.state == StateUnloaded:
		return fmt.Errorf("cube %q: %w", name, ErrCubeUnloaded)
	case e.state != StateServing || e.rebuilding:
		return fmt.Errorf("cube %q is %s: %w", name, e.state, ErrCubeBusy)
	}
	e.state = StateUnloading
	for e.refs > 0 {
		e.cond.Wait()
	}
	if c, ok := e.handle.(IngestCloser); ok {
		c.CloseIngest() // stop the merger and WAL with the cube they feed
	}
	e.handle = nil
	e.state = StateUnloaded
	e.rcache.Invalidate() // free cached answers with the cube they answer for
	return nil
}

// Load rebuilds an unloaded cube from its builder and resumes serving.
// Views are recompiled against the fresh schema; a view that no longer
// validates fails the load and the cube stays unloaded.
func (r *Registry) Load(name string) error {
	r.mu.Lock()
	e, ok := r.cubes[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	if e.state != StateUnloaded {
		state := e.state
		r.mu.Unlock()
		return fmt.Errorf("cube %q is %s: %w", name, state, ErrCubeBusy)
	}
	e.state = StateLoading
	r.mu.Unlock()

	h, err := e.build()

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		e.state = StateUnloaded
		return fmt.Errorf("catalog: loading cube %q: %w", name, err)
	}
	views, verr := recompileViews(e, h.Info())
	if verr != nil {
		e.state = StateUnloaded
		return verr
	}
	e.views = views
	e.handle = h
	e.epoch++
	e.state = StateServing
	e.rcache.Invalidate() // new generation: cached answers are stale
	return nil
}

// Rebuild constructs a replacement handle and swaps it in without downtime:
// the old handle keeps serving until the new one is ready, in-flight leases
// finish on the generation they started on, and the epoch advances. On
// builder or view-validation failure the old handle keeps serving.
func (r *Registry) Rebuild(name string) error {
	r.mu.Lock()
	e, ok := r.cubes[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	if e.state != StateServing || e.rebuilding {
		state := e.state
		r.mu.Unlock()
		return fmt.Errorf("cube %q is %s: %w", name, state, ErrCubeBusy)
	}
	e.rebuilding = true
	r.mu.Unlock()

	h, err := e.build()

	r.mu.Lock()
	defer r.mu.Unlock()
	e.rebuilding = false
	if err != nil {
		return fmt.Errorf("catalog: rebuilding cube %q: %w", name, err)
	}
	views, verr := recompileViews(e, h.Info())
	if verr != nil {
		return verr
	}
	old := e.handle
	e.views = views
	e.handle = h
	e.epoch++
	e.rcache.Invalidate() // new generation: cached answers are stale
	if c, ok := old.(IngestCloser); ok {
		// The old generation keeps serving in-flight leases (its readers
		// fall back to the locked path once ingest stops), but its merger
		// and WAL must not outlive the swap.
		c.CloseIngest()
	}
	return nil
}

// recompileViews validates every registered view spec against a fresh
// schema. Caller holds r.mu.
func recompileViews(e *entry, info Info) (map[string]*View, error) {
	views := make(map[string]*View, len(e.viewSpecs))
	for _, name := range e.viewOrder {
		v, err := compileView(e.viewSpecs[name], info)
		if err != nil {
			return nil, fmt.Errorf("catalog: revalidating view %q: %w", name, err)
		}
		views[name] = v
	}
	return views, nil
}

// CubeStatus is one row of the catalog listing.
type CubeStatus struct {
	Name    string   `json:"name"`
	State   string   `json:"state"`
	Epoch   uint64   `json:"epoch"`
	Default bool     `json:"default"`
	Views   []string `json:"views,omitempty"`
	Info    *Info    `json:"info,omitempty"`
}

// Cubes lists every entry in registration order.
func (r *Registry) Cubes() []CubeStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CubeStatus, 0, len(r.order))
	for _, name := range r.order {
		e := r.cubes[name]
		cs := CubeStatus{
			Name:    name,
			State:   e.state.String(),
			Epoch:   e.epoch,
			Default: name == r.def,
			Views:   append([]string(nil), e.viewOrder...),
		}
		if e.rebuilding {
			cs.State = "rebuilding"
		}
		if e.handle != nil {
			info := e.handle.Info()
			cs.Info = &info
		}
		out = append(out, cs)
	}
	return out
}

// ViewStatus describes one compiled view for listings.
type ViewStatus struct {
	Name     string   `json:"name"`
	Cube     string   `json:"cube"`
	Members  []Member `json:"members"`
	Measures []string `json:"measures,omitempty"`
}

// Views lists the named cube's views in registration order.
func (r *Registry) Views(cube string) ([]ViewStatus, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	name := cube
	if name == "" {
		name = r.def
	}
	e, ok := r.cubes[name]
	if !ok {
		return nil, fmt.Errorf("cube %q: %w", name, ErrUnknownCube)
	}
	out := make([]ViewStatus, 0, len(e.viewOrder))
	for _, vn := range e.viewOrder {
		v := e.views[vn]
		out = append(out, ViewStatus{
			Name:     vn,
			Cube:     name,
			Members:  v.Members(),
			Measures: v.Measures(),
		})
	}
	return out, nil
}
