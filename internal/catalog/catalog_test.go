package catalog

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"viewcube"
)

const salesCSV = `product,region,day,sales
ale,east,d1,10
ale,west,d1,5
ale,east,d2,2
bock,east,d1,7
bock,west,d2,4
cider,west,d3,3
`

func salesHandle(t *testing.T) CubeHandle {
	t.Helper()
	cube, err := viewcube.Load(strings.NewReader(salesCSV), "sales")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := cube.NewEngine(viewcube.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return NewSafeHandle(cube, eng.Safe())
}

func salesRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register("sales", func() (CubeHandle, error) {
		return salesHandle(t), nil
	}); err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestViewCompileResolveAndRewrite(t *testing.T) {
	reg := salesRegistry(t)
	err := reg.RegisterView(ViewSpec{
		Name: "regional",
		Cube: "sales",
		Includes: IncludeList{Members: []MemberSpec{
			{Name: "product", Alias: "item"},
			{Name: "region"},
		}},
		Measures: []string{"sales"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lease, err := reg.Acquire("sales", "regional")
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	v := lease.View

	// Alias resolves to the underlying dimension.
	dim, err := v.ResolveMember("item")
	if err != nil || dim != "product" {
		t.Fatalf("ResolveMember(item) = %q, %v", dim, err)
	}
	// The underlying name is NOT exposed once aliased.
	if _, err := v.ResolveMember("product"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("ResolveMember(product) err = %v, want ErrUnknownMember", err)
	}
	// A dimension the view never included is rejected identically.
	if _, err := v.ResolveMember("day"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("ResolveMember(day) err = %v, want ErrUnknownMember", err)
	}
	var me *MemberError
	_, err = v.ResolveKeep([]string{"item", "day"})
	if !errors.As(err, &me) || me.Member != "day" {
		t.Fatalf("ResolveKeep err = %v, want MemberError{day}", err)
	}

	sql, err := v.RewriteSQL("SELECT SUM(sales) GROUP BY item WHERE region = 'east'")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT SUM(sales) GROUP BY product WHERE region = 'east'"
	if sql != want {
		t.Fatalf("RewriteSQL = %q, want %q", sql, want)
	}
	if _, err := v.RewriteSQL("SELECT SUM(sales) GROUP BY day"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("RewriteSQL(day) err = %v, want ErrUnknownMember", err)
	}
	if err := v.ResolveMeasure("profit"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("ResolveMeasure(profit) err = %v, want ErrUnknownMember", err)
	}
	if err := v.ResolveMeasure("*"); err != nil {
		t.Fatalf("COUNT(*) should always be allowed, got %v", err)
	}

	// An aliased query answers identically to the raw one.
	aliased, err := lease.Handle.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := lease.Handle.Query(want)
	if err != nil {
		t.Fatal(err)
	}
	if len(aliased.Rows) != len(raw.Rows) {
		t.Fatalf("aliased rows %d != raw rows %d", len(aliased.Rows), len(raw.Rows))
	}
	cols := v.RewriteColumns([]string{"product", "SUM(sales)"})
	if cols[0] != "item" || cols[1] != "SUM(sales)" {
		t.Fatalf("RewriteColumns = %v", cols)
	}
}

func TestViewValidationErrors(t *testing.T) {
	reg := salesRegistry(t)
	cases := []ViewSpec{
		{Name: "bad-exclude", Cube: "sales", Includes: All(), Excludes: []string{"nope"}},
		{Name: "bad-include", Cube: "sales", Includes: Include("nope")},
		{Name: "empty", Cube: "sales", Includes: IncludeList{}},
		{Name: "all-gone", Cube: "sales", Includes: All(), Excludes: []string{"product", "region", "day"}},
		{Name: "bad-measure", Cube: "sales", Includes: All(), Measures: []string{"profit"}},
		{Name: "dup", Cube: "sales", Includes: IncludeList{Members: []MemberSpec{
			{Name: "product", Alias: "x"}, {Name: "region", Alias: "x"},
		}}},
	}
	for _, spec := range cases {
		if err := reg.RegisterView(spec); err == nil {
			t.Errorf("view %q: want compile error, got nil", spec.Name)
		}
	}
	if err := reg.RegisterView(ViewSpec{Name: "v", Cube: "ghost", Includes: All()}); !errors.Is(err, ErrUnknownCube) {
		t.Fatalf("view on ghost cube err = %v, want ErrUnknownCube", err)
	}
}

func TestStarExcludesAndNilView(t *testing.T) {
	reg := salesRegistry(t)
	if err := reg.RegisterView(ViewSpec{
		Name: "public", Cube: "sales", Includes: All(), Excludes: []string{"region"},
	}); err != nil {
		t.Fatal(err)
	}
	lease, err := reg.Acquire("", "public") // "" resolves the default cube
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	members := lease.View.Members()
	if len(members) != 2 || members[0].Name != "product" || members[1].Name != "day" {
		t.Fatalf("members = %v", members)
	}
	if _, err := lease.View.ResolveMember("region"); !errors.Is(err, ErrUnknownMember) {
		t.Fatalf("excluded member err = %v, want ErrUnknownMember", err)
	}

	// The nil view is the identity raw-cube surface.
	var nilView *View
	if dim, err := nilView.ResolveMember("region"); err != nil || dim != "region" {
		t.Fatalf("nil view ResolveMember = %q, %v", dim, err)
	}
	if sql, err := nilView.RewriteSQL("SELECT SUM(sales)"); err != nil || sql != "SELECT SUM(sales)" {
		t.Fatalf("nil view RewriteSQL = %q, %v", sql, err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := salesRegistry(t)

	lease, err := reg.Acquire("sales", "")
	if err != nil {
		t.Fatal(err)
	}
	if lease.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", lease.Epoch)
	}

	// Unload blocks on the outstanding lease; release lets it drain.
	done := make(chan error, 1)
	go func() { done <- reg.Unload("sales") }()
	lease.Release()
	if err := <-done; err != nil {
		t.Fatalf("unload: %v", err)
	}
	if _, err := reg.Acquire("sales", ""); !errors.Is(err, ErrCubeUnloaded) {
		t.Fatalf("acquire unloaded err = %v, want ErrCubeUnloaded", err)
	}
	if err := reg.Unload("sales"); !errors.Is(err, ErrCubeUnloaded) {
		t.Fatalf("double unload err = %v, want ErrCubeUnloaded", err)
	}

	if err := reg.Load("sales"); err != nil {
		t.Fatal(err)
	}
	lease2, err := reg.Acquire("sales", "")
	if err != nil {
		t.Fatal(err)
	}
	if lease2.Epoch != 2 {
		t.Fatalf("epoch after reload = %d, want 2", lease2.Epoch)
	}

	// Rebuild is zero-downtime: the old generation keeps serving.
	if err := reg.Rebuild("sales"); err != nil {
		t.Fatal(err)
	}
	if _, err := lease2.Handle.GroupBy("product"); err != nil {
		t.Fatalf("old-generation lease after rebuild: %v", err)
	}
	lease3, err := reg.Acquire("sales", "")
	if err != nil {
		t.Fatal(err)
	}
	if lease3.Epoch != 3 {
		t.Fatalf("epoch after rebuild = %d, want 3", lease3.Epoch)
	}
	lease2.Release()
	lease3.Release()
	lease3.Release() // Release is idempotent.

	if _, err := reg.Acquire("ghost", ""); !errors.Is(err, ErrUnknownCube) {
		t.Fatalf("unknown cube err = %v, want ErrUnknownCube", err)
	}
	if _, err := reg.Acquire("sales", "ghost"); !errors.Is(err, ErrUnknownView) {
		t.Fatalf("unknown view err = %v, want ErrUnknownView", err)
	}
}

// TestConcurrentQueriesDuringLifecycle hammers a cube with queries while
// unload/load and rebuild cycle it. Every successfully acquired lease must
// see a working handle for its whole execution (no use-after-unload), and
// failed acquires must fail with a catalog sentinel.
func TestConcurrentQueriesDuringLifecycle(t *testing.T) {
	reg := salesRegistry(t)
	const (
		readers = 8
		rounds  = 40
	)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				lease, err := reg.Acquire("sales", "")
				if err != nil {
					if !errors.Is(err, ErrCubeUnloaded) && !errors.Is(err, ErrCubeBusy) {
						t.Errorf("acquire: %v", err)
					}
					continue
				}
				groups, err := lease.Handle.GroupBy("product")
				if err != nil {
					t.Errorf("groupby under lease: %v", err)
				} else if got := groups["ale"]; got != 17 {
					t.Errorf("groups[ale] = %v, want 17", got)
				}
				lease.Release()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := reg.Unload("sales"); err != nil {
				t.Errorf("unload: %v", err)
				return
			}
			if err := reg.Load("sales"); err != nil {
				t.Errorf("load: %v", err)
				return
			}
			if err := reg.Rebuild("sales"); err != nil {
				t.Errorf("rebuild: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestRegistryListings(t *testing.T) {
	reg := salesRegistry(t)
	if err := reg.Register("inventory", func() (CubeHandle, error) {
		return salesHandle(t), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterView(ViewSpec{Name: "public", Cube: "sales", Includes: All()}); err != nil {
		t.Fatal(err)
	}
	cubes := reg.Cubes()
	if len(cubes) != 2 || cubes[0].Name != "sales" || cubes[1].Name != "inventory" {
		t.Fatalf("cubes = %+v", cubes)
	}
	if !cubes[0].Default || cubes[1].Default {
		t.Fatalf("default flags wrong: %+v", cubes)
	}
	if cubes[0].State != "serving" || cubes[0].Info == nil || cubes[0].Info.Measure != "sales" {
		t.Fatalf("sales status = %+v", cubes[0])
	}
	views, err := reg.Views("sales")
	if err != nil || len(views) != 1 || views[0].Name != "public" || len(views[0].Members) != 3 {
		t.Fatalf("views = %+v, %v", views, err)
	}
	if err := reg.SetDefault("inventory"); err != nil {
		t.Fatal(err)
	}
	if reg.Default() != "inventory" {
		t.Fatalf("default = %q", reg.Default())
	}
	if err := reg.SetDefault("ghost"); !errors.Is(err, ErrUnknownCube) {
		t.Fatalf("SetDefault(ghost) err = %v", err)
	}
}

func TestParseCatalogFile(t *testing.T) {
	good := `{
	  "cubes": [
	    {"name": "sales", "csv": "sales.csv", "default": true},
	    {"name": "synth", "gen": 100, "seed": 7}
	  ],
	  "views": [
	    {"name": "public", "cube": "sales", "includes": "*", "excludes": ["day"]},
	    {"name": "aliased", "cube": "sales",
	     "includes": [{"name": "product", "alias": "item"}, "region"],
	     "measures": ["sales"]}
	  ]
	}`
	f, err := Parse([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Cubes) != 2 || len(f.Views) != 2 {
		t.Fatalf("parsed %d cubes, %d views", len(f.Cubes), len(f.Views))
	}
	if !f.Views[0].Includes.Star {
		t.Fatal("includes \"*\" should parse as Star")
	}
	if m := f.Views[1].Includes.Members; len(m) != 2 || m[0].Alias != "item" || m[1].Name != "region" {
		t.Fatalf("members = %+v", m)
	}

	bad := []string{
		`{"cubes": []}`,
		`{"cubes": [{"name": "a", "csv": "x"}, {"name": "a", "csv": "y"}]}`,
		`{"cubes": [{"name": "a"}]}`,
		`{"cubes": [{"name": "a", "csv": "x", "gen": 5}]}`,
		`{"cubes": [{"name": "a", "csv": "x", "default": true}, {"name": "b", "csv": "y", "default": true}]}`,
		`{"cubes": [{"name": "a", "csv": "x"}], "views": [{"name": "v", "cube": "ghost", "includes": "*"}]}`,
		`{"cubes": [{"name": "a", "csv": "x"}], "views": [{"name": "v", "cube": "a", "includes": "nope"}]}`,
	}
	for i, src := range bad {
		if _, err := Parse([]byte(src)); err == nil {
			t.Errorf("bad[%d]: want parse error, got nil", i)
		}
	}
}

func TestFileBuildAndRebuild(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(csvPath, []byte(salesCSV), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Parse([]byte(`{
	  "cubes": [
	    {"name": "sales", "csv": "sales.csv", "default": true},
	    {"name": "synth", "gen": 50, "seed": 3}
	  ],
	  "views": [
	    {"name": "public", "cube": "sales", "includes": "*", "excludes": ["day"]}
	  ]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	if err := f.Build(reg, dir); err != nil {
		t.Fatal(err)
	}
	lease, err := reg.Acquire("", "public")
	if err != nil {
		t.Fatal(err)
	}
	groups, err := lease.Handle.GroupBy("product")
	if err != nil || groups["ale"] != 17 {
		t.Fatalf("groups = %v, %v", groups, err)
	}
	lease.Release()

	// Rebuild re-reads the CSV: new rows show up in the next generation.
	if err := os.WriteFile(csvPath, []byte(salesCSV+"ale,east,d3,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := reg.Rebuild("sales"); err != nil {
		t.Fatal(err)
	}
	lease2, err := reg.Acquire("sales", "")
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	groups, err = lease2.Handle.GroupBy("product")
	if err != nil || groups["ale"] != 20 {
		t.Fatalf("groups after rebuild = %v, %v", groups, err)
	}

	synth, err := reg.Acquire("synth", "")
	if err != nil {
		t.Fatal(err)
	}
	defer synth.Release()
	if info := synth.Handle.Info(); len(info.Dimensions) == 0 {
		t.Fatalf("synth info = %+v", info)
	}
}
