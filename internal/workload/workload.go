// Package workload generates the synthetic query populations and data sets
// used by the paper's experiments and by this reproduction's examples and
// benchmarks. All generators are deterministic given a seeded *rand.Rand.
//
// The paper's experiments (§7.2) "assign a random probability of access to
// each of the aggregated views"; UniformViewPopulation reproduces exactly
// that. Zipf and hot-spot populations model the skewed access patterns that
// make dynamic re-selection worthwhile, and the relational generators
// provide realistic OLAP fact tables for the examples.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"viewcube/internal/core"
	"viewcube/internal/ndarray"
	"viewcube/internal/rangeagg"
	"viewcube/internal/relation"
	"viewcube/internal/velement"
)

// UniformViewPopulation assigns an independent Uniform(0,1) weight to each
// aggregated view and normalises (the paper's Experiment 1 and 2 workload).
// If includeRoot is false the raw cube (mask 0) is excluded — see DESIGN.md
// for which experiments query it.
func UniformViewPopulation(s *velement.Space, rng *rand.Rand, includeRoot bool) []core.Query {
	views := s.AggregatedViews()
	start := 1
	if includeRoot {
		start = 0
	}
	queries := make([]core.Query, 0, len(views)-start)
	for _, v := range views[start:] {
		queries = append(queries, core.Query{Rect: v, Freq: rng.Float64()})
	}
	core.NormalizeFrequencies(queries)
	return queries
}

// ZipfViewPopulation assigns Zipf(skew) frequencies to the aggregated views
// in a random rank order: rank r gets weight (r+1)^-skew. skew = 0 is
// uniform; larger skews concentrate mass on a few views.
func ZipfViewPopulation(s *velement.Space, rng *rand.Rand, skew float64, includeRoot bool) []core.Query {
	views := s.AggregatedViews()
	start := 1
	if includeRoot {
		start = 0
	}
	views = views[start:]
	perm := rng.Perm(len(views))
	queries := make([]core.Query, len(views))
	for rank, vi := range perm {
		queries[vi] = core.Query{Rect: views[vi], Freq: math.Pow(float64(rank+1), -skew)}
	}
	core.NormalizeFrequencies(queries)
	return queries
}

// HotSpotPopulation puts all mass uniformly on k randomly chosen aggregated
// views (the pedagogical example is k=2). k is clamped to the number of
// available views.
func HotSpotPopulation(s *velement.Space, rng *rand.Rand, k int, includeRoot bool) []core.Query {
	views := s.AggregatedViews()
	start := 1
	if includeRoot {
		start = 0
	}
	views = views[start:]
	if k > len(views) {
		k = len(views)
	}
	if k < 1 {
		k = 1
	}
	perm := rng.Perm(len(views))
	queries := make([]core.Query, 0, k)
	for _, vi := range perm[:k] {
		queries = append(queries, core.Query{Rect: views[vi], Freq: 1 / float64(k)})
	}
	return queries
}

// RandomBoxes generates count random non-degenerate range-query boxes
// inside the given cube shape.
func RandomBoxes(shape []int, rng *rand.Rand, count int) []rangeagg.Box {
	out := make([]rangeagg.Box, count)
	for i := range out {
		lo := make([]int, len(shape))
		ext := make([]int, len(shape))
		for m, n := range shape {
			lo[m] = rng.Intn(n)
			ext[m] = 1 + rng.Intn(n-lo[m])
		}
		out[i] = rangeagg.Box{Lo: lo, Ext: ext}
	}
	return out
}

// RandomCube fills a cube of the given shape with integer-valued measures
// in [0, max).
func RandomCube(rng *rand.Rand, max float64, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		a.Data()[i] = math.Floor(rng.Float64() * max)
	}
	return a
}

// SparseCube fills a cube where each cell is nonzero with probability
// density — the sparse regime that motivates wavelet-packet compression.
func SparseCube(rng *rand.Rand, density, max float64, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	for i := range a.Data() {
		if rng.Float64() < density {
			a.Data()[i] = 1 + math.Floor(rng.Float64()*max)
		}
	}
	return a
}

// DyadicBlockCube returns a cube that is a constant value inside one
// randomly placed dyadic-aligned block of approximately frac of the cube's
// volume, and zero elsewhere — the clustered regime where wavelet-packet
// bases isolate the data region (§4.3's compression remark).
func DyadicBlockCube(rng *rand.Rand, value, frac float64, shape ...int) *ndarray.Array {
	a := ndarray.New(shape...)
	d := len(shape)
	// Split the total depth budget round-robin across dimensions.
	depthBudget := int(math.Round(-math.Log2(frac)))
	depths := make([]int, d)
	for b, m := 0, 0; b < depthBudget; m = (m + 1) % d {
		max := int(math.Log2(float64(shape[m])))
		if depths[m] < max {
			depths[m]++
			b++
			continue
		}
		// Dimension exhausted; if all are, stop.
		full := true
		for q := range depths {
			if depths[q] < int(math.Log2(float64(shape[q]))) {
				full = false
				break
			}
		}
		if full {
			break
		}
	}
	lo := make([]int, d)
	ext := make([]int, d)
	for m := range shape {
		ext[m] = shape[m] >> uint(depths[m])
		blocks := shape[m] / ext[m]
		lo[m] = rng.Intn(blocks) * ext[m]
	}
	idx := make([]int, d)
	var fill func(m int)
	fill = func(m int) {
		if m == d {
			a.Set(value, idx...)
			return
		}
		for i := lo[m]; i < lo[m]+ext[m]; i++ {
			idx[m] = i
			fill(m + 1)
		}
	}
	fill(0)
	return a
}

// SalesTable generates a synthetic retail fact table: the motivating OLAP
// scenario of the paper's introduction (sales by product, store/customer
// attribute, and date). Row measures are integral quantities, so all cube
// arithmetic is exact in float64.
func SalesTable(rng *rand.Rand, products, regions, days, rows int) (*relation.Table, error) {
	if products < 1 || regions < 1 || days < 1 || rows < 0 {
		return nil, fmt.Errorf("workload: domain sizes must be positive")
	}
	tbl, err := relation.NewTable(relation.Schema{
		Dimensions: []string{"product", "region", "day"},
		Measure:    "sales",
	})
	if err != nil {
		return nil, err
	}
	for i := 0; i < rows; i++ {
		// Skewed product popularity: low product ids sell more often.
		p := int(float64(products) * rng.Float64() * rng.Float64())
		if p >= products {
			p = products - 1
		}
		values := []string{
			fmt.Sprintf("product-%03d", p),
			fmt.Sprintf("region-%02d", rng.Intn(regions)),
			fmt.Sprintf("day-%03d", rng.Intn(days)),
		}
		if err := tbl.Append(values, float64(1+rng.Intn(9))); err != nil {
			return nil, err
		}
	}
	return tbl, nil
}
