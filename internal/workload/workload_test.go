package workload

import (
	"math"
	"math/rand"
	"testing"

	"viewcube/internal/relation"
	"viewcube/internal/velement"
)

func TestUniformViewPopulation(t *testing.T) {
	s := velement.MustSpace(4, 4, 4)
	rng := rand.New(rand.NewSource(1))
	withRoot := UniformViewPopulation(s, rng, true)
	if len(withRoot) != 8 {
		t.Fatalf("with root: %d queries, want 8", len(withRoot))
	}
	withoutRoot := UniformViewPopulation(s, rng, false)
	if len(withoutRoot) != 7 {
		t.Fatalf("without root: %d queries, want 7", len(withoutRoot))
	}
	sum := 0.0
	for _, q := range withRoot {
		if q.Freq < 0 {
			t.Fatal("negative frequency")
		}
		sum += q.Freq
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("frequencies sum to %g, want 1", sum)
	}
	for _, q := range withoutRoot {
		if q.Rect.Equal(s.Root()) {
			t.Fatal("root must be excluded")
		}
	}
}

func TestUniformPopulationDeterministic(t *testing.T) {
	s := velement.MustSpace(4, 4)
	a := UniformViewPopulation(s, rand.New(rand.NewSource(9)), true)
	b := UniformViewPopulation(s, rand.New(rand.NewSource(9)), true)
	for i := range a {
		if a[i].Freq != b[i].Freq || !a[i].Rect.Equal(b[i].Rect) {
			t.Fatal("same seed must give the same population")
		}
	}
}

func TestZipfViewPopulation(t *testing.T) {
	s := velement.MustSpace(4, 4, 4)
	rng := rand.New(rand.NewSource(2))
	qs := ZipfViewPopulation(s, rng, 1.5, false)
	if len(qs) != 7 {
		t.Fatalf("%d queries, want 7", len(qs))
	}
	sum, max := 0.0, 0.0
	for _, q := range qs {
		sum += q.Freq
		if q.Freq > max {
			max = q.Freq
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("sum %g, want 1", sum)
	}
	// With skew 1.5 over 7 views the top view holds a large share.
	if max < 0.3 {
		t.Fatalf("top frequency %g too small for skew 1.5", max)
	}
	// Zero skew is uniform.
	qs = ZipfViewPopulation(s, rng, 0, true)
	for _, q := range qs {
		if math.Abs(q.Freq-1.0/8) > 1e-12 {
			t.Fatalf("skew 0 must be uniform, got %g", q.Freq)
		}
	}
}

func TestHotSpotPopulation(t *testing.T) {
	s := velement.MustSpace(4, 4)
	rng := rand.New(rand.NewSource(3))
	qs := HotSpotPopulation(s, rng, 2, false)
	if len(qs) != 2 {
		t.Fatalf("%d queries, want 2", len(qs))
	}
	for _, q := range qs {
		if q.Freq != 0.5 {
			t.Fatalf("hot-spot frequency %g, want 0.5", q.Freq)
		}
	}
	if qs[0].Rect.Equal(qs[1].Rect) {
		t.Fatal("hot spots must be distinct")
	}
	// Clamping.
	qs = HotSpotPopulation(s, rng, 100, true)
	if len(qs) != 4 {
		t.Fatalf("clamped population %d, want 4", len(qs))
	}
	qs = HotSpotPopulation(s, rng, 0, true)
	if len(qs) != 1 {
		t.Fatalf("k=0 clamps to 1, got %d", len(qs))
	}
}

func TestRandomBoxes(t *testing.T) {
	shape := []int{8, 16}
	rng := rand.New(rand.NewSource(4))
	boxes := RandomBoxes(shape, rng, 50)
	if len(boxes) != 50 {
		t.Fatalf("%d boxes, want 50", len(boxes))
	}
	for _, b := range boxes {
		if err := b.Validate(shape); err != nil {
			t.Fatalf("invalid box %v: %v", b, err)
		}
	}
}

func TestRandomCubeAndSparseCube(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := RandomCube(rng, 10, 8, 8)
	for _, v := range c.Data() {
		if v < 0 || v >= 10 || v != math.Floor(v) {
			t.Fatalf("bad cell %g", v)
		}
	}
	sp := SparseCube(rng, 0.1, 10, 32, 32)
	nonzero := 0
	for _, v := range sp.Data() {
		if v != 0 {
			nonzero++
		}
	}
	frac := float64(nonzero) / float64(sp.Size())
	if frac < 0.05 || frac > 0.2 {
		t.Fatalf("sparse density %g out of expected band around 0.1", frac)
	}
}

func TestSalesTable(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	tbl, err := SalesTable(rng, 20, 4, 30, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 500 {
		t.Fatalf("%d rows, want 500", tbl.Len())
	}
	// It must be loadable as a cube.
	cube, enc, err := relation.BuildCube(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc.Shape) != 3 {
		t.Fatalf("cube rank %d, want 3", len(enc.Shape))
	}
	grand, _ := tbl.GroupBy(nil)
	if math.Abs(cube.Total()-grand[""]) > 1e-9 {
		t.Fatal("cube total disagrees with relation")
	}
	if _, err := SalesTable(rng, 0, 1, 1, 1); err == nil {
		t.Fatal("want error for empty domain")
	}
}

func TestDyadicBlockCube(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, frac := range []float64{1, 0.5, 0.25, 0.0625} {
		cube := DyadicBlockCube(rng, 7, frac, 16, 16)
		nonzero := 0
		for _, v := range cube.Data() {
			if v != 0 {
				if v != 7 {
					t.Fatalf("frac %g: unexpected value %g", frac, v)
				}
				nonzero++
			}
		}
		want := int(frac * 256)
		if nonzero != want {
			t.Fatalf("frac %g: %d nonzeros, want %d", frac, nonzero, want)
		}
	}
	// Tiny fractions clamp at the single-cell block.
	cube := DyadicBlockCube(rng, 3, 1e-9, 4, 4)
	nonzero := 0
	for _, v := range cube.Data() {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("tiny fraction should leave one cell, got %d", nonzero)
	}
}
