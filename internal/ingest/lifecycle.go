package ingest

import "sync"

// Lifecycle manages epoch-versioned immutable snapshots with the
// publish → drain → retire state machine (DESIGN §16). Publish installs a
// new current snapshot; readers Acquire the current one and hold it for a
// whole query; a superseded snapshot drains until its last reader releases
// it, then retires — its payload is dropped (background compaction) and an
// optional callback observes the retirement. The refcounting mirrors the
// catalog's lease discipline, generalising the plan cache's epoch counter
// from "a number that changed" into a full snapshot lifecycle.
type Lifecycle[T any] struct {
	mu       sync.Mutex
	current  *Snapshot[T]
	epoch    uint64
	live     int // published, not yet retired
	retired  uint64
	onRetire func(epoch uint64)
}

// Snapshot is one refcounted generation. The zero refcount plus loss of
// currency triggers retirement.
type Snapshot[T any] struct {
	lc      *Lifecycle[T]
	payload T
	epoch   uint64
	refs    int
	isCur   bool
	dead    bool
}

// LifecycleStats is a point-in-time snapshot of the lifecycle counters.
type LifecycleStats struct {
	Epoch     uint64 // epoch of the current snapshot
	Published uint64 // total snapshots ever published
	Live      int    // snapshots not yet retired (current included)
	Pinned    int    // readers holding the current snapshot
	Retired   uint64 // snapshots fully retired
}

// NewLifecycle starts the lifecycle with first as the current snapshot at
// epoch 1. onRetire, when non-nil, is invoked (outside the lifecycle lock)
// with the epoch of each snapshot as it retires.
func NewLifecycle[T any](first T, onRetire func(epoch uint64)) *Lifecycle[T] {
	lc := &Lifecycle[T]{onRetire: onRetire}
	lc.Publish(first)
	return lc
}

// Acquire pins the current snapshot and returns it. The caller must Release
// it exactly once when the read finishes.
func (lc *Lifecycle[T]) Acquire() *Snapshot[T] {
	lc.mu.Lock()
	s := lc.current
	s.refs++
	lc.mu.Unlock()
	return s
}

// Payload returns the snapshot's payload.
func (s *Snapshot[T]) Payload() T { return s.payload }

// Epoch returns the snapshot's epoch.
func (s *Snapshot[T]) Epoch() uint64 { return s.epoch }

// Release unpins the snapshot, retiring it if it was the last pin on a
// superseded generation.
func (s *Snapshot[T]) Release() {
	lc := s.lc
	lc.mu.Lock()
	s.refs--
	retire := lc.maybeRetire(s)
	lc.mu.Unlock()
	if retire && lc.onRetire != nil {
		lc.onRetire(s.epoch)
	}
}

// Publish installs payload as the new current snapshot and returns its
// epoch. The superseded snapshot drains: it retires as soon as (possibly
// immediately) no reader holds it.
func (lc *Lifecycle[T]) Publish(payload T) uint64 {
	lc.mu.Lock()
	prev := lc.current
	lc.epoch++
	lc.current = &Snapshot[T]{lc: lc, payload: payload, epoch: lc.epoch, isCur: true}
	lc.live++
	epoch := lc.epoch
	var retired *Snapshot[T]
	if prev != nil {
		prev.isCur = false
		if lc.maybeRetire(prev) {
			retired = prev
		}
	}
	lc.mu.Unlock()
	if retired != nil && lc.onRetire != nil {
		lc.onRetire(retired.epoch)
	}
	return epoch
}

// maybeRetire retires s when it is unpinned and no longer current; the
// payload is dropped so the generation's memory is reclaimable. Caller
// holds lc.mu; reports whether s retired on this call.
func (lc *Lifecycle[T]) maybeRetire(s *Snapshot[T]) bool {
	if s.dead || s.isCur || s.refs > 0 {
		return false
	}
	s.dead = true
	var zero T
	s.payload = zero
	lc.live--
	lc.retired++
	return true
}

// Current returns the current snapshot's epoch without pinning it.
func (lc *Lifecycle[T]) Current() uint64 {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.epoch
}

// Stats snapshots the lifecycle counters.
func (lc *Lifecycle[T]) Stats() LifecycleStats {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	st := LifecycleStats{Epoch: lc.epoch, Published: lc.epoch, Live: lc.live, Retired: lc.retired}
	if lc.current != nil {
		st.Pinned = lc.current.refs
	}
	return st
}
