// Package ingest is the streaming write path: a write-ahead log of cell
// deltas (batched, fsync-optional, crash-replayable), a bounded coalescing
// buffer that accumulates acknowledged deltas into a sparse delta cube, and
// a refcounted snapshot lifecycle (publish → drain → retire) that lets
// readers pin an immutable generation for a whole query while a background
// merger folds delta batches into fresh snapshots.
//
// The package is engine-agnostic: a Delta is a cell index plus a component
// vector (width 1 for scalar SUM cubes, the measure-vector width for
// [Σv, Σv², Σ1] cubes), and the lifecycle is generic over the snapshot
// payload. The root package's SafeEngine wires the three pieces into an
// MVCC write path; exactness of delta folding rests on the linearity of the
// Haar partial/residual operators (every stored element changes in exactly
// one cell per component — see DESIGN §16).
package ingest

import (
	"encoding/binary"
	"fmt"
)

// Delta is one cell update: a sparse point of the accumulated delta cube.
// Vals carries one value per measure component (scalar engines use width
// 1). Seq is the WAL-assigned (or runtime-assigned) durability sequence
// number; acknowledged writes become visible at the first published
// snapshot whose watermark covers their Seq.
type Delta struct {
	Seq  uint64
	Idx  []int
	Vals []float64
}

// clone deep-copies a delta so buffer and WAL never alias caller slices.
func (d Delta) clone() Delta {
	c := Delta{Seq: d.Seq, Idx: make([]int, len(d.Idx)), Vals: make([]float64, len(d.Vals))}
	copy(c.Idx, d.Idx)
	copy(c.Vals, d.Vals)
	return c
}

// cellKey encodes a cell index as a map key for coalescing.
func cellKey(idx []int) string {
	b := make([]byte, 0, 4*len(idx))
	for _, v := range idx {
		b = binary.AppendUvarint(b, uint64(v))
	}
	return string(b)
}

// validate rejects deltas the write path cannot represent.
func (d Delta) validate() error {
	if len(d.Idx) == 0 {
		return fmt.Errorf("ingest: delta needs a cell index")
	}
	if len(d.Vals) == 0 {
		return fmt.Errorf("ingest: delta needs at least one component value")
	}
	for _, v := range d.Idx {
		if v < 0 {
			return fmt.Errorf("ingest: negative cell coordinate %d", v)
		}
	}
	return nil
}
