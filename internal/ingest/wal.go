package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// The write-ahead log is one append-only binary segment:
//
//	magic   "VCWAL\x01"                                  (6 bytes)
//	record  kind(u8) | plen(u32 LE) | payload | crc(u32 LE)
//
// The CRC (IEEE) covers kind, plen and payload, so a torn tail — a crash
// mid-write — is detected and truncated away on the next open instead of
// poisoning replay. A delta payload is
//
//	seq(u64 LE) | rank(u16 LE) | width(u16 LE) | coords(u32 LE × rank) |
//	vals(float64 bits LE × width)
//
// Replay semantics are replay-all: the log is the full delta history since
// the base cube was built, and recovery rebuilds the engine from its source
// relation and re-applies every record. There are no checkpoints; pairing a
// WAL with a durable element store that already absorbed the deltas
// (DiskDir) would double-apply and is rejected by the engine wiring.

var walMagic = []byte("VCWAL\x01")

const (
	recDelta byte = 1

	// maxPayload bounds one record's payload so a corrupt length field
	// cannot force a huge allocation during replay.
	maxPayload = 1 << 24
)

// WALOptions configures a write-ahead log segment.
type WALOptions struct {
	// Fsync syncs the file after every append. Off, durability is the OS
	// page cache's (process crashes lose nothing, machine crashes may lose
	// the tail — never corrupt it).
	Fsync bool
}

// WAL is an append-only, crash-replayable delta log. Append is safe for
// concurrent use; Close is not concurrent with Append.
type WAL struct {
	f     *os.File
	path  string
	fsync bool
	seq   uint64 // last sequence number appended (or recovered)
	bytes uint64 // bytes appended this process lifetime
}

// OpenWAL opens (or creates) the segment at path, scans existing records —
// invoking replay, when non-nil, for each — truncates any torn tail, and
// positions for append. The returned WAL continues the recovered sequence
// numbering.
func OpenWAL(path string, opts WALOptions, replay func(Delta) error) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ingest: opening WAL: %w", err)
	}
	w := &WAL{f: f, path: path, fsync: opts.Fsync}
	if err := w.recover(replay); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// recover scans the segment from the start: validates the magic (writing it
// into an empty file), replays every intact record, and truncates the file
// at the first torn or corrupt one.
func (w *WAL) recover(replay func(Delta) error) error {
	info, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("ingest: stat WAL: %w", err)
	}
	if info.Size() == 0 {
		if _, err := w.f.Write(walMagic); err != nil {
			return fmt.Errorf("ingest: writing WAL magic: %w", err)
		}
		return nil
	}
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(w.f, magic); err != nil || string(magic) != string(walMagic) {
		return fmt.Errorf("ingest: %s is not a WAL segment", w.path)
	}
	good := int64(len(walMagic))
	head := make([]byte, 5)
	for {
		if _, err := io.ReadFull(w.f, head); err != nil {
			break // clean EOF, or torn header: truncate at good either way
		}
		kind := head[0]
		plen := binary.LittleEndian.Uint32(head[1:5])
		if plen > maxPayload {
			break
		}
		body := make([]byte, int(plen)+4)
		if _, err := io.ReadFull(w.f, body); err != nil {
			break
		}
		sum := crc32.ChecksumIEEE(head)
		sum = crc32.Update(sum, crc32.IEEETable, body[:plen])
		if binary.LittleEndian.Uint32(body[plen:]) != sum {
			break
		}
		if kind == recDelta {
			d, err := decodeDelta(body[:plen])
			if err != nil {
				break
			}
			if d.Seq > w.seq {
				w.seq = d.Seq
			}
			if replay != nil {
				if err := replay(d); err != nil {
					return fmt.Errorf("ingest: replaying WAL record seq %d: %w", d.Seq, err)
				}
			}
		}
		// Unknown kinds are skipped (forward compatibility), but only past a
		// valid CRC — corruption still truncates.
		good += int64(len(head) + len(body))
	}
	if err := w.f.Truncate(good); err != nil {
		return fmt.Errorf("ingest: truncating torn WAL tail: %w", err)
	}
	if _, err := w.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("ingest: seeking WAL append position: %w", err)
	}
	return nil
}

// Append assigns the next sequence number to d, writes the record, and
// returns the assigned sequence. The write is a single f.Write (atomic with
// respect to replay's CRC check: a torn write truncates), synced when the
// WAL was opened with Fsync. The caller's slices are not retained.
func (w *WAL) Append(d Delta) (uint64, error) {
	if err := d.validate(); err != nil {
		return 0, err
	}
	w.seq++
	d.Seq = w.seq
	payload := encodeDelta(d)
	rec := make([]byte, 0, 5+len(payload)+4)
	rec = append(rec, recDelta)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(rec))
	if _, err := w.f.Write(rec); err != nil {
		return 0, fmt.Errorf("ingest: appending WAL record: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return 0, fmt.Errorf("ingest: syncing WAL: %w", err)
		}
	}
	w.bytes += uint64(len(rec))
	return d.Seq, nil
}

// LastSeq returns the last appended (or recovered) sequence number.
func (w *WAL) LastSeq() uint64 { return w.seq }

// Bytes returns the bytes appended by this process (recovery excluded).
func (w *WAL) Bytes() uint64 { return w.bytes }

// Sync forces the segment to stable storage.
func (w *WAL) Sync() error { return w.f.Sync() }

// Close syncs and closes the segment.
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

func encodeDelta(d Delta) []byte {
	b := make([]byte, 0, 12+4*len(d.Idx)+8*len(d.Vals))
	b = binary.LittleEndian.AppendUint64(b, d.Seq)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(d.Idx)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(d.Vals)))
	for _, v := range d.Idx {
		b = binary.LittleEndian.AppendUint32(b, uint32(v))
	}
	for _, v := range d.Vals {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	return b
}

func decodeDelta(b []byte) (Delta, error) {
	if len(b) < 12 {
		return Delta{}, fmt.Errorf("ingest: short delta payload")
	}
	d := Delta{Seq: binary.LittleEndian.Uint64(b)}
	rank := int(binary.LittleEndian.Uint16(b[8:]))
	width := int(binary.LittleEndian.Uint16(b[10:]))
	if rank == 0 || width == 0 || len(b) != 12+4*rank+8*width {
		return Delta{}, fmt.Errorf("ingest: malformed delta payload")
	}
	d.Idx = make([]int, rank)
	off := 12
	for m := range d.Idx {
		d.Idx[m] = int(binary.LittleEndian.Uint32(b[off:]))
		off += 4
	}
	d.Vals = make([]float64, width)
	for i := range d.Vals {
		d.Vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[off:]))
		off += 8
	}
	return d, nil
}
