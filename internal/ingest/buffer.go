package ingest

import (
	"errors"
	"sync"
)

// ErrClosed is returned by Buffer.Add after Close.
var ErrClosed = errors.New("ingest: buffer closed")

// Buffer is a bounded coalescing accumulator of cell deltas — the in-memory
// sparse delta cube between the WAL and the merger. Deltas to the same cell
// coalesce (component-wise vector sum); distinct dirty cells are bounded by
// maxCells, beyond which Add blocks (backpressure) until a drain makes room.
// Coalescing into an already-dirty cell never blocks, so a hot-cell stream
// cannot deadlock against a stalled merger.
type Buffer struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	cells    map[string]*bufCell
	order    []string // first-touch order, for deterministic drains
	maxCells int
	maxSeq   uint64 // highest seq absorbed (the next drain's watermark)
	closed   bool

	dirty chan struct{} // signalled (cap 1) on empty→non-empty

	added     uint64
	coalesced uint64
	blocked   uint64
}

type bufCell struct {
	idx  []int
	vals []float64
}

// Batch is one drain: the coalesced deltas in first-touch order, plus the
// watermark — the highest sequence number absorbed. Because a drain takes
// everything, a snapshot built from this batch (on top of all earlier
// batches) reflects every acknowledged write with Seq ≤ Watermark.
type Batch struct {
	Deltas    []Delta
	Watermark uint64
}

// BufferStats is a point-in-time counter snapshot.
type BufferStats struct {
	Added     uint64 // deltas absorbed
	Coalesced uint64 // absorbed into an already-dirty cell
	Blocked   uint64 // Add calls that hit backpressure
	Pending   int    // dirty cells right now
}

// NewBuffer returns a buffer bounded at maxCells distinct dirty cells
// (values ≤ 0 mean unbounded).
func NewBuffer(maxCells int) *Buffer {
	b := &Buffer{
		cells:    make(map[string]*bufCell),
		maxCells: maxCells,
		dirty:    make(chan struct{}, 1),
	}
	b.notFull = sync.NewCond(&b.mu)
	return b
}

// Add absorbs one delta, coalescing by cell. It blocks only when the delta
// dirties a new cell and the buffer is at capacity. The caller's slices are
// not retained.
func (b *Buffer) Add(d Delta) error {
	key := cellKey(d.Idx)
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		if b.closed {
			return ErrClosed
		}
		c, ok := b.cells[key]
		if ok {
			for i, v := range d.Vals {
				c.vals[i] += v
			}
			b.coalesced++
			b.absorbed(d.Seq)
			return nil
		}
		if b.maxCells <= 0 || len(b.cells) < b.maxCells {
			d = d.clone()
			b.cells[key] = &bufCell{idx: d.Idx, vals: d.Vals}
			b.order = append(b.order, key)
			b.absorbed(d.Seq)
			return nil
		}
		b.blocked++
		b.notFull.Wait()
	}
}

// absorbed updates counters and pokes the dirty channel. Caller holds mu.
func (b *Buffer) absorbed(seq uint64) {
	b.added++
	if seq > b.maxSeq {
		b.maxSeq = seq
	}
	select {
	case b.dirty <- struct{}{}:
	default:
	}
}

// Drain removes and returns everything: all coalesced deltas in first-touch
// order and the watermark. Taking the whole buffer is what makes the
// watermark sound — no acknowledged seq at or below it can still be pending.
func (b *Buffer) Drain() Batch {
	b.mu.Lock()
	defer b.mu.Unlock()
	batch := Batch{Watermark: b.maxSeq}
	if len(b.order) == 0 {
		return batch
	}
	batch.Deltas = make([]Delta, 0, len(b.order))
	for _, key := range b.order {
		c := b.cells[key]
		batch.Deltas = append(batch.Deltas, Delta{Idx: c.idx, Vals: c.vals})
	}
	b.cells = make(map[string]*bufCell)
	b.order = nil
	b.notFull.Broadcast()
	return batch
}

// Dirty returns a channel that receives one token when the buffer goes from
// empty to non-empty (and at most one token is ever buffered) — the merge
// loop's wakeup.
func (b *Buffer) Dirty() <-chan struct{} { return b.dirty }

// Pending reports the number of dirty cells.
func (b *Buffer) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cells)
}

// Stats snapshots the buffer counters.
func (b *Buffer) Stats() BufferStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BufferStats{Added: b.added, Coalesced: b.coalesced, Blocked: b.blocked, Pending: len(b.cells)}
}

// Close fails all current and future Adds with ErrClosed. Pending cells stay
// drainable so shutdown can flush.
func (b *Buffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.notFull.Broadcast()
	b.mu.Unlock()
}
