package ingest

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cube.wal")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	want := []Delta{
		{Idx: []int{1, 2}, Vals: []float64{3.5}},
		{Idx: []int{0, 7}, Vals: []float64{-1, 2, 1}},
		{Idx: []int{4, 4}, Vals: []float64{0.25}},
	}
	for i := range want {
		seq, err := w.Append(want[i])
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d: seq = %d, want %d", i, seq, i+1)
		}
		want[i].Seq = seq
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	var got []Delta
	w2, err := OpenWAL(path, WALOptions{}, func(d Delta) error {
		got = append(got, d)
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed %+v, want %+v", got, want)
	}
	if w2.LastSeq() != 3 {
		t.Fatalf("LastSeq = %d, want 3", w2.LastSeq())
	}
	if seq, err := w2.Append(Delta{Idx: []int{9}, Vals: []float64{1}}); err != nil || seq != 4 {
		t.Fatalf("append after recovery: seq=%d err=%v, want 4", seq, err)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cube.wal")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := w.Append(Delta{Idx: []int{i}, Vals: []float64{float64(i)}}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Tear the tail: chop the last record mid-payload.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-7); err != nil {
		t.Fatal(err)
	}

	var replayed int
	w2, err := OpenWAL(path, WALOptions{}, func(Delta) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("reopen torn: %v", err)
	}
	if replayed != 4 {
		t.Fatalf("replayed %d records, want 4 (torn fifth dropped)", replayed)
	}
	if w2.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d, want 4", w2.LastSeq())
	}
	// Appends continue cleanly after truncation, and a fresh scan sees them.
	if _, err := w2.Append(Delta{Idx: []int{9}, Vals: []float64{9}}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	replayed = 0
	w3, err := OpenWAL(path, WALOptions{}, func(Delta) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer w3.Close()
	if replayed != 5 {
		t.Fatalf("replayed %d records after repair+append, want 5", replayed)
	}
}

func TestWALCorruptRecordTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cube.wal")
	w, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append(Delta{Idx: []int{i}, Vals: []float64{1}}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Flip a payload byte in the last record; its CRC must reject it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	var replayed int
	w2, err := OpenWAL(path, WALOptions{}, func(Delta) error {
		replayed++
		return nil
	})
	if err != nil {
		t.Fatalf("reopen corrupt: %v", err)
	}
	defer w2.Close()
	if replayed != 2 {
		t.Fatalf("replayed %d records, want 2 (corrupt third dropped)", replayed)
	}
}

func TestWALRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-wal")
	if err := os.WriteFile(path, []byte("hello world, definitely not a WAL"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenWAL(path, WALOptions{}, nil); err == nil {
		t.Fatal("expected error opening non-WAL file")
	}
}

func TestBufferCoalescesAndDrainsInOrder(t *testing.T) {
	b := NewBuffer(0)
	adds := []Delta{
		{Seq: 1, Idx: []int{0, 0}, Vals: []float64{1}},
		{Seq: 2, Idx: []int{1, 1}, Vals: []float64{2}},
		{Seq: 3, Idx: []int{0, 0}, Vals: []float64{3}},
		{Seq: 4, Idx: []int{2, 2}, Vals: []float64{4}},
	}
	for _, d := range adds {
		if err := b.Add(d); err != nil {
			t.Fatalf("add: %v", err)
		}
	}
	batch := b.Drain()
	if batch.Watermark != 4 {
		t.Fatalf("watermark = %d, want 4", batch.Watermark)
	}
	want := []Delta{
		{Idx: []int{0, 0}, Vals: []float64{4}},
		{Idx: []int{1, 1}, Vals: []float64{2}},
		{Idx: []int{2, 2}, Vals: []float64{4}},
	}
	if !reflect.DeepEqual(batch.Deltas, want) {
		t.Fatalf("drained %+v, want %+v", batch.Deltas, want)
	}
	st := b.Stats()
	if st.Added != 4 || st.Coalesced != 1 || st.Pending != 0 {
		t.Fatalf("stats = %+v, want Added=4 Coalesced=1 Pending=0", st)
	}
	// A second drain is empty but keeps the watermark.
	if again := b.Drain(); len(again.Deltas) != 0 || again.Watermark != 4 {
		t.Fatalf("second drain = %+v, want empty with watermark 4", again)
	}
}

func TestBufferDoesNotAliasCaller(t *testing.T) {
	b := NewBuffer(0)
	idx := []int{3, 1}
	vals := []float64{5}
	if err := b.Add(Delta{Seq: 1, Idx: idx, Vals: vals}); err != nil {
		t.Fatal(err)
	}
	idx[0], vals[0] = 99, 99
	batch := b.Drain()
	if batch.Deltas[0].Idx[0] != 3 || batch.Deltas[0].Vals[0] != 5 {
		t.Fatalf("buffer aliased caller slices: %+v", batch.Deltas[0])
	}
}

func TestBufferBackpressure(t *testing.T) {
	b := NewBuffer(2)
	must := func(d Delta) {
		t.Helper()
		if err := b.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	must(Delta{Seq: 1, Idx: []int{0}, Vals: []float64{1}})
	must(Delta{Seq: 2, Idx: []int{1}, Vals: []float64{1}})
	// Coalescing into a dirty cell never blocks, even at capacity.
	must(Delta{Seq: 3, Idx: []int{0}, Vals: []float64{1}})

	unblocked := make(chan error, 1)
	go func() {
		unblocked <- b.Add(Delta{Seq: 4, Idx: []int{2}, Vals: []float64{1}})
	}()
	select {
	case err := <-unblocked:
		t.Fatalf("Add of a new cell at capacity returned early (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}
	batch := b.Drain()
	if len(batch.Deltas) != 2 {
		t.Fatalf("drained %d cells, want 2", len(batch.Deltas))
	}
	select {
	case err := <-unblocked:
		if err != nil {
			t.Fatalf("blocked Add failed after drain: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Add still blocked after drain made room")
	}
	if got := b.Drain(); got.Watermark != 4 || len(got.Deltas) != 1 {
		t.Fatalf("post-unblock drain = %+v, want 1 cell at watermark 4", got)
	}
	if st := b.Stats(); st.Blocked == 0 {
		t.Fatalf("stats = %+v, want Blocked > 0", st)
	}
}

func TestBufferClose(t *testing.T) {
	b := NewBuffer(1)
	if err := b.Add(Delta{Seq: 1, Idx: []int{0}, Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- b.Add(Delta{Seq: 2, Idx: []int{1}, Vals: []float64{1}})
	}()
	time.Sleep(20 * time.Millisecond)
	b.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked Add after Close = %v, want ErrClosed", err)
	}
	if err := b.Add(Delta{Seq: 3, Idx: []int{2}, Vals: []float64{1}}); err != ErrClosed {
		t.Fatalf("Add after Close = %v, want ErrClosed", err)
	}
	// Pending cells remain drainable for shutdown flush.
	if batch := b.Drain(); len(batch.Deltas) != 1 {
		t.Fatalf("drain after close got %d cells, want 1", len(batch.Deltas))
	}
}

func TestBufferDirtySignal(t *testing.T) {
	b := NewBuffer(0)
	select {
	case <-b.Dirty():
		t.Fatal("dirty signalled on empty buffer")
	default:
	}
	if err := b.Add(Delta{Seq: 1, Idx: []int{0}, Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Dirty():
	case <-time.After(time.Second):
		t.Fatal("no dirty signal after Add")
	}
}

func TestLifecyclePublishDrainRetire(t *testing.T) {
	var mu sync.Mutex
	var retired []uint64
	lc := NewLifecycle("gen1", func(epoch uint64) {
		mu.Lock()
		retired = append(retired, epoch)
		mu.Unlock()
	})
	if lc.Current() != 1 {
		t.Fatalf("initial epoch = %d, want 1", lc.Current())
	}

	s1 := lc.Acquire()
	if s1.Payload() != "gen1" || s1.Epoch() != 1 {
		t.Fatalf("acquired %q@%d, want gen1@1", s1.Payload(), s1.Epoch())
	}

	// Publishing while s1 is pinned drains rather than retires.
	if epoch := lc.Publish("gen2"); epoch != 2 {
		t.Fatalf("publish = %d, want 2", epoch)
	}
	mu.Lock()
	n := len(retired)
	mu.Unlock()
	if n != 0 {
		t.Fatalf("epoch 1 retired while still pinned")
	}
	st := lc.Stats()
	if st.Epoch != 2 || st.Live != 2 || st.Pinned != 0 {
		t.Fatalf("stats = %+v, want Epoch=2 Live=2 Pinned=0", st)
	}

	// The pinned reader still sees its generation.
	if s1.Payload() != "gen1" {
		t.Fatalf("pinned snapshot payload changed to %q", s1.Payload())
	}
	s1.Release()
	mu.Lock()
	got := append([]uint64(nil), retired...)
	mu.Unlock()
	if !reflect.DeepEqual(got, []uint64{1}) {
		t.Fatalf("retired = %v, want [1]", got)
	}
	st = lc.Stats()
	if st.Live != 1 || st.Retired != 1 {
		t.Fatalf("stats = %+v, want Live=1 Retired=1", st)
	}

	// An unpinned superseded generation retires at publish time.
	lc.Publish("gen3")
	mu.Lock()
	got = append([]uint64(nil), retired...)
	mu.Unlock()
	if !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Fatalf("retired = %v, want [1 2]", got)
	}
}

func TestLifecycleConcurrentAcquire(t *testing.T) {
	lc := NewLifecycle(0, nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := lc.Acquire()
				if s.Epoch() == 0 {
					t.Error("acquired epoch 0")
				}
				s.Release()
			}
		}()
	}
	for i := 1; i <= 100; i++ {
		lc.Publish(i)
	}
	close(stop)
	wg.Wait()
	st := lc.Stats()
	if st.Epoch != 101 {
		t.Fatalf("epoch = %d, want 101", st.Epoch)
	}
	if st.Live != 1 {
		t.Fatalf("live = %d after all releases, want 1", st.Live)
	}
}
