package cluster_test

// Replica-balanced fan-out: with each shard served by several
// interchangeable copies, load spreads by least-outstanding count and the
// retry/hedge paths land on a different copy — so losing one replica
// changes availability, never answers.

import (
	"testing"
	"time"

	"viewcube/internal/cluster"
)

// replicatedShards wires each shard engine behind a counting primary and a
// counting replica (both loopbacks over the same engine — the real-world
// contract is that replicas hold identical partitions).
func replicatedShards(engines []*cluster.ShardEngine) ([]cluster.Shard, [][]*countingClient) {
	names := shardNames(len(engines))
	shards := make([]cluster.Shard, len(engines))
	counters := make([][]*countingClient, len(engines))
	for i, sh := range engines {
		primary := &countingClient{inner: cluster.NewLoopback(sh)}
		replica := &countingClient{inner: cluster.NewLoopback(sh)}
		counters[i] = []*countingClient{primary, replica}
		shards[i] = cluster.Shard{
			Name:     names[i],
			Client:   primary,
			Replicas: []cluster.ShardClient{replica},
		}
	}
	return shards, counters
}

func TestReplicaFanOutBalancesLoad(t *testing.T) {
	tables := shardTables(t, 1000, 3)
	engines := shardEngines(t, tables)
	oracle := newOracle(t, tables)
	want, err := oracle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}

	shards, counters := replicatedShards(engines)
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: 5 * time.Second,
		Retries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	const queries = 40
	for q := 0; q < queries; q++ {
		got, err := coord.GroupBy("product")
		if err != nil {
			t.Fatal(err)
		}
		sameGroupsExact(t, got, want)
	}

	// Both copies of every shard served a substantial share: an idle tier
	// still spreads load through the rotating tie-break.
	for i, pair := range counters {
		p, r := pair[0].calls.Load(), pair[1].calls.Load()
		if p+r != queries {
			t.Fatalf("shard %d: %d+%d calls, want %d total", i, p, r, queries)
		}
		if p < queries/4 || r < queries/4 {
			t.Fatalf("shard %d: unbalanced %d/%d of %d", i, p, r, queries)
		}
	}
}

func TestReplicaFailoverKeepsAnswersBitIdentical(t *testing.T) {
	tables := shardTables(t, 1200, 3)
	engines := shardEngines(t, tables)
	oracle := newOracle(t, tables)
	wantGroups, err := oracle.GroupBy("product", "region")
	if err != nil {
		t.Fatal(err)
	}
	wantTotal, err := oracle.Total()
	if err != nil {
		t.Fatal(err)
	}

	// Shard 0's primary is dead; its replica holds the same partition.
	names := shardNames(len(engines))
	dead := &flakyClient{inner: cluster.NewLoopback(engines[0])}
	dead.set(func(f *flakyClient) { f.failAll = true })
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		shards[i] = cluster.Shard{Name: names[i], Client: cluster.NewLoopback(sh)}
	}
	shards[0] = cluster.Shard{
		Name:     names[0],
		Client:   dead,
		Replicas: []cluster.ShardClient{cluster.NewLoopback(engines[0])},
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: time.Second,
		Retries: 3,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Exact mode, no degraded answers: whichever copy answered, the merge
	// must reproduce the serial oracle bit for bit.
	for q := 0; q < 10; q++ {
		got, err := coord.GroupBy("product", "region")
		if err != nil {
			t.Fatalf("query %d with a dead primary: %v", q, err)
		}
		sameGroupsExact(t, got, wantGroups)
	}
	total, err := coord.Total()
	if err != nil {
		t.Fatal(err)
	}
	if total != wantTotal {
		t.Fatalf("total %v, want exactly %v", total, wantTotal)
	}
}
