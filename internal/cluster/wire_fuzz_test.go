package cluster

import (
	"bytes"
	"testing"

	"viewcube/internal/obs"
)

// FuzzWireCodec feeds arbitrary bytes to both frame decoders: they must
// never panic and never allocate beyond the frame bound, and any frame a
// decoder accepts must re-encode canonically (encode∘decode is a fixpoint:
// re-encoding the decoded message yields byte-identical output, which also
// proves group-map ordering cannot leak into the wire image).
func FuzzWireCodec(f *testing.F) {
	req, _ := AppendRequest(nil, &Request{ID: 42, Kind: KindGroupBy, Keep: []string{"product", "region"}})
	f.Add(req)
	rr, _ := AppendRequest(nil, &Request{ID: 1, Kind: KindRangeSum, Ranges: []DimRange{{Dim: "day", Lo: "a", Hi: "z"}}})
	f.Add(rr)
	resp, _ := AppendResponse(nil, &Response{ID: 42, Kind: KindGroupBy, Groups: map[string]float64{"ale": 1, "stout": -2.5}})
	f.Add(resp)
	errResp, _ := AppendResponse(nil, &Response{ID: 7, Kind: KindTotal, Err: "boom"})
	f.Add(errResp)
	// Wire v2: trace-bearing frames.
	tracedReq, _ := AppendRequest(nil, &Request{ID: 3, Kind: KindTotal, Trace: true})
	f.Add(tracedReq)
	spanResp, _ := AppendResponse(nil, &Response{ID: 3, Kind: KindTotal, Sum: 7, Spans: &obs.SpanNode{
		Name:       "total",
		DurationUS: 1500,
		Attrs:      map[string]int64{"ops": 12, "cells": 4},
		Children: []*obs.SpanNode{
			{Name: "plan total", Attrs: map[string]int64{"cache_hit": 1}},
			{Name: "assemble", DurationUS: 900, Attrs: map[string]int64{"ops": 12}},
		},
	}})
	f.Add(spanResp)
	flip := append([]byte(nil), resp...)
	flip[9] ^= 0xFF
	f.Add(flip)
	f.Add(req[:len(req)-2])
	f.Add([]byte{'v', 'c', 1, 1, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		if r, err := DecodeRequest(data); err == nil {
			enc, err := AppendRequest(nil, r)
			if err != nil {
				t.Fatalf("accepted request failed to re-encode: %v", err)
			}
			r2, err := DecodeRequest(enc)
			if err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			enc2, err := AppendRequest(nil, r2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("request encoding is not canonical: encode∘decode is not a fixpoint")
			}
		}
		if r, err := DecodeResponse(data); err == nil {
			enc, err := AppendResponse(nil, r)
			if err != nil {
				t.Fatalf("accepted response failed to re-encode: %v", err)
			}
			r2, err := DecodeResponse(enc)
			if err != nil {
				t.Fatalf("re-encoded response failed to decode: %v", err)
			}
			enc2, err := AppendResponse(nil, r2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(enc, enc2) {
				t.Fatal("response encoding is not canonical: encode∘decode is not a fixpoint")
			}
		}
	})
}
