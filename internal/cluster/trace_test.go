package cluster_test

// Distributed-tracing tests: a traced coordinator query over real TCP
// shards must return one stitched trace whose shard subtrees price each
// shard exactly (ops == that shard's own Explain cost), the scatter must
// stay concurrent under a trace, and sampling must feed the query log.

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
	"viewcube/internal/obs"
)

var clusterExplainCostRe = regexp.MustCompile(`total cost (\d+) ops`)

// shardExplainCost extracts the planner's modelled op total for a group-by
// from one shard engine's own Explain output.
func shardExplainCost(t *testing.T, eng *viewcube.SafeEngine, keep ...string) int64 {
	t.Helper()
	text, err := eng.ExplainGroupBy(keep...)
	if err != nil {
		t.Fatal(err)
	}
	m := clusterExplainCostRe.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no cost in explain output:\n%s", text)
	}
	n, err := strconv.ParseInt(m[1], 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestTCPStitchedTraceMatchesExplain is the acceptance check for cluster
// tracing: a traced group-by over real TCP shard servers returns one
// stitched trace with a leg span per shard in shard order, each carrying
// the shard's own internal span subtree — and every subtree's summed "ops"
// reproduces exactly the total cost that shard's Explain reports for the
// same view.
func TestTCPStitchedTraceMatchesExplain(t *testing.T) {
	tables := shardTables(t, 2000, 3)
	engines := shardEngines(t, tables)
	if len(engines) < 2 {
		t.Fatalf("need at least 2 live shards, have %d", len(engines))
	}
	names := shardNames(len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		addr, _ := startShardServer(t, sh)
		shards[i] = cluster.Shard{Name: names[i], Client: cluster.DialShard(addr, time.Second)}
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	oracle := newOracle(t, tables)
	want, err := oracle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	got, part, tr, err := coord.TraceGroupBy(context.Background(), "product")
	if err != nil {
		t.Fatal(err)
	}
	if !part.Complete() {
		t.Fatalf("degraded answer with all shards up: %+v", part)
	}
	sameGroupsExact(t, got, want)

	tree := tr.Tree()
	if len(tree.Children) != len(engines) {
		t.Fatalf("stitched trace has %d legs, want %d:\n%s", len(tree.Children), len(engines), tr)
	}
	var totalOps int64
	for i, leg := range tree.Children {
		if wantName := "shard " + names[i]; leg.Name != wantName {
			t.Fatalf("leg %d named %q, want %q (shard order must be deterministic)", i, leg.Name, wantName)
		}
		if leg.Attrs["ok"] != 1 {
			t.Fatalf("leg %s not ok:\n%s", leg.Name, tr)
		}
		// The shard's internal subtree is grafted as the leg's only child.
		if len(leg.Children) != 1 {
			t.Fatalf("leg %s carries %d subtrees, want 1", leg.Name, len(leg.Children))
		}
		sub := leg.Children[0]
		if sub.Find("plan ") == nil {
			t.Fatalf("shard subtree of %s has no plan span:\n%s", leg.Name, obs.RenderNode(sub))
		}
		wantOps := shardExplainCost(t, engines[i].Engine(), "product")
		if gotOps := sub.SumAttr("ops"); gotOps != wantOps {
			t.Fatalf("leg %s trace ops %d != shard explain cost %d\n%s",
				leg.Name, gotOps, wantOps, obs.RenderNode(sub))
		}
		totalOps += sub.SumAttr("ops")
	}
	if tree.SumAttr("ops") != totalOps {
		t.Fatalf("whole-trace ops %d != sum of shard subtrees %d", tree.SumAttr("ops"), totalOps)
	}
	if totalOps == 0 {
		t.Fatal("every shard priced the view at 0 ops; test exercised nothing")
	}
}

// barrierClient blocks inside Do until every sibling has also entered Do,
// then answers through the inner client. A coordinator that scatters
// serially under a trace deadlocks here (and fails on the timeout).
type barrierClient struct {
	inner   cluster.ShardClient
	arrived *atomic.Int32
	total   int32
	release chan struct{}
}

func (b *barrierClient) Do(ctx context.Context, req *cluster.Request) (*cluster.Response, error) {
	if b.arrived.Add(1) == b.total {
		close(b.release)
	}
	select {
	case <-b.release:
	case <-time.After(5 * time.Second):
		return nil, fmt.Errorf("barrier timeout: scatter is not concurrent under a trace")
	}
	return b.inner.Do(ctx, req)
}

func (b *barrierClient) Close() error { return b.inner.Close() }

// TestTracedScatterIsConcurrent proves the serial-under-trace fallback is
// gone: every shard leg must be in flight at once even when the query
// carries a trace.
func TestTracedScatterIsConcurrent(t *testing.T) {
	engines := shardEngines(t, shardTables(t, 1000, 3))
	if len(engines) < 2 {
		t.Fatalf("need at least 2 live shards, have %d", len(engines))
	}
	arrived := &atomic.Int32{}
	release := make(chan struct{})
	names := shardNames(len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		shards[i] = cluster.Shard{Name: names[i], Client: &barrierClient{
			inner:   cluster.NewLoopback(sh),
			arrived: arrived,
			total:   int32(len(engines)),
			release: release,
		}}
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{Timeout: 10 * time.Second, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	got, part, tr, err := coord.TraceGroupBy(context.Background(), "region")
	if err != nil {
		t.Fatal(err)
	}
	if !part.Complete() {
		t.Fatalf("degraded answer: %+v", part)
	}
	if len(got) == 0 {
		t.Fatal("no groups")
	}
	if legs := len(tr.Tree().Children); legs != len(engines) {
		t.Fatalf("trace has %d legs, want %d", legs, len(engines))
	}
}

// TestSampledTracingAndQueryLog: with TraceSampleRate=1 every query runs
// under a sampled trace and lands in the query log with its stitched tree
// and per-shard cost legs; explicit traces log their ID but not the tree.
func TestSampledTracingAndQueryLog(t *testing.T) {
	engines := shardEngines(t, shardTables(t, 1000, 2))
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(loopbackShards(engines), cluster.Options{
		TraceSampleRate: 1,
		QueryLog:        qlog,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	if _, err := coord.GroupBy("product"); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Total(); err != nil {
		t.Fatal(err)
	}
	entries := qlog.Recent(0)
	if len(entries) != 2 {
		t.Fatalf("query log has %d entries, want 2", len(entries))
	}
	// Newest first: Total then GroupBy.
	if entries[0].Kind != "total" || entries[1].Kind != "groupby" {
		t.Fatalf("entry kinds %q, %q; want total, groupby", entries[0].Kind, entries[1].Kind)
	}
	if entries[1].Shape != "product" {
		t.Fatalf("groupby shape %q, want %q", entries[1].Shape, "product")
	}
	for _, e := range entries {
		if !e.Sampled {
			t.Fatalf("entry %+v not sampled with TraceSampleRate=1", e)
		}
		if e.TraceID == "" || e.Trace == nil {
			t.Fatalf("sampled entry missing trace: id=%q tree=%v", e.TraceID, e.Trace)
		}
		if e.Ops <= 0 {
			t.Fatalf("sampled entry has no ops: %+v", e)
		}
		if len(e.Shards) != len(engines) {
			t.Fatalf("entry has %d shard legs, want %d", len(e.Shards), len(engines))
		}
		for _, leg := range e.Shards {
			if !leg.OK || leg.Ops <= 0 {
				t.Fatalf("shard leg %+v: want ok with positive ops", leg)
			}
		}
	}

	// An unsampled coordinator still logs every query — without a trace.
	qlog2, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	coord2, err := cluster.NewCoordinator(loopbackShards(engines), cluster.Options{QueryLog: qlog2})
	if err != nil {
		t.Fatal(err)
	}
	defer coord2.Close()
	if _, err := coord2.GroupBy("product"); err != nil {
		t.Fatal(err)
	}
	// An explicit trace logs its ID but leaves the tree to the caller.
	if _, _, _, err := coord2.TraceGroupBy(context.Background(), "product"); err != nil {
		t.Fatal(err)
	}
	entries = qlog2.Recent(0)
	if len(entries) != 2 {
		t.Fatalf("query log has %d entries, want 2", len(entries))
	}
	traced, plain := entries[0], entries[1]
	if plain.Sampled || plain.TraceID != "" || plain.Trace != nil {
		t.Fatalf("plain entry carries trace state: %+v", plain)
	}
	if plain.DurationUS < 0 || len(plain.Shards) != len(engines) {
		t.Fatalf("plain entry malformed: %+v", plain)
	}
	if traced.Sampled || traced.TraceID == "" || traced.Trace != nil {
		t.Fatalf("explicit-trace entry: sampled=%v id=%q tree=%v; want unsampled, ID set, no tree",
			traced.Sampled, traced.TraceID, traced.Trace)
	}
	if traced.Ops <= 0 {
		t.Fatalf("explicit-trace entry has no ops: %+v", traced)
	}
}
