package cluster

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"viewcube"
	"viewcube/internal/obs"
)

// ShardEngine executes wire requests against one shard's engine. It is the
// piece both transports share: the TCP Server drives it from a socket, the
// Loopback drives it in-process — either way every request produces the
// shard's partial aggregate, exact for its sub-cube by distributivity.
//
// The engine is a SafeEngine, so one ShardEngine serves any number of
// concurrent requests through the shard's concurrent read path, and keeps
// its plan cache, adaptive reselection and metrics registry.
type ShardEngine struct {
	cube *viewcube.Cube
	eng  *viewcube.SafeEngine
	met  *obs.ClusterMetrics
}

// NewShardEngine wraps a shard's cube and engine. Cluster instruments are
// registered into the engine's own metrics registry, so the shard's
// existing /metrics surface exposes them.
func NewShardEngine(cube *viewcube.Cube, eng *viewcube.SafeEngine) *ShardEngine {
	return &ShardEngine{
		cube: cube,
		eng:  eng,
		met:  obs.NewClusterMetrics(eng.Metrics().Registry()),
	}
}

// Engine returns the wrapped SafeEngine (for the shard's HTTP surface).
func (s *ShardEngine) Engine() *viewcube.SafeEngine { return s.eng }

// Execute answers one request with the shard's partial aggregate. Execution
// failures are carried in Response.Err, never as a transport error: a
// malformed query must not tear down the connection serving it. A request
// with Trace set runs through the shard's traced read path and returns its
// span subtree on the response (dropped again if execution errored).
func (s *ShardEngine) Execute(req *Request) *Response {
	s.met.Served.Inc()
	s.met.InFlight.Add(1)
	defer s.met.InFlight.Add(-1)
	resp := &Response{ID: req.ID, Kind: req.Kind}
	switch req.Kind {
	case KindGroupBy:
		var (
			v   *viewcube.View
			err error
		)
		if req.Trace {
			var qt *viewcube.QueryTrace
			v, qt, err = s.eng.TraceGroupBy(req.Keep...)
			if err == nil {
				resp.Spans = qt.Tree()
			}
		} else {
			v, err = s.eng.GroupBy(req.Keep...)
		}
		if err == nil {
			resp.Groups, err = v.Groups()
		}
		if err != nil {
			resp.Err = err.Error()
		}
	case KindTotal:
		var (
			t   float64
			err error
		)
		if req.Trace {
			var qt *viewcube.QueryTrace
			t, qt, err = s.eng.TraceTotal()
			if err == nil {
				resp.Spans = qt.Tree()
			}
		} else {
			t, err = s.eng.Total()
		}
		if err != nil {
			resp.Err = err.Error()
		} else {
			resp.Sum = t
		}
	case KindRangeSum:
		ranges := make(map[string]viewcube.ValueRange, len(req.Ranges))
		for _, vr := range req.Ranges {
			ranges[vr.Dim] = viewcube.ValueRange{Lo: vr.Lo, Hi: vr.Hi}
		}
		var (
			sum float64
			ok  bool
			err error
		)
		if req.Trace {
			var qt *viewcube.QueryTrace
			sum, ok, qt, err = s.eng.TraceRangeSumWithin(ranges)
			if err == nil {
				resp.Spans = qt.Tree()
			}
		} else {
			sum, ok, err = s.eng.RangeSumWithin(ranges)
		}
		switch {
		case err != nil:
			resp.Err = err.Error()
		case ok:
			resp.Sum = sum
		default:
			resp.Sum = 0 // no values in range on this shard
		}
	default:
		resp.Err = fmt.Sprintf("cluster: unsupported request kind %d", req.Kind)
	}
	if resp.Err != "" {
		resp.Spans = nil // errors never carry spans on the wire
		s.met.ServedErrors.Inc()
	} else {
		// Piggyback the shard's combined data version: plan-cache epoch
		// (locked writes, optimize, reconfigure) plus ingest snapshot epoch
		// (streamed merges). Both are monotone, so the sum is too — the
		// coordinator folds it into its result cache's upstream version.
		st := s.eng.PlanCacheStats()
		resp.Epoch = st.Epoch + st.Snapshot
	}
	return resp
}

// ErrServerClosed is returned by Server.Serve after Shutdown.
var ErrServerClosed = errors.New("cluster: server closed")

// Server serves a ShardEngine over the wire protocol on a TCP listener.
// Connections are long-lived; each carries a sequence of request/response
// frames, handled one at a time per connection (concurrency comes from
// many connections — the engine underneath is already concurrent).
type Server struct {
	sh  *ShardEngine
	log *slog.Logger

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]struct{}
	draining bool
	done     chan struct{} // closed when the last connection handler exits
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLogger sets the connection logger; the default is slog.Default.
func WithServerLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// NewServer wraps a ShardEngine for TCP serving.
func NewServer(sh *ShardEngine, opts ...ServerOption) *Server {
	s := &Server{
		sh:    sh,
		log:   slog.Default(),
		conns: make(map[net.Conn]struct{}),
		done:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Serve accepts connections on ln until Shutdown, then returns
// ErrServerClosed. Each connection gets its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return ErrServerClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return ErrServerClosed
			}
			return err
		}
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			conn.Close()
			return ErrServerClosed
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.sh.met.Conns.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.sh.met.Conns.Add(-1)
		s.mu.Lock()
		delete(s.conns, conn)
		if s.draining && len(s.conns) == 0 {
			close(s.done)
		}
		s.mu.Unlock()
	}()
	br := bufio.NewReader(conn)
	for {
		// Reading the frame off the socket is not timed (the connection
		// idles here between requests); the decode/execute/write stages
		// each feed their histogram.
		frame, err := readFrame(br, frameRequest)
		if err != nil {
			// EOF between frames is a clean hangup; anything else is a
			// protocol error or the drain deadline firing. Either way the
			// connection is done.
			return
		}
		decodeStart := time.Now()
		req, err := DecodeRequest(frame)
		if err != nil {
			return
		}
		s.sh.met.StageDecode.Observe(time.Since(decodeStart).Seconds())
		execStart := time.Now()
		resp := s.sh.Execute(req)
		s.sh.met.StageExecute.Observe(time.Since(execStart).Seconds())
		buf, err := AppendResponse(nil, resp)
		if err != nil {
			// The response itself would not fit a frame (e.g. a group map
			// past MaxFrame); tell the client instead of going silent.
			buf, err = AppendResponse(nil, &Response{ID: req.ID, Kind: req.Kind, Err: err.Error()})
			if err != nil {
				return
			}
		}
		writeStart := time.Now()
		if _, err := conn.Write(buf); err != nil {
			return
		}
		s.sh.met.StageWrite.Observe(time.Since(writeStart).Seconds())
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			return
		}
	}
}

// Shutdown drains the server: the listener closes immediately, connections
// idle between frames are unblocked, and connections mid-request finish
// executing and write their response before closing. It returns when every
// connection has drained or ctx expires (remaining connections are then
// closed forcibly).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.done
		return nil
	}
	s.draining = true
	if s.ln != nil {
		s.ln.Close()
	}
	if len(s.conns) == 0 {
		close(s.done)
	}
	for conn := range s.conns {
		// Unblock handlers waiting in ReadRequest; a handler that is
		// executing a request is not reading, so it finishes and responds
		// before noticing the drain.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}
