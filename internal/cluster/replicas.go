package cluster

import (
	"context"
	"sync/atomic"
	"time"

	"viewcube/internal/obs"
)

// replicaSet is the set of interchangeable transports for one shard: the
// primary client plus any configured replicas, all serving the same
// partition of the data. Requests are balanced by least-outstanding count
// (with a rotating tie-break so an idle tier still spreads load), and the
// retry/hedge paths ask for a replica *different* from the one that is
// slow or failing — a hedge against a struggling copy only helps if it
// lands on another copy.
type replicaSet struct {
	clients     []ShardClient
	outstanding []atomic.Int64
	rr          atomic.Uint64 // rotating tie-break cursor
}

func newReplicaSet(s Shard) *replicaSet {
	clients := make([]ShardClient, 0, 1+len(s.Replicas))
	clients = append(clients, s.Client)
	clients = append(clients, s.Replicas...)
	return &replicaSet{
		clients:     clients,
		outstanding: make([]atomic.Int64, len(clients)),
	}
}

func (rs *replicaSet) size() int { return len(rs.clients) }

// pick chooses the replica with the fewest outstanding calls, skipping
// `avoid` (pass -1 to consider all) unless it is the only copy. Ties go to
// a rotating cursor so equally-loaded replicas share work instead of the
// first one taking everything.
func (rs *replicaSet) pick(avoid int) int {
	n := len(rs.clients)
	if n == 1 {
		return 0
	}
	start := int(rs.rr.Add(1)) % n
	best, bestLoad := -1, int64(0)
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if i == avoid {
			continue
		}
		load := rs.outstanding[i].Load()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best
}

// do sends one call through replica rep, tracking its outstanding count for
// the balancer.
func (rs *replicaSet) do(ctx context.Context, rep int, req *Request) (*Response, error) {
	rs.outstanding[rep].Add(1)
	defer rs.outstanding[rep].Add(-1)
	return rs.clients[rep].Do(ctx, req)
}

// closeAll closes every replica client, returning the first error.
func (rs *replicaSet) closeAll() error {
	var first error
	for _, cl := range rs.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// limiter is the coordinator's admission valve: a semaphore of MaxInFlight
// slots with a bounded queue wait. A query that cannot get a slot within
// QueueTimeout is shed with ErrOverloaded instead of piling onto a
// saturated shard tier — fast failure is the backpressure signal. A nil
// limiter admits everything.
type limiter struct {
	sem     chan struct{}
	timeout time.Duration
	met     *obs.AdmissionMetrics
}

func newLimiter(maxInFlight int, queueTimeout time.Duration, met *obs.AdmissionMetrics) *limiter {
	if maxInFlight <= 0 {
		return nil
	}
	if queueTimeout <= 0 {
		queueTimeout = 100 * time.Millisecond
	}
	return &limiter{
		sem:     make(chan struct{}, maxInFlight),
		timeout: queueTimeout,
		met:     met,
	}
}

// acquire takes a slot, queueing up to the timeout. Returns ErrOverloaded
// when the queue wait expires, or the caller's context error if it is
// cancelled first. Nil-safe: no limiter means free admission.
func (l *limiter) acquire(ctx context.Context) error {
	if l == nil {
		return nil
	}
	select {
	case l.sem <- struct{}{}:
		l.met.InFlight.Add(1)
		return nil
	default:
	}
	// Slow path: all slots busy — queue with a deadline.
	l.met.Queued.Inc()
	t := time.NewTimer(l.timeout)
	defer t.Stop()
	select {
	case l.sem <- struct{}{}:
		l.met.InFlight.Add(1)
		return nil
	case <-t.C:
		l.met.Rejected.Inc()
		return ErrOverloaded
	case <-ctx.Done():
		l.met.Rejected.Inc()
		return ctx.Err()
	}
}

func (l *limiter) release() {
	if l == nil {
		return
	}
	l.met.InFlight.Add(-1)
	<-l.sem
}
