package cluster_test

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
)

// TestClusterConcurrentChaos hammers a coordinator from many goroutines
// while a chaos goroutine kills and delays shards mid-query. Every degraded
// answer must still be *exact* over the shards it claims to cover: the
// merge of the per-shard oracle answers for (all shards − Missing), in
// shard order. Runs under -race in CI.
func TestClusterConcurrentChaos(t *testing.T) {
	tables := shardTables(t, 3000, 3)
	engines := shardEngines(t, tables)
	names := shardNames(len(engines))

	// Per-shard oracle engines over the same tables, for recomputing what
	// any subset of shards should sum to.
	perShard := make([]*viewcube.Engine, len(engines))
	{
		i := 0
		for _, tbl := range tables {
			if tbl.Len() == 0 {
				continue
			}
			cube, err := viewcube.FromRelation(tbl)
			if err != nil {
				t.Fatal(err)
			}
			eng, err := cube.NewEngine(deterministicOpts)
			if err != nil {
				t.Fatal(err)
			}
			perShard[i] = eng
			i++
		}
		perShard = perShard[:i]
	}
	if len(perShard) != len(engines) {
		t.Fatalf("oracle shard count %d != cluster shard count %d", len(perShard), len(engines))
	}

	flaky := make([]*flakyClient, len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		flaky[i] = &flakyClient{inner: cluster.NewLoopback(sh)}
		shards[i] = cluster.Shard{Name: names[i], Client: flaky[i]}
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: 20 * time.Millisecond,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// expected merges the per-shard oracle answers for every shard the
	// coordinator claims to have covered, in shard-index order — the same
	// order the coordinator merges in, so equality must be bitwise. The
	// oracle engines are plain Engines, so serialize access to them.
	var oracleMu sync.Mutex
	missingSet := func(pr *cluster.PartialResult) map[string]bool {
		m := make(map[string]bool)
		if pr != nil {
			for _, name := range pr.Missing {
				m[name] = true
			}
		}
		return m
	}
	expectedGroups := func(pr *cluster.PartialResult, keep ...string) map[string]float64 {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		miss := missingSet(pr)
		out := make(map[string]float64)
		for i, eng := range perShard {
			if miss[names[i]] {
				continue
			}
			view, err := eng.GroupBy(keep...)
			if err != nil {
				t.Error(err)
				return nil
			}
			g, err := view.Groups()
			if err != nil {
				t.Error(err)
				return nil
			}
			for k, v := range g {
				out[k] += v
			}
		}
		return out
	}
	expectedTotal := func(pr *cluster.PartialResult) float64 {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		miss := missingSet(pr)
		var sum float64
		for i, eng := range perShard {
			if miss[names[i]] {
				continue
			}
			v, err := eng.Total()
			if err != nil {
				t.Error(err)
				return 0
			}
			sum += v
		}
		return sum
	}
	ranges := map[string]viewcube.ValueRange{"day": {Lo: "day-002", Hi: "day-019"}}
	expectedRange := func(pr *cluster.PartialResult) float64 {
		oracleMu.Lock()
		defer oracleMu.Unlock()
		miss := missingSet(pr)
		var sum float64
		for i, eng := range perShard {
			if miss[names[i]] {
				continue
			}
			v, ok, err := eng.RangeSumWithin(ranges)
			if err != nil {
				t.Error(err)
				return 0
			}
			if ok {
				sum += v
			}
		}
		return sum
	}

	stop := make(chan struct{})
	var chaos sync.WaitGroup
	chaos.Add(1)
	go func() {
		defer chaos.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				// Heal everything on the way out.
				for _, f := range flaky {
					f.set(func(f *flakyClient) { f.failAll = false; f.failN = 0; f.delay = 0 })
				}
				return
			case <-time.After(2 * time.Millisecond):
			}
			victim := flaky[rng.Intn(len(flaky))]
			switch rng.Intn(4) {
			case 0: // kill the shard outright
				victim.set(func(f *flakyClient) { f.failAll = true })
			case 1: // delay past the per-attempt timeout (looks dead)
				victim.set(func(f *flakyClient) { f.delay = 50 * time.Millisecond })
			case 2: // transient blips, retries should absorb them
				victim.set(func(f *flakyClient) { f.failN = 1 })
			case 3: // heal
				victim.set(func(f *flakyClient) { f.failAll = false; f.delay = 0 })
			}
		}
	}()

	const (
		workers = 8
		queries = 30
	)
	keeps := [][]string{{"product"}, {"region"}, {"day"}, {"product", "region"}}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := t.Context()
			for q := 0; q < queries; q++ {
				switch q % 3 {
				case 0:
					keep := keeps[(w+q)%len(keeps)]
					got, pr, err := coord.GroupByPartial(ctx, keep...)
					if err != nil {
						continue // every shard was down at that instant
					}
					want := expectedGroups(pr, keep...)
					if want == nil {
						return
					}
					if len(got) != len(want) {
						t.Errorf("w%d q%d: %d groups, want %d (missing=%v)", w, q, len(got), len(want), pr.Missing)
						return
					}
					for k, v := range want {
						if got[k] != v {
							t.Errorf("w%d q%d: group %q = %v, want %v (missing=%v)", w, q, k, got[k], v, pr.Missing)
							return
						}
					}
				case 1:
					got, pr, err := coord.TotalPartial(ctx)
					if err != nil {
						continue
					}
					if want := expectedTotal(pr); got != want {
						t.Errorf("w%d q%d: total = %v, want %v (missing=%v)", w, q, got, want, pr.Missing)
						return
					}
				case 2:
					got, pr, err := coord.RangeSumPartial(ctx, ranges)
					if err != nil {
						continue
					}
					if want := expectedRange(pr); got != want {
						t.Errorf("w%d q%d: range = %v, want %v (missing=%v)", w, q, got, want, pr.Missing)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	chaos.Wait()

	// With chaos stopped and all faults healed, the coordinator must be
	// exact again.
	oracle := newOracle(t, tables)
	want, err := oracle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	got, err := coord.GroupBy("product")
	if err != nil {
		t.Fatalf("post-chaos exact query failed: %v", err)
	}
	sameGroupsExact(t, got, want)
}
