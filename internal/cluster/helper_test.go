package cluster_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
	"viewcube/internal/workload"
)

// deterministicOpts forces serial plan execution, so two engines built from
// the same table produce bit-identical answers — the basis of the
// exact-equality oracle tests.
var deterministicOpts = viewcube.EngineOptions{ExecWorkers: 1}

// salesTable generates a synthetic sales relation as a public Table.
func salesTable(t testing.TB, rows int) *viewcube.Table {
	t.Helper()
	raw, err := workload.SalesTable(rand.New(rand.NewSource(17)), 40, 6, 30, rows)
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := raw.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	tbl, err := viewcube.ReadTable(&sb, "sales")
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// shardTables hash-partitions a sales relation on product.
func shardTables(t testing.TB, rows, n int) []*viewcube.Table {
	t.Helper()
	tables, err := viewcube.PartitionTable(salesTable(t, rows), "product", n)
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// shardEngines builds one ShardEngine per non-empty shard table, in table
// order — the same skip rule and order as NewPartitionedEngine, so merge
// order matches the oracle exactly.
func shardEngines(t testing.TB, tables []*viewcube.Table) []*cluster.ShardEngine {
	t.Helper()
	var out []*cluster.ShardEngine
	for _, tbl := range tables {
		if tbl.Len() == 0 {
			continue
		}
		cube, err := viewcube.FromRelation(tbl)
		if err != nil {
			t.Fatal(err)
		}
		eng, err := cube.NewEngine(deterministicOpts)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, cluster.NewShardEngine(cube, eng.Safe()))
	}
	return out
}

// shardNames names shards s0, s1, ... in order.
func shardNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "s" + string(rune('0'+i))
	}
	return names
}

// loopbackShards wires ShardEngines into coordinator shards over the
// in-process codec transport.
func loopbackShards(engines []*cluster.ShardEngine) []cluster.Shard {
	names := shardNames(len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		shards[i] = cluster.Shard{Name: names[i], Client: cluster.NewLoopback(sh)}
	}
	return shards
}

// newOracle builds the serial in-process PartitionedEngine over the same
// shard tables.
func newOracle(t testing.TB, tables []*viewcube.Table) *viewcube.PartitionedEngine {
	t.Helper()
	p, err := viewcube.NewPartitionedEngine(tables, deterministicOpts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// sameGroupsExact requires bitwise equality — the distributivity merge in
// fixed shard order must reproduce the oracle exactly, not approximately.
func sameGroupsExact(t *testing.T, got, want map[string]float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("group count %d, want %d", len(got), len(want))
	}
	for k, w := range want {
		g, ok := got[k]
		if !ok {
			t.Fatalf("missing group %q", k)
		}
		if g != w {
			t.Fatalf("group %q = %v, want %v (must be exact)", k, g, w)
		}
	}
}

// flakyClient wraps a ShardClient with injectable faults: fail the next N
// calls, fail everything, or delay each call (a delay past the
// coordinator's per-attempt timeout looks like a dead shard). Safe for
// concurrent use, so the chaos test can flip faults mid-query.
type flakyClient struct {
	inner cluster.ShardClient

	mu      sync.Mutex
	failN   int
	failAll bool
	delay   time.Duration
	calls   int
}

type injectedError struct{}

func (injectedError) Error() string { return "injected fault" }

func (f *flakyClient) Do(ctx context.Context, req *cluster.Request) (*cluster.Response, error) {
	f.mu.Lock()
	f.calls++
	fail := f.failAll
	if !fail && f.failN > 0 {
		f.failN--
		fail = true
	}
	d := f.delay
	f.mu.Unlock()
	if fail {
		return nil, injectedError{}
	}
	if d > 0 {
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return f.inner.Do(ctx, req)
}

func (f *flakyClient) Close() error { return f.inner.Close() }

func (f *flakyClient) set(mut func(*flakyClient)) {
	f.mu.Lock()
	mut(f)
	f.mu.Unlock()
}

func (f *flakyClient) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}
