package cluster_test

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"viewcube"
	"viewcube/internal/cluster"
)

// startShardServer serves one ShardEngine on a loopback TCP listener and
// returns its address plus a shutdown func.
func startShardServer(t *testing.T, sh *cluster.ShardEngine) (string, *cluster.Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := cluster.NewServer(sh)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; !errors.Is(err, cluster.ErrServerClosed) {
			t.Errorf("Serve returned %v, want ErrServerClosed", err)
		}
	})
	return ln.Addr().String(), srv
}

// TestTCPScatterGatherMatchesOracle runs the full stack — coordinator, TCP
// clients, shard servers, SafeEngines — over real sockets and pins the
// answers to the serial oracle.
func TestTCPScatterGatherMatchesOracle(t *testing.T) {
	tables := shardTables(t, 2000, 3)
	engines := shardEngines(t, tables)
	names := shardNames(len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		addr, _ := startShardServer(t, sh)
		shards[i] = cluster.Shard{Name: names[i], Client: cluster.DialShard(addr, time.Second)}
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: 2 * time.Second,
		Retries: 1,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	oracle := newOracle(t, tables)
	// Several rounds so pooled connections get reused.
	for round := 0; round < 5; round++ {
		want, err := oracle.GroupBy("product")
		if err != nil {
			t.Fatal(err)
		}
		got, err := coord.GroupBy("product")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		sameGroupsExact(t, got, want)
	}
	wantT, err := oracle.Total()
	if err != nil {
		t.Fatal(err)
	}
	gotT, err := coord.Total()
	if err != nil {
		t.Fatal(err)
	}
	if gotT != wantT {
		t.Fatalf("Total = %v, want %v", gotT, wantT)
	}
	ranges := map[string]viewcube.ValueRange{"day": {Lo: "day-003", Hi: "day-017"}}
	wantR, err := oracle.RangeSum(ranges)
	if err != nil {
		t.Fatal(err)
	}
	gotR, err := coord.RangeSum(ranges)
	if err != nil {
		t.Fatal(err)
	}
	if gotR != wantR {
		t.Fatalf("RangeSum = %v, want %v", gotR, wantR)
	}
}

// TestTCPShardError: a bad query crosses the wire as a response error, and
// the connection survives for the next (valid) query.
func TestTCPShardError(t *testing.T) {
	tables := shardTables(t, 500, 1)
	engines := shardEngines(t, tables)
	addr, _ := startShardServer(t, engines[0])
	client := cluster.DialShard(addr, time.Second)
	defer client.Close()

	resp, err := client.Do(context.Background(), &cluster.Request{Kind: cluster.KindGroupBy, Keep: []string{"nope"}})
	if err != nil {
		t.Fatalf("transport should survive a query error: %v", err)
	}
	if resp.Err == "" {
		t.Fatal("unknown dimension should produce a shard-side error")
	}
	resp, err = client.Do(context.Background(), &cluster.Request{Kind: cluster.KindTotal})
	if err != nil || resp.Err != "" {
		t.Fatalf("connection unusable after query error: %v / %q", err, resp.Err)
	}
	if resp.Sum == 0 {
		t.Fatal("total came back zero for a non-empty shard")
	}
}

// TestTCPClientDeadline: a server that accepts but never answers must not
// hold a query past its context deadline.
func TestTCPClientDeadline(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close() // hold the connection open, never respond
		}
	}()

	client := cluster.DialShard(ln.Addr().String(), time.Second)
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Do(ctx, &cluster.Request{Kind: cluster.KindTotal})
	if err == nil {
		t.Fatal("Do should fail against a mute server")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("Do took %v, deadline was 50ms", d)
	}
}

// TestTCPServerShutdown: Shutdown unblocks Serve, drops idle connections,
// and refuses new ones.
func TestTCPServerShutdown(t *testing.T) {
	tables := shardTables(t, 500, 1)
	engines := shardEngines(t, tables)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := cluster.NewServer(engines[0])
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	client := cluster.DialShard(ln.Addr().String(), time.Second)
	if _, err := client.Do(context.Background(), &cluster.Request{Kind: cluster.KindTotal}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, cluster.ErrServerClosed) {
			t.Fatalf("Serve returned %v, want ErrServerClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Serve did not return after Shutdown")
	}
	// The drained server no longer answers; the pooled connection was
	// closed and a fresh dial must fail.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel2()
	if _, err := client.Do(ctx2, &cluster.Request{Kind: cluster.KindTotal}); err == nil {
		t.Fatal("query succeeded against a shut-down server")
	}
	client.Close()
}
