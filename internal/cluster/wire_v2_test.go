package cluster

// Wire v2 tests: version negotiation (traceless traffic must stay
// byte-identical to v1 so old peers interoperate), bit-exact span-subtree
// round-trips, and the decode hardening around hostile span trees.

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"viewcube/internal/obs"
)

// TestTracelessTrafficIsV1 pins the interop contract of the version bump:
// a message with no trace content encodes as wire v1 — byte for byte the
// pre-trace protocol — and only trace-bearing messages use v2.
func TestTracelessTrafficIsV1(t *testing.T) {
	req, err := AppendRequest(nil, &Request{ID: 9, Kind: KindGroupBy, Keep: []string{"product"}})
	if err != nil {
		t.Fatal(err)
	}
	if req[2] != 1 {
		t.Fatalf("traceless request encoded as version %d, want 1", req[2])
	}
	traced, err := AppendRequest(nil, &Request{ID: 9, Kind: KindGroupBy, Keep: []string{"product"}, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced[2] != 2 {
		t.Fatalf("traced request encoded as version %d, want 2", traced[2])
	}

	resp, err := AppendResponse(nil, &Response{ID: 9, Kind: KindTotal, Sum: 4})
	if err != nil {
		t.Fatal(err)
	}
	if resp[2] != 1 {
		t.Fatalf("spanless response encoded as version %d, want 1", resp[2])
	}
	withSpans, err := AppendResponse(nil, &Response{ID: 9, Kind: KindTotal, Sum: 4,
		Spans: &obs.SpanNode{Name: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	if withSpans[2] != 2 {
		t.Fatalf("span-bearing response encoded as version %d, want 2", withSpans[2])
	}

	// An error response never carries spans: the trace field is dropped and
	// the frame stays v1, identical to the same error without spans.
	plainErr, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	spannedErr, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Err: "boom",
		Spans: &obs.SpanNode{Name: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainErr, spannedErr) {
		t.Fatal("error response with spans did not encode identically to one without")
	}
	if plainErr[2] != 1 {
		t.Fatalf("error response encoded as version %d, want 1", plainErr[2])
	}
}

// TestTracedRequestRoundTrip: the v2 trace flag survives the codec.
func TestTracedRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Kind: KindTotal, Trace: true},
		{ID: 2, Kind: KindGroupBy, Keep: []string{"product", "region"}, Trace: true},
		{ID: 3, Kind: KindRangeSum, Ranges: []DimRange{{Dim: "day", Lo: "a", Hi: "z"}}, Trace: true},
	}
	for _, req := range reqs {
		b, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("encode %+v: %v", req, err)
		}
		got, err := DecodeRequest(b)
		if err != nil {
			t.Fatalf("decode %+v: %v", req, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Fatalf("round trip: got %+v, want %+v", got, req)
		}
	}
}

// randSpanTree builds a deterministic pseudo-random span subtree with at
// most the given node budget (always using at least one node).
func randSpanTree(rng *rand.Rand, budget *int, depth int) *obs.SpanNode {
	*budget--
	n := &obs.SpanNode{
		Name:       fmt.Sprintf("span-%d", rng.Intn(1000)),
		DurationUS: rng.Int63n(1 << 40),
	}
	if k := rng.Intn(4); k > 0 {
		n.Attrs = make(map[string]int64, k)
		for i := 0; i < k; i++ {
			n.Attrs[fmt.Sprintf("attr%d", i)] = rng.Int63n(1<<50) - (1 << 49)
		}
	}
	if depth < 8 {
		for kids := rng.Intn(4); kids > 0 && *budget > 0; kids-- {
			n.Children = append(n.Children, randSpanTree(rng, budget, depth+1))
		}
	}
	return n
}

// TestSpanSubtreeRoundTripBitExact is the property test pinning the span
// codec across the version bump: for arbitrary subtrees, decode∘encode is
// the identity and re-encoding the decoded tree reproduces the exact same
// bytes (the canonical encoding is stable).
func TestSpanSubtreeRoundTripBitExact(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		budget := 1 + rng.Intn(64)
		want := &Response{
			ID:    uint64(i),
			Kind:  KindGroupBy,
			Sum:   rng.NormFloat64(),
			Spans: randSpanTree(rng, &budget, 1),
		}
		if rng.Intn(2) == 0 {
			want.Groups = map[string]float64{"a": 1, "b": rng.Float64()}
		}
		enc, err := AppendResponse(nil, want)
		if err != nil {
			t.Fatalf("iter %d: encode: %v", i, err)
		}
		got, err := DecodeResponse(enc)
		if err != nil {
			t.Fatalf("iter %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: round trip:\ngot  %+v\nwant %+v", i, got, want)
		}
		enc2, err := AppendResponse(nil, got)
		if err != nil {
			t.Fatalf("iter %d: re-encode: %v", i, err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("iter %d: span encoding is not bit-stable", i)
		}
	}
}

// TestSpanDecodeHardening: hostile span subtrees — too deep, too many
// nodes, duplicate attrs, spans on an error response — are rejected, never
// crash the decoder.
func TestSpanDecodeHardening(t *testing.T) {
	deep := &obs.SpanNode{Name: "leaf"}
	for i := 0; i < maxSpanDepth+4; i++ {
		deep = &obs.SpanNode{Name: "n", Children: []*obs.SpanNode{deep}}
	}
	b, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Spans: deep})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(b); err == nil {
		t.Error("over-deep span tree accepted")
	}

	wide := &obs.SpanNode{Name: "root"}
	for i := 0; i < obs.MaxSpans; i++ {
		wide.Children = append(wide.Children, &obs.SpanNode{Name: "c"})
	}
	b, err = AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Spans: wide})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(b); err == nil {
		t.Error("span tree over the node cap accepted")
	}

	// Hand-build a payload with a duplicate attr key: the encoder cannot
	// produce one, so splice it together from primitives.
	p := []byte{1}                 // ID
	p = append(p, byte(KindTotal)) // kind
	p = append(p, respFlagSpans)   // flags
	p = appendFloat(p, 0)          // sum
	p = append(p, 0)               // group count
	p = appendString(p, "span")    // span name
	p = append(p, 0)               // duration
	p = append(p, 2)               // 2 attrs
	p = appendString(p, "dup")
	p = append(p, 2) // varint 1
	p = appendString(p, "dup")
	p = append(p, 4) // varint 2
	p = append(p, 0) // 0 children
	frame, err := appendFrame(nil, 2, frameResponse, p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeResponse(frame); err == nil {
		t.Error("duplicate span attr accepted")
	}

	// A v1 frame cannot carry the spans flag at all.
	good, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Sum: 1,
		Spans: &obs.SpanNode{Name: "total"}})
	if err != nil {
		t.Fatal(err)
	}
	v1 := append([]byte(nil), good...)
	v1[2] = 1
	if _, err := DecodeResponse(v1); err == nil {
		t.Error("v1 frame with spans flag accepted")
	}
}
