package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ShardClient sends one request to one shard and returns its partial
// aggregate. Implementations must be safe for concurrent use: the
// coordinator fans out, retries and hedges over the same client.
type ShardClient interface {
	// Do sends req and waits for the matching response, honouring ctx's
	// deadline and cancellation. The request's ID field is owned by the
	// transport (it stamps a fresh ID per exchange), so one *Request may
	// be shared by concurrent attempts.
	Do(ctx context.Context, req *Request) (*Response, error)
	// Close releases the transport's resources.
	Close() error
}

// poolConn is a pooled connection with its buffered reader (the reader may
// hold the start of a response, so it must travel with the connection).
type poolConn struct {
	net.Conn
	br *bufio.Reader
}

// TCPClient is a ShardClient over real sockets, with a small idle
// connection pool. Each Do leases one connection for a strict
// request/response exchange; responses are matched by ID and a connection
// that errors (or whose exchange is abandoned by cancellation) is discarded
// rather than reused, so a late response can never be mistaken for the
// answer to a newer request.
type TCPClient struct {
	addr        string
	dialTimeout time.Duration
	nextID      atomic.Uint64

	mu     sync.Mutex
	idle   []*poolConn
	closed bool
}

// maxIdleConns bounds the per-shard idle pool; beyond it, finished
// connections are closed instead of pooled.
const maxIdleConns = 4

// DialShard returns a TCP client for a shard server at addr. No connection
// is made until the first Do.
func DialShard(addr string, dialTimeout time.Duration) *TCPClient {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	return &TCPClient{addr: addr, dialTimeout: dialTimeout}
}

// Addr returns the shard server address this client dials.
func (c *TCPClient) Addr() string { return c.addr }

func (c *TCPClient) lease(ctx context.Context) (*poolConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("cluster: client for %s is closed", c.addr)
	}
	if n := len(c.idle); n > 0 {
		pc := c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return pc, nil
	}
	c.mu.Unlock()
	d := net.Dialer{Timeout: c.dialTimeout}
	conn, err := d.DialContext(ctx, "tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing shard %s: %w", c.addr, err)
	}
	return &poolConn{Conn: conn, br: bufio.NewReader(conn)}, nil
}

func (c *TCPClient) release(pc *poolConn) {
	c.mu.Lock()
	if !c.closed && len(c.idle) < maxIdleConns {
		c.idle = append(c.idle, pc)
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	pc.Close()
}

// Do performs one request/response exchange on a pooled connection.
func (c *TCPClient) Do(ctx context.Context, req *Request) (*Response, error) {
	pc, err := c.lease(ctx)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		pc.SetDeadline(dl)
	} else {
		pc.SetDeadline(time.Time{})
	}
	// A cancelled context must unblock a blocked read promptly (hedging
	// cancels the losing attempt): yank the deadline to the past.
	stop := make(chan struct{})
	var cancelled atomic.Bool
	go func() {
		select {
		case <-ctx.Done():
			cancelled.Store(true)
			pc.SetDeadline(time.Unix(1, 0))
		case <-stop:
		}
	}()
	resp, err := c.exchange(pc, req)
	close(stop)
	if err != nil {
		pc.Close() // connection state is unknown; never reuse it
		if cancelled.Load() && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		return nil, fmt.Errorf("cluster: shard %s: %w", c.addr, err)
	}
	c.release(pc)
	return resp, nil
}

func (c *TCPClient) exchange(pc *poolConn, req *Request) (*Response, error) {
	wr := *req
	wr.ID = c.nextID.Add(1)
	if err := WriteRequest(pc, &wr); err != nil {
		return nil, err
	}
	resp, err := ReadResponse(pc.br)
	if err != nil {
		return nil, err
	}
	if resp.ID != wr.ID {
		return nil, fmt.Errorf("response ID %d for request %d", resp.ID, wr.ID)
	}
	return resp, nil
}

// Close closes the idle pool. Connections leased by in-flight calls are
// closed as those calls finish.
func (c *TCPClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	for _, pc := range c.idle {
		pc.Close()
	}
	c.idle = nil
	return nil
}
