package cluster_test

// Serving-tier hardening: the coordinator result cache, admission control
// and replica-balanced fan-out. The oracle discipline is the same as the
// rest of the package — merged answers must be bit-identical to the serial
// PartitionedEngine, whatever the cache or the replica tier did.

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"viewcube/internal/cluster"
	"viewcube/internal/obs"
	"viewcube/internal/rescache"
)

// countingClient counts calls through to the inner transport.
type countingClient struct {
	inner cluster.ShardClient
	calls atomic.Int64
}

func (c *countingClient) Do(ctx context.Context, req *cluster.Request) (*cluster.Response, error) {
	c.calls.Add(1)
	return c.inner.Do(ctx, req)
}

func (c *countingClient) Close() error { return c.inner.Close() }

// gateClient blocks matching requests until release closes (or the context
// dies); other kinds pass straight through. Used to hold admission slots
// open mid-scatter without freezing the whole tier. arrived counts callers
// that reached the gate, so tests can wait for saturation.
type gateClient struct {
	inner   cluster.ShardClient
	block   cluster.Kind
	release chan struct{}
	arrived *atomic.Int32
}

func (g *gateClient) Do(ctx context.Context, req *cluster.Request) (*cluster.Response, error) {
	if req.Kind == g.block {
		if g.arrived != nil {
			g.arrived.Add(1)
		}
		select {
		case <-g.release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return g.inner.Do(ctx, req)
}

func (g *gateClient) Close() error { return g.inner.Close() }

func TestCoordinatorResultCacheHitsAndSingleflight(t *testing.T) {
	tables := shardTables(t, 1000, 3)
	engines := shardEngines(t, tables)
	oracle := newOracle(t, tables)
	want, err := oracle.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}

	counters := make([]*countingClient, len(engines))
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		counters[i] = &countingClient{inner: cluster.NewLoopback(sh)}
		shards[i] = cluster.Shard{Name: shardNames(len(engines))[i], Client: counters[i]}
	}
	qlog, err := obs.NewQueryLog(obs.QueryLogOptions{RingSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout:  5 * time.Second,
		Retries:  -1,
		QueryLog: qlog,
		Cache:    &rescache.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// An identical-query storm executes the underlying scatter exactly once:
	// every racer either coalesces onto the single flight or hits the stored
	// entry.
	const racers = 24
	var wg sync.WaitGroup
	answers := make([]map[string]float64, racers)
	for r := 0; r < racers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			g, err := coord.GroupBy("product")
			if err != nil {
				t.Error(err)
				return
			}
			answers[r] = g
		}(r)
	}
	wg.Wait()
	for _, cc := range counters {
		if n := cc.calls.Load(); n != 1 {
			t.Fatalf("shard saw %d calls under an identical-query storm, want exactly 1", n)
		}
	}
	for _, g := range answers {
		sameGroupsExact(t, g, want)
	}

	// The query log separates the one miss from the hits, and hits carry no
	// shard legs (no shard was asked).
	var hits, misses int
	for _, e := range qlog.Recent(0) {
		if e.ResultCacheHit == nil {
			t.Fatalf("cache-wired entry without ResultCacheHit: %+v", e)
		}
		if *e.ResultCacheHit {
			hits++
			if len(e.Shards) != 0 {
				t.Fatalf("hit entry carries shard legs: %+v", e)
			}
		} else {
			misses++
			if len(e.Shards) != len(engines) {
				t.Fatalf("miss entry carries %d legs, want %d", len(e.Shards), len(engines))
			}
		}
	}
	if misses != 1 || hits < 1 {
		t.Fatalf("querylog: %d misses / %d hits, want exactly 1 miss and some hits", misses, hits)
	}

	// A post-storm repeat is a genuine stored-entry hit (the storm's racers
	// were coalesced flight waiters, which the counters class as misses).
	repeat, err := coord.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	sameGroupsExact(t, repeat, want)
	for _, cc := range counters {
		if n := cc.calls.Load(); n != 1 {
			t.Fatalf("warm repeat re-scattered: shard saw %d calls", n)
		}
	}
	st := coord.ResultCacheStats()
	if st.Entries != 1 || st.Hits < 1 {
		t.Fatalf("cache stats %+v", st)
	}

	// Invalidation drops the entry: the next query scatters again.
	before := counters[0].calls.Load()
	if epoch := coord.InvalidateResults(); epoch == 0 {
		t.Fatal("InvalidateResults returned epoch 0 on an enabled cache")
	}
	g, err := coord.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}
	sameGroupsExact(t, g, want)
	if counters[0].calls.Load() != before+1 {
		t.Fatal("post-invalidation query did not re-scatter")
	}
}

func TestCoordinatorCacheNeverStoresDegradedAnswers(t *testing.T) {
	tables := shardTables(t, 800, 3)
	engines := shardEngines(t, tables)
	flaky := &flakyClient{inner: cluster.NewLoopback(engines[0])}
	shards := loopbackShards(engines)
	shards[0].Client = flaky
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout: 200 * time.Millisecond,
		Retries: -1,
		Cache:   &rescache.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	flaky.set(func(f *flakyClient) { f.failAll = true })
	got, part, err := coord.GroupByPartial(context.Background(), "region")
	if err != nil {
		t.Fatal(err)
	}
	if part.Complete() {
		t.Fatal("expected a degraded answer with shard 0 down")
	}
	if coord.ResultCacheStats().Entries != 0 {
		t.Fatalf("degraded answer was cached: %+v", coord.ResultCacheStats())
	}

	// Shard 0 recovers; the same query must now see its contribution — a
	// cached degraded answer would hide the recovery.
	flaky.set(func(f *flakyClient) { f.failAll = false })
	oracle := newOracle(t, tables)
	want, err := oracle.GroupBy("region")
	if err != nil {
		t.Fatal(err)
	}
	healed, part, err := coord.GroupByPartial(context.Background(), "region")
	if err != nil {
		t.Fatal(err)
	}
	if !part.Complete() {
		t.Fatalf("shard recovered but answer still partial: %+v", part)
	}
	sameGroupsExact(t, healed, want)
	for k, v := range got {
		if v > want[k] {
			t.Fatalf("degraded group %q=%v exceeds exact %v", k, v, want[k])
		}
	}

	// Exact mode must not coalesce onto a partial-mode flight: with shard 0
	// down again, partial succeeds degraded while exact fails.
	coord.InvalidateResults()
	flaky.set(func(f *flakyClient) { f.failAll = true })
	if _, _, err := coord.GroupByPartial(context.Background(), "region"); err != nil {
		t.Fatal(err)
	}
	if _, err := coord.GroupBy("region"); err == nil {
		t.Fatal("exact-mode query succeeded with a shard down")
	}
}

func TestAdmissionControlShedsAndRecovers(t *testing.T) {
	engines := shardEngines(t, shardTables(t, 600, 2))
	release := make(chan struct{})
	arrived := &atomic.Int32{}
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		shards[i] = cluster.Shard{Name: shardNames(len(engines))[i], Client: &gateClient{
			inner:   cluster.NewLoopback(sh),
			block:   cluster.KindTotal,
			release: release,
			arrived: arrived,
		}}
	}
	const slots = 2
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout:      5 * time.Second,
		Retries:      -1,
		MaxInFlight:  slots,
		QueueTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Saturate: `slots` queries enter and block at the shard gate, each
	// holding an admission slot mid-scatter.
	admitted := make(chan error, slots)
	for i := 0; i < slots; i++ {
		go func() {
			_, err := coord.Total()
			admitted <- err
		}()
	}
	waitFor(t, func() bool { return arrived.Load() >= int32(slots*len(engines)) })

	// Every further query sheds with ErrOverloaded after the queue wait —
	// fast-fail backpressure instead of piling onto the saturated tier.
	const shedLoad = 6
	errs := make([]error, shedLoad)
	var wg sync.WaitGroup
	for i := 0; i < shedLoad; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = coord.Total()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, cluster.ErrOverloaded) {
			t.Fatalf("query %d under overload: %v, want ErrOverloaded", i, err)
		}
	}

	// Release the gate: the admitted queries drain successfully and the
	// tier recovers cleanly.
	close(release)
	for i := 0; i < slots; i++ {
		if err := <-admitted; err != nil {
			t.Fatalf("admitted query failed: %v", err)
		}
	}
	if _, err := coord.Total(); err != nil {
		t.Fatalf("post-overload query failed: %v", err)
	}

	var text strings.Builder
	if err := coord.Registry().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "viewcube_admission_rejected_total 6") {
		t.Fatalf("admission metrics missing rejected count:\n%s", text.String())
	}
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never reached")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCacheHitsBypassAdmission(t *testing.T) {
	engines := shardEngines(t, shardTables(t, 600, 2))
	release := make(chan struct{})
	arrived := &atomic.Int32{}
	shards := make([]cluster.Shard, len(engines))
	for i, sh := range engines {
		shards[i] = cluster.Shard{Name: shardNames(len(engines))[i], Client: &gateClient{
			inner:   cluster.NewLoopback(sh),
			block:   cluster.KindTotal,
			release: release,
			arrived: arrived,
		}}
	}
	coord, err := cluster.NewCoordinator(shards, cluster.Options{
		Timeout:      5 * time.Second,
		Retries:      -1,
		MaxInFlight:  1,
		QueueTimeout: 20 * time.Millisecond,
		Cache:        &rescache.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Warm the cache while the tier is idle (group-bys pass the gate).
	warm, err := coord.GroupBy("product")
	if err != nil {
		t.Fatal(err)
	}

	// Saturate the single admission slot with a gated Total: once its legs
	// reach the shard gates, the slot is held mid-scatter.
	done := make(chan error, 1)
	go func() {
		_, err := coord.Total()
		done <- err
	}()
	waitFor(t, func() bool { return arrived.Load() >= int32(len(engines)) })

	// A fresh (uncached) query sheds...
	if _, err := coord.GroupBy("region"); !errors.Is(err, cluster.ErrOverloaded) {
		t.Fatalf("fresh query on a saturated tier: %v, want ErrOverloaded", err)
	}
	// ...but the cached one still answers — a hit costs a map lookup and no
	// admission slot, which is the point of caching on a saturated tier.
	hit, err := coord.GroupBy("product")
	if err != nil {
		t.Fatalf("cached query shed under load: %v", err)
	}
	sameGroupsExact(t, hit, warm)

	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
