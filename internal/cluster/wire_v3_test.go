package cluster

// Wire v3 tests: epoch piggybacking on responses. The version-negotiation
// contract extends v2's — epochless traffic encodes exactly as before, so
// older peers interoperate until a non-zero epoch actually reaches them.

import (
	"bytes"
	"reflect"
	"testing"

	"viewcube/internal/obs"
)

// TestEpochlessTrafficStaysDownlevel pins the interop contract: a response
// with Epoch zero encodes exactly as it did before v3 existed (v1 plain,
// v2 with spans), and only a non-zero epoch raises the version.
func TestEpochlessTrafficStaysDownlevel(t *testing.T) {
	plain, err := AppendResponse(nil, &Response{ID: 3, Kind: KindTotal, Sum: 7})
	if err != nil {
		t.Fatal(err)
	}
	if plain[2] != 1 {
		t.Fatalf("epochless response encoded as version %d, want 1", plain[2])
	}
	withEpoch, err := AppendResponse(nil, &Response{ID: 3, Kind: KindTotal, Sum: 7, Epoch: 42})
	if err != nil {
		t.Fatal(err)
	}
	if withEpoch[2] != 3 {
		t.Fatalf("epoch-bearing response encoded as version %d, want 3", withEpoch[2])
	}

	// An error response never carries an epoch: the field is dropped and
	// the frame is byte-identical to the same error without one.
	plainErr, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Err: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	epochErr, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Err: "boom", Epoch: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plainErr, epochErr) {
		t.Fatal("error response with epoch did not encode identically to one without")
	}
}

// TestEpochResponseRoundTrip: the epoch survives the codec alone and
// alongside spans and groups.
func TestEpochResponseRoundTrip(t *testing.T) {
	resps := []*Response{
		{ID: 1, Kind: KindTotal, Sum: 12.5, Epoch: 1},
		{ID: 2, Kind: KindGroupBy, Groups: map[string]float64{"ale": 3, "ipa": 4}, Epoch: 1<<63 + 17},
		{ID: 3, Kind: KindRangeSum, Sum: -2,
			Spans: &obs.SpanNode{Name: "range", DurationUS: 5, Attrs: map[string]int64{"ops": 9}},
			Epoch: 7},
	}
	for _, want := range resps {
		b, err := AppendResponse(nil, want)
		if err != nil {
			t.Fatalf("encoding %+v: %v", want, err)
		}
		if b[2] != 3 {
			t.Fatalf("response with epoch %d encoded as version %d, want 3", want.Epoch, b[2])
		}
		got, err := DecodeResponse(b)
		if err != nil {
			t.Fatalf("decoding %+v: %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
		}
	}
}

// TestEpochDecodeHardening: the strict decoder rejects an epoch flag with a
// zero epoch, the flag on a v2 frame, and an error frame claiming one.
func TestEpochDecodeHardening(t *testing.T) {
	good, err := AppendResponse(nil, &Response{ID: 1, Kind: KindTotal, Sum: 1, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Downgrade the version byte: the epoch flag must be unknown to v2.
	v2 := bytes.Clone(good)
	v2[2] = 2
	if _, err := DecodeResponse(v2); err == nil {
		t.Fatal("v2 frame carrying the epoch flag decoded without error")
	}
	// Zero the epoch uvarint (last payload byte is the uvarint 1): a set
	// flag with epoch zero is a protocol violation, not a default.
	zeroed := bytes.Clone(good)
	zeroed[len(zeroed)-1] = 0
	if _, err := DecodeResponse(zeroed); err == nil {
		t.Fatal("epoch flag with zero epoch decoded without error")
	}
}
